(* NeuroHPC scenario end to end (Sect. 5.3): from raw application
   traces and scheduler logs to a reservation recommendation.

   Pipeline, exactly as the paper describes it:
     1. collect execution-time traces of a neuroscience application
        (synthetic here; the CSV round-trip shows where real traces
        would plug in);
     2. fit a LogNormal law to the traces (Fig. 1);
     3. fit the affine queue-wait function from scheduler logs
        (Fig. 2) and build the STOCHASTIC cost model from it;
     4. compute reservation sequences with every heuristic and compare
        their expected turnaround times;
     5. replay the winner through the job-flow simulator for
        operational statistics.

   Run with: dune exec examples/neuro_hpc.exe *)

module Dist = Distributions.Dist
module Strategy = Stochastic_core.Strategy
module Sequence = Stochastic_core.Sequence

let () =
  let rng = Randomness.Rng.create ~seed:2026 () in

  (* --- 1. Traces -------------------------------------------------- *)
  let trace =
    Platform.Traces.generate ~runs:5000 Platform.Traces.vbmqa rng
  in
  let csv = Filename.temp_file "vbmqa" ".csv" in
  Platform.Traces.save_csv csv trace;
  let trace = Platform.Traces.load_csv csv in
  Sys.remove csv;
  Format.printf "Loaded %d VBMQA runs (mean %.0f s, std %.0f s)@."
    (Array.length trace)
    (Numerics.Stats.mean trace)
    (Numerics.Stats.std trace);

  (* --- 2. Fit the execution-time distribution --------------------- *)
  let fit = Distributions.Fitting.lognormal_mle trace in
  Format.printf
    "LogNormal fit: mu=%.4f sigma=%.4f (paper: 7.1128 / 0.2039), KS=%.4f@."
    fit.Distributions.Fitting.mu fit.Distributions.Fitting.sigma
    fit.Distributions.Fitting.ks;
  (* Work in hours from here on, like the paper. *)
  let d =
    Distributions.Lognormal.make
      ~mu:(fit.Distributions.Fitting.mu -. log 3600.0)
      ~sigma:fit.Distributions.Fitting.sigma
  in

  (* --- 3. Fit the wait-time model from scheduler logs -------------- *)
  let log = Platform.Hpc_queue.synthetic_log ~jobs:20_000 rng in
  let wait_fit = Platform.Hpc_queue.fit (Platform.Hpc_queue.bin_log log) in
  let model = Platform.Hpc_queue.cost_model_of_fit wait_fit in
  Format.printf
    "Wait-time fit: wait = %.3f * requested + %.3f h (R^2 = %.3f)@."
    wait_fit.Numerics.Regression.slope wait_fit.Numerics.Regression.intercept
    wait_fit.Numerics.Regression.r_squared;

  (* --- 4. Compare strategies --------------------------------------- *)
  let samples = Dist.samples d rng 2000 in
  Array.sort compare samples;
  let roster =
    [
      Strategy.brute_force ~m:3000 ~n:1000 ~seed:5 ();
      Strategy.mean_by_mean;
      Strategy.mean_stdev;
      Strategy.mean_doubling;
      Strategy.median_by_median;
      Strategy.equal_time;
      Strategy.equal_probability;
    ]
  in
  Format.printf "@.Expected turnaround, normalized by the omniscient \
                 scheduler:@.";
  let scored =
    List.map
      (fun s ->
        let v = Strategy.evaluate_on model d ~sorted_samples:samples s in
        Format.printf "  %-18s %.3f@." s.Strategy.name v;
        (s, v))
      roster
  in
  let best, best_v =
    match scored with
    | [] -> failwith "empty strategy roster"
    | first :: rest ->
        List.fold_left
          (fun (bs, bv) (s, v) -> if v < bv then (s, v) else (bs, bv))
          first rest
  in
  Format.printf "Winner: %s (%.3f)@." best.Strategy.name best_v;

  (* --- 5. Operational replay --------------------------------------- *)
  let seq = best.Strategy.build model d in
  Format.printf "@.Recommended request schedule (hours): %a@."
    (Sequence.pp_prefix 5) seq;
  let report = Platform.Simulator.run ~jobs:5000 model d seq rng in
  Format.printf "%a@." Platform.Simulator.pp_report report
