(* Cluster scheduler walkthrough: many stochastic jobs contending for
   nodes, FCFS vs EASY backfilling, and the wait-time loop closed.

   The NeuroHPC scenario of the paper *assumes* an affine wait-time
   model wait ~ alpha * requested + gamma fitted offline from scheduler
   logs. Here we *produce* those logs: jobs carrying the paper's
   reservation sequences contend for a 32-node cluster, every attempt
   records its (requested, wait) pair, and the Fig. 2 binning/OLS
   pipeline measures (alpha, gamma) from the simulated contention.

   Run with: dune exec examples/cluster_scheduler.exe *)

module Cost_model = Stochastic_core.Cost_model
module Strategy = Stochastic_core.Strategy
module Dist = Distributions.Dist

let () =
  let d = Distributions.Lognormal.default in
  let assumed = Cost_model.neuro_hpc in
  let strategy = Strategy.mean_by_mean in
  let sequence = strategy.Strategy.build assumed d in
  Format.printf "distribution: %a@." Dist.pp d;
  Format.printf "assumed cost model: %a@." Cost_model.pp assumed;

  (* A 32-node cluster at offered load 1.15: sustained contention. *)
  let nodes = 32 in
  let scale_min = 0.1 and scale_max = 10.0 in
  let arrival_rate =
    Scheduler.Workload.rate_for_load ~scale_min ~scale_max ~sequence
      ~load:1.15 ~cluster_nodes:nodes d
  in
  let spec =
    Scheduler.Workload.make_spec ~scale_min ~scale_max ~jobs:1000
      ~arrival_rate ()
  in
  let run policy =
    (* Same seed for both policies: identical arrivals, durations and
       node counts, so the comparison isolates the dispatch rule. *)
    let rng = Randomness.Rng.create ~seed:7 () in
    let workload = Scheduler.Workload.generate spec d ~sequence rng in
    Scheduler.Engine.run (Scheduler.Engine.make_config ~nodes ~policy ()) workload
  in
  let results = List.map run Scheduler.Policy.all in
  List.iter
    (fun r ->
      let s = Scheduler.Metrics.summarize ~model:assumed r in
      Format.printf "@.%a@." Scheduler.Metrics.pp_summary s)
    results;

  (* Close the loop on the EASY run. *)
  let easy =
    List.find
      (fun r -> r.Scheduler.Engine.policy = Scheduler.Policy.Easy_backfill)
      results
  in
  let fit, measured = Scheduler.Metrics.measured_cost_model easy in
  Format.printf
    "@.measured wait model: wait = %.3f * requested + %.3f h (R^2 %.2f)@."
    fit.Numerics.Regression.slope fit.Numerics.Regression.intercept
    fit.Numerics.Regression.r_squared;
  Format.printf "measured cost model: %a@." Cost_model.pp measured;

  (* Re-score the strategy under the model its own contention induced. *)
  let rng = Randomness.Rng.create ~seed:8 () in
  let samples = Dist.samples d rng 2000 in
  Array.sort compare samples;
  let score m = Strategy.evaluate_on m d ~sorted_samples:samples strategy in
  Format.printf
    "normalized E(cost) of %s: %.4f under the assumed model, %.4f under the \
     measured one@."
    strategy.Strategy.name (score assumed) (score measured)
