(* stochdomcheck — cross-module effect & domain-safety analysis.

   Works on the typedtrees (.cmt files, from -bin-annot) of the whole
   build, so it sees resolved paths and types where stochlint sees one
   parse tree at a time.

   Usage:
     stochdomcheck [OPTIONS] [CMT_ROOT...]

   CMT_ROOT directories are walked recursively for .cmt files; the
   default is _build/default when it exists (the usual dune layout),
   else the current directory.

   Options:
     --json               machine-readable findings report on stdout
     --report FILE        write the effect report (globals, entry
                          effect signatures) as JSON to FILE
     --baseline FILE      filter findings through a grandfathering file
     --update-baseline    rewrite FILE so the current findings pass
     --entry PATH         declare a parallel-candidate entry point
                          (repeatable; replaces the built-in list)
     --source-root DIR    resolve source paths for inline suppressions
                          against DIR (default: first CMT_ROOT)
     --context CTX        force context classification for every file
                          (lib:NAME | bin | test | other)
     --quiet              findings only, no summary line

   Exit codes: 0 clean, 1 findings, 2 load/usage error. *)

module L = Stochlint_lib

let usage () =
  prerr_endline
    "usage: stochdomcheck [--json] [--report FILE] [--baseline FILE]\n\
    \                     [--update-baseline] [--entry PATH]...\n\
    \                     [--source-root DIR] [--context CTX] [--quiet]\n\
    \                     [CMT_ROOT...]";
  exit 2

type options = {
  json : bool;
  report : string option;
  baseline : string option;
  update_baseline : bool;
  entries : string list;  (* reversed *)
  source_root : string option;
  context : L.Rules.context option;
  quiet : bool;
  roots : string list;  (* reversed *)
}

let parse_args argv =
  let opts =
    ref
      {
        json = false;
        report = None;
        baseline = None;
        update_baseline = false;
        entries = [];
        source_root = None;
        context = None;
        quiet = false;
        roots = [];
      }
  in
  let rec go = function
    | [] -> ()
    | "--json" :: rest ->
        opts := { !opts with json = true };
        go rest
    | "--update-baseline" :: rest ->
        opts := { !opts with update_baseline = true };
        go rest
    | "--quiet" :: rest ->
        opts := { !opts with quiet = true };
        go rest
    | "--report" :: file :: rest ->
        opts := { !opts with report = Some file };
        go rest
    | "--baseline" :: file :: rest ->
        opts := { !opts with baseline = Some file };
        go rest
    | "--entry" :: path :: rest ->
        opts := { !opts with entries = path :: !opts.entries };
        go rest
    | "--source-root" :: dir :: rest ->
        opts := { !opts with source_root = Some dir };
        go rest
    | "--context" :: ctx :: rest -> (
        match L.Rules.context_of_string ctx with
        | Ok c ->
            opts := { !opts with context = Some c };
            go rest
        | Error msg ->
            prerr_endline ("stochdomcheck: " ^ msg);
            usage ())
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
        prerr_endline ("stochdomcheck: unknown option " ^ arg);
        usage ()
    | root :: rest ->
        opts := { !opts with roots = root :: !opts.roots };
        go rest
  in
  go (List.tl (Array.to_list argv));
  let o = !opts in
  let roots =
    match o.roots with
    | [] ->
        if Sys.file_exists "_build/default" then [ "_build/default" ]
        else [ "." ]
    | r -> List.rev r
  in
  let entries =
    match o.entries with
    | [] -> L.Domcheck.default_entries
    | e -> List.rev e
  in
  { o with roots; entries = List.rev entries }

let severity_json rule =
  L.Json.Str (L.Finding.severity_to_string (L.Finding.severity rule))

let finding_json (f : L.Finding.t) =
  L.Json.Obj
    [
      ("file", L.Json.Str f.file);
      ("line", L.Json.Num (float_of_int f.line));
      ("col", L.Json.Num (float_of_int f.col));
      ("rule", L.Json.Str (L.Finding.rule_id f.rule));
      ("severity", severity_json f.rule);
      ("message", L.Json.Str f.message);
    ]

let () =
  let opts = parse_args Sys.argv in
  let baseline =
    match opts.baseline with
    | None -> L.Baseline.empty
    | Some file when opts.update_baseline ->
        if Sys.file_exists file then
          match L.Baseline.load file with
          | Ok b -> b
          | Error msg ->
              prerr_endline ("stochdomcheck: " ^ msg);
              exit 2
        else L.Baseline.empty
    | Some file -> (
        match L.Baseline.load file with
        | Ok b -> b
        | Error msg ->
            prerr_endline ("stochdomcheck: " ^ msg);
            exit 2)
  in
  let source_root =
    match (opts.source_root, opts.roots) with
    | Some d, _ -> d
    | None, root :: _ -> root
    | None, [] -> "."
  in
  let outcome =
    L.Domcheck.analyze ?context:opts.context ~source_root
      ~entries:opts.entries opts.roots
  in
  if outcome.units = 0 then begin
    Printf.eprintf
      "stochdomcheck: no .cmt files under %s — build with -bin-annot first \
       (dune does by default)\n"
      (String.concat " " opts.roots);
    exit 2
  end;
  List.iter
    (fun name ->
      Printf.eprintf
        "stochdomcheck: warning: entry `%s` matched no analysed function\n"
        name)
    outcome.unresolved_entries;
  (match opts.report with
  | None -> ()
  | Some file ->
      let oc = open_out_bin file in
      output_string oc (L.Json.to_string (L.Domcheck.report_json outcome));
      output_string oc "\n";
      close_out oc);
  if opts.update_baseline then begin
    match opts.baseline with
    | None ->
        prerr_endline
          "stochdomcheck: --update-baseline requires --baseline FILE";
        exit 2
    | Some file ->
        let b = L.Baseline.of_findings outcome.findings in
        let oc = open_out_bin file in
        output_string oc (L.Baseline.to_json_string b);
        close_out oc;
        Printf.printf
          "stochdomcheck: wrote %s (%d findings grandfathered)\n" file
          (List.length outcome.findings);
        exit 0
  end;
  let applied = L.Baseline.apply baseline outcome.findings in
  let kept = applied.kept in
  if opts.json then
    print_string
      (L.Json.to_string
         (L.Json.Obj
            [
              ("version", L.Json.Num 1.0);
              ("units", L.Json.Num (float_of_int outcome.units));
              ("functions", L.Json.Num (float_of_int outcome.functions));
              ("findings", L.Json.Arr (List.map finding_json kept));
              ( "suppressed",
                L.Json.Num (float_of_int outcome.suppressed) );
              ("baselined", L.Json.Num (float_of_int applied.baselined));
              ( "load_errors",
                L.Json.Arr
                  (List.map
                     (fun (e : L.Cmt_load.load_error) ->
                       L.Json.Obj
                         [
                           ("file", L.Json.Str e.le_file);
                           ("message", L.Json.Str e.le_message);
                         ])
                     outcome.load_errors) );
            ])
      ^ "\n")
  else begin
    List.iter (fun f -> print_endline (L.Finding.to_human f)) kept;
    List.iter
      (fun (file, rule, found, allowed) ->
        Printf.printf
          "%s: %s count %d exceeds the baselined %d — fix the new site or \
           refresh the baseline\n"
          file (L.Finding.rule_id rule) found allowed)
      applied.exceeded;
    if not opts.quiet then begin
      let errors, warnings =
        List.partition
          (fun (f : L.Finding.t) ->
            L.Finding.severity f.rule = L.Finding.Error)
          kept
      in
      Printf.printf
        "stochdomcheck: %d units, %d functions, %d globals (%d suppressed \
         inline), %d findings (%d errors, %d warnings), %d baselined\n"
        outcome.units outcome.functions
        (List.length outcome.globals)
        (List.length
           (List.filter
              (fun (g : L.Domcheck.global) -> Option.is_some g.g_suppressed)
              outcome.globals))
        (List.length kept) (List.length errors) (List.length warnings)
        applied.baselined
    end
  end;
  if kept <> [] then exit 1 else exit 0
