(* Command-line interface to the reservation-strategy library.

   Examples:
     stochastic-reservations sequence --dist lognormal --strategy brute-force
     stochastic-reservations evaluate --dist weibull --strategy equal-time
     stochastic-reservations simulate --input-trace runs.csv --jobs 2000 --hpc
     stochastic-reservations solve --dist lognormal --trace /tmp/solve.jsonl
     stochastic-reservations table2 --quick
     stochastic-reservations s1 *)

open Cmdliner

module Dist = Distributions.Dist
module Cost_model = Stochastic_core.Cost_model
module Strategy = Stochastic_core.Strategy
module Sequence = Stochastic_core.Sequence
module Expected_cost = Stochastic_core.Expected_cost

(* ------------------------- common arguments ----------------------- *)

let dist_arg =
  let doc =
    "Execution-time distribution: one of the Table 1 names (exponential, \
     weibull, gamma, lognormal, truncatednormal, pareto, uniform, beta, \
     boundedpareto) or 'vbmqa' / 'fmriqa' for the neuroscience fits."
  in
  Arg.(value & opt string "lognormal" & info [ "dist"; "d" ] ~docv:"NAME" ~doc)

let input_trace_arg =
  let doc =
    "CSV trace of execution times (one per line); used as an interpolated \
     empirical distribution instead of $(b,--dist)."
  in
  Arg.(value & opt (some file) None & info [ "input-trace" ] ~docv:"FILE" ~doc)

let fit_arg =
  let doc =
    "Fit a LogNormal to the $(b,--input-trace) CSV (as the paper does for \
     Fig. 1) instead of interpolating it directly."
  in
  Arg.(value & flag & info [ "fit-lognormal" ] ~doc)

(* Name resolution is shared with the serve daemon's JSONL request
   parser (Stochserve.Resolve), so the two surfaces cannot drift; the
   CLI's contribution is mapping the Error branch to usage exit 2. *)
let usage_exit = function
  | Ok v -> v
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2

let resolve_dist ?hpc name trace fit =
  usage_exit (Stochserve.Resolve.dist ?hpc ?trace:trace ~fit name)

let alpha_arg =
  Arg.(value & opt float 1.0 & info [ "alpha" ] ~docv:"A"
         ~doc:"Cost per unit of reserved time.")

let beta_arg =
  Arg.(value & opt float 0.0 & info [ "beta" ] ~docv:"B"
         ~doc:"Cost per unit of used time.")

let gamma_arg =
  Arg.(value & opt float 0.0 & info [ "gamma" ] ~docv:"G"
         ~doc:"Fixed cost per reservation.")

let hpc_arg =
  Arg.(value & flag
       & info [ "hpc" ]
           ~doc:
             "Use the NeuroHPC cost model (alpha=0.95, beta=1, gamma=1.05 \
              hours) instead of --alpha/--beta/--gamma.")

let resolve_model hpc alpha beta gamma =
  usage_exit (Stochserve.Resolve.model ~hpc ~alpha ~beta ~gamma)

let strategy_arg =
  let doc =
    "Reservation strategy: brute-force, mean-by-mean, mean-stdev, \
     mean-doubling, median-by-median, equal-time, equal-probability."
  in
  Arg.(value & opt string "brute-force" & info [ "strategy"; "s" ] ~docv:"NAME" ~doc)

let m_arg =
  Arg.(value & opt int 5000
       & info [ "m" ] ~docv:"M" ~doc:"Brute-force grid size.")

let n_mc_arg =
  Arg.(value & opt int 1000
       & info [ "n" ] ~docv:"N" ~doc:"Monte-Carlo sample count.")

let disc_n_arg =
  Arg.(value & opt int 1000
       & info [ "disc-n" ] ~docv:"K" ~doc:"Discretization sample count.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let resolve_strategy name ~m ~n ~disc_n ~seed =
  usage_exit (Stochserve.Resolve.strategy ~m ~n ~disc_n ~seed name)

(* ----------------------- observability flags ---------------------- *)

type obs_opts = {
  trace_file : string option;
  metrics_file : string option;
  profile : bool;
  fake_clock : bool;
}

let obs_term =
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:
               "Write a JSONL span trace of the run to $(docv) (one JSON \
                object per line; pipe through jq to inspect).")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:
               "Enable the profiling registry and write the run's metric \
                deltas to $(docv) as JSON.")
  in
  let profile =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:
               "Enable the profiling registry and print the metric deltas \
                to stderr when the run finishes.")
  in
  let fake_clock =
    Arg.(value & flag
         & info [ "fake-clock" ]
             ~doc:
               "Timestamp trace records with a deterministic counter clock \
                instead of CPU time, so same-seed runs produce byte-identical \
                trace files.")
  in
  Term.(
    const (fun trace_file metrics_file profile fake_clock ->
        { trace_file; metrics_file; profile; fake_clock })
    $ trace $ metrics $ profile $ fake_clock)

(* Run [f] under the observability options: build the trace sink, flip
   the global metrics registry on when requested, and emit the metric
   deltas (file and/or stderr) once [f] finishes — also on the error
   path, so a failed solve still leaves its trace and counters behind.
   [f] also receives the run's clock so every time source in the
   process (trace sink, solver budget guard, server uptime) reads the
   same instance — under --fake-clock, a second independent fake clock
   would silently desynchronize the timestamps. *)
let with_obs opts f =
  let module M = Stochobs.Metrics in
  let metrics_on = opts.profile || opts.metrics_file <> None in
  if metrics_on then M.set_enabled M.default true;
  let before = M.snapshot M.default in
  let finish () =
    if metrics_on then begin
      let delta =
        M.diff ~before ~after:(M.snapshot M.default)
        |> List.filter (fun (_, v) -> not (M.zero v))
      in
      (match opts.metrics_file with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc (Stochobs.Json.to_string (M.to_json delta));
              output_char oc '\n'));
      if opts.profile then Format.eprintf "%a@." M.pp delta
    end
  in
  let clock =
    if opts.fake_clock then Stochobs.Clock.fake () else Stochobs.Clock.cpu
  in
  Fun.protect ~finally:finish (fun () ->
      match opts.trace_file with
      | None -> f Stochobs.Trace.null clock
      | Some path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              f
                (Stochobs.Trace.make ~clock (Stochobs.Writer.of_channel oc))
                clock))

(* ---------------------------- commands ---------------------------- *)

let sequence_cmd =
  let run dist trace fit hpc alpha beta gamma strategy m n disc_n seed count =
    let d = resolve_dist ~hpc dist trace fit in
    let model = resolve_model hpc alpha beta gamma in
    let s = resolve_strategy strategy ~m ~n ~disc_n ~seed in
    let seq = s.Strategy.build model d in
    Format.printf "distribution: %a@." Dist.pp d;
    Format.printf "cost model:   %a@." Cost_model.pp model;
    Format.printf "strategy:     %s@." s.Strategy.name;
    Format.printf "sequence:     %a@." (Sequence.pp_prefix count) seq;
    let exact = Expected_cost.exact model d seq in
    Format.printf "expected cost: %.6f (normalized %.4f)@." exact
      (Expected_cost.normalized model d ~cost:exact)
  in
  let count_arg =
    Arg.(value & opt int 10
         & info [ "count"; "k" ] ~docv:"K" ~doc:"Reservations to print.")
  in
  Cmd.v
    (Cmd.info "sequence" ~doc:"Compute and print a reservation sequence.")
    Term.(
      const run $ dist_arg $ input_trace_arg $ fit_arg $ hpc_arg $ alpha_arg
      $ beta_arg $ gamma_arg $ strategy_arg $ m_arg $ n_mc_arg $ disc_n_arg
      $ seed_arg $ count_arg)

let evaluate_cmd =
  let run dist trace fit hpc alpha beta gamma strategy m n disc_n seed =
    let d = resolve_dist ~hpc dist trace fit in
    let model = resolve_model hpc alpha beta gamma in
    let s = resolve_strategy strategy ~m ~n ~disc_n ~seed in
    let rng = Randomness.Rng.create ~seed:(seed + 1) () in
    let v = Strategy.evaluate ~n ~rng model d s in
    Format.printf "%s on %s: normalized expected cost %.4f@." s.Strategy.name
      d.Dist.name v
  in
  Cmd.v
    (Cmd.info "evaluate"
       ~doc:"Monte-Carlo-evaluate a strategy's normalized expected cost.")
    Term.(
      const run $ dist_arg $ input_trace_arg $ fit_arg $ hpc_arg $ alpha_arg
      $ beta_arg $ gamma_arg $ strategy_arg $ m_arg $ n_mc_arg $ disc_n_arg
      $ seed_arg)

let simulate_cmd =
  let run dist trace fit hpc alpha beta gamma strategy m n disc_n seed jobs =
    let d = resolve_dist ~hpc dist trace fit in
    let model = resolve_model hpc alpha beta gamma in
    let s = resolve_strategy strategy ~m ~n ~disc_n ~seed in
    let seq = s.Strategy.build model d in
    let rng = Randomness.Rng.create ~seed:(seed + 2) () in
    let report = Platform.Simulator.run ~jobs model d seq rng in
    Format.printf "%s on %s:@.%a@." s.Strategy.name d.Dist.name
      Platform.Simulator.pp_report report
  in
  let jobs_arg =
    Arg.(value & opt int 1000
         & info [ "jobs" ] ~docv:"J" ~doc:"Number of jobs to simulate.")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Replay a strategy through the job-flow simulator.")
    Term.(
      const run $ dist_arg $ input_trace_arg $ fit_arg $ hpc_arg $ alpha_arg
      $ beta_arg $ gamma_arg $ strategy_arg $ m_arg $ n_mc_arg $ disc_n_arg
      $ seed_arg $ jobs_arg)

let bounds_cmd =
  let run dist trace fit hpc alpha beta gamma =
    let d = resolve_dist ~hpc dist trace fit in
    let model = resolve_model hpc alpha beta gamma in
    let lo, hi = Stochastic_core.Bounds.search_interval model d in
    Format.printf "distribution: %a@." Dist.pp d;
    Format.printf "t1 search interval (Theorem 2): (%.6g, %.6g]@." lo hi;
    if not (Dist.is_bounded d) then begin
      Format.printf "A1 = %.6g@." (Stochastic_core.Bounds.a1 model d);
      Format.printf "A2 = %.6g (upper bound on the optimal cost)@."
        (Stochastic_core.Bounds.a2 model d)
    end
  in
  Cmd.v
    (Cmd.info "bounds" ~doc:"Print the Theorem 2 search bounds.")
    Term.(
      const run $ dist_arg $ input_trace_arg $ fit_arg $ hpc_arg $ alpha_arg
      $ beta_arg $ gamma_arg)

let cloud_cmd =
  let run dist trace fit ratio m n seed =
    let d = resolve_dist dist trace fit in
    let pricing =
      Platform.Cloud.make_pricing ~reserved_hourly:1.0 ~on_demand_hourly:ratio
    in
    let s = Strategy.brute_force ~m ~n ~seed () in
    let rng = Randomness.Rng.create ~seed:(seed + 3) () in
    let normalized =
      Strategy.evaluate ~n ~rng Cost_model.reservation_only d s
    in
    let v = Platform.Cloud.compare_strategies pricing d ~normalized_cost:normalized in
    Format.printf "distribution: %a@." Dist.pp d;
    Format.printf "brute-force normalized cost: %.4f, OD/RI price ratio: %.2f@."
      normalized ratio;
    Format.printf
      "reserved cost/job: %.4f, on-demand cost/job: %.4f, advantage: %.2fx@."
      v.Platform.Cloud.reserved_total v.Platform.Cloud.on_demand_total
      v.Platform.Cloud.advantage;
    Format.printf "verdict: use %s@."
      (if v.Platform.Cloud.use_reserved then "RESERVED instances"
       else "ON-DEMAND")
  in
  let ratio_arg =
    Arg.(value & opt float 4.0
         & info [ "price-ratio" ] ~docv:"R"
             ~doc:"On-demand / reserved price ratio (AWS-like default 4).")
  in
  Cmd.v
    (Cmd.info "cloud"
       ~doc:"Decide Reserved Instances vs On-Demand for a workload.")
    Term.(
      const run $ dist_arg $ input_trace_arg $ fit_arg $ ratio_arg $ m_arg $ n_mc_arg
      $ seed_arg)

let cluster_cmd =
  let run dist trace fit hpc alpha beta gamma strategy m n disc_n seed jobs
      nodes policy load nodes_min nodes_max scale_min scale_max failure_rate
      fault_model weibull_shape repair max_retries backoff ckpt_period
      ckpt_cost restart_cost obs_opts =
    let d = resolve_dist ~hpc dist trace fit in
    let model = resolve_model hpc alpha beta gamma in
    let s = resolve_strategy strategy ~m ~n ~disc_n ~seed in
    let policy =
      match Scheduler.Policy.of_string policy with
      | Some p -> p
      | None ->
          Printf.eprintf "unknown policy %S (use fcfs or easy)\n" policy;
          exit 2
    in
    let fault_model_for mtbf =
      match String.lowercase_ascii fault_model with
      | "exponential" | "exp" -> Scheduler.Faults.exponential ~mtbf
      | "weibull" -> Scheduler.Faults.weibull ~mtbf ~shape:weibull_shape
      | "spot" -> Scheduler.Faults.spot ~mtbf ()
      | other ->
          Printf.eprintf
            "unknown fault model %S (use exponential, weibull or spot)\n"
            other;
          exit 2
    in
    (* Reject a bad model name even at rate 0, like every other enum. *)
    ignore (fault_model_for infinity);
    let faults =
      if failure_rate <= 0.0 then None
      else
        Some
          (Scheduler.Faults.make ~seed:(seed + 6) ~mean_repair:repair
             (fault_model_for (1.0 /. failure_rate)))
    in
    let retry = Scheduler.Engine.make_retry ?max_retries ~backoff () in
    let checkpoint =
      if ckpt_period <= 0.0 then None
      else
        Some
          (Scheduler.Job.make_checkpoint
             ~params:
               (Stochastic_core.Checkpoint.make_params
                  ~checkpoint_cost:ckpt_cost ~restart_cost)
             ~period:ckpt_period)
    in
    let seq = s.Strategy.build model d in
    let arrival_rate =
      Scheduler.Workload.rate_for_load ~nodes_min ~nodes_max ~scale_min
        ~scale_max ~sequence:seq ~load ~cluster_nodes:nodes d
    in
    let spec =
      Scheduler.Workload.make_spec ~nodes_min ~nodes_max ~scale_min ~scale_max
        ~jobs ~arrival_rate ()
    in
    let rng = Randomness.Rng.create ~seed:(seed + 4) () in
    let workload =
      Scheduler.Workload.generate ?checkpoint spec d ~sequence:seq rng
    in
    with_obs obs_opts @@ fun obs _clock ->
    let result =
      Scheduler.Engine.run
        (Scheduler.Engine.make_config ~obs ?faults ~retry ~nodes ~policy ())
        workload
    in
    let summary = Scheduler.Metrics.summarize ~model result in
    Format.printf "distribution: %a@." Dist.pp d;
    Format.printf "cost model:   %a@." Cost_model.pp model;
    Format.printf "strategy:     %s, policy: %s@." s.Strategy.name
      (Scheduler.Policy.name policy);
    (match faults with
    | None -> ()
    | Some f ->
        Format.printf
          "faults:       %s, MTBF %.2f h/node, mean repair %.2f h, retries \
           %s, backoff %.2f h@."
          (Scheduler.Faults.model_name f)
          (Scheduler.Faults.mtbf f) repair
          (match max_retries with
          | None -> "unlimited"
          | Some r -> string_of_int r)
          backoff);
    (match checkpoint with
    | None -> ()
    | Some c ->
        Format.printf
          "checkpoints:  every %.2f h of work, snapshot %.2f h, restore %.2f \
           h@."
          c.Scheduler.Job.period ckpt_cost restart_cost);
    Format.printf "workload:     %d jobs, offered load %.2f (rate %.3f/h, \
                   %d-%d nodes/job)@."
      jobs
      (Scheduler.Workload.offered_load ~sequence:seq spec ~cluster_nodes:nodes
         d)
      arrival_rate nodes_min nodes_max;
    Format.printf "@[%a@]@." Scheduler.Metrics.pp_summary summary;
    let fit = Scheduler.Metrics.measured_fit (Scheduler.Metrics.wait_records result) in
    Format.printf
      "measured wait model: wait = %.4f * requested + %.4f h  (R^2 = %.3f)@."
      fit.Numerics.Regression.slope fit.Numerics.Regression.intercept
      fit.Numerics.Regression.r_squared;
    match Platform.Hpc_queue.cost_model_of_fit fit with
    | measured ->
        Format.printf "measured cost model: %a@." Cost_model.pp measured;
        let eval_rng = Randomness.Rng.create ~seed:(seed + 5) () in
        let samples = Dist.samples d eval_rng n in
        Array.sort compare samples;
        let score m = Strategy.evaluate_on m d ~sorted_samples:samples s in
        Format.printf
          "normalized E(cost) of %s: %.4f assumed model, %.4f measured model@."
          s.Strategy.name (score model) (score measured)
    | exception Invalid_argument _ ->
        Format.printf
          "measured cost model: unusable fit (no affine contention signal)@."
  in
  let jobs_arg =
    Arg.(value & opt int 500
         & info [ "jobs" ] ~docv:"J" ~doc:"Number of jobs to simulate.")
  in
  let nodes_arg =
    Arg.(value & opt int 64
         & info [ "nodes" ] ~docv:"P" ~doc:"Cluster node count.")
  in
  let policy_arg =
    Arg.(value & opt string "easy"
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"Queueing policy: fcfs or easy (EASY backfilling).")
  in
  let load_arg =
    Arg.(value & opt float 1.15
         & info [ "load" ] ~docv:"L"
             ~doc:"Offered load: arrival work rate over cluster capacity.")
  in
  let nodes_min_arg =
    Arg.(value & opt int 1
         & info [ "min-nodes" ] ~docv:"N" ~doc:"Smallest per-job node count.")
  in
  let nodes_max_arg =
    Arg.(value & opt int 8
         & info [ "max-nodes" ] ~docv:"N" ~doc:"Largest per-job node count.")
  in
  let scale_min_arg =
    Arg.(value & opt float 0.1
         & info [ "min-scale" ] ~docv:"C"
             ~doc:"Smallest job size-class factor (log-uniform).")
  in
  let scale_max_arg =
    Arg.(value & opt float 10.0
         & info [ "max-scale" ] ~docv:"C"
             ~doc:"Largest job size-class factor (log-uniform).")
  in
  let failure_rate_arg =
    Arg.(value & opt float 0.0
         & info [ "failure-rate" ] ~docv:"R"
             ~doc:
               "Per-node failures per hour (0 = perfectly reliable cluster).")
  in
  let fault_model_arg =
    Arg.(value & opt string "exponential"
         & info [ "fault-model" ] ~docv:"M"
             ~doc:
               "Failure interarrival model: exponential, weibull, or spot \
                (bursty spot-instance revocations).")
  in
  let weibull_shape_arg =
    Arg.(value & opt float 1.5
         & info [ "weibull-shape" ] ~docv:"K"
             ~doc:"Weibull hazard shape (>1 ageing, <1 infant mortality).")
  in
  let repair_arg =
    Arg.(value & opt float 0.1
         & info [ "repair" ] ~docv:"H"
             ~doc:"Mean node repair time in hours (exponential).")
  in
  let max_retries_arg =
    Arg.(value & opt (some int) None
         & info [ "max-retries" ] ~docv:"N"
             ~doc:
               "Failure-caused resubmissions allowed per job before it is \
                abandoned (default: unlimited).")
  in
  let backoff_arg =
    Arg.(value & opt float 0.0
         & info [ "backoff" ] ~docv:"H"
             ~doc:"Delay in hours before resubmitting a failure-killed job.")
  in
  let ckpt_period_arg =
    Arg.(value & opt float 0.0
         & info [ "ckpt-period" ] ~docv:"H"
             ~doc:
               "Hours of work between checkpoints (0 = no checkpointing; \
                scaled by each job's size class).")
  in
  let ckpt_cost_arg =
    Arg.(value & opt float 0.05
         & info [ "ckpt-cost" ] ~docv:"H"
             ~doc:"Time to write one checkpoint snapshot, in hours.")
  in
  let restart_cost_arg =
    Arg.(value & opt float 0.05
         & info [ "restart-cost" ] ~docv:"H"
             ~doc:"Time to restore from a snapshot, in hours.")
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Simulate many stochastic jobs contending for a cluster — \
          optionally with fault injection and checkpoint-aware recovery — \
          and measure the wait-time model that the NeuroHPC scenario \
          assumes.")
    Term.(
      const run $ dist_arg $ input_trace_arg $ fit_arg $ hpc_arg $ alpha_arg
      $ beta_arg $ gamma_arg $ strategy_arg $ m_arg $ n_mc_arg $ disc_n_arg
      $ seed_arg $ jobs_arg $ nodes_arg $ policy_arg $ load_arg
      $ nodes_min_arg $ nodes_max_arg $ scale_min_arg $ scale_max_arg
      $ failure_rate_arg $ fault_model_arg $ weibull_shape_arg $ repair_arg
      $ max_retries_arg $ backoff_arg $ ckpt_period_arg $ ckpt_cost_arg
      $ restart_cost_arg $ obs_term)

(* --------------------- robust solving commands -------------------- *)

let check_cmd =
  let run dist trace fit hpc strict =
    let d = resolve_dist ~hpc dist trace fit in
    let report = Robust.Dist_check.run d in
    Format.printf "%a@." Robust.Dist_check.pp report;
    if not (Robust.Dist_check.is_valid report) then exit 4
    else if strict && Robust.Dist_check.warnings report <> [] then exit 3
  in
  let strict_arg =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Exit non-zero (3) when the check emits warnings.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the numerical self-check on a distribution and print the \
          diagnostic report. Exits 4 on fatal inconsistencies.")
    Term.(
      const run $ dist_arg $ input_trace_arg $ fit_arg $ hpc_arg $ strict_arg)

(* Two-tier spot options for `solve`: --spot-price turns the mode on;
   the rest shape the regime. Kept in a record so the solve term stays
   readable. *)
type spot_opts = {
  spot_price : float option;
  spot_mtbf : float;
  spot_recovery : string;
  spot_ckpt_period : float;
  spot_ckpt_cost : float;
  spot_restore : float;
}

let spot_term =
  let price =
    Arg.(value & opt (some float) None
         & info [ "spot-price" ] ~docv:"R"
             ~doc:
               "Enable the two-tier spot/on-demand solve: spot capacity \
                costs $(docv) per on-demand hour (in (0, 1]) but is revoked \
                by a memoryless process (see $(b,--spot-mtbf)).")
  in
  let mtbf =
    Arg.(value & opt float 20.0
         & info [ "spot-mtbf" ] ~docv:"H"
             ~doc:
               "Mean time between spot revocations in hours (inf = never \
                revoked).")
  in
  let recovery =
    Arg.(value & opt string "checkpoint"
         & info [ "spot-recovery" ] ~docv:"MODE"
             ~doc:
               "Recovery discipline after a revocation or expiry: \
                'checkpoint' (periodic snapshots survive) or 'restart' \
                (from scratch, the base paper's semantics).")
  in
  let ckpt_period =
    Arg.(value & opt float 1.0
         & info [ "spot-ckpt-period" ] ~docv:"H"
             ~doc:"Hours of useful work between snapshots.")
  in
  let ckpt_cost =
    Arg.(value & opt float 0.05
         & info [ "spot-ckpt-cost" ] ~docv:"H"
             ~doc:"Hours to write one snapshot.")
  in
  let restore =
    Arg.(value & opt float 0.05
         & info [ "spot-restore" ] ~docv:"H"
             ~doc:"Hours to resume from the last snapshot.")
  in
  Term.(
    const (fun spot_price spot_mtbf spot_recovery spot_ckpt_period
               spot_ckpt_cost spot_restore ->
        {
          spot_price;
          spot_mtbf;
          spot_recovery;
          spot_ckpt_period;
          spot_ckpt_cost;
          spot_restore;
        })
    $ price $ mtbf $ recovery $ ckpt_period $ ckpt_cost $ restore)

let solve_cmd =
  let run dist trace fit hpc alpha beta gamma m n disc_n seed count strict
      no_validate exact quick max_seconds max_evals tiers spot_opts obs_opts =
    let d = resolve_dist ~hpc dist trace fit in
    let model = resolve_model hpc alpha beta gamma in
    let base =
      if quick then Robust.Solver.quick_budget
      else Robust.Solver.default_budget
    in
    let budget =
      {
        Robust.Solver.bf_candidates = m;
        mc_samples = n;
        dp_points = disc_n;
        max_seconds = Option.value max_seconds ~default:base.Robust.Solver.max_seconds;
        max_evaluations =
          Option.value max_evals ~default:base.Robust.Solver.max_evaluations;
      }
    in
    let tiers =
      match tiers with
      | None -> Robust.Solver.all_tiers
      | Some names -> usage_exit (Stochserve.Resolve.tiers_of_string names)
    in
    let check_strict sol =
      if strict && Robust.Solver.degraded sol then begin
        (match sol.Robust.Solver.diagnostics.Robust.Solver.rejected with
        | r :: _ ->
            Format.eprintf
              "strict mode: degraded to %s because %s was rejected (%s)@."
              (Robust.Solver.tier_name
                 sol.Robust.Solver.diagnostics.Robust.Solver.chosen)
              (Robust.Solver.tier_name r.Robust.Solver.tier)
              (Robust.Solver.error_to_string r.Robust.Solver.reason)
        | [] ->
            Format.eprintf
              "strict mode: degraded to %s (no rejection diagnostics)@."
              (Robust.Solver.tier_name
                 sol.Robust.Solver.diagnostics.Robust.Solver.chosen));
        exit 3
      end
    in
    with_obs obs_opts @@ fun obs clock ->
    match spot_opts.spot_price with
    | Some price_ratio -> (
        let recovery =
          match String.lowercase_ascii spot_opts.spot_recovery with
          | "restart" -> Stochastic_core.Spot_cost.Restart
          | "checkpoint" | "snapshot" ->
              Stochastic_core.Spot_cost.Snapshot
                {
                  period = spot_opts.spot_ckpt_period;
                  snapshot_cost = spot_opts.spot_ckpt_cost;
                  restore_cost = spot_opts.spot_restore;
                }
          | other ->
              Printf.eprintf
                "unknown spot recovery %S (use checkpoint or restart)\n" other;
              exit 2
        in
        match
          Robust.Solver.solve_spot ~obs ~clock ~budget ~tiers
            ~validate:(not no_validate) ~exact ~seed ~recovery ~price_ratio
            ~revocation_rate:(1.0 /. spot_opts.spot_mtbf) model d
        with
        | Error e ->
            Format.eprintf "spot solve failed: %a@." Robust.Solver.pp_error e;
            exit (Robust.Solver.exit_code e)
        | Ok sol ->
            let module Spot_cost = Stochastic_core.Spot_cost in
            Format.printf "distribution: %a@." Dist.pp d;
            Format.printf "cost model:   %a@." Cost_model.pp model;
            Format.printf "%a@." Robust.Solver.pp_diagnostics
              sol.Robust.Solver.base.Robust.Solver.diagnostics;
            let regime = sol.Robust.Solver.regime in
            Format.printf
              "spot regime:  price %.2f, revocation MTBF %.4g h, %s@."
              regime.Spot_cost.price_ratio
              (if regime.Spot_cost.revocation_rate > 0.0 then
                 1.0 /. regime.Spot_cost.revocation_rate
               else infinity)
              (match regime.Spot_cost.recovery with
              | Spot_cost.Restart -> "restart recovery"
              | Spot_cost.Snapshot { period; snapshot_cost; restore_cost } ->
                  Printf.sprintf
                    "snapshots every %g h (write %g h, restore %g h)" period
                    snapshot_cost restore_cost);
            let plan = sol.Robust.Solver.plan in
            let k = Array.length plan.Spot_cost.lengths in
            let shown = min count k in
            Format.printf "plan:         [";
            for i = 0 to shown - 1 do
              if i > 0 then Format.printf "; ";
              Format.printf "%.4g %s"
                plan.Spot_cost.lengths.(i)
                (Spot_cost.tier_name plan.Spot_cost.tiers.(i))
            done;
            if k > shown then Format.printf "; ...";
            Format.printf "] (%d/%d spot)@." (Spot_cost.spot_slots plan) k;
            Format.printf
              "expected cost: %.6f (on-demand floor %.6f, savings %.1f%%)@."
              sol.Robust.Solver.spot_cost sol.Robust.Solver.on_demand_cost
              (100.0 *. sol.Robust.Solver.savings);
            check_strict sol.Robust.Solver.base)
    | None -> (
    match
      Robust.Solver.solve ~obs ~clock ~budget ~tiers ~validate:(not no_validate)
        ~exact ~seed model d
    with
    | Error e ->
        Format.eprintf "solve failed: %a@." Robust.Solver.pp_error e;
        exit (Robust.Solver.exit_code e)
    | Ok sol ->
        Format.printf "distribution: %a@." Dist.pp d;
        Format.printf "cost model:   %a@." Cost_model.pp model;
        Format.printf "%a@." Robust.Solver.pp_diagnostics
          sol.Robust.Solver.diagnostics;
        let shown = min count (Array.length sol.Robust.Solver.head) in
        Format.printf "sequence:     [";
        for i = 0 to shown - 1 do
          if i > 0 then Format.printf "; ";
          Format.printf "%.4g" sol.Robust.Solver.head.(i)
        done;
        if Array.length sol.Robust.Solver.head > shown then
          Format.printf "; ...";
        Format.printf "]@.";
        Format.printf "expected cost: %.6f (normalized %.4f)@."
          sol.Robust.Solver.cost sol.Robust.Solver.normalized;
        check_strict sol)
  in
  let count_arg =
    Arg.(value & opt int 10
         & info [ "count"; "k" ] ~docv:"K" ~doc:"Reservations to print.")
  in
  let strict_arg =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:
               "Exit non-zero (3) when the answer did not come from the \
                first cascade tier.")
  in
  let no_validate_arg =
    Arg.(value & flag
         & info [ "no-validate" ]
             ~doc:"Skip the distribution self-check before solving.")
  in
  let exact_arg =
    Arg.(value & flag
         & info [ "exact" ]
             ~doc:
               "Rank brute-force candidates by the deterministic Eq. (4) \
                series instead of Monte-Carlo.")
  in
  let quick_budget_arg =
    Arg.(value & flag
         & info [ "quick-budget" ]
             ~doc:"Start from the reduced smoke-test budget.")
  in
  let max_seconds_arg =
    Arg.(value & opt (some float) None
         & info [ "max-seconds" ] ~docv:"S"
             ~doc:"Wall-clock guard for the whole solve.")
  in
  let max_evals_arg =
    Arg.(value & opt (some int) None
         & info [ "max-evaluations" ] ~docv:"E"
             ~doc:"Total evaluation budget across all tiers.")
  in
  let tiers_arg =
    Arg.(value & opt (some string) None
         & info [ "tiers" ] ~docv:"T1,T2,..."
             ~doc:
               "Comma-separated cascade (subset/reorder of brute-force, dp, \
                mean-doubling).")
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:
         "Solve through the validated, budgeted fallback cascade \
          (brute-force, then equal-probability DP, then mean-doubling) and \
          print the cascade diagnostics. With $(b,--spot-price) the solved \
          head is additionally tier-assigned across revocable spot and \
          reliable on-demand capacity (checkpoint-aware). Exit codes: 0 ok, \
          3 strict-mode degradation, 4 invalid distribution, 5 \
          non-convergent, 6 budget exhausted, 7 invalid parameter.")
    Term.(
      const run $ dist_arg $ input_trace_arg $ fit_arg $ hpc_arg $ alpha_arg
      $ beta_arg $ gamma_arg $ m_arg $ n_mc_arg $ disc_n_arg $ seed_arg
      $ count_arg $ strict_arg $ no_validate_arg $ exact_arg
      $ quick_budget_arg $ max_seconds_arg $ max_evals_arg $ tiers_arg
      $ spot_term $ obs_term)

let serve_cmd =
  let run socket capacity grid seed full_budget max_seconds max_evals persist
      deadline obs_opts =
    let base =
      if full_budget then Robust.Solver.default_budget
      else Robust.Solver.quick_budget
    in
    let budget =
      {
        base with
        Robust.Solver.max_seconds =
          Option.value max_seconds ~default:base.Robust.Solver.max_seconds;
        max_evaluations =
          Option.value max_evals ~default:base.Robust.Solver.max_evaluations;
      }
    in
    let config =
      {
        Stochserve.Server.default_config with
        Stochserve.Server.cache_capacity = capacity;
        grid;
        budget;
        seed;
        deadline;
      }
    in
    let config = usage_exit (Stochserve.Server.check_config config) in
    with_obs obs_opts @@ fun obs clock ->
    (* Writing to a hung-up client must surface as EPIPE (caught per
       client), not kill the daemon with an unhandled SIGPIPE. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ());
    (* SIGTERM/SIGINT request a graceful stop: finish the request in
       flight, flush the journal, remove the socket, exit. The flag is
       observed between requests; a blocking accept is interrupted
       (EINTR) and re-checks it. *)
    let stop_requested = ref false in
    let request_stop = Sys.Signal_handle (fun _ -> stop_requested := true) in
    (try
       Sys.set_signal Sys.sigterm request_stop;
       Sys.set_signal Sys.sigint request_stop
     with Invalid_argument _ | Sys_error _ -> ());
    let journal =
      Option.map
        (fun path ->
          let j = Stochserve.Journal.open_ path in
          let s = Stochserve.Journal.stats j in
          if
            s.Stochserve.Journal.recovered_records > 0
            || s.Stochserve.Journal.skipped_corrupt > 0
          then
            Printf.eprintf
              "stochastic serve: journal %s: recovered %d record(s), skipped \
               %d corrupt\n%!"
              path s.Stochserve.Journal.recovered_records
              s.Stochserve.Journal.skipped_corrupt;
          j)
        persist
    in
    (* A daemon always records its instruments: the metrics request
       kind serves them live as a Prometheus exposition, which is
       pointless over a disabled registry. (One-shot commands keep the
       opt-in --profile/--metrics gating.) *)
    Stochobs.Metrics.set_enabled Stochobs.Metrics.default true;
    let server =
      Stochserve.Server.create ~obs ~clock ~metrics:Stochobs.Metrics.default
        ?journal config
    in
    (* Hard watchdog on top of the server's cooperative deadline: the
       solver checks its budget between candidates, so a single
       pathological evaluation could overstay. SIGALRM at ~2x the
       deadline converts that into a typed code-6 response. Unix lives
       here in bin/, so the library stays deterministic. *)
    let exception Watchdog_timeout in
    let handle_request line =
      match deadline with
      | None -> Stochserve.Server.handle_line server line
      | Some d ->
          let fuse = (2.0 *. d) +. 0.5 in
          let arm v =
            ignore
              (Unix.setitimer Unix.ITIMER_REAL
                 { Unix.it_interval = 0.0; it_value = v })
          in
          let old =
            Sys.signal Sys.sigalrm
              (Sys.Signal_handle (fun _ -> raise Watchdog_timeout))
          in
          let disarm () =
            arm 0.0;
            Sys.set_signal Sys.sigalrm old
          in
          arm fuse;
          (match Stochserve.Server.handle_line server line with
          | resp ->
              disarm ();
              resp
          | exception Watchdog_timeout ->
              disarm ();
              let e =
                {
                  Stochserve.Protocol.code = 6;
                  label = "budget-exhausted";
                  detail =
                    Printf.sprintf
                      "hard watchdog fired after %.3gs (deadline %gs)" fuse d;
                }
              in
              (Some (Stochserve.Protocol.error_response ~id:None e), false))
    in
    let finish () = Stochserve.Server.close server in
    match socket with
    | None ->
        let recv () =
          if !stop_requested then None else In_channel.input_line stdin
        in
        let send line =
          print_string line;
          print_newline ();
          flush stdout
        in
        Fun.protect ~finally:finish (fun () ->
            try
              let rec loop () =
                match recv () with
                | None -> ()
                | Some line ->
                    let resp, stop = handle_request line in
                    Option.iter send resp;
                    if not stop then loop ()
              in
              loop ()
            with Sys_error _ ->
              (* An interrupted stdin read during shutdown. *)
              ())
    | Some path ->
        (* Sequential accept loop: one client at a time, each pumped
           until it hangs up. A shutdown request or a SIGTERM/SIGINT
           ends the daemon; the socket file is removed on the way out,
           and a stale one from an unclean death is removed on the way
           in. *)
        (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
        let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind sock (Unix.ADDR_UNIX path);
        Unix.listen sock 8;
        let stopped = ref false in
        (* Retry EINTR: any signal delivery interrupts accept; only a
           stop request should end the loop. *)
        let rec accept_retry () =
          if !stop_requested then None
          else
            match Unix.accept sock with
            | conn -> Some conn
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_retry ()
        in
        Fun.protect
          ~finally:(fun () ->
            finish ();
            (try Unix.close sock with Unix.Unix_error _ -> ());
            try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
          (fun () ->
            while not (!stopped || !stop_requested) do
              match accept_retry () with
              | None -> ()
              | Some (conn, _) ->
                  let ic = Unix.in_channel_of_descr conn in
                  let oc = Unix.out_channel_of_descr conn in
                  (try
                     let rec pump () =
                       match In_channel.input_line ic with
                       | None -> ()
                       | Some line ->
                           let resp, stop = handle_request line in
                           Option.iter
                             (fun r ->
                               output_string oc r;
                               output_char oc '\n';
                               flush oc)
                             resp;
                           if stop then stopped := true
                           else if not !stop_requested then pump ()
                     in
                     pump ()
                   with Sys_error _ | Unix.Unix_error _ ->
                     (* A dropped client must not take the daemon
                        down. *)
                     ());
                  (try Unix.close conn with Unix.Unix_error _ -> ())
            done)
  in
  let socket_arg =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:
               "Listen on a Unix-domain socket at $(docv) (one client at a \
                time) instead of reading stdin and writing stdout.")
  in
  let capacity_arg =
    Arg.(value & opt int 1024
         & info [ "cache-capacity" ] ~docv:"N"
             ~doc:"Solved-strategy LRU cache capacity (entries).")
  in
  let grid_arg =
    Arg.(value & opt float Stochserve.Quantize.default_grid
         & info [ "grid" ] ~docv:"G"
             ~doc:
               "Relative quantization grid for cache keys: parameters within \
                a factor of (1+$(docv)) land in the same bucket, so \
                near-identical tenant fits share one solved entry.")
  in
  let full_budget_arg =
    Arg.(value & flag
         & info [ "full-budget" ]
             ~doc:
               "Base per-solve budget: start from the paper-scale default \
                instead of the daemon's interactive quick budget. Requests \
                can still override fields per solve.")
  in
  let max_seconds_arg =
    Arg.(value & opt (some float) None
         & info [ "max-seconds" ] ~docv:"S"
             ~doc:"Base wall-clock guard per solve.")
  in
  let max_evals_arg =
    Arg.(value & opt (some int) None
         & info [ "max-evaluations" ] ~docv:"E"
             ~doc:"Base evaluation budget per solve.")
  in
  let persist_arg =
    Arg.(value & opt (some string) None
         & info [ "persist" ] ~docv:"PATH"
             ~doc:
               "Journal successful solves to $(docv) (checksummed \
                append-only records) and warm the cache from it on \
                startup. Recovery skips and counts corrupt or torn \
                records; it never refuses to start.")
  in
  let deadline_arg =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"S"
             ~doc:
               "Per-request deadline in seconds: caps each solve's time \
                budget, arms a hard SIGALRM watchdog at ~2x $(docv), and \
                drives overload shedding (consecutive near-deadline \
                requests switch cache misses to degraded mean-doubling \
                answers until pressure drains).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the strategy-as-a-service daemon: a JSONL request loop \
          (kinds: solve, fit, stats, metrics, shutdown) over stdin/stdout or a \
          Unix-domain socket, with a solved-strategy LRU cache keyed by \
          quantized distribution parameters. Error responses carry the \
          solver exit codes (2 usage, 4-7 solver taxonomy). With \
          $(b,--persist) the cache survives restarts and crashes; with \
          $(b,--deadline) slow requests are bounded and overload sheds to \
          degraded answers. SIGTERM/SIGINT stop the daemon gracefully \
          (journal flushed, socket removed).")
    Term.(
      const run $ socket_arg $ capacity_arg $ grid_arg $ seed_arg
      $ full_budget_arg $ max_seconds_arg $ max_evals_arg $ persist_arg
      $ deadline_arg $ obs_term)

(* Experiment commands share a tiny driver. *)

let quick_arg =
  Arg.(value & flag
       & info [ "quick" ] ~doc:"Reduced parameters (fast smoke run).")

let verbose_arg =
  Arg.(value & flag
       & info [ "verbose"; "v" ]
           ~doc:"Log experiment progress to stderr as cells complete.")

let experiment_cmd name doc run =
  let exec quick verbose obs_opts =
    let cfg =
      if quick then Experiments.Config.quick else Experiments.Config.paper
    in
    let log =
      if verbose then
        Stochobs.Log.make ~min_level:Stochobs.Log.Debug
          (Stochobs.Writer.of_channel stderr)
      else Stochobs.Log.null
    in
    with_obs obs_opts @@ fun obs _clock ->
    Stochobs.Trace.with_span obs
      ~attrs:
        [
          ("experiment", Stochobs.Trace.Str name);
          ("quick", Stochobs.Trace.Bool quick);
        ]
      "experiments.run"
    @@ fun () -> print_string (run cfg log)
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(const exec $ quick_arg $ verbose_arg $ obs_term)

let table2_cmd =
  experiment_cmd "table2" "Reproduce Table 2." (fun cfg _log ->
      Experiments.Table2.(to_string (run ~cfg ())))

let table3_cmd =
  experiment_cmd "table3" "Reproduce Table 3." (fun cfg _log ->
      Experiments.Table3.(to_string (run ~cfg ())))

let table4_cmd =
  experiment_cmd "table4" "Reproduce Table 4." (fun cfg _log ->
      Experiments.Table4.(to_string (run ~cfg ())))

let fig1_cmd =
  experiment_cmd "fig1" "Reproduce Figure 1." (fun cfg _log ->
      Experiments.Fig1.(to_string (run ~cfg ())))

let fig2_cmd =
  experiment_cmd "fig2" "Reproduce Figure 2." (fun cfg _log ->
      Experiments.Fig2.(to_string (run ~cfg ())))

let fig3_cmd =
  experiment_cmd "fig3" "Reproduce Figure 3." (fun cfg _log ->
      Experiments.Fig3.(to_string (run ~cfg ())))

let fig4_cmd =
  experiment_cmd "fig4" "Reproduce Figure 4." (fun cfg _log ->
      Experiments.Fig4.(to_string (run ~cfg ())))

let s1_cmd =
  experiment_cmd "s1" "Compute the Exp(1) optimum of Sect. 3.5." (fun cfg _log ->
      Experiments.Exp_s1.(to_string (run ~cfg ())))

let table2x_cmd =
  experiment_cmd "table2x"
    "Extended Table 2 over the beyond-the-paper distributions." (fun cfg _log ->
      Experiments.Table2x.(to_string (run ~cfg ())))

let ablation_bf_cmd =
  experiment_cmd "ablation-bf"
    "Ablation: brute-force resolution and MC selection optimism." (fun cfg _log ->
      Experiments.Ablation_bf.(to_string (run ~cfg ())))

let ablation_eps_cmd =
  experiment_cmd "ablation-eps"
    "Ablation: truncation quantile for the discretization schemes."
    (fun cfg _log -> Experiments.Ablation_eps.(to_string (run ~cfg ())))

let robustness_cmd =
  experiment_cmd "robustness"
    "Ablation: strategies computed from finite-trace fits vs the oracle."
    (fun cfg _log -> Experiments.Robustness.(to_string (run ~cfg ())))

let robust_solve_cmd =
  experiment_cmd "robust-solve"
    "Bench the robust solver cascade (tier counts, validation overhead) over \
     the Table 1 distributions."
    (fun cfg log -> Experiments.Robust_solve.(to_string (run ~cfg ~log ())))

let trace_vs_fit_cmd =
  experiment_cmd "trace-vs-fit"
    "Ablation: interpolated-trace vs LogNormal-fit strategies." (fun cfg _log ->
      Experiments.Trace_vs_fit.(to_string (run ~cfg ())))

(* Not via [experiment_cmd]: quick mode also trims the Monte-Carlo
   replication count and the assignment discretization, not just the
   solver budget. *)
let spot_savings_cmd =
  let exec quick verbose obs_opts =
    let cfg =
      if quick then Experiments.Config.quick else Experiments.Config.paper
    in
    let log =
      if verbose then
        Stochobs.Log.make ~min_level:Stochobs.Log.Debug
          (Stochobs.Writer.of_channel stderr)
      else Stochobs.Log.null
    in
    with_obs obs_opts @@ fun obs _clock ->
    Stochobs.Trace.with_span obs
      ~attrs:
        [
          ("experiment", Stochobs.Trace.Str "spot-savings");
          ("quick", Stochobs.Trace.Bool quick);
        ]
      "experiments.run"
    @@ fun () ->
    let t =
      if quick then
        Experiments.Spot_savings.run ~cfg ~log ~ratios:[ 0.3; 0.8 ]
          ~mc_reps:4000 ~assign_disc_n:300 ()
      else Experiments.Spot_savings.run ~cfg ~log ()
    in
    print_string (Experiments.Spot_savings.to_string t)
  in
  Cmd.v
    (Cmd.info "spot-savings"
       ~doc:
         "Sweep revocation MTBF x spot price ratio: checkpointed spot vs \
          pure on-demand vs naive spot, with seeded Monte-Carlo validation.")
    Term.(const exec $ quick_arg $ verbose_arg $ obs_term)

let main =
  let doc = "Reservation strategies for stochastic jobs (IPDPS 2019)" in
  Cmd.group
    (Cmd.info "stochastic-reservations" ~version:"1.0.0" ~doc)
    [
      sequence_cmd;
      solve_cmd;
      serve_cmd;
      check_cmd;
      evaluate_cmd;
      simulate_cmd;
      cluster_cmd;
      bounds_cmd;
      cloud_cmd;
      table2_cmd;
      table3_cmd;
      table4_cmd;
      fig1_cmd;
      fig2_cmd;
      fig3_cmd;
      fig4_cmd;
      s1_cmd;
      table2x_cmd;
      ablation_bf_cmd;
      ablation_eps_cmd;
      robustness_cmd;
      robust_solve_cmd;
      trace_vs_fit_cmd;
      spot_savings_cmd;
    ]

let () = exit (Cmd.eval main)
