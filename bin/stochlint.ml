(* stochlint — project-specific static analysis for the stochastic
   reservations repo.

   Usage:
     stochlint [OPTIONS] [PATH...]

   Paths default to lib bin test bench examples. Directories are
   walked recursively for .ml and .mli files (skipping _build and
   fixtures); explicit file paths are linted verbatim, fixtures
   included.

   Options:
     --json               machine-readable report on stdout
     --baseline FILE      filter findings through a grandfathering file
     --update-baseline    rewrite FILE so the current findings pass
     --context CTX        force context classification for every file
                          (lib:NAME | bin | test | other)
     --quiet              findings only, no summary line

   Exit codes: 0 clean, 1 findings, 2 parse/usage error. *)

module L = Stochlint_lib

let usage () =
  prerr_endline
    "usage: stochlint [--json] [--baseline FILE] [--update-baseline]\n\
    \                 [--context lib:NAME|bin|test|other] [--quiet] [PATH...]";
  exit 2

type options = {
  json : bool;
  baseline : string option;
  update_baseline : bool;
  context : L.Rules.context option;
  quiet : bool;
  paths : string list;
}

let parse_args argv =
  let opts =
    ref
      {
        json = false;
        baseline = None;
        update_baseline = false;
        context = None;
        quiet = false;
        paths = [];
      }
  in
  let rec go = function
    | [] -> ()
    | "--json" :: rest ->
        opts := { !opts with json = true };
        go rest
    | "--update-baseline" :: rest ->
        opts := { !opts with update_baseline = true };
        go rest
    | "--quiet" :: rest ->
        opts := { !opts with quiet = true };
        go rest
    | "--baseline" :: file :: rest ->
        opts := { !opts with baseline = Some file };
        go rest
    | "--context" :: ctx :: rest -> (
        match L.Rules.context_of_string ctx with
        | Ok c ->
            opts := { !opts with context = Some c };
            go rest
        | Error msg ->
            prerr_endline ("stochlint: " ^ msg);
            usage ())
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
        prerr_endline ("stochlint: unknown option " ^ arg);
        usage ()
    | path :: rest ->
        opts := { !opts with paths = path :: !opts.paths };
        go rest
  in
  go (List.tl (Array.to_list argv));
  let o = !opts in
  {
    o with
    paths =
      (match o.paths with
      | [] -> [ "lib"; "bin"; "test"; "bench"; "examples" ]
      | p -> List.rev p);
  }

let severity_json rule =
  L.Json.Str (L.Finding.severity_to_string (L.Finding.severity rule))

let finding_json (f : L.Finding.t) =
  L.Json.Obj
    [
      ("file", L.Json.Str f.file);
      ("line", L.Json.Num (float_of_int f.line));
      ("col", L.Json.Num (float_of_int f.col));
      ("rule", L.Json.Str (L.Finding.rule_id f.rule));
      ("severity", severity_json f.rule);
      ("message", L.Json.Str f.message);
    ]

let error_json (e : L.Driver.parse_error) =
  L.Json.Obj
    [
      ("file", L.Json.Str e.pe_file);
      ("line", L.Json.Num (float_of_int e.pe_line));
      ("col", L.Json.Num (float_of_int e.pe_col));
      ("message", L.Json.Str e.pe_message);
    ]

let () =
  let opts = parse_args Sys.argv in
  let baseline =
    match opts.baseline with
    | None -> L.Baseline.empty
    | Some file when opts.update_baseline ->
        (* The file is about to be rewritten; it may not exist yet. *)
        if Sys.file_exists file then
          match L.Baseline.load file with
          | Ok b -> b
          | Error msg ->
              prerr_endline ("stochlint: " ^ msg);
              exit 2
        else L.Baseline.empty
    | Some file -> (
        match L.Baseline.load file with
        | Ok b -> b
        | Error msg ->
            prerr_endline ("stochlint: " ^ msg);
            exit 2)
  in
  let outcome = L.Driver.run ?context:opts.context opts.paths in
  let all_findings = L.Driver.findings outcome in
  let suppressed =
    List.fold_left (fun acc r -> acc + r.L.Driver.fr_suppressed) 0
      outcome.reports
  in
  List.iter
    (fun (r : L.Driver.file_report) ->
      List.iter
        (fun (line, msg) ->
          Printf.eprintf
            "stochlint: %s:%d: warning: unparseable suppression comment (%s)\n"
            r.fr_file line msg)
        r.fr_malformed)
    outcome.reports;
  if opts.update_baseline then begin
    match opts.baseline with
    | None ->
        prerr_endline "stochlint: --update-baseline requires --baseline FILE";
        exit 2
    | Some file ->
        let b = L.Baseline.of_findings all_findings in
        let oc = open_out_bin file in
        output_string oc (L.Baseline.to_json_string b);
        close_out oc;
        Printf.printf
          "stochlint: wrote %s (%d findings grandfathered across %d files)\n"
          file (List.length all_findings) outcome.files;
        exit (if outcome.errors = [] then 0 else 2)
  end;
  let applied = L.Baseline.apply baseline all_findings in
  let kept = applied.kept in
  if opts.json then
    print_string
      (L.Json.to_string
         (L.Json.Obj
            [
              ("version", L.Json.Num 1.0);
              ("files", L.Json.Num (float_of_int outcome.files));
              ("findings", L.Json.Arr (List.map finding_json kept));
              ("suppressed", L.Json.Num (float_of_int suppressed));
              ( "baselined",
                L.Json.Num (float_of_int applied.baselined) );
              ("errors", L.Json.Arr (List.map error_json outcome.errors));
            ])
      ^ "\n")
  else begin
    List.iter (fun f -> print_endline (L.Finding.to_human f)) kept;
    List.iter
      (fun (file, rule, found, allowed) ->
        Printf.printf
          "%s: %s count %d exceeds the baselined %d — the whole group is \
           shown above; fix the new site or refresh the baseline\n"
          file (L.Finding.rule_id rule) found allowed)
      applied.exceeded;
    List.iter
      (fun (e : L.Driver.parse_error) ->
        Printf.eprintf "stochlint: %s:%d:%d: cannot parse: %s\n" e.pe_file
          e.pe_line e.pe_col e.pe_message)
      outcome.errors;
    if not opts.quiet then begin
      let errors, warnings =
        List.partition
          (fun (f : L.Finding.t) -> L.Finding.severity f.rule = L.Finding.Error)
          kept
      in
      Printf.printf
        "stochlint: %d files, %d findings (%d errors, %d warnings), %d \
         suppressed inline, %d baselined\n"
        outcome.files (List.length kept) (List.length errors)
        (List.length warnings) suppressed applied.baselined
    end
  end;
  if outcome.errors <> [] then exit 2
  else if kept <> [] then exit 1
  else exit 0
