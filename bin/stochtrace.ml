(* stochtrace: analyse the JSONL span traces the CLI and the serve
   daemon emit with --trace.

     stochtrace summary solve.jsonl            per-span-name table
     stochtrace summary --json solve.jsonl     same, machine-readable
     stochtrace critical-path solve.jsonl      heaviest chain per root
     stochtrace flamegraph solve.jsonl         folded stacks (flamegraph.pl)
     stochtrace diff old.jsonl new.jsonl       per-name regressions

   diff exits 1 when any span name's total time grew beyond the
   relative threshold (default 25%), so trace files are a CI-gateable
   artefact: two fake-clock runs of the same seed diff empty, a
   slowdown fails the job. Damaged traces (torn tails, flipped bits)
   are read skip-and-count, never fatally. *)

open Cmdliner
module Tr = Stochobs_analysis.Trace_read
module Stats = Stochobs_analysis.Span_stats
module Cp = Stochobs_analysis.Critical_path
module Fg = Stochobs_analysis.Flamegraph

let read path =
  match Tr.of_file path with
  | Ok t ->
      if t.Tr.skipped > 0 then
        Format.eprintf "stochtrace: %s: skipped %d damaged line(s) of %d@."
          path t.Tr.skipped t.Tr.lines;
      t
  | Error msg ->
      Format.eprintf "stochtrace: %s@." msg;
      exit 2

let file_arg ~docv ~pos:p =
  Arg.(required & pos p (some string) None
       & info [] ~docv ~doc:"Trace file (JSONL spans, as written by --trace).")

let summary_cmd =
  let run json path =
    let t = read path in
    let rows = Stats.compute t in
    if json then
      print_endline
        (Stochobs.Json.to_string ~indent:false (Stats.to_json rows))
    else begin
      Format.printf "%d span(s), %d event(s), %d root(s)@." (Tr.span_count t)
        (List.length t.Tr.events)
        (List.length t.Tr.roots);
      Format.printf "%a" Stats.pp rows
    end
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the rows as a JSON array instead of a table.")
  in
  Cmd.v
    (Cmd.info "summary"
       ~doc:
         "Per-span-name aggregation: count, errors, total/self time, \
          nearest-rank p50/p95/p99.")
    Term.(const run $ json_arg $ file_arg ~docv:"TRACE" ~pos:0)

let critical_path_cmd =
  let run path =
    let t = read path in
    Format.printf "%a" Cp.pp (Cp.compute t)
  in
  Cmd.v
    (Cmd.info "critical-path"
       ~doc:
         "Longest child-chain decomposition per root span: at every level \
          descend into the heaviest child.")
    Term.(const run $ file_arg ~docv:"TRACE" ~pos:0)

let flamegraph_cmd =
  let run out path =
    let t = read path in
    let lines = Fg.to_lines t in
    match out with
    | None -> List.iter print_endline lines
    | Some dest ->
        let oc = open_out dest in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            List.iter
              (fun l ->
                output_string oc l;
                output_char oc '\n')
              lines)
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Write the folded stacks to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "flamegraph"
       ~doc:
         "Folded-stack output (root;child;leaf self-microseconds), ready for \
          flamegraph.pl or speedscope.")
    Term.(const run $ out_arg $ file_arg ~docv:"TRACE" ~pos:0)

let diff_cmd =
  let run threshold old_path new_path =
    let old_rows = Stats.compute (read old_path) in
    let new_rows = Stats.compute (read new_path) in
    match Stats.diff ~threshold ~old_rows ~new_rows with
    | [] -> () (* identical runs print nothing and exit 0 *)
    | changes ->
        Format.printf "%a" Stats.pp_changes changes;
        if List.exists (fun c -> c.Stats.regression) changes then begin
          Format.eprintf
            "stochtrace: %d span name(s) regressed beyond %+.0f%%@."
            (List.length (List.filter (fun c -> c.Stats.regression) changes))
            (100.0 *. threshold);
          exit 1
        end
    | exception Invalid_argument msg ->
        Format.eprintf "stochtrace: %s@." msg;
        exit 2
  in
  let threshold_arg =
    Arg.(value & opt float 0.25
         & info [ "threshold" ] ~docv:"R"
             ~doc:
               "Relative regression threshold on per-name total time: flag \
                when (new - old) / old exceeds $(docv).")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two traces per span name and exit 1 when any name's total \
          time regressed beyond the threshold. Identical traces (e.g. two \
          --fake-clock runs of the same seed) print nothing and exit 0.")
    Term.(
      const run $ threshold_arg
      $ file_arg ~docv:"OLD" ~pos:0
      $ file_arg ~docv:"NEW" ~pos:1)

let () =
  let info =
    Cmd.info "stochtrace"
      ~doc:"Trace analytics for stochastic-reservations JSONL span traces."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ summary_cmd; critical_path_cmd; flamegraph_cmd; diff_cmd ]))
