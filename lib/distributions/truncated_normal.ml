module Sf = Numerics.Specfun

let sqrt2 = sqrt 2.0
let sqrt_2pi = sqrt (8.0 *. atan 1.0)

let phi z = exp (-0.5 *. z *. z) /. sqrt_2pi

let inverse_mills z =
  if z < 25.0 then phi z /. (0.5 *. Sf.erfc (z /. sqrt2))
  else begin
    (* phi(z)/(1 - Phi(z)) ~ z + 1/z - 2/z^3 for large z. *)
    let z2 = z *. z in
    z +. (1.0 /. z) -. (2.0 /. (z2 *. z))
  end

let make ~mu ~sigma ~lower =
  if sigma <= 0.0 then
    invalid_arg "Truncated_normal.make: sigma must be positive";
  if lower < 0.0 then
    invalid_arg "Truncated_normal.make: lower must be nonnegative";
  let alpha = (lower -. mu) /. sigma in
  (* Mass of the parent normal above the truncation point. *)
  let z_norm = 0.5 *. Sf.erfc (alpha /. sqrt2) in
  if z_norm <= 0.0 then
    invalid_arg "Truncated_normal.make: truncation removes all the mass";
  let pdf t =
    if t < lower then 0.0
    else phi ((t -. mu) /. sigma) /. (sigma *. z_norm)
  in
  let cdf t =
    if t <= lower then 0.0
    else begin
      let num =
        Sf.erf ((t -. mu) /. (sigma *. sqrt2)) -. Sf.erf (alpha /. sqrt2)
      in
      Float.min 1.0 (num /. (2.0 *. z_norm))
    end
  in
  let quantile x =
    if x < 0.0 || x > 1.0 then
      invalid_arg "Truncated_normal.quantile: x must be in [0, 1]";
    (* stochlint: allow FLOAT_EQ — quantile endpoint sentinel: x = 1 maps to +inf *)
    if x = 1.0 then infinity
    else begin
      (* Table 5: Q(x) = mu + sigma sqrt2 erf^-1 (z),
         z = x + (1 - x) erf (alpha / sqrt2). *)
      let z = x +. ((1.0 -. x) *. Sf.erf (alpha /. sqrt2)) in
      mu +. (sigma *. sqrt2 *. Sf.erf_inv z)
    end
  in
  let lam = inverse_mills alpha in
  let mean = mu +. (sigma *. lam) in
  let variance =
    sigma *. sigma *. (1.0 +. (alpha *. lam) -. (lam *. lam))
  in
  let conditional_mean tau =
    let tau = Float.max tau lower in
    mu +. (sigma *. inverse_mills ((tau -. mu) /. sigma))
  in
  {
    Dist.name = Printf.sprintf "TruncatedNormal(%g, %g, %g)" mu (sigma *. sigma) lower;
    support = Dist.Unbounded lower;
    pdf;
    cdf;
    quantile;
    mean;
    variance;
    sample =
      (fun rng -> Randomness.Sampler.truncated_normal rng ~mu ~sigma ~lower);
    conditional_mean;
  }

let default = make ~mu:8.0 ~sigma:(sqrt 2.0) ~lower:0.0
