let make ~nu ~alpha =
  if nu <= 0.0 || alpha <= 0.0 then
    invalid_arg "Pareto.make: nu and alpha must be positive";
  let pdf t =
    if t < nu then 0.0 else alpha *. (nu ** alpha) /. (t ** (alpha +. 1.0))
  in
  let cdf t = if t <= nu then 0.0 else 1.0 -. ((nu /. t) ** alpha) in
  let quantile x =
    if x < 0.0 || x > 1.0 then invalid_arg "Pareto.quantile: x must be in [0, 1]";
    (* stochlint: allow FLOAT_EQ — quantile endpoint sentinel: x = 1 maps to +inf *)
    if x = 1.0 then infinity else nu /. ((1.0 -. x) ** (1.0 /. alpha))
  in
  let mean = if alpha > 1.0 then alpha *. nu /. (alpha -. 1.0) else infinity in
  let variance =
    if alpha > 2.0 then
      alpha *. nu *. nu /. (((alpha -. 1.0) ** 2.0) *. (alpha -. 2.0))
    else infinity
  in
  let conditional_mean tau =
    let tau = Float.max tau nu in
    if alpha > 1.0 then alpha *. tau /. (alpha -. 1.0) else infinity
  in
  {
    Dist.name = Printf.sprintf "Pareto(%g, %g)" nu alpha;
    support = Dist.Unbounded nu;
    pdf;
    cdf;
    quantile;
    mean;
    variance;
    sample = (fun rng -> Randomness.Sampler.pareto rng ~nu ~alpha);
    conditional_mean;
  }

let default = make ~nu:1.5 ~alpha:3.0
