let make ~location ~rate =
  if location < 0.0 then
    invalid_arg "Shifted_exponential.make: location must be nonnegative";
  if rate <= 0.0 then
    invalid_arg "Shifted_exponential.make: rate must be positive";
  let pdf t =
    if t < location then 0.0 else rate *. exp (-.rate *. (t -. location))
  in
  let cdf t =
    if t <= location then 0.0 else 1.0 -. exp (-.rate *. (t -. location))
  in
  let quantile p =
    if p < 0.0 || p > 1.0 then
      invalid_arg "Shifted_exponential.quantile: p must be in [0, 1]";
    (* stochlint: allow FLOAT_EQ — quantile endpoint sentinel: p = 1 maps to +inf *)
    if p = 1.0 then infinity else location -. (log (1.0 -. p) /. rate)
  in
  (* Memorylessness above the shift. *)
  let conditional_mean tau =
    Float.max tau location +. (1.0 /. rate)
  in
  {
    Dist.name = Printf.sprintf "ShiftedExp(%g, %g)" location rate;
    support = Dist.Unbounded location;
    pdf;
    cdf;
    quantile;
    mean = location +. (1.0 /. rate);
    variance = 1.0 /. (rate *. rate);
    sample =
      (fun rng -> location +. Randomness.Sampler.exponential rng ~rate);
    conditional_mean;
  }

let default = make ~location:2.0 ~rate:1.0
