module Sf = Numerics.Specfun

let make ~alpha ~beta =
  if alpha <= 0.0 || beta <= 0.0 then
    invalid_arg "Beta_dist.make: alpha and beta must be positive";
  let log_b = Sf.log_beta alpha beta in
  let pdf t =
    if t < 0.0 || t > 1.0 then 0.0
    (* stochlint: allow FLOAT_EQ — pdf endpoint special case: t = 0 handled exactly *)
    else if t = 0.0 then
      (* stochlint: allow FLOAT_EQ — alpha = 1 selects the closed-form endpoint density *)
      (if alpha < 1.0 then infinity else if alpha = 1.0 then exp (-.log_b) else 0.0)
    (* stochlint: allow FLOAT_EQ — pdf endpoint special case: t = 1 handled exactly *)
    else if t = 1.0 then
      (* stochlint: allow FLOAT_EQ — beta = 1 selects the closed-form endpoint density *)
      (if beta < 1.0 then infinity else if beta = 1.0 then exp (-.log_b) else 0.0)
    else
      exp (((alpha -. 1.0) *. log t) +. ((beta -. 1.0) *. log (1.0 -. t)) -. log_b)
  in
  let cdf t =
    if t <= 0.0 then 0.0 else if t >= 1.0 then 1.0 else Sf.betai alpha beta t
  in
  let quantile x =
    if x < 0.0 || x > 1.0 then
      invalid_arg "Beta_dist.quantile: x must be in [0, 1]";
    Sf.inverse_betai alpha beta x
  in
  let b_ab = Sf.beta_fun alpha beta in
  let b_a1b = Sf.beta_fun (alpha +. 1.0) beta in
  (* Appendix B.7. *)
  let conditional_mean tau =
    if tau <= 0.0 then alpha /. (alpha +. beta)
    else if tau >= 1.0 then 1.0
    else begin
      let num = b_a1b -. Sf.incomplete_beta (alpha +. 1.0) beta tau in
      let den = b_ab -. Sf.incomplete_beta alpha beta tau in
      if den <= 0.0 then 1.0 else num /. den
    end
  in
  let s = alpha +. beta in
  {
    Dist.name = Printf.sprintf "Beta(%g, %g)" alpha beta;
    support = Dist.Bounded (0.0, 1.0);
    pdf;
    cdf;
    quantile;
    mean = alpha /. s;
    variance = alpha *. beta /. (s *. s *. (s +. 1.0));
    sample = (fun rng -> Randomness.Sampler.beta rng ~a:alpha ~b:beta);
    conditional_mean;
  }

let default = make ~alpha:2.0 ~beta:2.0
