module Sf = Numerics.Specfun

let make ~shape ~rate =
  if shape <= 0.0 || rate <= 0.0 then
    invalid_arg "Gamma_dist.make: shape and rate must be positive";
  let log_norm = (shape *. log rate) -. Sf.log_gamma shape in
  let pdf t =
    if t < 0.0 then 0.0
    (* stochlint: allow FLOAT_EQ — pdf endpoint special case: t = 0 handled exactly *)
    else if t = 0.0 then
      (* stochlint: allow FLOAT_EQ — shape = 1 selects the closed-form endpoint density *)
      (if shape < 1.0 then infinity else if shape = 1.0 then rate else 0.0)
    else exp (log_norm +. ((shape -. 1.0) *. log t) -. (rate *. t))
  in
  let cdf t = if t <= 0.0 then 0.0 else Sf.gamma_p shape (rate *. t) in
  let quantile x =
    if x < 0.0 || x > 1.0 then
      invalid_arg "Gamma_dist.quantile: x must be in [0, 1]";
    Sf.inverse_gamma_p shape x /. rate
  in
  (* Appendix B.2: E[X | X > tau] = alpha/beta + z^alpha e^-z /
     (Gamma(alpha, z) beta) with z = beta tau; evaluated in log space
     with an asymptotic fallback for z > 600 where Gamma(alpha, z)
     underflows. *)
  let conditional_mean tau =
    if tau <= 0.0 then shape /. rate
    else begin
      let z = rate *. tau in
      let ratio =
        (* z^alpha e^-z / Gamma(alpha, z) *)
        if z > 600.0 then begin
          let a1 = shape -. 1.0 in
          z /. (1.0 +. (a1 /. z) +. (a1 *. (a1 -. 1.0) /. (z *. z)))
        end
        else begin
          let q = Sf.gamma_q shape z in
          exp ((shape *. log z) -. z -. (Sf.log_gamma shape +. log q))
        end
      in
      (shape /. rate) +. (ratio /. rate)
    end
  in
  {
    Dist.name = Printf.sprintf "Gamma(%g, %g)" shape rate;
    support = Dist.Unbounded 0.0;
    pdf;
    cdf;
    quantile;
    mean = shape /. rate;
    variance = shape /. (rate *. rate);
    sample =
      (fun rng -> Randomness.Sampler.gamma rng ~shape ~scale:(1.0 /. rate));
    conditional_mean;
  }

let default = make ~shape:2.0 ~rate:2.0
