module Sf = Numerics.Specfun

let make ~shape ~scale =
  if scale <= 0.0 then invalid_arg "Frechet.make: scale must be positive";
  if shape <= 1.0 then
    invalid_arg "Frechet.make: shape must exceed 1 (finite mean)";
  let cdf t =
    if t <= 0.0 then 0.0 else exp (-.((t /. scale) ** -.shape))
  in
  let pdf t =
    if t <= 0.0 then 0.0
    else begin
      (* Evaluate in log space: near t = 0 the power factor overflows
         while the exponential underflows, and their direct product is
         nan. *)
      let r = t /. scale in
      let u = r ** -.shape in
      let log_pdf =
        log (shape /. scale) +. ((-1.0 -. shape) *. log r) -. u
      in
      if log_pdf < -745.0 then 0.0 else exp log_pdf
    end
  in
  let quantile p =
    if p < 0.0 || p > 1.0 then
      invalid_arg "Frechet.quantile: p must be in [0, 1]";
    (* stochlint: allow FLOAT_EQ — quantile endpoint sentinel: p = 0 maps to the support lower bound *)
    if p = 0.0 then 0.0
    (* stochlint: allow FLOAT_EQ — quantile endpoint sentinel: p = 1 maps to +inf *)
    else if p = 1.0 then infinity
    else scale *. ((-.log p) ** (-1.0 /. shape))
  in
  let g1 = Sf.gamma (1.0 -. (1.0 /. shape)) in
  let mean = scale *. g1 in
  let variance =
    (* Infinite for shape <= 2: the reflection-formula value of
       [gamma (1 - 2/shape)] at a nonpositive argument is meaningless
       here, so report the divergence explicitly. Downstream solvers
       treat an infinite variance as "Theorem 2 bounds unavailable"
       and fall back to discretization-based tiers. *)
    if shape <= 2.0 then infinity
    else scale *. scale *. (Sf.gamma (1.0 -. (2.0 /. shape)) -. (g1 *. g1))
  in
  (* Substituting u = (x/scale)^-shape turns the partial expectation
     into a lower incomplete gamma:
     E[X 1(X > tau)] = scale * gamma_lower(1 - 1/shape, u_tau). *)
  let a' = 1.0 -. (1.0 /. shape) in
  let gamma_a' = Sf.gamma a' in
  let conditional_mean tau =
    if tau <= 0.0 then mean
    else begin
      let u = (tau /. scale) ** -.shape in
      let sf = -.Float.expm1 (-.u) (* 1 - e^-u, accurate for small u *) in
      if sf <= 0.0 then tau
      else scale *. Sf.gamma_p a' u *. gamma_a' /. sf
    end
  in
  let sample rng = quantile (Randomness.Rng.float_open rng) in
  {
    Dist.name = Printf.sprintf "Frechet(%g, %g)" shape scale;
    support = Dist.Unbounded 0.0;
    pdf;
    cdf;
    quantile;
    mean;
    variance;
    sample;
    conditional_mean;
  }

let default = make ~shape:3.0 ~scale:1.5

(* Finite mean but infinite variance: exercises the solver fallback
   path where the Theorem 2 search bounds are unavailable. *)
let heavy_tail = make ~shape:1.5 ~scale:1.5
