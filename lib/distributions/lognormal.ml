module Sf = Numerics.Specfun

let sqrt2 = sqrt 2.0
let sqrt_2pi = sqrt (8.0 *. atan 1.0)

(* erfc (y - c) / erfc y for c > 0, stable for large y where both
   terms underflow: switches to the ratio of the leading asymptotic
   expansions, erfc u ~ e^(-u^2) / (u sqrt pi). *)
let erfc_ratio ~c y =
  if y < 25.0 then Sf.erfc (y -. c) /. Sf.erfc y
  else exp (c *. ((2.0 *. y) -. c)) *. (y /. (y -. c))

let make ~mu ~sigma =
  if sigma <= 0.0 then invalid_arg "Lognormal.make: sigma must be positive";
  let pdf t =
    if t <= 0.0 then 0.0
    else begin
      let z = (log t -. mu) /. sigma in
      exp (-0.5 *. z *. z) /. (t *. sigma *. sqrt_2pi)
    end
  in
  let cdf t =
    if t <= 0.0 then 0.0
    else 0.5 *. Sf.erfc (-.(log t -. mu) /. (sqrt2 *. sigma))
  in
  let quantile x =
    if x < 0.0 || x > 1.0 then
      invalid_arg "Lognormal.quantile: x must be in [0, 1]";
    (* stochlint: allow FLOAT_EQ — quantile endpoint sentinel: x = 0 maps to the support lower bound *)
    if x = 0.0 then 0.0
    (* stochlint: allow FLOAT_EQ — quantile endpoint sentinel: x = 1 maps to +inf *)
    else if x = 1.0 then infinity
    else exp ((sqrt2 *. sigma *. Sf.erf_inv ((2.0 *. x) -. 1.0)) +. mu)
  in
  let mean = exp (mu +. (sigma *. sigma /. 2.0)) in
  let variance =
    (exp (sigma *. sigma) -. 1.0) *. exp ((2.0 *. mu) +. (sigma *. sigma))
  in
  (* Appendix B.3 rewritten with erfc: with y = (ln tau - mu)/(sqrt2
     sigma), E[X | X > tau] = e^(mu + sigma^2/2) erfc (y - sigma/sqrt2)
     / erfc y. *)
  let conditional_mean tau =
    if tau <= 0.0 then mean
    else begin
      let y = (log tau -. mu) /. (sqrt2 *. sigma) in
      mean *. erfc_ratio ~c:(sigma /. sqrt2) y
    end
  in
  {
    Dist.name = Printf.sprintf "LogNormal(%g, %g)" mu sigma;
    support = Dist.Unbounded 0.0;
    pdf;
    cdf;
    quantile;
    mean;
    variance;
    sample = (fun rng -> Randomness.Sampler.lognormal rng ~mu ~sigma);
    conditional_mean;
  }

let of_moments ~mean ~std =
  if mean <= 0.0 || std <= 0.0 then
    invalid_arg "Lognormal.of_moments: mean and std must be positive";
  let ratio = std /. mean in
  let sigma2 = log (1.0 +. (ratio *. ratio)) in
  let mu = log mean -. (sigma2 /. 2.0) in
  make ~mu ~sigma:(sqrt sigma2)

let default = make ~mu:3.0 ~sigma:0.5
let neuro = make ~mu:7.1128 ~sigma:0.2039
