module Sf = Numerics.Specfun

let pi = 4.0 *. atan 1.0

let make ~scale ~shape =
  if scale <= 0.0 then invalid_arg "Log_logistic.make: scale must be positive";
  if shape <= 2.0 then
    invalid_arg "Log_logistic.make: shape must exceed 2 (finite variance)";
  let cdf t =
    if t <= 0.0 then 0.0
    else begin
      let r = (t /. scale) ** shape in
      r /. (1.0 +. r)
    end
  in
  let pdf t =
    if t <= 0.0 then 0.0
    else begin
      let r = (t /. scale) ** (shape -. 1.0) in
      let denom = 1.0 +. ((t /. scale) ** shape) in
      shape /. scale *. r /. (denom *. denom)
    end
  in
  let quantile p =
    if p < 0.0 || p > 1.0 then
      invalid_arg "Log_logistic.quantile: p must be in [0, 1]";
    (* stochlint: allow FLOAT_EQ — quantile endpoint sentinel: p = 0 maps to the support lower bound *)
    if p = 0.0 then 0.0
    (* stochlint: allow FLOAT_EQ — quantile endpoint sentinel: p = 1 maps to +inf *)
    else if p = 1.0 then infinity
    else scale *. ((p /. (1.0 -. p)) ** (1.0 /. shape))
  in
  let b = pi /. shape in
  let mean = scale *. b /. sin b in
  let variance =
    (scale *. scale *. ((2.0 *. b /. sin (2.0 *. b)) -. (b *. b /. (sin b *. sin b))))
  in
  (* E[X 1(X > tau)] = scale (B(a', b') - B(F tau; a', b')) with
     a' = 1 + 1/shape, b' = 1 - 1/shape (substitution u = F(x)). *)
  let a' = 1.0 +. (1.0 /. shape) in
  let b' = 1.0 -. (1.0 /. shape) in
  let total_beta = Sf.beta_fun a' b' in
  let conditional_mean tau =
    if tau <= 0.0 then mean
    else begin
      let f = cdf tau in
      let sf = 1.0 -. f in
      if sf <= 0.0 then tau
      else begin
        let partial = scale *. (total_beta -. Sf.incomplete_beta a' b' f) in
        partial /. sf
      end
    end
  in
  let sample rng = quantile (Randomness.Rng.float_open rng) in
  {
    Dist.name = Printf.sprintf "LogLogistic(%g, %g)" scale shape;
    support = Dist.Unbounded 0.0;
    pdf;
    cdf;
    quantile;
    mean;
    variance;
    sample;
    conditional_mean;
  }

let default = make ~scale:2.0 ~shape:3.0
