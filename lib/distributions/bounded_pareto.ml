let make ~l ~h ~alpha =
  if l <= 0.0 || l >= h then invalid_arg "Bounded_pareto.make: need 0 < l < h";
  if alpha <= 0.0 then invalid_arg "Bounded_pareto.make: alpha must be positive";
  (* stochlint: allow FLOAT_EQ — alpha = 1 is the exact pole of the mean formula and is rejected *)
  if alpha = 1.0 then
    invalid_arg "Bounded_pareto.make: alpha = 1 is not supported (mean formula)";
  let ratio_a = (l /. h) ** alpha in
  let norm = 1.0 -. ratio_a in
  let pdf t =
    if t < l || t > h then 0.0
    else alpha *. (l ** alpha) *. (t ** (-.alpha -. 1.0)) /. norm
  in
  let cdf t =
    if t <= l then 0.0
    else if t >= h then 1.0
    else (1.0 -. ((l ** alpha) *. (t ** -.alpha))) /. norm
  in
  let quantile x =
    if x < 0.0 || x > 1.0 then
      invalid_arg "Bounded_pareto.quantile: x must be in [0, 1]";
    (* Table 5: Q(x) = L / (1 - (1 - (L/H)^alpha) x)^(1/alpha). *)
    l /. ((1.0 -. (norm *. x)) ** (1.0 /. alpha))
  in
  let mean =
    alpha /. (alpha -. 1.0)
    *. (((h ** alpha) *. l) -. (h *. (l ** alpha)))
    /. ((h ** alpha) -. (l ** alpha))
  in
  let variance =
    (* stochlint: allow FLOAT_EQ — alpha = 2 is the exact removable singularity of the variance formula *)
    if alpha = 2.0 then begin
      (* The generic second-moment formula has a removable singularity
         at alpha = 2; use the direct integral E[X^2] =
         2 L^2 H^2 ln (H/L) / (H^2 - L^2) there. *)
      let ex2 =
        2.0 *. (l ** 2.0) *. (h ** 2.0) *. log (h /. l)
        /. ((h ** 2.0) -. (l ** 2.0))
      in
      ex2 -. (mean *. mean)
    end
    else begin
      let ex2 =
        alpha /. (alpha -. 2.0)
        *. (((h ** alpha) *. (l ** 2.0)) -. ((h ** 2.0) *. (l ** alpha)))
        /. ((h ** alpha) -. (l ** alpha))
      in
      ex2 -. (mean *. mean)
    end
  in
  (* Appendix B.8. *)
  let conditional_mean tau =
    let tau = Float.max tau l in
    if tau >= h then h
    else
      alpha /. (alpha -. 1.0)
      *. ((h ** (1.0 -. alpha)) -. (tau ** (1.0 -. alpha)))
      /. ((h ** -.alpha) -. (tau ** -.alpha))
  in
  let sample rng =
    let u = Randomness.Rng.float rng in
    quantile u
  in
  {
    Dist.name = Printf.sprintf "BoundedPareto(%g, %g, %g)" l h alpha;
    support = Dist.Bounded (l, h);
    pdf;
    cdf;
    quantile;
    mean;
    variance;
    sample;
    conditional_mean;
  }

let default = make ~l:1.0 ~h:20.0 ~alpha:2.1
