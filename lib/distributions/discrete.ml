type t = { values : float array; probs : float array }

let make pairs =
  let pairs = Array.copy pairs in
  Array.sort (fun (v1, _) (v2, _) -> compare v1 v2) pairs;
  Array.iter
    (fun (_, p) ->
      if p < 0.0 then invalid_arg "Discrete.make: negative probability")
    pairs;
  (* Merge duplicates, drop zero-probability points. *)
  let merged = ref [] in
  Array.iter
    (fun (v, p) ->
      if p > 0.0 then
        match !merged with
        | (v', p') :: rest when v' = v -> merged := (v', p' +. p) :: rest
        | _ -> merged := (v, p) :: !merged)
    pairs;
  let pairs = Array.of_list (List.rev !merged) in
  if Array.length pairs = 0 then
    invalid_arg "Discrete.make: no support point with positive probability";
  let total = Array.fold_left (fun acc (_, p) -> acc +. p) 0.0 pairs in
  if total > 1.0 +. 1e-9 then
    invalid_arg "Discrete.make: total probability mass exceeds 1";
  {
    values = Array.map fst pairs;
    probs = Array.map snd pairs;
  }

let size d = Array.length d.values
let total_mass d = Numerics.Kahan.sum_array d.probs

let normalize d =
  let z = total_mass d in
  { d with probs = Array.map (fun p -> p /. z) d.probs }

let mean d =
  let z = total_mass d in
  let acc = Numerics.Kahan.create () in
  Array.iteri (fun i v -> Numerics.Kahan.add acc (v *. d.probs.(i))) d.values;
  Numerics.Kahan.sum acc /. z

let variance d =
  let z = total_mass d in
  let m = mean d in
  let acc = Numerics.Kahan.create () in
  Array.iteri
    (fun i v ->
      let dv = v -. m in
      Numerics.Kahan.add acc (dv *. dv *. d.probs.(i)))
    d.values;
  Numerics.Kahan.sum acc /. z

let cdf d t =
  let z = total_mass d in
  let acc = Numerics.Kahan.create () in
  let n = size d in
  let i = ref 0 in
  while !i < n && d.values.(!i) <= t do
    Numerics.Kahan.add acc d.probs.(!i);
    incr i
  done;
  Numerics.Kahan.sum acc /. z

let quantile d x =
  if x < 0.0 || x > 1.0 then invalid_arg "Discrete.quantile: x must be in [0, 1]";
  let z = total_mass d in
  let target = x *. z in
  let acc = ref 0.0 in
  let n = size d in
  let result = ref d.values.(n - 1) in
  (try
     for i = 0 to n - 1 do
       acc := !acc +. d.probs.(i);
       if !acc >= target -. 1e-15 then begin
         result := d.values.(i);
         raise Exit
       end
     done
   with Exit -> ());
  !result

let sample d rng = quantile d (Randomness.Rng.float rng)

let of_samples xs =
  if Array.length xs = 0 then invalid_arg "Discrete.of_samples: empty sample";
  let n = float_of_int (Array.length xs) in
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun x ->
      let c = Option.value ~default:0 (Hashtbl.find_opt tbl x) in
      Hashtbl.replace tbl x (c + 1))
    xs;
  let pairs =
    Hashtbl.fold (fun v c acc -> (v, float_of_int c /. n) :: acc) tbl []
  in
  make (Array.of_list pairs)

let to_dist d =
  let d = normalize d in
  let n = size d in
  let lo = d.values.(0) and hi = d.values.(n - 1) in
  let pmf t =
    (* Probability mass at exact support points. *)
    let rec find i =
      if i >= n then 0.0
      else if d.values.(i) = t then d.probs.(i)
      else if d.values.(i) > t then 0.0
      else find (i + 1)
    in
    find 0
  in
  let m = mean d in
  let v = variance d in
  let cm tau =
    let num = Numerics.Kahan.create () and den = Numerics.Kahan.create () in
    for i = 0 to n - 1 do
      if d.values.(i) > tau then begin
        Numerics.Kahan.add num (d.values.(i) *. d.probs.(i));
        Numerics.Kahan.add den d.probs.(i)
      end
    done;
    let den = Numerics.Kahan.sum den in
    if den <= 0.0 then hi else Numerics.Kahan.sum num /. den
  in
  {
    Dist.name = Printf.sprintf "Discrete(n=%d)" n;
    support = Dist.Bounded (lo, hi);
    pdf = pmf;
    cdf = cdf d;
    quantile = quantile d;
    mean = m;
    variance = v;
    sample = sample d;
    conditional_mean = cm;
  }
