(** Frechet (inverse Weibull) distribution [Frechet(shape, scale)] on
    [(0, inf)].

    CDF [F(t) = exp (-(t/scale)^-shape)] — the max-stable heavy-tail
    law; models worst-case-dominated execution times. Conditional
    expectation via the lower incomplete gamma function:
    [E(X | X > tau) = scale * gamma_lower(1 - 1/shape, u) /
    (1 - exp (-u))] with [u = (tau/scale)^-shape]. *)

val make : shape:float -> scale:float -> Dist.t
(** [make ~shape ~scale] requires [shape > 1] so the mean is finite.
    For [1 < shape <= 2] the variance is reported as [infinity]
    (the second moment diverges), so solvers that need the Theorem 2
    bounds must fall back to discretization-based tiers.
    @raise Invalid_argument if [shape <= 1] or [scale <= 0]. *)

val default : Dist.t
(** [Frechet(3.0, 1.5)]. *)

val heavy_tail : Dist.t
(** [Frechet(1.5, 1.5)]: finite mean, infinite variance. Deliberately
    not in {!Registry.all} (the registry promises raw-solver
    compatibility, and the Theorem 2 bounds need a second moment);
    the CLI exposes it as ["frechetheavy"] to exercise the robust
    solver's fallback cascade. *)
