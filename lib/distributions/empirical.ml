let sorted_copy xs =
  let c = Array.copy xs in
  Array.sort compare c;
  c

let ecdf samples =
  let xs = sorted_copy samples in
  let n = Array.length xs in
  if n = 0 then invalid_arg "Empirical.ecdf: empty sample";
  fun t ->
    (* Count of xs.(i) <= t by binary search for the rightmost index. *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if xs.(mid) <= t then lo := mid + 1 else hi := mid
    done;
    float_of_int !lo /. float_of_int n

let make ?name samples =
  Array.iteri
    (fun i x ->
      if (not (Float.is_finite x)) || x < 0.0 then
        invalid_arg
          (Printf.sprintf
             "Empirical.make: sample %d (%g) must be finite and nonnegative" i
             x))
    samples;
  let xs = sorted_copy samples in
  let n = Array.length xs in
  if n = 0 then invalid_arg "Empirical.make: empty sample";
  if n = 1 then
    invalid_arg
      (Printf.sprintf
         "Empirical.make: a single sample (%g) is a point mass; need at \
          least two distinct values to interpolate"
         xs.(0));
  if xs.(0) = xs.(n - 1) then
    invalid_arg
      (Printf.sprintf
         "Empirical.make: all %d samples are tied at %g (a point mass); \
          need at least two distinct values to interpolate"
         n xs.(0));
  let name =
    match name with Some s -> s | None -> Printf.sprintf "Empirical(n=%d)" n
  in
  let nf1 = float_of_int (n - 1) in
  let lo = xs.(0) and hi = xs.(n - 1) in
  (* Quantile: type-7 interpolation of order statistics. *)
  let quantile x =
    if x < 0.0 || x > 1.0 then invalid_arg "Empirical.quantile: x in [0, 1]";
    Numerics.Stats.quantiles_sorted xs x
  in
  (* CDF: piecewise-linear inverse of the quantile. Ties in xs give
     vertical jumps; we binary-search the segment containing t. *)
  let cdf t =
    if t <= lo then 0.0
    else if t >= hi then 1.0
    else begin
      (* Rightmost i with xs.(i) <= t. *)
      let l = ref 0 and h = ref n in
      while !l < !h do
        let mid = (!l + !h) / 2 in
        if xs.(mid) <= t then l := mid + 1 else h := mid
      done;
      let i = !l - 1 in
      if i >= n - 1 then 1.0
      else begin
        let x0 = xs.(i) and x1 = xs.(i + 1) in
        let frac = if x1 > x0 then (t -. x0) /. (x1 -. x0) else 0.0 in
        (float_of_int i +. frac) /. nf1
      end
    end
  in
  (* Density: derivative of the piecewise-linear CDF, constant
     1 / ((n-1) (x_{i+1} - x_i)) on each non-degenerate segment. *)
  let pdf t =
    if t < lo || t > hi then 0.0
    else begin
      let l = ref 0 and h = ref n in
      while !l < !h do
        let mid = (!l + !h) / 2 in
        if xs.(mid) <= t then l := mid + 1 else h := mid
      done;
      let i = min (n - 2) (max 0 (!l - 1)) in
      let width = xs.(i + 1) -. xs.(i) in
      if width > 0.0 then 1.0 /. (nf1 *. width)
      else begin
        (* Tied samples: [t] sits on a zero-width segment (a CDF jump).
           Return the density of the nearest non-degenerate segment —
           an a.e.-equivalent choice that keeps the value finite so a
           tie cannot poison the Eq. (11) recurrence with [inf]. *)
        let j = ref (i + 1) and k = ref (i - 1) and found = ref (-1) in
        while !found < 0 && (!j <= n - 2 || !k >= 0) do
          if !j <= n - 2 && xs.(!j + 1) > xs.(!j) then found := !j
          else if !k >= 0 && xs.(!k + 1) > xs.(!k) then found := !k
          else begin
            incr j;
            decr k
          end
        done;
        (* At least one segment is non-degenerate (xs.(0) < xs.(n-1)). *)
        1.0 /. (nf1 *. (xs.(!found + 1) -. xs.(!found)))
      end
    end
  in
  (* Exact moments of the piecewise-linear CDF: each segment is a
     uniform law on [x_i, x_{i+1}] with mass 1/(n-1). *)
  let seg_mass = 1.0 /. nf1 in
  let mean =
    let acc = Numerics.Kahan.create () in
    for i = 0 to n - 2 do
      Numerics.Kahan.add acc (seg_mass *. 0.5 *. (xs.(i) +. xs.(i + 1)))
    done;
    Numerics.Kahan.sum acc
  in
  let variance =
    let acc = Numerics.Kahan.create () in
    for i = 0 to n - 2 do
      let a = xs.(i) and b = xs.(i + 1) in
      (* E[X^2] on a uniform segment = (a^2 + ab + b^2) / 3. *)
      Numerics.Kahan.add acc
        (seg_mass *. (((a *. a) +. (a *. b) +. (b *. b)) /. 3.0))
    done;
    Numerics.Kahan.sum acc -. (mean *. mean)
  in
  (* Conditional mean: exact integral of the tail of the piecewise-
     uniform density. *)
  let conditional_mean tau =
    if tau <= lo then mean
    else if tau >= hi then hi
    else begin
      let num = Numerics.Kahan.create () and den = Numerics.Kahan.create () in
      for i = 0 to n - 2 do
        let a = xs.(i) and b = xs.(i + 1) in
        if b > tau && b > a then begin
          let a' = Float.max a tau in
          let mass = seg_mass *. ((b -. a') /. (b -. a)) in
          Numerics.Kahan.add num (mass *. 0.5 *. (a' +. b));
          Numerics.Kahan.add den mass
        end
      done;
      let den = Numerics.Kahan.sum den in
      if den <= 0.0 then hi else Numerics.Kahan.sum num /. den
    end
  in
  let sample rng = quantile (Randomness.Rng.float rng) in
  {
    Dist.name;
    support = Dist.Bounded (lo, hi);
    pdf;
    cdf;
    quantile;
    mean;
    variance;
    sample;
    conditional_mean;
  }

let ks_statistic d samples =
  let xs = sorted_copy samples in
  let n = Array.length xs in
  if n = 0 then invalid_arg "Empirical.ks_statistic: empty sample";
  let nf = float_of_int n in
  let sup = ref 0.0 in
  for i = 0 to n - 1 do
    let f = d.Dist.cdf xs.(i) in
    let d_plus = (float_of_int (i + 1) /. nf) -. f in
    let d_minus = f -. (float_of_int i /. nf) in
    if d_plus > !sup then sup := d_plus;
    if d_minus > !sup then sup := d_minus
  done;
  !sup
