let make components =
  if components = [] then invalid_arg "Mixture.make: empty component list";
  List.iteri
    (fun i (w, d) ->
      if Float.is_nan w then
        invalid_arg
          (Printf.sprintf "Mixture.make: weight %d (component %s) is NaN" i
             d.Dist.name);
      if w < 0.0 then
        invalid_arg
          (Printf.sprintf
             "Mixture.make: weight %d (component %s) is negative (%g)" i
             d.Dist.name w);
      if not (Float.is_finite w) then
        invalid_arg
          (Printf.sprintf
             "Mixture.make: weight %d (component %s) is not finite" i
             d.Dist.name))
    components;
  (* Exactly-zero weights are dropped (a vanishing-but-positive weight
     is kept: the mixture must degrade gracefully, not reject). *)
  let components = List.filter (fun (w, _) -> w > 0.0) components in
  if components = [] then
    invalid_arg "Mixture.make: weights sum to zero (every component dropped)";
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 components in
  if not (Float.is_finite total) || total <= 0.0 then
    invalid_arg
      (Printf.sprintf "Mixture.make: weight vector sums to %g" total);
  let components = List.map (fun (w, d) -> (w /. total, d)) components in
  let support =
    let lowers = List.map (fun (_, d) -> Dist.lower d) components in
    let lo = List.fold_left Float.min infinity lowers in
    if List.exists (fun (_, d) -> not (Dist.is_bounded d)) components then
      Dist.Unbounded lo
    else begin
      let hi =
        List.fold_left
          (fun acc (_, d) -> Float.max acc (Dist.upper d))
          neg_infinity components
      in
      Dist.Bounded (lo, hi)
    end
  in
  let pdf t =
    List.fold_left (fun acc (w, d) -> acc +. (w *. d.Dist.pdf t)) 0.0 components
  in
  let cdf t =
    List.fold_left (fun acc (w, d) -> acc +. (w *. d.Dist.cdf t)) 0.0 components
  in
  let quantile p =
    if p < 0.0 || p > 1.0 then invalid_arg "Mixture.quantile: p must be in [0, 1]";
    (* stochlint: allow FLOAT_EQ — quantile endpoint sentinel: p = 0 maps to the support lower bound *)
    if p = 0.0 then (match support with Dist.Bounded (a, _) | Dist.Unbounded a -> a)
    (* stochlint: allow FLOAT_EQ — quantile endpoint sentinel: p = 1 maps to the support upper bound *)
    else if p = 1.0 then
      (match support with Dist.Bounded (_, b) -> b | Dist.Unbounded _ -> infinity)
    else begin
      (* Component quantiles bracket the mixture quantile: at
         max_i Q_i(p) every component CDF is >= p, so the mixture CDF
         is too; symmetrically at min_i Q_i(p). *)
      let qs = List.map (fun (_, d) -> d.Dist.quantile p) components in
      let lo = List.fold_left Float.min infinity qs in
      let hi = List.fold_left Float.max neg_infinity qs in
      if hi -. lo < 1e-300 then lo
      else Numerics.Rootfind.brent (fun t -> cdf t -. p) lo hi
    end
  in
  let mean =
    List.fold_left (fun acc (w, d) -> acc +. (w *. d.Dist.mean)) 0.0 components
  in
  let second_moment =
    List.fold_left
      (fun acc (w, d) ->
        acc +. (w *. (d.Dist.variance +. (d.Dist.mean *. d.Dist.mean))))
      0.0 components
  in
  let variance = second_moment -. (mean *. mean) in
  let conditional_mean tau =
    (* E[X | X > tau] = sum_i w_i pe_i(tau) / sum_i w_i sf_i(tau)
       with pe_i the component partial expectation cm_i sf_i. *)
    let num = ref 0.0 and den = ref 0.0 in
    List.iter
      (fun (w, d) ->
        let sf = Dist.sf d tau in
        if sf > 1e-300 then begin
          num := !num +. (w *. d.Dist.conditional_mean tau *. sf);
          den := !den +. (w *. sf)
        end)
      components;
    if !den <= 0.0 then Float.max tau mean else !num /. !den
  in
  let sample rng =
    (* Pick a component by weight, then sample it. *)
    let u = Randomness.Rng.float rng in
    let rec pick acc = function
      | [ (_, d) ] -> d.Dist.sample rng
      | (w, d) :: rest ->
          if u < acc +. w then d.Dist.sample rng else pick (acc +. w) rest
      | [] -> assert false
    in
    pick 0.0 components
  in
  let name =
    "Mixture("
    ^ String.concat " + "
        (List.map
           (fun (w, d) -> Printf.sprintf "%.3g*%s" w d.Dist.name)
           components)
    ^ ")"
  in
  {
    Dist.name;
    support;
    pdf;
    cdf;
    quantile;
    mean;
    variance;
    sample;
    conditional_mean;
  }

let bimodal_lognormal ~w1 ~mu1 ~sigma1 ~mu2 ~sigma2 =
  if w1 <= 0.0 || w1 >= 1.0 then
    invalid_arg "Mixture.bimodal_lognormal: w1 must be in (0, 1)";
  make
    [
      (w1, Lognormal.make ~mu:mu1 ~sigma:sigma1);
      (1.0 -. w1, Lognormal.make ~mu:mu2 ~sigma:sigma2);
    ]

let default =
  bimodal_lognormal ~w1:0.7 ~mu1:(log 10.0) ~sigma1:0.3 ~mu2:(log 60.0)
    ~sigma2:0.25
