module Sf = Numerics.Specfun

let make ~lambda ~kappa =
  if lambda <= 0.0 || kappa <= 0.0 then
    invalid_arg "Weibull.make: lambda and kappa must be positive";
  let pdf t =
    if t < 0.0 then 0.0
    (* stochlint: allow FLOAT_EQ — pdf endpoint special case: t = 0 and kappa = 1 handled exactly *)
    else if t = 0.0 then (if kappa < 1.0 then infinity else if kappa = 1.0 then 1.0 /. lambda else 0.0)
    else begin
      let r = t /. lambda in
      kappa /. lambda *. (r ** (kappa -. 1.0)) *. exp (-.(r ** kappa))
    end
  in
  let cdf t = if t <= 0.0 then 0.0 else 1.0 -. exp (-.((t /. lambda) ** kappa)) in
  let quantile x =
    if x < 0.0 || x > 1.0 then invalid_arg "Weibull.quantile: x must be in [0, 1]";
    (* stochlint: allow FLOAT_EQ — quantile endpoint sentinel: x = 1 maps to +inf *)
    if x = 1.0 then infinity
    else lambda *. ((-.log (1.0 -. x)) ** (1.0 /. kappa))
  in
  let a_cm = 1.0 +. (1.0 /. kappa) in
  let mean = lambda *. Sf.gamma a_cm in
  let variance =
    lambda *. lambda
    *. (Sf.gamma (1.0 +. (2.0 /. kappa)) -. (Sf.gamma a_cm ** 2.0))
  in
  (* Appendix B.1: E[X | X > tau] = lambda * e^z * Gamma(1 + 1/kappa, z),
     z = (tau/lambda)^kappa. Computed as
     exp (z + log Gamma(a) + log Q(a, z)); for very large z the product
     e^z Gamma(a, z) is replaced by its asymptotic expansion
     z^(a-1) (1 + (a-1)/z + (a-1)(a-2)/z^2). *)
  let conditional_mean tau =
    if tau <= 0.0 then mean
    else begin
      let z = (tau /. lambda) ** kappa in
      if z > 600.0 then begin
        let a1 = a_cm -. 1.0 in
        lambda
        *. (z ** a1)
        *. (1.0 +. (a1 /. z) +. (a1 *. (a1 -. 1.0) /. (z *. z)))
      end
      else begin
        let q = Sf.gamma_q a_cm z in
        lambda *. exp (z +. Sf.log_gamma a_cm +. log q)
      end
    end
  in
  {
    Dist.name = Printf.sprintf "Weibull(%g, %g)" lambda kappa;
    support = Dist.Unbounded 0.0;
    pdf;
    cdf;
    quantile;
    mean;
    variance;
    sample = (fun rng -> Randomness.Sampler.weibull rng ~lambda ~k:kappa);
    conditional_mean;
  }

let default = make ~lambda:1.0 ~kappa:0.5
