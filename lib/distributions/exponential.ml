let make ~rate =
  if rate <= 0.0 then invalid_arg "Exponential.make: rate must be positive";
  let pdf t = if t < 0.0 then 0.0 else rate *. exp (-.rate *. t) in
  let cdf t = if t <= 0.0 then 0.0 else 1.0 -. exp (-.rate *. t) in
  let quantile x =
    if x < 0.0 || x > 1.0 then
      invalid_arg "Exponential.quantile: x must be in [0, 1]";
    (* stochlint: allow FLOAT_EQ — quantile endpoint sentinel: x = 1 maps to +inf *)
    if x = 1.0 then infinity else -.log (1.0 -. x) /. rate
  in
  (* Memorylessness: E[X | X > tau] = tau + 1/lambda. *)
  let conditional_mean tau = Float.max tau 0.0 +. (1.0 /. rate) in
  {
    Dist.name = Printf.sprintf "Exponential(%g)" rate;
    support = Dist.Unbounded 0.0;
    pdf;
    cdf;
    quantile;
    mean = 1.0 /. rate;
    variance = 1.0 /. (rate *. rate);
    sample = (fun rng -> Randomness.Sampler.exponential rng ~rate);
    conditional_mean;
  }

let default = make ~rate:1.0
