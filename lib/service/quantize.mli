(** Canonical quantized cache keys for solved strategies.

    A million tenants fitting LogNormal laws to their own traces
    produce a million {e slightly} different [(mu, sigma)] pairs, yet
    the reservation sequences they need are indistinguishable. This
    module collapses nearby parameters onto a shared grid so the
    solved-strategy cache (§3.12) answers all of them from one entry:
    each parameter is mapped to the index of its bucket on a
    geometric grid with relative resolution [grid] (consecutive bucket
    boundaries differ by a factor [1 + grid]), and the key string
    concatenates the distribution family, the bucket indices, the
    pricing model (same grid), the strategy name and the discretization
    budget. Equal keys = provably interchangeable solves up to the
    grid resolution; the grid is configurable per server. *)

val default_grid : float
(** [0.05]: parameters within ~5 % land in the same bucket. *)

val check_grid : float -> (float, string) result
(** Validate a grid resolution: finite and in [(0, 1]]. *)

val bucket : grid:float -> float -> int
(** [bucket ~grid v] is the geometric bucket index of [v > 0]:
    [round (ln v / ln (1 + grid))]. Do not call on non-positive
    values; {!quantize} handles sign and zero.
    @raise Invalid_argument on an invalid grid. *)

val quantize : grid:float -> float -> string
(** [quantize ~grid v] is the canonical token for parameter value [v]:
    ["z"] for (numerical) zero, ["b<i>"] for positive values in bucket
    [i], ["-b<i>"] for negative values (bucketed by magnitude), and
    ["inf"]/["-inf"]/["nan"] for the non-finite cases (kept distinct
    so pathological requests never alias a sane entry).
    @raise Invalid_argument on an invalid grid. *)

val key :
  grid:float ->
  family:string ->
  params:(string * float) list ->
  model:Stochastic_core.Cost_model.t ->
  strategy:string ->
  m:int ->
  n:int ->
  disc_n:int ->
  max_evaluations:int ->
  seed:int ->
  count:int ->
  exact:bool ->
  string
(** The canonical cache key: family and strategy are lowercased,
    [params] and the model coefficients are quantized on [grid], the
    integer budget knobs pass through verbatim. Everything that can
    change the returned sequence (or its materialised prefix length
    [count]) is part of the key; the wall-clock guard deliberately is
    not, since answers do not depend on it except through exhaustion —
    and errors are never cached. *)
