(** Deterministic chaos harness: seeded fault injection for the
    daemon's crash-safety contract.

    All faults draw from one seeded stream ({!Randomness.Rng}), so a
    chaos run replays exactly from its seed — the property that lets
    [test_chaos] assert {e bit-identical} journal recovery rather than
    mere survival. Injectors cover the faults the robustness layer
    claims to survive:

    - {!wrap_recv}/{!wrap_send} — a client vanishing mid-request
      (recv dries up) or mid-response (send raises {!Injected}, the
      in-process stand-in for [EPIPE]);
    - {!clock} — forward leaps and small backward steps on an
      otherwise sane clock source;
    - {!flaky}/{!with_retries} — EINTR-style transient errors and the
      bounded retry discipline the CLI accept loop uses;
    - {!truncate_file}/{!flip_bit}/{!tear_file} — journal damage as a
      crash mid-write would leave it.

    Every injection is counted by kind ({!counts}), so tests can
    assert faults actually fired instead of passing vacuously. *)

exception Injected of string
(** A simulated I/O failure. Transport and retry wrappers raise it;
    nothing else in the repo does, so tests can match it exactly. *)

type t

val create :
  ?p_disconnect:float ->
  ?p_clock_jump:float ->
  ?p_transient:float ->
  seed:int ->
  unit ->
  t
(** Fault probabilities all default to [0.] — an injector that never
    fires, useful as a control arm.
    @raise Invalid_argument on a probability outside [[0, 1]]. *)

val wrap_recv : t -> (unit -> string option) -> unit -> string option
(** With probability [p_disconnect], returns [None] (client vanished
    mid-stream) instead of pulling the next line. *)

val wrap_send : t -> (string -> unit) -> string -> unit
(** With probability [p_disconnect], raises {!Injected} — the
    transport loop must treat it like [EPIPE] and survive. *)

val clock : t -> Stochobs.Clock.t -> Stochobs.Clock.t
(** Wrap a clock with seeded jumps: forward by up to an hour, or
    (every third jump) backwards by up to a second. Readings are
    clamped at [0.]; monotonicity is deliberately {e not} preserved —
    that is the fault being injected. *)

val flaky : t -> (unit -> 'a) -> unit -> 'a
(** With probability [p_transient] per call, raises {!Injected}
    before running the thunk — an EINTR-style transient. *)

val with_retries : max:int -> (unit -> 'a) -> 'a
(** Run a thunk, retrying up to [max] total attempts while it raises
    {!Injected}; the last attempt's exception propagates. Mirrors the
    [EINTR] retry around [Unix.accept] in the serve CLI.
    @raise Invalid_argument if [max < 1]. *)

type damage = Untouched | Truncated of int | Bit_flipped of int
(** What a file-damage injector did: nothing (missing/empty file), cut
    the file to the given byte length, or flipped one bit at the given
    offset. *)

val truncate_file : t -> string -> damage
(** Cut the file at a seeded offset — a torn write / lost tail. *)

val flip_bit : t -> string -> damage
(** Flip one seeded bit — media corruption the checksum must catch. *)

val tear_file : t -> string -> damage
(** Seeded coin flip between {!truncate_file} and {!flip_bit}. *)

val count : t -> string -> int
(** Injections of one kind so far (e.g. ["disconnect.send"],
    ["tear.truncate"], ["clock.forward"], ["transient"]). *)

val counts : t -> (string * int) list
(** All injection counts, sorted by kind. *)
