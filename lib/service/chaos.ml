(* Deterministic fault injection for the daemon's crash-safety tests.

   Every fault is drawn from a seeded xoshiro stream, so a chaos run
   is exactly reproducible from its seed: the same requests hit the
   same disconnects, the same journal bytes get torn, the same clock
   readings jump. That determinism is what lets test_chaos assert
   bit-identical recovery instead of merely "it did not crash". *)

module Rng = Randomness.Rng

exception Injected of string

type t = {
  rng : Rng.t;
  p_disconnect : float;
  p_clock_jump : float;
  p_transient : float;
  counts : (string, int) Hashtbl.t;
}

let create ?(p_disconnect = 0.0) ?(p_clock_jump = 0.0) ?(p_transient = 0.0)
    ~seed () =
  let check name p =
    if not (Float.is_finite p) || p < 0.0 || p > 1.0 then
      invalid_arg
        (Printf.sprintf "Chaos.create: %s must be in [0, 1], got %g" name p)
  in
  check "p_disconnect" p_disconnect;
  check "p_clock_jump" p_clock_jump;
  check "p_transient" p_transient;
  {
    rng = Rng.create ~seed ();
    p_disconnect;
    p_clock_jump;
    p_transient;
    counts = Hashtbl.create 8;
  }

let note t kind =
  let n = Option.value (Hashtbl.find_opt t.counts kind) ~default:0 in
  Hashtbl.replace t.counts kind (n + 1)

let count t kind = Option.value (Hashtbl.find_opt t.counts kind) ~default:0

let counts t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let fire t p = p > 0.0 && Rng.float t.rng < p

(* --------------------------- transport ----------------------------- *)

let wrap_recv t recv () =
  if fire t t.p_disconnect then begin
    note t "disconnect.recv";
    None
  end
  else recv ()

let wrap_send t send line =
  if fire t t.p_disconnect then begin
    note t "disconnect.send";
    raise (Injected "client hung up mid-response (EPIPE)")
  end
  else send line

(* ----------------------------- clock ------------------------------- *)

(* A clock whose readings occasionally leap: forward by up to an hour
   (NTP step, VM migration) or — every third jump — backwards by up to
   a second (the kind of small regression a non-monotonic source
   produces). Readings never go below zero. The server must clamp
   per-request elapsed times, not trust the difference. *)
let clock t base =
  let offset = ref 0.0 in
  fun () ->
    if fire t t.p_clock_jump then begin
      let jump =
        if Rng.int t.rng 3 = 0 then -.Rng.uniform t.rng 0.0 1.0
        else Rng.uniform t.rng 1.0 3600.0
      in
      note t (if jump < 0.0 then "clock.backward" else "clock.forward");
      offset := !offset +. jump
    end;
    Float.max 0.0 (base () +. !offset)

(* ----------------------- transient failures ------------------------ *)

let flaky t f () =
  if fire t t.p_transient then begin
    note t "transient";
    raise (Injected "transient failure (EINTR)")
  end
  else f ()

let with_retries ~max f =
  if max < 1 then invalid_arg "Chaos.with_retries: max must be >= 1";
  let rec go attempt =
    match f () with
    | v -> v
    | exception Injected _ when attempt < max -> go (attempt + 1)
  in
  go 1

(* -------------------------- file damage ---------------------------- *)

type damage = Untouched | Truncated of int | Bit_flipped of int

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | content -> Some content
  | exception Sys_error _ -> None

let write_file path content =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content)

let truncate_file t path =
  match read_file path with
  | None -> Untouched
  | Some content when String.length content = 0 -> Untouched
  | Some content ->
      let cut = Rng.int t.rng (String.length content) in
      write_file path (String.sub content 0 cut);
      note t "tear.truncate";
      Truncated cut

let flip_bit t path =
  match read_file path with
  | None -> Untouched
  | Some content when String.length content = 0 -> Untouched
  | Some content ->
      let pos = Rng.int t.rng (String.length content) in
      let bit = Rng.int t.rng 8 in
      let bytes = Bytes.of_string content in
      Bytes.set bytes pos
        (Char.chr (Char.code (Bytes.get bytes pos) lxor (1 lsl bit)));
      write_file path (Bytes.to_string bytes);
      note t "tear.flip";
      Bit_flipped pos

let tear_file t path =
  if Rng.int t.rng 2 = 0 then truncate_file t path else flip_bit t path
