(** Crash-safe persistence for the solved-strategy cache: a
    checksummed append-only journal with snapshot compaction.

    Each successful solve is appended as one self-describing record
    line

    {v SJ1 <crc32 hex> <payload bytes> <payload>\n v}

    where the payload is compact JSON carrying the cache key and the
    {!Protocol.solved} answer (floats emitted with [%.17g], so a
    recovered entry is bit-identical to the one written). Appends are
    flushed record-by-record: after a [SIGKILL] or a power cut the
    file holds every completed append plus at most one torn tail.

    {!recover} never fails on a damaged journal. A record is accepted
    only when its magic, declared payload length and CRC-32 all check
    out and the JSON decodes; anything else — torn tails, truncation
    anywhere in the file, bit flips, editor mangling — is {e skipped
    and counted}, because a persistence layer that refuses to start
    after an unclean death is worse than one that forgets a record.

    Compaction rewrites the journal as a snapshot of the live cache
    (LRU-first, so replay rebuilds recency), built in a side file and
    atomically renamed over the journal: a crash mid-compaction leaves
    the previous journal intact. It triggers once the records appended
    since the last snapshot exceed both a fixed threshold and twice
    the live-set size — i.e. only when the journal carries dead weight
    (superseded duplicates, evicted entries). *)

type entry = { key : string; solved : Protocol.solved }

type recovery = {
  entries : entry list;  (** Intact records, in append order. *)
  recovered : int;  (** [List.length entries]. *)
  skipped : int;  (** Corrupt or torn records skipped over. *)
  bytes : int;  (** Journal bytes scanned. *)
}

val recover : string -> recovery
(** [recover path] scans a journal read-only. A missing or unreadable
    file is an empty recovery; a damaged one yields its intact
    records. Never raises. *)

type t
(** An open journal: recovered state plus an append channel. *)

val open_ : ?compact_threshold:int -> string -> t
(** [open_ path] runs {!recover} and opens [path] for appending
    (creating it when absent). [compact_threshold] (default 256) is
    the minimum number of appends since the last snapshot before
    {!should_compact} considers compacting.
    @raise Invalid_argument if [compact_threshold < 1].
    @raise Sys_error if [path] cannot be opened for writing. *)

val recovered : t -> entry list
(** The intact records found at {!open_} time, in append order —
    replay through the cache to warm it. *)

val append : t -> entry -> unit
(** Append one record and flush it to the OS.
    @raise Sys_error on I/O failure (disk full, closed channel); the
    server catches this and degrades to serving without persistence
    rather than dying. *)

val should_compact : t -> live:int -> bool
(** [should_compact t ~live] holds when the appends since the last
    snapshot reached the threshold {e and} at least [2 * live] — the
    journal is then mostly dead weight. *)

val compact : t -> live:entry list -> unit
(** [compact t ~live] atomically replaces the journal with a snapshot
    holding exactly [live] (pass the cache LRU-first so replay
    restores recency) and resets the compaction trigger.
    @raise Sys_error on I/O failure. *)

val flush : t -> unit
val close : t -> unit

type stats = {
  appended : int;  (** Records appended through this handle. *)
  recovered_records : int;  (** Intact records found at open. *)
  skipped_corrupt : int;  (** Damaged records skipped at open. *)
  compactions : int;  (** Snapshots taken through this handle. *)
}

val stats : t -> stats
(** Counters for the [stats] wire response and the metrics registry. *)

val path : t -> string

(** {1 Record codec} — exposed for the chaos harness and fuzz tests. *)

val encode_record : entry -> string
(** One record line, newline-terminated. *)

val decode_line : string -> (entry, string) result
(** Decode one line (no trailing newline); [Error] says why the record
    was rejected. Never raises. *)

val crc32_hex : string -> string
(** Lowercase 8-hex-digit IEEE CRC-32 — exposed so tests can forge
    almost-valid records. *)
