module J = Stochobs.Json

type dist_spec =
  | Named of string
  | Lognormal of { mu : float; sigma : float }
  | Tenant of string

type model_spec =
  | Hpc
  | Affine of { alpha : float; beta : float; gamma : float }

type budget_spec = {
  m : int option;
  n : int option;
  disc_n : int option;
  max_seconds : float option;
  max_evaluations : int option;
}

let empty_budget =
  { m = None; n = None; disc_n = None; max_seconds = None;
    max_evaluations = None }

type solve = {
  dist : dist_spec;
  model : model_spec;
  strategy : string;
  budget : budget_spec;
  seed : int option;
  count : int;
  exact : bool;
}

type request =
  | Solve of solve
  | Fit of { tenant : string; samples : float array }
  | Stats
  | Metrics
  | Shutdown

type error = { code : int; label : string; detail : string }

let label_of_code = function
  | 2 -> "usage"
  | 4 -> "invalid-distribution"
  | 5 -> "non-convergent"
  | 6 -> "budget-exhausted"
  | 7 -> "invalid-parameter"
  | _ -> "error"

let make_error code detail = { code; label = label_of_code code; detail }
let usage_error detail = make_error 2 detail
let invalid_distribution_error detail = make_error 4 detail

let error_of_solver e =
  make_error (Robust.Solver.exit_code e) (Robust.Solver.error_to_string e)

(* ------------------------------ parsing ---------------------------- *)

let to_num = function J.Num v -> Some v | _ -> None

let field name j = J.member name j
let num_field name j = Option.bind (field name j) to_num
let str_field name j = Option.bind (field name j) J.to_str
let int_field name j = Option.bind (field name j) J.to_int

let bool_field name j =
  match field name j with Some (J.Bool b) -> Some b | _ -> None

(* A tiny error-propagating bind keeps the field-by-field request
   assembly linear instead of a pyramid of matches. *)
let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let require name opt ~what =
  match opt with
  | Some v -> Ok v
  | None -> Error (usage_error (Printf.sprintf "missing %s field %S" what name))

(* Input hardening: a NaN or infinity in a numeric field can only be a
   client bug (JSON cannot even spell NaN; infinities arrive as
   overflowed literals like 1e999), and letting one through poisons
   cache keys and solver budgets. Reject at the parse boundary with
   the usage code instead. *)
let finite name v ~what =
  if Float.is_finite v then Ok v
  else
    Error
      (usage_error
         (Printf.sprintf "%s field %S must be finite, got %g" what name v))

let require_finite name opt ~what =
  let* v = require name opt ~what in
  finite name v ~what

let parse_dist j =
  match field "dist" j with
  | None -> Error (usage_error "missing solve field \"dist\"")
  | Some spec -> (
      match (str_field "name" spec, str_field "tenant" spec,
             str_field "family" spec) with
      | Some name, _, _ -> Ok (Named name)
      | None, Some tenant, _ -> Ok (Tenant tenant)
      | None, None, Some family -> (
          match String.lowercase_ascii family with
          | "lognormal" ->
              let* mu = require_finite "mu" (num_field "mu" spec) ~what:"dist" in
              let* sigma =
                require_finite "sigma" (num_field "sigma" spec) ~what:"dist"
              in
              Ok (Lognormal { mu; sigma })
          | other ->
              Error
                (usage_error
                   (Printf.sprintf
                      "unsupported dist family %S (only \"lognormal\" takes \
                       explicit parameters; use {\"name\": ...} for the \
                       registry)"
                      other)))
      | None, None, None ->
          Error
            (usage_error
               "dist must carry \"name\", \"tenant\" or \"family\""))

let parse_model j =
  match field "model" j with
  | None -> Ok (Affine { alpha = 1.0; beta = 0.0; gamma = 0.0 })
  | Some (J.Str s) -> (
      match String.lowercase_ascii s with
      | "hpc" | "neuro-hpc" -> Ok Hpc
      | other ->
          Error
            (usage_error
               (Printf.sprintf "unknown model name %S (use \"hpc\")" other)))
  | Some spec ->
      let default name fallback =
        match num_field name spec with
        | None -> Ok fallback
        | Some v -> finite name v ~what:"model"
      in
      let* alpha = default "alpha" 1.0 in
      let* beta = default "beta" 0.0 in
      let* gamma = default "gamma" 0.0 in
      Ok (Affine { alpha; beta; gamma })

let parse_budget j =
  match field "budget" j with
  | None -> Ok empty_budget
  | Some spec ->
      let* max_seconds =
        match num_field "max_seconds" spec with
        | None -> Ok None
        | Some v ->
            let* v = finite "max_seconds" v ~what:"budget" in
            Ok (Some v)
      in
      Ok
        {
          m = int_field "m" spec;
          n = int_field "n" spec;
          disc_n = int_field "disc_n" spec;
          max_seconds;
          max_evaluations = int_field "max_evaluations" spec;
        }

let max_count = 10_000

let parse_solve j =
  let* dist = parse_dist j in
  let* model = parse_model j in
  let* budget = parse_budget j in
  let strategy = Option.value (str_field "strategy" j) ~default:"cascade" in
  let count = Option.value (int_field "count" j) ~default:10 in
  let* () =
    if count >= 1 && count <= max_count then Ok ()
    else
      Error
        (usage_error
           (Printf.sprintf "count must be in [1, %d], got %d" max_count count))
  in
  let exact = Option.value (bool_field "exact" j) ~default:false in
  Ok (Solve { dist; model; strategy; budget; seed = int_field "seed" j;
              count; exact })

let parse_fit j =
  let* tenant = require "tenant" (str_field "tenant" j) ~what:"fit" in
  let* samples_json = require "samples" (field "samples" j) ~what:"fit" in
  let* items =
    match J.to_list samples_json with
    | Some l -> Ok l
    | None -> Error (usage_error "fit field \"samples\" must be an array")
  in
  let rec collect acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | item :: rest -> (
        match to_num item with
        | Some v when Float.is_finite v -> collect (v :: acc) rest
        | Some _ ->
            Error (usage_error "fit samples must all be finite numbers")
        | None -> Error (usage_error "fit samples must all be numbers"))
  in
  let* samples = collect [] items in
  Ok (Fit { tenant; samples })

let parse_request line =
  match J.of_string line with
  | Error msg -> Error (None, usage_error ("unparseable request: " ^ msg))
  | Ok (J.Obj _ as j) -> (
      let id = field "id" j in
      match str_field "kind" j with
      | None -> Error (id, usage_error "missing request field \"kind\"")
      | Some kind -> (
          let result =
            match String.lowercase_ascii kind with
            | "solve" -> parse_solve j
            | "fit" -> parse_fit j
            | "stats" -> Ok Stats
            | "metrics" -> Ok Metrics
            | "shutdown" -> Ok Shutdown
            | other ->
                Error
                  (usage_error
                     (Printf.sprintf
                        "unknown request kind %S (use solve, fit, stats, \
                         metrics, shutdown)"
                        other))
          in
          match result with
          | Ok req -> Ok (id, req)
          | Error e -> Error (id, e)))
  | Ok _ -> Error (None, usage_error "request must be a JSON object")

(* ----------------------------- responses --------------------------- *)

type solved = {
  dist_name : string;
  tier : string;
  degraded : bool;
  head : float array;
  cost : float;
  normalized : float;
}

(* Journal persistence codec. Finite floats ride as JSON numbers
   (%.17g round-trips a double exactly, so recovered entries are
   bit-identical); the non-finite values JSON cannot spell are encoded
   as the same tokens {!Quantize.quantize} uses. *)

let float_to_json v =
  match Float.classify_float v with
  | FP_nan -> J.Str "nan"
  | FP_infinite -> J.Str (if v > 0.0 then "inf" else "-inf")
  | FP_normal | FP_subnormal | FP_zero -> J.Num v

let float_of_json = function
  | J.Num v -> Some v
  | J.Str "nan" -> Some Float.nan
  | J.Str "inf" -> Some Float.infinity
  | J.Str "-inf" -> Some Float.neg_infinity
  | _ -> None

let solved_to_json s =
  J.Obj
    [
      ("dist", J.Str s.dist_name);
      ("tier", J.Str s.tier);
      ("degraded", J.Bool s.degraded);
      ("head", J.Arr (Array.to_list (Array.map float_to_json s.head)));
      ("cost", float_to_json s.cost);
      ("normalized", float_to_json s.normalized);
    ]

let solved_of_json j =
  let missing name = Error (Printf.sprintf "solved record lacks %S" name) in
  let* dist_name =
    match Option.bind (field "dist" j) J.to_str with
    | Some s -> Ok s
    | None -> missing "dist"
  in
  let* tier =
    match Option.bind (field "tier" j) J.to_str with
    | Some s -> Ok s
    | None -> missing "tier"
  in
  let* degraded =
    match field "degraded" j with
    | Some (J.Bool b) -> Ok b
    | _ -> missing "degraded"
  in
  let* head_items =
    match Option.bind (field "head" j) J.to_list with
    | Some l -> Ok l
    | None -> missing "head"
  in
  let rec floats acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | item :: rest -> (
        match float_of_json item with
        | Some v -> floats (v :: acc) rest
        | None -> Error "solved head holds a non-number")
  in
  let* head = floats [] head_items in
  let* cost =
    match Option.bind (field "cost" j) float_of_json with
    | Some v -> Ok v
    | None -> missing "cost"
  in
  let* normalized =
    match Option.bind (field "normalized" j) float_of_json with
    | Some v -> Ok v
    | None -> missing "normalized"
  in
  Ok { dist_name; tier; degraded; head; cost; normalized }

let with_id id fields =
  match id with Some id -> ("id", id) :: fields | None -> fields

let render fields = J.to_string ~indent:false (J.Obj fields)

let solve_response ~id ~cached ~key solved =
  render
    (with_id id
       [
         ("ok", J.Bool true);
         ("kind", J.Str "solve");
         ("cached", J.Bool cached);
         ("key", J.Str key);
         ("dist", J.Str solved.dist_name);
         ("tier", J.Str solved.tier);
         ("degraded", J.Bool solved.degraded);
         ( "sequence",
           J.Arr (Array.to_list (Array.map (fun v -> J.Num v) solved.head)) );
         ("cost", J.Num solved.cost);
         ("normalized", J.Num solved.normalized);
       ])

let fit_response ~id ~tenant (fit : Distributions.Fitting.lognormal_fit) =
  render
    (with_id id
       [
         ("ok", J.Bool true);
         ("kind", J.Str "fit");
         ("tenant", J.Str tenant);
         ("mu", J.Num fit.mu);
         ("sigma", J.Num fit.sigma);
         ("sample_mean", J.Num fit.sample_mean);
         ("sample_std", J.Num fit.sample_std);
         ("ks", J.Num fit.ks);
         ("n", J.Num (float_of_int fit.n));
       ])

let stats_response ~id stats =
  render (with_id id [ ("ok", J.Bool true); ("kind", J.Str "stats"); ("stats", stats) ])

let metrics_response ~id ~exposition =
  render
    (with_id id
       [
         ("ok", J.Bool true);
         ("kind", J.Str "metrics");
         ("content_type", J.Str "text/plain; version=0.0.4");
         ("exposition", J.Str exposition);
       ])

let shutdown_response ~id =
  render (with_id id [ ("ok", J.Bool true); ("kind", J.Str "shutdown") ])

let error_response ~id { code; label; detail } =
  render
    (with_id id
       [
         ("ok", J.Bool false);
         ("code", J.Num (float_of_int code));
         ("error", J.Str label);
         ("detail", J.Str detail);
       ])
