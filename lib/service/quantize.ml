let default_grid = 0.05

let check_grid g =
  if Float.is_finite g && g > 0.0 && g <= 1.0 then Ok g
  else
    Error
      (Printf.sprintf "grid resolution must be finite and in (0, 1], got %g" g)

let log_step grid =
  match check_grid grid with
  | Ok g -> log (1.0 +. g)
  | Error msg -> invalid_arg ("Quantize: " ^ msg)

let bucket ~grid v =
  let step = log_step grid in
  int_of_float (Float.round (log v /. step))

let quantize ~grid v =
  (* Validate the grid even on the paths that never divide by it, so a
     bad server configuration fails loudly on the first key built. *)
  let step = log_step grid in
  match Float.classify_float v with
  | FP_nan -> "nan"
  | FP_infinite -> if v > 0.0 then "inf" else "-inf"
  | FP_zero | FP_subnormal -> "z"
  | FP_normal ->
      let mag = Float.abs v in
      let idx = int_of_float (Float.round (log mag /. step)) in
      if v > 0.0 then Printf.sprintf "b%d" idx else Printf.sprintf "-b%d" idx

let key ~grid ~family ~params ~model ~strategy ~m ~n ~disc_n ~max_evaluations
    ~seed ~count ~exact =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (String.lowercase_ascii family);
  List.iter
    (fun (name, v) ->
      Buffer.add_char buf '|';
      Buffer.add_string buf name;
      Buffer.add_char buf '=';
      Buffer.add_string buf (quantize ~grid v))
    params;
  let { Stochastic_core.Cost_model.alpha; beta; gamma } = model in
  Buffer.add_string buf
    (Printf.sprintf "|alpha=%s|beta=%s|gamma=%s" (quantize ~grid alpha)
       (quantize ~grid beta) (quantize ~grid gamma));
  Buffer.add_string buf
    (Printf.sprintf "|s=%s|m=%d|n=%d|k=%d|e=%d|seed=%d|count=%d|exact=%b"
       (String.lowercase_ascii strategy)
       m n disc_n max_evaluations seed count exact);
  Buffer.contents buf
