(** Bounded LRU cache for solved strategies.

    String-keyed, O(1) lookup and insertion (hash table over an
    intrusive doubly-linked recency list), with a hard capacity bound:
    inserting into a full cache evicts the least-recently-used entry.
    Hits, misses and evictions are counted locally so the daemon's
    [stats] response and the metrics registry can both report them.

    Only {e successful} solves belong in the cache; errors are cheap to
    recompute and must not shadow a later, healthier request. The
    server enforces that policy — this module is value-agnostic. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] holds at most [capacity] entries.
    @raise Invalid_argument if [capacity < 1]. *)

val find : 'a t -> string -> 'a option
(** [find t k] returns the cached value and marks [k] most recently
    used; counts a hit or a miss. *)

type outcome = Inserted | Replaced | Evicted of string
(** What {!put} did: a fresh insertion, an in-place overwrite of an
    existing key, or an insertion that pushed the named
    least-recently-used key out. *)

val put : 'a t -> string -> 'a -> outcome
(** [put t k v] binds [k] to [v] as the most recently used entry,
    evicting the least recently used one when the cache is full and
    [k] is new. *)

val size : 'a t -> int
val capacity : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int

val hit_rate : 'a t -> float
(** [hits / (hits + misses)]; [0.] before any lookup. *)

val keys_mru : 'a t -> string list
(** Keys from most to least recently used — the eviction order
    reversed. Exposed for tests and the [stats] response. *)

val bindings_lru : 'a t -> (string * 'a) list
(** Bindings from least to most recently used. Replaying the list
    through {!put} in order rebuilds both the contents and the recency
    order — the journal compactor's snapshot format. *)
