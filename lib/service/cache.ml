(* Intrusive doubly-linked recency list over a hash table: the list
   head is the most recently used entry, the tail the next eviction
   victim. All operations are O(1). *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* towards the MRU head *)
  mutable next : 'a node option;  (* towards the LRU tail *)
}

type 'a t = {
  table : (string, 'a node) Hashtbl.t;
  cap : int;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable size : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 1 then
    invalid_arg
      (Printf.sprintf "Cache.create: capacity must be >= 1, got %d" capacity);
  {
    table = Hashtbl.create (min capacity 4096);
    cap = capacity;
    head = None;
    tail = None;
    size = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

(* Detach [node] from the recency list (it must be linked). *)
let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

(* Push [node] (detached) to the MRU head. *)
let push_front t node =
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t k =
  match Hashtbl.find_opt t.table k with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some node ->
      t.hits <- t.hits + 1;
      unlink t node;
      push_front t node;
      Some node.value

type outcome = Inserted | Replaced | Evicted of string

let put t k v =
  match Hashtbl.find_opt t.table k with
  | Some node ->
      node.value <- v;
      unlink t node;
      push_front t node;
      Replaced
  | None ->
      let evicted =
        if t.size >= t.cap then (
          match t.tail with
          | Some victim ->
              unlink t victim;
              Hashtbl.remove t.table victim.key;
              t.size <- t.size - 1;
              t.evictions <- t.evictions + 1;
              Some victim.key
          | None -> None (* unreachable: size >= cap >= 1 implies a tail *))
        else None
      in
      let node = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.table k node;
      push_front t node;
      t.size <- t.size + 1;
      (match evicted with Some key -> Evicted key | None -> Inserted)

let size t = t.size
let capacity t = t.cap
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let keys_mru t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some node -> walk (node.key :: acc) node.next
  in
  walk [] t.head

let bindings_lru t =
  (* Walk from the MRU head accumulating without the final reverse:
     the result comes out tail-first, i.e. least recently used first,
     so replaying it through [put] reconstructs the recency order. *)
  let rec walk acc = function
    | None -> acc
    | Some node -> walk ((node.key, node.value) :: acc) node.next
  in
  walk [] t.head
