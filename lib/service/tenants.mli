(** Per-tenant distribution fits, kept warm between requests.

    A [fit] request reduces a tenant's sample trace to its LogNormal
    MLE (the paper's Fig. 1 estimator) and stores it here; later
    [solve] requests referencing [{"tenant": id}] reuse the stored fit
    without re-estimating — and, because fitted parameters are
    quantized into the cache key, tenants with near-identical traces
    share one cached solve. Re-fitting a tenant overwrites the stored
    fit. *)

type t

val create : unit -> t

val fit :
  t -> id:string -> float array ->
  (Distributions.Fitting.lognormal_fit, string) result
(** Fit and store. Fewer than 2 samples, or any non-positive sample,
    is an [Error] (the estimator's own domain), not an exception. *)

val find : t -> string -> Distributions.Fitting.lognormal_fit option

val dist : t -> string -> Distributions.Dist.t option
(** The stored fit instantiated as a distribution. *)

val count : t -> int
