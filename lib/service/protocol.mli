(** The daemon's JSONL wire protocol.

    One JSON object per line in, one per line out, in request order.
    Five request kinds:

    {v
    {"kind": "solve", "id": 1, "dist": {"name": "lognormal"},
     "model": {"alpha": 1, "beta": 0, "gamma": 0}, "strategy": "cascade",
     "budget": {"m": 300, "n": 200, "disc_n": 200}, "seed": 42,
     "count": 10, "exact": false}
    {"kind": "fit", "id": 2, "tenant": "u1", "samples": [812.2, ...]}
    {"kind": "stats", "id": 3}
    {"kind": "metrics", "id": 4}
    {"kind": "shutdown", "id": 5}
    v}

    [dist] is one of [{"name": N}] (registry / trace names, as the CLI
    [--dist]), [{"family": "lognormal", "mu": M, "sigma": S}] (explicit
    parameters — the cacheable fast path), or [{"tenant": T}] (the
    LogNormal fit stored by a prior [fit] request). [model] is the
    affine object above or the string ["hpc"]. Responses echo [id]
    and carry [ok]; failures are structured:

    {v
    {"id": 1, "ok": false, "code": 4, "error": "invalid-distribution",
     "detail": "..."}
    v}

    The [code] numbering {e is} the CLI exit-code taxonomy, so scripts
    can treat a daemon error exactly like a CLI failure: 2 usage
    (malformed request, unknown name), 4 invalid distribution, 5
    non-convergent, 6 budget exhausted, 7 invalid parameter. *)

type dist_spec =
  | Named of string
  | Lognormal of { mu : float; sigma : float }
  | Tenant of string

type model_spec =
  | Hpc
  | Affine of { alpha : float; beta : float; gamma : float }

type budget_spec = {
  m : int option;  (** Brute-force grid size. *)
  n : int option;  (** Monte-Carlo samples. *)
  disc_n : int option;  (** DP discretization size. *)
  max_seconds : float option;
  max_evaluations : int option;
}

val empty_budget : budget_spec

type solve = {
  dist : dist_spec;
  model : model_spec;
  strategy : string;  (** Default ["cascade"]. *)
  budget : budget_spec;
  seed : int option;
  count : int;  (** Reservations to materialise (default 10). *)
  exact : bool;  (** Rank brute-force candidates by Eq. (4). *)
}

type request =
  | Solve of solve
  | Fit of { tenant : string; samples : float array }
  | Stats
  | Metrics
  | Shutdown

type error = { code : int; label : string; detail : string }

val usage_error : string -> error
(** Code 2 — malformed request, unknown kind/name/field. *)

val invalid_distribution_error : string -> error
(** Code 4 — a distribution that fails to construct or validate. *)

val error_of_solver : Robust.Solver.error -> error
(** Map a typed solver error onto the wire: the [code] is exactly
    {!Robust.Solver.exit_code} (4–7), [label] its kebab-case name,
    [detail] {!Robust.Solver.error_to_string}. Pinned by a regression
    test so the two taxonomies cannot drift. *)

val label_of_code : int -> string
(** ["usage"], ["invalid-distribution"], ["non-convergent"],
    ["budget-exhausted"], ["invalid-parameter"]; ["error"] for any
    other code. *)

val parse_request : string -> (Stochobs.Json.t option * request, Stochobs.Json.t option * error) result
(** Parse one JSONL line. Both branches carry the echoed [id] field
    when one was readable, so even a malformed request is answered
    with its correlation id. *)

(** {1 Responses} *)

type solved = {
  dist_name : string;  (** Display name of the resolved distribution. *)
  tier : string;  (** Producing tier or direct strategy name. *)
  degraded : bool;
  head : float array;
  cost : float;
  normalized : float;
}

val solved_to_json : solved -> Stochobs.Json.t
(** Persistence codec for the cache journal. Finite floats are emitted
    as JSON numbers ([%.17g] round-trips a double exactly, so a
    recovered entry is bit-identical to the one written); NaN and the
    infinities — unspellable in JSON — ride as the string tokens
    ["nan"], ["inf"], ["-inf"]. *)

val solved_of_json : Stochobs.Json.t -> (solved, string) result
(** Inverse of {!solved_to_json}; [Error] names the missing or
    ill-typed field. Never raises. *)

val solve_response :
  id:Stochobs.Json.t option -> cached:bool -> key:string -> solved -> string
val fit_response :
  id:Stochobs.Json.t option -> tenant:string ->
  Distributions.Fitting.lognormal_fit -> string
val stats_response : id:Stochobs.Json.t option -> Stochobs.Json.t -> string
(** Wrap a server-assembled stats object. *)

val metrics_response : id:Stochobs.Json.t option -> exposition:string -> string
(** Wrap a Prometheus text exposition (see
    {!Stochobs.Metrics.to_prometheus}) for live scraping through the
    protocol; [content_type] carries the exposition-format version so
    a relay can serve the payload verbatim over HTTP. *)

val shutdown_response : id:Stochobs.Json.t option -> string
val error_response : id:Stochobs.Json.t option -> error -> string
