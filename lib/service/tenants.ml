type t = (string, Distributions.Fitting.lognormal_fit) Hashtbl.t

let create () : t = Hashtbl.create 64

let fit t ~id samples =
  match Distributions.Fitting.lognormal_mle samples with
  | f ->
      Hashtbl.replace t id f;
      Ok f
  | exception Invalid_argument msg ->
      Error (Printf.sprintf "cannot fit tenant %S: %s" id msg)

let find t id = Hashtbl.find_opt t id

let dist t id =
  Option.map Distributions.Fitting.to_dist (Hashtbl.find_opt t id)

let count t = Hashtbl.length t
