module Strategy = Stochastic_core.Strategy
module Cost_model = Stochastic_core.Cost_model

let dist ?(hpc = false) ?trace ?(fit = false) name =
  match trace with
  | Some path -> (
      match Platform.Traces.load_csv path with
      | data -> (
          if fit then
            match Distributions.Fitting.lognormal_mle data with
            | f -> Ok (Distributions.Fitting.to_dist f)
            | exception Invalid_argument msg ->
                Error
                  (Printf.sprintf "cannot fit a LogNormal to %s: %s" path msg)
          else
            match Distributions.Empirical.make ~name:("trace:" ^ path) data with
            | d -> Ok d
            | exception Invalid_argument msg ->
                Error
                  (Printf.sprintf "unusable trace %s: %s" path msg))
      | exception Sys_error msg -> Error ("cannot read trace: " ^ msg)
      | exception Failure msg ->
          Error (Printf.sprintf "malformed trace %s: %s" path msg))
  | None -> (
      match String.lowercase_ascii name with
      (* The neuroscience traces are in seconds; the NeuroHPC cost
         model is calibrated in hours, so convert when both are
         combined. *)
      | "vbmqa" ->
          Ok
            (if hpc then Platform.Traces.(distribution_hours vbmqa)
             else Platform.Traces.(distribution vbmqa))
      | "fmriqa" ->
          Ok
            (if hpc then Platform.Traces.(distribution_hours fmriqa)
             else Platform.Traces.(distribution fmriqa))
      (* Infinite variance: not in the registry (the raw solvers need
         the Theorem 2 bounds), but exposed to demonstrate the robust
         solver's fallback cascade. *)
      | "frechetheavy" -> Ok Distributions.Frechet.heavy_tail
      | n -> (
          match Distributions.Registry.find n with
          | Some d -> Ok d
          | None ->
              Error
                (Printf.sprintf "unknown distribution %S; available: %s" name
                   (String.concat ", " (Distributions.Registry.names ())))))

let model ~hpc ~alpha ~beta ~gamma =
  if hpc then Ok Cost_model.neuro_hpc
  else
    match Cost_model.make ~alpha ~beta ~gamma () with
    | m -> Ok m
    | exception Invalid_argument msg -> Error ("unusable cost model: " ^ msg)

let known_strategies =
  [
    "brute-force";
    "mean-by-mean";
    "mean-stdev";
    "mean-doubling";
    "median-by-median";
    "equal-time";
    "equal-probability";
  ]

let strategy ~m ~n ~disc_n ~seed name =
  match String.lowercase_ascii name with
  | "brute-force" | "bruteforce" | "bf" -> Ok (Strategy.brute_force ~m ~n ~seed ())
  | "mean-by-mean" -> Ok Strategy.mean_by_mean
  | "mean-stdev" -> Ok Strategy.mean_stdev
  | "mean-doubling" -> Ok Strategy.mean_doubling
  | "median-by-median" -> Ok Strategy.median_by_median
  | "equal-time" ->
      Ok
        (Strategy.dp_discretized ~scheme:Stochastic_core.Discretize.Equal_time
           ~n:disc_n ())
  | "equal-probability" | "equal-prob" ->
      Ok
        (Strategy.dp_discretized
           ~scheme:Stochastic_core.Discretize.Equal_probability ~n:disc_n ())
  | _ ->
      Error
        (Printf.sprintf "unknown strategy %S; available: %s" name
           (String.concat ", " known_strategies))

let tier_of_name name =
  match String.lowercase_ascii (String.trim name) with
  | "brute-force" | "bruteforce" | "bf" -> Some Robust.Solver.Brute_force
  | "dp" | "equal-probability" | "equal-prob" ->
      Some Robust.Solver.Dp_equal_probability
  | "mean-doubling" | "doubling" -> Some Robust.Solver.Mean_doubling
  | _ -> None

let tiers_of_string names =
  let parts = String.split_on_char ',' names in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match tier_of_name p with
        | Some t -> go (t :: acc) rest
        | None ->
            Error
              (Printf.sprintf
                 "unknown tier %S (use brute-force, dp, mean-doubling)" p))
  in
  go [] parts

let tiers_of_strategy name =
  match String.lowercase_ascii (String.trim name) with
  | "cascade" -> Some Robust.Solver.all_tiers
  | n -> ( match tier_of_name n with Some t -> Some [ t ] | None -> None)
