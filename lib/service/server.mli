(** Strategy-as-a-service: the daemon's request loop.

    A server holds the solved-strategy {!Cache} (keyed by
    {!Quantize.key}), the {!Tenants} fit table, and per-kind request
    counters. Transport is abstract — [serve] pulls JSONL lines from a
    [recv] thunk and pushes response lines through a [send] function,
    so the same core runs over stdin/stdout, a Unix-domain socket
    connection (the CLI owns the sockets) or an in-memory list (tests,
    bench). One request line always produces exactly one response
    line; blank lines are ignored.

    Solves go through {!Robust.Solver.solve} (strategy ["cascade"] or
    a single tier name) so the daemon degrades instead of dying, or —
    for the heuristic strategies outside the cascade — through a
    guarded direct evaluation that converts any escape into a typed
    code-5 response. Only successful solves are cached.

    Observability: every request runs inside a ["service.request"]
    span (the solver's tier spans nest under it), cache traffic and
    request latencies feed the metrics registry
    ([service.cache.hits/misses/evictions], [service.cache.size],
    [service.request.seconds], [service.requests.*]), and the clock is
    injectable, so a [--fake-clock] run produces bit-for-bit
    reproducible traces. *)

type config = {
  cache_capacity : int;  (** LRU entries (default 1024). *)
  grid : float;  (** Relative key-quantization grid (default 0.05). *)
  budget : Robust.Solver.budget;
      (** Per-solve base budget; requests override fields. *)
  seed : int;  (** Default Monte-Carlo seed (default 42). *)
}

val default_config : config
(** 1024 entries, grid {!Quantize.default_grid},
    {!Robust.Solver.quick_budget} (a daemon answers interactively;
    callers wanting paper-scale grids say so per request), seed 42. *)

val check_config : config -> (config, string) result
(** Validate capacity/grid/seed before building a server. *)

type t

val create :
  ?obs:Stochobs.Trace.sink ->
  ?clock:Stochobs.Clock.t ->
  ?metrics:Stochobs.Metrics.t ->
  config -> t
(** [create config] builds a server. [obs] (default
    {!Stochobs.Trace.null}) receives the request spans; [clock]
    (default {!Stochobs.Clock.cpu}) times requests and the uptime
    reported by [stats]; [metrics] (default
    {!Stochobs.Metrics.default}) hosts the instruments.
    @raise Invalid_argument on an invalid config (validate with
    {!check_config} for a typed error). *)

val handle_line : t -> string -> string option * bool
(** [handle_line t line] processes one request line and returns the
    response line (or [None] for blank input) and whether the server
    should stop ([true] exactly after a well-formed [shutdown]
    request). Never raises. *)

val serve :
  t -> recv:(unit -> string option) -> send:(string -> unit) -> unit
(** Pump [recv] through {!handle_line} into [send] until end of input
    ([recv () = None]) or a [shutdown] request. *)

val stats_json : t -> Stochobs.Json.t
(** The [stats] response payload: uptime, per-kind request counts,
    cache size/capacity/hits/misses/evictions/hit-rate, tenant count,
    and a snapshot of the metrics registry. *)
