(** Strategy-as-a-service: the daemon's request loop.

    A server holds the solved-strategy {!Cache} (keyed by
    {!Quantize.key}), the {!Tenants} fit table, and per-kind request
    counters. Transport is abstract — [serve] pulls JSONL lines from a
    [recv] thunk and pushes response lines through a [send] function,
    so the same core runs over stdin/stdout, a Unix-domain socket
    connection (the CLI owns the sockets) or an in-memory list (tests,
    bench). One request line always produces exactly one response
    line; blank lines are ignored.

    Solves go through {!Robust.Solver.solve} (strategy ["cascade"] or
    a single tier name) so the daemon degrades instead of dying, or —
    for the heuristic strategies outside the cascade — through a
    guarded direct evaluation that converts any escape into a typed
    code-5 response. Only successful solves are cached.

    Robustness: an optional {!Journal} persists successful solves and
    warms the cache on restart; a per-request deadline clamps every
    solve's time budget; oversized request lines are refused with a
    typed code-2 error before parsing; and a pressure state machine
    sheds load when consecutive requests run near the deadline,
    answering cache misses with the mean-doubling tier alone and
    [degraded: true] on the wire until pressure drains. Shed answers
    are never cached or journalled.

    Observability: every request runs inside a ["service.request"]
    span carrying the client's echoed [id] as a typed [request_id]
    attribute (the solver's tier spans nest under it), cache traffic
    and request latencies feed the metrics registry
    ([service.cache.hits/misses/evictions], [service.cache.size],
    [service.request.seconds], [service.requests.*],
    [service.journal.*], [service.deadline.exceeded],
    [service.shed.responses], and the rolling
    [service.request.p99_window] gauge over the last 128 requests —
    shed decisions are annotated with its live value), a [metrics]
    request returns the whole registry as a Prometheus text
    exposition, and the clock is injectable — threaded through to the
    solver's budget guard — so a [--fake-clock] run produces
    bit-for-bit reproducible traces. *)

type config = {
  cache_capacity : int;  (** LRU entries (default 1024). *)
  grid : float;  (** Relative key-quantization grid (default 0.05). *)
  budget : Robust.Solver.budget;
      (** Per-solve base budget; requests override fields. *)
  seed : int;  (** Default Monte-Carlo seed (default 42). *)
  deadline : float option;
      (** Per-request deadline in seconds (default [None]). Clamps
          each solve's [max_seconds] and drives overload shedding. *)
  max_line_bytes : int;
      (** Request lines longer than this are refused with a code-2
          error before parsing (default 1 MiB, minimum 64). *)
  shed_threshold : int;
      (** Consecutive near-deadline requests before the server enters
          shedding mode (default 3, minimum 1). *)
}

val default_config : config
(** 1024 entries, grid {!Quantize.default_grid},
    {!Robust.Solver.quick_budget} (a daemon answers interactively;
    callers wanting paper-scale grids say so per request), seed 42,
    no deadline, 1 MiB line cap, shed threshold 3. *)

val check_config : config -> (config, string) result
(** Validate capacity/grid/deadline/line-cap/threshold before
    building a server. *)

type t

val create :
  ?obs:Stochobs.Trace.sink ->
  ?clock:Stochobs.Clock.t ->
  ?metrics:Stochobs.Metrics.t ->
  ?journal:Journal.t ->
  config -> t
(** [create config] builds a server. [obs] (default
    {!Stochobs.Trace.null}) receives the request spans; [clock]
    (default {!Stochobs.Clock.cpu}) times requests and the uptime
    reported by [stats]; [metrics] (default
    {!Stochobs.Metrics.default}) hosts the instruments. When [journal]
    is given, its recovered entries are replayed into the cache before
    the first request (append order, so recency survives the restart)
    and every successful cold solve is appended to it; journal I/O
    failures degrade the server to serving without persistence, they
    never kill it.
    @raise Invalid_argument on an invalid config (validate with
    {!check_config} for a typed error). *)

val shedding : t -> bool
(** Whether the server is currently shedding load. *)

val close : t -> unit
(** Flush and close the journal, if any. Call on graceful shutdown;
    safe when no journal is attached. Never raises. *)

val handle_line : t -> string -> string option * bool
(** [handle_line t line] processes one request line and returns the
    response line (or [None] for blank input) and whether the server
    should stop ([true] exactly after a well-formed [shutdown]
    request). Never raises. *)

val serve :
  t -> recv:(unit -> string option) -> send:(string -> unit) -> unit
(** Pump [recv] through {!handle_line} into [send] until end of input
    ([recv () = None]) or a [shutdown] request. *)

val stats_json : t -> Stochobs.Json.t
(** The [stats] response payload: uptime, per-kind request counts,
    cache size/capacity/hits/misses/evictions/hit-rate, tenant count,
    a [journal] object (enabled/appended/recovered/skipped_corrupt/
    compactions/errors), an [overload] object (a summary [state] of
    ["ok"], ["pressure"] or ["shedding"], plus shedding/pressure/
    shed_responses/deadline_exceeded/p99_window_seconds), and a
    snapshot of the metrics registry. *)
