module J = Stochobs.Json
module Trace = Stochobs.Trace
module M = Stochobs.Metrics
module Dist = Distributions.Dist
module Solver = Robust.Solver

type config = {
  cache_capacity : int;
  grid : float;
  budget : Solver.budget;
  seed : int;
  deadline : float option;
  max_line_bytes : int;
  shed_threshold : int;
}

let default_config =
  {
    cache_capacity = 1024;
    grid = Quantize.default_grid;
    budget = Solver.quick_budget;
    seed = 42;
    deadline = None;
    max_line_bytes = 1_048_576;
    shed_threshold = 3;
  }

let check_config config =
  if config.cache_capacity < 1 then
    Error
      (Printf.sprintf "cache capacity must be >= 1, got %d"
         config.cache_capacity)
  else if
    match config.deadline with
    | None -> false
    | Some d -> not (Float.is_finite d && d > 0.0)
  then
    Error
      (Printf.sprintf "request deadline must be finite and > 0, got %g"
         (Option.value config.deadline ~default:Float.nan))
  else if config.max_line_bytes < 64 then
    Error
      (Printf.sprintf "max line bytes must be >= 64, got %d"
         config.max_line_bytes)
  else if config.shed_threshold < 1 then
    Error
      (Printf.sprintf "shed threshold must be >= 1, got %d"
         config.shed_threshold)
  else
    match Quantize.check_grid config.grid with
    | Error msg -> Error msg
    | Ok _ -> Ok config

type counters = {
  mutable solve : int;
  mutable fit : int;
  mutable stats : int;
  mutable metrics : int;
  mutable shutdown : int;
  mutable errors : int;
  mutable shed : int;  (* responses answered degraded under shedding *)
  mutable deadline_exceeded : int;
  mutable journal_errors : int;  (* appends/compactions lost to I/O *)
}

type t = {
  config : config;
  obs : Trace.sink;
  clock : Stochobs.Clock.t;
  registry : M.t;
  cache : Protocol.solved Cache.t;
  tenants : Tenants.t;
  journal : Journal.t option;
  requests : counters;
  start : float;
  (* Overload state: consecutive near-deadline requests build
     pressure; enough pressure flips the server into shedding mode
     (cheap mean-doubling answers, [degraded: true] on the wire) until
     fast requests drain it back to zero. *)
  mutable pressure : int;
  mutable shedding : bool;
  (* Rolling window of the most recent request latencies; the p99 over
     it is a live health gauge, cheaper and fresher than the lifetime
     histogram (which never forgets a cold start). *)
  lat_window : float array;
  mutable lat_seen : int;
  (* Registry instruments, registered once at creation. *)
  m_hits : M.counter;
  m_misses : M.counter;
  m_evictions : M.counter;
  m_cold : M.counter;
  m_errors : M.counter;
  m_size : M.gauge;
  m_latency : M.histogram;
  m_j_appended : M.counter;
  m_j_compactions : M.counter;
  m_j_errors : M.counter;
  m_deadline_exceeded : M.counter;
  m_shed : M.counter;
  m_p99_window : M.gauge;
}

let window_size = 128

let create ?(obs = Trace.null) ?(clock = Stochobs.Clock.cpu)
    ?(metrics = M.default) ?journal config =
  (match check_config config with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Server.create: " ^ msg));
  let cache = Cache.create ~capacity:config.cache_capacity in
  (* Warm the cache from the journal before taking requests: replay in
     append order, so a later record for the same key wins and the
     recency order matches the writing server's. *)
  (match journal with
  | None -> ()
  | Some j ->
      List.iter
        (fun { Journal.key; solved } -> ignore (Cache.put cache key solved))
        (Journal.recovered j);
      let s = Journal.stats j in
      M.add
        (M.counter metrics "service.journal.recovered")
        s.Journal.recovered_records;
      M.add
        (M.counter metrics "service.journal.skipped")
        s.Journal.skipped_corrupt);
  {
    config;
    obs;
    clock;
    registry = metrics;
    cache;
    tenants = Tenants.create ();
    journal;
    requests =
      {
        solve = 0;
        fit = 0;
        stats = 0;
        metrics = 0;
        shutdown = 0;
        errors = 0;
        shed = 0;
        deadline_exceeded = 0;
        journal_errors = 0;
      };
    start = clock ();
    pressure = 0;
    shedding = false;
    lat_window = Array.make window_size 0.0;
    lat_seen = 0;
    m_hits = M.counter metrics "service.cache.hits";
    m_misses = M.counter metrics "service.cache.misses";
    m_evictions = M.counter metrics "service.cache.evictions";
    m_cold = M.counter metrics "service.solves.cold";
    m_errors = M.counter metrics "service.requests.errors";
    m_size = M.gauge metrics "service.cache.size";
    m_latency =
      M.histogram metrics "service.request.seconds"
        ~buckets:[| 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 |];
    m_j_appended = M.counter metrics "service.journal.appended";
    m_j_compactions = M.counter metrics "service.journal.compactions";
    m_j_errors = M.counter metrics "service.journal.errors";
    m_deadline_exceeded = M.counter metrics "service.deadline.exceeded";
    m_shed = M.counter metrics "service.shed.responses";
    m_p99_window = M.gauge metrics "service.request.p99_window";
  }

(* Nearest-rank p99 over the filled part of the rolling window; 0.0
   before the first completed request. *)
let window_p99 t =
  let n = min t.lat_seen window_size in
  if n = 0 then 0.0
  else begin
    let sorted = Array.sub t.lat_window 0 n in
    Array.sort compare sorted;
    let rank = int_of_float (Float.ceil (0.99 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let record_latency t elapsed =
  t.lat_window.(t.lat_seen mod window_size) <- elapsed;
  t.lat_seen <- t.lat_seen + 1;
  M.set t.m_p99_window (window_p99 t)

let shedding t = t.shedding

let close t =
  match t.journal with
  | None -> ()
  | Some j -> (
      (* Graceful shutdown: make sure every record is on disk. A
         failure here must not mask the shutdown itself. *)
      try
        Journal.flush j;
        Journal.close j
      with Sys_error _ -> t.requests.journal_errors <- t.requests.journal_errors + 1)

(* --------------------------- solve handling ------------------------ *)

(* Resolve the request's distribution spec to a live distribution plus
   the (family, params) pair that keys the cache. Named registry
   distributions are fixed instantiations, so they key on the name
   alone; explicit and tenant-fitted LogNormals key on their quantized
   parameters — that collapse is the whole point of the service. *)
let resolve_dist t ~hpc (spec : Protocol.dist_spec) =
  match spec with
  | Protocol.Named name -> (
      match Resolve.dist ~hpc name with
      | Ok d -> Ok (d, "named:" ^ String.lowercase_ascii name, [])
      | Error msg -> Error (Protocol.usage_error msg))
  | Protocol.Lognormal { mu; sigma } -> (
      match Distributions.Lognormal.make ~mu ~sigma with
      | d -> Ok (d, "lognormal", [ ("mu", mu); ("sigma", sigma) ])
      | exception Invalid_argument msg ->
          Error (Protocol.invalid_distribution_error msg))
  | Protocol.Tenant id -> (
      match Tenants.find t.tenants id with
      | Some fit -> (
          match Distributions.Lognormal.make ~mu:fit.mu ~sigma:fit.sigma with
          | d ->
              Ok (d, "lognormal", [ ("mu", fit.mu); ("sigma", fit.sigma) ])
          | exception Invalid_argument msg ->
              Error (Protocol.invalid_distribution_error msg))
      | None ->
          Error
            (Protocol.usage_error
               (Printf.sprintf
                  "unknown tenant %S (send a fit request first)" id)))

let resolve_model (spec : Protocol.model_spec) =
  match spec with
  | Protocol.Hpc -> Ok Stochastic_core.Cost_model.neuro_hpc
  | Protocol.Affine { alpha; beta; gamma } -> (
      match Resolve.model ~hpc:false ~alpha ~beta ~gamma with
      | Ok m -> Ok m
      | Error msg -> Error { Protocol.code = 7; label = "invalid-parameter";
                             detail = msg })

let budget_of t (b : Protocol.budget_spec) =
  let base = t.config.budget in
  {
    Solver.bf_candidates = Option.value b.m ~default:base.Solver.bf_candidates;
    mc_samples = Option.value b.n ~default:base.Solver.mc_samples;
    dp_points = Option.value b.disc_n ~default:base.Solver.dp_points;
    max_seconds = Option.value b.max_seconds ~default:base.Solver.max_seconds;
    max_evaluations =
      Option.value b.max_evaluations ~default:base.Solver.max_evaluations;
  }

let head_prefix ~count head =
  if Array.length head <= count then head else Array.sub head 0 count

(* Heuristic strategies outside the robust cascade: build and evaluate
   directly, converting any escape into a typed non-convergence. The
   daemon must answer with a structured error, never die. *)
let solve_direct strategy model d ~count =
  match
    let seq = strategy.Stochastic_core.Strategy.build model d in
    let head = Array.of_list (Stochastic_core.Sequence.take count seq) in
    let cost = Stochastic_core.Expected_cost.exact model d seq in
    (head, cost)
  with
  | head, cost when Float.is_finite cost ->
      Ok
        {
          Protocol.dist_name = d.Dist.name;
          tier = strategy.Stochastic_core.Strategy.name;
          degraded = false;
          head;
          cost;
          normalized = Stochastic_core.Expected_cost.normalized model d ~cost;
        }
  | _, cost ->
      Error
        (Protocol.error_of_solver
           (Solver.Non_convergent
              {
                stage = strategy.Stochastic_core.Strategy.name;
                detail = Printf.sprintf "non-finite expected cost %g" cost;
              }))
  | exception e ->
      Error
        (Protocol.error_of_solver
           (Solver.Non_convergent
              {
                stage = strategy.Stochastic_core.Strategy.name;
                detail = Printexc.to_string e;
              }))

let solve_cold t (s : Protocol.solve) model d ~budget ~seed =
  match Resolve.tiers_of_strategy s.Protocol.strategy with
  | Some tiers -> (
      match
        Solver.solve ~obs:t.obs ~clock:t.clock ~budget ~tiers
          ~exact:s.Protocol.exact ~seed model d
      with
      | Ok sol ->
          Ok
            {
              Protocol.dist_name = d.Dist.name;
              tier = Solver.tier_name sol.Solver.diagnostics.Solver.chosen;
              degraded = Solver.degraded sol;
              head = head_prefix ~count:s.Protocol.count sol.Solver.head;
              cost = sol.Solver.cost;
              normalized = sol.Solver.normalized;
            }
      | Error e -> Error (Protocol.error_of_solver e))
  | None -> (
      let b = budget in
      match
        Resolve.strategy ~m:b.Solver.bf_candidates ~n:b.Solver.mc_samples
          ~disc_n:b.Solver.dp_points ~seed s.Protocol.strategy
      with
      | Error msg -> Error (Protocol.usage_error msg)
      | Ok strategy -> solve_direct strategy model d ~count:s.Protocol.count)

(* Under shedding pressure, a cache miss is answered by the cheapest
   tier alone — mean doubling needs only the distribution's mean — and
   the response is branded [degraded: true]. Shed answers are never
   cached or journalled: once pressure drains, the same request gets
   (and persists) the full-quality answer. *)
let solve_shed t (s : Protocol.solve) model d ~budget ~seed =
  (* Mean doubling is O(1); a shed answer must never itself time out,
     so the request deadline's cap on [max_seconds] is lifted back to
     the configured ceiling. *)
  let budget =
    { budget with Solver.max_seconds = t.config.budget.Solver.max_seconds }
  in
  match
    Solver.solve ~obs:t.obs ~clock:t.clock ~budget
      ~tiers:[ Solver.Mean_doubling ] ~exact:s.Protocol.exact ~seed model d
  with
  | Ok sol ->
      Ok
        {
          Protocol.dist_name = d.Dist.name;
          tier = Solver.tier_name sol.Solver.diagnostics.Solver.chosen;
          degraded = true;
          head = head_prefix ~count:s.Protocol.count sol.Solver.head;
          cost = sol.Solver.cost;
          normalized = sol.Solver.normalized;
        }
  | Error e -> Error (Protocol.error_of_solver e)

(* Persist a freshly solved entry; a journal that cannot be written
   degrades to serving without persistence, never to dying. *)
let journal_put t key solved =
  match t.journal with
  | None -> ()
  | Some j -> (
      try
        Journal.append j { Journal.key; solved };
        M.incr t.m_j_appended;
        if Journal.should_compact j ~live:(Cache.size t.cache) then begin
          let live =
            List.map
              (fun (key, solved) -> { Journal.key; solved })
              (Cache.bindings_lru t.cache)
          in
          Journal.compact j ~live;
          M.incr t.m_j_compactions
        end
      with Sys_error _ ->
        t.requests.journal_errors <- t.requests.journal_errors + 1;
        M.incr t.m_j_errors)

let handle_solve t ~id (s : Protocol.solve) =
  let hpc = match s.Protocol.model with Protocol.Hpc -> true | _ -> false in
  let result =
    match resolve_dist t ~hpc s.Protocol.dist with
    | Error e -> Error e
    | Ok (d, family, params) -> (
        match resolve_model s.Protocol.model with
        | Error e -> Error e
        | Ok model ->
            let budget = budget_of t s.Protocol.budget in
            (* The request deadline caps every solve's time budget:
               clients may ask for more, the watchdog wins. *)
            let budget =
              match t.config.deadline with
              | None -> budget
              | Some d ->
                  {
                    budget with
                    Solver.max_seconds = Float.min budget.Solver.max_seconds d;
                  }
            in
            let seed = Option.value s.Protocol.seed ~default:t.config.seed in
            let key =
              Quantize.key ~grid:t.config.grid ~family ~params ~model
                ~strategy:s.Protocol.strategy ~m:budget.Solver.bf_candidates
                ~n:budget.Solver.mc_samples ~disc_n:budget.Solver.dp_points
                ~max_evaluations:budget.Solver.max_evaluations ~seed
                ~count:s.Protocol.count ~exact:s.Protocol.exact
            in
            Trace.annotate t.obs [ ("key", Trace.Str key) ];
            let answer =
              match Cache.find t.cache key with
              | Some solved ->
                  M.incr t.m_hits;
                  Trace.annotate t.obs [ ("cached", Trace.Bool true) ];
                  Ok (true, key, solved)
              | None
                when t.shedding
                     && Option.is_some
                          (Resolve.tiers_of_strategy s.Protocol.strategy) -> (
                  M.incr t.m_misses;
                  (* Brand the shed decision with the live latency
                     picture that justified it. *)
                  Trace.annotate t.obs
                    [
                      ("cached", Trace.Bool false);
                      ("shed", Trace.Bool true);
                      ("pressure", Trace.Int t.pressure);
                      ("p99_window", Trace.Num (window_p99 t));
                    ];
                  match solve_shed t s model d ~budget ~seed with
                  | Error e -> Error e
                  | Ok solved ->
                      t.requests.shed <- t.requests.shed + 1;
                      M.incr t.m_shed;
                      Ok (false, key, solved))
              | None -> (
                  M.incr t.m_misses;
                  Trace.annotate t.obs [ ("cached", Trace.Bool false) ];
                  match solve_cold t s model d ~budget ~seed with
                  | Error e -> Error e
                  | Ok solved ->
                      M.incr t.m_cold;
                      (match Cache.put t.cache key solved with
                      | Cache.Evicted _ -> M.incr t.m_evictions
                      | Cache.Inserted | Cache.Replaced -> ());
                      M.set t.m_size (float_of_int (Cache.size t.cache));
                      journal_put t key solved;
                      Ok (false, key, solved))
            in
            answer)
  in
  match result with
  | Ok (cached, key, solved) ->
      Trace.annotate t.obs
        [ ("ok", Trace.Bool true); ("tier", Trace.Str solved.Protocol.tier) ];
      (Protocol.solve_response ~id ~cached ~key solved, false)
  | Error e ->
      t.requests.errors <- t.requests.errors + 1;
      M.incr t.m_errors;
      Trace.annotate t.obs
        [ ("ok", Trace.Bool false); ("code", Trace.Int e.Protocol.code) ];
      (Protocol.error_response ~id e, false)

(* ---------------------------- other kinds -------------------------- *)

let stats_json t =
  let c = t.cache in
  J.Obj
    [
      ("uptime_seconds", J.Num (t.clock () -. t.start));
      ( "requests",
        J.Obj
          [
            ("solve", J.Num (float_of_int t.requests.solve));
            ("fit", J.Num (float_of_int t.requests.fit));
            ("stats", J.Num (float_of_int t.requests.stats));
            ("metrics", J.Num (float_of_int t.requests.metrics));
            ("shutdown", J.Num (float_of_int t.requests.shutdown));
            ("errors", J.Num (float_of_int t.requests.errors));
          ] );
      ( "cache",
        J.Obj
          [
            ("size", J.Num (float_of_int (Cache.size c)));
            ("capacity", J.Num (float_of_int (Cache.capacity c)));
            ("hits", J.Num (float_of_int (Cache.hits c)));
            ("misses", J.Num (float_of_int (Cache.misses c)));
            ("evictions", J.Num (float_of_int (Cache.evictions c)));
            ("hit_rate", J.Num (Cache.hit_rate c));
          ] );
      ("tenants", J.Num (float_of_int (Tenants.count t.tenants)));
      ( "journal",
        match t.journal with
        | None -> J.Obj [ ("enabled", J.Bool false) ]
        | Some j ->
            let s = Journal.stats j in
            J.Obj
              [
                ("enabled", J.Bool true);
                ("appended", J.Num (float_of_int s.Journal.appended));
                ("recovered", J.Num (float_of_int s.Journal.recovered_records));
                ( "skipped_corrupt",
                  J.Num (float_of_int s.Journal.skipped_corrupt) );
                ("compactions", J.Num (float_of_int s.Journal.compactions));
                ("errors", J.Num (float_of_int t.requests.journal_errors));
              ] );
      ( "overload",
        J.Obj
          [
            ( "state",
              J.Str
                (if t.shedding then "shedding"
                 else if t.pressure > 0 then "pressure"
                 else "ok") );
            ("shedding", J.Bool t.shedding);
            ("pressure", J.Num (float_of_int t.pressure));
            ("shed_responses", J.Num (float_of_int t.requests.shed));
            ( "deadline_exceeded",
              J.Num (float_of_int t.requests.deadline_exceeded) );
            ("p99_window_seconds", J.Num (window_p99 t));
          ] );
      ("metrics", M.to_json (M.snapshot t.registry));
    ]

let handle_fit t ~id ~tenant samples =
  match Tenants.fit t.tenants ~id:tenant samples with
  | Ok fit ->
      Trace.annotate t.obs
        [ ("ok", Trace.Bool true); ("tenant", Trace.Str tenant) ];
      (Protocol.fit_response ~id ~tenant fit, false)
  | Error msg ->
      t.requests.errors <- t.requests.errors + 1;
      M.incr t.m_errors;
      let e = { Protocol.code = 7; label = "invalid-parameter"; detail = msg } in
      Trace.annotate t.obs
        [ ("ok", Trace.Bool false); ("code", Trace.Int e.Protocol.code) ];
      (Protocol.error_response ~id e, false)

let kind_name = function
  | Protocol.Solve _ -> "solve"
  | Protocol.Fit _ -> "fit"
  | Protocol.Stats -> "stats"
  | Protocol.Metrics -> "metrics"
  | Protocol.Shutdown -> "shutdown"

let count_request t = function
  | Protocol.Solve _ -> t.requests.solve <- t.requests.solve + 1
  | Protocol.Fit _ -> t.requests.fit <- t.requests.fit + 1
  | Protocol.Stats -> t.requests.stats <- t.requests.stats + 1
  | Protocol.Metrics -> t.requests.metrics <- t.requests.metrics + 1
  | Protocol.Shutdown -> t.requests.shutdown <- t.requests.shutdown + 1

let request_counter t req =
  M.counter t.registry ("service.requests." ^ kind_name req)

let dispatch t ~id req =
  match req with
  | Protocol.Solve s -> handle_solve t ~id s
  | Protocol.Fit { tenant; samples } -> handle_fit t ~id ~tenant samples
  | Protocol.Stats ->
      Trace.annotate t.obs [ ("ok", Trace.Bool true) ];
      (Protocol.stats_response ~id (stats_json t), false)
  | Protocol.Metrics ->
      Trace.annotate t.obs [ ("ok", Trace.Bool true) ];
      ( Protocol.metrics_response ~id
          ~exposition:(M.to_prometheus (M.snapshot t.registry)),
        false )
  | Protocol.Shutdown ->
      Trace.annotate t.obs [ ("ok", Trace.Bool true) ];
      (Protocol.shutdown_response ~id, true)

(* Track the pressure state machine after each request: requests that
   run close to the deadline build pressure, fast ones drain it.
   Pressure is capped so a long overload episode cannot dig a hole
   that takes arbitrarily many fast requests to climb out of. *)
let update_pressure t ~elapsed =
  match t.config.deadline with
  | None -> ()
  | Some d ->
      if elapsed > d then begin
        t.requests.deadline_exceeded <- t.requests.deadline_exceeded + 1;
        M.incr t.m_deadline_exceeded
      end;
      if elapsed > 0.8 *. d then begin
        t.pressure <- min (t.pressure + 1) (2 * t.config.shed_threshold);
        if t.pressure >= t.config.shed_threshold then t.shedding <- true
      end
      else begin
        t.pressure <- max 0 (t.pressure - 1);
        if t.pressure = 0 then t.shedding <- false
      end

(* Echo the client's correlation id into the request span, typed when
   the id is a scalar so trace tooling can filter on it directly. *)
let request_id_attrs = function
  | None -> []
  | Some id ->
      let v =
        match id with
        | J.Num n when Float.is_integer n && Float.abs n < 1e15 ->
            Trace.Int (int_of_float n)
        | J.Num n -> Trace.Num n
        | J.Str s -> Trace.Str s
        | other -> Trace.Str (J.to_string ~indent:false other)
      in
      [ ("request_id", v) ]

let handle_line t line =
  if String.length line > t.config.max_line_bytes then begin
    (* Refuse before parsing: an attacker (or a bug) streaming an
       unbounded line must not balloon the parser. No id is echoed —
       extracting one would mean parsing the oversized payload. *)
    t.requests.errors <- t.requests.errors + 1;
    M.incr t.m_errors;
    let e =
      Protocol.usage_error
        (Printf.sprintf "request line of %d bytes exceeds the %d-byte limit"
           (String.length line) t.config.max_line_bytes)
    in
    (Some (Protocol.error_response ~id:None e), false)
  end
  else if String.trim line = "" then (None, false)
  else begin
    let t0 = t.clock () in
    let response, stop =
      match Protocol.parse_request line with
      | Error (id, e) ->
          t.requests.errors <- t.requests.errors + 1;
          M.incr t.m_errors;
          Trace.with_span t.obs
            ~attrs:(("kind", Trace.Str "invalid") :: request_id_attrs id)
            "service.request"
            (fun () ->
              Trace.annotate t.obs
                [ ("ok", Trace.Bool false); ("code", Trace.Int e.Protocol.code) ];
              (Protocol.error_response ~id e, false))
      | Ok (id, req) ->
          count_request t req;
          M.incr (request_counter t req);
          Trace.with_span t.obs
            ~attrs:(("kind", Trace.Str (kind_name req)) :: request_id_attrs id)
            "service.request"
            (fun () -> dispatch t ~id req)
    in
    (* Clamp: a clock stepped backwards mid-request must not feed a
       negative duration into the histogram or the pressure logic. *)
    let elapsed = Float.max 0.0 (t.clock () -. t0) in
    M.observe t.m_latency elapsed;
    record_latency t elapsed;
    update_pressure t ~elapsed;
    (Some response, stop)
  end

let serve t ~recv ~send =
  let rec loop () =
    match recv () with
    | None -> ()
    | Some line ->
        let response, stop = handle_line t line in
        (match response with Some r -> send r | None -> ());
        if not stop then loop ()
  in
  loop ()
