(* Crash-safe persistence for the solved-strategy cache.

   The format is an append-only sequence of self-describing record
   lines:

     SJ1 <crc32:8 hex> <len:decimal> <payload>\n

   where <payload> is the compact JSON {"key": K, "solved": {...}}
   and <len> is its exact byte length. Every field a recovery needs to
   judge a record — magic, checksum, declared length — precedes the
   payload, so a torn tail (partial write at the moment of a crash)
   can never masquerade as a shorter valid record: it fails the length
   check or the checksum and is skipped and counted, never trusted and
   never fatal. *)

module J = Stochobs.Json

type entry = { key : string; solved : Protocol.solved }

(* ------------------------------ crc32 ------------------------------ *)

(* Standard reflected CRC-32 (IEEE 802.3 polynomial), table-driven.
   Detects every single-bit flip and all burst errors up to 32 bits —
   far beyond what a torn page write produces. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let crc32_hex s = Printf.sprintf "%08lx" (crc32 s)

(* ----------------------------- encoding ---------------------------- *)

let magic = "SJ1"

let encode_payload e =
  J.to_string ~indent:false
    (J.Obj
       [ ("key", J.Str e.key); ("solved", Protocol.solved_to_json e.solved) ])

let encode_record e =
  let payload = encode_payload e in
  Printf.sprintf "%s %s %d %s\n" magic (crc32_hex payload)
    (String.length payload) payload

let decode_payload payload =
  match J.of_string payload with
  | Error msg -> Error ("unparseable payload: " ^ msg)
  | Ok j -> (
      match J.member "key" j with
      | Some (J.Str key) -> (
          match J.member "solved" j with
          | Some solved_json -> (
              match Protocol.solved_of_json solved_json with
              | Ok solved -> Ok { key; solved }
              | Error msg -> Error msg)
          | None -> Error "record lacks \"solved\"")
      | _ -> Error "record lacks \"key\"")

(* Decode one line (without its terminating newline). The shape is
   validated outside-in: magic, then the checksum and declared length
   — both fixed-position — and only then the JSON payload. *)
let decode_line line =
  let fail msg = Error msg in
  match String.index_opt line ' ' with
  | None -> fail "no field separator"
  | Some sp1 ->
      if String.sub line 0 sp1 <> magic then fail "bad magic"
      else (
        match String.index_from_opt line (sp1 + 1) ' ' with
        | None -> fail "missing checksum field"
        | Some sp2 -> (
            let crc_text = String.sub line (sp1 + 1) (sp2 - sp1 - 1) in
            match String.index_from_opt line (sp2 + 1) ' ' with
            | None -> fail "missing length field"
            | Some sp3 -> (
                let len_text = String.sub line (sp2 + 1) (sp3 - sp2 - 1) in
                match int_of_string_opt len_text with
                | None -> fail "unreadable length"
                | Some len ->
                    let have = String.length line - sp3 - 1 in
                    if have <> len then
                      fail
                        (Printf.sprintf "torn record: %d of %d payload bytes"
                           have len)
                    else
                      let payload = String.sub line (sp3 + 1) len in
                      if not (String.equal (crc32_hex payload) crc_text) then
                        fail "checksum mismatch"
                      else decode_payload payload)))

(* ----------------------------- recovery ---------------------------- *)

type recovery = {
  entries : entry list;
  recovered : int;
  skipped : int;
  bytes : int;
}

let empty_recovery = { entries = []; recovered = 0; skipped = 0; bytes = 0 }

let recover path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> empty_recovery
  | content ->
      let bytes = String.length content in
      (* Split on newlines by hand so a final unterminated chunk — the
         classic torn tail — is still presented to the decoder: if it
         happens to be a complete record that merely lost its newline,
         it is recovered; otherwise it is counted corrupt. *)
      let chunks = String.split_on_char '\n' content in
      let entries, recovered, skipped =
        List.fold_left
          (fun (entries, recovered, skipped) chunk ->
            if String.length chunk = 0 then (entries, recovered, skipped)
            else
              match decode_line chunk with
              | Ok e -> (e :: entries, recovered + 1, skipped)
              | Error _ -> (entries, recovered, skipped + 1))
          ([], 0, 0) chunks
      in
      { entries = List.rev entries; recovered; skipped; bytes }

(* ------------------------------ handle ----------------------------- *)

type stats = {
  appended : int;
  recovered_records : int;
  skipped_corrupt : int;
  compactions : int;
}

type t = {
  path : string;
  threshold : int;
  mutable oc : out_channel;
  mutable appended : int;
  mutable since_compact : int;
  mutable compactions : int;
  recovery : recovery;
}

let default_compact_threshold = 256

let open_ ?(compact_threshold = default_compact_threshold) path =
  if compact_threshold < 1 then
    invalid_arg
      (Printf.sprintf "Journal.open_: compact threshold must be >= 1, got %d"
         compact_threshold);
  let recovery = recover path in
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  {
    path;
    threshold = compact_threshold;
    oc;
    appended = 0;
    since_compact = 0;
    compactions = 0;
    recovery;
  }

let recovered t = t.recovery.entries
let path t = t.path

let stats t =
  {
    appended = t.appended;
    recovered_records = t.recovery.recovered;
    skipped_corrupt = t.recovery.skipped;
    compactions = t.compactions;
  }

let append t e =
  output_string t.oc (encode_record e);
  (* One flush per record: the OS then owns the bytes, so a SIGKILL
     loses at most the record being written — exactly the torn tail
     recovery tolerates. *)
  flush t.oc;
  t.appended <- t.appended + 1;
  t.since_compact <- t.since_compact + 1

let flush t = flush t.oc

(* Compaction pays off only when the journal carries dead weight:
   superseded duplicates and entries the LRU has already evicted. Both
   show up as appended records in excess of the live set. *)
let should_compact t ~live =
  t.since_compact >= t.threshold && t.since_compact >= 2 * live

let compact t ~live =
  let tmp = t.path ^ ".compact" in
  let oc = open_out_gen [ Open_trunc; Open_creat; Open_wronly; Open_binary ] 0o644 tmp in
  (match
     List.iter (fun e -> output_string oc (encode_record e)) live;
     Stdlib.flush oc
   with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      raise e);
  (* The snapshot is complete on disk before the rename makes it the
     journal; a crash in between leaves the old journal untouched. *)
  close_out t.oc;
  Sys.rename tmp t.path;
  t.oc <- open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 t.path;
  t.since_compact <- 0;
  t.compactions <- t.compactions + 1

let close t = close_out t.oc
