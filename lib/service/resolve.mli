(** Shared request assembly: names → distributions, cost models,
    strategies, cascade tiers.

    This is the single place where a user-supplied name (from a CLI
    flag {e or} a daemon JSONL request) becomes a live object, so the
    two surfaces cannot drift: [bin/stochastic_cli.ml] maps the [Error]
    branch to its usage exit code (2), the daemon maps it to a
    structured code-2 error response. Everything is [Result]-typed —
    nothing here prints or exits. *)

val dist :
  ?hpc:bool ->
  ?trace:string ->
  ?fit:bool ->
  string ->
  (Distributions.Dist.t, string) result
(** [dist name] resolves a distribution name: the Table 1 registry
    (case-insensitive), the neuroscience traces [vbmqa]/[fmriqa]
    ([hpc], default false, switches them to hours to match the NeuroHPC
    cost model), or the off-registry [frechetheavy]. When [trace] is
    given, the CSV at that path is loaded instead and either
    interpolated directly or, with [fit] (default false), reduced to
    its LogNormal MLE — the paper's Fig. 1 pipeline. A missing or
    malformed CSV is an [Error], not an exception. *)

val model :
  hpc:bool ->
  alpha:float ->
  beta:float ->
  gamma:float ->
  (Stochastic_core.Cost_model.t, string) result
(** [model ~hpc ~alpha ~beta ~gamma] is {!Stochastic_core.Cost_model.neuro_hpc}
    when [hpc], otherwise the affine model with the given coefficients;
    coefficient-domain violations ([alpha <= 0], negatives) come back
    as [Error]. *)

val strategy :
  m:int ->
  n:int ->
  disc_n:int ->
  seed:int ->
  string ->
  (Stochastic_core.Strategy.t, string) result
(** [strategy name] resolves the seven paper strategy names exactly as
    the CLI always has: [brute-force]/[bruteforce]/[bf] (grid [m],
    Monte-Carlo [n], [seed]), [mean-by-mean], [mean-stdev],
    [mean-doubling], [median-by-median], [equal-time] and
    [equal-probability]/[equal-prob] (discretization size [disc_n]). *)

val tiers_of_string :
  string -> (Robust.Solver.tier list, string) result
(** [tiers_of_string "bf,dp"] parses the comma-separated cascade
    specification of the CLI's [--tiers] flag: each element is one of
    [brute-force]/[bruteforce]/[bf], [dp]/[equal-probability]/
    [equal-prob], [mean-doubling]/[doubling]. *)

val tiers_of_strategy : string -> Robust.Solver.tier list option
(** How the daemon routes a [strategy] request field through the
    robust cascade: ["cascade"] (the daemon default) is the full
    fallback chain {!Robust.Solver.all_tiers}; a single tier name
    (same spellings as {!tiers_of_string}) restricts the cascade to
    exactly that tier, so the caller gets that solver or a typed
    error. [None] means the name is not cascade-addressable — the
    daemon then falls back to {!strategy} and direct evaluation. *)

val known_strategies : string list
(** Canonical strategy names accepted by {!strategy}, for error
    messages. *)
