(** Numerical self-check for any {!Distributions.Dist.t}.

    Fitted or user-supplied distributions with inconsistent
    pdf/cdf/quantile triples silently poison every solver downstream:
    the Eq. (11) recurrence divides by the density, BRUTE-FORCE ranks
    candidates by Monte-Carlo draws from the quantile, and the
    Theorem 5 DP discretizes through the cdf. [run] probes all of
    these for mutual consistency on a quantile-spaced grid and returns
    a structured report (never a bare bool, never an exception): each
    violated invariant becomes an {!issue} carrying a severity and a
    human-readable detail. A probe that itself raises is converted
    into a [Fatal] issue.

    Checks performed:
    {ul
    {- support well-formed ([0 <= a < b]);}
    {- quantile finite, monotone, inside the support;}
    {- cdf within [[0, 1]], nondecreasing, [~0] at the lower bound;}
    {- quantile/cdf round-trip: [F (Q p) >= p] within tolerance
       (a large excess [F (Q p) - p] flags an atom and downgrades the
       density checks to warnings);}
    {- pdf nonnegative and finite;}
    {- pdf integrates to [~1] over the support
       ({!Numerics.Integrate.gauss_kronrod} between quantile knots, so
       near-point-mass spikes cannot slip between nodes);}
    {- mean finite, inside the support, consistent with the integral
       of [t f(t)] (partial-mean bound for heavy tails);}
    {- variance not NaN and nonnegative ([infinity] is a warning: the
       Theorem 2 bounds become unavailable but the DP tiers still
       work);}
    {- [conditional_mean tau] finite and [>= tau];}
    {- sampler produces finite values inside the support.}} *)

type severity =
  | Warning  (** Degrades solver tiers but does not preclude solving. *)
  | Fatal  (** The distribution cannot be solved as supplied. *)

type issue = { id : string; severity : severity; detail : string }
(** One violated invariant: [id] names the check (e.g.
    ["quantile-cdf-roundtrip"]), [detail] localises the violation. *)

type report = {
  dist_name : string;
  probes : int;  (** Number of grid probe points examined. *)
  issues : issue list;  (** Violations, in discovery order. *)
  elapsed : float;  (** Wall-clock seconds spent checking. *)
}

val run : ?grid:int -> ?tol:float -> ?mass_tol:float -> Distributions.Dist.t -> report
(** [run d] probes [d] on [grid] (default [33]) quantile-spaced interior
    points plus fixed near-tail probabilities. [tol] (default [1e-6])
    bounds hard numerical identities (monotonicity slack, round-trip
    deficit); [mass_tol] (default [5e-3]) bounds the pdf/cdf mass
    discrepancies, which go through quadrature. Never raises. *)

val is_valid : report -> bool
(** [is_valid r] is [true] iff [r] contains no [Fatal] issue. *)

val fatal : report -> issue list
(** The [Fatal] issues of the report. *)

val warnings : report -> issue list
(** The [Warning] issues of the report. *)

val summary : report -> string
(** One-line summary, e.g.
    ["LogNormal(3, 0.5): ok (36 probes, 0 warnings)"] or
    ["Frechet(1.5, 1): 1 fatal, 2 warnings"]. *)

val pp : Format.formatter -> report -> unit
(** Multi-line report: the summary followed by one line per issue. *)
