(** Result-typed, budgeted front-end over every STOCHASTIC solver.

    The raw solvers are fragile by construction: the Eq. (11)
    recurrence is only monotone on the optimal trajectory, the
    Theorem 2 bounds need a finite second moment, the Theorem 5 DP
    needs a usable quantile, and all of them assume a self-consistent
    distribution. This module wraps the whole solve path so that for
    {e any} input it either returns a provably sane sequence (finite,
    strictly increasing, covering the support, with finite expected
    cost) or a typed, actionable error — in bounded time.

    The {b fallback cascade} tries, in order:
    + {!Brute_force} — recurrence-driven grid search (Sect. 4.1),
      the paper's best performer;
    + {!Dp_equal_probability} — the Theorem 5 DP on an
      equal-probability discretization (Sect. 4.2), which needs no
      density and no moment bounds;
    + {!Mean_doubling} — the Sect. 4.3 heuristic, which needs only a
      finite positive mean.

    The diagnostics record which tier produced the answer and why each
    earlier tier was rejected. *)

type tier = Brute_force | Dp_equal_probability | Mean_doubling

val tier_name : tier -> string
(** ["recurrence-brute-force"], ["equal-probability-dp"],
    ["mean-doubling"]. *)

val all_tiers : tier list
(** The full cascade, in order. *)

type budget = {
  bf_candidates : int;  (** Brute-force [t1] grid size (paper: 5000). *)
  mc_samples : int;  (** Common-random-number evaluation samples. *)
  dp_points : int;  (** Discretization size for the DP tier. *)
  max_evaluations : int;
      (** Total candidate/sequence evaluations across all tiers. *)
  max_seconds : float;  (** Wall-clock guard over the whole solve. *)
}

val default_budget : budget
(** Paper-scale grids ([5000]/[1000]/[1000]) under [2e6] evaluations
    and [60] seconds. *)

val quick_budget : budget
(** Reduced grids ([300]/[200]/[200]) under [2e5] evaluations and [5]
    seconds — for fuzzing, smoke tests and interactive use. *)

type error =
  | Invalid_distribution of Dist_check.report
      (** Input validation found fatal inconsistencies; the report
          lists them. *)
  | Invalid_parameter of { name : string; detail : string }
      (** A solver parameter (budget field, tier list) is unusable. *)
  | Non_convergent of { stage : string; detail : string }
      (** A stage ran within budget but produced no usable sequence;
          [stage] names it (e.g. ["brute-force"], ["cascade"]). *)
  | Budget_exhausted of { stage : string; evaluations : int; elapsed : float }
      (** The evaluation or wall-clock budget ran out in [stage]
          before any tier produced an answer. *)

(** The failure taxonomy: every way a solve can fail, typed. *)

val error_to_string : error -> string
(** One-line rendering of the error (reports are summarised). *)

val pp_error : Format.formatter -> error -> unit
(** Multi-line rendering ([Invalid_distribution] expands the full
    validation report). *)

val exit_code : error -> int
(** Stable process exit code for the CLI: [4] invalid distribution,
    [5] non-convergent, [6] budget exhausted, [7] invalid parameter.
    ([0] success, [2] usage error and [3] strict-mode degradation are
    assigned by the CLI itself.) *)

type rejection = { tier : tier; reason : error }
(** Why a cascade tier was passed over. *)

type diagnostics = {
  chosen : tier;  (** The tier that produced the answer. *)
  rejected : rejection list;
      (** Earlier tiers and why they were rejected, in cascade order. *)
  validation : Dist_check.report option;
      (** The input self-check ([None] when validation was skipped). *)
  evaluations : int;  (** Candidate/sequence evaluations consumed. *)
  elapsed : float;  (** Wall-clock seconds for the whole solve. *)
}

type solution = {
  sequence : Stochastic_core.Sequence.t;
      (** The sanitized reservation sequence. *)
  head : float array;
      (** The materialised, vetted prefix: finite, strictly
          increasing, covering the support up to the [1 - 1e-9]
          quantile (or ending exactly at [b]). *)
  cost : float;  (** Exact (Eq. (4)) expected cost — finite. *)
  normalized : float;  (** [cost / E^o]. *)
  diagnostics : diagnostics;
}

val degraded : solution -> bool
(** [degraded s] is [true] when at least one cascade tier was rejected
    before the answer was found — i.e. the result did not come from
    the preferred solver. *)

val solve :
  ?obs:Stochobs.Trace.sink ->
  ?clock:Stochobs.Clock.t ->
  ?budget:budget ->
  ?tiers:tier list ->
  ?validate:bool ->
  ?exact:bool ->
  ?seed:int ->
  Stochastic_core.Cost_model.t ->
  Distributions.Dist.t ->
  (solution, error) result
(** [solve m d] runs the validated, budgeted cascade. [obs] (default
    {!Stochobs.Trace.null}) receives a ["robust.solver.solve"] span
    with one ["robust.solver.tier"] child per executed tier, each
    closing with an [outcome] attribute ([accepted]/[rejected] plus
    the typed reason); [clock] (default {!Stochobs.Clock.cpu}) is the
    time source the [max_seconds] budget guard reads — inject the same
    {!Stochobs.Clock.fake} that drives a trace sink and the cascade's
    control flow (hence the trace's shape) no longer depends on
    machine load, which is what makes same-seed fake-clock runs
    bit-for-bit reproducible; [tiers] (default {!all_tiers}) restricts
    or reorders the cascade; [validate] (default [true]) runs
    {!Dist_check.run} first and refuses fatally inconsistent inputs;
    [exact] (default [false]) makes the brute-force tier rank
    candidates with the deterministic Eq. (4) series instead of
    Monte-Carlo; [seed] (default [42]) drives the Monte-Carlo
    evaluator. Never raises; never hangs (the wall-clock guard is
    checked between candidates, and every stage is
    iteration-bounded). *)

val pp_diagnostics : Format.formatter -> diagnostics -> unit
(** Human-readable cascade trace: validation summary, chosen tier,
    rejected tiers with reasons, budget consumption. *)

(** {2 Two-tier spot solving}

    Revocation-aware tier assignment on top of the cascade: solve the
    base sequence as usual, then choose on-demand vs spot per
    reservation under a {!Stochastic_core.Spot_cost.regime}. *)

type spot_solution = {
  base : solution;  (** The underlying cascade solution. *)
  regime : Stochastic_core.Spot_cost.regime;  (** The validated regime. *)
  plan : Stochastic_core.Spot_cost.plan;  (** Tier-annotated head. *)
  spot_cost : float;  (** Expected cost of [plan] under the regime. *)
  on_demand_cost : float;
      (** The all-on-demand plan under the same evaluator; [spot_cost
          <= on_demand_cost] always (graceful degradation). *)
  savings : float;  (** [1 - spot_cost / on_demand_cost]. *)
  assignment_evaluations : int;  (** Candidate plans scored. *)
}

val spot_regime :
  ?recovery:Stochastic_core.Spot_cost.recovery ->
  price_ratio:float ->
  revocation_rate:float ->
  unit ->
  (Stochastic_core.Spot_cost.regime, error) result
(** Typed regime validation: [price_ratio] outside [(0, 1]], a
    negative or non-finite [revocation_rate], or a bad [Snapshot]
    field ([checkpoint_period <= 0], negative costs, non-finite
    values) each return [Invalid_parameter] naming the field. *)

val solve_spot :
  ?obs:Stochobs.Trace.sink ->
  ?clock:Stochobs.Clock.t ->
  ?budget:budget ->
  ?tiers:tier list ->
  ?validate:bool ->
  ?exact:bool ->
  ?seed:int ->
  ?recovery:Stochastic_core.Spot_cost.recovery ->
  ?disc_n:int ->
  price_ratio:float ->
  revocation_rate:float ->
  Stochastic_core.Cost_model.t ->
  Distributions.Dist.t ->
  (spot_solution, error) result
(** [solve_spot ~price_ratio ~revocation_rate m d] validates the spot
    regime ({!spot_regime}), runs the base cascade ({!solve}, same
    optional arguments), then assigns tiers over the vetted head with
    {!Stochastic_core.Spot_plan.assign} ([disc_n], default [500],
    sizes the assignment evaluator's discretization; [recovery]
    defaults to [Restart]). Emits a ["robust.solver.spot"] span with
    [spot_slots]/[savings] attributes and bumps the
    [robust.solver.spot.*] counters ([all_on_demand] counts solves
    that degraded to zero spot reservations). Never raises. *)
