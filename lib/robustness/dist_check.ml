module Dist = Distributions.Dist

type severity = Warning | Fatal
type issue = { id : string; severity : severity; detail : string }

type report = {
  dist_name : string;
  probes : int;
  issues : issue list;
  elapsed : float;
}

(* Fixed near-tail probabilities bracketing the interior grid: the
   solvers care about exactly these regions (the recurrence runs to the
   1 - 1e-9 quantile, the DP truncates at 1 - 1e-7). *)
let low_tails = [ 1e-9; 1e-6; 1e-4; 1e-2 ]
let high_tails = [ 1.0 -. 1e-2; 1.0 -. 1e-4; 1.0 -. 1e-6 ]

let run ?(grid = 33) ?(tol = 1e-6) ?(mass_tol = 5e-3) d =
  let t0 = Sys.time () in
  let issues = ref [] in
  let add id severity detail = issues := { id; severity; detail } :: !issues in
  (* Every probe is guarded: a raising pdf/cdf/quantile is itself a
     fatal finding, never an escaping exception. *)
  let guard id default f =
    try f ()
    with exn ->
      add id Fatal (Printf.sprintf "raised %s" (Printexc.to_string exn));
      default
  in
  let a = Dist.lower d and b = Dist.upper d in
  let bounded = Dist.is_bounded d in
  if (not (Float.is_finite a)) || a < 0.0 || not (b > a) then
    add "support" Fatal
      (Printf.sprintf "support [%g, %g] violates 0 <= a < b" a b);
  let interior =
    List.init grid (fun i -> float_of_int (i + 1) /. float_of_int (grid + 1))
  in
  let ps =
    Array.of_list (List.sort_uniq compare (low_tails @ interior @ high_tails))
  in
  let np = Array.length ps in
  let qs = Array.map (fun p -> guard "quantile" nan (fun () -> d.Dist.quantile p)) ps in
  (* --- quantile: finite, monotone, inside the support -------------- *)
  let quantiles_usable = ref true in
  Array.iteri
    (fun i q ->
      let p = ps.(i) in
      if not (Float.is_finite q) then begin
        quantiles_usable := false;
        add "quantile-finite" Fatal
          (Printf.sprintf "Q(%g) = %g is not finite" p q)
      end
      else begin
        let scale = Float.max 1.0 (Float.abs q) in
        if q < a -. (tol *. scale) then
          add "quantile-support" Fatal
            (Printf.sprintf "Q(%g) = %g below the lower bound %g" p q a);
        if bounded && q > b +. (tol *. scale) then
          add "quantile-support" Fatal
            (Printf.sprintf "Q(%g) = %g above the upper bound %g" p q b);
        if i > 0 && Float.is_finite qs.(i - 1) then
          if q < qs.(i - 1) -. (tol *. Float.max 1.0 (Float.abs qs.(i - 1)))
          then begin
            quantiles_usable := false;
            add "quantile-monotone" Fatal
              (Printf.sprintf "Q(%g) = %g < Q(%g) = %g" p q ps.(i - 1)
                 qs.(i - 1))
          end
      end)
    qs;
  (* --- cdf: range, monotone, boundary ------------------------------ *)
  let cdf_at t = guard "cdf" nan (fun () -> d.Dist.cdf t) in
  let cdf_monotone_ok = ref true in
  let prev_f = ref neg_infinity and prev_t = ref nan in
  Array.iter
    (fun t ->
      if Float.is_finite t then begin
        let f = cdf_at t in
        if Float.is_nan f then add "cdf-nan" Fatal (Printf.sprintf "F(%g) is NaN" t)
        else begin
          if f < -.tol || f > 1.0 +. tol then
            add "cdf-range" Fatal
              (Printf.sprintf "F(%g) = %g outside [0, 1]" t f);
          if f < !prev_f -. tol then begin
            cdf_monotone_ok := false;
            add "cdf-monotone" Fatal
              (Printf.sprintf "F(%g) = %g < F(%g) = %g" t f !prev_t !prev_f)
          end;
          prev_f := Float.max !prev_f f;
          prev_t := t
        end
      end)
    qs;
  ignore !cdf_monotone_ok;
  let f_at_a = cdf_at a in
  if Float.is_finite f_at_a && f_at_a > 1e-3 then
    add "cdf-lower-bound" Warning
      (Printf.sprintf "F(a) = F(%g) = %g (mass at the lower bound)" a f_at_a);
  (* --- quantile/cdf round-trip ------------------------------------- *)
  let atoms = ref false in
  Array.iteri
    (fun i q ->
      if Float.is_finite q then begin
        let p = ps.(i) in
        let r = cdf_at q in
        if Float.is_nan r then ()
        else if p -. r > Float.max (100.0 *. tol) 1e-4 then
          add "quantile-cdf-roundtrip" Fatal
            (Printf.sprintf "F(Q(%g)) = %g falls short of %g" p r p)
        else if r -. p > 0.05 then begin
          if not !atoms then
            add "atom" Warning
              (Printf.sprintf
                 "F(Q(%g)) = %g exceeds %g by %g: probability atom detected"
                 p r p (r -. p));
          atoms := true
        end
      end)
    qs;
  (* --- pdf: nonnegative, finite ------------------------------------ *)
  let pdf_at t = guard "pdf" nan (fun () -> d.Dist.pdf t) in
  let spiky = ref false in
  let pdf_probe t =
    let f = pdf_at t in
    if Float.is_nan f then add "pdf-nan" Fatal (Printf.sprintf "f(%g) is NaN" t)
    else if f < -.tol then
      add "pdf-negative" Fatal (Printf.sprintf "f(%g) = %g < 0" t f)
    (* stochlint: allow FLOAT_EQ — IEEE comparison to infinity is exact (density-spike probe) *)
    else if f = infinity then begin
      if not !spiky then
        add "pdf-not-finite" Warning
          (Printf.sprintf "f(%g) = inf (density spike)" t);
      spiky := true
    end
  in
  Array.iter (fun q -> if Float.is_finite q then pdf_probe q) qs;
  for i = 0 to np - 2 do
    if Float.is_finite qs.(i) && Float.is_finite qs.(i + 1) then
      pdf_probe (0.5 *. (qs.(i) +. qs.(i + 1)))
  done;
  (* --- pdf mass and mean consistency (quadrature) ------------------ *)
  (* Integrating between quantile knots gives every segment comparable
     probability mass, so a near-point-mass spike cannot slip between
     the nodes of a single wide panel. Skipped when atoms or infinite
     densities were detected (the pdf is not a density there). *)
  if !quantiles_usable && (not !atoms) && (not !spiky) && b > a then begin
    let knots =
      let lo = if bounded then a else qs.(0) in
      let hi = if bounded then b else qs.(np - 1) in
      let inner =
        Array.to_list qs |> List.filter (fun q -> q > lo && q < hi)
      in
      let all = lo :: inner @ [ hi ] in
      (* Merge (numerically) coincident knots. *)
      let rec dedupe = function
        | x :: y :: rest ->
            if y -. x <= Float.abs x *. 1e-12 then dedupe (x :: rest)
            else x :: dedupe (y :: rest)
        | rest -> rest
      in
      dedupe all
    in
    let mass = Numerics.Kahan.create () in
    let partial_mean = Numerics.Kahan.create () in
    let integr_ok = ref true in
    let nseg = float_of_int (max 1 (List.length knots - 1)) in
    (* Absolute quadrature tolerances scaled to the check's own
       tolerance and to the distribution's magnitude: an extreme-scale
       law (mean ~ 1e9) must not drive the adaptive rule to full depth
       chasing an irrelevant 1e-8 absolute target. *)
    let tol_mass = mass_tol /. (8.0 *. nseg) in
    let tol_pm =
      if Float.is_finite d.Dist.mean then
        1e-3 *. Float.max 1.0 (Float.abs d.Dist.mean) /. nseg
      else infinity
    in
    let rec over = function
      | u :: (v :: _ as rest) ->
          let seg =
            guard "pdf-integral" nan (fun () ->
                Numerics.Integrate.gauss_kronrod ~tol:tol_mass ~max_depth:16
                  d.Dist.pdf u v)
          in
          let seg_mean =
            (* stochlint: allow FLOAT_EQ — tol_pm = infinity is the skip-sentinel assigned a few lines up *)
            if tol_pm = infinity then 0.0
            else
              guard "pdf-integral" nan (fun () ->
                  Numerics.Integrate.gauss_kronrod ~tol:tol_pm ~max_depth:16
                    (fun t -> t *. d.Dist.pdf t)
                    u v)
          in
          if Float.is_finite seg && Float.is_finite seg_mean then begin
            Numerics.Kahan.add mass seg;
            Numerics.Kahan.add partial_mean seg_mean
          end
          else integr_ok := false;
          over rest
      | _ -> ()
    in
    over knots;
    if !integr_ok then begin
      (* The knot list is [lo :: inner @ [hi]] post-dedupe, so it is
         nonempty by construction — but that invariant lives two
         screens up, so match on the shape and report a typed Fatal
         instead of trusting [List.hd]/[List.nth] not to raise. *)
      match knots with
      | [] ->
          add "pdf-support" Fatal
            "empty quantile-knot list: pdf support cannot be bracketed"
      | t_lo :: rest ->
      let t_hi = List.fold_left (fun _ k -> k) t_lo rest in
      let df = cdf_at t_hi -. cdf_at t_lo in
      let mass = Numerics.Kahan.sum mass in
      if Float.is_finite df && Float.abs (mass -. df) > mass_tol then
        add "pdf-cdf-mass" Fatal
          (Printf.sprintf
             "integral of pdf over [%g, %g] is %g but F gives %g" t_lo t_hi
             mass df);
      if Float.abs (mass -. 1.0) > mass_tol +. 2e-2 then
        add "pdf-mass" Fatal
          (Printf.sprintf "pdf integrates to %g over [%g, %g], expected ~1"
             mass t_lo t_hi);
      (* Mean consistency: the interior partial mean must never exceed
         the claimed mean; for bounded support it must match it. *)
      let pm = Numerics.Kahan.sum partial_mean in
      let mean_scale = Float.max 1.0 (Float.abs d.Dist.mean) in
      if Float.is_finite d.Dist.mean then begin
        if pm > d.Dist.mean +. (0.01 *. mean_scale) then
          add "mean-consistency" Fatal
            (Printf.sprintf
               "integral of t*f(t) over [%g, %g] is %g, exceeding the \
                claimed mean %g"
               t_lo t_hi pm d.Dist.mean);
        if bounded && Float.abs (pm -. d.Dist.mean) > 0.01 *. mean_scale then
          add "mean-consistency" Fatal
            (Printf.sprintf "integral of t*f(t) gives mean %g, claimed %g" pm
               d.Dist.mean)
      end
    end
  end
  else if !atoms || !spiky then
    add "mass-check-skipped" Warning
      "atoms / density spikes present: quadrature mass checks skipped";
  (* --- moments ------------------------------------------------------ *)
  if Float.is_nan d.Dist.mean then add "mean" Fatal "mean is NaN"
  (* stochlint: allow FLOAT_EQ — IEEE comparison to infinity is exact (infinite-mean law) *)
  else if d.Dist.mean = infinity then
    add "mean" Fatal "mean is infinite: every strategy has infinite cost"
  else begin
    if d.Dist.mean < a -. (tol *. Float.max 1.0 a) then
      add "mean" Fatal
        (Printf.sprintf "mean %g below the lower bound %g" d.Dist.mean a);
    if bounded && d.Dist.mean > b +. (tol *. Float.max 1.0 b) then
      add "mean" Fatal
        (Printf.sprintf "mean %g above the upper bound %g" d.Dist.mean b)
  end;
  if Float.is_nan d.Dist.variance then add "variance" Fatal "variance is NaN"
  else if d.Dist.variance < -.tol then
    add "variance" Fatal (Printf.sprintf "variance %g < 0" d.Dist.variance)
  (* stochlint: allow FLOAT_EQ — IEEE comparison to infinity is exact (infinite-variance law) *)
  else if d.Dist.variance = infinity then
    add "variance" Warning
      "variance is infinite: Theorem 2 search bounds unavailable \
       (brute-force tier will be skipped for unbounded support)";
  (* --- conditional mean --------------------------------------------- *)
  List.iter
    (fun p ->
      let tau = guard "quantile" nan (fun () -> d.Dist.quantile p) in
      if Float.is_finite tau && tau < b then begin
        let cm = guard "conditional-mean" nan (fun () -> d.Dist.conditional_mean tau) in
        if Float.is_nan cm then
          add "conditional-mean" Fatal
            (Printf.sprintf "E(X | X > %g) is NaN" tau)
        (* stochlint: allow FLOAT_EQ — IEEE comparison to infinity is exact (conditional mean probe) *)
        else if cm = infinity then
          add "conditional-mean" Fatal
            (Printf.sprintf "E(X | X > %g) is infinite" tau)
        else if cm < tau -. (tol *. Float.max 1.0 (Float.abs tau)) then
          add "conditional-mean" Fatal
            (Printf.sprintf "E(X | X > %g) = %g < %g" tau cm tau)
      end)
    [ 0.25; 0.5; 0.9; 0.99 ];
  (* --- sampler ------------------------------------------------------ *)
  let rng = Randomness.Rng.create ~seed:9001 () in
  for _ = 1 to 32 do
    let x = guard "sample" nan (fun () -> d.Dist.sample rng) in
    if not (Float.is_finite x) then
      add "sample" Fatal (Printf.sprintf "sampler produced %g" x)
    else if
      x < a -. (tol *. Float.max 1.0 (Float.abs a))
      || (bounded && x > b +. (tol *. Float.max 1.0 b))
    then
      add "sample-support" Warning
        (Printf.sprintf "sampler produced %g outside [%g, %g]" x a b)
  done;
  (* Collapse duplicate issue ids so a violation on many probes reads
     as one finding (first occurrence kept, in discovery order). *)
  let seen = Hashtbl.create 16 in
  let issues =
    List.rev !issues
    |> List.filter (fun i ->
           let key = (i.id, i.severity) in
           if Hashtbl.mem seen key then false
           else begin
             Hashtbl.add seen key ();
             true
           end)
  in
  { dist_name = d.Dist.name; probes = np; issues; elapsed = Sys.time () -. t0 }

let fatal r = List.filter (fun i -> i.severity = Fatal) r.issues
let warnings r = List.filter (fun i -> i.severity = Warning) r.issues
let is_valid r = fatal r = []

let summary r =
  let nf = List.length (fatal r) and nw = List.length (warnings r) in
  if nf = 0 && nw = 0 then
    Printf.sprintf "%s: ok (%d probes)" r.dist_name r.probes
  else if nf = 0 then
    Printf.sprintf "%s: ok (%d probes, %d warning%s)" r.dist_name r.probes nw
      (if nw = 1 then "" else "s")
  else
    Printf.sprintf "%s: %d fatal, %d warning%s" r.dist_name nf nw
      (if nw = 1 then "" else "s")

let pp fmt r =
  Format.fprintf fmt "%s" (summary r);
  List.iter
    (fun i ->
      Format.fprintf fmt "@.  [%s] %s: %s"
        (match i.severity with Fatal -> "fatal" | Warning -> "warn")
        i.id i.detail)
    r.issues
