module Dist = Distributions.Dist
module Core_seq = Stochastic_core.Sequence
module Trace = Stochobs.Trace

(* Profiling probes on the global registry (one branch each while
   disabled). Evaluations are counted where the budget already charges
   them, so the metric always agrees with [diagnostics.evaluations]. *)
(* stochlint: allow GLOBAL_MUT_STATE — single-domain metrics probe; the multicore fan-out merges per-domain registries *)
let m_solves = Stochobs.Metrics.(counter default) "robust.solver.solves"

(* stochlint: allow GLOBAL_MUT_STATE — single-domain metrics probe; the multicore fan-out merges per-domain registries *)
let m_evaluations =
  Stochobs.Metrics.(counter default) "robust.solver.evaluations"

(* stochlint: allow GLOBAL_MUT_STATE — single-domain metrics probe; the multicore fan-out merges per-domain registries *)
let m_degraded = Stochobs.Metrics.(counter default) "robust.solver.degraded"

(* stochlint: allow GLOBAL_MUT_STATE — single-domain metrics probe; the multicore fan-out merges per-domain registries *)
let m_rej_budget =
  Stochobs.Metrics.(counter default) "robust.solver.rejections.budget"

(* stochlint: allow GLOBAL_MUT_STATE — single-domain metrics probe; the multicore fan-out merges per-domain registries *)
let m_rej_nonconv =
  Stochobs.Metrics.(counter default) "robust.solver.rejections.non_convergent"

type tier = Brute_force | Dp_equal_probability | Mean_doubling

let tier_name = function
  | Brute_force -> "recurrence-brute-force"
  | Dp_equal_probability -> "equal-probability-dp"
  | Mean_doubling -> "mean-doubling"

let all_tiers = [ Brute_force; Dp_equal_probability; Mean_doubling ]

type budget = {
  bf_candidates : int;
  mc_samples : int;
  dp_points : int;
  max_evaluations : int;
  max_seconds : float;
}

let default_budget =
  {
    bf_candidates = 5000;
    mc_samples = 1000;
    dp_points = 1000;
    max_evaluations = 2_000_000;
    max_seconds = 60.0;
  }

let quick_budget =
  {
    bf_candidates = 300;
    mc_samples = 200;
    dp_points = 200;
    max_evaluations = 200_000;
    max_seconds = 5.0;
  }

type error =
  | Invalid_distribution of Dist_check.report
  | Invalid_parameter of { name : string; detail : string }
  | Non_convergent of { stage : string; detail : string }
  | Budget_exhausted of { stage : string; evaluations : int; elapsed : float }

let error_to_string = function
  | Invalid_distribution r ->
      Printf.sprintf "invalid distribution: %s" (Dist_check.summary r)
  | Invalid_parameter { name; detail } ->
      Printf.sprintf "invalid parameter %s: %s" name detail
  | Non_convergent { stage; detail } ->
      Printf.sprintf "non-convergent in %s: %s" stage detail
  | Budget_exhausted { stage; evaluations; elapsed } ->
      Printf.sprintf
        "budget exhausted in %s after %d evaluations (%.2fs elapsed)" stage
        evaluations elapsed

let pp_error fmt = function
  | Invalid_distribution r ->
      Format.fprintf fmt "invalid distribution:@.%a" Dist_check.pp r
  | e -> Format.fprintf fmt "%s" (error_to_string e)

let exit_code = function
  | Invalid_distribution _ -> 4
  | Non_convergent _ -> 5
  | Budget_exhausted _ -> 6
  | Invalid_parameter _ -> 7

type rejection = { tier : tier; reason : error }

type diagnostics = {
  chosen : tier;
  rejected : rejection list;
  validation : Dist_check.report option;
  evaluations : int;
  elapsed : float;
}

type solution = {
  sequence : Core_seq.t;
  head : float array;
  cost : float;
  normalized : float;
  diagnostics : diagnostics;
}

let degraded s = s.diagnostics.rejected <> []

(* ------------------------------------------------------------------ *)

(* Internal control flow: a tier aborts with [Tier_fail]; the cascade
   catches it, records the rejection and moves on. *)
exception Tier_fail of error

type state = {
  budget : budget;
  clock : Stochobs.Clock.t;
  started : float;
  mutable evaluations : int;
}

let elapsed st = st.clock () -. st.started

(* Each tier owns a slice of the wall clock so that a runaway early
   tier cannot starve its fallbacks: brute force may use the first
   70%, the DP until 90%, mean-doubling and final vetting the rest. *)
let deadline_frac = function
  | Brute_force -> 0.70
  | Dp_equal_probability -> 0.90
  | Mean_doubling -> 1.0

let over_deadline st tier =
  elapsed st > deadline_frac tier *. st.budget.max_seconds

let spend st ~stage n =
  st.evaluations <- st.evaluations + n;
  Stochobs.Metrics.add m_evaluations n;
  if st.evaluations > st.budget.max_evaluations then
    (* stochlint: allow EXN_IN_CORE — Tier_fail is internal control flow; run_tier catches it and returns a typed Error *)
    raise
      (Tier_fail
         (Budget_exhausted
            { stage; evaluations = st.evaluations; elapsed = elapsed st }))

let fail_non_convergent stage detail =
  (* stochlint: allow EXN_IN_CORE — Tier_fail is internal control flow; run_tier catches it and returns a typed Error *)
  raise (Tier_fail (Non_convergent { stage; detail }))

(* ------------------------------------------------------------------ *)
(* Vetting: whatever a tier produced must be a provably sane
   reservation sequence with a finite exact expected cost.            *)

let coverage = 1.0 -. 1e-9
let head_limit = 20_000

let vet st ~stage cost_model d seq =
  let b = Dist.upper d in
  let stop t =
    if Dist.is_bounded d then t >= b
    else
      let f = try d.Dist.cdf t with _ -> nan in
      (* A NaN cdf must not make the walk run forever. *)
      (not (Float.is_finite f)) || f >= coverage
  in
  let head = Core_seq.prefix_until ~limit:head_limit stop seq in
  spend st ~stage (Array.length head);
  if Array.length head = 0 then fail_non_convergent stage "empty sequence";
  let prev = ref 0.0 in
  Array.iter
    (fun t ->
      if not (Float.is_finite t) then
        fail_non_convergent stage
          (Printf.sprintf "sequence contains the non-finite value %g" t);
      if t <= !prev then
        fail_non_convergent stage
          (Printf.sprintf "sequence not strictly increasing at %g" t);
      prev := t)
    head;
  let last = head.(Array.length head - 1) in
  let covered =
    if Dist.is_bounded d then last >= b -. (1e-9 *. Float.max 1.0 b)
    else
      match d.Dist.cdf last with
      | f -> Float.is_finite f && f >= coverage
      | exception _ -> false
  in
  if not covered then
    fail_non_convergent stage
      (Printf.sprintf
         "sequence stalled at %g without covering the %g quantile" last
         coverage);
  let cost =
    match Stochastic_core.Expected_cost.exact cost_model d seq with
    | c -> c
    | exception Core_seq.Not_covered t ->
        fail_non_convergent stage
          (Printf.sprintf "exact cost evaluation not covered at t = %g" t)
    | exception exn ->
        fail_non_convergent stage
          (Printf.sprintf "exact cost evaluation raised %s"
             (Printexc.to_string exn))
  in
  if not (Float.is_finite cost) then
    fail_non_convergent stage
      (Printf.sprintf "expected cost is %g" cost);
  let omniscient = Stochastic_core.Expected_cost.omniscient cost_model d in
  if not (Float.is_finite omniscient && omniscient > 0.0) then
    fail_non_convergent stage
      (Printf.sprintf "omniscient baseline is %g" omniscient);
  (head, cost, cost /. omniscient)

(* ------------------------------------------------------------------ *)
(* Tier 1: recurrence-driven brute force (Sect. 4.1), re-implemented
   here rather than delegated to {!Stochastic_core.Brute_force} so the
   scan honours the evaluation and wall-clock budgets candidate by
   candidate and reports typed rejection statistics.                  *)

let run_brute_force st ~exact ~seed cost_model d =
  let stage = tier_name Brute_force in
  let a, b =
    match Stochastic_core.Bounds.search_interval cost_model d with
    | bounds -> bounds
    | exception Invalid_argument msg ->
        fail_non_convergent (stage ^ "/bounds") msg
    | exception exn ->
        fail_non_convergent (stage ^ "/bounds") (Printexc.to_string exn)
  in
  if not (Float.is_finite a && Float.is_finite b && b > a) then
    fail_non_convergent (stage ^ "/bounds")
      (Printf.sprintf "degenerate search interval (%g, %g]" a b);
  let eval =
    if exact then fun seq ->
      Stochastic_core.Expected_cost.exact cost_model d seq
    else begin
      let rng = Randomness.Rng.create ~seed () in
      let samples =
        match Dist.samples d rng st.budget.mc_samples with
        | s -> s
        | exception exn ->
            fail_non_convergent (stage ^ "/sampling") (Printexc.to_string exn)
      in
      Array.iter
        (fun x ->
          if not (Float.is_finite x) then
            fail_non_convergent (stage ^ "/sampling")
              (Printf.sprintf "sampler produced %g" x))
        samples;
      Array.sort compare samples;
      fun seq ->
        Stochastic_core.Expected_cost.mean_cost_presampled cost_model
          ~sorted_samples:samples seq
    end
  in
  let m = st.budget.bf_candidates in
  let step = (b -. a) /. float_of_int m in
  let best_t1 = ref nan and best_cost = ref infinity in
  let valid = ref 0 in
  let underflow = ref 0
  and non_increasing = ref 0
  and non_finite = ref 0
  and too_long = ref 0
  and eval_failed = ref 0 in
  (try
     for i = 1 to m do
       if over_deadline st Brute_force then begin
         if Float.is_nan !best_t1 then
           (* stochlint: allow EXN_IN_CORE — Tier_fail is internal control flow; run_tier catches it and returns a typed Error *)
           raise
             (Tier_fail
                (Budget_exhausted
                   {
                     stage;
                     evaluations = st.evaluations;
                     elapsed = elapsed st;
                   }))
         (* stochlint: allow EXN_IN_CORE — Exit implements early loop termination and is caught immediately below *)
         else raise Exit
       end;
       spend st ~stage 1;
       let t1 = a +. (float_of_int i *. step) in
       match Stochastic_core.Recurrence.generate cost_model d ~t1 with
       | Error (Stochastic_core.Recurrence.Density_underflow _) ->
           incr underflow
       | Error (Stochastic_core.Recurrence.Non_increasing _) ->
           incr non_increasing
       | Error (Stochastic_core.Recurrence.Non_finite _) -> incr non_finite
       | Error (Stochastic_core.Recurrence.Too_long _) -> incr too_long
       | Error (Stochastic_core.Recurrence.Unsupported_t1 _) -> incr eval_failed
       | Ok _ -> (
           let seq = Stochastic_core.Recurrence.sequence cost_model d ~t1 in
           match eval seq with
           | c when Float.is_finite c ->
               incr valid;
               if c < !best_cost then begin
                 best_cost := c;
                 best_t1 := t1
               end
           | _ -> incr eval_failed
           | exception _ -> incr eval_failed)
     done
   with Exit -> ());
  if Float.is_nan !best_t1 then
    fail_non_convergent stage
      (Printf.sprintf
         "0/%d candidates yielded a valid sequence (density underflow %d, \
          non-increasing %d, non-finite %d, too long %d, evaluation failed \
          %d)"
         m !underflow !non_increasing !non_finite !too_long !eval_failed)
  else Stochastic_core.Recurrence.sequence cost_model d ~t1:!best_t1

(* Tier 2: Theorem 5 DP on the equal-probability discretization
   (Sect. 4.2) — needs no density and no Theorem 2 moment bounds. *)
let run_dp st cost_model d =
  let stage = tier_name Dp_equal_probability in
  if over_deadline st Dp_equal_probability then
    (* stochlint: allow EXN_IN_CORE — Tier_fail is internal control flow; run_tier catches it and returns a typed Error *)
    raise
      (Tier_fail
         (Budget_exhausted
            { stage; evaluations = st.evaluations; elapsed = elapsed st }));
  spend st ~stage st.budget.dp_points;
  let discrete =
    match
      Stochastic_core.Discretize.run ~eps:1e-7
        Stochastic_core.Discretize.Equal_probability ~n:st.budget.dp_points d
    with
    | disc -> disc
    | exception exn ->
        fail_non_convergent (stage ^ "/discretize") (Printexc.to_string exn)
  in
  match Stochastic_core.Dp.sequence_for cost_model d discrete with
  | seq -> seq
  | exception exn -> fail_non_convergent stage (Printexc.to_string exn)

(* Tier 3: MEAN-DOUBLING (Sect. 4.3) — needs only a finite positive
   mean; its doubling tail diverges past any quantile. *)
let run_mean_doubling st cost_model d =
  ignore cost_model;
  let stage = tier_name Mean_doubling in
  if over_deadline st Mean_doubling then
    (* stochlint: allow EXN_IN_CORE — Tier_fail is internal control flow; run_tier catches it and returns a typed Error *)
    raise
      (Tier_fail
         (Budget_exhausted
            { stage; evaluations = st.evaluations; elapsed = elapsed st }));
  if not (Float.is_finite d.Dist.mean && d.Dist.mean > 0.0) then
    fail_non_convergent stage
      (Printf.sprintf "mean %g is not finite and positive" d.Dist.mean);
  Stochastic_core.Heuristics.mean_doubling d

let run_tier st ~exact ~seed cost_model d = function
  | Brute_force -> run_brute_force st ~exact ~seed cost_model d
  | Dp_equal_probability -> run_dp st cost_model d
  | Mean_doubling -> run_mean_doubling st cost_model d

(* ------------------------------------------------------------------ *)

let check_budget_params budget =
  let pos name v =
    if v <= 0 then
      Some
        (Invalid_parameter
           { name; detail = Printf.sprintf "must be positive, got %d" v })
    else None
  in
  match pos "bf_candidates" budget.bf_candidates with
  | Some e -> Some e
  | None -> (
      match pos "mc_samples" budget.mc_samples with
      | Some e -> Some e
      | None -> (
          match pos "dp_points" budget.dp_points with
          | Some e -> Some e
          | None -> (
              match pos "max_evaluations" budget.max_evaluations with
              | Some e -> Some e
              | None ->
                  if
                    (not (Float.is_finite budget.max_seconds))
                    || budget.max_seconds <= 0.0
                  then
                    Some
                      (Invalid_parameter
                         {
                           name = "max_seconds";
                           detail =
                             Printf.sprintf
                               "must be positive and finite, got %g"
                               budget.max_seconds;
                         })
                  else None)))

(* One cascade tier, traced: the span closes with an [outcome]
   attribute of ["accepted"] or ["rejected"] (plus the typed reason),
   so a rejection is a recorded result rather than a span error. *)
let attempt_tier st ~obs ~exact ~seed cost_model d tier =
  Trace.with_span obs
    ~attrs:[ ("tier", Trace.Str (tier_name tier)) ]
    "robust.solver.tier"
    (fun () ->
      let reject reason =
        (match reason with
        | Budget_exhausted _ -> Stochobs.Metrics.incr m_rej_budget
        | _ -> Stochobs.Metrics.incr m_rej_nonconv);
        Trace.annotate obs
          [
            ("outcome", Trace.Str "rejected");
            ("reason", Trace.Str (error_to_string reason));
          ];
        Error reason
      in
      match
        let seq = run_tier st ~exact ~seed cost_model d tier in
        let head, cost, normalized =
          vet st ~stage:(tier_name tier) cost_model d seq
        in
        (seq, head, cost, normalized)
      with
      | (_, _, _, normalized) as r ->
          Trace.annotate obs
            [
              ("outcome", Trace.Str "accepted");
              ("normalized", Trace.Num normalized);
            ];
          Ok r
      | exception Tier_fail reason -> reject reason
      | exception exn ->
          (* Last-resort catch: no exception may escape. *)
          reject
            (Non_convergent
               {
                 stage = tier_name tier;
                 detail =
                   Printf.sprintf "unexpected exception %s"
                     (Printexc.to_string exn);
               }))

let solve ?(obs = Trace.null) ?(clock = Stochobs.Clock.cpu)
    ?(budget = default_budget) ?(tiers = all_tiers) ?(validate = true)
    ?(exact = false) ?(seed = 42) cost_model d =
  match check_budget_params budget with
  | Some e -> Error e
  | None ->
      if tiers = [] then
        Error
          (Invalid_parameter
             { name = "tiers"; detail = "the cascade needs at least one tier" })
      else
        Trace.with_span obs
          ~attrs:
            [
              ("tiers", Trace.Int (List.length tiers));
              ("exact", Trace.Bool exact);
              ("seed", Trace.Int seed);
            ]
          "robust.solver.solve"
        @@ fun () ->
        Stochobs.Metrics.incr m_solves;
        let st = { budget; clock; started = clock (); evaluations = 0 } in
        let validation =
          if validate then Some (Dist_check.run d) else None
        in
        match validation with
        | Some r when not (Dist_check.is_valid r) ->
            Trace.annotate obs
              [ ("outcome", Trace.Str "invalid-distribution") ];
            Error (Invalid_distribution r)
        | _ ->
            let rejected = ref [] in
            let rec cascade = function
              | [] ->
                  Trace.annotate obs [ ("outcome", Trace.Str "exhausted") ];
                  let all_budget =
                    List.for_all
                      (fun r ->
                        match r.reason with
                        | Budget_exhausted _ -> true
                        | _ -> false)
                      !rejected
                  in
                  if all_budget && !rejected <> [] then
                    Error
                      (Budget_exhausted
                         {
                           stage = "cascade";
                           evaluations = st.evaluations;
                           elapsed = elapsed st;
                         })
                  else
                    Error
                      (Non_convergent
                         {
                           stage = "cascade";
                           detail =
                             (List.rev !rejected
                             |> List.map (fun r ->
                                    Printf.sprintf "%s: %s"
                                      (tier_name r.tier)
                                      (error_to_string r.reason))
                             |> String.concat "; ");
                         })
              | tier :: rest -> (
                  match attempt_tier st ~obs ~exact ~seed cost_model d tier with
                  | Ok (seq, head, cost, normalized) ->
                      if !rejected <> [] then Stochobs.Metrics.incr m_degraded;
                      Trace.annotate obs
                        [ ("chosen", Trace.Str (tier_name tier)) ];
                      Ok
                        {
                          sequence = seq;
                          head;
                          cost;
                          normalized;
                          diagnostics =
                            {
                              chosen = tier;
                              rejected = List.rev !rejected;
                              validation;
                              evaluations = st.evaluations;
                              elapsed = elapsed st;
                            };
                        }
                  | Error reason ->
                      rejected := { tier; reason } :: !rejected;
                      cascade rest)
            in
            cascade tiers

(* ------------------------------------------------------------------ *)
(* Two-tier spot front-end: validate the (price_ratio, revocation_rate,
   checkpoint) regime through the typed taxonomy, solve the base
   sequence with the cascade, then run the tier-assignment pass over
   the vetted head.                                                    *)

module Spot_cost = Stochastic_core.Spot_cost
module Spot_plan = Stochastic_core.Spot_plan

(* stochlint: allow GLOBAL_MUT_STATE — single-domain metrics probe; the multicore fan-out merges per-domain registries *)
let m_spot_solves =
  Stochobs.Metrics.(counter default) "robust.solver.spot.solves"

(* stochlint: allow GLOBAL_MUT_STATE — single-domain metrics probe; the multicore fan-out merges per-domain registries *)
let m_spot_slots =
  Stochobs.Metrics.(counter default) "robust.solver.spot.spot_slots"

(* stochlint: allow GLOBAL_MUT_STATE — single-domain metrics probe; the multicore fan-out merges per-domain registries *)
let m_spot_all_on_demand =
  Stochobs.Metrics.(counter default) "robust.solver.spot.all_on_demand"

type spot_solution = {
  base : solution;
  regime : Spot_cost.regime;
  plan : Spot_cost.plan;
  spot_cost : float;
  on_demand_cost : float;
  savings : float;
  assignment_evaluations : int;
}

let spot_regime ?(recovery = Spot_cost.Restart) ~price_ratio ~revocation_rate () =
  let bad name fmt_detail = Error (Invalid_parameter { name; detail = fmt_detail }) in
  if not (Float.is_finite price_ratio && price_ratio > 0.0 && price_ratio <= 1.0)
  then
    bad "price_ratio"
      (Printf.sprintf "must be finite in (0, 1], got %g" price_ratio)
  else if not (Float.is_finite revocation_rate && revocation_rate >= 0.0) then
    bad "revocation_rate"
      (Printf.sprintf "must be finite and >= 0, got %g" revocation_rate)
  else
    let recovery_ok =
      match recovery with
      | Spot_cost.Restart -> None
      | Spot_cost.Snapshot { period; snapshot_cost; restore_cost } ->
          if not (Float.is_finite period && period > 0.0) then
            Some
              ( "checkpoint_period",
                Printf.sprintf "must be finite and > 0, got %g" period )
          else if not (Float.is_finite snapshot_cost && snapshot_cost >= 0.0)
          then
            Some
              ( "checkpoint_cost",
                Printf.sprintf "must be finite and >= 0, got %g" snapshot_cost )
          else if not (Float.is_finite restore_cost && restore_cost >= 0.0) then
            Some
              ( "restore_cost",
                Printf.sprintf "must be finite and >= 0, got %g" restore_cost )
          else None
    in
    match recovery_ok with
    | Some (name, detail) -> bad name detail
    | None -> Ok (Spot_cost.make_regime ~recovery ~price_ratio ~revocation_rate ())

let solve_spot ?(obs = Trace.null) ?clock ?budget ?tiers ?validate ?exact ?seed
    ?recovery ?(disc_n = 500) ~price_ratio ~revocation_rate cost_model d =
  if disc_n <= 0 then
    Error
      (Invalid_parameter
         {
           name = "disc_n";
           detail = Printf.sprintf "must be positive, got %d" disc_n;
         })
  else
    match spot_regime ?recovery ~price_ratio ~revocation_rate () with
    | Error e -> Error e
    | Ok regime -> (
        match
          solve ~obs ?clock ?budget ?tiers ?validate ?exact ?seed cost_model d
        with
        | Error e -> Error e
        | Ok base -> (
            Trace.with_span obs
              ~attrs:
                [
                  ("price_ratio", Trace.Num price_ratio);
                  ("revocation_rate", Trace.Num revocation_rate);
                  ("slots", Trace.Int (Array.length base.head));
                ]
              "robust.solver.spot"
            @@ fun () ->
            Stochobs.Metrics.incr m_spot_solves;
            match Spot_plan.assign ~disc_n regime cost_model d base.head with
            | a ->
                let slots = Spot_cost.spot_slots a.Spot_plan.plan in
                Stochobs.Metrics.add m_spot_slots slots;
                if slots = 0 then Stochobs.Metrics.incr m_spot_all_on_demand;
                let savings =
                  if a.Spot_plan.on_demand_cost > 0.0 then
                    1.0 -. (a.Spot_plan.cost /. a.Spot_plan.on_demand_cost)
                  else 0.0
                in
                Trace.annotate obs
                  [
                    ("spot_slots", Trace.Int slots);
                    ("savings", Trace.Num savings);
                  ];
                Ok
                  {
                    base;
                    regime;
                    plan = a.Spot_plan.plan;
                    spot_cost = a.Spot_plan.cost;
                    on_demand_cost = a.Spot_plan.on_demand_cost;
                    savings;
                    assignment_evaluations = a.Spot_plan.evaluated;
                  }
            | exception exn ->
                (* [assign] on a vetted head cannot raise; keep the
                   never-raises contract anyway. *)
                Trace.annotate obs [ ("outcome", Trace.Str "failed") ];
                Error
                  (Non_convergent
                     {
                       stage = "tier-assignment";
                       detail =
                         Printf.sprintf "unexpected exception %s"
                           (Printexc.to_string exn);
                     })))

let pp_diagnostics fmt diag =
  (match diag.validation with
  | None -> Format.fprintf fmt "validation:   skipped@."
  | Some r -> Format.fprintf fmt "validation:   %s@." (Dist_check.summary r));
  (match diag.validation with
  | Some r when Dist_check.warnings r <> [] ->
      List.iter
        (fun (i : Dist_check.issue) ->
          Format.fprintf fmt "              [warn] %s: %s@." i.id i.detail)
        (Dist_check.warnings r)
  | _ -> ());
  Format.fprintf fmt "solver tier:  %s%s@." (tier_name diag.chosen)
    (if diag.rejected = [] then " (primary)" else " (degraded)");
  List.iter
    (fun r ->
      Format.fprintf fmt "              rejected %s: %s@." (tier_name r.tier)
        (error_to_string r.reason))
    diag.rejected;
  Format.fprintf fmt "budget:       %d evaluations, %.3fs elapsed"
    diag.evaluations diag.elapsed
