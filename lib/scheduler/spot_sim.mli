(** Seeded trace-driven validation of the spot cost model.

    Replays {!Stochastic_core.Spot_cost} plans against concrete
    revocation traces drawn from {!Faults} (one independent stream per
    replication, exponential interarrivals at the regime's revocation
    rate) and concrete job sizes sampled from the distribution. Every
    attempt is accounted with the {e same}
    {!Stochastic_core.Spot_cost.slot_outcome} kernel the analytic
    evaluator integrates over, so simulation and analysis can only
    disagree about the revocation-time distribution — which is exactly
    what the Monte-Carlo acceptance check pins (analytic within 2% of
    simulated). *)

type result = {
  reps : int;  (** Replications simulated. *)
  mean_cost : float;  (** Sample mean of the per-replication cost. *)
  stderr : float;  (** Standard error of the mean. *)
  attempts : int;  (** Total reservation attempts across reps. *)
  revocations : int;  (** Attempts killed by a revocation. *)
  resumes : int;  (** Attempts started from a durable snapshot. *)
  incomplete : int;
      (** Replications aborted at [max_slots] — always [0] for sane
          plans (the on-demand doubling extension finishes any job). *)
}

val run :
  ?obs:Stochobs.Trace.sink ->
  ?metrics:Stochobs.Metrics.t ->
  ?reps:int ->
  ?seed:int ->
  ?max_slots:int ->
  Stochastic_core.Spot_cost.regime ->
  Stochastic_core.Cost_model.t ->
  Distributions.Dist.t ->
  Stochastic_core.Spot_cost.plan ->
  result
(** [run regime m d plan] simulates [reps] (default [10_000])
    independent job executions under seeded revocation traces
    ([seed] default [42]; replication [i] uses fault stream node [i],
    so results are bit-for-bit reproducible for a fixed seed and
    independent of replication order). [max_slots] (default plan
    length + 128) bounds each walk. Emits a
    ["scheduler.spot_sim.run"] span on [obs] and bumps the
    [spot.sim.*] counters on [metrics] (default
    {!Stochobs.Metrics.default}; pass a per-domain registry from a
    multicore fan-out and {!Stochobs.Metrics.merge} the snapshots).
    @raise Invalid_argument if [reps <= 0] or [max_slots <= 0]. *)
