(* Node pool with per-node identity: each node is up or down, and free
   or allocated. Identities matter because failures are per-node — when
   node [i] dies the engine must know which running job held it.
   Allocation picks the lowest-numbered free nodes so that placement
   (and therefore which job a failure kills) is deterministic. *)

type t = {
  nodes : int;
  up : bool array;
  allocated : bool array;
  mutable free_count : int; (* up && not allocated *)
  mutable busy_count : int; (* allocated *)
  mutable clock : float;
  busy : Numerics.Kahan.t;
}

let create ~nodes =
  if nodes <= 0 then invalid_arg "Cluster.create: nodes must be positive";
  {
    nodes;
    up = Array.make nodes true;
    allocated = Array.make nodes false;
    free_count = nodes;
    busy_count = 0;
    clock = 0.0;
    busy = Numerics.Kahan.create ();
  }

let nodes t = t.nodes
let free t = t.free_count
let busy_nodes t = t.busy_count

let up_nodes t =
  let n = ref 0 in
  Array.iter (fun u -> if u then incr n) t.up;
  !n

let is_up t i =
  if i < 0 || i >= t.nodes then invalid_arg "Cluster.is_up: node out of range";
  t.up.(i)

let advance t now =
  if now < t.clock -. 1e-9 then
    invalid_arg "Cluster.advance: time moved backwards";
  if t.busy_count < 0 || t.busy_count > t.nodes then
    failwith
      (Printf.sprintf "Cluster.advance: busy count %d outside [0, %d]"
         t.busy_count t.nodes);
  if now > t.clock then begin
    Numerics.Kahan.add t.busy (float_of_int t.busy_count *. (now -. t.clock));
    t.clock <- now
  end

let allocate t n =
  if n <= 0 then invalid_arg "Cluster.allocate: node count must be positive";
  if n > t.free_count then
    invalid_arg "Cluster.allocate: not enough free nodes";
  let ids = ref [] and taken = ref 0 in
  let i = ref 0 in
  while !taken < n do
    if t.up.(!i) && not t.allocated.(!i) then begin
      t.allocated.(!i) <- true;
      ids := !i :: !ids;
      incr taken
    end;
    incr i
  done;
  t.free_count <- t.free_count - n;
  t.busy_count <- t.busy_count + n;
  List.rev !ids

let release t ids =
  if ids = [] then invalid_arg "Cluster.release: empty node list";
  List.iter
    (fun i ->
      if i < 0 || i >= t.nodes then
        invalid_arg "Cluster.release: node out of range";
      if not t.allocated.(i) then
        invalid_arg
          (Printf.sprintf "Cluster.release: node %d is not allocated" i);
      t.allocated.(i) <- false;
      t.busy_count <- t.busy_count - 1;
      if t.up.(i) then t.free_count <- t.free_count + 1)
    ids

let mark_down t i =
  if i < 0 || i >= t.nodes then
    invalid_arg "Cluster.mark_down: node out of range";
  if not t.up.(i) then
    invalid_arg (Printf.sprintf "Cluster.mark_down: node %d is already down" i);
  if t.allocated.(i) then
    invalid_arg
      (Printf.sprintf
         "Cluster.mark_down: node %d still allocated (release its job first)" i);
  t.up.(i) <- false;
  t.free_count <- t.free_count - 1

let mark_up t i =
  if i < 0 || i >= t.nodes then invalid_arg "Cluster.mark_up: node out of range";
  if t.up.(i) then
    invalid_arg (Printf.sprintf "Cluster.mark_up: node %d is already up" i);
  t.up.(i) <- true;
  t.free_count <- t.free_count + 1

let clock t = t.clock
let busy_node_time t = Numerics.Kahan.sum t.busy

let utilization t =
  if t.clock <= 0.0 then 0.0
  else
    let u = busy_node_time t /. (float_of_int t.nodes *. t.clock) in
    Float.min 1.0 (Float.max 0.0 u)
