type t = {
  nodes : int;
  mutable free : int;
  mutable clock : float;
  busy : Numerics.Kahan.t;
}

let create ~nodes =
  if nodes <= 0 then invalid_arg "Cluster.create: nodes must be positive";
  { nodes; free = nodes; clock = 0.0; busy = Numerics.Kahan.create () }

let nodes t = t.nodes
let free t = t.free
let busy_nodes t = t.nodes - t.free

let advance t now =
  if now < t.clock -. 1e-9 then
    invalid_arg "Cluster.advance: time moved backwards";
  if now > t.clock then begin
    Numerics.Kahan.add t.busy (float_of_int (t.nodes - t.free) *. (now -. t.clock));
    t.clock <- now
  end

let allocate t n =
  if n <= 0 then invalid_arg "Cluster.allocate: node count must be positive";
  if n > t.free then invalid_arg "Cluster.allocate: not enough free nodes";
  t.free <- t.free - n

let release t n =
  if n <= 0 then invalid_arg "Cluster.release: node count must be positive";
  if t.free + n > t.nodes then
    invalid_arg "Cluster.release: releasing more nodes than allocated";
  t.free <- t.free + n

let busy_node_time t = Numerics.Kahan.sum t.busy

let utilization t =
  if t.clock <= 0.0 then 0.0
  else
    let u = busy_node_time t /. (float_of_int t.nodes *. t.clock) in
    Float.min 1.0 (Float.max 0.0 u)
