(** Deterministic, seeded per-node failure traces.

    Feeds the engine's [Node_down]/[Node_up] events. Each node owns an
    independent random stream split off the configured seed, so a
    node's failure trace is a pure function of [(config, node index)]:
    traces are reproducible bit-for-bit regardless of how the engine
    interleaves events, and a rerun with the same seed replays the
    identical fault schedule.

    Three interarrival models, all normalised so the {e mean} uptime
    equals the configured MTBF:
    - {!exponential} — memoryless node crashes (classic MTBF model);
    - {!weibull} — ageing ([shape > 1]) or infant-mortality
      ([shape < 1]) hazard;
    - {!spot} — bursty spot/preemptible revocations: a hyperexponential
      mixture where a [burst_prob] fraction of gaps are
      [burst_factor] times shorter, clustering reclaims in time. *)

type model =
  | Exponential of { mtbf : float }
  | Weibull of { mtbf : float; shape : float }
  | Spot of { mtbf : float; burst_prob : float; burst_factor : float }

type config = { model : model; mean_repair : float; seed : int }

val exponential : mtbf:float -> model
(** [mtbf = infinity] means the node never fails (failure rate 0).
    @raise Invalid_argument if [mtbf <= 0] or NaN. *)

val weibull : mtbf:float -> shape:float -> model
(** @raise Invalid_argument on non-positive [mtbf] or [shape]. *)

type param_error = { field : string; value : float; detail : string }
(** A rejected construction parameter: which field, the offending
    value, and why it is unusable. *)

val param_error_to_string : param_error -> string
(** One-line ["Faults.spot: field = value: detail"] rendering. *)

val spot_checked :
  ?burst_prob:float ->
  ?burst_factor:float ->
  mtbf:float ->
  unit ->
  (model, param_error) result
(** Typed variant of {!spot}: validates every field at construction
    ([mtbf > 0] with [infinity] allowed, [burst_prob] in [[0, 1)] —
    [1] is rejected because the hyperexponential mixture mean can no
    longer be normalised to the MTBF — and [burst_factor >= 1], all
    NaN-rejecting) and returns the first offending field instead of
    raising. *)

val spot : ?burst_prob:float -> ?burst_factor:float -> mtbf:float -> unit -> model
(** Defaults: [burst_prob = 0.2], [burst_factor = 10].
    @raise Invalid_argument if [burst_prob] is outside [[0, 1)] or
    [burst_factor < 1] (the {!spot_checked} errors, rendered). *)

val make : ?seed:int -> ?mean_repair:float -> model -> config
(** Defaults: [seed = 42], [mean_repair = 0.1] (hours; exponential
    repair, [0] = instant).
    @raise Invalid_argument on negative [mean_repair]. *)

val mtbf : config -> float
(** The configured mean time between failures (may be [infinity]). *)

val rate : config -> float
(** [1 / mtbf config], or [0.] when the MTBF is infinite. *)

val model_name : config -> string

type t
(** Mutable per-node draw state (one stream per node). *)

val create : config -> nodes:int -> t
(** @raise Invalid_argument if [nodes <= 0]. *)

val uptime : t -> node:int -> float
(** Next time-to-failure for [node]; [infinity] when the node never
    fails (no draw is consumed in that case).
    @raise Invalid_argument on an out-of-range node. *)

val downtime : t -> node:int -> float
(** Repair duration for [node]'s current outage. *)

val trace : t -> node:int -> horizon:float -> (float * float) list
(** [(down_at, back_at)] outages of [node] up to [horizon], consuming
    the node's stream — diagnostics and property tests.
    @raise Invalid_argument on a non-positive or infinite horizon. *)
