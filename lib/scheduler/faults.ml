(* Deterministic, seeded per-node failure traces for the cluster
   engine. Each node owns an independent random stream split off a root
   seed, and its trace is an alternating sequence of uptimes (drawn
   from the configured interarrival model) and downtimes (exponential
   repair). Draws happen lazily, one per state transition, but because
   every node consumes only its own stream the trace of node [i] is a
   pure function of [(config, i)] — independent of how the engine
   interleaves events across nodes. *)

type model =
  | Exponential of { mtbf : float }
  | Weibull of { mtbf : float; shape : float }
  | Spot of { mtbf : float; burst_prob : float; burst_factor : float }

type config = { model : model; mean_repair : float; seed : int }

let check_mtbf name mtbf =
  (* [infinity] is a valid MTBF: the node never fails (rate 0). *)
  if Float.is_nan mtbf || mtbf <= 0.0 then
    invalid_arg (name ^ ": mtbf must be positive (infinity = never fails)")

let exponential ~mtbf =
  check_mtbf "Faults.exponential" mtbf;
  Exponential { mtbf }

let weibull ~mtbf ~shape =
  check_mtbf "Faults.weibull" mtbf;
  if not (Float.is_finite shape) || shape <= 0.0 then
    invalid_arg "Faults.weibull: shape must be positive and finite";
  Weibull { mtbf; shape }

type param_error = { field : string; value : float; detail : string }

let param_error_to_string e =
  Printf.sprintf "Faults.spot: %s = %g: %s" e.field e.value e.detail

(* Typed construction-time validation: a bad field names itself instead
   of silently generating a degenerate trace (or a cryptic sampler
   failure deep inside a simulation). *)
let spot_checked ?(burst_prob = 0.2) ?(burst_factor = 10.0) ~mtbf () =
  if Float.is_nan mtbf || mtbf <= 0.0 then
    Error
      {
        field = "mtbf";
        value = mtbf;
        detail = "must be positive (infinity = never fails)";
      }
  else if not (Float.is_finite burst_prob) || burst_prob < 0.0 || burst_prob >= 1.0
  then
    Error
      {
        field = "burst_prob";
        value = burst_prob;
        detail =
          "must lie in [0, 1): at 1 every gap takes the burst branch and the \
           mixture mean cannot be normalised to the MTBF";
      }
  else if not (Float.is_finite burst_factor) || burst_factor < 1.0 then
    Error { field = "burst_factor"; value = burst_factor; detail = "must be >= 1" }
  else Ok (Spot { mtbf; burst_prob; burst_factor })

let spot ?burst_prob ?burst_factor ~mtbf () =
  match spot_checked ?burst_prob ?burst_factor ~mtbf () with
  | Ok model -> model
  | Error e -> invalid_arg (param_error_to_string e)

let make ?(seed = 42) ?(mean_repair = 0.1) model =
  if not (Float.is_finite mean_repair) || mean_repair < 0.0 then
    invalid_arg "Faults.make: mean_repair must be nonnegative and finite";
  { model; mean_repair; seed }

let mtbf config =
  match config.model with
  | Exponential { mtbf } | Weibull { mtbf; _ } | Spot { mtbf; _ } -> mtbf

let rate config =
  let m = mtbf config in
  if Float.is_finite m then 1.0 /. m else 0.0

let model_name config =
  match config.model with
  | Exponential _ -> "exponential"
  | Weibull _ -> "weibull"
  | Spot _ -> "spot"

type t = { config : config; streams : Randomness.Rng.t array }

let create config ~nodes =
  if nodes <= 0 then invalid_arg "Faults.create: nodes must be positive";
  let root = Randomness.Rng.create ~seed:config.seed () in
  { config; streams = Array.init nodes (fun _ -> Randomness.Rng.split root) }

let stream t node =
  if node < 0 || node >= Array.length t.streams then
    invalid_arg "Faults: node index out of range";
  t.streams.(node)

(* Every model is normalised so the mean uptime equals the configured
   MTBF; the models differ only in the shape of the interarrival law
   (memoryless, ageing, or bursty-clustered). *)
let uptime t ~node =
  let rng = stream t node in
  match t.config.model with
  | Exponential { mtbf } ->
      if Float.is_finite mtbf then
        Randomness.Sampler.exponential rng ~rate:(1.0 /. mtbf)
      else infinity
  | Weibull { mtbf; shape } ->
      if Float.is_finite mtbf then
        (* E[Weibull(lambda, k)] = lambda Gamma(1 + 1/k). *)
        let lambda =
          mtbf /. exp (Numerics.Specfun.log_gamma (1.0 +. (1.0 /. shape)))
        in
        Randomness.Sampler.weibull rng ~lambda ~k:shape
      else infinity
  | Spot { mtbf; burst_prob; burst_factor } ->
      if Float.is_finite mtbf then begin
        (* Hyperexponential mixture: with probability [burst_prob] the
           next revocation follows quickly (mean mtbf/burst_factor),
           modelling clustered spot reclaims; the long branch's mean is
           chosen so the mixture mean stays exactly [mtbf]. *)
        let short_mean = mtbf /. burst_factor in
        let long_mean =
          mtbf *. (1.0 -. (burst_prob /. burst_factor)) /. (1.0 -. burst_prob)
        in
        let u = Randomness.Rng.float rng in
        let mean = if u < burst_prob then short_mean else long_mean in
        Randomness.Sampler.exponential rng ~rate:(1.0 /. mean)
      end
      else infinity

let downtime t ~node =
  (* Guard, not equality: a zero-or-negative mean repair means
     instantaneous recovery, and an exact [= 0.0] would let a tiny
     negative value through to a negative exponential rate. *)
  if t.config.mean_repair <= 0.0 then 0.0
  else
    Randomness.Sampler.exponential (stream t node)
      ~rate:(1.0 /. t.config.mean_repair)

let trace t ~node ~horizon =
  if not (Float.is_finite horizon) || horizon <= 0.0 then
    invalid_arg "Faults.trace: horizon must be positive and finite";
  let rec go acc now =
    let up = uptime t ~node in
    if not (Float.is_finite up) then List.rev acc
    else
      let down_at = now +. up in
      if down_at > horizon then List.rev acc
      else
        let back_at = down_at +. downtime t ~node in
        go ((down_at, back_at) :: acc) back_at
  in
  go [] 0.0
