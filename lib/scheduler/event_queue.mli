(** Binary-heap event queue keyed on simulated time.

    The priority queue at the heart of the discrete-event engine.
    Entries are ordered by [(time, insertion index)] lexicographically,
    so ties between simultaneous events are broken by scheduling order
    — a requirement for the simulator to be bit-for-bit deterministic
    under a fixed {!Randomness.Rng} seed. *)

type 'a t
(** Mutable min-heap of ['a] payloads. *)

val create : unit -> 'a t

val push : 'a t -> time:float -> 'a -> unit
(** [push q ~time e] schedules [e] at [time].
    @raise Invalid_argument if [time] is not finite. *)

val pop : 'a t -> (float * 'a) option
(** [pop q] removes and returns the earliest event, or [None] when the
    queue is empty. Among equal times, events come out in the order
    they were pushed. *)

val peek_time : 'a t -> float option
(** [peek_time q] is the time of the next event without removing it. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
