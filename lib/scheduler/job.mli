(** A stochastic job flowing through the cluster simulator.

    Each job has a true execution time drawn from the workload
    distribution — unknown to the scheduler — and carries the prefix of
    a reservation sequence from {!Stochastic_core.Strategy} as its
    successive walltime requests: attempt [i] requests [t_i], runs for
    [min t_i duration], and on timeout is resubmitted immediately with
    [t_(i+1)] (the paper's execution model, now under contention).
    Every attempt logs its queue wait, producing the
    [(requested, wait)] records that close the loop with
    {!Platform.Hpc_queue}. *)

type attempt = {
  requested : float;  (** Requested walltime [t_i]. *)
  submitted : float;  (** When this attempt entered the queue. *)
  started : float;  (** When it was dispatched. *)
  wait : float;  (** [started - submitted]. *)
  elapsed : float;  (** [min requested duration] actually run. *)
  succeeded : bool;  (** Whether the job completed in this attempt. *)
}

type state = Waiting | Running | Done

type t

val make :
  id:int ->
  nodes:int ->
  arrival:float ->
  duration:float ->
  Stochastic_core.Sequence.t ->
  t
(** [make ~id ~nodes ~arrival ~duration s] materialises the prefix of
    [s] needed to cover [duration] and creates a waiting job.
    @raise Invalid_argument on non-positive [nodes]/[duration] or
    negative [arrival].
    @raise Stochastic_core.Sequence.Not_covered if [s] cannot cover
    [duration]. *)

val id : t -> int
val nodes : t -> int
val duration : t -> float
val arrival : t -> float
val state : t -> state

val submitted : t -> float
(** Submission time of the current attempt. *)

val request : t -> float
(** Requested walltime of the current attempt. *)

val reservations : t -> float array
(** The materialised reservation prefix (a copy). *)

val start : t -> now:float -> unit
(** Transition [Waiting -> Running] at [now] (engine only).
    @raise Invalid_argument if the job is not waiting. *)

val finish_attempt : t -> now:float -> bool
(** [finish_attempt j ~now] closes the running attempt at [now]:
    records it, and either completes the job (returns [true]) or
    resubmits it at [now] with the next reservation (returns [false]).
    @raise Invalid_argument if the job is not running. *)

val attempts : t -> attempt array
(** All closed attempts in chronological order. *)

val finish_time : t -> float
(** @raise Invalid_argument if the job is not [Done]. *)

val total_wait : t -> float
(** Sum of queue waits over all closed attempts. *)

val response : t -> float
(** [finish_time - arrival]. @raise Invalid_argument unless [Done]. *)

val stretch : t -> float
(** [response / duration >= 1]. @raise Invalid_argument unless
    [Done]. *)
