(** A stochastic job flowing through the cluster simulator.

    Each job has a true execution time drawn from the workload
    distribution — unknown to the scheduler — and carries the prefix of
    a reservation sequence from {!Stochastic_core.Strategy} as its
    successive walltime requests: attempt [i] requests [t_i], runs
    until it completes, its reservation expires, or its node fails.
    Every closed attempt records its kill cause ({!outcome}) and queue
    wait, producing the [(requested, wait)] records that close the loop
    with {!Platform.Hpc_queue}.

    {b Kill-cause taxonomy.} [Success]: the job completed within the
    reservation. [Timeout]: the reservation expired first — the job is
    resubmitted with the {e next} reservation of its sequence (the
    paper's execution model). [Node_failure]: a node under the job
    died mid-attempt — the request was not too short, so the job
    retries the {e same} reservation (subject to the engine's retry
    policy).

    {b Checkpointing.} A job built with [?checkpoint] follows a
    periodic discipline inside each attempt: restore the last snapshot
    ([restart_cost], when one exists), then alternate [period] hours of
    work with a checkpoint ([checkpoint_cost]); no checkpoint is taken
    at completion. Work covered by a {e completed} checkpoint survives
    both timeouts and node failures, so progress is monotone across
    attempts; uncheckpointed work in the open period is lost with the
    attempt. Without [?checkpoint] every attempt restarts from
    scratch. *)

type outcome = Success | Timeout | Node_failure

val outcome_name : outcome -> string

type attempt = {
  requested : float;  (** Requested walltime [t_i]. *)
  submitted : float;  (** When this attempt entered the queue. *)
  started : float;  (** When it was dispatched. *)
  wait : float;  (** [started - submitted]. *)
  elapsed : float;  (** Node time actually occupied. *)
  outcome : outcome;  (** How the attempt ended. *)
  progress_after : float;  (** Durable work after the attempt closed. *)
}

type checkpoint = {
  params : Stochastic_core.Checkpoint.params;
  period : float;  (** Work hours between snapshots. *)
}

val make_checkpoint :
  params:Stochastic_core.Checkpoint.params -> period:float -> checkpoint
(** @raise Invalid_argument on a non-positive or infinite period. *)

type state = Waiting | Running | Done | Abandoned

type t

val make :
  ?checkpoint:checkpoint ->
  id:int ->
  nodes:int ->
  arrival:float ->
  duration:float ->
  Stochastic_core.Sequence.t ->
  t
(** [make ~id ~nodes ~arrival ~duration s] materialises the prefix of
    [s] needed to cover [duration] and creates a waiting job.
    @raise Invalid_argument on non-positive [nodes]/[duration] or
    negative [arrival].
    @raise Stochastic_core.Sequence.Not_covered if [s] cannot cover
    [duration]. *)

val id : t -> int
val nodes : t -> int
val duration : t -> float
val arrival : t -> float
val state : t -> state

val submitted : t -> float
(** Submission time of the current attempt. *)

val progress : t -> float
(** Durably checkpointed work, in [[0, duration]]. *)

val failures : t -> int
(** Node-failure kills suffered so far. *)

val epoch : t -> int
(** Dispatch counter; increments on every {!start}. The engine tags
    completion events with it to invalidate events scheduled for an
    attempt that a failure already killed. *)

val checkpointed : t -> bool

val request : t -> float
(** Requested walltime of the current attempt. Past the materialised
    prefix (reachable only with checkpointing) the last, covering
    reservation is re-requested. *)

val reservations : t -> float array
(** The materialised reservation prefix (a copy). *)

val remaining : t -> float
(** [duration - progress]. *)

val restore_time : t -> float
(** Snapshot-restore overhead the next attempt pays up front: the
    checkpoint model's [restart_cost] when there is durable progress
    to reload, [0.] otherwise (fresh jobs, uncheckpointed jobs). *)

val attempt_span : t -> float * bool
(** [(span, completes)]: how long the current attempt will occupy its
    nodes if no failure interrupts it, and whether it finishes the job
    ([span] then includes restore and checkpoint overheads) or times
    out ([span] is the full reservation).
    @raise Invalid_argument once the job is [Done] or [Abandoned]. *)

val start : t -> now:float -> unit
(** Transition [Waiting -> Running] at [now] (engine only).
    @raise Invalid_argument if the job is not waiting. *)

val finish_attempt : t -> now:float -> bool
(** [finish_attempt j ~now] closes the running attempt at its natural
    end: records it, and either completes the job (returns [true]) or
    resubmits it at [now] with the next reservation (returns [false]).
    @raise Invalid_argument if the job is not running.
    @raise Stochastic_core.Sequence.Not_covered if checkpoint overheads
    make progress impossible (no snapshot ever completes inside the
    last, largest reservation). *)

val interrupt : t -> now:float -> unit
(** [interrupt j ~now] kills the running attempt mid-flight (node
    failure): records it with outcome [Node_failure], salvages
    checkpointed progress, and leaves the job [Waiting] on the same
    reservation. The engine then either {!resubmit}s or {!abandon}s it.
    @raise Invalid_argument if the job is not running. *)

val resubmit : t -> at:float -> unit
(** Re-queue a failure-killed job at time [at] (>= kill time when the
    retry policy imposes a backoff delay).
    @raise Invalid_argument if the job is not waiting. *)

val abandon : t -> unit
(** Give up on a failure-killed job (retry budget exhausted).
    @raise Invalid_argument if the job is not waiting. *)

val attempts : t -> attempt array
(** All closed attempts in chronological order. *)

val finish_time : t -> float
(** @raise Invalid_argument if the job is not [Done]. *)

val total_wait : t -> float
(** Sum of queue waits over all closed attempts. *)

val response : t -> float
(** [finish_time - arrival]. @raise Invalid_argument unless [Done]. *)

val stretch : t -> float
(** [response / duration >= 1]. @raise Invalid_argument unless
    [Done]. *)
