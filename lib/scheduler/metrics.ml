module Cost_model = Stochastic_core.Cost_model

type job_metrics = {
  id : int;
  nodes : int;
  duration : float;
  attempts : int;
  failures : int;
  total_wait : float;
  response : float;
  stretch : float;
  cost : float;
}

type summary = {
  jobs : int;
  completed : int;
  abandoned : int;
  nodes : int;
  policy : string;
  makespan : float;
  utilization : float;
  mean_wait : float;
  mean_stretch : float;
  p95_stretch : float;
  max_stretch : float;
  mean_attempts : float;
  mean_cost : float;
  node_failures : int;
  failure_kills : int;
  timeout_kills : int;
  goodput_node_time : float;
  failure_node_time : float;
  timeout_node_time : float;
  per_job : job_metrics array;
}

(* Attempt pricing by kill cause: completed and timed-out attempts pay
   their full reservation at alpha (the machine was booked), while a
   failure-killed attempt is billed only for the node-time it actually
   occupied — the platform revoked the capacity, as on spot markets.
   Every attempt pays the per-submission fee gamma. *)
let attempt_cost model (a : Job.attempt) =
  match a.Job.outcome with
  | Job.Success | Job.Timeout ->
      Cost_model.reservation_cost model ~reserved:a.Job.requested
        ~actual:a.Job.elapsed
  | Job.Node_failure ->
      Cost_model.reservation_cost model ~reserved:a.Job.elapsed
        ~actual:a.Job.elapsed

let job_cost model j =
  let acc = Numerics.Kahan.create () in
  Array.iter
    (fun a -> Numerics.Kahan.add acc (attempt_cost model a))
    (Job.attempts j);
  Numerics.Kahan.sum acc

let summarize ~model (r : Engine.result) =
  let done_jobs =
    Array.of_list
      (List.filter
         (fun j -> Job.state j = Job.Done)
         (Array.to_list r.Engine.jobs))
  in
  let per_job =
    Array.map
      (fun j ->
        {
          id = Job.id j;
          nodes = Job.nodes j;
          duration = Job.duration j;
          attempts = Array.length (Job.attempts j);
          failures = Job.failures j;
          total_wait = Job.total_wait j;
          response = Job.response j;
          stretch = Job.stretch j;
          cost = job_cost model j;
        })
      done_jobs
  in
  let mean f =
    if Array.length per_job = 0 then 0.0
    else Numerics.Stats.mean (Array.map f per_job)
  in
  let stretches = Array.map (fun m -> m.stretch) per_job in
  Array.sort compare stretches;
  let n = Array.length stretches in
  (* Node-time split by kill cause, over every attempt of every job
     (abandoned ones included: their burnt node-hours are real). *)
  let failure_kills = ref 0 and timeout_kills = ref 0 in
  let good = Numerics.Kahan.create ()
  and fail = Numerics.Kahan.create ()
  and tout = Numerics.Kahan.create () in
  Array.iter
    (fun j ->
      let nodes = float_of_int (Job.nodes j) in
      Array.iter
        (fun (a : Job.attempt) ->
          let node_time = nodes *. a.Job.elapsed in
          match a.Job.outcome with
          | Job.Success -> Numerics.Kahan.add good node_time
          | Job.Timeout ->
              incr timeout_kills;
              Numerics.Kahan.add tout node_time
          | Job.Node_failure ->
              incr failure_kills;
              Numerics.Kahan.add fail node_time)
        (Job.attempts j))
    r.Engine.jobs;
  {
    jobs = Array.length r.Engine.jobs;
    completed = Array.length done_jobs;
    abandoned = r.Engine.abandoned;
    nodes = r.Engine.nodes;
    policy = Policy.name r.Engine.policy;
    makespan = r.Engine.makespan;
    utilization = Engine.utilization r;
    mean_wait = mean (fun m -> m.total_wait);
    mean_stretch = mean (fun m -> m.stretch);
    (* Nearest-rank, not interpolated: a reported tail stretch should
       be one a job actually experienced (see Stats.quantile_nearest_rank). *)
    p95_stretch =
      (if n = 0 then 0.0
       else Numerics.Stats.quantile_nearest_rank_sorted stretches 0.95);
    max_stretch = (if n = 0 then 0.0 else stretches.(n - 1));
    mean_attempts = mean (fun m -> float_of_int m.attempts);
    mean_cost = mean (fun m -> m.cost);
    node_failures = r.Engine.node_failures;
    failure_kills = !failure_kills;
    timeout_kills = !timeout_kills;
    goodput_node_time = Numerics.Kahan.sum good;
    failure_node_time = Numerics.Kahan.sum fail;
    timeout_node_time = Numerics.Kahan.sum tout;
    per_job;
  }

let badput s = s.failure_node_time +. s.timeout_node_time

let goodput_fraction s =
  let total = s.goodput_node_time +. badput s in
  if total <= 0.0 then 1.0 else s.goodput_node_time /. total

(* ------------------------ closing the loop ------------------------ *)

let wait_records (r : Engine.result) =
  let records = ref [] in
  Array.iter
    (fun j ->
      Array.iter
        (fun (a : Job.attempt) ->
          records :=
            {
              Platform.Hpc_queue.requested = a.Job.requested;
              wait = a.Job.wait;
            }
            :: !records)
        (Job.attempts j))
    r.Engine.jobs;
  Array.of_list (List.rev !records)

let clamp_groups groups n = max 2 (min groups (n / 5))

let measured_fit ?(groups = 20) log =
  let n = Array.length log in
  if n < 10 then
    invalid_arg "Metrics.measured_fit: need at least 10 wait records";
  Platform.Hpc_queue.fit
    (Platform.Hpc_queue.bin_log ~groups:(clamp_groups groups n) log)

let measured_cost_model ?(beta = 1.0) ?groups (r : Engine.result) =
  let fit = measured_fit ?groups (wait_records r) in
  (fit, Platform.Hpc_queue.cost_model_of_fit ~beta fit)

let pp_summary fmt s =
  Format.fprintf fmt
    "%d/%d jobs done on %d nodes (%s): makespan %.2f h, utilization %.1f%%,@ \
     mean wait %.3f h, mean stretch %.3f (p95 %.3f, max %.3f),@ %.2f \
     submissions/job, mean cost %.4f"
    s.completed s.jobs s.nodes s.policy s.makespan
    (100.0 *. s.utilization)
    s.mean_wait s.mean_stretch s.p95_stretch s.max_stretch s.mean_attempts
    s.mean_cost;
  if s.node_failures > 0 || s.abandoned > 0 then
    Format.fprintf fmt
      ",@ %d node failures (%d attempts killed, %d abandoned jobs),@ \
       node-time: %.1f good / %.1f lost to failures / %.1f lost to timeouts \
       (goodput %.1f%%)"
      s.node_failures s.failure_kills s.abandoned s.goodput_node_time
      s.failure_node_time s.timeout_node_time
      (100.0 *. goodput_fraction s)
