module Cost_model = Stochastic_core.Cost_model

type job_metrics = {
  id : int;
  nodes : int;
  duration : float;
  attempts : int;
  total_wait : float;
  response : float;
  stretch : float;
  cost : float;
}

type summary = {
  jobs : int;
  nodes : int;
  policy : string;
  makespan : float;
  utilization : float;
  mean_wait : float;
  mean_stretch : float;
  p95_stretch : float;
  max_stretch : float;
  mean_attempts : float;
  mean_cost : float;
  per_job : job_metrics array;
}

let job_cost model j =
  let acc = Numerics.Kahan.create () in
  Array.iter
    (fun (a : Job.attempt) ->
      Numerics.Kahan.add acc
        (Cost_model.reservation_cost model ~reserved:a.Job.requested
           ~actual:(Job.duration j)))
    (Job.attempts j);
  Numerics.Kahan.sum acc

let summarize ~model (r : Engine.result) =
  let per_job =
    Array.map
      (fun j ->
        {
          id = Job.id j;
          nodes = Job.nodes j;
          duration = Job.duration j;
          attempts = Array.length (Job.attempts j);
          total_wait = Job.total_wait j;
          response = Job.response j;
          stretch = Job.stretch j;
          cost = job_cost model j;
        })
      r.Engine.jobs
  in
  let mean f =
    if Array.length per_job = 0 then 0.0
    else Numerics.Stats.mean (Array.map f per_job)
  in
  let stretches = Array.map (fun m -> m.stretch) per_job in
  Array.sort compare stretches;
  let n = Array.length stretches in
  {
    jobs = n;
    nodes = r.Engine.nodes;
    policy = Policy.name r.Engine.policy;
    makespan = r.Engine.makespan;
    utilization = Engine.utilization r;
    mean_wait = mean (fun m -> m.total_wait);
    mean_stretch = mean (fun m -> m.stretch);
    p95_stretch =
      (if n = 0 then 0.0 else Numerics.Stats.quantiles_sorted stretches 0.95);
    max_stretch = (if n = 0 then 0.0 else stretches.(n - 1));
    mean_attempts = mean (fun m -> float_of_int m.attempts);
    mean_cost = mean (fun m -> m.cost);
    per_job;
  }

(* ------------------------ closing the loop ------------------------ *)

let wait_records (r : Engine.result) =
  let records = ref [] in
  Array.iter
    (fun j ->
      Array.iter
        (fun (a : Job.attempt) ->
          records :=
            {
              Platform.Hpc_queue.requested = a.Job.requested;
              wait = a.Job.wait;
            }
            :: !records)
        (Job.attempts j))
    r.Engine.jobs;
  Array.of_list (List.rev !records)

let clamp_groups groups n = max 2 (min groups (n / 5))

let measured_fit ?(groups = 20) log =
  let n = Array.length log in
  if n < 10 then
    invalid_arg "Metrics.measured_fit: need at least 10 wait records";
  Platform.Hpc_queue.fit
    (Platform.Hpc_queue.bin_log ~groups:(clamp_groups groups n) log)

let measured_cost_model ?(beta = 1.0) ?groups (r : Engine.result) =
  let fit = measured_fit ?groups (wait_records r) in
  (fit, Platform.Hpc_queue.cost_model_of_fit ~beta fit)

let pp_summary fmt s =
  Format.fprintf fmt
    "%d jobs on %d nodes (%s): makespan %.2f h, utilization %.1f%%,@ mean \
     wait %.3f h, mean stretch %.3f (p95 %.3f, max %.3f),@ %.2f \
     submissions/job, mean cost %.4f"
    s.jobs s.nodes s.policy s.makespan
    (100.0 *. s.utilization)
    s.mean_wait s.mean_stretch s.p95_stretch s.max_stretch s.mean_attempts
    s.mean_cost
