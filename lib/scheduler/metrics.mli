(** Cluster-level metrics and the measurement loop back into
    {!Platform.Hpc_queue}.

    The paper {e assumes} an affine wait-time model
    [wait ~ alpha * requested + gamma] fitted offline; this module
    {e measures} it: every attempt in a simulation contributes a
    [(requested, wait)] record, and the existing binning/OLS pipeline
    of {!Platform.Hpc_queue} recovers [(alpha, gamma)] from simulated
    contention, yielding a self-consistent {!Stochastic_core.Cost_model}. *)

type job_metrics = {
  id : int;
  nodes : int;
  duration : float;
  attempts : int;  (** Submissions paid. *)
  total_wait : float;  (** Queue wait summed over attempts. *)
  response : float;  (** Completion minus first arrival. *)
  stretch : float;  (** [response / duration], [>= 1]. *)
  cost : float;  (** Modeled cost [C(k, t)] under the cost model. *)
}

type summary = {
  jobs : int;
  nodes : int;
  policy : string;
  makespan : float;
  utilization : float;  (** Allocated node-time over [nodes * makespan]. *)
  mean_wait : float;
  mean_stretch : float;
  p95_stretch : float;
  max_stretch : float;
  mean_attempts : float;
  mean_cost : float;
  per_job : job_metrics array;
}

val job_cost : Stochastic_core.Cost_model.t -> Job.t -> float
(** Eq. (2) cost of a completed job's attempt history: each failed
    reservation pays in full, the last pays for the actual runtime.
    With a single job in flight this equals
    [Platform.Simulator.run_job]'s [total_cost]. *)

val summarize : model:Stochastic_core.Cost_model.t -> Engine.result -> summary

val wait_records : Engine.result -> Platform.Hpc_queue.log
(** One [(requested, wait)] record per attempt, the raw material of
    the Fig. 2 pipeline. *)

val measured_fit : ?groups:int -> Platform.Hpc_queue.log -> Numerics.Regression.fit
(** Bin into at most [groups] (default [20], reduced for small logs)
    equally-populated groups and fit the affine wait-time function.
    @raise Invalid_argument on fewer than 10 records. *)

val measured_cost_model :
  ?beta:float ->
  ?groups:int ->
  Engine.result ->
  Numerics.Regression.fit * Stochastic_core.Cost_model.t
(** Measure [(alpha, gamma)] from a simulation and instantiate the
    STOCHASTIC cost model ([beta] defaults to [1.]: jobs pay their
    runtime).
    @raise Invalid_argument if the measured slope is non-positive or
    the intercept negative (no usable affine contention signal). *)

val pp_summary : Format.formatter -> summary -> unit
