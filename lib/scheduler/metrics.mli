(** Cluster-level metrics, failure accounting, and the measurement
    loop back into {!Platform.Hpc_queue}.

    The paper {e assumes} an affine wait-time model
    [wait ~ alpha * requested + gamma] fitted offline; this module
    {e measures} it: every attempt in a simulation contributes a
    [(requested, wait)] record, and the existing binning/OLS pipeline
    of {!Platform.Hpc_queue} recovers [(alpha, gamma)] from simulated
    contention, yielding a self-consistent {!Stochastic_core.Cost_model}.

    Under fault injection the summary additionally splits consumed
    node-time by kill cause: {e goodput} (attempts that completed
    their job, checkpoint overheads included), node-time lost to
    reservation timeouts, and node-time lost to node failures. *)

type job_metrics = {
  id : int;
  nodes : int;
  duration : float;
  attempts : int;  (** Submissions paid. *)
  failures : int;  (** Attempts killed by node failures. *)
  total_wait : float;  (** Queue wait summed over attempts. *)
  response : float;  (** Completion minus first arrival. *)
  stretch : float;  (** [response / duration], [>= 1]. *)
  cost : float;  (** Modeled cost [C(k, t)] under the cost model. *)
}

type summary = {
  jobs : int;  (** Submitted. *)
  completed : int;  (** Reached [Done]. *)
  abandoned : int;  (** Exhausted the failure-retry budget. *)
  nodes : int;
  policy : string;
  makespan : float;
  utilization : float;  (** Allocated node-time over [nodes * makespan]. *)
  mean_wait : float;
  mean_stretch : float;
  p95_stretch : float;
      (** Nearest-rank 95th percentile ({!Numerics.Stats.quantile_nearest_rank}):
          always a stretch some completed job actually had. *)
  max_stretch : float;
  mean_attempts : float;
  mean_cost : float;
  node_failures : int;  (** Node outages during the run. *)
  failure_kills : int;  (** Attempts killed by failures. *)
  timeout_kills : int;  (** Attempts killed by reservation expiry. *)
  goodput_node_time : float;  (** Node-time of completing attempts. *)
  failure_node_time : float;  (** Node-time burnt by failed attempts. *)
  timeout_node_time : float;  (** Node-time burnt by timeouts. *)
  per_job : job_metrics array;  (** Completed jobs only. *)
}

val attempt_cost : Stochastic_core.Cost_model.t -> Job.attempt -> float
(** Cost of one attempt. Completed and timed-out attempts pay their
    full reservation at [alpha]; a failure-killed attempt pays only for
    the node-time it occupied (the platform revoked the capacity, as
    on spot markets). Every attempt pays [gamma]. *)

val job_cost : Stochastic_core.Cost_model.t -> Job.t -> float
(** Eq. (2) cost of a job's attempt history, generalised by
    {!attempt_cost}. With a single reliable job in flight this equals
    [Platform.Simulator.run_job]'s [total_cost]. *)

val summarize : model:Stochastic_core.Cost_model.t -> Engine.result -> summary
(** Wait/stretch/cost means are over completed jobs; the node-time
    split counts every attempt, abandoned jobs included. *)

val badput : summary -> float
(** [failure_node_time + timeout_node_time]. *)

val goodput_fraction : summary -> float
(** Goodput over total consumed node-time ([1.] when nothing ran). *)

val wait_records : Engine.result -> Platform.Hpc_queue.log
(** One [(requested, wait)] record per attempt, the raw material of
    the Fig. 2 pipeline. *)

val measured_fit : ?groups:int -> Platform.Hpc_queue.log -> Numerics.Regression.fit
(** Bin into at most [groups] (default [20], reduced for small logs)
    equally-populated groups and fit the affine wait-time function.
    @raise Invalid_argument on fewer than 10 records or a degenerate
    log (see {!Platform.Hpc_queue.bin_log}). *)

val measured_cost_model :
  ?beta:float ->
  ?groups:int ->
  Engine.result ->
  Numerics.Regression.fit * Stochastic_core.Cost_model.t
(** Measure [(alpha, gamma)] from a simulation and instantiate the
    STOCHASTIC cost model ([beta] defaults to [1.]: jobs pay their
    runtime).
    @raise Invalid_argument if the measured slope is non-positive or
    the intercept negative (no usable affine contention signal). *)

val pp_summary : Format.formatter -> summary -> unit
