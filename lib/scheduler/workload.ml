module Dist = Distributions.Dist

type spec = {
  jobs : int;
  arrival_rate : float;
  nodes_min : int;
  nodes_max : int;
  scale_min : float;
  scale_max : float;
}

let make_spec ?(nodes_min = 1) ?(nodes_max = 8) ?(scale_min = 1.0)
    ?(scale_max = 1.0) ~jobs ~arrival_rate () =
  if jobs <= 0 then invalid_arg "Workload.make_spec: jobs must be positive";
  if not (Float.is_finite arrival_rate) || arrival_rate <= 0.0 then
    invalid_arg "Workload.make_spec: arrival rate must be positive";
  if nodes_min <= 0 || nodes_max < nodes_min then
    invalid_arg "Workload.make_spec: need 0 < nodes_min <= nodes_max";
  if
    (not (Float.is_finite scale_min))
    || (not (Float.is_finite scale_max))
    || scale_min <= 0.0
    || scale_max < scale_min
  then invalid_arg "Workload.make_spec: need 0 < scale_min <= scale_max";
  { jobs; arrival_rate; nodes_min; nodes_max; scale_min; scale_max }

let mean_job_nodes spec =
  float_of_int (spec.nodes_min + spec.nodes_max) /. 2.0

(* Mean of a log-uniform draw on [lo, hi]: (hi - lo) / ln (hi / lo). *)
let log_uniform_mean lo hi =
  if hi -. lo < 1e-12 *. lo then lo else (hi -. lo) /. log (hi /. lo)

let mean_scale spec = log_uniform_mean spec.scale_min spec.scale_max

(* Expected node-hours a single job consumes under a reservation
   sequence: the successful attempt runs the true duration, and every
   failed attempt [t_i < X] burns its full reservation first, so
   E[consumed] = E[X] + sum_i t_i * P(X > t_i). Without this waste
   term a nominal load of 0.7 can already saturate the cluster. *)
let expected_consumed d sequence =
  let prefix =
    Stochastic_core.Sequence.prefix_until
      (fun t -> Dist.sf d t < 1e-12)
      sequence
  in
  let acc = Numerics.Kahan.create () in
  Numerics.Kahan.add acc d.Dist.mean;
  Array.iter (fun t -> Numerics.Kahan.add acc (t *. Dist.sf d t)) prefix;
  Numerics.Kahan.sum acc

let rate_for_load ?(nodes_min = 1) ?(nodes_max = 8) ?(scale_min = 1.0)
    ?(scale_max = 1.0) ?sequence ~load ~cluster_nodes d =
  if not (Float.is_finite load) || load <= 0.0 then
    invalid_arg "Workload.rate_for_load: load must be positive";
  if cluster_nodes <= 0 then
    invalid_arg "Workload.rate_for_load: cluster_nodes must be positive";
  let hours_per_job =
    match sequence with
    | Some s -> expected_consumed d s
    | None -> d.Dist.mean
  in
  let mean_nodes = float_of_int (nodes_min + nodes_max) /. 2.0 in
  let work_per_job =
    hours_per_job *. mean_nodes *. log_uniform_mean scale_min scale_max
  in
  if not (Float.is_finite work_per_job) || work_per_job <= 0.0 then
    invalid_arg "Workload.rate_for_load: expected work must be positive";
  load *. float_of_int cluster_nodes /. work_per_job

let offered_load ?sequence spec ~cluster_nodes d =
  let hours_per_job =
    match sequence with
    | Some s -> expected_consumed d s
    | None -> d.Dist.mean
  in
  spec.arrival_rate *. hours_per_job *. mean_job_nodes spec *. mean_scale spec
  /. float_of_int cluster_nodes

let generate ?checkpoint spec d ~sequence rng =
  let clock = ref 0.0 in
  Array.init spec.jobs (fun id ->
      clock :=
        !clock
        +. Randomness.Sampler.exponential rng ~rate:spec.arrival_rate;
      (* Per-job size class: durations and reservations both scale by a
         log-uniform factor, modelling a user population whose job
         sizes span a wide range while each user follows the paper's
         strategy on their own (scaled) distribution. This is what
         spreads requested walltimes across the log, as in real
         scheduler traces. *)
      let scale =
        if spec.scale_max -. spec.scale_min < 1e-12 *. spec.scale_min then
          spec.scale_min
        else
          exp
            (Randomness.Rng.uniform rng (log spec.scale_min)
               (log spec.scale_max))
      in
      let duration = Float.max 1e-9 (scale *. d.Dist.sample rng) in
      let nodes =
        spec.nodes_min
        + Randomness.Rng.int rng (spec.nodes_max - spec.nodes_min + 1)
      in
      let scaled_sequence = Seq.map (fun t -> scale *. t) sequence in
      (* The checkpoint discipline scales with the job's size class:
         snapshot state (and therefore snapshot/restore time) grows
         with the job, and the period keeps the same proportional
         overhead a user would tune for their own jobs. *)
      let checkpoint =
        Option.map
          (fun (c : Job.checkpoint) ->
            Job.make_checkpoint
              ~params:
                (Stochastic_core.Checkpoint.make_params
                   ~checkpoint_cost:
                     (scale
                     *. c.Job.params.Stochastic_core.Checkpoint.checkpoint_cost)
                   ~restart_cost:
                     (scale
                     *. c.Job.params.Stochastic_core.Checkpoint.restart_cost))
              ~period:(scale *. c.Job.period))
          checkpoint
      in
      Job.make ?checkpoint ~id ~nodes ~arrival:!clock ~duration scaled_sequence)
