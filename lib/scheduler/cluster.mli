(** Node-constrained cluster state with per-node identity.

    Each node is up or down (fault injection) and free or allocated
    (dispatch). Allocation returns concrete node ids — lowest-numbered
    free nodes first, so placement is deterministic and the engine
    knows exactly which job a node failure kills. Busy node-time is
    integrated over simulated time with compensated summation, so
    utilization is exact up to floating-point rounding even over
    millions of events. The engine calls {!advance} before every state
    change so the busy integral is piecewise-constant between events. *)

type t

val create : nodes:int -> t
(** All nodes start up and free. @raise Invalid_argument if
    [nodes <= 0]. *)

val nodes : t -> int
(** Total configured node count (up or down). *)

val free : t -> int
(** Nodes currently up {e and} unallocated — the dispatchable pool. *)

val busy_nodes : t -> int
(** Nodes currently allocated to jobs. *)

val up_nodes : t -> int
(** Nodes currently up (allocated or free). *)

val is_up : t -> int -> bool
(** @raise Invalid_argument on an out-of-range node id. *)

val advance : t -> float -> unit
(** [advance t now] accumulates busy node-time up to [now] and moves
    the internal clock forward. Idempotent at the same instant.
    @raise Invalid_argument if [now] precedes the clock.
    @raise Failure if the busy-node count has been corrupted outside
    [[0, nodes]] (engine invariant check). *)

val allocate : t -> int -> int list
(** [allocate t n] marks the [n] lowest-numbered free nodes allocated
    and returns their ids.
    @raise Invalid_argument if [n <= 0] or [n > free t]. *)

val release : t -> int list -> unit
(** [release t ids] returns [ids] to the free pool (down nodes stay
    out of it until {!mark_up}).
    @raise Invalid_argument on an empty list or an unallocated id. *)

val mark_down : t -> int -> unit
(** Take a node out of service. The engine must kill and release the
    occupying job first.
    @raise Invalid_argument if the node is already down or still
    allocated. *)

val mark_up : t -> int -> unit
(** Return a repaired node to the free pool.
    @raise Invalid_argument if the node is already up. *)

val clock : t -> float
(** Simulated time the busy integral has been advanced to. *)

val busy_node_time : t -> float
(** Integrated busy node-time up to the current clock. *)

val utilization : t -> float
(** [busy_node_time / (nodes * clock)], clamped to [[0, 1]]; [0.] at
    time zero. The denominator uses the configured node count, so time
    lost to outages shows up as lost utilization. *)
