(** Node-constrained cluster state.

    Tracks the free/busy node split and integrates busy node-time over
    simulated time with compensated summation, so that utilization is
    exact up to floating-point rounding even over millions of events.
    The engine calls {!advance} before every allocation/release so the
    busy integral is piecewise-constant between events. *)

type t

val create : nodes:int -> t
(** @raise Invalid_argument if [nodes <= 0]. *)

val nodes : t -> int
(** Total node count. *)

val free : t -> int
(** Currently free nodes. *)

val busy_nodes : t -> int
(** [nodes t - free t]. *)

val advance : t -> float -> unit
(** [advance t now] accumulates busy node-time up to [now] and moves
    the internal clock forward. Idempotent at the same instant.
    @raise Invalid_argument if [now] precedes the clock. *)

val allocate : t -> int -> unit
(** [allocate t n] marks [n] nodes busy.
    @raise Invalid_argument if [n <= 0] or [n > free t]. *)

val release : t -> int -> unit
(** [release t n] returns [n] nodes to the free pool.
    @raise Invalid_argument on over-release. *)

val busy_node_time : t -> float
(** Integrated busy node-time up to the current clock. *)

val utilization : t -> float
(** [busy_node_time / (nodes * clock)], clamped to [[0, 1]]; [0.] at
    time zero. *)
