module Spot_cost = Stochastic_core.Spot_cost
module Trace = Stochobs.Trace

type result = {
  reps : int;
  mean_cost : float;
  stderr : float;
  attempts : int;
  revocations : int;
  resumes : int;
  incomplete : int;
}

let run ?(obs = Trace.null) ?(metrics = Stochobs.Metrics.default)
    ?(reps = 10_000) ?(seed = 42) ?max_slots regime m d plan =
  if reps <= 0 then invalid_arg "Spot_sim.run: reps must be positive";
  let m_reps = Stochobs.Metrics.counter metrics "spot.sim.reps" in
  let m_attempts = Stochobs.Metrics.counter metrics "spot.sim.attempts" in
  let m_revocations = Stochobs.Metrics.counter metrics "spot.sim.revocations" in
  let m_resumes = Stochobs.Metrics.counter metrics "spot.sim.resumes" in
  let max_slots =
    match max_slots with
    | None -> Array.length plan.Spot_cost.lengths + 128
    | Some k -> if k <= 0 then invalid_arg "Spot_sim.run: max_slots must be positive" else k
  in
  let rate = regime.Spot_cost.revocation_rate in
  let revocation_mtbf = if rate > 0.0 then 1.0 /. rate else infinity in
  let faults =
    Faults.create (Faults.make ~seed (Faults.exponential ~mtbf:revocation_mtbf)) ~nodes:reps
  in
  let sizes = Distributions.Dist.samples d (Randomness.Rng.create ~seed ()) reps in
  Trace.with_span obs "scheduler.spot_sim.run"
    ~attrs:
      [
        ("reps", Trace.Int reps);
        ("rate", Trace.Num rate);
        ("price_ratio", Trace.Num regime.Spot_cost.price_ratio);
        ("slots", Trace.Int (Array.length plan.Spot_cost.lengths));
      ]
  @@ fun () ->
  let sum = Numerics.Kahan.create () in
  let sumsq = Numerics.Kahan.create () in
  let attempts = ref 0 in
  let revocations = ref 0 in
  let resumes = ref 0 in
  let incomplete = ref 0 in
  for i = 0 to reps - 1 do
    let total = sizes.(i) in
    let cost = ref 0.0 in
    let progress = ref 0.0 in
    let finished = ref false in
    let k = ref 0 in
    while (not !finished) && !k < max_slots do
      let length, tier = Spot_cost.slot plan !k in
      let revocation =
        match tier with
        | Spot_cost.On_demand -> infinity
        | Spot_cost.Spot -> Faults.uptime faults ~node:i
      in
      if !progress > 0.0 then incr resumes;
      let o =
        Spot_cost.slot_outcome regime m ~tier ~length ~progress:!progress ~total
          ~revocation
      in
      incr attempts;
      if o.Spot_cost.revoked then incr revocations;
      cost := !cost +. o.Spot_cost.billed;
      progress := o.Spot_cost.progress;
      finished := o.Spot_cost.finished;
      incr k
    done;
    if not !finished then incr incomplete;
    Numerics.Kahan.add sum !cost;
    Numerics.Kahan.add sumsq (!cost *. !cost)
  done;
  Stochobs.Metrics.add m_reps reps;
  Stochobs.Metrics.add m_attempts !attempts;
  Stochobs.Metrics.add m_revocations !revocations;
  Stochobs.Metrics.add m_resumes !resumes;
  let n = float_of_int reps in
  let mean = Numerics.Kahan.sum sum /. n in
  let var = Float.max 0.0 ((Numerics.Kahan.sum sumsq /. n) -. (mean *. mean)) in
  let std_err = sqrt (var /. n) in
  Trace.annotate obs
    [
      ("mean_cost", Trace.Num mean);
      ("revocations", Trace.Int !revocations);
      ("incomplete", Trace.Int !incomplete);
    ];
  {
    reps;
    mean_cost = mean;
    stderr = std_err;
    attempts = !attempts;
    revocations = !revocations;
    resumes = !resumes;
    incomplete = !incomplete;
  }
