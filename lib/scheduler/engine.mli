(** Deterministic discrete-event simulator of a node-constrained
    cluster running many stochastic jobs concurrently.

    Events (arrivals, reservation kills, completions) are drained from
    a binary-heap {!Event_queue}; after each event the configured
    {!Policy} dispatches pending jobs. A job that times out is
    resubmitted immediately with its next reservation, so the paper's
    sequence-of-reservations execution model plays out under real
    contention — queue waits emerge from the simulation instead of
    being assumed affine. All randomness lives in the workload;
    the engine itself is purely deterministic, and simultaneous events
    are ordered by scheduling sequence, so a fixed
    {!Randomness.Rng} seed reproduces runs bit-for-bit. *)

type config = { nodes : int; policy : Policy.t }

type result = {
  jobs : Job.t array;  (** The input jobs, all [Done] on return. *)
  nodes : int;
  policy : Policy.t;
  makespan : float;  (** Last completion time. *)
  busy_node_time : float;  (** Integrated allocated node-time. *)
  events : int;  (** Events processed (diagnostics). *)
}

val run : config -> Job.t array -> result
(** [run config jobs] simulates to completion and returns the final
    state. The [jobs] array is mutated in place (attempt histories).
    @raise Invalid_argument if a job needs more nodes than the cluster
    has. *)

val utilization : result -> float
(** [busy_node_time / (nodes * makespan)], clamped to [[0, 1]]. *)
