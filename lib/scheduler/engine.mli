(** Deterministic discrete-event simulator of a node-constrained,
    {e fallible} cluster running many stochastic jobs concurrently.

    Events (arrivals, attempt ends, node failures and repairs) are
    drained from a binary-heap {!Event_queue}; after each event the
    configured {!Policy} dispatches pending jobs. A job that times out
    is resubmitted immediately with its next reservation, so the
    paper's sequence-of-reservations execution model plays out under
    real contention — queue waits emerge from the simulation instead of
    being assumed affine.

    With a {!Faults.config}, per-node [Node_down]/[Node_up] events
    shrink and grow the dispatchable pool. A failure under a running
    job kills the attempt mid-flight (kill cause [Node_failure], as
    opposed to a reservation [Timeout]); checkpointed jobs resume from
    their last snapshot, and the {!retry} policy bounds how many times
    a job is resubmitted after failures (with an optional backoff
    delay) before being abandoned.

    All randomness lives in the workload and the seeded fault traces;
    the engine itself is purely deterministic, and simultaneous events
    are ordered by scheduling sequence, so fixed seeds reproduce runs
    bit-for-bit. With no faults configured the engine is event-for-
    event identical to the failure-free simulator. *)

type retry = {
  max_retries : int option;
      (** Failure-caused resubmissions allowed per job; [None] =
          unlimited. Timeouts never count against this budget. *)
  backoff : float;  (** Delay before re-queueing a failure-killed job. *)
}

val unlimited_retries : retry
(** [{ max_retries = None; backoff = 0. }] — the default. *)

val make_retry : ?max_retries:int -> ?backoff:float -> unit -> retry
(** @raise Invalid_argument on negative arguments. *)

type config = {
  nodes : int;
  policy : Policy.t;
  faults : Faults.config option;  (** [None] = perfectly reliable. *)
  retry : retry;
  obs : Stochobs.Trace.sink;
      (** Trace sink for the run span and outage events; defaults to
          {!Stochobs.Trace.null}. *)
}

val make_config :
  ?obs:Stochobs.Trace.sink ->
  ?faults:Faults.config ->
  ?retry:retry ->
  nodes:int ->
  policy:Policy.t ->
  unit ->
  config

type result = {
  jobs : Job.t array;
      (** The input jobs, each [Done] or [Abandoned] on return. *)
  nodes : int;
  policy : Policy.t;
  makespan : float;  (** Last completion time. *)
  busy_node_time : float;  (** Integrated allocated node-time. *)
  events : int;  (** Events processed (diagnostics). *)
  node_failures : int;  (** [Node_down] events processed. *)
  abandoned : int;  (** Jobs that exhausted their retry budget. *)
}

val run : config -> Job.t array -> result
(** [run config jobs] simulates until every job is [Done] or
    [Abandoned] and returns the final state. The [jobs] array is
    mutated in place (attempt histories, checkpoint progress). With a
    live [config.obs] the whole simulation runs inside a
    ["scheduler.engine.run"] span annotated with the final makespan
    and event count, and each outage emits a
    ["scheduler.engine.node_down"]/[..node_up] point event.
    @raise Invalid_argument if a job needs more nodes than the cluster
    has.
    @raise Failure on internal invariant violations: a job dispatched
    before its submission time (event-order corruption) or a negative
    busy-time integral. *)

val utilization : result -> float
(** [busy_node_time / (nodes * makespan)], clamped to [[0, 1]]. Node
    outages depress it: down time is capacity the denominator still
    counts. *)
