(** Pluggable queueing policies: FCFS and EASY backfilling.

    A policy is a pure dispatch rule: given the instantaneous cluster
    state and the pending queue, it decides which waiting jobs to start
    now. Keeping it pure (no mutation, arrays in, indices out) makes
    the EASY invariant — {e a backfilled job never delays the queue
    head} — directly property-testable.

    Because the simulator kills a job exactly at its reservation end,
    reservation ends are hard release guarantees; EASY's shadow time is
    therefore exact, and the backfill condition is sound rather than
    speculative. *)

type t =
  | Fcfs  (** Strict arrival order; the queue head blocks everyone. *)
  | Easy_backfill
      (** Start in order until blocked, then backfill any later job
          that fits in the free nodes and either terminates by the
          head's shadow time or uses only the head's spare nodes. *)

val name : t -> string
val of_string : string -> t option
val all : t list

val shadow :
  free:int -> needed:int -> (float * int) list -> (float * int) option
(** [shadow ~free ~needed running] is the earliest instant at which
    [needed] nodes are simultaneously available, together with the
    spare nodes at that instant, given [free] nodes now and running
    reservations [(reservation_end, nodes)]. [None] if [needed]
    exceeds the whole machine. Exposed for the invariant tests. *)

val select :
  t ->
  now:float ->
  free:int ->
  running:(float * int) list ->
  (int * float) array ->
  int list
(** [select p ~now ~free ~running queue] returns the indices (into
    [queue], in dispatch order) of the pending jobs to start at [now].
    [queue] lists the pending jobs in FCFS order as
    [(nodes, requested_walltime)]; [running] lists the running
    reservations as [(reservation_end, nodes)]. *)
