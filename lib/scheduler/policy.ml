type t = Fcfs | Easy_backfill

let name = function Fcfs -> "fcfs" | Easy_backfill -> "easy"

let of_string s =
  match String.lowercase_ascii s with
  | "fcfs" -> Some Fcfs
  | "easy" | "easy-backfill" | "backfill" -> Some Easy_backfill
  | _ -> None

let all = [ Fcfs; Easy_backfill ]

(* Earliest time at which [needed] nodes are simultaneously free, given
   [free] nodes now and running reservations [(end_time, nodes)]. Since
   every running job is killed at its reservation end, reservation ends
   are hard upper bounds on release times — the shadow time computed
   here is a guarantee, not an estimate. Returns the shadow time and
   the nodes left over at that instant, or [None] when [needed] exceeds
   the whole machine. *)
let shadow ~free ~needed running =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) running in
  let rec go avail = function
    | [] -> None
    | (ends, nodes) :: rest ->
        let avail = avail + nodes in
        if avail >= needed then Some (ends, avail - needed) else go avail rest
  in
  go free sorted

let select policy ~now ~free ~running queue =
  let n = Array.length queue in
  let free = ref free in
  let running = ref running in
  let started = ref [] in
  (* Start the longest in-order prefix that fits (both policies). *)
  let head = ref 0 in
  let blocked = ref false in
  while (not !blocked) && !head < n do
    let nodes, requested = queue.(!head) in
    if nodes <= !free then begin
      free := !free - nodes;
      running := (now +. requested, nodes) :: !running;
      started := !head :: !started;
      incr head
    end
    else blocked := true
  done;
  (match policy with
  | Fcfs -> ()
  | Easy_backfill ->
      if !blocked then begin
        let head_nodes, _ = queue.(!head) in
        match shadow ~free:!free ~needed:head_nodes !running with
        | None -> () (* head can never fit; the engine rejects such jobs *)
        | Some (shadow_time, spare) ->
            (* EASY invariant: a candidate may jump the head only if it
               is gone by the head's guaranteed start (reservation ends
               are kill times, so this is exact), or if it fits in the
               nodes the head will leave unused. *)
            let spare = ref spare in
            for j = !head + 1 to n - 1 do
              let nodes, requested = queue.(j) in
              if
                nodes <= !free
                && (now +. requested <= shadow_time || nodes <= !spare)
              then begin
                free := !free - nodes;
                if now +. requested > shadow_time then spare := !spare - nodes;
                started := j :: !started
              end
            done
      end);
  List.rev !started
