type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let length q = q.size
let is_empty q = q.size = 0

(* Strict heap order: earlier time first, insertion order breaking
   ties. The tie-break is what makes the whole simulator deterministic:
   simultaneous events (a kill and an arrival at the same instant) are
   always processed in the order they were scheduled. *)
let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap h i j =
  let tmp = h.(i) in
  h.(i) <- h.(j);
  h.(j) <- tmp

let push q ~time payload =
  if not (Float.is_finite time) then
    invalid_arg "Event_queue.push: time must be finite";
  let e = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  if q.size = Array.length q.heap then begin
    let cap = max 8 (2 * q.size) in
    let heap = Array.make cap e in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end;
  q.heap.(q.size) <- e;
  q.size <- q.size + 1;
  let i = ref (q.size - 1) in
  while !i > 0 && before q.heap.(!i) q.heap.((!i - 1) / 2) do
    let parent = (!i - 1) / 2 in
    swap q.heap !i parent;
    i := parent
  done

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time

let pop q =
  if q.size = 0 then None
  else begin
    let root = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let best = ref !i in
        if l < q.size && before q.heap.(l) q.heap.(!best) then best := l;
        if r < q.size && before q.heap.(r) q.heap.(!best) then best := r;
        if !best = !i then continue := false
        else begin
          swap q.heap !i !best;
          i := !best
        end
      done
    end;
    Some (root.time, root.payload)
  end
