module Sequence = Stochastic_core.Sequence
module Checkpoint = Stochastic_core.Checkpoint

type outcome = Success | Timeout | Node_failure

let outcome_name = function
  | Success -> "success"
  | Timeout -> "timeout"
  | Node_failure -> "node-failure"

type attempt = {
  requested : float;
  submitted : float;
  started : float;
  wait : float;
  elapsed : float;
  outcome : outcome;
  progress_after : float;
}

type checkpoint = { params : Checkpoint.params; period : float }

let make_checkpoint ~params ~period =
  if not (Float.is_finite period) || period <= 0.0 then
    invalid_arg "Job.make_checkpoint: period must be positive and finite";
  { params; period }

type state = Waiting | Running | Done | Abandoned

type t = {
  id : int;
  nodes : int;
  duration : float;
  arrival : float;
  reservations : float array;
  checkpoint : checkpoint option;
  mutable attempt : int;
  mutable progress : float; (* durably checkpointed work *)
  mutable failures : int; (* node-failure kills suffered *)
  mutable epoch : int; (* dispatch counter, invalidates stale events *)
  mutable submitted : float;
  mutable started : float;
  mutable state : state;
  mutable history : attempt list; (* newest first *)
  mutable finish : float;
}

let make ?checkpoint ~id ~nodes ~arrival ~duration sequence =
  if nodes <= 0 then invalid_arg "Job.make: nodes must be positive";
  if not (Float.is_finite duration) || duration <= 0.0 then
    invalid_arg "Job.make: duration must be positive and finite";
  if not (Float.is_finite arrival) || arrival < 0.0 then
    invalid_arg "Job.make: arrival must be nonnegative and finite";
  (* Materialise the prefix of the (lazy, possibly infinite) sequence
     up to the first reservation covering the true duration: those are
     the only requests this job can ever submit. With checkpointing the
     job may need extra attempts (overheads) — it then re-requests the
     last, covering reservation. *)
  let reservations =
    Sequence.prefix_until (fun r -> r >= duration) sequence
  in
  let k = Array.length reservations in
  if k = 0 || reservations.(k - 1) < duration then
    raise (Sequence.Not_covered duration);
  {
    id;
    nodes;
    duration;
    arrival;
    reservations;
    checkpoint;
    attempt = 0;
    progress = 0.0;
    failures = 0;
    epoch = 0;
    submitted = arrival;
    started = nan;
    state = Waiting;
    history = [];
    finish = nan;
  }

let id j = j.id
let nodes j = j.nodes
let duration j = j.duration
let arrival j = j.arrival
let state j = j.state
let submitted j = j.submitted
let progress j = j.progress
let failures j = j.failures
let epoch j = j.epoch
let checkpointed j = j.checkpoint <> None
let reservations j = Array.copy j.reservations

let request j =
  (* Past the materialised prefix (possible only with checkpointing),
     keep re-requesting the last reservation: it covers the full
     duration, so a fortiori the remaining work. *)
  j.reservations.(min j.attempt (Array.length j.reservations - 1))

let remaining j = j.duration -. j.progress

(* Time structure of an attempt under the periodic-checkpoint
   discipline: restore the last snapshot (restart_cost, only when there
   is one), then alternate [period] of work and a checkpoint
   (checkpoint_cost); no checkpoint is taken at completion. Durable
   progress advances only at completed checkpoints. *)

let restore_time j =
  match j.checkpoint with
  | Some c when j.progress > 0.0 -> c.params.Checkpoint.restart_cost
  | _ -> 0.0

(* Checkpoints paid on the way to completing [w] more work. *)
let ckpts_to_finish w period =
  max 0 (int_of_float (Float.ceil ((w /. period) -. 1e-12)) - 1)

let attempt_span j =
  if j.state <> Waiting && j.state <> Running then
    invalid_arg "Job.attempt_span: job has no open attempt";
  let l = request j in
  let w = remaining j in
  match j.checkpoint with
  | None -> if l >= w then (w, true) else (l, false)
  | Some { params; period } ->
      let need =
        restore_time j +. w
        +. (params.Checkpoint.checkpoint_cost
           *. float_of_int (ckpts_to_finish w period))
      in
      if need <= l +. 1e-9 then (need, true) else (l, false)

(* Durable checkpoints completed [elapsed] into the current attempt. *)
let snapshots_by j ~elapsed =
  match j.checkpoint with
  | None -> 0
  | Some { params; period } ->
      let r = restore_time j in
      let cycle = period +. params.Checkpoint.checkpoint_cost in
      let k =
        if elapsed <= r then 0
        else int_of_float (Float.floor (((elapsed -. r) /. cycle) +. 1e-12))
      in
      min (max 0 k) (ckpts_to_finish (remaining j) period)

let start j ~now =
  if j.state <> Waiting then invalid_arg "Job.start: job is not waiting";
  if now < j.submitted -. 1e-9 then
    invalid_arg "Job.start: cannot start before submission";
  j.started <- now;
  j.epoch <- j.epoch + 1;
  j.state <- Running

let record j ~elapsed ~outcome =
  j.history <-
    {
      requested = request j;
      submitted = j.submitted;
      started = j.started;
      wait = j.started -. j.submitted;
      elapsed;
      outcome;
      progress_after = j.progress;
    }
    :: j.history

let finish_attempt j ~now =
  if j.state <> Running then
    invalid_arg "Job.finish_attempt: job is not running";
  let span, completes = attempt_span j in
  if completes then begin
    j.progress <- j.duration;
    record j ~elapsed:span ~outcome:Success;
    j.state <- Done;
    j.finish <- now;
    true
  end
  else begin
    (* Timed out: the reservation was consumed in full. Checkpointed
       jobs keep the work covered by completed snapshots; plain jobs
       restart from scratch (the paper's execution model). *)
    let l = request j in
    (match j.checkpoint with
    | None -> ()
    | Some { period; _ } ->
        let k = snapshots_by j ~elapsed:l in
        let gained = float_of_int k *. period in
        if
          gained <= 0.0
          && j.attempt >= Array.length j.reservations - 1
        then
          (* Every future attempt re-requests the same last reservation
             and would gain nothing: the overheads have made the job
             impossible to finish. *)
          raise (Sequence.Not_covered j.duration);
        j.progress <- j.progress +. gained);
    record j ~elapsed:l ~outcome:Timeout;
    j.attempt <- j.attempt + 1;
    j.submitted <- now;
    j.state <- Waiting;
    false
  end

let interrupt j ~now =
  if j.state <> Running then invalid_arg "Job.interrupt: job is not running";
  let elapsed = Float.max 0.0 (now -. j.started) in
  (* Resume from the last completed snapshot; without checkpointing the
     attempt is lost entirely. The reservation index does not advance:
     the request was not too short, the node died under it. *)
  (match j.checkpoint with
  | None -> ()
  | Some { period; _ } ->
      let k = snapshots_by j ~elapsed in
      j.progress <- j.progress +. (float_of_int k *. period));
  record j ~elapsed ~outcome:Node_failure;
  j.failures <- j.failures + 1;
  j.state <- Waiting

let resubmit j ~at =
  if j.state <> Waiting then invalid_arg "Job.resubmit: job is not waiting";
  j.submitted <- at

let abandon j =
  if j.state <> Waiting then invalid_arg "Job.abandon: job is not waiting";
  j.state <- Abandoned

let attempts j = Array.of_list (List.rev j.history)

let finish_time j =
  if j.state <> Done then invalid_arg "Job.finish_time: job is not done";
  j.finish

let total_wait j =
  List.fold_left (fun acc a -> acc +. a.wait) 0.0 j.history

let response j = finish_time j -. j.arrival
let stretch j = response j /. j.duration
