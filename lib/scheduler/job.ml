module Sequence = Stochastic_core.Sequence

type attempt = {
  requested : float;
  submitted : float;
  started : float;
  wait : float;
  elapsed : float;
  succeeded : bool;
}

type state = Waiting | Running | Done

type t = {
  id : int;
  nodes : int;
  duration : float;
  arrival : float;
  reservations : float array;
  mutable attempt : int;
  mutable submitted : float;
  mutable started : float;
  mutable state : state;
  mutable history : attempt list; (* newest first *)
  mutable finish : float;
}

let make ~id ~nodes ~arrival ~duration sequence =
  if nodes <= 0 then invalid_arg "Job.make: nodes must be positive";
  if not (Float.is_finite duration) || duration <= 0.0 then
    invalid_arg "Job.make: duration must be positive and finite";
  if not (Float.is_finite arrival) || arrival < 0.0 then
    invalid_arg "Job.make: arrival must be nonnegative and finite";
  (* Materialise the prefix of the (lazy, possibly infinite) sequence
     up to the first reservation covering the true duration: those are
     the only requests this job can ever submit. *)
  let reservations =
    Sequence.prefix_until (fun r -> r >= duration) sequence
  in
  let k = Array.length reservations in
  if k = 0 || reservations.(k - 1) < duration then
    raise (Sequence.Not_covered duration);
  {
    id;
    nodes;
    duration;
    arrival;
    reservations;
    attempt = 0;
    submitted = arrival;
    started = nan;
    state = Waiting;
    history = [];
    finish = nan;
  }

let id j = j.id
let nodes j = j.nodes
let duration j = j.duration
let arrival j = j.arrival
let state j = j.state
let submitted j = j.submitted
let reservations j = Array.copy j.reservations
let request j = j.reservations.(j.attempt)

let start j ~now =
  if j.state <> Waiting then invalid_arg "Job.start: job is not waiting";
  if now < j.submitted -. 1e-9 then
    invalid_arg "Job.start: cannot start before submission";
  j.started <- now;
  j.state <- Running

let finish_attempt j ~now =
  if j.state <> Running then
    invalid_arg "Job.finish_attempt: job is not running";
  let requested = request j in
  let succeeded = requested >= j.duration in
  let elapsed = Float.min requested j.duration in
  j.history <-
    {
      requested;
      submitted = j.submitted;
      started = j.started;
      wait = j.started -. j.submitted;
      elapsed;
      succeeded;
    }
    :: j.history;
  if succeeded then begin
    j.state <- Done;
    j.finish <- now;
    true
  end
  else begin
    (* Timed out: the paper's execution model resubmits the job
       immediately with its next reservation length. *)
    j.attempt <- j.attempt + 1;
    j.submitted <- now;
    j.state <- Waiting;
    false
  end

let attempts j = Array.of_list (List.rev j.history)

let finish_time j =
  if j.state <> Done then invalid_arg "Job.finish_time: job is not done";
  j.finish

let total_wait j =
  List.fold_left (fun acc a -> acc +. a.wait) 0.0 j.history

let response j = finish_time j -. j.arrival
let stretch j = response j /. j.duration
