(** Workload generation for the cluster simulator.

    Draws a stream of jobs with Poisson arrivals, execution times from
    any {!Distributions.Dist.t}, uniformly distributed node counts, and
    reservation requests taken from a shared strategy sequence — the
    multi-user version of the paper's single-job setting. *)

type spec = {
  jobs : int;  (** Number of jobs to generate. *)
  arrival_rate : float;  (** Poisson arrival rate (jobs per hour). *)
  nodes_min : int;  (** Smallest per-job node count. *)
  nodes_max : int;  (** Largest per-job node count (uniform draw). *)
  scale_min : float;  (** Smallest per-job size-class factor. *)
  scale_max : float;
      (** Largest size-class factor (log-uniform draw). A job of class
          [c] has duration [c * X] and reservations [c * t_i]: the
          strategy applied to the user's own scaled distribution. *)
}

val make_spec :
  ?nodes_min:int ->
  ?nodes_max:int ->
  ?scale_min:float ->
  ?scale_max:float ->
  jobs:int ->
  arrival_rate:float ->
  unit ->
  spec
(** Defaults: [nodes_min = 1], [nodes_max = 8],
    [scale_min = scale_max = 1.] (homogeneous population).
    @raise Invalid_argument on non-positive [jobs]/[arrival_rate], an
    empty node range, or an invalid scale range. *)

val mean_job_nodes : spec -> float

val mean_scale : spec -> float
(** Mean of the log-uniform size-class factor. *)

val expected_consumed :
  Distributions.Dist.t -> Stochastic_core.Sequence.t -> float
(** [expected_consumed d s] is the expected node-hours one job burns
    under sequence [s]: [E(X) + sum_i t_i * P(X > t_i)] — the true
    duration plus every reservation killed before success. *)

val rate_for_load :
  ?nodes_min:int ->
  ?nodes_max:int ->
  ?scale_min:float ->
  ?scale_max:float ->
  ?sequence:Stochastic_core.Sequence.t ->
  load:float ->
  cluster_nodes:int ->
  Distributions.Dist.t ->
  float
(** [rate_for_load ~load ~cluster_nodes d] is the arrival rate at which
    the offered work [rate * E(consumed) * E(nodes)] equals [load]
    times the cluster capacity — [load -> 1] drives the system into
    sustained contention. When [sequence] is given, per-job work uses
    {!expected_consumed} (accounting for killed reservations);
    otherwise just [E(X)]. *)

val offered_load :
  ?sequence:Stochastic_core.Sequence.t ->
  spec ->
  cluster_nodes:int ->
  Distributions.Dist.t ->
  float
(** Inverse of {!rate_for_load}: the load a spec offers a cluster. *)

val generate :
  ?checkpoint:Job.checkpoint ->
  spec ->
  Distributions.Dist.t ->
  sequence:Stochastic_core.Sequence.t ->
  Randomness.Rng.t ->
  Job.t array
(** [generate spec d ~sequence rng] draws the workload. All jobs share
    [sequence] (they face the same distribution and cost model) but
    each materialises only the prefix covering its own duration.
    When [checkpoint] is given every job checkpoints periodically, with
    the period and the snapshot/restore overheads scaled by the job's
    size class (snapshot state grows with the job). Deterministic given
    the rng state. *)
