module Trace = Stochobs.Trace

(* Profiling probes on the global registry: one branch each while the
   registry is disabled, so they are safe inside the event loop. *)
(* stochlint: allow GLOBAL_MUT_STATE — single-domain metrics probe; the multicore fan-out merges per-domain registries *)
let m_events = Stochobs.Metrics.(counter default) "scheduler.engine.events"

(* stochlint: allow GLOBAL_MUT_STATE — single-domain metrics probe; the multicore fan-out merges per-domain registries *)
let m_dispatches =
  Stochobs.Metrics.(counter default) "scheduler.engine.dispatches"

(* stochlint: allow GLOBAL_MUT_STATE — single-domain metrics probe; the multicore fan-out merges per-domain registries *)
let m_queue_depth =
  Stochobs.Metrics.(gauge default) "scheduler.engine.queue_depth"

(* stochlint: allow GLOBAL_MUT_STATE — single-domain metrics probe; the multicore fan-out merges per-domain registries *)
let m_kill_timeout =
  Stochobs.Metrics.(counter default) "scheduler.engine.kills.timeout"

(* stochlint: allow GLOBAL_MUT_STATE — single-domain metrics probe; the multicore fan-out merges per-domain registries *)
let m_kill_fault =
  Stochobs.Metrics.(counter default) "scheduler.engine.kills.node_failure"

(* stochlint: allow GLOBAL_MUT_STATE — single-domain metrics probe; the multicore fan-out merges per-domain registries *)
let m_abandoned =
  Stochobs.Metrics.(counter default) "scheduler.engine.abandoned"

(* stochlint: allow GLOBAL_MUT_STATE — single-domain metrics probe; the multicore fan-out merges per-domain registries *)
let h_attempt_span =
  Stochobs.Metrics.(histogram default) "scheduler.engine.attempt_span"
    ~buckets:[| 0.1; 1.0; 10.0; 100.0; 1_000.0; 10_000.0 |]

(* stochlint: allow GLOBAL_MUT_STATE — single-domain metrics probe; the multicore fan-out merges per-domain registries *)
let h_restore =
  Stochobs.Metrics.(histogram default) "scheduler.engine.checkpoint.restore_time"
    ~buckets:[| 0.01; 0.1; 1.0; 10.0; 100.0 |]

type retry = { max_retries : int option; backoff : float }

let unlimited_retries = { max_retries = None; backoff = 0.0 }

let make_retry ?max_retries ?(backoff = 0.0) () =
  (match max_retries with
  | Some r when r < 0 ->
      invalid_arg "Engine.make_retry: max_retries must be nonnegative"
  | _ -> ());
  if not (Float.is_finite backoff) || backoff < 0.0 then
    invalid_arg "Engine.make_retry: backoff must be nonnegative and finite";
  { max_retries; backoff }

type config = {
  nodes : int;
  policy : Policy.t;
  faults : Faults.config option;
  retry : retry;
  obs : Trace.sink;
}

let make_config ?(obs = Trace.null) ?faults ?(retry = unlimited_retries)
    ~nodes ~policy () =
  { nodes; policy; faults; retry; obs }

type result = {
  jobs : Job.t array;
  nodes : int;
  policy : Policy.t;
  makespan : float;
  busy_node_time : float;
  events : int;
  node_failures : int;
  abandoned : int;
}

type event =
  | Arrival of Job.t
  | Finish of Job.t * int (* dispatch epoch; stale after an interrupt *)
  | Node_down of int
  | Node_up of int

(* A running job with its reservation kill time and the concrete nodes
   it occupies (failures are per-node, so identity matters). *)
type slot = { ends : float; job : Job.t; ids : int list }

(* The pending queue keeps FCFS order; jobs may leave from the middle
   (backfilling), so it is a plain list rebuilt on dispatch. Queue
   lengths are bounded by the job count, so the rebuild cost is
   negligible next to sequence construction. *)

let run (config : config) jobs =
  if config.nodes <= 0 then
    invalid_arg "Engine.run: cluster must have at least one node";
  Array.iter
    (fun j ->
      if Job.nodes j > config.nodes then
        invalid_arg
          (Printf.sprintf
             "Engine.run: job %d needs %d nodes but the cluster has %d"
             (Job.id j) (Job.nodes j) config.nodes))
    jobs;
  Trace.with_span config.obs
    ~attrs:
      [
        ("jobs", Trace.Int (Array.length jobs));
        ("nodes", Trace.Int config.nodes);
        ("policy", Trace.Str (Policy.name config.policy));
        ("faults", Trace.Bool (config.faults <> None));
      ]
    "scheduler.engine.run"
  @@ fun () ->
  let events = Event_queue.create () in
  Array.iter
    (fun j -> Event_queue.push events ~time:(Job.arrival j) (Arrival j))
    jobs;
  let cluster = Cluster.create ~nodes:config.nodes in
  let faults = Option.map (fun c -> Faults.create c ~nodes:config.nodes) config.faults in
  (* Seed the failure schedule: one pending outage per fallible node.
     Subsequent outages are drawn lazily as each node comes back up, so
     the trace extends exactly as far as the simulation needs it. *)
  (match faults with
  | None -> ()
  | Some f ->
      for node = 0 to config.nodes - 1 do
        let up = Faults.uptime f ~node in
        if Float.is_finite up then
          Event_queue.push events ~time:up (Node_down node)
      done);
  let pending = ref [] (* FCFS order *) in
  let running = ref [] (* running slots, unordered *) in
  let makespan = ref 0.0 in
  let processed = ref 0 in
  let remaining = ref (Array.length jobs) in
  let node_failures = ref 0 in
  let abandoned = ref 0 in
  let schedule now =
    match !pending with
    | [] -> ()
    | queue ->
        let arr = Array.of_list queue in
        let spec = Array.map (fun j -> (Job.nodes j, Job.request j)) arr in
        let running_res =
          List.map (fun s -> (s.ends, Job.nodes s.job)) !running
        in
        let starts =
          Policy.select config.policy ~now ~free:(Cluster.free cluster)
            ~running:running_res spec
        in
        if starts <> [] then begin
          let chosen = Array.make (Array.length arr) false in
          List.iter
            (fun idx ->
              let j = arr.(idx) in
              if now < Job.submitted j -. 1e-9 then
                failwith
                  (Printf.sprintf
                     "Engine.run: event-order corruption — job %d dispatched \
                      at %.9g before its submission at %.9g"
                     (Job.id j) now (Job.submitted j));
              chosen.(idx) <- true;
              let ids = Cluster.allocate cluster (Job.nodes j) in
              Job.start j ~now;
              let span, _completes = Job.attempt_span j in
              Stochobs.Metrics.incr m_dispatches;
              Stochobs.Metrics.observe h_attempt_span span;
              let restore = Job.restore_time j in
              if restore > 0.0 then Stochobs.Metrics.observe h_restore restore;
              let reservation_end = now +. Job.request j in
              running := { ends = reservation_end; job = j; ids } :: !running;
              Event_queue.push events ~time:(now +. span)
                (Finish (j, Job.epoch j)))
            starts;
          pending :=
            List.filteri (fun i _ -> not chosen.(i)) (Array.to_list arr)
        end
  in
  let evict now slot =
    (* A node under [slot.job] died: salvage checkpointed progress,
       free its nodes, and apply the retry policy. *)
    Cluster.release cluster slot.ids;
    running := List.filter (fun s -> s.job != slot.job) !running;
    Job.interrupt slot.job ~now;
    Stochobs.Metrics.incr m_kill_fault;
    match config.retry.max_retries with
    | Some cap when Job.failures slot.job > cap ->
        Job.abandon slot.job;
        incr abandoned;
        Stochobs.Metrics.incr m_abandoned;
        decr remaining
    | _ ->
        let at = now +. config.retry.backoff in
        Job.resubmit slot.job ~at;
        Event_queue.push events ~time:at (Arrival slot.job)
  in
  let rec loop () =
    if !remaining = 0 then ()
    else
      match Event_queue.pop events with
      | None -> ()
      | Some (now, ev) ->
          incr processed;
          Stochobs.Metrics.incr m_events;
          Cluster.advance cluster now;
          (match (ev, faults) with
          | Arrival j, _ -> pending := !pending @ [ j ]
          | Finish (j, epoch), _ ->
              (* Stale when a failure already killed this attempt: the
                 job is no longer running, or has been redispatched
                 under a newer epoch. *)
              if Job.state j = Job.Running && Job.epoch j = epoch then begin
                let slot = List.find (fun s -> s.job == j) !running in
                Cluster.release cluster slot.ids;
                running := List.filter (fun s -> s.job != j) !running;
                let completed = Job.finish_attempt j ~now in
                if completed then begin
                  makespan := Float.max !makespan now;
                  decr remaining
                end
                else begin
                  Stochobs.Metrics.incr m_kill_timeout;
                  Event_queue.push events ~time:now (Arrival j)
                end
              end
          (* Node_down/Node_up events are only ever scheduled from a
             [Some f] fault model (see the seeding loop above and the
             reschedules below), so the faults value is threaded
             through the match instead of being ripped out of the
             option with a partial [Option.get]. *)
          | Node_down node, Some f ->
              incr node_failures;
              Trace.instant config.obs
                ~attrs:[ ("node", Trace.Int node); ("t", Trace.Num now) ]
                "scheduler.engine.node_down";
              (match
                 List.find_opt (fun s -> List.mem node s.ids) !running
               with
              | Some slot -> evict now slot
              | None -> ());
              Cluster.mark_down cluster node;
              Event_queue.push events
                ~time:(now +. Faults.downtime f ~node)
                (Node_up node)
          | Node_up node, Some f ->
              Trace.instant config.obs
                ~attrs:[ ("node", Trace.Int node); ("t", Trace.Num now) ]
                "scheduler.engine.node_up";
              Cluster.mark_up cluster node;
              let up = Faults.uptime f ~node in
              if Float.is_finite up then
                Event_queue.push events ~time:(now +. up) (Node_down node)
          | (Node_down _ | Node_up _), None ->
              failwith
                "Engine.run: failure event without a fault model — \
                 event-queue corruption");
          schedule now;
          (* Guarded: the depth is an O(queue) walk, not worth paying
             when the registry is off. *)
          if Stochobs.Metrics.(enabled default) then
            Stochobs.Metrics.set m_queue_depth
              (float_of_int (List.length !pending));
          loop ()
  in
  loop ();
  if !remaining > 0 then
    failwith "Engine.run: simulation ended with jobs still in the system";
  Cluster.advance cluster (Float.max !makespan (Cluster.clock cluster));
  let busy = Cluster.busy_node_time cluster in
  if busy < 0.0 then
    failwith
      (Printf.sprintf
         "Engine.run: busy node-time integral went negative (%.9g)" busy);
  Trace.annotate config.obs
    [
      ("makespan", Trace.Num !makespan);
      ("events", Trace.Int !processed);
      ("node_failures", Trace.Int !node_failures);
      ("abandoned", Trace.Int !abandoned);
    ];
  {
    jobs;
    nodes = config.nodes;
    policy = config.policy;
    makespan = !makespan;
    busy_node_time = busy;
    events = !processed;
    node_failures = !node_failures;
    abandoned = !abandoned;
  }

let utilization r =
  if r.makespan <= 0.0 then 0.0
  else
    Float.min 1.0
      (Float.max 0.0
         (r.busy_node_time /. (float_of_int r.nodes *. r.makespan)))
