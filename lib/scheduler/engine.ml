type config = { nodes : int; policy : Policy.t }

type result = {
  jobs : Job.t array;
  nodes : int;
  policy : Policy.t;
  makespan : float;
  busy_node_time : float;
  events : int;
}

type event = Arrival of Job.t | Finish of Job.t

(* The pending queue keeps FCFS order; jobs may leave from the middle
   (backfilling), so it is a plain list rebuilt on dispatch. Queue
   lengths are bounded by the job count, so the rebuild cost is
   negligible next to sequence construction. *)

let run (config : config) jobs =
  if config.nodes <= 0 then
    invalid_arg "Engine.run: cluster must have at least one node";
  Array.iter
    (fun j ->
      if Job.nodes j > config.nodes then
        invalid_arg
          (Printf.sprintf
             "Engine.run: job %d needs %d nodes but the cluster has %d"
             (Job.id j) (Job.nodes j) config.nodes))
    jobs;
  let events = Event_queue.create () in
  Array.iter
    (fun j -> Event_queue.push events ~time:(Job.arrival j) (Arrival j))
    jobs;
  let cluster = Cluster.create ~nodes:config.nodes in
  let pending = ref [] (* FCFS order *) in
  let running = ref [] (* running jobs, unordered *) in
  let makespan = ref 0.0 in
  let processed = ref 0 in
  let schedule now =
    match !pending with
    | [] -> ()
    | queue ->
        let arr = Array.of_list queue in
        let spec = Array.map (fun j -> (Job.nodes j, Job.request j)) arr in
        let running_res =
          List.map (fun (ends, j) -> (ends, Job.nodes j)) !running
        in
        let starts =
          Policy.select config.policy ~now ~free:(Cluster.free cluster)
            ~running:running_res spec
        in
        if starts <> [] then begin
          let chosen = Array.make (Array.length arr) false in
          List.iter
            (fun idx ->
              let j = arr.(idx) in
              chosen.(idx) <- true;
              Cluster.allocate cluster (Job.nodes j);
              Job.start j ~now;
              let elapsed = Float.min (Job.request j) (Job.duration j) in
              let reservation_end = now +. Job.request j in
              running := (reservation_end, j) :: !running;
              Event_queue.push events ~time:(now +. elapsed) (Finish j))
            starts;
          pending :=
            List.filteri (fun i _ -> not chosen.(i)) (Array.to_list arr)
        end
  in
  let rec loop () =
    match Event_queue.pop events with
    | None -> ()
    | Some (now, ev) ->
        incr processed;
        Cluster.advance cluster now;
        (match ev with
        | Arrival j -> pending := !pending @ [ j ]
        | Finish j ->
            Cluster.release cluster (Job.nodes j);
            running := List.filter (fun (_, j') -> j' != j) !running;
            let completed = Job.finish_attempt j ~now in
            if completed then makespan := Float.max !makespan now
            else Event_queue.push events ~time:now (Arrival j));
        schedule now;
        loop ()
  in
  loop ();
  if !pending <> [] || !running <> [] then
    failwith "Engine.run: simulation ended with jobs still in the system";
  Cluster.advance cluster !makespan;
  {
    jobs;
    nodes = config.nodes;
    policy = config.policy;
    makespan = !makespan;
    busy_node_time = Cluster.busy_node_time cluster;
    events = !processed;
  }

let utilization r =
  if r.makespan <= 0.0 then 0.0
  else
    Float.min 1.0
      (Float.max 0.0
         (r.busy_node_time /. (float_of_int r.nodes *. r.makespan)))
