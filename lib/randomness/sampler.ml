let standard_normal rng =
  (* Marsaglia polar method; the spare variate is intentionally not
     cached so that the draw count per call is state-independent. *)
  let rec go () =
    let u = (2.0 *. Rng.float rng) -. 1.0 in
    let v = (2.0 *. Rng.float rng) -. 1.0 in
    let s = (u *. u) +. (v *. v) in
    (* stochlint: allow FLOAT_EQ — rejection-sampling guard: s = 0.0 exactly would divide by zero below *)
    if s >= 1.0 || s = 0.0 then go ()
    else u *. sqrt (-2.0 *. log s /. s)
  in
  go ()

let normal rng ~mu ~sigma =
  if sigma <= 0.0 then invalid_arg "Sampler.normal: sigma must be positive";
  mu +. (sigma *. standard_normal rng)

let exponential rng ~rate =
  if rate <= 0.0 then invalid_arg "Sampler.exponential: rate must be positive";
  -.log (Rng.float_open rng) /. rate

let rec gamma rng ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then
    invalid_arg "Sampler.gamma: shape and scale must be positive";
  if shape < 1.0 then begin
    (* Boost: Gamma(a) = Gamma(a+1) * U^(1/a). *)
    let x = gamma rng ~shape:(shape +. 1.0) ~scale in
    let u = Rng.float_open rng in
    x *. (u ** (1.0 /. shape))
  end
  else begin
    (* Marsaglia–Tsang. *)
    let d = shape -. (1.0 /. 3.0) in
    let c = 1.0 /. sqrt (9.0 *. d) in
    let rec go () =
      let x = standard_normal rng in
      let v = 1.0 +. (c *. x) in
      if v <= 0.0 then go ()
      else begin
        let v = v *. v *. v in
        let u = Rng.float_open rng in
        let x2 = x *. x in
        if u < 1.0 -. (0.0331 *. x2 *. x2) then d *. v
        else if log u < (0.5 *. x2) +. (d *. (1.0 -. v +. log v)) then d *. v
        else go ()
      end
    in
    scale *. go ()
  end

let beta rng ~a ~b =
  if a <= 0.0 || b <= 0.0 then
    invalid_arg "Sampler.beta: a and b must be positive";
  let x = gamma rng ~shape:a ~scale:1.0 in
  let y = gamma rng ~shape:b ~scale:1.0 in
  x /. (x +. y)

let lognormal rng ~mu ~sigma =
  if sigma <= 0.0 then invalid_arg "Sampler.lognormal: sigma must be positive";
  exp (normal rng ~mu ~sigma)

let weibull rng ~lambda ~k =
  if lambda <= 0.0 || k <= 0.0 then
    invalid_arg "Sampler.weibull: lambda and k must be positive";
  lambda *. ((-.log (Rng.float_open rng)) ** (1.0 /. k))

let pareto rng ~nu ~alpha =
  if nu <= 0.0 || alpha <= 0.0 then
    invalid_arg "Sampler.pareto: nu and alpha must be positive";
  nu /. (Rng.float_open rng ** (1.0 /. alpha))

let truncated_normal rng ~mu ~sigma ~lower =
  if sigma <= 0.0 then
    invalid_arg "Sampler.truncated_normal: sigma must be positive";
  let a = (lower -. mu) /. sigma in
  if a <= 2.0 then begin
    (* Plain rejection from the parent normal: acceptance probability is
       1 - Phi(a) >= 0.023 for a <= 2, so this terminates quickly. *)
    let rec go () =
      let z = standard_normal rng in
      if z >= a then z else go ()
    in
    mu +. (sigma *. go ())
  end
  else begin
    (* Deep upper tail: Robert's exponential-tilting rejection. *)
    let lambda = (a +. sqrt ((a *. a) +. 4.0)) /. 2.0 in
    let rec go () =
      let z = a +. (-.log (Rng.float_open rng) /. lambda) in
      let rho = exp (-.((z -. lambda) ** 2.0) /. 2.0) in
      if Rng.float rng <= rho then z else go ()
    in
    mu +. (sigma *. go ())
  end
