module Sequence = Stochastic_core.Sequence
module Expected_cost = Stochastic_core.Expected_cost
module Dist = Distributions.Dist

type job_outcome = {
  duration : float;
  reservations_used : int;
  total_reserved : float;
  total_cost : float;
  wasted : float;
}

type report = {
  jobs : int;
  mean_cost : float;
  normalized_cost : float;
  mean_reservations : float;
  max_reservations : int;
  p95_cost : float;
  cvar95_cost : float;
  utilization : float;
  outcomes : job_outcome array;
}

let run_job m s ~duration =
  let k, total_cost = Sequence.cost_of_run m s duration in
  let reserved = Numerics.Kahan.create () in
  Seq.iter (Numerics.Kahan.add reserved) (Seq.take k s);
  let total_reserved = Numerics.Kahan.sum reserved in
  {
    duration;
    reservations_used = k;
    total_reserved;
    total_cost;
    wasted = total_reserved -. duration;
  }

let run ?(jobs = 1000) m d s rng =
  if jobs <= 0 then invalid_arg "Simulator.run: jobs must be positive";
  let outcomes =
    Array.init jobs (fun _ -> run_job m s ~duration:(d.Dist.sample rng))
  in
  let costs = Array.map (fun o -> o.total_cost) outcomes in
  let mean_cost = Numerics.Stats.mean costs in
  let mean_reservations =
    Numerics.Stats.mean
      (Array.map (fun o -> float_of_int o.reservations_used) outcomes)
  in
  let max_reservations =
    Array.fold_left (fun acc o -> max acc o.reservations_used) 0 outcomes
  in
  let total_duration = Numerics.Kahan.create () in
  let total_reserved = Numerics.Kahan.create () in
  Array.iter
    (fun o ->
      Numerics.Kahan.add total_duration o.duration;
      Numerics.Kahan.add total_reserved o.total_reserved)
    outcomes;
  let sorted_costs = Array.copy costs in
  Array.sort compare sorted_costs;
  let cvar95_cost =
    (* Mean of the top 5% (at least one job). *)
    let n = Array.length sorted_costs in
    let k = max 1 (n / 20) in
    let acc = Numerics.Kahan.create () in
    for i = n - k to n - 1 do
      Numerics.Kahan.add acc sorted_costs.(i)
    done;
    Numerics.Kahan.sum acc /. float_of_int k
  in
  {
    jobs;
    mean_cost;
    normalized_cost = Expected_cost.normalized m d ~cost:mean_cost;
    mean_reservations;
    max_reservations;
    p95_cost = Numerics.Stats.quantiles_sorted sorted_costs 0.95;
    cvar95_cost;
    utilization =
      Numerics.Kahan.sum total_duration /. Numerics.Kahan.sum total_reserved;
    outcomes;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "%d jobs: mean cost %.4f (normalized %.3f), %.2f reservations/job (max \
     %d), p95 cost %.4f, CVaR95 %.4f, utilization %.1f%%"
    r.jobs r.mean_cost r.normalized_cost r.mean_reservations r.max_reservations
    r.p95_cost r.cvar95_cost (100.0 *. r.utilization)
