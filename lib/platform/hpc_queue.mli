(** HPC batch-queue wait-time model (Fig. 2, Sect. 5.3).

    On large HPC machines, the cost of a reservation is the time a job
    waits in the queue, which grows (roughly affinely) with the
    requested walltime, plus the time actually used. The paper fits an
    affine wait-time function to Intrepid scheduler logs [20] binned
    into 20 groups of similar requested runtimes, obtaining
    [wait ~ 0.95 * requested + 1.05 h] for the 409-processor class,
    and instantiates the STOCHASTIC cost model with
    [alpha = 0.95, beta = 1, gamma = 1.05].

    The original logs are not distributed with the paper, so this
    module {e simulates} them: a synthetic generator emits per-job
    (requested runtime, wait time) records with an affine ground truth
    plus heteroscedastic noise, and the fitting pipeline — group into
    bins, average each bin, OLS over the bin means, exactly as the
    paper describes — recovers the cost-model coefficients. *)

type job_record = {
  requested : float;  (** Requested walltime (hours). *)
  wait : float;  (** Observed queue wait (hours). *)
}

type log = job_record array

val synthetic_log :
  ?jobs:int ->
  ?alpha:float ->
  ?gamma:float ->
  ?noise:float ->
  ?max_requested:float ->
  Randomness.Rng.t ->
  log
(** [synthetic_log rng] generates a scheduler log of [jobs] (default
    [5000]) jobs with requested runtimes spread over
    [(0, max_requested]] (default [12.] hours, log-uniformly, mimicking
    batch-queue request distributions) and waits
    [alpha * requested + gamma] (defaults [0.95] / [1.05]) perturbed by
    multiplicative LogNormal noise of coefficient of variation [noise]
    (default [0.35]), truncated at zero. *)

type binned = {
  centers : float array;  (** Mean requested runtime of each group. *)
  mean_waits : float array;  (** Mean wait of each group. *)
}

val bin_log : ?groups:int -> log -> binned
(** [bin_log log] clusters the jobs into [groups] (default [20],
    as in Fig. 2) equally-populated groups by requested runtime and
    averages each group — the blue points of Fig. 2.
    @raise Invalid_argument if there are fewer jobs than groups, or if
    any record has a non-positive/non-finite requested runtime or a
    negative/non-finite wait (a buggy trace would otherwise surface as
    NaN fit coefficients). *)

val fit : binned -> Numerics.Regression.fit
(** [fit b] fits the affine wait-time function through the group
    means — the green line of Fig. 2.
    @raise Invalid_argument if every bin centre is identical (all-equal
    requested runtimes identify no affine model). *)

val cost_model_of_fit : ?beta:float -> Numerics.Regression.fit -> Stochastic_core.Cost_model.t
(** [cost_model_of_fit f] instantiates the STOCHASTIC cost model from
    a wait-time fit: [alpha = slope], [gamma = intercept],
    [beta] defaulting to [1.] (the job pays its actual runtime).
    @raise Invalid_argument if the fit has non-positive slope or
    negative intercept. *)

val turnaround :
  Stochastic_core.Cost_model.t -> requested:float -> actual:float -> float
(** [turnaround m ~requested ~actual] is the expected turnaround
    contribution of one reservation: queue wait
    [alpha * requested + gamma] plus executed time
    [beta * min requested actual]. Identical to
    {!Stochastic_core.Cost_model.reservation_cost}; exposed under the
    domain name for clarity. *)
