type job_record = { requested : float; wait : float }
type log = job_record array

let synthetic_log ?(jobs = 5000) ?(alpha = 0.95) ?(gamma = 1.05)
    ?(noise = 0.35) ?(max_requested = 12.0) rng =
  if jobs <= 0 then invalid_arg "Hpc_queue.synthetic_log: jobs must be > 0";
  Array.init jobs (fun _ ->
      (* Log-uniform requested runtimes: many short requests, few long
         ones, as in production batch logs. *)
      let u = Randomness.Rng.float_open rng in
      let requested = max_requested ** u *. (0.25 ** (1.0 -. u)) in
      let base = (alpha *. requested) +. gamma in
      let mult =
        if noise > 0.0 then begin
          (* LogNormal multiplicative noise with unit mean and
             coefficient of variation [noise]. *)
          let sigma2 = log (1.0 +. (noise *. noise)) in
          Randomness.Sampler.lognormal rng ~mu:(-.sigma2 /. 2.0)
            ~sigma:(sqrt sigma2)
        end
        else 1.0
      in
      { requested; wait = Float.max 0.0 (base *. mult) })

type binned = { centers : float array; mean_waits : float array }

(* A buggy trace (NaN or negative waits, non-positive requests) would
   otherwise flow through binning and OLS and come out as NaN
   (alpha, gamma); reject it at the boundary with a diagnostic. *)
let validate_log log =
  Array.iteri
    (fun i r ->
      if not (Float.is_finite r.requested) || r.requested <= 0.0 then
        invalid_arg
          (Printf.sprintf
             "Hpc_queue: record %d has invalid requested runtime %g (must be \
              positive and finite)"
             i r.requested);
      if not (Float.is_finite r.wait) || r.wait < 0.0 then
        invalid_arg
          (Printf.sprintf
             "Hpc_queue: record %d has invalid wait %g (must be nonnegative \
              and finite)"
             i r.wait))
    log

let bin_log ?(groups = 20) log =
  let n = Array.length log in
  if groups <= 0 then invalid_arg "Hpc_queue.bin_log: groups must be > 0";
  if n < groups then invalid_arg "Hpc_queue.bin_log: fewer jobs than groups";
  validate_log log;
  let sorted = Array.copy log in
  Array.sort (fun a b -> compare a.requested b.requested) sorted;
  let centers = Array.make groups 0.0 in
  let mean_waits = Array.make groups 0.0 in
  for g = 0 to groups - 1 do
    let lo = g * n / groups in
    let hi = ((g + 1) * n / groups) - 1 in
    let creq = Numerics.Kahan.create () and cw = Numerics.Kahan.create () in
    for i = lo to hi do
      Numerics.Kahan.add creq sorted.(i).requested;
      Numerics.Kahan.add cw sorted.(i).wait
    done;
    let count = float_of_int (hi - lo + 1) in
    centers.(g) <- Numerics.Kahan.sum creq /. count;
    mean_waits.(g) <- Numerics.Kahan.sum cw /. count
  done;
  { centers; mean_waits }

let fit b =
  let spread =
    Array.length b.centers > 0
    && Array.exists (fun c -> c <> b.centers.(0)) b.centers
  in
  if not spread then
    invalid_arg
      "Hpc_queue.fit: all requested-runtime bins are equal — an affine wait \
       model cannot be identified from a degenerate log";
  Numerics.Regression.ols ~x:b.centers ~y:b.mean_waits

let cost_model_of_fit ?(beta = 1.0) (f : Numerics.Regression.fit) =
  if f.Numerics.Regression.slope <= 0.0 then
    invalid_arg "Hpc_queue.cost_model_of_fit: fitted slope must be positive";
  if f.Numerics.Regression.intercept < 0.0 then
    invalid_arg "Hpc_queue.cost_model_of_fit: fitted intercept must be >= 0";
  Stochastic_core.Cost_model.make ~alpha:f.Numerics.Regression.slope ~beta
    ~gamma:f.Numerics.Regression.intercept ()

let turnaround m ~requested ~actual =
  Stochastic_core.Cost_model.reservation_cost m ~reserved:requested ~actual
