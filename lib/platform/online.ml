module Strategy = Stochastic_core.Strategy
module Sequence = Stochastic_core.Sequence
module Expected_cost = Stochastic_core.Expected_cost
module Dist = Distributions.Dist

type config = {
  warmup : int;
  refit_every : int;
  strategy : Strategy.t;
}

let default_config =
  {
    warmup = 10;
    refit_every = 25;
    strategy = Strategy.brute_force ~m:500 ~n:1000 ~seed:271828 ();
  }

type trajectory = {
  costs : float array;
  normalized_prefix_mean : float array;
  refits : int;
}

(* Model-free bootstrap rule: double from (a bit above) the running
   mean of the observations seen so far, or from 1.0 with no data. *)
let bootstrap_sequence observations =
  let start =
    if observations = [] then 1.0
    else begin
      let a = Array.of_list observations in
      1.2 *. Numerics.Stats.mean a
    end
  in
  Sequence.sanitize ~support:(Dist.Unbounded 0.0)
    (Seq.unfold (fun v -> Some (v, 2.0 *. v)) start)

let run ?(config = default_config) ~jobs m truth rng =
  if jobs <= 0 then invalid_arg "Online.run: jobs must be positive";
  let observations = ref [] in
  let count = ref 0 in
  let refits = ref 0 in
  let current_sequence = ref (bootstrap_sequence []) in
  let maybe_refit () =
    if
      !count >= config.warmup
      && (!count = config.warmup || !count mod config.refit_every = 0)
    then begin
      match
        Distributions.Fitting.lognormal_mle
          (Array.of_list !observations)
      with
      | exception Invalid_argument _ -> ()
      | fit ->
          let model = Distributions.Fitting.to_dist fit in
          current_sequence := config.strategy.Strategy.build m model;
          incr refits
    end
  in
  let costs =
    Array.init jobs (fun _ ->
        let duration = truth.Dist.sample rng in
        let _, cost = Sequence.cost_of_run m !current_sequence duration in
        observations := duration :: !observations;
        incr count;
        maybe_refit ();
        cost)
  in
  let omniscient = Expected_cost.omniscient m truth in
  let normalized_prefix_mean =
    let acc = Numerics.Kahan.create () in
    Array.mapi
      (fun i c ->
        Numerics.Kahan.add acc c;
        Numerics.Kahan.sum acc /. float_of_int (i + 1) /. omniscient)
      costs
  in
  { costs; normalized_prefix_mean; refits = !refits }

let final_normalized t =
  let n = Array.length t.costs in
  let k = max 1 (n / 4) in
  let acc = Numerics.Kahan.create () in
  for i = n - k to n - 1 do
    Numerics.Kahan.add acc t.costs.(i)
  done;
  (* The prefix means are already normalized; recover the omniscient
     scale from them instead of recomputing. *)
  let total_mean = t.normalized_prefix_mean.(n - 1) in
  let raw_mean =
    Numerics.Kahan.sum acc /. float_of_int k
  in
  let overall_raw = Numerics.Stats.mean t.costs in
  raw_mean /. overall_raw *. total_mean
