module Dist = Distributions.Dist

type stop =
  | Unsupported_t1 of float
  | Density_underflow of { t : float; survival : float }
  | Non_finite of { t_prev : float; next : float }
  | Non_increasing of { t_prev : float; next : float }
  | Too_long of int

let stop_to_string = function
  | Unsupported_t1 t1 ->
      Printf.sprintf "t1 = %g outside the distribution support" t1
  | Density_underflow { t; survival } ->
      Printf.sprintf
        "density underflowed to zero at t = %g with %.3g survival mass \
         uncovered"
        t survival
  | Non_finite { t_prev; next } ->
      Printf.sprintf "recurrence produced the non-finite value %g after t = %g"
        next t_prev
  | Non_increasing { t_prev; next } ->
      Printf.sprintf
        "recurrence is not strictly increasing (%g after t = %g)" next t_prev
  | Too_long n ->
      Printf.sprintf "sequence did not reach coverage within %d elements" n

let next m d ~t_prev2 ~t_prev1 =
  let open Cost_model in
  let f1 = d.Dist.pdf t_prev1 in
  let sf2 = Dist.sf d t_prev2 in
  let sf1 = Dist.sf d t_prev1 in
  (sf2 /. f1)
  +. (m.beta /. m.alpha *. ((sf1 /. f1) -. t_prev1))
  -. (m.gamma /. m.alpha)

let generate ?(coverage = 1.0 -. 1e-9) ?(max_len = 1000) m d ~t1 =
  let a = Dist.lower d and b = Dist.upper d in
  if not (Float.is_finite t1) || t1 <= a || t1 > b then
    Error (Unsupported_t1 t1)
  else begin
    let out = ref [ t1 ] in
    let len = ref 1 in
    let t_prev2 = ref 0.0 and t_prev1 = ref t1 in
    let status = ref `Running in
    if d.Dist.cdf t1 >= coverage then status := `Done;
    if t1 >= b then status := `Done;
    while !status = `Running do
      if !len >= max_len then status := `Too_long
      else begin
        (* Eq. (11) divides by f t_(i-1): deep in the tail the density
           underflows to 0 before the CDF reaches the coverage target
           (heavy tails, near-point masses), which would propagate
           inf/nan through [next]. Detect it and stop typed instead. *)
        let f1 = d.Dist.pdf !t_prev1 in
        if f1 <= 0.0 || Float.is_nan f1 then
          status := `Underflow (!t_prev1, Dist.sf d !t_prev1)
        else begin
          let t = next m d ~t_prev2:!t_prev2 ~t_prev1:!t_prev1 in
          if not (Float.is_finite t) then status := `Not_finite (!t_prev1, t)
          else if t <= !t_prev1 then status := `Not_increasing (!t_prev1, t)
          else begin
            let t = if t >= b then b else t in
            out := t :: !out;
            incr len;
            t_prev2 := !t_prev1;
            t_prev1 := t;
            if t >= b || d.Dist.cdf t >= coverage then status := `Done
          end
        end
      end
    done;
    match !status with
    | `Done -> Ok (Array.of_list (List.rev !out))
    | `Too_long -> Error (Too_long max_len)
    | `Underflow (t, survival) -> Error (Density_underflow { t; survival })
    | `Not_finite (t_prev, next) -> Error (Non_finite { t_prev; next })
    | `Not_increasing (t_prev, next) -> Error (Non_increasing { t_prev; next })
    | `Running -> assert false
  end

let sequence m d ~t1 =
  let raw =
    let rec step (t_prev2, t_prev1) () =
      let t =
        (* Same guard as [generate]: a zero density must not divide. *)
        let f1 = d.Dist.pdf t_prev1 in
        if f1 <= 0.0 || Float.is_nan f1 then nan
        else next m d ~t_prev2 ~t_prev1
      in
      (* sanitize takes over when t is unusable. *)
      Seq.Cons (t, step (t_prev1, t))
    in
    fun () -> Seq.Cons (t1, step (0.0, t1))
  in
  Sequence.sanitize ~support:d.Dist.support raw
