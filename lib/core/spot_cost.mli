(** Two-tier (spot / on-demand) revocation-aware reservation cost.

    Extends the Eq. (1) cost model to preemptible capacity: every
    reservation in a plan carries a {!tier}. On-demand reservations
    behave exactly as in the base model (price multiplier [1], never
    revoked). Spot reservations pay only [price_ratio < 1] per reserved
    hour but can be revoked mid-reservation by a memoryless revocation
    process with rate [revocation_rate] (mean time between revocations
    [1 / revocation_rate]); a revocation destroys the work of the
    current attempt except for what the {!recovery} discipline has made
    durable.

    Two recovery disciplines:
    - {!Restart} — nothing survives a revocation or an expired
      reservation; every attempt restarts the job from scratch (the
      base paper's semantics).
    - [Snapshot] — periodic in-reservation checkpoints: after every
      [period] hours of useful work a snapshot costing [snapshot_cost]
      hours is written; a later attempt resumes from the last durable
      snapshot after paying [restore_cost]. Progress is durable in
      whole periods, so a revocation loses strictly less than one
      period of work (plus the in-flight snapshot overhead).

    Billing is pay-for-use on revocation: a reservation that is revoked
    after [s < t_k] hours is billed [price * alpha * s + beta * s +
    gamma] (the provider only charges for the time actually held),
    while a reservation that runs to completion or expires is billed
    for its full length [t_k] as in Eq. (1).

    The analytic evaluator {!expected_cost} conditions on the job size
    via an equal-probability discretization and solves the per-size
    recovery recursion exactly (closed-form exponential revocation
    windows); {!Scheduler.Spot_sim} validates it against seeded
    trace-driven simulation. In the degenerate regime [price_ratio = 1,
    revocation_rate = 0, Restart] the evaluator delegates to
    {!Expected_cost.exact} and reproduces Eq. (1) bit-for-bit. *)

type tier = On_demand | Spot

val tier_name : tier -> string
(** ["on-demand"] or ["spot"]. *)

type recovery =
  | Restart  (** Failed attempts restart from scratch (base model). *)
  | Snapshot of {
      period : float;  (** Useful-work hours between snapshots. *)
      snapshot_cost : float;  (** Hours to write one snapshot. *)
      restore_cost : float;  (** Hours to resume from a snapshot. *)
    }

type regime = {
  price_ratio : float;  (** Spot price as a fraction of on-demand, in (0, 1]. *)
  revocation_rate : float;  (** Revocations per hour on spot capacity, >= 0. *)
  recovery : recovery;
}

val make_regime :
  ?recovery:recovery -> price_ratio:float -> revocation_rate:float -> unit -> regime
(** [make_regime ~price_ratio ~revocation_rate ()] validates and builds
    a regime ([recovery] defaults to {!Restart}).
    @raise Invalid_argument if [price_ratio] is outside [(0, 1]] or not
    finite, [revocation_rate] is negative or NaN or infinite, or a
    [Snapshot] field is invalid ([period <= 0], negative costs, or any
    non-finite value). *)

val on_demand_only : regime
(** [price_ratio = 1.0], [revocation_rate = 0.0], {!Restart}: the
    degenerate regime equal to the base Eq. (1) model. *)

type plan = private {
  lengths : float array;
      (** Reservation lengths. Unlike base {!Sequence}s these need not
          be increasing: with snapshot recovery, progress survives an
          expired reservation, so flat "chunked" plans (the same spot
          reservation repeated until the job is done) are natural and
          often optimal under revocation. *)
  tiers : tier array;  (** Tier of each reservation; same length. *)
}

val make_plan : lengths:float array -> tiers:tier array -> plan
(** @raise Invalid_argument if the arrays differ in length, are empty,
    or any length is non-finite or non-positive. *)

val strictly_increasing : plan -> bool
(** Whether the lengths form a valid base reservation sequence. *)

val uniform_plan : tier -> float array -> plan
(** [uniform_plan tier lengths] assigns every reservation to [tier]. *)

val spot_slots : plan -> int
(** Number of reservations on the spot tier. *)

val slot : plan -> int -> float * tier
(** [slot plan k] is the [k]-th reservation. Indices past the plan
    extend it by doubling the last length on the on-demand tier, so
    every walk over a plan terminates (an on-demand reservation at
    least as long as the remaining work always finishes the job).
    @raise Invalid_argument if [k < 0]. *)

val to_sequence : plan -> Sequence.t
(** The tier-less reservation sequence: plan lengths followed by the
    same doubling extension as {!slot} — suitable for
    {!Expected_cost.exact}. *)

type outcome = {
  billed : float;  (** Cost charged for this reservation. *)
  progress : float;  (** Durable progress after the reservation. *)
  finished : bool;  (** The job completed within this reservation. *)
  revoked : bool;  (** The reservation was revoked before completing. *)
}

val slot_outcome :
  regime ->
  Cost_model.t ->
  tier:tier ->
  length:float ->
  progress:float ->
  total:float ->
  revocation:float ->
  outcome
(** [slot_outcome regime m ~tier ~length ~progress ~total ~revocation]
    is the deterministic account of one reservation attempt: the job
    has [total] hours of work, of which [progress] hours are already
    durable, and (for spot reservations) the capacity is revoked
    [revocation] hours into the attempt ([infinity] = no revocation;
    on-demand attempts ignore [revocation]). Shared verbatim by the
    analytic evaluator and the trace-driven simulator, so the two can
    only disagree on revocation-time {e distribution}, never on
    per-attempt accounting.
    @raise Invalid_argument if [progress < 0], [total <= progress],
    [length <= 0] or [revocation < 0]. *)

val expected_cost :
  ?disc_n:int -> ?eps:float -> regime -> Cost_model.t -> Distributions.Dist.t -> plan -> float
(** [expected_cost regime m d plan] is the analytic expected cost of
    running a [d]-distributed job under [plan]. The job-size law is
    discretized into [disc_n] (default [2000]) equal-probability points
    truncated at quantile [1 - eps] (default [1e-9]); for each size the
    attempt recursion is solved exactly with closed-form revocation
    window probabilities, memoized over (reservation index, durable
    snapshots). Degenerate regimes ({!on_demand_only}-equal) with
    strictly increasing lengths bypass the discretization and delegate
    to {!Expected_cost.exact} (bit-for-bit Eq. (1) equivalence).
    @raise Invalid_argument as {!Discretize.run} on bad [disc_n]/[eps]. *)

val evaluator :
  ?disc_n:int -> ?eps:float -> regime -> Cost_model.t -> Distributions.Dist.t ->
  (plan -> float)
(** [evaluator regime m d] precomputes the discretization once and
    returns a closure evaluating plans against it — use when scoring
    many candidate plans (tier assignment). *)
