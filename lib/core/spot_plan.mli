(** Tier assignment and plan-shape search over a reservation sequence.

    Given a solved reservation head (the base solver's vetted prefix)
    and a spot {!Spot_cost.regime}, choose a revocation-aware plan:
    a tier per reservation, and — under snapshot recovery — possibly a
    different plan {e shape} entirely. The candidate families:

    - {b threshold tierings} of the head: spot for the first [i]
      reservations, on-demand after, [i = 0..K] (short early
      reservations risk little destroyed work);
    - {b chunked ladders}: the same reservation length repeated until
      the truncation quantile is covered in durable snapshots, on a
      small grid of chunk sizes around the revocation MTBF and the
      checkpoint stride, scored all-spot, all-on-demand and with
      spot-prefix cuts. The base head is optimal for Eq. (1)'s
      run-to-completion world where a failed reservation wastes all
      its work; once snapshots persist across reservations, flat spot
      chunks sized to survive between revocations dominate escalating
      lengths whenever the price discount outruns the checkpoint
      overhead;
    - {b greedy single-slot flips} from the best candidate (bounded
      passes, skipped for large ladders whose slots are
      interchangeable).

    Every candidate is scored with the {e same}
    {!Spot_cost.evaluator} closure, so comparisons carry no
    cross-candidate discretization bias, and the all-on-demand head is
    always in the candidate set: the result can never be worse than
    refusing spot entirely (graceful degradation under hostile regimes
    is by construction, not by luck). *)

type assignment = {
  plan : Spot_cost.plan;  (** The chosen plan. *)
  cost : float;  (** Its expected cost under the evaluator. *)
  on_demand_cost : float;
      (** The best plan using {e no} spot reservations (all-on-demand
          head or ladder) under the same evaluator —
          [cost <= on_demand_cost] always. *)
  all_spot_cost : float;  (** The naive all-spot head's cost. *)
  evaluated : int;  (** Candidate plans scored. *)
}

val assign :
  ?disc_n:int ->
  ?eps:float ->
  ?passes:int ->
  Spot_cost.regime ->
  Cost_model.t ->
  Distributions.Dist.t ->
  float array ->
  assignment
(** [assign regime m d lengths] searches plans for a [d]-distributed
    job whose base reservation head is [lengths] (finite, strictly
    increasing). [disc_n] (default [500]) and [eps] (default [1e-8])
    size the shared evaluator's discretization; [passes] (default [2])
    bounds the greedy flip passes.
    @raise Invalid_argument on an empty [lengths] or non-positive
    entries (as {!Spot_cost.make_plan}) or bad discretization
    parameters. *)
