(** The optimal-sequence recurrence of Theorem 3 / Proposition 1.

    An optimal sequence for STOCHASTIC satisfies, for [i >= 2]
    (Eq. (11), with [t_0 = 0]):

    {[ t_i = (1 - F t_(i-2)) / f t_(i-1)
             + beta/alpha * ((1 - F t_(i-1)) / f t_(i-1) - t_(i-1))
             - gamma/alpha ]}

    so the whole sequence is determined by the first reservation [t1].
    Not every [t1] yields a valid (strictly increasing) sequence — the
    recurrence only guarantees monotonicity at the optimal [t1^o] —
    and BRUTE-FORCE discards candidates that break it
    (Sect. 5.2, Fig. 3). *)

type stop =
  | Unsupported_t1 of float
      (** [t1] is non-finite or outside the support [(a, b]]. *)
  | Density_underflow of { t : float; survival : float }
      (** [f t] underflowed to 0 (or was nan) while [survival = 1 - F t]
          mass was still uncovered — Eq. (11) divides by [f t_(i-1)],
          so the recurrence cannot be continued past [t]. Typical deep
          in the tail of heavy-tailed or near-point-mass laws. *)
  | Non_finite of { t_prev : float; next : float }
      (** Eq. (11) produced a non-finite [next] after [t_prev]. *)
  | Non_increasing of { t_prev : float; next : float }
      (** Eq. (11) produced [next <= t_prev]: the candidate [t1] is off
          every optimal trajectory (Sect. 5.2). *)
  | Too_long of int
      (** [max_len] elements did not reach the coverage target. *)

(** Why the recurrence stopped before covering the target mass. *)

val stop_to_string : stop -> string
(** [stop_to_string s] is a one-line human-readable diagnostic. *)

val next :
  Cost_model.t -> Distributions.Dist.t -> t_prev2:float -> t_prev1:float -> float
(** [next m d ~t_prev2 ~t_prev1] is Eq. (11) for [t_i] given
    [t_(i-2)] and [t_(i-1)]. May return a non-finite or non-increasing
    value when [t_prev1] is not on an optimal trajectory or when the
    density underflows at [t_prev1]. *)

val generate :
  ?coverage:float ->
  ?max_len:int ->
  Cost_model.t ->
  Distributions.Dist.t ->
  t1:float ->
  (float array, stop) result
(** [generate m d ~t1] materialises the strictly increasing prefix of
    the recurrence sequence starting at [t1], stopping once
    [F t_i >= coverage] (default [1 - 1e-9]) or once the support's
    upper bound is reached (which is then included as the final
    element). Returns [Error stop] — a typed reason, see {!stop} —
    if the recurrence produces a non-finite or non-increasing value
    before that point, if the density underflows to zero with mass
    still uncovered, if [t1] lies outside the support, or if [max_len]
    (default [1000]) elements do not suffice. *)

val sequence :
  Cost_model.t -> Distributions.Dist.t -> t1:float -> Sequence.t
(** [sequence m d ~t1] is the infinite (or, for bounded support,
    [b]-terminated) sanitized reservation sequence driven by the
    recurrence: beyond the point where the raw recurrence stops
    increasing or its density underflows — which can only happen off
    the optimal trajectory or deep in the tail — it falls back to
    doubling (see {!Sequence.sanitize}). *)
