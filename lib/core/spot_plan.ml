type assignment = {
  plan : Spot_cost.plan;
  cost : float;
  on_demand_cost : float;
  all_spot_cost : float;
  evaluated : int;
}

(* A chunked ladder: the same reservation length repeated until the
   truncation point is covered in durable progress. Only meaningful
   under snapshot recovery (with restart semantics an expired flat
   chunk makes no progress and the ladder never advances). *)
let ladder_lengths regime ~upper chunk =
  match regime.Spot_cost.recovery with
  | Spot_cost.Restart -> None
  | Spot_cost.Snapshot { period; snapshot_cost; restore_cost } ->
      let stride = period +. snapshot_cost in
      if chunk < restore_cost +. stride then None
      else
        let useful =
          period *. Float.of_int (int_of_float ((chunk -. restore_cost) /. stride))
        in
        if useful <= 0.0 then None
        else
          let n = int_of_float (ceil (upper /. useful)) in
          let n = max 1 (min n 1024) in
          Some (Array.make n chunk)

(* Chunk-size grid: a few scales around the revocation MTBF and the
   checkpoint stride — each one candidate plan, scored like any other. *)
let chunk_grid regime ~upper =
  match regime.Spot_cost.recovery with
  | Spot_cost.Restart -> []
  | Spot_cost.Snapshot { period; snapshot_cost; restore_cost } ->
      let stride = restore_cost +. (4.0 *. (period +. snapshot_cost)) in
      let rate = regime.Spot_cost.revocation_rate in
      let mtbf = if rate > 0.0 then 1.0 /. rate else upper in
      [ stride; 2.0 *. stride; mtbf /. 2.0; mtbf; 2.0 *. mtbf ]
      |> List.filter (fun c -> Float.is_finite c && c > 0.0 && c <= 4.0 *. upper)
      |> List.sort_uniq compare

let assign ?(disc_n = 500) ?(eps = 1e-8) ?(passes = 2) regime m d lengths =
  let eval = Spot_cost.evaluator ~disc_n ~eps regime m d in
  let n = Array.length lengths in
  let evaluated = ref 0 in
  let score plan =
    incr evaluated;
    (plan, eval plan)
  in
  let score_tiers tiers = score (Spot_cost.make_plan ~lengths ~tiers) in
  let threshold i =
    Array.init n (fun k -> if k < i then Spot_cost.Spot else Spot_cost.On_demand)
  in
  let od_plan, od_cost = score_tiers (threshold 0) in
  let spot_plan, spot_cost = score_tiers (threshold n) in
  let best = ref (od_plan, od_cost) in
  let best_od = ref od_cost in
  let consider (plan, cost) =
    if cost < snd !best then best := (plan, cost);
    if Spot_cost.spot_slots plan = 0 && cost < !best_od then best_od := cost
  in
  consider (spot_plan, spot_cost);
  for i = 1 to n - 1 do
    consider (score_tiers (threshold i))
  done;
  (* Chunked ladders: flat repeated reservations that lean on snapshot
     recovery instead of escalating lengths — the shape that lets spot
     capacity win when reservations in the base head dwarf the MTBF.
     Scored on both tiers so the on-demand floor sees them too. *)
  let upper = Discretize.truncation_point ~eps d in
  List.iter
    (fun chunk ->
      match ladder_lengths regime ~upper chunk with
      | None -> ()
      | Some rungs ->
          let spot_rungs = score (Spot_cost.uniform_plan Spot_cost.Spot rungs) in
          consider spot_rungs;
          consider (score (Spot_cost.uniform_plan Spot_cost.On_demand rungs));
          (* Mixed ladders: spot prefix, on-demand tail — useful when
             the job-size tail should not keep gambling on revocation. *)
          let k = Array.length rungs in
          if k >= 4 then
            List.iter
              (fun frac ->
                let cut = max 1 (min (k - 1) (k * frac / 4)) in
                let tiers =
                  Array.init k (fun i ->
                      if i < cut then Spot_cost.Spot else Spot_cost.On_demand)
                in
                consider (score (Spot_cost.make_plan ~lengths:rungs ~tiers)))
              [ 1; 2; 3 ])
    (chunk_grid regime ~upper);
  (* Greedy refinement of the winner: flip one slot at a time, keep
     strict improvements. Bounded to plans small enough that a pass is
     cheap; ladder winners skip it (their slots are interchangeable). *)
  let plan0 = fst !best in
  let k0 = Array.length plan0.Spot_cost.lengths in
  if k0 <= 64 && Spot_cost.strictly_increasing plan0 then begin
    let tiers = Array.copy plan0.Spot_cost.tiers in
    let flip_lengths = plan0.Spot_cost.lengths in
    let improved = ref true in
    let pass = ref 0 in
    while !improved && !pass < passes do
      improved := false;
      incr pass;
      for k = 0 to k0 - 1 do
        let flipped = Array.copy tiers in
        flipped.(k) <-
          (match tiers.(k) with
          | Spot_cost.Spot -> Spot_cost.On_demand
          | Spot_cost.On_demand -> Spot_cost.Spot);
        let cand = score (Spot_cost.make_plan ~lengths:flip_lengths ~tiers:flipped) in
        if snd cand < snd !best then begin
          consider cand;
          tiers.(k) <- flipped.(k);
          improved := true
        end
      done
    done
  end;
  let plan, cost = !best in
  {
    plan;
    cost;
    on_demand_cost = !best_od;
    all_spot_cost = spot_cost;
    evaluated = !evaluated;
  }
