let exp1 = Distributions.Exponential.make ~rate:1.0

let expected_cost_exp1 ~s1 =
  if not (Float.is_finite s1) || s1 <= 0.0 then infinity
  else begin
    (* The s_i recurrence is an expanding map, so floating-point error
       derails every trajectory eventually — even the optimal one
       collapses after a handful of terms. We therefore evaluate the
       series Eq. (4) on the *sanitized* recurrence sequence, whose
       doubling fallback takes over at the collapse point; its extra
       terms are the exact cost of that well-defined sequence, keeping
       the objective finite and honest everywhere. *)
    let cost = Cost_model.reservation_only in
    Expected_cost.exact cost exp1 (Recurrence.sequence cost exp1 ~t1:s1)
  end

type solution = { s1 : float; e1 : float }

(* stochlint: allow GLOBAL_MUT_STATE — idempotent memo of a pure parameterless solve; a racing recompute is benign *)
let cache = ref None

let solve ?(tol = 1e-10) () =
  match !cache with
  | Some s -> s
  | None ->
      ignore tol;
      (* The objective has small discontinuities where the collapse
         index of the recurrence jumps, so a dense grid with
         golden-section polish is more reliable than pure Brent. *)
      let r =
        Numerics.Optimize.grid ~n:8000 (fun s1 -> expected_cost_exp1 ~s1) 1e-6
          2.0
      in
      let s = { s1 = r.Numerics.Optimize.xmin; e1 = r.Numerics.Optimize.fmin } in
      cache := Some s;
      s

let sequence ~rate =
  if rate <= 0.0 then invalid_arg "Exponential_opt.sequence: rate must be > 0";
  let { s1; _ } = solve () in
  let raw =
    let rec step (prev2, prev1) () =
      let s = exp (prev1 -. prev2) in
      Seq.Cons (s /. rate, step (prev1, s))
    in
    fun () -> Seq.Cons (s1 /. rate, step (0.0, s1))
  in
  Sequence.sanitize ~support:(Distributions.Dist.Unbounded 0.0) raw

let expected_cost ~rate =
  if rate <= 0.0 then invalid_arg "Exponential_opt.expected_cost: rate must be > 0";
  (solve ()).e1 /. rate
