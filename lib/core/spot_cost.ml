type tier = On_demand | Spot

let tier_name = function On_demand -> "on-demand" | Spot -> "spot"

type recovery =
  | Restart
  | Snapshot of { period : float; snapshot_cost : float; restore_cost : float }

type regime = { price_ratio : float; revocation_rate : float; recovery : recovery }

let is_finite x = Float.is_finite x

let make_regime ?(recovery = Restart) ~price_ratio ~revocation_rate () =
  if not (is_finite price_ratio && price_ratio > 0.0 && price_ratio <= 1.0) then
    invalid_arg "Spot_cost.make_regime: price_ratio must be finite in (0, 1]";
  if not (is_finite revocation_rate && revocation_rate >= 0.0) then
    invalid_arg "Spot_cost.make_regime: revocation_rate must be finite and >= 0";
  (match recovery with
  | Restart -> ()
  | Snapshot { period; snapshot_cost; restore_cost } ->
      if not (is_finite period && period > 0.0) then
        invalid_arg "Spot_cost.make_regime: snapshot period must be finite and > 0";
      if not (is_finite snapshot_cost && snapshot_cost >= 0.0) then
        invalid_arg "Spot_cost.make_regime: snapshot_cost must be finite and >= 0";
      if not (is_finite restore_cost && restore_cost >= 0.0) then
        invalid_arg "Spot_cost.make_regime: restore_cost must be finite and >= 0");
  { price_ratio; revocation_rate; recovery }

let on_demand_only = { price_ratio = 1.0; revocation_rate = 0.0; recovery = Restart }

type plan = { lengths : float array; tiers : tier array }

let make_plan ~lengths ~tiers =
  let n = Array.length lengths in
  if n = 0 then invalid_arg "Spot_cost.make_plan: empty plan";
  if Array.length tiers <> n then
    invalid_arg "Spot_cost.make_plan: lengths and tiers differ in length";
  Array.iter
    (fun l ->
      if not (is_finite l && l > 0.0) then
        invalid_arg "Spot_cost.make_plan: lengths must be finite and positive")
    lengths;
  { lengths = Array.copy lengths; tiers = Array.copy tiers }

let strictly_increasing plan =
  let prev = ref 0.0 in
  Array.for_all
    (fun l ->
      let ok = l > !prev in
      prev := l;
      ok)
    plan.lengths

let uniform_plan tier lengths =
  make_plan ~lengths ~tiers:(Array.make (Array.length lengths) tier)

let spot_slots plan =
  Array.fold_left (fun acc t -> match t with Spot -> acc + 1 | On_demand -> acc) 0 plan.tiers

(* Past the plan, extend by doubling the last length on the reliable
   tier: an on-demand reservation at least as long as the remaining
   work always finishes, so every walk terminates. *)
let slot plan k =
  if k < 0 then invalid_arg "Spot_cost.slot: negative index";
  let n = Array.length plan.lengths in
  if k < n then (plan.lengths.(k), plan.tiers.(k))
  else (Float.ldexp plan.lengths.(n - 1) (k - n + 1), On_demand)

let to_sequence plan =
  let n = Array.length plan.lengths in
  let rec ext last () =
    let v = last *. 2.0 in
    Seq.Cons (v, ext v)
  in
  let rec walk k () =
    if k < n then Seq.Cons (plan.lengths.(k), walk (k + 1))
    else ext plan.lengths.(n - 1) ()
  in
  walk 0

let price regime = function On_demand -> 1.0 | Spot -> regime.price_ratio

(* Deterministic geometry of one attempt: what it costs in elapsed
   time to finish from [progress] durable hours of a [total]-hour job
   under the regime's recovery discipline. *)
type attempt = { restore : float; snaps_to_finish : int; finish_elapsed : float }

let attempt_of regime ~progress ~total =
  match regime.recovery with
  | Restart -> { restore = 0.0; snaps_to_finish = 0; finish_elapsed = total }
  | Snapshot { period; snapshot_cost; restore_cost } ->
      let restore = if progress > 0.0 then restore_cost else 0.0 in
      let rem = total -. progress in
      let snaps = max 0 (int_of_float (ceil (rem /. period)) - 1) in
      {
        restore;
        snaps_to_finish = snaps;
        finish_elapsed = restore +. rem +. (snapshot_cost *. float_of_int snaps);
      }

(* Snapshots completed [elapsed] hours into an attempt; each one makes
   a further [period] of work durable. Capped at [snaps_to_finish]
   (provable, but cheap to enforce). *)
let snaps_by regime a ~elapsed =
  match regime.recovery with
  | Restart -> 0
  | Snapshot { period; snapshot_cost; _ } ->
      let c =
        int_of_float (floor ((elapsed -. a.restore) /. (period +. snapshot_cost)))
      in
      max 0 (min c a.snaps_to_finish)

let durable regime ~progress c =
  match regime.recovery with
  | Restart -> progress
  | Snapshot { period; _ } -> progress +. (period *. float_of_int c)

type outcome = { billed : float; progress : float; finished : bool; revoked : bool }

let slot_outcome regime m ~tier ~length ~progress ~total ~revocation =
  if progress < 0.0 then invalid_arg "Spot_cost.slot_outcome: negative progress";
  if not (total > progress) then
    invalid_arg "Spot_cost.slot_outcome: total must exceed progress";
  if not (length > 0.0) then invalid_arg "Spot_cost.slot_outcome: non-positive length";
  if revocation < 0.0 then invalid_arg "Spot_cost.slot_outcome: negative revocation";
  let open Cost_model in
  let p = price regime tier in
  let revocation = match tier with On_demand -> infinity | Spot -> revocation in
  let a = attempt_of regime ~progress ~total in
  if a.finish_elapsed <= length && a.finish_elapsed <= revocation then
    {
      billed = (p *. m.alpha *. length) +. (m.beta *. a.finish_elapsed) +. m.gamma;
      progress = total;
      finished = true;
      revoked = false;
    }
  else if revocation < length then
    (* Revoked mid-attempt: pay-for-use billing, keep durable snapshots. *)
    let c = snaps_by regime a ~elapsed:revocation in
    {
      billed = (((p *. m.alpha) +. m.beta) *. revocation) +. m.gamma;
      progress = durable regime ~progress c;
      finished = false;
      revoked = true;
    }
  else
    (* Expired: the reservation ran out before the job finished. *)
    let c = snaps_by regime a ~elapsed:length in
    {
      billed = (p *. m.alpha *. length) +. (m.beta *. length) +. m.gamma;
      progress = durable regime ~progress c;
      finished = false;
      revoked = false;
    }

let is_degenerate regime =
  match regime.recovery with
  | Snapshot _ -> false
  | Restart ->
      (* Exact degenerate-regime detection: price 1 and rate 0 select
         the bit-for-bit Eq. (1) fast path. *)
      (* stochlint: allow FLOAT_EQ — intentional exact sentinel values *)
      regime.price_ratio = 1.0 && regime.revocation_rate = 0.0

(* Expected cost of running a job of known size [t] under [plan],
   solved exactly by backward recursion over (reservation index,
   durable snapshot count) with closed-form exponential revocation
   windows. Branches with reach weight below [prune] contribute
   nothing detectable and are cut to bound the window walks. *)
let cost_for_total regime m plan t =
  let open Cost_model in
  let lam_spot = regime.revocation_rate in
  let period, sigma =
    match regime.recovery with
    | Restart -> (infinity, 0.0)
    | Snapshot s -> (s.period, s.snapshot_cost)
  in
  let prune = 1e-13 in
  let n = Array.length plan.lengths in
  let max_k = n + 128 in
  let memo : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  let rec go k j =
    let key = (k, j) in
    match Hashtbl.find_opt memo key with
    | Some v -> v
    | None ->
        let v = compute k j in
        Hashtbl.replace memo key v;
        v
  and compute k j =
    if k >= max_k then infinity
    else
      let progress =
        match regime.recovery with
        | Restart -> 0.0
        | Snapshot _ -> float_of_int j *. period
      in
      if progress >= t then 0.0
      else
        let length, tier = slot plan k in
        let p = price regime tier in
        let lam = match tier with On_demand -> 0.0 | Spot -> lam_spot in
        let a = attempt_of regime ~progress ~total:t in
        let e_fin = a.finish_elapsed in
        (* Rate 0 selects the deterministic (revocation-free) closed
           form; any positive rate takes the exponential-window branch. *)
        (* stochlint: allow FLOAT_EQ — intentional exact zero-rate sentinel *)
        if lam = 0.0 then
          if e_fin <= length then (p *. m.alpha *. length) +. (m.beta *. e_fin) +. m.gamma
          else
            let c = snaps_by regime a ~elapsed:length in
            (p *. m.alpha *. length) +. (m.beta *. length) +. m.gamma +. go (k + 1) (j + c)
        else begin
          let m_lim = min e_fin length in
          let acc = ref 0.0 in
          if e_fin <= length then
            (* Success: the job finishes at e_fin unless revoked first. *)
            acc :=
              exp (-.lam *. e_fin)
              *. ((p *. m.alpha *. length) +. (m.beta *. e_fin) +. m.gamma)
          else begin
            (* Expiry: survive to the reservation end, job unfinished. *)
            let pe = exp (-.lam *. length) in
            let c = snaps_by regime a ~elapsed:length in
            let bill = (p *. m.alpha *. length) +. (m.beta *. length) +. m.gamma in
            acc := !acc +. (pe *. bill);
            if pe > prune then acc := !acc +. (pe *. go (k + 1) (j + c))
          end;
          (* Revocation windows: a revocation s hours in, with exactly c
             snapshots durable, lands in
             [restore + c (period + sigma), restore + (c+1) (period + sigma))
             (window 0 starts at 0). Pay-for-use billing integrates
             lam e^(-lam s) ((p alpha + beta) s + gamma) in closed form. *)
          let crate = (p *. m.alpha) +. m.beta in
          let inv = 1.0 /. lam in
          let c = ref 0 in
          let continue = ref true in
          while !continue do
            let lo =
              if !c = 0 then 0.0
              else a.restore +. (float_of_int !c *. (period +. sigma))
            in
            if lo >= m_lim then continue := false
            else begin
              let hi = min m_lim (a.restore +. (float_of_int (!c + 1) *. (period +. sigma))) in
              let e_lo = exp (-.lam *. lo) and e_hi = exp (-.lam *. hi) in
              let prob = e_lo -. e_hi in
              let s_int = ((lo +. inv) *. e_lo) -. ((hi +. inv) *. e_hi) in
              acc := !acc +. (crate *. s_int) +. (m.gamma *. prob);
              if prob > prune then begin
                let cc = min !c a.snaps_to_finish in
                acc := !acc +. (prob *. go (k + 1) (j + cc))
              end;
              incr c;
              if hi >= m_lim || e_hi < prune then continue := false
            end
          done;
          !acc
        end
  in
  go 0 0

(* Midpoint equal-probability grid: values at quantile
   (F(b) (i + 1/2) / n). Unlike the DP's right-endpoint grid
   (Discretize.run), midpoints are second-order accurate, which keeps
   the discretization bias well inside the Monte-Carlo validation
   tolerance. *)
let evaluator_general ~disc_n ~eps regime m d =
  let b = Discretize.truncation_point ~eps d in
  let fb = d.Distributions.Dist.cdf b in
  let n = float_of_int disc_n in
  let values =
    Array.init disc_n (fun i ->
        d.Distributions.Dist.quantile (fb *. (float_of_int i +. 0.5) /. n))
  in
  let w = 1.0 /. n in
  fun plan ->
    let acc = Numerics.Kahan.create () in
    Array.iter
      (fun v -> if v > 0.0 then Numerics.Kahan.add acc (w *. cost_for_total regime m plan v))
      values;
    Numerics.Kahan.sum acc

let evaluator ?(disc_n = 2000) ?(eps = 1e-9) regime m d =
  if disc_n <= 0 then invalid_arg "Spot_cost.evaluator: disc_n must be positive";
  if not (eps > 0.0 && eps < 1.0) then
    invalid_arg "Spot_cost.evaluator: eps must be in (0, 1)";
  if is_degenerate regime then begin
    (* The Eq. (4) series assumes increasing reservation lengths
       (success at slot k means t <= t_k); flat chunked plans need the
       walk-based recursion even in the degenerate regime. *)
    let general = lazy (evaluator_general ~disc_n ~eps regime m d) in
    fun plan ->
      if strictly_increasing plan then Expected_cost.exact m d (to_sequence plan)
      else (Lazy.force general) plan
  end
  else evaluator_general ~disc_n ~eps regime m d

let expected_cost ?disc_n ?eps regime m d plan = (evaluator ?disc_n ?eps regime m d) plan
