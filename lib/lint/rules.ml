open Parsetree

type context = Lib of string | Bin | Test | Other

let context_of_path path =
  let segments = String.split_on_char '/' (String.concat "/" (String.split_on_char '\\' path)) in
  let rec classify = function
    | [] -> Other
    | "lib" :: sub :: _ :: _ -> Lib sub
    | ("bin" | "examples" | "bench") :: _ -> Bin
    | ("test" | "tests") :: _ -> Test
    | _ :: rest -> classify rest
  in
  classify segments

let context_of_string s =
  match String.split_on_char ':' s with
  | [ "bin" ] -> Ok Bin
  | [ "test" ] -> Ok Test
  | [ "other" ] -> Ok Other
  | [ "lib"; name ] when name <> "" -> Ok (Lib name)
  | _ ->
      Error
        (Printf.sprintf
           "bad context %S (expected lib:NAME, bin, test or other)" s)

(* ------------------------------------------------------------------ *)
(* FLOAT_EQ: which expressions are "known float"?                      *)
(* ------------------------------------------------------------------ *)

let float_constants =
  [ "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float"; "min_float" ]

(* Top-level operators and functions whose result type is float. *)
let float_returning =
  [
    "+."; "-."; "*."; "/."; "**"; "~-."; "~+.";
    "sqrt"; "exp"; "exp2"; "expm1"; "log"; "log10"; "log2"; "log1p";
    "cos"; "sin"; "tan"; "acos"; "asin"; "atan"; "atan2";
    "cosh"; "sinh"; "tanh"; "ceil"; "floor"; "abs_float"; "mod_float";
    "copysign"; "hypot"; "ldexp"; "float_of_int"; "float_of_string"; "float";
  ]

(* Float.* values that are themselves floats. *)
let float_module_constants =
  [ "pi"; "infinity"; "neg_infinity"; "nan"; "epsilon"; "max_float"; "min_float"; "zero"; "one"; "minus_one" ]

(* Float.* functions returning float (to_int, compare, equal etc. are
   deliberately absent). *)
let float_module_functions =
  [
    "abs"; "add"; "sub"; "mul"; "div"; "neg"; "rem"; "pow"; "fma";
    "succ"; "pred"; "max"; "min"; "max_num"; "min_num";
    "round"; "trunc"; "ceil"; "floor"; "of_int"; "of_string";
    "sqrt"; "exp"; "log"; "log10"; "log2"; "log1p"; "expm1"; "cbrt";
    "cos"; "sin"; "tan"; "acos"; "asin"; "atan"; "atan2";
    "cosh"; "sinh"; "tanh"; "copy_sign"; "ldexp";
  ]

let rec is_floaty e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt = Longident.Lident name; _ } ->
      List.mem name float_constants
  | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Float", name); _ } ->
      List.mem name float_module_constants
  | Pexp_apply (fn, _) -> (
      match fn.pexp_desc with
      | Pexp_ident { txt = Longident.Lident op; _ } ->
          List.mem op float_returning
      | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Float", f); _ } ->
          List.mem f float_module_functions
      | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Stdlib", op); _ }
        ->
          List.mem op float_returning
      | _ -> false)
  | Pexp_constraint (inner, ty) -> is_float_type ty || is_floaty inner
  | _ -> false

and is_float_type ty =
  match ty.ptyp_desc with
  | Ptyp_constr ({ txt = Longident.Lident "float"; _ }, []) -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Identifier tables for the other rules                               *)
(* ------------------------------------------------------------------ *)

let partial_functions =
  [
    ([ "Option"; "get" ], "Option.get");
    ([ "List"; "hd" ], "List.hd");
    ([ "List"; "nth" ], "List.nth");
    ([ "Hashtbl"; "find" ], "Hashtbl.find");
    ([ "Array"; "get" ], "Array.get");
  ]

let partial_hint = function
  | "Option.get" -> "match on the option or thread the value through"
  | "List.hd" | "List.nth" -> "pattern-match on the list shape instead"
  | "Hashtbl.find" -> "use Hashtbl.find_opt"
  | "Array.get" -> "bounds-check or restructure the index computation"
  | _ -> "use a total alternative"

let exn_raisers = [ "failwith"; "raise"; "raise_notrace" ]

let print_toplevel =
  [
    "print_string"; "print_endline"; "print_newline"; "print_int";
    "print_float"; "print_char"; "print_bytes";
    "prerr_string"; "prerr_endline"; "prerr_newline";
  ]

let print_formatted = [ "printf"; "eprintf" ]

(* UNLOGGED_SINK: references to ambient output channels/formatters.
   Library code should take a [Stochobs.Writer.t]/[Log.t] from the
   caller instead of reaching for a process-global sink. *)
let global_channels = [ "stdout"; "stderr" ]
let global_formatters = [ "std_formatter"; "err_formatter" ]

(* ------------------------------------------------------------------ *)
(* The pass                                                            *)
(* ------------------------------------------------------------------ *)

let check ~context ~file ~source structure =
  let findings = ref [] in
  let add rule (loc : Location.t) message =
    if not loc.loc_ghost then
      let p = loc.loc_start in
      findings :=
        {
          Finding.rule;
          file;
          line = p.pos_lnum;
          col = p.pos_cnum - p.pos_bol;
          message;
        }
        :: !findings
  in
  let in_lib = match context with Lib _ -> true | _ -> false in
  let exn_rule_applies =
    match context with Lib ("numerics" | "robustness") -> true | _ -> false
  in
  let partial_rule_applies = context <> Test in
  (* The source text at a location — used to tell a literal
     [Array.get] from the [a.(i)] sugar, which parses to the same
     identifier but whose printed form never appears in the file. *)
  let source_at (loc : Location.t) =
    let a = loc.loc_start.pos_cnum and b = loc.loc_end.pos_cnum in
    if a >= 0 && b >= a && b <= String.length source then
      Some (String.sub source a (b - a))
    else None
  in
  let check_ident (lid : Longident.t Location.loc) =
    let path = Longident.flatten lid.txt in
    (* PARTIAL_FN *)
    if partial_rule_applies then
      List.iter
        (fun (target, name) ->
          if path = target then
            let explicit =
              (* [a.(i)] desugars to an [Array.get] ident whose
                 location spans the whole indexing expression; only
                 flag spellings the programmer actually wrote. *)
              name <> "Array.get"
              ||
              match source_at lid.loc with
              | Some text -> text = "Array.get" || text = "Array. get"
              | None -> false
            in
            if explicit then
              add Partial_fn lid.loc
                (Printf.sprintf "partial function `%s` can raise at runtime; %s"
                   name (partial_hint name)))
        partial_functions;
    (* EXN_IN_CORE *)
    if exn_rule_applies then
      (match path with
      | [ name ] when List.mem name exn_raisers ->
          add Exn_in_core lid.loc
            (Printf.sprintf
               "`%s` escapes the typed-error layer; return a `result` from \
                the PR 3 error taxonomy instead"
               name)
      | _ -> ());
    (* UNSEEDED_RANDOM *)
    (match path with
    | "Random" :: _ :: _ ->
        add Unseeded_random lid.loc
          (Printf.sprintf
             "global `%s` breaks seeded fault-trace/fuzz reproducibility; \
              draw from an explicit `Randomness.Rng.t` state"
             (String.concat "." path))
    | _ -> ());
    (* PRINT_IN_LIB *)
    if in_lib then
      match path with
      | [ name ] when List.mem name print_toplevel ->
          add Print_in_lib lid.loc
            (Printf.sprintf
               "`%s` writes to a global channel from library code; format \
                through `Fmt` or return the data"
               name)
      | [ (("Printf" | "Format") as m); fn ] when List.mem fn print_formatted
        ->
          add Print_in_lib lid.loc
            (Printf.sprintf
               "`%s.%s` writes to a global channel from library code; use \
                `sprintf`/`asprintf` or a caller-supplied formatter"
               m fn)
      | [ "Stdlib"; name ] when List.mem name print_toplevel ->
          add Print_in_lib lid.loc
            (Printf.sprintf
               "`Stdlib.%s` writes to a global channel from library code; \
                format through `Fmt` or return the data"
               name)
      | _ -> ()
  in
  (* UNLOGGED_SINK — a separate hook because it must see every ident
     reference, including ones nested under applications the other
     rules already matched. *)
  let check_sink (lid : Longident.t Location.loc) =
    if in_lib then
      match Longident.flatten lid.txt with
      | ([ name ] | [ "Stdlib"; name ]) when List.mem name global_channels ->
          add Unlogged_sink lid.loc
            (Printf.sprintf
               "ambient channel `%s` referenced from library code; accept a \
                `Stochobs.Writer.t` (or `Log.t`) from the caller instead"
               name)
      | [ "Format"; name ] when List.mem name global_formatters ->
          add Unlogged_sink lid.loc
            (Printf.sprintf
               "ambient formatter `Format.%s` referenced from library code; \
                take the formatter as a parameter or log via `Stochobs.Log`"
               name)
      | _ -> ()
  in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident lid ->
              check_ident lid;
              check_sink lid
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ },
                [ (Asttypes.Nolabel, lhs); (Asttypes.Nolabel, rhs) ] )
            when (op = "=" || op = "<>" || op = "==" || op = "!=")
                 && (is_floaty lhs || is_floaty rhs) ->
              add Float_eq e.pexp_loc
                (Printf.sprintf
                   "exact float comparison `%s` on a float operand; use a \
                    tolerance or an explicit inequality (or suppress if the \
                    exact value is an intentional sentinel)"
                   op)
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iterator.structure iterator structure;
  List.sort Finding.compare !findings
