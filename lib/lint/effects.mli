(** The effect lattice stochdomcheck infers for every top-level
    function, plus builtin effect tables for externals (stdlib, Unix)
    the analysis will never see a [.cmt] for.

    All flags are may-effects: [true] = "the analysis saw a path",
    [false] = "no path seen". [join] is pointwise disjunction, so the
    call-graph fixpoint is monotone. *)

type t = {
  reads_global : bool;  (** reads some top-level mutable value *)
  writes_global : bool;  (** writes some top-level mutable value *)
  reads_param : bool;
      (** reads mutable state handed to it (or allocated locally) *)
  writes_param : bool;
      (** mutates values it did not verifiably allocate itself —
          harmless under [Domain.spawn] iff every domain passes fresh
          arguments *)
  io : bool;  (** ambient IO: channels, Unix, Sys, exit *)
  rng : bool;
      (** draws from RNG state that was not threaded as a parameter *)
}

val pure : t
val join : t -> t -> t
val equal : t -> t -> bool
val is_pure : t -> bool

val to_string : t -> string
(** ["pure"] or a [+]-joined tag list, e.g.
    ["writes-global+reads-global+io"]. *)

(** Behaviour of a call to an external we have no [.cmt] for.
    [Mutator]/[Reader] act on the first positional argument (the
    stdlib container convention); [Io]/[Rng] are ambient; [Opaque] is
    assumed pure. *)
type builtin = Mutator | Reader | Io | Rng | Opaque

val classify : string -> builtin
(** Classify a canonical value path, e.g.
    [classify "Stdlib.Hashtbl.replace" = Mutator]. *)

val mutable_type_heads : string list
(** Builtin type constructors whose values are always mutable
    ([ref], [array], [Hashtbl.t], ...). *)

val rng_type_heads : string list
(** Canonical type paths that are RNG state ([Randomness.Rng.t]). *)

val has_prefix : prefix:string -> string -> bool
