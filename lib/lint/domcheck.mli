(** stochdomcheck: cross-module effect & domain-safety analysis over
    the typedtrees ([.cmt] files) of the whole build.

    Three rule families ride on the stochlint Finding/Suppress/Baseline
    machinery:

    - [GLOBAL_MUT_STATE] — an unannotated top-level mutable value in
      [lib/] (severity Warning);
    - [DOMAIN_UNSAFE_REACH] — a declared parallel-candidate entry
      point transitively writes shared global mutable state (Warning);
    - [RNG_AMBIENT] — RNG state reached ambiently: a global
      [Randomness.Rng.t], or an entry point drawing from stdlib
      [Random] (Error).

    Alongside the findings, [report_json] renders the effect report
    the multicore PR will diff against: every global mutable with its
    writers/readers and which entry points reach it, and the inferred
    effect signature of each entry point. *)

type global = {
  g_key : string;  (** canonical, e.g. ["Stochobs__Metrics.default"] *)
  g_pretty : string;  (** human form, e.g. ["Stochobs.Metrics.default"] *)
  g_file : string;
  g_line : int;
  g_col : int;
  g_kind : string;  (** ["ref"], ["hashtable"], ["mutable record (...)"] ... *)
  g_type : string;  (** printed type *)
  g_rng : bool;  (** is a [Randomness.Rng.t] *)
  g_quiet : bool;
      (** array/bytes with no observed writer — a lookup table; listed
          in the report, not linted *)
  mutable g_suppressed : string option;  (** inline-allow reason *)
  mutable g_writers : string list;
  mutable g_readers : string list;
  mutable g_reached_by : string list;  (** entry points reaching it *)
}

type entry_report = {
  e_key : string;
  e_pretty : string;
  e_file : string;
  e_line : int;
  e_eff : Effects.t;
  e_writes : string list;
  e_reads : string list;
  e_unsafe : string list;  (** unsuppressed globals it writes *)
  e_rng_ambient : bool;
}

type outcome = {
  findings : Finding.t list;
  suppressed : int;
  globals : global list;
  entries : entry_report list;
  functions : int;
  units : int;
  load_errors : Cmt_load.load_error list;
  unresolved_entries : string list;
      (** entry names that matched no analysed function *)
}

val default_entries : string list
(** The repo's declared parallel-candidate entry points. *)

val analyze :
  ?context:Rules.context ->
  source_root:string ->
  entries:string list ->
  string list ->
  outcome
(** [analyze ~source_root ~entries roots] loads every [.cmt] under
    [roots], runs the inventory + effect fixpoint, and evaluates the
    rules for [entries]. Source files are read relative to
    [source_root] for inline suppressions. [?context] forces every
    file into one lint context (fixtures in tests); the default maps
    paths with [Rules.context_of_path]. *)

val report_json : outcome -> Json.t
val pretty : string -> string
(** ["A__B.c"] -> ["A.B.c"]. *)
