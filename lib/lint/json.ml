(* The emitter now lives in Stochobs (the observability library needs
   it below the numerics layer); re-exported here so lint code and its
   callers keep saying [Json]. *)
include Stochobs.Json
