type t = (string * Finding.rule * int) list
(* (file, rule, count), kept sorted for stable serialisation *)

let empty = []

let sort = List.sort (fun (f1, r1, _) (f2, r2, _) ->
    let c = String.compare f1 f2 in
    if c <> 0 then c
    else String.compare (Finding.rule_id r1) (Finding.rule_id r2))

let load path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error msg -> Error msg
  | text -> (
      match Json.of_string text with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok json -> (
          match Json.member "entries" json with
          | None -> Error (Printf.sprintf "%s: missing \"entries\" field" path)
          | Some entries -> (
              match Json.to_list entries with
              | None ->
                  Error (Printf.sprintf "%s: \"entries\" is not an array" path)
              | Some items ->
                  let parse_entry acc item =
                    match acc with
                    | Error _ -> acc
                    | Ok entries -> (
                        let field name conv =
                          Option.bind (Json.member name item) conv
                        in
                        match
                          ( field "file" Json.to_str,
                            Option.bind (field "rule" Json.to_str)
                              Finding.rule_of_id,
                            field "count" Json.to_int )
                        with
                        | Some file, Some rule, Some count when count >= 0 ->
                            Ok ((file, rule, count) :: entries)
                        | _ ->
                            Error
                              (Printf.sprintf
                                 "%s: malformed baseline entry (need file, \
                                  known rule, count >= 0)"
                                 path))
                  in
                  Result.map sort
                    (List.fold_left parse_entry (Ok []) items))))

let of_findings findings =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (f : Finding.t) ->
      let key = (f.file, f.rule) in
      let c = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (c + 1))
    findings;
  sort (Hashtbl.fold (fun (file, rule) count acc -> (file, rule, count) :: acc) tbl [])

let to_json_string t =
  Json.to_string
    (Json.Obj
       [
         ("version", Json.Num 1.0);
         ( "entries",
           Json.Arr
             (List.map
                (fun (file, rule, count) ->
                  Json.Obj
                    [
                      ("file", Json.Str file);
                      ("rule", Json.Str (Finding.rule_id rule));
                      ("count", Json.Num (float_of_int count));
                    ])
                (sort t)) );
       ])
  ^ "\n"

let allowed t ~file ~rule =
  match
    List.find_opt (fun (f, r, _) -> f = file && r = rule) t
  with
  | Some (_, _, c) -> c
  | None -> 0

type application = {
  kept : Finding.t list;
  baselined : int;
  exceeded : (string * Finding.rule * int * int) list;
}

let apply t findings =
  let groups = Hashtbl.create 64 in
  List.iter
    (fun (f : Finding.t) ->
      let key = (f.file, f.rule) in
      let cur = Option.value ~default:[] (Hashtbl.find_opt groups key) in
      Hashtbl.replace groups key (f :: cur))
    findings;
  let kept = ref [] in
  let baselined = ref 0 in
  let exceeded = ref [] in
  Hashtbl.iter
    (fun (file, rule) group ->
      let found = List.length group in
      let budget = allowed t ~file ~rule in
      if found <= budget then baselined := !baselined + found
      else begin
        kept := group @ !kept;
        if budget > 0 then exceeded := (file, rule, found, budget) :: !exceeded
      end)
    groups;
  {
    kept = List.sort Finding.compare !kept;
    baselined = !baselined;
    exceeded = !exceeded;
  }
