(** A single stochlint finding: one rule violation at one source location. *)

type rule =
  | Float_eq  (** exact [=]/[<>]/[==] on a known-float operand *)
  | Partial_fn  (** [Option.get], [List.hd], ... outside test code *)
  | Exn_in_core  (** [failwith]/[raise] in the typed-error core layers *)
  | Unseeded_random  (** global [Random.*] instead of [Randomness.Rng] *)
  | Print_in_lib  (** [print_*]/[Printf.printf] in library code *)
  | Unlogged_sink
      (** bare [stdout]/[stderr]/[Format.std_formatter] in library
          code — route output through [Stochobs.Log]/[Writer] *)
  | Global_mut_state
      (** stochdomcheck: unannotated top-level mutable value in [lib/]
          (ref, mutable record, hashtable, buffer, array, ...) *)
  | Domain_unsafe_reach
      (** stochdomcheck: a declared parallel-candidate entry point
          transitively writes shared global mutable state *)
  | Rng_ambient
      (** stochdomcheck: RNG state reached ambiently (stdlib [Random]
          or a global [Randomness.Rng.t]) instead of being threaded as
          a parameter *)

type severity = Error | Warning

type t = {
  rule : rule;
  file : string;  (** normalised, '/'-separated, no leading "./" *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as the compiler reports *)
  message : string;
}

val all_rules : rule list

val rule_id : rule -> string
(** Stable identifier, e.g. ["FLOAT_EQ"] — used in reports, inline
    suppressions and the baseline file. *)

val rule_of_id : string -> rule option
val severity : rule -> severity
val severity_to_string : severity -> string

val compare : t -> t -> int
(** Order by file, line, column, then rule id. *)

val to_human : t -> string
(** [file:line:col: severity RULE: message] — one line, no trailing
    newline. *)
