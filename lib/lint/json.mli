(** Minimal JSON support for stochlint reports and baselines.

    Deliberately dependency-free: the container only guarantees the
    OCaml toolchain, so the linter carries its own emitter and a small
    recursive-descent parser covering the subset it writes (objects,
    arrays, strings with backslash escapes, integers/floats, booleans,
    null). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Serialise; [indent] (default true) pretty-prints with 2-space
    indentation so baselines diff cleanly under version control. *)

val of_string : string -> (t, string) result
(** Parse, or [Error message] naming the byte offset of the failure. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else. *)

val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
