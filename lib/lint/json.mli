(** Re-export of {!Stochobs.Json}, which is where the emitter moved
    when the observability layer (a leaf library) started needing it.
    Lint code keeps referring to [Json] unchanged. *)

type t = Stochobs.Json.t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
val of_string : string -> (t, string) result
val member : string -> t -> t option
val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
