(** Loading typedtrees out of the [.cmt] files dune's [-bin-annot]
    leaves under [_build]. *)

type unit_info = {
  ui_name : string;  (** compilation unit, e.g. ["Stochobs__Metrics"] *)
  ui_source : string;
      (** build-root-relative source path, e.g. ["lib/obs/metrics.ml"] *)
  ui_cmt : string;  (** path the [.cmt] was read from *)
  ui_structure : Typedtree.structure;
}

type load_error = { le_file : string; le_message : string }

val find_cmts : string -> string list
(** Recursively collect [.cmt] paths under a directory. Dot-dirs are
    walked (dune hides object trees under [.<lib>.objs]); [.git] is
    skipped. *)

val load : string -> (unit_info, load_error) result
(** Read one [.cmt]. Fails on wrong magic, interface-only and partial
    implementations. *)

val load_all : string list -> unit_info list * load_error list
(** Load every unit under the given roots, first-wins deduplicated on
    unit name. *)

val normalise : string -> string
