(** File discovery, parsing and rule orchestration. *)

type parse_error = {
  pe_file : string;
  pe_line : int;
  pe_col : int;
  pe_message : string;
}

type file_report = {
  fr_file : string;
  fr_findings : Finding.t list;  (** after inline suppression *)
  fr_suppressed : int;  (** findings silenced by inline directives *)
  fr_malformed : (int * string) list;
      (** suppression-marker comments that failed to parse *)
}

type outcome = {
  files : int;
  reports : file_report list;
  errors : parse_error list;
}

val collect_files : string list -> string list
(** Expand each path: a directory is walked recursively for [.ml]
    files, skipping [_build], [.git] and [fixtures] subtrees (fixture
    sources violate rules on purpose); a file path is taken verbatim,
    so tests can point directly at fixtures. Sorted, de-duplicated. *)

val lint_file :
  ?context:Rules.context -> string -> (file_report, parse_error) result
(** Parse with compiler-libs ([Parse.implementation]) and run the
    rules. [context] overrides path-based classification. *)

val run : ?context:Rules.context -> string list -> outcome
(** [collect_files] + [lint_file] over every discovered source. *)

val findings : outcome -> Finding.t list
(** All findings across reports, sorted. *)
