type rule =
  | Float_eq
  | Partial_fn
  | Exn_in_core
  | Unseeded_random
  | Print_in_lib
  | Unlogged_sink
  | Global_mut_state
  | Domain_unsafe_reach
  | Rng_ambient

type severity = Error | Warning

type t = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  message : string;
}

let all_rules =
  [
    Float_eq; Partial_fn; Exn_in_core; Unseeded_random; Print_in_lib;
    Unlogged_sink; Global_mut_state; Domain_unsafe_reach; Rng_ambient;
  ]

let rule_id = function
  | Float_eq -> "FLOAT_EQ"
  | Partial_fn -> "PARTIAL_FN"
  | Exn_in_core -> "EXN_IN_CORE"
  | Unseeded_random -> "UNSEEDED_RANDOM"
  | Print_in_lib -> "PRINT_IN_LIB"
  | Unlogged_sink -> "UNLOGGED_SINK"
  | Global_mut_state -> "GLOBAL_MUT_STATE"
  | Domain_unsafe_reach -> "DOMAIN_UNSAFE_REACH"
  | Rng_ambient -> "RNG_AMBIENT"

let rule_of_id s = List.find_opt (fun r -> rule_id r = s) all_rules

(* FLOAT_EQ, PARTIAL_FN, UNSEEDED_RANDOM and RNG_AMBIENT are
   silent-wrong-answer hazards (tail probabilities, trace
   reproducibility); EXN_IN_CORE, PRINT_IN_LIB, UNLOGGED_SINK and the
   stochdomcheck inventory/reach rules are API-discipline rules, so
   they rank as warnings. The CI gate fails on either — severity only
   affects reporting. *)
let severity = function
  | Float_eq | Partial_fn | Unseeded_random | Rng_ambient -> Error
  | Exn_in_core | Print_in_lib | Unlogged_sink | Global_mut_state
  | Domain_unsafe_reach ->
      Warning

let severity_to_string = function Error -> "error" | Warning -> "warning"

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else String.compare (rule_id a.rule) (rule_id b.rule)

let to_human f =
  Printf.sprintf "%s:%d:%d: %s %s: %s" f.file f.line f.col
    (severity_to_string (severity f.rule))
    (rule_id f.rule) f.message
