(** The six stochlint rules, applied to a parsed implementation.

    Which rules run depends on where the file lives:

    - [FLOAT_EQ] and [UNSEEDED_RANDOM] run everywhere (a test that
      depends on exact float equality or global RNG state is as flaky
      as library code that does);
    - [PARTIAL_FN] runs in library and executable code but not tests
      (a test raising on an unexpected [None] is an acceptable way to
      fail);
    - [EXN_IN_CORE] runs only in [lib/numerics] and [lib/robustness],
      the layers PR 3 moved to a typed-[result] error taxonomy;
    - [PRINT_IN_LIB] and [UNLOGGED_SINK] run only in [lib/]:
      library code emits through a caller-supplied [Stochobs] writer
      or logger, never an ambient channel/formatter. *)

type context =
  | Lib of string  (** [Lib "numerics"] for [lib/numerics/foo.ml] *)
  | Bin
  | Test
  | Other

val context_of_path : string -> context
(** Classify by path segments: the segment after a [lib] component
    names the library; [bin]/[test] components map to [Bin]/[Test];
    anything else is [Other]. *)

val context_of_string : string -> (context, string) result
(** Parse a [--context] override: ["lib:NAME"], ["bin"], ["test"] or
    ["other"]. *)

val check :
  context:context ->
  file:string ->
  source:string ->
  Parsetree.structure ->
  Finding.t list
(** Run every applicable rule. [source] is the raw file text, used to
    distinguish a literal [Array.get] from the [a.(i)] sugar the
    parser desugars to the same identifier. Findings are sorted and
    not yet suppression- or baseline-filtered. *)
