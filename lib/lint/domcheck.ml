(* stochdomcheck: cross-module effect and domain-safety analysis.

   Consumes the per-unit raw facts of Typed_index, canonicalises every
   reference through the module-alias graph (dune's wrapped-library
   alias units make "Stochobs.Metrics.default" and the binding in unit
   Stochobs__Metrics the same value), closes the mutable-type relation
   and the call-graph effect relation to a fixpoint, and emits:

     - GLOBAL_MUT_STATE: an unannotated top-level mutable value in lib/
     - DOMAIN_UNSAFE_REACH: a declared parallel-candidate entry point
       transitively writes shared global mutable state
     - RNG_AMBIENT: RNG state reached ambiently — a global
       [Randomness.Rng.t], or an entry point that transitively draws
       from stdlib [Random]

   plus the machine-readable effect report the multicore PR diffs
   against ("what must become per-domain"). Suppressions reuse the
   stochlint inline-comment machinery; baselines reuse Baseline. *)

module SS = Typed_index.SS

(* ------------------------------------------------------------------ *)
(* Canonicalisation                                                    *)
(* ------------------------------------------------------------------ *)

(* "Stochobs__Metrics.default" -> "Stochobs.Metrics.default" for
   humans; dune mangles wrapped-library submodules with "__". *)
let pretty key =
  let split_dunders seg =
    let n = String.length seg in
    let rec go start i acc =
      if i + 1 >= n then List.rev (String.sub seg start (n - start) :: acc)
      else if seg.[i] = '_' && seg.[i + 1] = '_' && i > start then
        go (i + 2) (i + 2) (String.sub seg start (i - start) :: acc)
      else go start (i + 1) acc
    in
    go 0 0 []
  in
  String.concat "."
    (List.concat_map split_dunders (String.split_on_char '.' key))

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let rec drop n l =
  if n <= 0 then l else match l with [] -> [] | _ :: rest -> drop (n - 1) rest

(* Expand module-alias prefixes (longest first) until the key names
   its defining unit. Fuel-bounded against alias cycles. *)
let resolve aliases key =
  let rec go key fuel =
    if fuel = 0 then key
    else
      let segs = String.split_on_char '.' key in
      let n = List.length segs in
      let rec try_prefix k =
        if k = 0 then None
        else
          match Hashtbl.find_opt aliases (String.concat "." (take k segs)) with
          | Some target ->
              Some (String.concat "." (target :: drop k segs))
          | None -> try_prefix (k - 1)
      in
      match try_prefix n with
      | Some key' when key' <> key -> go key' (fuel - 1)
      | _ -> key
  in
  go key 32

(* ------------------------------------------------------------------ *)
(* Result types                                                        *)
(* ------------------------------------------------------------------ *)

type global = {
  g_key : string;
  g_pretty : string;
  g_file : string;
  g_line : int;
  g_col : int;
  g_kind : string;
  g_type : string;
  g_rng : bool;  (* is RNG state (Randomness.Rng.t) *)
  g_quiet : bool;  (* array/bytes with no observed writer: report-only *)
  mutable g_suppressed : string option;  (* inline-allow reason *)
  mutable g_writers : string list;  (* pretty fn keys, sorted *)
  mutable g_readers : string list;
  mutable g_reached_by : string list;  (* pretty entry keys *)
}

type fn = {
  fn_key : string;
  fn_file : string;
  fn_line : int;
  fn_col : int;
  fn_body : Typed_index.body;  (* canonicalised keys *)
  mutable fn_eff : Effects.t;
  mutable fn_writes : SS.t;
  mutable fn_reads : SS.t;
  mutable fn_via : (string * string) list;  (* global -> next hop ("" direct) *)
}

type entry_report = {
  e_key : string;
  e_pretty : string;
  e_file : string;
  e_line : int;
  e_eff : Effects.t;
  e_writes : string list;  (* pretty global keys, all (incl. suppressed) *)
  e_reads : string list;
  e_unsafe : string list;  (* pretty unsuppressed written globals *)
  e_rng_ambient : bool;
}

type outcome = {
  findings : Finding.t list;
  suppressed : int;
  globals : global list;
  entries : entry_report list;
  functions : int;
  units : int;
  load_errors : Cmt_load.load_error list;
  unresolved_entries : string list;
}

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let kind_of_head head =
  match head with
  | "Stdlib.ref" | "ref" -> Some "ref"
  | "array" -> Some "array"
  | "bytes" -> Some "bytes"
  | "Stdlib.Hashtbl.t" -> Some "hashtable"
  | "Stdlib.Buffer.t" -> Some "buffer"
  | "Stdlib.Queue.t" -> Some "queue"
  | "Stdlib.Stack.t" -> Some "stack"
  | "Stdlib.Atomic.t" -> Some "atomic"
  | "Stdlib.Weak.t" | "Stdlib.Ephemeron.K1.t" -> Some "weak table"
  | _ -> None

let body_map_keys f (b : Typed_index.body) : Typed_index.body =
  {
    b with
    f_mentions = SS.map f b.f_mentions;
    f_mut_targets = SS.map f b.f_mut_targets;
    f_read_targets = SS.map f b.f_read_targets;
    f_calls = List.map (fun (c, args) -> (f c, SS.map f args)) b.f_calls;
  }

type source_cache = (string, Suppress.t option) Hashtbl.t

let suppressions_for (cache : source_cache) ~source_root file =
  match Hashtbl.find_opt cache file with
  | Some s -> s
  | None ->
      let path =
        if Filename.is_relative file then Filename.concat source_root file
        else file
      in
      let s =
        match
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with
        | source -> Some (Suppress.scan source)
        | exception Sys_error _ -> None
      in
      Hashtbl.replace cache file s;
      s

let directive_reason sup ~rule ~line =
  Option.bind sup (fun sup ->
      List.find_map
        (fun (d : Suppress.directive) ->
          if d.rule = rule && (d.line = line || d.line = line - 1) then
            Some (if d.reason = "" then "(no reason given)" else d.reason)
          else None)
        (Suppress.directives sup))

let default_entries =
  [
    "Platform.Simulator.run";
    "Stochastic_core.Brute_force.search";
    "Scheduler.Engine.run";
    "Scheduler.Spot_sim.run";
    "Robust.Solver.solve";
    "Robust.Solver.solve_spot";
    "Experiments.Robustness.run";
  ]

let analyze ?context ~source_root ~entries cmt_paths =
  let units, load_errors = Cmt_load.load_all cmt_paths in
  let facts = List.map Typed_index.scan units in
  (* Alias graph. *)
  let aliases = Hashtbl.create 256 in
  List.iter
    (fun (u : Typed_index.t) ->
      List.iter (fun (k, v) -> Hashtbl.replace aliases k v) u.u_aliases)
    facts;
  let resolve = resolve aliases in
  (* Mutable-type closure: builtin heads + declared mutable records +
     manifest chains onto either. *)
  let mutable_types = Hashtbl.create 128 in
  List.iter
    (fun h -> Hashtbl.replace mutable_types h ())
    Effects.mutable_type_heads;
  let tfacts =
    List.concat_map
      (fun (u : Typed_index.t) ->
        List.map
          (fun (t : Typed_index.type_fact) ->
            ( resolve t.t_key,
              t.t_mutable,
              Option.map resolve t.t_manifest ))
          u.u_types)
      facts
  in
  List.iter
    (fun (key, m, _) -> if m then Hashtbl.replace mutable_types key ())
    tfacts;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (key, _, manifest) ->
        if not (Hashtbl.mem mutable_types key) then
          match manifest with
          | Some m when Hashtbl.mem mutable_types m ->
              Hashtbl.replace mutable_types key ();
              changed := true
          | _ -> ())
      tfacts
  done;
  let rng_type key =
    List.mem key Effects.rng_type_heads
    || List.mem (pretty key) Effects.rng_type_heads
  in
  (* Bindings, canonicalised. *)
  let all_bindings =
    List.concat_map
      (fun (u : Typed_index.t) ->
        List.map
          (fun (b : Typed_index.binding) ->
            ( u,
              {
                b with
                Typed_index.b_key = resolve b.Typed_index.b_key;
                b_type_head = Option.map resolve b.b_type_head;
                b_body = body_map_keys resolve b.b_body;
              } ))
          u.u_bindings)
      facts
  in
  (* Global inventory. *)
  let globals : (string, global) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ((_ : Typed_index.t), (b : Typed_index.binding)) ->
      if not b.b_is_fun then begin
        let head = b.b_type_head in
        let head_kind = Option.bind head kind_of_head in
        let declared_mut =
          match head with
          | Some h -> Hashtbl.mem mutable_types h && head_kind = None
          | None -> false
        in
        let is_rng = match head with Some h -> rng_type h | None -> false in
        let kind =
          match (b.b_alloc, head_kind, declared_mut, head) with
          | Some k, _, _, _ -> Some k
          | None, Some k, _, _ -> Some k
          | None, None, true, Some h ->
              Some (Printf.sprintf "mutable record (%s)" (pretty h))
          | _ ->
              (* [Rng.t] is abstract, so neither the head table nor the
                 declared-mutable closure sees it — but a global
                 generator is exactly the ambient state RNG_AMBIENT
                 exists for. *)
              if is_rng then Some "rng state" else None
        in
        match kind with
        | None -> ()
        | Some kind ->
            Hashtbl.replace globals b.b_key
              {
                g_key = b.b_key;
                g_pretty = pretty b.b_key;
                g_file = b.b_file;
                g_line = b.b_line;
                g_col = b.b_col;
                g_kind = kind;
                g_type = b.b_type;
                g_rng = is_rng;
                g_quiet = false;  (* refined after the fixpoint *)
                g_suppressed = None;
                g_writers = [];
                g_readers = [];
                g_reached_by = [];
              }
      end)
    all_bindings;
  let is_global k = Hashtbl.mem globals k in
  let globals_of set = SS.filter is_global set in
  (* Function table; non-function initialisers fold into the unit's
     <init> pseudo-function. *)
  let fns : (string, fn) Hashtbl.t = Hashtbl.create 512 in
  List.iter
    (fun ((_ : Typed_index.t), (b : Typed_index.binding)) ->
      if b.b_is_fun then
        Hashtbl.replace fns b.b_key
          {
            fn_key = b.b_key;
            fn_file = b.b_file;
            fn_line = b.b_line;
            fn_col = b.b_col;
            fn_body = b.b_body;
            fn_eff = Effects.pure;
            fn_writes = SS.empty;
            fn_reads = SS.empty;
            fn_via = [];
          })
    all_bindings;
  List.iter
    (fun ((u : Typed_index.t), (b : Typed_index.binding)) ->
      if not b.b_is_fun then begin
        (* Initialiser effects of a top-level value run at module load:
           account them to Unit.<init>. *)
        let init_key = resolve (u.u_name ^ ".<init>") in
        match Hashtbl.find_opt fns init_key with
        | Some init ->
            let ib = init.fn_body and bb = b.b_body in
            ib.f_mentions <- SS.union ib.f_mentions bb.f_mentions;
            ib.f_mut_targets <- SS.union ib.f_mut_targets bb.f_mut_targets;
            ib.f_read_targets <- SS.union ib.f_read_targets bb.f_read_targets;
            ib.f_local_mut <- ib.f_local_mut || bb.f_local_mut;
            ib.f_local_read <- ib.f_local_read || bb.f_local_read;
            ib.f_io <- ib.f_io || bb.f_io;
            ib.f_rng <- ib.f_rng || bb.f_rng;
            ib.f_rng_lines <- bb.f_rng_lines @ ib.f_rng_lines;
            ib.f_calls <- bb.f_calls @ ib.f_calls
        | None -> ()
      end)
    all_bindings;
  (* Direct writer/reader attribution (for the report): the function
     that touches the global, or the sharing point that passes it to a
     param-mutating callee. *)
  let writers : (string, SS.t ref) Hashtbl.t = Hashtbl.create 64 in
  let readers : (string, SS.t ref) Hashtbl.t = Hashtbl.create 64 in
  let attribute tbl g f =
    let r =
      match Hashtbl.find_opt tbl g with
      | Some r -> r
      | None ->
          let r = ref SS.empty in
          Hashtbl.replace tbl g r;
          r
    in
    r := SS.add f !r
  in
  (* Base effects. *)
  Hashtbl.iter
    (fun _ f ->
      let b = f.fn_body in
      let w = globals_of b.f_mut_targets in
      let r =
        SS.union (globals_of b.f_read_targets) (globals_of b.f_mentions)
      in
      f.fn_writes <- w;
      f.fn_reads <- r;
      SS.iter (fun g -> attribute writers g f.fn_key) w;
      SS.iter (fun g -> attribute readers g f.fn_key) r;
      f.fn_via <- SS.fold (fun g acc -> (g, "") :: acc) w [];
      f.fn_eff <-
        {
          Effects.reads_global = not (SS.is_empty r);
          writes_global = not (SS.is_empty w);
          reads_param = b.f_local_read;
          writes_param = b.f_local_mut;
          io = b.f_io;
          rng = b.f_rng;
        })
    fns;
  (* Fixpoint over the call graph. *)
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun _ f ->
        List.iter
          (fun (callee, args) ->
            match Hashtbl.find_opt fns callee with
            | None -> ()
            | Some g ->
                let arg_globals = globals_of args in
                let new_writes =
                  SS.union g.fn_writes
                    (if g.fn_eff.Effects.writes_param then arg_globals
                     else SS.empty)
                in
                let new_reads =
                  SS.union g.fn_reads
                    (if g.fn_eff.Effects.reads_param then arg_globals
                     else SS.empty)
                in
                let fresh_w = SS.diff new_writes f.fn_writes in
                let fresh_r = SS.diff new_reads f.fn_reads in
                if not (SS.is_empty fresh_w) then begin
                  SS.iter
                    (fun gk ->
                      f.fn_via <- (gk, callee) :: f.fn_via;
                      if
                        g.fn_eff.Effects.writes_param
                        && SS.mem gk arg_globals
                        && not (SS.mem gk g.fn_writes)
                      then attribute writers gk f.fn_key)
                    fresh_w;
                  f.fn_writes <- SS.union f.fn_writes fresh_w;
                  changed := true
                end;
                if not (SS.is_empty fresh_r) then begin
                  SS.iter
                    (fun gk ->
                      if
                        g.fn_eff.Effects.reads_param
                        && SS.mem gk arg_globals
                        && not (SS.mem gk g.fn_reads)
                      then attribute readers gk f.fn_key)
                    fresh_r;
                  f.fn_reads <- SS.union f.fn_reads fresh_r;
                  changed := true
                end;
                let eff' =
                  {
                    Effects.reads_global = not (SS.is_empty f.fn_reads);
                    writes_global = not (SS.is_empty f.fn_writes);
                    reads_param =
                      f.fn_eff.Effects.reads_param
                      || g.fn_eff.Effects.reads_param;
                    writes_param =
                      f.fn_eff.Effects.writes_param
                      || g.fn_eff.Effects.writes_param;
                    io = f.fn_eff.Effects.io || g.fn_eff.Effects.io;
                    rng = f.fn_eff.Effects.rng || g.fn_eff.Effects.rng;
                  }
                in
                if not (Effects.equal eff' f.fn_eff) then begin
                  f.fn_eff <- eff';
                  changed := true
                end)
          f.fn_body.f_calls)
      fns
  done;
  (* Fill report attribution on globals; arrays/bytes nobody ever
     writes are lookup tables in practice — keep them in the report
     but do not lint them. *)
  Hashtbl.iter
    (fun key g ->
      let names tbl =
        match Hashtbl.find_opt tbl key with
        | Some r ->
            List.sort String.compare (List.map pretty (SS.elements !r))
        | None -> []
      in
      g.g_writers <- names writers;
      g.g_readers <- names readers)
    globals;
  let globals_list =
    Hashtbl.fold
      (fun _ g acc ->
        let quiet =
          (g.g_kind = "array" || g.g_kind = "bytes") && g.g_writers = []
        in
        { g with g_quiet = quiet } :: acc)
      globals []
    |> List.sort (fun a b ->
           let c = String.compare a.g_file b.g_file in
           if c <> 0 then c else Int.compare a.g_line b.g_line)
  in
  let globals = Hashtbl.create 64 in
  List.iter (fun g -> Hashtbl.replace globals g.g_key g) globals_list;
  (* Inline suppressions. *)
  let cache : source_cache = Hashtbl.create 32 in
  let suppressed_count = ref 0 in
  List.iter
    (fun g ->
      let rule =
        if g.g_rng then Finding.Rng_ambient else Finding.Global_mut_state
      in
      let sup = suppressions_for cache ~source_root g.g_file in
      match directive_reason sup ~rule ~line:g.g_line with
      | Some reason ->
          g.g_suppressed <- Some reason;
          incr suppressed_count
      | None -> ())
    globals_list;
  let context_of file =
    match context with Some c -> c | None -> Rules.context_of_path file
  in
  let in_lib file =
    match context_of file with Rules.Lib _ -> true | _ -> false
  in
  (* Entry points. *)
  let unresolved = ref [] in
  let entry_fns =
    List.filter_map
      (fun name ->
        let key = resolve name in
        match Hashtbl.find_opt fns key with
        | Some f -> Some (name, f)
        | None -> (
            match Hashtbl.find_opt fns name with
            | Some f -> Some (name, f)
            | None ->
                unresolved := name :: !unresolved;
                None))
      entries
  in
  let unsuppressed g =
    match Hashtbl.find_opt globals g with
    | Some gl -> Option.is_none gl.g_suppressed
    | None -> true
  in
  let chain f g =
    (* entry -> ... -> direct writer, through the via links. *)
    let rec go key acc fuel =
      if fuel = 0 then List.rev acc
      else
        match Hashtbl.find_opt fns key with
        | None -> List.rev acc
        | Some fn -> (
            match List.assoc_opt g fn.fn_via with
            | Some "" | None -> List.rev acc
            | Some next -> go next (pretty next :: acc) (fuel - 1))
    in
    go f.fn_key [] 6
  in
  let findings = ref [] in
  let suppress_or_add rule file line col message =
    let sup = suppressions_for cache ~source_root file in
    match sup with
    | Some sup when Suppress.active sup ~rule ~line -> incr suppressed_count
    | _ ->
        findings :=
          { Finding.rule; file; line; col; message } :: !findings
  in
  (* GLOBAL_MUT_STATE / RNG_AMBIENT on globals in lib context. *)
  List.iter
    (fun g ->
      if in_lib g.g_file && not g.g_quiet && g.g_suppressed = None then
        if g.g_rng then
          suppress_or_add Finding.Rng_ambient g.g_file g.g_line g.g_col
            (Printf.sprintf
               "global RNG state `%s` (%s) is ambient; thread an explicit \
                `Randomness.Rng.t` (split per domain) instead"
               g.g_pretty g.g_type)
        else
          suppress_or_add Finding.Global_mut_state g.g_file g.g_line g.g_col
            (Printf.sprintf
               "top-level mutable value `%s` (%s) is shared process state; \
                make it per-domain, pass it explicitly, or annotate the \
                intent with `(* stochlint: allow GLOBAL_MUT_STATE — reason \
                *)`"
               g.g_pretty g.g_kind))
    globals_list;
  (* Entry-point rules. *)
  let entry_reports =
    List.map
      (fun (name, f) ->
        let epretty = pretty f.fn_key in
        let unsafe =
          SS.elements (SS.filter unsuppressed f.fn_writes)
          |> List.filter (fun g ->
                 match Hashtbl.find_opt globals g with
                 | Some gl -> not gl.g_quiet
                 | None -> true)
        in
        let rng_globals =
          SS.filter
            (fun g ->
              match Hashtbl.find_opt globals g with
              | Some gl -> gl.g_rng && Option.is_none gl.g_suppressed
              | None -> false)
            (SS.union f.fn_reads f.fn_writes)
        in
        let rng_ambient =
          f.fn_eff.Effects.rng || not (SS.is_empty rng_globals)
        in
        if unsafe <> [] then begin
          let witness g =
            match chain f g with
            | [] -> pretty g
            | hops ->
                Printf.sprintf "%s (via %s)" (pretty g)
                  (String.concat " -> " hops)
          in
          let shown = take 4 unsafe in
          let more = List.length unsafe - List.length shown in
          suppress_or_add Finding.Domain_unsafe_reach f.fn_file f.fn_line
            f.fn_col
            (Printf.sprintf
               "parallel-candidate entry `%s` transitively writes shared \
                mutable state: %s%s — make these per-domain (with a merge \
                step) before fanning out with Domain.spawn"
               epretty
               (String.concat ", " (List.map witness shown))
               (if more > 0 then Printf.sprintf " and %d more" more else ""))
        end;
        if rng_ambient then
          suppress_or_add Finding.Rng_ambient f.fn_file f.fn_line f.fn_col
            (Printf.sprintf
               "parallel-candidate entry `%s` reaches RNG state that is not \
                threaded as a parameter%s; per-domain determinism needs an \
                explicit split `Rng.t` per worker"
               epretty
               (match SS.choose_opt rng_globals with
               | Some g -> Printf.sprintf " (%s)" (pretty g)
               | None -> " (stdlib Random)"));
        SS.iter
          (fun g ->
            match Hashtbl.find_opt globals g with
            | Some gl ->
                if not (List.mem epretty gl.g_reached_by) then
                  gl.g_reached_by <- epretty :: gl.g_reached_by
            | None -> ())
          (SS.union f.fn_reads f.fn_writes);
        ignore name;
        {
          e_key = f.fn_key;
          e_pretty = epretty;
          e_file = f.fn_file;
          e_line = f.fn_line;
          e_eff = f.fn_eff;
          e_writes =
            List.map pretty (SS.elements f.fn_writes)
            |> List.sort String.compare;
          e_reads =
            List.map pretty (SS.elements f.fn_reads)
            |> List.sort String.compare;
          e_unsafe = List.map pretty unsafe |> List.sort String.compare;
          e_rng_ambient = rng_ambient;
        })
      entry_fns
  in
  List.iter
    (fun g -> g.g_reached_by <- List.sort String.compare g.g_reached_by)
    globals_list;
  {
    findings = List.sort Finding.compare !findings;
    suppressed = !suppressed_count;
    globals = globals_list;
    entries = entry_reports;
    functions = Hashtbl.length fns;
    units = List.length units;
    load_errors;
    unresolved_entries = List.rev !unresolved;
  }

(* ------------------------------------------------------------------ *)
(* Effect report                                                       *)
(* ------------------------------------------------------------------ *)

let effect_json (e : Effects.t) =
  Json.Obj
    [
      ("reads_global", Json.Bool e.Effects.reads_global);
      ("writes_global", Json.Bool e.Effects.writes_global);
      ("reads_param", Json.Bool e.Effects.reads_param);
      ("writes_param", Json.Bool e.Effects.writes_param);
      ("io", Json.Bool e.Effects.io);
      ("rng", Json.Bool e.Effects.rng);
      ("label", Json.Str (Effects.to_string e));
    ]

let report_json outcome =
  let strs l = Json.Arr (List.map (fun s -> Json.Str s) l) in
  let global_json g =
    Json.Obj
      ([
         ("path", Json.Str g.g_pretty);
         ("file", Json.Str g.g_file);
         ("line", Json.Num (float_of_int g.g_line));
         ("col", Json.Num (float_of_int g.g_col));
         ("kind", Json.Str g.g_kind);
         ("type", Json.Str g.g_type);
         ("rng", Json.Bool g.g_rng);
         ("report_only", Json.Bool g.g_quiet);
         ("suppressed", Json.Bool (Option.is_some g.g_suppressed));
       ]
      @ (match g.g_suppressed with
        | Some reason -> [ ("reason", Json.Str reason) ]
        | None -> [])
      @ [
          ("writers", strs g.g_writers);
          ("readers", strs g.g_readers);
          ("reached_by", strs g.g_reached_by);
        ])
  in
  let entry_json e =
    Json.Obj
      [
        ("path", Json.Str e.e_pretty);
        ("file", Json.Str e.e_file);
        ("line", Json.Num (float_of_int e.e_line));
        ("effect", effect_json e.e_eff);
        ("globals_written", strs e.e_writes);
        ("globals_read", strs e.e_reads);
        ("unsafe_writes", strs e.e_unsafe);
        ("rng_ambient", Json.Bool e.e_rng_ambient);
      ]
  in
  let count rule =
    List.length
      (List.filter (fun (f : Finding.t) -> f.rule = rule) outcome.findings)
  in
  Json.Obj
    [
      ("version", Json.Num 1.0);
      ("units", Json.Num (float_of_int outcome.units));
      ("functions", Json.Num (float_of_int outcome.functions));
      ("globals", Json.Arr (List.map global_json outcome.globals));
      ("entries", Json.Arr (List.map entry_json outcome.entries));
      ( "summary",
        Json.Obj
          [
            ("global_count", Json.Num (float_of_int (List.length outcome.globals)));
            ( "suppressed_globals",
              Json.Num
                (float_of_int
                   (List.length
                      (List.filter
                         (fun g -> Option.is_some g.g_suppressed)
                         outcome.globals))) );
            ( "global_mut_state",
              Json.Num (float_of_int (count Finding.Global_mut_state)) );
            ( "domain_unsafe_reach",
              Json.Num (float_of_int (count Finding.Domain_unsafe_reach)) );
            ("rng_ambient", Json.Num (float_of_int (count Finding.Rng_ambient)));
          ] );
    ]
