(* Per-unit typedtree scan: the fact-extraction half of stochdomcheck.

   One pass over a compilation unit's typedtree produces, in *raw*
   (alias-unresolved) form:

     - module aliases ([module X = P]) — both dune's generated
       wrapped-library alias units and local shorthands — so Domcheck
       can canonicalise every reference onto the defining unit;
     - type declarations that are records/variants with mutable
       fields, plus manifest chains for [type t = Other.t] aliases;
     - every top-level value binding: its resolved key
       ("Unit.Sub.name"), location, whether it is a function, the head
       constructor of its type, whether its initialiser syntactically
       allocates mutable state, and the effect facts of its body.

   Effect facts are collected flat over the whole binding body
   (closures included): direct mutations/reads of absolutely-named
   values, ambient IO and RNG touches, and call edges to other
   absolutely-named functions together with the absolutely-named
   values that appear in the arguments. Classification of which keys
   are *global mutable state* happens later, in Domcheck, once every
   unit's inventory is known.

   Compiler-libs compatibility: the scan deliberately avoids matching
   [Texp_function] and [Tpat_var] payloads (both changed shape between
   OCaml 5.1 and 5.2) — parameters are never collected; instead, a
   mutation whose target mentions no absolutely-named value is
   recorded as the ambient [writes_param] fact. *)

module SS = Set.Make (String)

type body = {
  mutable f_mentions : SS.t;  (* absolute keys referenced anywhere *)
  mutable f_mut_targets : SS.t;  (* absolute keys directly mutated *)
  mutable f_read_targets : SS.t;  (* absolute keys directly read as mutable *)
  mutable f_local_mut : bool;  (* mutated something not absolutely named *)
  mutable f_local_read : bool;
  mutable f_io : bool;
  mutable f_rng : bool;
  mutable f_rng_lines : int list;
  mutable f_calls : (string * SS.t) list;  (* callee key, arg keys *)
}

type binding = {
  b_key : string;
  b_file : string;
  b_line : int;
  b_col : int;
  b_is_fun : bool;
  b_type_head : string option;
  b_type : string;
  b_alloc : string option;  (* mutable-allocator kind, if syntactic *)
  b_body : body;
}

type type_fact = {
  t_key : string;
  t_mutable : bool;  (* declares a mutable field directly *)
  t_manifest : string option;  (* head of [type t = manifest], raw *)
}

type t = {
  u_name : string;
  u_source : string;
  u_bindings : binding list;  (* init pseudo-binding "<unit>.<init>" last *)
  u_aliases : (string * string) list;
  u_types : type_fact list;
}

let fresh_body () =
  {
    f_mentions = SS.empty;
    f_mut_targets = SS.empty;
    f_read_targets = SS.empty;
    f_local_mut = false;
    f_local_read = false;
    f_io = false;
    f_rng = false;
    f_rng_lines = [];
    f_calls = [];
  }

(* ------------------------------------------------------------------ *)
(* Path flattening                                                     *)
(* ------------------------------------------------------------------ *)

(* [Path.t] to (head ident, trailing names). Wildcarded so the extra
   constructors later compilers grew ([Pextra_ty]) fall through. *)
let split_path p =
  let rec go p acc =
    match p with
    | Path.Pident id -> Some (id, acc)
    | Path.Pdot (q, s) -> go q (s :: acc)
    | _ -> None
  in
  go p []

(* Resolve a path to an absolute dotted key. Heads that are global
   (persistent units, predef) keep their name; local idents resolve
   through [env], which maps the unit's own top-level values, modules
   and module aliases (by [Ident.unique_name]) to absolute keys.
   Function-local variables are not in [env] and yield [None]. *)
let raw_of_path env p =
  match split_path p with
  | None -> None
  | Some (head, rest) ->
      let base =
        if Ident.global head then Some (Ident.name head)
        else Hashtbl.find_opt env (Ident.unique_name head)
      in
      Option.map
        (fun b -> match rest with [] -> b | _ -> String.concat "." (b :: rest))
        base

(* ------------------------------------------------------------------ *)
(* Types: head constructor, arrow detection                            *)
(* ------------------------------------------------------------------ *)

let rec head_constr_path ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some p
  | Types.Tpoly (t, _) -> head_constr_path t
  | _ -> None

let rec is_arrow ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> true
  | Types.Tpoly (t, _) -> is_arrow t
  | _ -> false

let type_to_string ty =
  match Format.asprintf "%a" Printtyp.type_expr ty with
  | s -> s
  | exception _ -> "<unprintable>"

(* ------------------------------------------------------------------ *)
(* Syntactic mutable allocators                                        *)
(* ------------------------------------------------------------------ *)

let allocators =
  [
    ("Stdlib.ref", "ref");
    ("Stdlib.Hashtbl.create", "hashtable");
    ("Stdlib.Buffer.create", "buffer");
    ("Stdlib.Array.make", "array");
    ("Stdlib.Array.init", "array");
    ("Stdlib.Array.create_float", "array");
    ("Stdlib.Array.make_matrix", "array");
    ("Stdlib.Bytes.create", "bytes");
    ("Stdlib.Bytes.make", "bytes");
    ("Stdlib.Queue.create", "queue");
    ("Stdlib.Stack.create", "stack");
    ("Stdlib.Atomic.make", "atomic");
  ]

(* ------------------------------------------------------------------ *)
(* Expression scan                                                     *)
(* ------------------------------------------------------------------ *)

(* Absolute keys mentioned anywhere inside [e] — used to attribute a
   mutation/read target or a call argument to the values it touches. *)
let abs_idents env e =
  let acc = ref SS.empty in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub ex ->
          (match ex.Typedtree.exp_desc with
          | Typedtree.Texp_ident (p, _, _) -> (
              match raw_of_path env p with
              | Some key -> acc := SS.add key !acc
              | None -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr sub ex);
    }
  in
  it.expr it e;
  !acc

let first_positional args =
  List.find_map
    (fun (label, arg) ->
      match (label, arg) with
      | Asttypes.Nolabel, Some (a : Typedtree.expression) -> Some a
      | _ -> None)
    args

let scan_expr env (facts : body) e =
  let line (ex : Typedtree.expression) = ex.exp_loc.loc_start.pos_lnum in
  let mention_path p ex =
    match raw_of_path env p with
    | None -> ()
    | Some key -> (
        facts.f_mentions <- SS.add key facts.f_mentions;
        match Effects.classify key with
        | Effects.Io -> facts.f_io <- true
        | Effects.Rng ->
            facts.f_rng <- true;
            facts.f_rng_lines <- line ex :: facts.f_rng_lines
        | _ -> ())
  in
  let target_of keys ~on_abs ~on_local =
    if SS.is_empty keys then on_local () else on_abs keys
  in
  let handle_call p args =
    match raw_of_path env p with
    | None -> ()
    | Some callee -> (
        match Effects.classify callee with
        | Effects.Mutator -> (
            match first_positional args with
            | None -> facts.f_local_mut <- true
            | Some a ->
                target_of (abs_idents env a)
                  ~on_abs:(fun keys ->
                    facts.f_mut_targets <- SS.union keys facts.f_mut_targets)
                  ~on_local:(fun () -> facts.f_local_mut <- true))
        | Effects.Reader -> (
            match first_positional args with
            | None -> facts.f_local_read <- true
            | Some a ->
                target_of (abs_idents env a)
                  ~on_abs:(fun keys ->
                    facts.f_read_targets <- SS.union keys facts.f_read_targets)
                  ~on_local:(fun () -> facts.f_local_read <- true))
        | Effects.Io -> facts.f_io <- true
        | Effects.Rng -> facts.f_rng <- true
        | Effects.Opaque ->
            let arg_keys =
              List.fold_left
                (fun acc (_, arg) ->
                  match arg with
                  | Some a -> SS.union (abs_idents env a) acc
                  | None -> acc)
                SS.empty args
            in
            facts.f_calls <- (callee, arg_keys) :: facts.f_calls)
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub ex ->
          (match ex.Typedtree.exp_desc with
          | Typedtree.Texp_ident (p, _, _) -> mention_path p ex
          | Typedtree.Texp_apply
              ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, args) ->
              handle_call p args
          | Typedtree.Texp_setfield (tgt, _, _, _) ->
              target_of (abs_idents env tgt)
                ~on_abs:(fun keys ->
                  facts.f_mut_targets <- SS.union keys facts.f_mut_targets)
                ~on_local:(fun () -> facts.f_local_mut <- true)
          | _ -> ());
          Tast_iterator.default_iterator.expr sub ex);
    }
  in
  it.expr it e

(* ------------------------------------------------------------------ *)
(* Structure scan                                                      *)
(* ------------------------------------------------------------------ *)

let has_mutable_label lds =
  List.exists (fun ld -> ld.Types.ld_mutable = Asttypes.Mutable) lds

let record_literal_mutable (fields : (Types.label_description * _) array) =
  Array.exists (fun (ld, _) -> ld.Types.lbl_mut = Asttypes.Mutable) fields

let scan (unit_info : Cmt_load.unit_info) =
  let env : (string, string) Hashtbl.t = Hashtbl.create 128 in
  let bindings = ref [] in
  let aliases = ref [] in
  let types = ref [] in
  let init_body = fresh_body () in
  let unit_name = unit_info.ui_name in
  let register id key = Hashtbl.replace env (Ident.unique_name id) key in
  let scan_vb prefix (vb : Typedtree.value_binding) =
    let facts = fresh_body () in
    scan_expr env facts vb.vb_expr;
    match Typedtree.pat_bound_idents vb.vb_pat with
    | [ id ] ->
        let key = prefix ^ "." ^ Ident.name id in
        let loc = vb.vb_pat.pat_loc.loc_start in
        let ty = vb.vb_expr.exp_type in
        let alloc =
          match vb.vb_expr.exp_desc with
          | Typedtree.Texp_apply
              ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, _) -> (
              match raw_of_path env p with
              | Some raw -> List.assoc_opt raw allocators
              | None -> None)
          | Typedtree.Texp_record { fields; _ } ->
              if record_literal_mutable fields then Some "mutable record"
              else None
          | Typedtree.Texp_array _ -> Some "array"
          | _ -> None
        in
        bindings :=
          {
            b_key = key;
            b_file = Cmt_load.normalise loc.pos_fname;
            b_line = loc.pos_lnum;
            b_col = loc.pos_cnum - loc.pos_bol;
            b_is_fun = is_arrow ty;
            b_type_head =
              Option.bind (head_constr_path ty) (raw_of_path env);
            b_type = type_to_string ty;
            b_alloc = alloc;
            b_body = facts;
          }
          :: !bindings
    | _ ->
        (* [let () = ...], tuple patterns: module-initialisation code. *)
        init_body.f_mentions <- SS.union facts.f_mentions init_body.f_mentions;
        init_body.f_mut_targets <-
          SS.union facts.f_mut_targets init_body.f_mut_targets;
        init_body.f_read_targets <-
          SS.union facts.f_read_targets init_body.f_read_targets;
        init_body.f_local_mut <- init_body.f_local_mut || facts.f_local_mut;
        init_body.f_local_read <- init_body.f_local_read || facts.f_local_read;
        init_body.f_io <- init_body.f_io || facts.f_io;
        init_body.f_rng <- init_body.f_rng || facts.f_rng;
        init_body.f_rng_lines <- facts.f_rng_lines @ init_body.f_rng_lines;
        init_body.f_calls <- facts.f_calls @ init_body.f_calls
  in
  let rec scan_items prefix items =
    List.iter (scan_item prefix) items
  and scan_item prefix (si : Typedtree.structure_item) =
    match si.str_desc with
    | Typedtree.Tstr_value (_, vbs) ->
        (* Register every bound name first so [let rec] bodies resolve
           their own (and their siblings') keys. *)
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            List.iter
              (fun id -> register id (prefix ^ "." ^ Ident.name id))
              (Typedtree.pat_bound_idents vb.vb_pat))
          vbs;
        List.iter (scan_vb prefix) vbs
    | Typedtree.Tstr_module mb -> scan_mb prefix mb
    | Typedtree.Tstr_recmodule mbs -> List.iter (scan_mb prefix) mbs
    | Typedtree.Tstr_type (_, decls) -> List.iter (scan_tdecl prefix) decls
    | Typedtree.Tstr_eval (e, _) -> scan_eval e
    | _ -> ()
  and scan_eval e =
    let facts = fresh_body () in
    scan_expr env facts e;
    init_body.f_mentions <- SS.union facts.f_mentions init_body.f_mentions;
    init_body.f_mut_targets <-
      SS.union facts.f_mut_targets init_body.f_mut_targets;
    init_body.f_read_targets <-
      SS.union facts.f_read_targets init_body.f_read_targets;
    init_body.f_local_mut <- init_body.f_local_mut || facts.f_local_mut;
    init_body.f_local_read <- init_body.f_local_read || facts.f_local_read;
    init_body.f_io <- init_body.f_io || facts.f_io;
    init_body.f_rng <- init_body.f_rng || facts.f_rng;
    init_body.f_rng_lines <- facts.f_rng_lines @ init_body.f_rng_lines;
    init_body.f_calls <- facts.f_calls @ init_body.f_calls
  and scan_mb prefix (mb : Typedtree.module_binding) =
    let rec unwrap (m : Typedtree.module_expr) =
      match m.mod_desc with
      | Typedtree.Tmod_constraint (inner, _, _, _) -> unwrap inner
      | desc -> desc
    in
    match mb.mb_id with
    | None -> ()
    | Some id -> (
        let key = prefix ^ "." ^ Ident.name id in
        match unwrap mb.mb_expr with
        | Typedtree.Tmod_ident (p, _) -> (
            match raw_of_path env p with
            | Some target ->
                aliases := (key, target) :: !aliases;
                (* Local references through the alias short-circuit
                   straight to the target. *)
                register id target
            | None -> register id key)
        | Typedtree.Tmod_structure str ->
            register id key;
            scan_items key str.str_items
        | _ ->
            (* Functor bodies/applications are out of scope: nothing
               in this repo defines state inside one, and a may-miss
               here only costs inventory precision, not soundness of
               what *is* inventoried. *)
            register id key)
  and scan_tdecl prefix (decl : Typedtree.type_declaration) =
    let id = decl.typ_id in
    let key = prefix ^ "." ^ Ident.name id in
    register id key;
    let tt = decl.typ_type in
    let direct_mutable =
      match tt.Types.type_kind with
      | Types.Type_record (lds, _) -> has_mutable_label lds
      | Types.Type_variant (cds, _) ->
          List.exists
            (fun cd ->
              match cd.Types.cd_args with
              | Types.Cstr_record lds -> has_mutable_label lds
              | _ -> false)
            cds
      | _ -> false
    in
    let manifest =
      Option.bind tt.Types.type_manifest (fun m ->
          Option.bind (head_constr_path m) (raw_of_path env))
    in
    types :=
      { t_key = key; t_mutable = direct_mutable; t_manifest = manifest }
      :: !types
  in
  scan_items unit_name unit_info.ui_structure.str_items;
  let init_binding =
    {
      b_key = unit_name ^ ".<init>";
      b_file = unit_info.ui_source;
      b_line = 1;
      b_col = 0;
      b_is_fun = true;
      b_type_head = None;
      b_type = "unit";
      b_alloc = None;
      b_body = init_body;
    }
  in
  {
    u_name = unit_name;
    u_source = unit_info.ui_source;
    u_bindings = List.rev (init_binding :: !bindings);
    u_aliases = List.rev !aliases;
    u_types = List.rev !types;
  }
