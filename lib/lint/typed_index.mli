(** Per-unit typedtree scan: extracts raw (alias-unresolved) facts —
    module aliases, mutable type declarations, top-level bindings with
    body effect facts — for Domcheck to resolve and close over the
    cross-module call graph. *)

module SS : Set.S with type elt = string

type body = {
  mutable f_mentions : SS.t;  (** absolute keys referenced anywhere *)
  mutable f_mut_targets : SS.t;  (** absolute keys directly mutated *)
  mutable f_read_targets : SS.t;
      (** absolute keys directly read as mutable *)
  mutable f_local_mut : bool;
      (** mutated a value with no absolute name (param/local) *)
  mutable f_local_read : bool;
  mutable f_io : bool;
  mutable f_rng : bool;
  mutable f_rng_lines : int list;
  mutable f_calls : (string * SS.t) list;
      (** opaque callee key, absolute keys in its arguments *)
}

type binding = {
  b_key : string;  (** "Unit.Sub.name", raw *)
  b_file : string;
  b_line : int;
  b_col : int;
  b_is_fun : bool;
  b_type_head : string option;  (** raw head constructor of the type *)
  b_type : string;  (** printed type, for the report *)
  b_alloc : string option;
      (** mutable-allocator kind when the initialiser is syntactically
          [ref]/[Hashtbl.create]/mutable-record/... *)
  b_body : body;
}

type type_fact = {
  t_key : string;
  t_mutable : bool;
  t_manifest : string option;
}

type t = {
  u_name : string;
  u_source : string;
  u_bindings : binding list;
      (** includes a trailing ["Unit.<init>"] pseudo-binding carrying
          module-initialisation effects *)
  u_aliases : (string * string) list;
  u_types : type_fact list;
}

val scan : Cmt_load.unit_info -> t
