type directive = { line : int; rule : Finding.rule; reason : string }
type t = { directives : directive list; malformed : (int * string) list }

let marker = "stochlint:"

let is_space c = c = ' ' || c = '\t'

let is_rule_char c = (c >= 'A' && c <= 'Z') || c = '_'

(* Parse " allow RULE — reason" starting right after the marker.
   Returns the rule and the reason text (trimmed, trailing comment
   close stripped). *)
let parse_directive text =
  let n = String.length text in
  let i = ref 0 in
  while !i < n && is_space text.[!i] do incr i done;
  let kw = "allow" in
  let kn = String.length kw in
  if !i + kn > n || String.sub text !i kn <> kw then Error "expected `allow`"
  else begin
    i := !i + kn;
    while !i < n && is_space text.[!i] do incr i done;
    let start = !i in
    while !i < n && is_rule_char text.[!i] do incr i done;
    if !i = start then Error "expected a rule id after `allow`"
    else
      let id = String.sub text start (!i - start) in
      match Finding.rule_of_id id with
      | None -> Error (Printf.sprintf "unknown rule id %s" id)
      | Some rule ->
          let rest = String.sub text !i (n - !i) in
          (* Strip the comment close and leading separator glyphs
             (em-dash bytes included) from the reason. *)
          let rest =
            match String.index_opt rest '*' with
            | Some j when j + 1 < String.length rest && rest.[j + 1] = ')' ->
                String.sub rest 0 j
            | _ -> rest
          in
          let reason =
            String.trim
              (String.concat ""
                 (List.map
                    (fun c ->
                      if c = '-' || c = ':' || Char.code c >= 0x80 then " "
                      else String.make 1 c)
                    (List.init (String.length rest) (String.get rest))))
          in
          Ok { line = 0; rule; reason }
  end

(* First occurrence of [needle] in [haystack] within [from, upto). *)
let find_sub haystack ~needle ~from ~upto =
  let nn = String.length needle in
  let rec go i =
    if i + nn > upto then None
    else if String.sub haystack i nn = needle then Some i
    else go (i + 1)
  in
  go (Stdlib.max from 0)

let scan source =
  let directives = ref [] in
  let malformed = ref [] in
  let line = ref 1 in
  let line_start = ref 0 in
  let n = String.length source in
  let mn = String.length marker in
  let scan_line upto =
    (* Look for every marker occurrence within [!line_start, upto). *)
    let rec go from =
      match find_sub source ~needle:marker ~from ~upto with
      | None -> ()
      | Some idx ->
          (* Only treat the marker as a directive when it sits inside a
             comment opened on the same line — a "stochlint:" in a
             string literal (the linter's own sources!) is not one. *)
          let in_comment =
            match find_sub source ~needle:"(*" ~from:!line_start ~upto:idx with
            | Some _ -> true
            | None -> false
          in
          if in_comment then begin
            let text = String.sub source (idx + mn) (n - idx - mn) in
            match parse_directive text with
            | Ok d -> directives := { d with line = !line } :: !directives
            | Error msg -> malformed := (!line, msg) :: !malformed
          end;
          go (idx + mn)
    in
    go !line_start
  in
  for i = 0 to n - 1 do
    if source.[i] = '\n' then begin
      scan_line i;
      incr line;
      line_start := i + 1
    end
  done;
  scan_line n;
  { directives = List.rev !directives; malformed = List.rev !malformed }

let active t ~rule ~line =
  List.exists
    (fun d -> d.rule = rule && (d.line = line || d.line = line - 1))
    t.directives

let directives t = t.directives
let malformed t = t.malformed
