(** Inline suppression comments.

    A comment of the form [(* stochlint: allow FLOAT_EQ — reason *)]
    silences findings for that rule on the same source line and on the
    line immediately below it, so both styles work:

    {v
    if s >= 1.0 || s = 0.0 then go ()  (* stochlint: allow FLOAT_EQ — ... *)

    (* stochlint: allow FLOAT_EQ — rejection-sampling guard *)
    if s >= 1.0 || s = 0.0 then go ()
    v}

    The reason text is free-form but encouraged; the separator may be
    an em-dash, a hyphen, or a colon. The directive is only recognised
    when the comment opens on the same line as the marker, so a
    ["stochlint:"] inside a string literal is never a directive. *)

type t

type directive = {
  line : int;  (** 1-based line the comment starts on *)
  rule : Finding.rule;
  reason : string;  (** may be empty *)
}

val scan : string -> t
(** Scan raw source text for suppression directives. Tolerant of the
    comment marker appearing anywhere on the line. *)

val active : t -> rule:Finding.rule -> line:int -> bool
(** Is a finding of [rule] on [line] suppressed? *)

val directives : t -> directive list
val malformed : t -> (int * string) list
(** Suppression markers whose directive could not be parsed —
    reported so a typo cannot silently disable a suppression. *)
