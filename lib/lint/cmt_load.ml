(* Loading typedtrees out of the .cmt files dune's -bin-annot leaves
   under _build. Unlike the parse-tree pass (Driver), which sees one
   file at a time, stochdomcheck needs every compilation unit of the
   library tree at once so cross-module references resolve. *)

type unit_info = {
  ui_name : string;  (* compilation unit, e.g. "Stochobs__Metrics" *)
  ui_source : string;  (* build-root-relative source, e.g. "lib/obs/metrics.ml" *)
  ui_cmt : string;  (* path the .cmt was read from *)
  ui_structure : Typedtree.structure;
}

type load_error = { le_file : string; le_message : string }

let normalise path =
  let path = String.concat "/" (String.split_on_char '\\' path) in
  if String.length path > 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

(* Walk [root] for .cmt files. Dot-directories are NOT skipped: dune
   hides its object trees under lib/<x>/.<lib>.objs/byte. Interfaces
   (.cmti) and native duplicates never match — only .cmt. *)
let find_cmts root =
  let out = ref [] in
  let rec walk path =
    match Sys.is_directory path with
    | exception Sys_error _ -> ()
    | true ->
        if Filename.basename path <> ".git" then
          Array.iter
            (fun entry -> walk (Filename.concat path entry))
            (Sys.readdir path)
    | false -> if Filename.check_suffix path ".cmt" then out := path :: !out
  in
  walk root;
  List.sort String.compare !out

let load path =
  match Cmt_format.read_cmt path with
  | exception exn ->
      Error { le_file = path; le_message = Printexc.to_string exn }
  | cmt -> (
      match cmt.cmt_annots with
      | Cmt_format.Implementation structure ->
          let source =
            match cmt.cmt_sourcefile with
            | Some s -> normalise s
            | None -> path
          in
          Ok
            {
              ui_name = cmt.cmt_modname;
              ui_source = source;
              ui_cmt = path;
              ui_structure = structure;
            }
      | Cmt_format.Partial_implementation _ ->
          Error
            {
              le_file = path;
              le_message = "partial implementation (compilation failed?)";
            }
      | _ -> Error { le_file = path; le_message = "not an implementation" })

(* Load every unit under [roots], deduplicating on unit name (a byte
   and a native build can leave two identical cmts). *)
let load_all roots =
  let seen = Hashtbl.create 64 in
  let units = ref [] and errors = ref [] in
  List.iter
    (fun root ->
      List.iter
        (fun cmt ->
          match load cmt with
          | Ok u ->
              if not (Hashtbl.mem seen u.ui_name) then begin
                Hashtbl.add seen u.ui_name ();
                units := u :: !units
              end
          | Error e -> errors := e :: !errors)
        (find_cmts root))
    roots;
  (List.rev !units, List.rev !errors)
