(** Grandfathered findings.

    The baseline records, per (file, rule), how many findings existed
    when the gate was turned on. A run passes as long as no (file,
    rule) pair exceeds its baselined count — so the gate is
    zero-NEW-findings from day one without requiring a big-bang fix,
    and deleting code can only shrink the baseline, never break it.
    Counts rather than line numbers keep the file stable under
    unrelated edits that shift code around. *)

type t

val empty : t

val load : string -> (t, string) result
(** Read a baseline JSON file ([{"version": 1, "entries": [{"file",
    "rule", "count"}...]}]). A missing file is an error — pass no
    [--baseline] flag instead if none is wanted. *)

val of_findings : Finding.t list -> t
(** Build the baseline that would make the given findings pass. *)

val to_json_string : t -> string

val allowed : t -> file:string -> rule:Finding.rule -> int
(** Grandfathered count for this (file, rule); 0 when absent. *)

type application = {
  kept : Finding.t list;
      (** findings in groups that exceed their baselined count — every
          finding of the offending group is reported, since without
          line tracking the "new" one cannot be singled out *)
  baselined : int;  (** findings absorbed by the baseline *)
  exceeded : (string * Finding.rule * int * int) list;
      (** (file, rule, found, allowed) for each over-budget group *)
}

val apply : t -> Finding.t list -> application
