(* The effect lattice stochdomcheck infers for every top-level
   function, plus the builtin tables that seed it.

   A signature answers the questions the multicore refactor cares
   about: does this function touch *global* mutable state (reads_global
   / writes_global, tracked per-global in Domcheck), does it mutate or
   read mutable values handed to it (reads_param / writes_param —
   harmless under Domain.spawn when each domain gets fresh arguments,
   hazardous when a shared value is passed in), does it perform
   ambient IO, and does it draw from RNG state that was not threaded
   as a parameter?

   Everything is a may-analysis: [true] means "possibly", [false]
   means "the analysis saw no path". Join is pointwise disjunction, so
   the fixpoint over the call graph is monotone and terminates. *)

type t = {
  reads_global : bool;
  writes_global : bool;
  reads_param : bool;
  writes_param : bool;
  io : bool;
  rng : bool;
}

let pure =
  {
    reads_global = false;
    writes_global = false;
    reads_param = false;
    writes_param = false;
    io = false;
    rng = false;
  }

let join a b =
  {
    reads_global = a.reads_global || b.reads_global;
    writes_global = a.writes_global || b.writes_global;
    reads_param = a.reads_param || b.reads_param;
    writes_param = a.writes_param || b.writes_param;
    io = a.io || b.io;
    rng = a.rng || b.rng;
  }

let equal (a : t) (b : t) = a = b

let is_pure t = equal t pure

let to_string t =
  let tags =
    List.filter_map
      (fun (on, tag) -> if on then Some tag else None)
      [
        (t.writes_global, "writes-global");
        (t.reads_global, "reads-global");
        (t.writes_param, "writes-param");
        (t.reads_param, "reads-param");
        (t.io, "io");
        (t.rng, "ambient-rng");
      ]
  in
  match tags with [] -> "pure" | _ -> String.concat "+" tags

(* ------------------------------------------------------------------ *)
(* Builtin classification                                              *)
(* ------------------------------------------------------------------ *)

(* How a call to a function we will never see a .cmt for behaves.
   [Mutator] / [Reader] act on their first positional argument
   (exactly the stdlib container convention); [Io] and [Rng] are
   ambient; [Opaque] is assumed pure — stochdomcheck is a worklist
   generator, not a verifier, and unknown externals default clean. *)
type builtin = Mutator | Reader | Io | Rng | Opaque

(* stochlint: allow GLOBAL_MUT_STATE — filled once at module init, read-only afterwards *)
let table : (string, builtin) Hashtbl.t = Hashtbl.create 256

let register kind names = List.iter (fun n -> Hashtbl.replace table n kind) names

let () =
  register Mutator
    [
      "Stdlib.:=";
      "Stdlib.incr";
      "Stdlib.decr";
      "Stdlib.Hashtbl.add";
      "Stdlib.Hashtbl.replace";
      "Stdlib.Hashtbl.remove";
      "Stdlib.Hashtbl.reset";
      "Stdlib.Hashtbl.clear";
      "Stdlib.Hashtbl.filter_map_inplace";
      "Stdlib.Buffer.add_string";
      "Stdlib.Buffer.add_char";
      "Stdlib.Buffer.add_bytes";
      "Stdlib.Buffer.add_substring";
      "Stdlib.Buffer.add_subbytes";
      "Stdlib.Buffer.add_buffer";
      "Stdlib.Buffer.add_utf_8_uchar";
      "Stdlib.Buffer.clear";
      "Stdlib.Buffer.reset";
      "Stdlib.Buffer.truncate";
      "Stdlib.Array.set";
      "Stdlib.Array.unsafe_set";
      "Stdlib.Array.fill";
      "Stdlib.Array.blit";
      "Stdlib.Array.sort";
      "Stdlib.Array.stable_sort";
      "Stdlib.Array.fast_sort";
      "Stdlib.Bytes.set";
      "Stdlib.Bytes.unsafe_set";
      "Stdlib.Bytes.fill";
      "Stdlib.Bytes.blit";
      "Stdlib.Bytes.blit_string";
      "Stdlib.Queue.push";
      "Stdlib.Queue.add";
      "Stdlib.Queue.pop";
      "Stdlib.Queue.take";
      "Stdlib.Queue.clear";
      "Stdlib.Queue.transfer";
      "Stdlib.Stack.push";
      "Stdlib.Stack.pop";
      "Stdlib.Stack.clear";
      "Stdlib.Atomic.set";
      "Stdlib.Atomic.exchange";
      "Stdlib.Atomic.compare_and_set";
      "Stdlib.Atomic.fetch_and_add";
      "Stdlib.Atomic.incr";
      "Stdlib.Atomic.decr";
    ];
  register Reader
    [
      "Stdlib.!";
      "Stdlib.Hashtbl.find";
      "Stdlib.Hashtbl.find_opt";
      "Stdlib.Hashtbl.find_all";
      "Stdlib.Hashtbl.mem";
      "Stdlib.Hashtbl.length";
      "Stdlib.Hashtbl.iter";
      "Stdlib.Hashtbl.fold";
      "Stdlib.Hashtbl.copy";
      "Stdlib.Hashtbl.to_seq";
      "Stdlib.Hashtbl.stats";
      "Stdlib.Buffer.contents";
      "Stdlib.Buffer.to_bytes";
      "Stdlib.Buffer.sub";
      "Stdlib.Buffer.nth";
      "Stdlib.Buffer.length";
      "Stdlib.Array.get";
      "Stdlib.Array.unsafe_get";
      "Stdlib.Array.length";
      "Stdlib.Array.copy";
      "Stdlib.Array.sub";
      "Stdlib.Array.to_list";
      "Stdlib.Array.iter";
      "Stdlib.Array.iteri";
      "Stdlib.Array.map";
      "Stdlib.Array.mapi";
      "Stdlib.Array.fold_left";
      "Stdlib.Array.fold_right";
      "Stdlib.Array.exists";
      "Stdlib.Array.for_all";
      "Stdlib.Array.mem";
      "Stdlib.Array.to_seq";
      "Stdlib.Bytes.get";
      "Stdlib.Bytes.unsafe_get";
      "Stdlib.Bytes.length";
      "Stdlib.Bytes.to_string";
      "Stdlib.Bytes.sub";
      "Stdlib.Queue.peek";
      "Stdlib.Queue.top";
      "Stdlib.Queue.is_empty";
      "Stdlib.Queue.length";
      "Stdlib.Queue.iter";
      "Stdlib.Queue.fold";
      "Stdlib.Stack.top";
      "Stdlib.Stack.is_empty";
      "Stdlib.Stack.length";
      "Stdlib.Atomic.get";
    ];
  register Io
    [
      "Stdlib.print_string";
      "Stdlib.print_endline";
      "Stdlib.print_newline";
      "Stdlib.print_int";
      "Stdlib.print_float";
      "Stdlib.print_char";
      "Stdlib.print_bytes";
      "Stdlib.prerr_string";
      "Stdlib.prerr_endline";
      "Stdlib.prerr_newline";
      "Stdlib.read_line";
      "Stdlib.read_int";
      "Stdlib.Printf.printf";
      "Stdlib.Printf.eprintf";
      "Stdlib.Format.printf";
      "Stdlib.Format.eprintf";
      "Stdlib.Format.print_string";
      "Stdlib.Format.print_newline";
      "Stdlib.Format.print_flush";
      "Stdlib.stdout";
      "Stdlib.stderr";
      "Stdlib.stdin";
      "Stdlib.open_in";
      "Stdlib.open_in_bin";
      "Stdlib.open_out";
      "Stdlib.open_out_bin";
      "Stdlib.open_out_gen";
      "Stdlib.close_in";
      "Stdlib.close_in_noerr";
      "Stdlib.close_out";
      "Stdlib.close_out_noerr";
      "Stdlib.flush";
      "Stdlib.flush_all";
      "Stdlib.input_line";
      "Stdlib.input_char";
      "Stdlib.input_byte";
      "Stdlib.really_input_string";
      "Stdlib.in_channel_length";
      "Stdlib.out_channel_length";
      "Stdlib.output_string";
      "Stdlib.output_bytes";
      "Stdlib.output_char";
      "Stdlib.output_byte";
      "Stdlib.output_substring";
      "Stdlib.seek_in";
      "Stdlib.seek_out";
      "Stdlib.exit";
      "Stdlib.at_exit";
      "Stdlib.Sys.command";
      "Stdlib.Sys.getenv";
      "Stdlib.Sys.getenv_opt";
      "Stdlib.Sys.argv";
      "Stdlib.Sys.readdir";
      "Stdlib.Sys.remove";
      "Stdlib.Sys.rename";
      "Stdlib.Sys.file_exists";
      "Stdlib.Sys.is_directory";
      "Stdlib.Sys.getcwd";
      "Stdlib.Sys.chdir";
      "Stdlib.Sys.time";
      "Stdlib.Filename.temp_file";
      "Stdlib.Filename.open_temp_file";
    ]

(* Prefix families: everything under these module paths carries the
   effect, so new stdlib additions do not silently slip through. *)
let io_prefixes = [ "Unix."; "Stdlib.Printf.fprintf"; "Stdlib.Format.fprintf" ]
let rng_prefixes = [ "Stdlib.Random." ]

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let classify path =
  match Hashtbl.find_opt table path with
  | Some kind -> kind
  | None ->
      if List.exists (fun p -> has_prefix ~prefix:p path) rng_prefixes then Rng
      else if List.exists (fun p -> has_prefix ~prefix:p path) io_prefixes then
        Io
      else Opaque

(* Type constructors whose values are mutable regardless of any local
   type declaration — the builtin containers. Keys are canonical type
   paths as they appear in .cmt type expressions. *)
let mutable_type_heads =
  [
    "Stdlib.ref";
    "ref";
    "array";
    "bytes";
    "Stdlib.Hashtbl.t";
    "Stdlib.Buffer.t";
    "Stdlib.Queue.t";
    "Stdlib.Stack.t";
    "Stdlib.Atomic.t";
    "Stdlib.Weak.t";
    "Stdlib.Ephemeron.K1.t";
  ]

(* Canonical type paths that *are* RNG state: a global of one of these
   types is ambient randomness even though every draw threads it
   explicitly at the call site. *)
let rng_type_heads = [ "Randomness__Rng.t"; "Randomness.Rng.t" ]
