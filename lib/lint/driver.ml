type parse_error = {
  pe_file : string;
  pe_line : int;
  pe_col : int;
  pe_message : string;
}

type file_report = {
  fr_file : string;
  fr_findings : Finding.t list;
  fr_suppressed : int;
  fr_malformed : (int * string) list;
}

type outcome = {
  files : int;
  reports : file_report list;
  errors : parse_error list;
}

let normalise path =
  let path = String.concat "/" (String.split_on_char '\\' path) in
  if String.length path > 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let skipped_dirs = [ "_build"; ".git"; "fixtures"; "_opam"; "node_modules" ]

let collect_files paths =
  let out = ref [] in
  let rec walk path =
    if Sys.is_directory path then
      Array.iter
        (fun entry ->
          let child = Filename.concat path entry in
          if Sys.is_directory child then begin
            if not (List.mem entry skipped_dirs) then walk child
          end
          else if
            Filename.check_suffix entry ".ml"
            || Filename.check_suffix entry ".mli"
          then out := normalise child :: !out)
        (Sys.readdir path)
    else if
      Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
    then out := normalise path :: !out
  in
  List.iter walk paths;
  List.sort_uniq String.compare !out

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_error_of_exn file exn =
  let of_loc (loc : Location.t) message =
    {
      pe_file = file;
      pe_line = loc.loc_start.pos_lnum;
      pe_col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
      pe_message = message;
    }
  in
  match exn with
  | Syntaxerr.Error err ->
      Some (of_loc (Syntaxerr.location_of_error err) "syntax error")
  | Lexer.Error (_, loc) -> Some (of_loc loc "lexical error")
  | Sys_error msg ->
      Some { pe_file = file; pe_line = 0; pe_col = 0; pe_message = msg }
  | _ -> None

(* Interfaces carry no expressions for the rules to inspect, but an
   unparseable .mli is exactly the kind of rot a lint pass should
   catch (dune only compiles interfaces someone references), and a
   malformed suppression comment in one deserves the same warning as
   in an .ml. *)
let lint_interface file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  ignore (Parse.interface lexbuf);
  let sup = Suppress.scan source in
  {
    fr_file = file;
    fr_findings = [];
    fr_suppressed = 0;
    fr_malformed = Suppress.malformed sup;
  }

let lint_file ?context path =
  let file = normalise path in
  if Filename.check_suffix file ".mli" then
    match lint_interface file (read_file path) with
    | report -> Ok report
    | exception exn -> (
        match parse_error_of_exn file exn with
        | Some pe -> Error pe
        | None -> raise exn)
  else
    match
      let source = read_file path in
      let lexbuf = Lexing.from_string source in
      Lexing.set_filename lexbuf file;
      (source, Parse.implementation lexbuf)
    with
    | exception exn -> (
        match parse_error_of_exn file exn with
        | Some pe -> Error pe
        | None -> raise exn)
    | source, structure ->
      let context =
        match context with
        | Some c -> c
        | None -> Rules.context_of_path file
      in
      let raw = Rules.check ~context ~file ~source structure in
      let sup = Suppress.scan source in
      let kept, silenced =
        List.partition
          (fun (f : Finding.t) ->
            not (Suppress.active sup ~rule:f.rule ~line:f.line))
          raw
      in
      Ok
        {
          fr_file = file;
          fr_findings = kept;
          fr_suppressed = List.length silenced;
          fr_malformed = Suppress.malformed sup;
        }

let run ?context paths =
  let files = collect_files paths in
  let reports = ref [] and errors = ref [] in
  List.iter
    (fun file ->
      match lint_file ?context file with
      | Ok r -> reports := r :: !reports
      | Error e -> errors := e :: !errors)
    files;
  { files = List.length files; reports = List.rev !reports; errors = List.rev !errors }

let findings outcome =
  List.sort Finding.compare
    (List.concat_map (fun r -> r.fr_findings) outcome.reports)
