let default_tol = 1e-10

(* Profiling probes on the global registry. Disabled (the default)
   they cost one branch per quadrature call, not per panel: recursion
   depth is tracked in a plain ref and only fed to the histogram once
   the call returns. *)
(* stochlint: allow GLOBAL_MUT_STATE — single-domain metrics probe; the multicore fan-out merges per-domain registries *)
let m_calls = Stochobs.Metrics.(counter default) "numerics.integrate.calls"

(* stochlint: allow GLOBAL_MUT_STATE — single-domain metrics probe; the multicore fan-out merges per-domain registries *)
let m_nonfinite =
  Stochobs.Metrics.(counter default) "numerics.integrate.nonfinite_bailouts"

(* stochlint: allow GLOBAL_MUT_STATE — single-domain metrics probe; the multicore fan-out merges per-domain registries *)
let m_depth =
  Stochobs.Metrics.(histogram default) "numerics.integrate.depth"
    ~buckets:[| 0.0; 2.0; 4.0; 8.0; 12.0; 16.0; 24.0; 32.0; 48.0 |]

(* ------------------------------------------------------------------ *)
(* Adaptive Simpson with Richardson extrapolation.                     *)
(* ------------------------------------------------------------------ *)

let simpson ?(tol = default_tol) ?(max_depth = 48) f a b =
  Stochobs.Metrics.incr m_calls;
  let deepest = ref 0 in
  let simpson_panel fa fm fb h = h /. 6.0 *. (fa +. (4.0 *. fm) +. fb) in
  let rec go a fa b fb m fm whole tol depth =
    let lm = 0.5 *. (a +. m) in
    let rm = 0.5 *. (m +. b) in
    let flm = f lm and frm = f rm in
    let left = simpson_panel fa flm fm (m -. a) in
    let right = simpson_panel fm frm fb (b -. m) in
    let delta = left +. right -. whole in
    (* A non-finite integrand poisons delta; subdividing would explore
       the full 2^depth tree without ever converging, so propagate the
       poisoned panel to the caller instead. *)
    if not (Float.is_finite delta) then begin
      Stochobs.Metrics.incr m_nonfinite;
      if max_depth - depth > !deepest then deepest := max_depth - depth;
      left +. right +. (delta /. 15.0)
    end
    else if depth <= 0 || Float.abs delta <= 15.0 *. tol then begin
      if max_depth - depth > !deepest then deepest := max_depth - depth;
      left +. right +. (delta /. 15.0)
    end
    else
      go a fa m fm lm flm left (tol /. 2.0) (depth - 1)
      +. go m fm b fb rm frm right (tol /. 2.0) (depth - 1)
  in
  let r =
    if a = b then 0.0
    else begin
      let sign, a, b = if a > b then (-1.0, b, a) else (1.0, a, b) in
      let m = 0.5 *. (a +. b) in
      let fa = f a and fb = f b and fm = f m in
      let whole = simpson_panel fa fm fb (b -. a) in
      sign *. go a fa b fb m fm whole tol max_depth
    end
  in
  Stochobs.Metrics.observe_int m_depth !deepest;
  r

(* ------------------------------------------------------------------ *)
(* Gauss–Kronrod 7/15.                                                 *)
(* ------------------------------------------------------------------ *)

(* Abscissae of the 15-point Kronrod rule on [-1, 1] (positive half;
   the rule is symmetric). Odd indices are the embedded Gauss nodes. *)
let xgk =
  [|
    0.991455371120813;
    0.949107912342759;
    0.864864423359769;
    0.741531185599394;
    0.586087235467691;
    0.405845151377397;
    0.207784955007898;
    0.000000000000000;
  |]

(* Kronrod weights for the nodes above. *)
let wgk =
  [|
    0.022935322010529;
    0.063092092629979;
    0.104790010322250;
    0.140653259715525;
    0.169004726639267;
    0.190350578064785;
    0.204432940075298;
    0.209482141084728;
  |]

(* Gauss weights for the embedded 7-point rule (nodes xgk.(1,3,5,7)). *)
let wg =
  [|
    0.129484966168870;
    0.279705391489277;
    0.381830050505119;
    0.417959183673469;
  |]

let qk15 f a b =
  let center = 0.5 *. (a +. b) in
  let half = 0.5 *. (b -. a) in
  let fc = f center in
  let result_kronrod = ref (wgk.(7) *. fc) in
  let result_gauss = ref (wg.(3) *. fc) in
  for j = 0 to 6 do
    let x = half *. xgk.(j) in
    let f1 = f (center -. x) in
    let f2 = f (center +. x) in
    let fsum = f1 +. f2 in
    result_kronrod := !result_kronrod +. (wgk.(j) *. fsum);
    if j mod 2 = 1 then
      result_gauss := !result_gauss +. (wg.(j / 2) *. fsum)
  done;
  let integral = !result_kronrod *. half in
  let err = Float.abs ((!result_kronrod -. !result_gauss) *. half) in
  (integral, err)

let gauss_kronrod ?(tol = default_tol) ?(max_depth = 48) ?(initial = 1) f a b =
  if initial <= 0 then invalid_arg "Integrate.gauss_kronrod: initial <= 0";
  Stochobs.Metrics.incr m_calls;
  let deepest = ref 0 in
  let rec go a b tol depth =
    let integral, err = qk15 f a b in
    (* A nan integrand poisons the error estimate; subdividing would
       explore the full 2^depth tree without ever converging, so
       propagate the nan to the caller instead. *)
    if not (Float.is_finite integral) then begin
      Stochobs.Metrics.incr m_nonfinite;
      if max_depth - depth > !deepest then deepest := max_depth - depth;
      integral
    end
    else if
      depth <= 0 || err <= tol
      (* Roundoff floor: once the estimate is within a few ulps of the
         panel's own magnitude, refinement cannot improve it and would
         only blow the recursion tree up. *)
      || err <= 1e-14 *. Float.abs integral
    then begin
      if max_depth - depth > !deepest then deepest := max_depth - depth;
      integral
    end
    else begin
      let m = 0.5 *. (a +. b) in
      go a m (tol /. 2.0) (depth - 1) +. go m b (tol /. 2.0) (depth - 1)
    end
  in
  let run a b =
    (* Pre-subdividing guards against integrands so peaked that a
       single K15 panel samples none of the mass and its error
       estimate reports spurious convergence. *)
    let h = (b -. a) /. float_of_int initial in
    let acc = Kahan.create () in
    for i = 0 to initial - 1 do
      let lo = a +. (float_of_int i *. h) in
      Kahan.add acc (go lo (lo +. h) (tol /. float_of_int initial) max_depth)
    done;
    Kahan.sum acc
  in
  let r = if a = b then 0.0 else if a > b then -.run b a else run a b in
  Stochobs.Metrics.observe_int m_depth !deepest;
  r

let to_infinity ?(tol = default_tol) f a =
  (* x = a + u / (1 - u), dx = du / (1 - u)^2, u in (0, 1). The
     transformed integrand is often sharply peaked, so start from a
     fine uniform subdivision (see gauss_kronrod). *)
  let g u =
    let one_minus = 1.0 -. u in
    let x = a +. (u /. one_minus) in
    f x /. (one_minus *. one_minus)
  in
  gauss_kronrod ~tol ~initial:32 g 0.0 1.0

let trapezoid f a b n =
  if n <= 0 then invalid_arg "Integrate.trapezoid: n must be positive";
  let h = (b -. a) /. float_of_int n in
  let acc = Kahan.create () in
  Kahan.add acc (0.5 *. f a);
  for i = 1 to n - 1 do
    Kahan.add acc (f (a +. (float_of_int i *. h)))
  done;
  Kahan.add acc (0.5 *. f b);
  h *. Kahan.sum acc
