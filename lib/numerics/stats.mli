(** Descriptive statistics over samples.

    Hand-rolled (the repro note for this paper flags OCaml's thin
    statistics ecosystem): compensated means, Welford variance,
    interpolated sample quantiles, histograms, and an online
    accumulator. These back every Monte-Carlo estimate reported by the
    benchmark harness. *)

val mean : float array -> float
(** [mean xs] is the compensated arithmetic mean.
    @raise Invalid_argument on an empty array. *)

val variance : ?ddof:int -> float array -> float
(** [variance ?ddof xs] is the variance with [ddof] delta degrees of
    freedom (default [1], the unbiased sample variance), computed with
    Welford's online algorithm.
    @raise Invalid_argument if [Array.length xs <= ddof]. *)

val std : ?ddof:int -> float array -> float
(** [std ?ddof xs] is [sqrt (variance ?ddof xs)]. *)

val quantile : float array -> float -> float
(** [quantile xs p] is the [p]-quantile of the sample, [p] in
    [[0, 1]], using linear interpolation between order statistics
    (Hyndman–Fan type 7, the default of R and NumPy). Sorts a copy of
    the input.
    @raise Invalid_argument on an empty array or [p] outside [[0,1]]. *)

val quantiles_sorted : float array -> float -> float
(** [quantiles_sorted xs p] is {!quantile} on an array the caller
    guarantees is already sorted; no copy is made. *)

val quantile_nearest_rank : float array -> float -> float
(** [quantile_nearest_rank xs p] is the nearest-rank [p]-quantile: the
    order statistic of rank [ceil (p * n)] (clamped to [[1, n]]), i.e.
    the smallest sample value with at least a [p] fraction of the
    sample at or below it. Unlike {!quantile} it never interpolates,
    so the result is always an observed value — the right reading for
    reported tail metrics such as p95 stretch, where an interpolated
    value between two observations describes no job that actually ran.
    Sorts a copy of the input.
    @raise Invalid_argument on an empty array or [p] outside [[0,1]]. *)

val quantile_nearest_rank_sorted : float array -> float -> float
(** {!quantile_nearest_rank} on an already-sorted array; no copy. *)

val median : float array -> float
(** [median xs] is [quantile xs 0.5]. *)

val min_max : float array -> float * float
(** [min_max xs] is the pair of smallest and largest elements.
    @raise Invalid_argument on an empty array. *)

type histogram = {
  bounds : float array;  (** [n+1] bin boundaries, increasing. *)
  counts : int array;  (** [n] occupancy counts. *)
}

val histogram : ?bins:int -> float array -> histogram
(** [histogram ?bins xs] builds an equal-width histogram over
    [[min xs, max xs]] with [bins] bins (default [20]). Values equal to
    the upper bound are placed in the last bin.
    @raise Invalid_argument on an empty array or [bins <= 0]. *)

(** Online mean/variance accumulator (Welford). *)
module Online : sig
  type t

  val create : unit -> t
  val push : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  val variance : t -> float
  (** Unbiased sample variance; [0.] with fewer than two samples. *)

  val std : t -> float

  val stderr : t -> float
  (** Standard error of the mean; [0.] with fewer than two samples. *)
end
