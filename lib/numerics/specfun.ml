let pi = 4.0 *. atan 1.0
let sqrt_two = sqrt 2.0
let sqrt_two_pi = sqrt (2.0 *. pi)
let max_iter = 500
let eps = 1e-16

(* ------------------------------------------------------------------ *)
(* Gamma function: Lanczos approximation, g = 7, 9 coefficients.       *)
(* ------------------------------------------------------------------ *)

let lanczos_g = 7.0

let lanczos_coef =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if Float.is_nan x then invalid_arg "Specfun.log_gamma: nan argument";
  if x <= 0.0 && Float.is_integer x then
    invalid_arg "Specfun.log_gamma: non-positive integer argument";
  if x < 0.5 then
    (* Reflection formula; callers in this project only use x > 0, where
       Gamma(x) > 0 so the absolute value below is exact. *)
    log (pi /. Float.abs (sin (pi *. x))) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let a = ref lanczos_coef.(0) in
    let t = x +. lanczos_g +. 0.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos_coef.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2.0 *. pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

let gamma x = exp (log_gamma x)

(* ------------------------------------------------------------------ *)
(* Regularized incomplete gamma functions.                             *)
(* ------------------------------------------------------------------ *)

(* Power-series expansion of P(a, x), converges fast for x < a + 1. *)
let gamma_p_series a x =
  let ap = ref a in
  let sum = ref (1.0 /. a) in
  let del = ref (1.0 /. a) in
  let i = ref 0 in
  let converged = ref false in
  while (not !converged) && !i < max_iter do
    incr i;
    ap := !ap +. 1.0;
    del := !del *. x /. !ap;
    sum := !sum +. !del;
    if Float.abs !del < Float.abs !sum *. eps then converged := true
  done;
  !sum *. exp ((-.x) +. (a *. log x) -. log_gamma a)

(* Lentz continued fraction for Q(a, x), converges fast for x >= a + 1. *)
let gamma_q_cf a x =
  let tiny = 1e-300 in
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. tiny) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  let i = ref 1 in
  let converged = ref false in
  while (not !converged) && !i < max_iter do
    let fi = float_of_int !i in
    let an = -.fi *. (fi -. a) in
    b := !b +. 2.0;
    d := (an *. !d) +. !b;
    if Float.abs !d < tiny then d := tiny;
    c := !b +. (an /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1.0 /. !d;
    let delta = !d *. !c in
    h := !h *. delta;
    if Float.abs (delta -. 1.0) < eps then converged := true;
    incr i
  done;
  exp ((-.x) +. (a *. log x) -. log_gamma a) *. !h

let gamma_p a x =
  if a <= 0.0 then invalid_arg "Specfun.gamma_p: a must be positive";
  if x < 0.0 then invalid_arg "Specfun.gamma_p: x must be non-negative";
  (* stochlint: allow FLOAT_EQ — series/cf boundary: x = 0 returns the exact limit P(a, 0) = 0 *)
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then gamma_p_series a x
  else 1.0 -. gamma_q_cf a x

let gamma_q a x =
  if a <= 0.0 then invalid_arg "Specfun.gamma_q: a must be positive";
  if x < 0.0 then invalid_arg "Specfun.gamma_q: x must be non-negative";
  (* stochlint: allow FLOAT_EQ — series/cf boundary: x = 0 returns the exact limit Q(a, 0) = 1 *)
  if x = 0.0 then 1.0
  else if x < a +. 1.0 then 1.0 -. gamma_p_series a x
  else gamma_q_cf a x

let upper_incomplete_gamma a x = gamma_q a x *. gamma a

(* Inverse of P(a, .): Wilson–Hilferty initial guess, then safeguarded
   Newton on P(a, x) - p with the analytic derivative (gamma pdf). *)
let inverse_gamma_p a p =
  if a <= 0.0 then invalid_arg "Specfun.inverse_gamma_p: a must be positive";
  if p < 0.0 || p > 1.0 then
    invalid_arg "Specfun.inverse_gamma_p: p must be in [0, 1]";
  (* stochlint: allow FLOAT_EQ — inverse endpoint sentinel: p = 0 maps to 0 exactly *)
  if p = 0.0 then 0.0
  (* stochlint: allow FLOAT_EQ — inverse endpoint sentinel: p = 1 maps to +inf *)
  else if p = 1.0 then infinity
  else begin
    let gln = log_gamma a in
    let a1 = a -. 1.0 in
    let lna1 = if a > 1.0 then log a1 else 0.0 in
    let afac = if a > 1.0 then exp ((a1 *. (lna1 -. 1.0)) -. gln) else 0.0 in
    (* Initial guess. *)
    let x0 =
      if a > 1.0 then begin
        (* Wilson–Hilferty via the normal quantile. *)
        let pp = if p < 0.5 then p else 1.0 -. p in
        let t = sqrt (-2.0 *. log pp) in
        let x =
          ((2.30753 +. (t *. 0.27061)) /. (1.0 +. (t *. (0.99229 +. (t *. 0.04481)))))
          -. t
        in
        let x = if p < 0.5 then -.x else x in
        Float.max 1e-3
          (a
          *. ((1.0 -. (1.0 /. (9.0 *. a)) +. (x /. (3.0 *. sqrt a))) ** 3.0))
      end
      else begin
        let t = 1.0 -. (a *. (0.253 +. (a *. 0.12))) in
        if p < t then (p /. t) ** (1.0 /. a)
        else 1.0 -. log (1.0 -. ((p -. t) /. (1.0 -. t)))
      end
    in
    let x = ref x0 in
    for _ = 1 to 16 do
      if !x > 0.0 then begin
        let err = gamma_p a !x -. p in
        let t =
          if a > 1.0 then afac *. exp ((-. (!x -. a1)) +. (a1 *. (log !x -. lna1)))
          else exp ((-. !x) +. (a1 *. log !x) -. gln)
        in
        if t > 0.0 then begin
          let u = err /. t in
          (* Halley correction, as in Numerical Recipes. *)
          let dx = u /. (1.0 -. (0.5 *. Float.min 1.0 (u *. ((a1 /. !x) -. 1.0)))) in
          x := !x -. dx;
          if !x <= 0.0 then x := 0.5 *. (!x +. dx)
        end
      end
    done;
    (* Newton can stall deep in the tails where the derivative
       underflows; verify and fall back to a bracketed bisection,
       which is slow but unconditionally convergent. *)
    let residual = gamma_p a !x -. p in
    if Float.abs residual > 1e-12 then begin
      let f y = gamma_p a y -. p in
      let lo = ref 0.0 and hi = ref (Float.max (2.0 *. !x) (2.0 *. a)) in
      while f !hi < 0.0 && !hi < 1e12 do
        hi := !hi *. 2.0
      done;
      if f !hi >= 0.0 then begin
        (* 200 bisection steps resolve to full double precision. *)
        for _ = 1 to 200 do
          let mid = 0.5 *. (!lo +. !hi) in
          if f mid < 0.0 then lo := mid else hi := mid
        done;
        x := 0.5 *. (!lo +. !hi)
      end
    end;
    !x
  end

(* ------------------------------------------------------------------ *)
(* Error function, via the incomplete gamma machinery.                 *)
(* ------------------------------------------------------------------ *)

let erf x =
  (* stochlint: allow FLOAT_EQ — erf(0) = 0 exactly; avoids the gamma_p singularity at 0 *)
  if x = 0.0 then 0.0
  else if x > 0.0 then gamma_p 0.5 (x *. x)
  else -.gamma_p 0.5 (x *. x)

let erfc x =
  if x >= 0.0 then gamma_q 0.5 (x *. x) else 1.0 +. gamma_p 0.5 (x *. x)

let normal_cdf x = 0.5 *. erfc (-.x /. sqrt_two)

(* Acklam's rational approximation to the inverse normal CDF, then one
   Halley refinement step against erfc: full double accuracy. *)
let acklam_a =
  [|
    -3.969683028665376e+01;
    2.209460984245205e+02;
    -2.759285104469687e+02;
    1.383577518672690e+02;
    -3.066479806614716e+01;
    2.506628277459239e+00;
  |]

let acklam_b =
  [|
    -5.447609879822406e+01;
    1.615858368580409e+02;
    -1.556989798598866e+02;
    6.680131188771972e+01;
    -1.328068155288572e+01;
  |]

let acklam_c =
  [|
    -7.784894002430293e-03;
    -3.223964580411365e-01;
    -2.400758277161838e+00;
    -2.549732539343734e+00;
    4.374664141464968e+00;
    2.938163982698783e+00;
  |]

let acklam_d =
  [|
    7.784695709041462e-03;
    3.224671290700398e-01;
    2.445134137142996e+00;
    3.754408661907416e+00;
  |]

let normal_quantile p =
  if p <= 0.0 then
    (* stochlint: allow FLOAT_EQ — endpoint convention: p = 0 maps to -inf, anything below is a domain error *)
    if p = 0.0 then neg_infinity
    else invalid_arg "Specfun.normal_quantile: p must be in [0, 1]"
  else if p >= 1.0 then
    (* stochlint: allow FLOAT_EQ — endpoint convention: p = 1 maps to +inf, anything above is a domain error *)
    if p = 1.0 then infinity
    else invalid_arg "Specfun.normal_quantile: p must be in [0, 1]"
  else begin
    let p_low = 0.02425 in
    let p_high = 1.0 -. p_low in
    let a = acklam_a and b = acklam_b and c = acklam_c and d = acklam_d in
    let x =
      if p < p_low then begin
        let q = sqrt (-2.0 *. log p) in
        (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
        *. q
        +. c.(5)
        |> fun num ->
        num
        /. (((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
      end
      else if p <= p_high then begin
        let q = p -. 0.5 in
        let r = q *. q in
        ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
         *. r
        +. a.(5))
        *. q
        /. ((((((b.(0) *. r) +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r
            +. b.(4))
            *. r
           +. 1.0)
      end
      else begin
        let q = sqrt (-2.0 *. log (1.0 -. p)) in
        -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q
           +. c.(4))
           *. q
          +. c.(5))
        /. (((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
      end
    in
    (* One Halley refinement step. *)
    let e = (0.5 *. erfc (-.x /. sqrt_two)) -. p in
    let u = e *. sqrt_two_pi *. exp (x *. x /. 2.0) in
    x -. (u /. (1.0 +. (x *. u /. 2.0)))
  end

let erf_inv z =
  if z <= -1.0 then
    (* stochlint: allow FLOAT_EQ — endpoint convention: z = -1 maps to -inf, anything below is a domain error *)
    if z = -1.0 then neg_infinity
    else invalid_arg "Specfun.erf_inv: argument must be in [-1, 1]"
  else if z >= 1.0 then
    (* stochlint: allow FLOAT_EQ — endpoint convention: z = 1 maps to +inf, anything above is a domain error *)
    if z = 1.0 then infinity
    else invalid_arg "Specfun.erf_inv: argument must be in [-1, 1]"
  else normal_quantile ((z +. 1.0) /. 2.0) /. sqrt_two

let erfc_inv q =
  if q <= 0.0 then
    (* stochlint: allow FLOAT_EQ — endpoint convention: q = 0 maps to +inf, anything below is a domain error *)
    if q = 0.0 then infinity
    else invalid_arg "Specfun.erfc_inv: argument must be in [0, 2]"
  else if q >= 2.0 then
    (* stochlint: allow FLOAT_EQ — endpoint convention: q = 2 maps to -inf, anything above is a domain error *)
    if q = 2.0 then neg_infinity
    else invalid_arg "Specfun.erfc_inv: argument must be in [0, 2]"
  else erf_inv (1.0 -. q)

(* ------------------------------------------------------------------ *)
(* Beta functions.                                                     *)
(* ------------------------------------------------------------------ *)

let log_beta a b = log_gamma a +. log_gamma b -. log_gamma (a +. b)
let beta_fun a b = exp (log_beta a b)

(* Lentz continued fraction for the incomplete beta function. *)
let betacf a b x =
  let tiny = 1e-300 in
  let qab = a +. b in
  let qap = a +. 1.0 in
  let qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if Float.abs !d < tiny then d := tiny;
  d := 1.0 /. !d;
  let h = ref !d in
  let m = ref 1 in
  let converged = ref false in
  while (not !converged) && !m < max_iter do
    let fm = float_of_int !m in
    let m2 = 2.0 *. fm in
    (* Even step. *)
    let aa = fm *. (b -. fm) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1.0 +. (aa *. !d);
    if Float.abs !d < tiny then d := tiny;
    c := 1.0 +. (aa /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1.0 /. !d;
    h := !h *. !d *. !c;
    (* Odd step. *)
    let aa = -.(a +. fm) *. (qab +. fm) *. x /. ((a +. m2) *. (qap +. m2)) in
    d := 1.0 +. (aa *. !d);
    if Float.abs !d < tiny then d := tiny;
    c := 1.0 +. (aa /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1.0 /. !d;
    let delta = !d *. !c in
    h := !h *. delta;
    if Float.abs (delta -. 1.0) < eps then converged := true;
    incr m
  done;
  !h

let betai a b x =
  if a <= 0.0 || b <= 0.0 then
    invalid_arg "Specfun.betai: a and b must be positive";
  if x < 0.0 || x > 1.0 then invalid_arg "Specfun.betai: x must be in [0, 1]";
  (* stochlint: allow FLOAT_EQ — betai endpoint: x = 0 returns the exact limit 0 *)
  if x = 0.0 then 0.0
  (* stochlint: allow FLOAT_EQ — betai endpoint: x = 1 returns the exact limit 1 *)
  else if x = 1.0 then 1.0
  else begin
    let bt =
      exp
        (log_gamma (a +. b) -. log_gamma a -. log_gamma b +. (a *. log x)
        +. (b *. log (1.0 -. x)))
    in
    if x < (a +. 1.0) /. (a +. b +. 2.0) then bt *. betacf a b x /. a
    else 1.0 -. (bt *. betacf b a (1.0 -. x) /. b)
  end

let incomplete_beta a b x = betai a b x *. beta_fun a b

(* Inverse of the regularized incomplete beta function: initial guess
   from Abramowitz & Stegun 26.5.22 (or the small-parameter split), then
   Newton iterations clamped to (0, 1). *)
let inverse_betai a b p =
  if a <= 0.0 || b <= 0.0 then
    invalid_arg "Specfun.inverse_betai: a and b must be positive";
  if p < 0.0 || p > 1.0 then
    invalid_arg "Specfun.inverse_betai: p must be in [0, 1]";
  (* stochlint: allow FLOAT_EQ — inverse endpoint sentinel: p = 0 maps to 0 exactly *)
  if p = 0.0 then 0.0
  (* stochlint: allow FLOAT_EQ — inverse endpoint sentinel: p = 1 maps to 1 exactly *)
  else if p = 1.0 then 1.0
  else begin
    let x0 =
      if a >= 1.0 && b >= 1.0 then begin
        let t = normal_quantile p in
        let al = ((t *. t) -. 3.0) /. 6.0 in
        let h = 2.0 /. ((1.0 /. ((2.0 *. a) -. 1.0)) +. (1.0 /. ((2.0 *. b) -. 1.0))) in
        let w =
          (t *. sqrt (al +. h) /. h)
          -. (((1.0 /. ((2.0 *. b) -. 1.0)) -. (1.0 /. ((2.0 *. a) -. 1.0)))
             *. (al +. (5.0 /. 6.0) -. (2.0 /. (3.0 *. h))))
        in
        a /. (a +. (b *. exp (2.0 *. w)))
      end
      else begin
        let lna = log (a /. (a +. b)) in
        let lnb = log (b /. (a +. b)) in
        let t = exp (a *. lna) /. a in
        let u = exp (b *. lnb) /. b in
        let w = t +. u in
        if p < t /. w then (a *. w *. p) ** (1.0 /. a)
        else 1.0 -. ((b *. w *. (1.0 -. p)) ** (1.0 /. b))
      end
    in
    let afac = -.log_beta a b in
    let a1 = a -. 1.0 and b1 = b -. 1.0 in
    let x = ref x0 in
    if !x <= 0.0 then x := 1e-12;
    if !x >= 1.0 then x := 1.0 -. 1e-12;
    for _ = 1 to 16 do
      if !x > 0.0 && !x < 1.0 then begin
        let err = betai a b !x -. p in
        let t = exp ((a1 *. log !x) +. (b1 *. log (1.0 -. !x)) +. afac) in
        if t > 0.0 then begin
          let u = err /. t in
          let dx =
            u /. (1.0 -. (0.5 *. Float.min 1.0 (u *. ((a1 /. !x) -. (b1 /. (1.0 -. !x))))))
          in
          x := !x -. dx;
          if !x <= 0.0 then x := 0.5 *. (!x +. dx);
          if !x >= 1.0 then x := 0.5 *. (!x +. dx +. 1.0)
        end
      end
    done;
    (* Bracketed bisection fallback for tail cases where Newton
       stalls (see inverse_gamma_p). *)
    let residual = betai a b !x -. p in
    if Float.abs residual > 1e-12 then begin
      let f y = betai a b y -. p in
      let lo = ref 0.0 and hi = ref 1.0 in
      for _ = 1 to 200 do
        let mid = 0.5 *. (!lo +. !hi) in
        if f mid < 0.0 then lo := mid else hi := mid
      done;
      x := 0.5 *. (!lo +. !hi)
    end;
    !x
  end
