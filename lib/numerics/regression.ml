type fit = {
  slope : float;
  intercept : float;
  r_squared : float;
  residual_std : float;
  n : int;
}

let ols ~x ~y =
  let n = Array.length x in
  if n <> Array.length y then invalid_arg "Regression.ols: length mismatch";
  if n < 2 then invalid_arg "Regression.ols: need at least two points";
  let nf = float_of_int n in
  let xbar = Kahan.mean_array x in
  let ybar = Kahan.mean_array y in
  let sxx = Kahan.create () and sxy = Kahan.create () in
  for i = 0 to n - 1 do
    let dx = x.(i) -. xbar in
    Kahan.add sxx (dx *. dx);
    Kahan.add sxy (dx *. (y.(i) -. ybar))
  done;
  let sxx = Kahan.sum sxx and sxy = Kahan.sum sxy in
  (* stochlint: allow FLOAT_EQ — exact-zero spread means a degenerate constant-x design *)
  if sxx = 0.0 then invalid_arg "Regression.ols: x values are constant";
  let slope = sxy /. sxx in
  let intercept = ybar -. (slope *. xbar) in
  let ss_res = Kahan.create () and ss_tot = Kahan.create () in
  for i = 0 to n - 1 do
    let r = y.(i) -. ((slope *. x.(i)) +. intercept) in
    Kahan.add ss_res (r *. r);
    let d = y.(i) -. ybar in
    Kahan.add ss_tot (d *. d)
  done;
  let ss_res = Kahan.sum ss_res and ss_tot = Kahan.sum ss_tot in
  (* stochlint: allow FLOAT_EQ — ss_tot is 0 exactly when every y is identical; r^2 is 1 by convention *)
  let r_squared = if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  let residual_std =
    if n > 2 then sqrt (ss_res /. (nf -. 2.0)) else sqrt ss_res
  in
  { slope; intercept; r_squared; residual_std; n }

let predict fit x = (fit.slope *. x) +. fit.intercept
