type result = { xmin : float; fmin : float; evaluations : int }

(* Profiling probes: each optimiser already counts its objective
   evaluations for the caller, so feeding the registry is one counter
   add per call, not per evaluation. *)
(* stochlint: allow GLOBAL_MUT_STATE — single-domain metrics probe; the multicore fan-out merges per-domain registries *)
let m_calls = Stochobs.Metrics.(counter default) "numerics.optimize.calls"

(* stochlint: allow GLOBAL_MUT_STATE — single-domain metrics probe; the multicore fan-out merges per-domain registries *)
let m_evals =
  Stochobs.Metrics.(counter default) "numerics.optimize.evaluations"

let record (r : result) =
  Stochobs.Metrics.incr m_calls;
  Stochobs.Metrics.add m_evals r.evaluations;
  r

let invphi = (sqrt 5.0 -. 1.0) /. 2.0 (* 1/phi *)

let golden_section ?(tol = 1e-10) ?(max_iter = 200) f a b =
  let a = ref (Float.min a b) and b = ref (Float.max a b) in
  let evals = ref 0 in
  let feval x =
    incr evals;
    f x
  in
  let c = ref (!b -. (invphi *. (!b -. !a))) in
  let d = ref (!a +. (invphi *. (!b -. !a))) in
  let fc = ref (feval !c) and fd = ref (feval !d) in
  let i = ref 0 in
  while !b -. !a > tol *. (1.0 +. Float.abs !a +. Float.abs !b) && !i < max_iter
  do
    incr i;
    if !fc < !fd then begin
      b := !d;
      d := !c;
      fd := !fc;
      c := !b -. (invphi *. (!b -. !a));
      fc := feval !c
    end
    else begin
      a := !c;
      c := !d;
      fc := !fd;
      d := !a +. (invphi *. (!b -. !a));
      fd := feval !d
    end
  done;
  let xmin = if !fc < !fd then !c else !d in
  record { xmin; fmin = Float.min !fc !fd; evaluations = !evals }

let brent_min ?(tol = 1e-10) ?(max_iter = 200) f a b =
  let cgold = 0.3819660112501051 in
  let zeps = 1e-18 in
  let a = ref (Float.min a b) and b = ref (Float.max a b) in
  let evals = ref 0 in
  let feval x =
    incr evals;
    f x
  in
  let x = ref (!a +. (cgold *. (!b -. !a))) in
  let w = ref !x and v = ref !x in
  let fx = ref (feval !x) in
  let fw = ref !fx and fv = ref !fx in
  let d = ref 0.0 and e = ref 0.0 in
  let iter = ref 0 in
  let converged = ref false in
  while (not !converged) && !iter < max_iter do
    incr iter;
    let xm = 0.5 *. (!a +. !b) in
    let tol1 = (tol *. Float.abs !x) +. zeps in
    let tol2 = 2.0 *. tol1 in
    if Float.abs (!x -. xm) <= tol2 -. (0.5 *. (!b -. !a)) then converged := true
    else begin
      let use_golden = ref true in
      if Float.abs !e > tol1 then begin
        (* Trial parabolic fit through x, v, w. *)
        let r = (!x -. !w) *. (!fx -. !fv) in
        let q = (!x -. !v) *. (!fx -. !fw) in
        let p = ((!x -. !v) *. q) -. ((!x -. !w) *. r) in
        let q = 2.0 *. (q -. r) in
        let p = if q > 0.0 then -.p else p in
        let q = Float.abs q in
        let etemp = !e in
        if
          Float.abs p < Float.abs (0.5 *. q *. etemp)
          && p > q *. (!a -. !x)
          && p < q *. (!b -. !x)
        then begin
          e := !d;
          d := p /. q;
          let u = !x +. !d in
          if u -. !a < tol2 || !b -. u < tol2 then
            d := if xm >= !x then tol1 else -.tol1;
          use_golden := false
        end
      end;
      if !use_golden then begin
        e := (if !x >= xm then !a -. !x else !b -. !x);
        d := cgold *. !e
      end;
      let u =
        if Float.abs !d >= tol1 then !x +. !d
        else !x +. (if !d >= 0.0 then tol1 else -.tol1)
      in
      let fu = feval u in
      if fu <= !fx then begin
        if u >= !x then a := !x else b := !x;
        v := !w;
        fv := !fw;
        w := !x;
        fw := !fx;
        x := u;
        fx := fu
      end
      else begin
        if u < !x then a := u else b := u;
        if fu <= !fw || !w = !x then begin
          v := !w;
          fv := !fw;
          w := u;
          fw := fu
        end
        else if fu <= !fv || !v = !x || !v = !w then begin
          v := u;
          fv := fu
        end
      end
    end
  done;
  record { xmin = !x; fmin = !fx; evaluations = !evals }

let grid ?(refine = true) ~n f a b =
  if n <= 0 then invalid_arg "Optimize.grid: n must be positive";
  let step = (b -. a) /. float_of_int n in
  let best_x = ref nan and best_f = ref infinity in
  let evals = ref 0 in
  for m = 1 to n do
    let x = a +. (float_of_int m *. step) in
    incr evals;
    let fx = f x in
    if Float.is_finite fx && fx < !best_f then begin
      best_f := fx;
      best_x := x
    end
  done;
  if Float.is_nan !best_x then
    invalid_arg "Optimize.grid: objective invalid at every grid point";
  if refine then begin
    let lo = Float.max a (!best_x -. step) in
    let hi = Float.min b (!best_x +. step) in
    let safe_f x =
      incr evals;
      let v = f x in
      if Float.is_finite v then v else infinity
    in
    let r = golden_section ~tol:1e-8 (fun x -> safe_f x) lo hi in
    if r.fmin < !best_f then begin
      best_f := r.fmin;
      best_x := r.xmin
    end
  end;
  record { xmin = !best_x; fmin = !best_f; evaluations = !evals }
