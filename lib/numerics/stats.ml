let mean = Kahan.mean_array

let variance ?(ddof = 1) xs =
  let n = Array.length xs in
  if n <= ddof then invalid_arg "Stats.variance: not enough samples";
  let m = ref 0.0 and m2 = ref 0.0 in
  Array.iteri
    (fun i x ->
      let k = float_of_int (i + 1) in
      let delta = x -. !m in
      m := !m +. (delta /. k);
      m2 := !m2 +. (delta *. (x -. !m)))
    xs;
  !m2 /. float_of_int (n - ddof)

let std ?ddof xs = sqrt (variance ?ddof xs)

let quantiles_sorted xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty sample";
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.quantile: p must be in [0, 1]";
  if n = 1 then xs.(0)
  else begin
    let h = p *. float_of_int (n - 1) in
    let lo = min (n - 2) (int_of_float (floor h)) in
    let frac = h -. float_of_int lo in
    xs.(lo) +. (frac *. (xs.(lo + 1) -. xs.(lo)))
  end

let quantile xs p =
  let copy = Array.copy xs in
  Array.sort compare copy;
  quantiles_sorted copy p

let quantile_nearest_rank_sorted xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile_nearest_rank: empty sample";
  if p < 0.0 || p > 1.0 then
    invalid_arg "Stats.quantile_nearest_rank: p must be in [0, 1]";
  (* Nearest-rank definition: the smallest sample value with at least
     a [p] fraction of the sample at or below it, i.e. the order
     statistic of rank ceil(p * n) (rank 1 when p = 0). Always returns
     an element of the sample — no interpolation. *)
  let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
  let rank = if rank < 1 then 1 else if rank > n then n else rank in
  xs.(rank - 1)

let quantile_nearest_rank xs p =
  let copy = Array.copy xs in
  Array.sort compare copy;
  quantile_nearest_rank_sorted copy p

let median xs = quantile xs 0.5

let min_max xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.min_max: empty sample";
  let mn = ref xs.(0) and mx = ref xs.(0) in
  for i = 1 to n - 1 do
    if xs.(i) < !mn then mn := xs.(i);
    if xs.(i) > !mx then mx := xs.(i)
  done;
  (!mn, !mx)

type histogram = { bounds : float array; counts : int array }

let histogram ?(bins = 20) xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let mn, mx = min_max xs in
  let width = if mx > mn then (mx -. mn) /. float_of_int bins else 1.0 in
  let bounds = Array.init (bins + 1) (fun i -> mn +. (float_of_int i *. width)) in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let idx = int_of_float ((x -. mn) /. width) in
      let idx = if idx >= bins then bins - 1 else if idx < 0 then 0 else idx in
      counts.(idx) <- counts.(idx) + 1)
    xs;
  { bounds; counts }

module Online = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let push t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = t.mean

  let variance t =
    if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

  let std t = sqrt (variance t)

  let stderr t =
    if t.n < 2 then 0.0 else std t /. sqrt (float_of_int t.n)
end
