exception No_bracket of string

let same_sign x y = (x > 0.0 && y > 0.0) || (x < 0.0 && y < 0.0)

let bisection ?(tol = 1e-12) ?(max_iter = 200) f a b =
  let fa = f a and fb = f b in
  (* stochlint: allow FLOAT_EQ — exact root hit at the bracket endpoint short-circuits the search *)
  if fa = 0.0 then a
  (* stochlint: allow FLOAT_EQ — exact root hit at the bracket endpoint short-circuits the search *)
  else if fb = 0.0 then b
  else begin
    if same_sign fa fb then
      (* stochlint: allow EXN_IN_CORE — No_bracket is the documented bracketing contract; Robust.Solver maps it into the typed taxonomy *)
      raise (No_bracket "Rootfind.bisection: f(a) and f(b) have the same sign");
    let a = ref a and b = ref b and fa = ref fa in
    let i = ref 0 in
    while !b -. !a > tol && !i < max_iter do
      incr i;
      let m = 0.5 *. (!a +. !b) in
      let fm = f m in
      (* stochlint: allow FLOAT_EQ — exact root hit terminates bisection early *)
      if fm = 0.0 then begin
        a := m;
        b := m
      end
      else if same_sign !fa fm then begin
        a := m;
        fa := fm
      end
      else b := m
    done;
    0.5 *. (!a +. !b)
  end

let brent ?(tol = 1e-14) ?(max_iter = 200) f a b =
  let fa = f a and fb = f b in
  (* stochlint: allow FLOAT_EQ — exact root hit at the bracket endpoint short-circuits the search *)
  if fa = 0.0 then a
  (* stochlint: allow FLOAT_EQ — exact root hit at the bracket endpoint short-circuits the search *)
  else if fb = 0.0 then b
  else begin
    if same_sign fa fb then
      (* stochlint: allow EXN_IN_CORE — No_bracket is the documented bracketing contract; Robust.Solver maps it into the typed taxonomy *)
      raise (No_bracket "Rootfind.brent: f(a) and f(b) have the same sign");
    let a = ref a and b = ref b and fa = ref fa and fb = ref fb in
    (* Ensure |f(b)| <= |f(a)|: b is the current best iterate. *)
    if Float.abs !fa < Float.abs !fb then begin
      let t = !a in
      a := !b;
      b := t;
      let t = !fa in
      fa := !fb;
      fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) in
    let mflag = ref true in
    let i = ref 0 in
    (* stochlint: allow FLOAT_EQ — Brent iterates until f(b) is exactly zero or the bracket collapses *)
    while !fb <> 0.0 && Float.abs (!b -. !a) > tol && !i < max_iter do
      incr i;
      let s =
        if !fa <> !fc && !fb <> !fc then
          (* Inverse quadratic interpolation. *)
          (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
          +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
          +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
        else
          (* Secant. *)
          !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
      in
      let lo = ((3.0 *. !a) +. !b) /. 4.0 in
      let cond1 = not (s > Float.min lo !b && s < Float.max lo !b) in
      let cond2 = !mflag && Float.abs (s -. !b) >= Float.abs (!b -. !c) /. 2.0 in
      let cond3 =
        (not !mflag) && Float.abs (s -. !b) >= Float.abs (!c -. !d) /. 2.0
      in
      let cond4 = !mflag && Float.abs (!b -. !c) < tol in
      let cond5 = (not !mflag) && Float.abs (!c -. !d) < tol in
      let s =
        if cond1 || cond2 || cond3 || cond4 || cond5 then begin
          mflag := true;
          0.5 *. (!a +. !b)
        end
        else begin
          mflag := false;
          s
        end
      in
      let fs = f s in
      d := !c;
      c := !b;
      fc := !fb;
      if same_sign !fa fs then begin
        a := s;
        fa := fs
      end
      else begin
        b := s;
        fb := fs
      end;
      if Float.abs !fa < Float.abs !fb then begin
        let t = !a in
        a := !b;
        b := t;
        let t = !fa in
        fa := !fb;
        fb := t
      end
    done;
    !b
  end

let newton_safe ?(tol = 1e-13) ?(max_iter = 100) ~f ~df ~lo ~hi x0 =
  let flo = f lo and fhi = f hi in
  (* stochlint: allow FLOAT_EQ — exact root hit at the bracket endpoint short-circuits the search *)
  if flo = 0.0 then lo
  (* stochlint: allow FLOAT_EQ — exact root hit at the bracket endpoint short-circuits the search *)
  else if fhi = 0.0 then hi
  else begin
    if same_sign flo fhi then
      (* stochlint: allow EXN_IN_CORE — No_bracket is the documented bracketing contract; Robust.Solver maps it into the typed taxonomy *)
      raise (No_bracket "Rootfind.newton_safe: interval does not bracket a root");
    (* Orient so that f(xl) < 0 < f(xh). *)
    let xl = ref (if flo < 0.0 then lo else hi) in
    let xh = ref (if flo < 0.0 then hi else lo) in
    let x = ref (Float.max (Float.min x0 (Float.max lo hi)) (Float.min lo hi)) in
    let dxold = ref (Float.abs (hi -. lo)) in
    let dx = ref !dxold in
    let fx = ref (f !x) in
    let dfx = ref (df !x) in
    let i = ref 0 in
    let finished = ref false in
    while (not !finished) && !i < max_iter do
      incr i;
      let newton_out_of_bracket =
        ((!x -. !xh) *. !dfx -. !fx) *. ((!x -. !xl) *. !dfx -. !fx) > 0.0
      in
      let slow = Float.abs (2.0 *. !fx) > Float.abs (!dxold *. !dfx) in
      (* stochlint: allow FLOAT_EQ — exact-zero derivative forces the bisection fallback step *)
      if newton_out_of_bracket || slow || !dfx = 0.0 then begin
        dxold := !dx;
        dx := 0.5 *. (!xh -. !xl);
        x := !xl +. !dx
      end
      else begin
        dxold := !dx;
        dx := !fx /. !dfx;
        x := !x -. !dx
      end;
      if Float.abs !dx < tol then finished := true
      else begin
        fx := f !x;
        dfx := df !x;
        if !fx < 0.0 then xl := !x else xh := !x
      end
    done;
    !x
  end

let expand_bracket ?(factor = 1.6) ?(max_iter = 60) f a b =
  if a = b then invalid_arg "Rootfind.expand_bracket: empty interval";
  let a = ref a and b = ref b in
  let fa = ref (f !a) and fb = ref (f !b) in
  let i = ref 0 in
  while same_sign !fa !fb && !i < max_iter do
    incr i;
    if Float.abs !fa < Float.abs !fb then begin
      a := !a +. (factor *. (!a -. !b));
      fa := f !a
    end
    else begin
      b := !b +. (factor *. (!b -. !a));
      fb := f !b
    end
  done;
  if same_sign !fa !fb then
    (* stochlint: allow EXN_IN_CORE — No_bracket is the documented bracketing contract; Robust.Solver maps it into the typed taxonomy *)
    raise (No_bracket "Rootfind.expand_bracket: no sign change found")
  else (!a, !b)
