(** Line sinks: where JSONL trace records and log lines go.

    A writer receives one complete line (without the newline) per
    record. Keeping the destination a plain function makes every
    emitter in this library explicit-sink by construction — there is
    no ambient global channel to write to, which is exactly the
    discipline the UNLOGGED_SINK lint rule enforces on the rest of the
    repo. *)

type t = string -> unit

val null : t
(** Discards everything. *)

val of_channel : out_channel -> t
(** Appends the line and a ['\n'] to the given channel. The caller
    owns the channel (opening, flushing, closing). *)

val to_buffer : Buffer.t -> t
(** Appends the line and a ['\n'] to a buffer — used by tests for
    golden comparisons and by the bench harness to measure emission
    cost without touching the filesystem. *)
