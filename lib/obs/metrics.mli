(** Metrics registry: named counters, gauges, and fixed-bucket
    histograms with snapshot/diff algebra.

    Instruments are registered once (registration is idempotent and
    keyed by name) and updated from hot paths. A registry starts
    {e disabled}: every update on a disabled registry is one load and
    one branch, so probes can live permanently in numerics/solver/
    scheduler inner loops. Enabling is a runtime switch
    ({!set_enabled}), which lets the CLI flip {!default} on after all
    modules have registered their instruments.

    Names follow the repo-wide [layer.component.metric] scheme, e.g.
    ["numerics.integrate.calls"] or ["scheduler.engine.kills.fault"]. *)

type t
(** A registry. *)

val create : ?enabled:bool -> unit -> t
(** Fresh registry; [enabled] defaults to [false]. *)

val default : t
(** The process-global registry used by built-in instrumentation.
    Disabled until something (the CLI's [--profile], a test) calls
    [set_enabled default true]. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

(** {1 Instruments}

    Each constructor returns the existing instrument when the name is
    already registered with the same kind, and raises
    [Invalid_argument] when the name is bound to a different kind or
    empty. Updates on a disabled registry are no-ops; reads work
    regardless. *)

type counter

val counter : t -> string -> counter

val add : counter -> int -> unit
(** Saturates at [max_int] instead of wrapping; negative increments
    are ignored. *)

val incr : counter -> unit
val count : counter -> int

type gauge

val gauge : t -> string -> gauge

val set : gauge -> float -> unit
(** Records the instantaneous value; also tracks the maximum seen. *)

val last : gauge -> float
val max_seen : gauge -> float

type histogram

val histogram : t -> string -> buckets:float array -> histogram
(** [buckets] are strictly increasing finite upper bounds; an implicit
    overflow bucket catches everything above the last bound. Raises
    [Invalid_argument] on empty, non-finite, or non-increasing bounds,
    and on re-registration with different bounds the original bounds
    win (the name keys the instrument). *)

val observe : histogram -> float -> unit
(** A value [v] lands in the first bucket with [v <= upper.(i)], else
    the overflow bucket. The running sum is Kahan-compensated. *)

val observe_int : histogram -> int -> unit

(** {1 Snapshots} *)

type value =
  | Counter_v of int
  | Gauge_v of { last : float; max : float }
  | Histogram_v of {
      upper : float array;
      counts : int array;  (** length [Array.length upper + 1] *)
      total : int;
      sum : float;
    }

type snapshot = (string * value) list
(** Sorted by instrument name. *)

val snapshot : t -> snapshot
(** Immutable copy of the registry's current readings. Gauges that
    were never {!set} are omitted — they have no reading to report. *)

val diff : before:snapshot -> after:snapshot -> snapshot
(** Per-instrument delta over [after]'s names: counters and histogram
    counts/totals subtract (clamped at zero), histogram sums subtract
    exactly, gauges keep the [after] reading (they are instantaneous,
    not cumulative). Instruments absent from [before] pass through. *)

val zero : value -> bool
(** [true] when the value records no activity — handy for filtering a
    {!diff} down to what actually moved. *)

val merge : snapshot -> snapshot -> snapshot
(** [merge a b] is the union of two snapshots: counters and histogram
    counts/totals add (saturating at [max_int]), histogram sums add
    exactly, gauges keep [b]'s [last] (the right operand is "later",
    as in {!diff}) and the larger of the two maxima. Instruments
    present on one side pass through. Over well-kinded snapshots —
    same name always the same kind and bucket bounds, which is all a
    registry can produce — [merge] is associative with the empty
    snapshot as identity, so per-domain registries fold cleanly at
    join; on a kind or bucket mismatch the right operand wins. *)

val to_json : snapshot -> Json.t
val pp : Format.formatter -> snapshot -> unit

val to_prometheus : snapshot -> string
(** Prometheus text exposition (format 0.0.4) of a snapshot: dots in
    instrument names become underscores, counters gain the
    conventional [_total] suffix, gauges emit their last reading plus
    a [<name>_max] companion, histograms emit cumulative
    [<name>_bucket{le="..."}] series ending at [le="+Inf"] with
    [_sum] and [_count]. Every series is preceded by its [# TYPE]
    line. *)
