(** Per-span-name aggregation over a parsed trace.

    One row per distinct span name: how often it ran, where the time
    went (total vs self — self excludes child spans, so the rows sum
    to wall time instead of double-counting nests), the nearest-rank
    latency quantiles the paper's tail-cost arguments care about, and
    how many runs closed on an error. *)

type row = {
  name : string;
  count : int;
  errors : int;  (** Spans that closed with an [error] field. *)
  total : float;  (** Sum of durations, seconds. *)
  self : float;  (** Sum of self times (children excluded), seconds. *)
  p50 : float;  (** Nearest-rank duration quantiles ... *)
  p95 : float;
  p99 : float;
  max : float;  (** ... and the worst single run, seconds. *)
}

val compute : Trace_read.t -> row list
(** Rows sorted by descending [total] (ties by name), so the biggest
    time sink leads. An empty trace yields []. *)

val find : row list -> string -> row option

val diff_changes : old_rows:row list -> new_rows:row list ->
  (string * row option * row option) list
(** Span names whose [count] or [total] differ between the two runs
    (exact comparison — two runs of the same fake-clock workload
    produce bit-identical rows, so their diff is empty), with the row
    on each side ([None] = the name only exists on the other side).
    Sorted by name. *)

type change = {
  c_name : string;
  c_old : row option;
  c_new : row option;
  rel : float;
      (** Relative total-time change [(new - old) / old]; [infinity]
          for an appeared name, [-1] for a vanished one. *)
  regression : bool;
      (** [true] when the name exists on both sides and its total grew
          by more than the threshold. Appearances and disappearances
          are changes but not regressions — there is no baseline to
          be relative to. *)
}

val diff : threshold:float -> old_rows:row list -> new_rows:row list ->
  change list
(** {!diff_changes} scored against a relative regression threshold
    ([0.25] = flag a span name whose total time grew more than 25%).
    @raise Invalid_argument if [threshold] is negative or not finite. *)

val to_json : row list -> Stochobs.Json.t
val pp : Format.formatter -> row list -> unit
val pp_changes : Format.formatter -> change list -> unit
