type t = {
  mutable on : bool;
  mutable items : item list; (* registration order, newest first *)
}

and item = Icounter of counter | Igauge of gauge | Ihistogram of histogram

and counter = { c_name : string; c_reg : t; mutable c_count : int }

and gauge = {
  g_name : string;
  g_reg : t;
  mutable g_last : float;
  mutable g_max : float;
  mutable g_seen : bool;
}

and histogram = {
  h_name : string;
  h_reg : t;
  h_upper : float array; (* strictly increasing finite bucket bounds *)
  h_counts : int array; (* length h_upper + 1; last = overflow *)
  mutable h_total : int;
  (* Kahan-compensated sum of observations (mirrors Numerics.Kahan,
     reimplemented locally so this library stays a leaf). *)
  mutable h_sum : float;
  mutable h_comp : float;
}

let create ?(enabled = false) () = { on = enabled; items = [] }

(* The process-global registry every layer instruments against. Off by
   default: until the CLI's --profile (or a test) flips it on, every
   probe in the numerics/solver/scheduler hot paths is one load and
   one branch. *)
(* The multicore plan is per-domain registries merged at join, not a
   locked shared one, so the registry stays a plain record. *)
(* stochlint: allow GLOBAL_MUT_STATE — the one deliberate process-global registry *)
let default = create ()

let set_enabled t on = t.on <- on
let enabled t = t.on

let item_name = function
  | Icounter c -> c.c_name
  | Igauge g -> g.g_name
  | Ihistogram h -> h.h_name

let find t name =
  List.find_opt (fun i -> item_name i = name) t.items

let check_name name =
  if name = "" then invalid_arg "Metrics: empty instrument name"

let counter t name =
  check_name name;
  match find t name with
  | Some (Icounter c) -> c
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Metrics.counter: %s is registered with another kind"
           name)
  | None ->
      let c = { c_name = name; c_reg = t; c_count = 0 } in
      t.items <- Icounter c :: t.items;
      c

let gauge t name =
  check_name name;
  match find t name with
  | Some (Igauge g) -> g
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Metrics.gauge: %s is registered with another kind"
           name)
  | None ->
      let g =
        { g_name = name; g_reg = t; g_last = 0.0; g_max = 0.0; g_seen = false }
      in
      t.items <- Igauge g :: t.items;
      g

let histogram t name ~buckets =
  check_name name;
  if Array.length buckets = 0 then
    invalid_arg "Metrics.histogram: needs at least one bucket bound";
  Array.iteri
    (fun i b ->
      if not (Float.is_finite b) then
        invalid_arg "Metrics.histogram: bucket bounds must be finite";
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: bucket bounds must strictly increase")
    buckets;
  match find t name with
  | Some (Ihistogram h) -> h
  | Some _ ->
      invalid_arg
        (Printf.sprintf
           "Metrics.histogram: %s is registered with another kind" name)
  | None ->
      let h =
        {
          h_name = name;
          h_reg = t;
          h_upper = Array.copy buckets;
          h_counts = Array.make (Array.length buckets + 1) 0;
          h_total = 0;
          h_sum = 0.0;
          h_comp = 0.0;
        }
      in
      t.items <- Ihistogram h :: t.items;
      h

(* Saturating add: a counter that would wrap pins at max_int instead
   of going negative (overflow safety for eternal processes). *)
let sat_add a b =
  if b >= 0 then if a > max_int - b then max_int else a + b
  else a (* negative increments are silently ignored *)

let add c n = if c.c_reg.on then c.c_count <- sat_add c.c_count n
let incr c = add c 1
let count c = c.c_count

let set g v =
  if g.g_reg.on then begin
    g.g_last <- v;
    if (not g.g_seen) || v > g.g_max then g.g_max <- v;
    g.g_seen <- true
  end

let last g = g.g_last
let max_seen g = g.g_max

let observe h v =
  if h.h_reg.on then begin
    (* Kahan step *)
    let y = v -. h.h_comp in
    let s = h.h_sum +. y in
    h.h_comp <- s -. h.h_sum -. y;
    h.h_sum <- s;
    h.h_total <- sat_add h.h_total 1;
    let n = Array.length h.h_upper in
    let rec place i =
      if i >= n then h.h_counts.(n) <- sat_add h.h_counts.(n) 1
      else if v <= h.h_upper.(i) then
        h.h_counts.(i) <- sat_add h.h_counts.(i) 1
      else place (i + 1)
    in
    place 0
  end

let observe_int h v = observe h (float_of_int v)

(* ------------------------------ snapshots ------------------------- *)

type value =
  | Counter_v of int
  | Gauge_v of { last : float; max : float }
  | Histogram_v of {
      upper : float array;
      counts : int array;
      total : int;
      sum : float;
    }

type snapshot = (string * value) list

let snapshot t =
  t.items
  |> List.filter_map (fun item ->
         match item with
         | Icounter c -> Some (c.c_name, Counter_v c.c_count)
         (* A gauge nobody has set yet has no reading to report — it
            would otherwise surface as a spurious 0 in every diff. *)
         | Igauge g when not g.g_seen -> None
         | Igauge g ->
             Some (g.g_name, Gauge_v { last = g.g_last; max = g.g_max })
         | Ihistogram h ->
             Some
               ( h.h_name,
                 Histogram_v
                   {
                     upper = Array.copy h.h_upper;
                     counts = Array.copy h.h_counts;
                     total = h.h_total;
                     sum = h.h_sum;
                   } ))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let sat_sub a b = if a >= b then a - b else 0

let diff ~before ~after =
  List.map
    (fun (name, v) ->
      match (v, List.assoc_opt name before) with
      | Counter_v n, Some (Counter_v m) -> (name, Counter_v (sat_sub n m))
      | Histogram_v h, Some (Histogram_v g)
        when Array.length h.counts = Array.length g.counts ->
          ( name,
            Histogram_v
              {
                h with
                counts = Array.mapi (fun i c -> sat_sub c g.counts.(i)) h.counts;
                total = sat_sub h.total g.total;
                sum = h.sum -. g.sum;
              } )
      (* Gauges are instantaneous, not cumulative: the later reading
         stands. Mismatched or newly registered instruments also pass
         through unchanged. *)
      | v, _ -> (name, v))
    after

let zero = function
  | Counter_v n -> n = 0
  | Gauge_v _ -> false
  | Histogram_v h -> h.total = 0

(* Merge two readings of the same instrument. Counters and histograms
   are cumulative, so they add (saturating, like the live updates);
   gauges are instantaneous, so the right operand's [last] stands —
   "right" is "later" by convention, exactly as in [diff] — while the
   maxima combine. A kind or bucket mismatch can only mean the two
   snapshots come from incompatible registries; the right operand wins
   there too, keeping the convention uniform. *)
let merge_value a b =
  match (a, b) with
  | Counter_v n, Counter_v m -> Counter_v (sat_add n m)
  | Gauge_v g, Gauge_v h ->
      Gauge_v { last = h.last; max = Float.max g.max h.max }
  | Histogram_v g, Histogram_v h
    when Array.length g.counts = Array.length h.counts ->
      Histogram_v
        {
          h with
          counts = Array.mapi (fun i c -> sat_add c g.counts.(i)) h.counts;
          total = sat_add g.total h.total;
          sum = g.sum +. h.sum;
        }
  | _, b -> b

(* Snapshots are sorted by name, so the union is a linear merge and
   the result stays sorted — [merge] is associative over well-kinded
   snapshots and the empty snapshot is its identity (the multicore
   per-domain registries fold through this at join). *)
let rec merge a b =
  match (a, b) with
  | [], s | s, [] -> s
  | (an, av) :: arest, (bn, bv) :: brest ->
      let c = String.compare an bn in
      if c < 0 then (an, av) :: merge arest b
      else if c > 0 then (bn, bv) :: merge a brest
      else (an, merge_value av bv) :: merge arest brest

let value_to_json = function
  | Counter_v n -> Json.Num (float_of_int n)
  | Gauge_v { last; max } ->
      Json.Obj [ ("last", Json.Num last); ("max", Json.Num max) ]
  | Histogram_v { upper; counts; total; sum } ->
      Json.Obj
        [
          ("buckets", Json.Arr (Array.to_list (Array.map (fun b -> Json.Num b) upper)));
          ("counts",
           Json.Arr
             (Array.to_list
                (Array.map (fun c -> Json.Num (float_of_int c)) counts)));
          ("total", Json.Num (float_of_int total));
          ("sum", Json.Num sum);
        ]

let to_json snap =
  Json.Obj (List.map (fun (name, v) -> (name, value_to_json v)) snap)

(* ------------------------ Prometheus exposition ------------------- *)

(* The repo's [layer.component.metric] names carry dots, which the
   Prometheus metric-name grammar (letters, digits, '_' and ':', no
   leading digit) forbids; every illegal byte maps to '_' and a
   leading digit gets a '_' prefix. *)
let prometheus_name name =
  let ok i c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
    | '0' .. '9' -> i > 0
    | _ -> false
  in
  let b = Buffer.create (String.length name + 1) in
  String.iteri
    (fun i c ->
      if ok (Buffer.length b) c then Buffer.add_char b c
      else if i = 0 && (match c with '0' .. '9' -> true | _ -> false) then begin
        Buffer.add_char b '_';
        Buffer.add_char b c
      end
      else Buffer.add_char b '_')
    name;
  Buffer.contents b

(* %.17g round-trips a double, so a scrape is as exact as the JSON
   snapshot; Prometheus itself parses any Go float literal. *)
let prometheus_num v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let to_prometheus snap =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  List.iter
    (fun (name, v) ->
      let n = prometheus_name name in
      match v with
      | Counter_v c ->
          line "# TYPE %s_total counter" n;
          line "%s_total %d" n c
      | Gauge_v { last; max } ->
          line "# TYPE %s gauge" n;
          line "%s %s" n (prometheus_num last);
          line "# TYPE %s_max gauge" n;
          line "%s_max %s" n (prometheus_num max)
      | Histogram_v { upper; counts; total; sum } ->
          line "# TYPE %s histogram" n;
          let cumulative = ref 0 in
          Array.iteri
            (fun i bound ->
              cumulative := sat_add !cumulative counts.(i);
              line "%s_bucket{le=\"%s\"} %d" n (prometheus_num bound)
                !cumulative)
            upper;
          line "%s_bucket{le=\"+Inf\"} %d" n total;
          line "%s_sum %s" n (prometheus_num sum);
          line "%s_count %d" n total)
    snap;
  Buffer.contents b

let pp fmt snap =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter_v n -> Format.fprintf fmt "%-44s %d@." name n
      | Gauge_v { last; max } ->
          Format.fprintf fmt "%-44s last %g, max %g@." name last max
      | Histogram_v { total; sum; _ } ->
          Format.fprintf fmt "%-44s n=%d, sum=%g%s@." name total sum
            (if total > 0 then
               Printf.sprintf ", mean=%g" (sum /. float_of_int total)
             else ""))
    snap
