module J = Stochobs.Json

type span = {
  id : int;
  parent : int;
  name : string;
  start : float;
  stop : float;
  error : string option;
  attrs : (string * J.t) list;
  children : span list;
}

type event = {
  ev_name : string;
  ev_parent : int;
  at : float;
  ev_attrs : (string * J.t) list;
}

type t = {
  roots : span list;
  events : event list;
  lines : int;
  skipped : int;
}

let duration sp = sp.stop -. sp.start

let self_time sp =
  let kids = List.fold_left (fun acc c -> acc +. duration c) 0.0 sp.children in
  Float.max 0.0 (duration sp -. kids)

let rec preorder acc sp = List.fold_left preorder (sp :: acc) sp.children

let spans t = List.rev (List.fold_left preorder [] t.roots)

let span_count t = List.length (spans t)

(* ------------------------- record parsing ------------------------- *)

(* A raw span line before tree assembly: [children] filled in later. *)
type raw = {
  r_id : int;
  r_parent : int;
  r_name : string;
  r_start : float;
  r_stop : float;
  r_error : string option;
  r_attrs : (string * J.t) list;
}

let str_field name j = Option.bind (J.member name j) J.to_str
let int_field name j = Option.bind (J.member name j) J.to_int

let num_field name j =
  match J.member name j with Some (J.Num v) -> Some v | _ -> None

let attrs_field j =
  match J.member "attrs" j with Some (J.Obj fields) -> fields | _ -> []

type record = Span of raw | Event of event | Damaged

(* Validate one parsed object back into the writer's record shape; a
   missing or ill-typed field means a torn or bit-flipped line, and
   the whole line is damage — half a span is worse than none. *)
let record_of_json j =
  match str_field "type" j with
  | Some "span" -> (
      match
        ( str_field "name" j,
          int_field "id" j,
          num_field "start" j,
          num_field "end" j )
      with
      | Some name, Some id, Some start, Some stop
        when id > 0
             && Float.is_finite start
             && Float.is_finite stop
             && stop >= start -> (
          match int_field "parent" j with
          | Some p when p = id || p < 0 -> Damaged
          | parent ->
              Span
                {
                  r_id = id;
                  r_parent = Option.value parent ~default:0;
                  r_name = name;
                  r_start = start;
                  r_stop = stop;
                  r_error = str_field "error" j;
                  r_attrs = attrs_field j;
                })
      | _ -> Damaged)
  | Some "event" -> (
      match (str_field "name" j, num_field "at" j) with
      | Some name, Some at when Float.is_finite at ->
          Event
            {
              ev_name = name;
              ev_parent =
                (match int_field "parent" j with
                | Some p when p > 0 -> p
                | _ -> 0);
              at;
              ev_attrs = attrs_field j;
            }
      | _ -> Damaged)
  | _ -> Damaged

(* -------------------------- tree assembly ------------------------- *)

let of_lines lines =
  let raws : (int, raw) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] (* raw ids, reverse file order *) in
  let events = ref [] in
  let line_count = ref 0 in
  let skipped = ref 0 in
  Seq.iter
    (fun line ->
      if String.trim line <> "" then begin
        incr line_count;
        match J.of_string line with
        | Error _ -> incr skipped
        | Ok j -> (
            match record_of_json j with
            | Damaged -> incr skipped
            | Event e -> events := e :: !events
            | Span r ->
                if Hashtbl.mem raws r.r_id then
                  (* A duplicated id can only be corruption; the first
                     record wins so the tree stays a tree. *)
                  incr skipped
                else begin
                  Hashtbl.add raws r.r_id r;
                  order := r.r_id :: !order
                end)
      end)
    lines;
  let ids = List.rev !order in
  (* Children grouped by parent; only parents actually present anchor
     a subtree, everything else is a root. *)
  let children_of : (int, int list) Hashtbl.t = Hashtbl.create 256 in
  let root_ids = ref [] in
  List.iter
    (fun id ->
      match Hashtbl.find_opt raws id with
      | None -> ()
      | Some r ->
          if r.r_parent <> 0 && Hashtbl.mem raws r.r_parent then
            Hashtbl.replace children_of r.r_parent
              (id :: Option.value (Hashtbl.find_opt children_of r.r_parent)
                       ~default:[])
          else root_ids := id :: !root_ids)
    ids;
  let built = Hashtbl.create 256 in
  let rec build id =
    match Hashtbl.find_opt raws id with
    | None -> None
    | Some r ->
        Hashtbl.replace built id ();
        let kids =
          Option.value (Hashtbl.find_opt children_of id) ~default:[]
          |> List.sort compare
          |> List.filter_map build
        in
        Some
          {
            id = r.r_id;
            parent = r.r_parent;
            name = r.r_name;
            start = r.r_start;
            stop = r.r_stop;
            error = r.r_error;
            attrs = r.r_attrs;
            children = kids;
          }
  in
  let roots = List.sort compare !root_ids |> List.filter_map build in
  (* Spans a corrupt parent pointer trapped in a cycle are unreachable
     from any root: count them as damage rather than dropping them
     silently. *)
  let unreachable =
    List.length (List.filter (fun id -> not (Hashtbl.mem built id)) ids)
  in
  {
    roots;
    events = List.rev !events;
    lines = !line_count;
    skipped = !skipped + unreachable;
  }

let of_string s = of_lines (String.split_on_char '\n' s |> List.to_seq)

let of_channel ic =
  let rec next () =
    match In_channel.input_line ic with
    | None -> Seq.Nil
    | Some line -> Seq.Cons (line, next)
  in
  of_lines next

let of_file path =
  match In_channel.open_text path with
  | ic ->
      Fun.protect
        ~finally:(fun () -> In_channel.close ic)
        (fun () ->
          match of_channel ic with
          | t -> Ok t
          | exception Sys_error msg -> Error msg)
  | exception Sys_error msg -> Error msg
