(** Streaming reader for the JSONL traces {!Stochobs.Trace} emits.

    Inverts the writer's format — one JSON object per line, spans
    written at close so child lines precede their parents — back into
    span trees, with the same damage tolerance the cache journal has:
    a torn, truncated or otherwise malformed line is {e skipped and
    counted}, never an exception. Reading a trace that a crash (or a
    chaos test's bit flips) mangled yields every reconstructible span
    plus an honest [skipped] count, so analyses can report how much of
    the record they are standing on.

    Structural repairs on damaged input:
    - a span whose parent record is missing (the parent line was at
      the torn tail of the file — parents close after their children)
      is promoted to a root, keeping its subtree reachable;
    - a span caught in a parent cycle (corrupt parent pointer) is
      unreachable from any root and is counted as skipped instead of
      looping the reader. *)

type span = {
  id : int;  (** Writer-assigned, sequential from 1. *)
  parent : int;  (** [0] for roots. *)
  name : string;
  start : float;
  stop : float;  (** The record's [end] field; [stop >= start]. *)
  error : string option;  (** Present when the span closed on an exception. *)
  attrs : (string * Stochobs.Json.t) list;  (** In emission order. *)
  children : span list;  (** Ascending id — i.e. start order. *)
}

type event = {
  ev_name : string;
  ev_parent : int;  (** [0] when emitted outside any open span. *)
  at : float;
  ev_attrs : (string * Stochobs.Json.t) list;
}

type t = {
  roots : span list;  (** Ascending id; includes promoted orphans. *)
  events : event list;  (** In file order. *)
  lines : int;  (** Non-blank lines seen. *)
  skipped : int;  (** Lines (or unreachable spans) dropped as damaged. *)
}

val duration : span -> float
(** [stop -. start]. *)

val self_time : span -> float
(** {!duration} minus the children's durations, clamped at zero (a
    child that claims more time than its parent is clock damage, not
    negative work). *)

val spans : t -> span list
(** Every reconstructed span, preorder over {!roots} — each parent
    before its children, sibling subtrees in id order. *)

val span_count : t -> int

val of_lines : string Seq.t -> t
(** Core reader: parse each line, validate the record shape (type,
    name, finite [start]/[end] with [end >= start], positive id, a
    parent distinct from the id itself), keep what checks out and
    count the rest as [skipped]. Never raises. *)

val of_string : string -> t
(** {!of_lines} over the newline-split string. *)

val of_channel : in_channel -> t
(** {!of_lines} over the channel's lines; the caller closes. *)

val of_file : string -> (t, string) result
(** Read a trace file; [Error] only for an unreadable file — damaged
    {e contents} are a skip count, not an error. *)
