let frame name =
  String.map (function ';' | ' ' | '\n' | '\t' -> '_' | c -> c) name

let folded t =
  let tbl : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let rec walk prefix (sp : Trace_read.span) =
    let stack =
      if prefix = "" then frame sp.Trace_read.name
      else prefix ^ ";" ^ frame sp.Trace_read.name
    in
    let self = Trace_read.self_time sp in
    if self > 0.0 then
      Hashtbl.replace tbl stack
        (self +. Option.value (Hashtbl.find_opt tbl stack) ~default:0.0);
    List.iter (walk stack) sp.Trace_read.children
  in
  List.iter (walk "") t.Trace_read.roots;
  Hashtbl.fold (fun stack v acc -> (stack, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_lines t =
  List.map
    (fun (stack, seconds) ->
      let micros = Float.round (1e6 *. seconds) in
      Printf.sprintf "%s %.0f" stack (Float.max 1.0 micros))
    (folded t)

let pp fmt t =
  List.iter (fun line -> Format.fprintf fmt "%s@." line) (to_lines t)
