type step = {
  span : Trace_read.span;
  step_self : float;
  fraction : float;
}

let heaviest_child (sp : Trace_read.span) =
  List.fold_left
    (fun best c ->
      match best with
      | None -> Some c
      | Some b ->
          (* Strict >: on ties the earlier child (lower id) wins, so
             the chain is deterministic. *)
          if Trace_read.duration c > Trace_read.duration b then Some c
          else best)
    None sp.Trace_read.children

let of_root root =
  let total = Trace_read.duration root in
  let frac d = if total > 0.0 then d /. total else 0.0 in
  let rec walk acc sp =
    let step =
      {
        span = sp;
        step_self = Trace_read.self_time sp;
        fraction = frac (Trace_read.duration sp);
      }
    in
    match heaviest_child sp with
    | None -> List.rev (step :: acc)
    | Some c -> walk (step :: acc) c
  in
  walk [] root

let compute (t : Trace_read.t) = List.map of_root t.Trace_read.roots

let pp fmt chains =
  List.iter
    (fun chain ->
      (match chain with
      | [] -> ()
      | root :: _ ->
          Format.fprintf fmt "critical path of %s (%.6fs):@."
            root.span.Trace_read.name
            (Trace_read.duration root.span));
      List.iteri
        (fun depth step ->
          Format.fprintf fmt "  %s%-34s %10.6fs  self %10.6fs  %5.1f%%@."
            (String.make (2 * depth) ' ')
            step.span.Trace_read.name
            (Trace_read.duration step.span)
            step.step_self
            (100.0 *. step.fraction))
        chain)
    chains
