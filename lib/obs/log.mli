(** Leveled logging to an explicit {!Writer.t}.

    Library code never writes to stdout/stderr directly (the
    UNLOGGED_SINK lint rule enforces this); instead it takes a [Log.t]
    — defaulting to {!null} — and the binary decides where lines go.
    On {!null}, [msg] is a single branch. The [*f] formatters still
    render their arguments before the level check ([ksprintf] formats
    eagerly), so guard expensive interpolations with {!would_log} in
    hot paths. *)

type level = Debug | Info | Warn | Error

type t

val null : t
(** Discards everything at zero cost. *)

val make : ?min_level:level -> Writer.t -> t
(** [min_level] defaults to [Info]. *)

val enabled : t -> bool

val would_log : t -> level -> bool
(** [true] when a message at [level] would actually be written — use
    to guard expensive message construction. *)

val msg : t -> level -> string -> unit
(** Writes ["[level] text"] as one line when the level passes. *)

val logf : t -> level -> ('a, unit, string, unit) format4 -> 'a
val debugf : t -> ('a, unit, string, unit) format4 -> 'a
val infof : t -> ('a, unit, string, unit) format4 -> 'a
val warnf : t -> ('a, unit, string, unit) format4 -> 'a
val errorf : t -> ('a, unit, string, unit) format4 -> 'a
