type t = string -> unit

let null : t = fun _ -> ()

let of_channel oc line =
  output_string oc line;
  output_char oc '\n'

let to_buffer buf line =
  Buffer.add_string buf line;
  Buffer.add_char buf '\n'
