(** Structured tracing: explicit-sink spans written as JSONL.

    A {!sink} is either the no-op {!null} — every operation then costs
    a single branch, so instrumentation can stay in hot paths — or a
    real sink built from an injected {!Clock.t} and a {!Writer.t}.
    Spans are emitted {e at close}, one JSON object per line, so a
    child's line precedes its parent's; consumers reconstruct the tree
    from the [id]/[parent] fields. Span ids are assigned sequentially
    from 1, and the clock is read exactly twice per span (open/close)
    plus once per {!instant}, which makes traces under {!Clock.fake}
    reproducible bit for bit.

    Record shapes:
    {v
    {"type": "span", "name": N, "id": I, "parent": P?, "start": S,
     "end": E, "error": MSG?, "attrs": {..}?}
    {"type": "event", "name": N, "parent": P?, "at": T, "attrs": {..}?}
    v}
    Span names follow the repo-wide [layer.component.metric] naming
    scheme (e.g. ["robust.solver.tier"], ["scheduler.engine.run"]). *)

type value = Str of string | Num of float | Int of int | Bool of bool

type attr = string * value
(** One span/event attribute. *)

type sink

val null : sink
(** The disabled sink: no clock reads, no allocation, no output. *)

val make : ?clock:Clock.t -> Writer.t -> sink
(** [make writer] is a live sink. [clock] defaults to {!Clock.cpu}. *)

val enabled : sink -> bool

val with_span : sink -> ?attrs:attr list -> string -> (unit -> 'a) -> 'a
(** [with_span sink name f] runs [f] inside a span. The span closes
    (and its JSONL line is written) when [f] returns {e or raises}; an
    exception is recorded in the [error] field and re-raised. Nested
    calls record the enclosing span as [parent]. On {!null} this is
    exactly [f ()]. *)

val annotate : sink -> attr list -> unit
(** Attach attributes to the innermost open span — for facts only
    known mid-body, such as which outcome a solver tier produced.
    No-op on {!null} or outside any span. *)

val instant : sink -> ?attrs:attr list -> string -> unit
(** A zero-duration point event at the current clock reading, parented
    to the innermost open span. *)

val spans_written : sink -> int
(** Spans emitted so far ([0] on {!null}) — cheap cardinality check
    for tests and the bench artefact. *)

val events_written : sink -> int
