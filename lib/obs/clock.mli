(** Injectable time source for the tracing layer.

    Spans read the clock only when a real sink is attached, so the
    disabled path never touches a timer at all. The default is
    [Sys.time] (process CPU seconds — monotone, dependency-free, and
    available everywhere the toolchain is); tests and the CLI's
    [--fake-clock] mode inject {!fake} instead, which makes trace files
    reproducible byte for byte. *)

type t = unit -> float
(** A clock is any function returning nondecreasing seconds. *)

val cpu : t
(** [Sys.time]: CPU seconds consumed by the process. Monotone and
    dependency-free; coarse, but spans are for attribution, not
    nanosecond timing (the bench harness measures overhead itself). *)

val fake : ?start:float -> ?step:float -> unit -> t
(** [fake ()] is a deterministic clock that returns
    [start + k * step] on its [k]-th reading (defaults [0.] and
    [0.001]). Every reading advances it, so equal trace structure
    yields equal timestamps — the bit-for-bit golden-trace contract.
    @raise Invalid_argument on non-finite arguments or negative
    [step]. *)
