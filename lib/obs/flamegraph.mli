(** Folded-stack flamegraph output.

    The classic [flamegraph.pl] input format: one line per distinct
    stack, frames joined by [';'] root-first, followed by a value.
    Values are {e self} times, so a stack's width in the rendered
    graph is time spent in that frame itself — children get their own
    stacks — and the whole graph sums to the trace's wall time. *)

val folded : Trace_read.t -> (string * float) list
(** [(stack, self_seconds)] pairs, identical stacks aggregated,
    zero-self stacks dropped, sorted by stack string for deterministic
    output. Frame names have embedded [';'], space and newline
    characters replaced by ['_'] so the folded format stays
    unambiguous. *)

val to_lines : Trace_read.t -> string list
(** {!folded} rendered as ["stack value"] lines with the value in
    integer microseconds (rounded), the unit flamegraph toolchains
    expect. Stacks rounding to zero microseconds are kept at [1] so no
    observed frame vanishes from the graph. *)

val pp : Format.formatter -> Trace_read.t -> unit
(** {!to_lines}, one per line. *)
