type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let num_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let to_string ?(indent = true) t =
  let buf = Buffer.create 256 in
  let pad depth =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num v -> Buffer.add_string buf (num_to_string v)
    | Str s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            go (depth + 1) item)
          items;
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf "\": ";
            go (depth + 1) v)
          fields;
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

exception Parse_fail of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' ->
                  if !pos + 4 > n then fail "truncated \\u escape";
                  let hex = String.sub s !pos 4 in
                  pos := !pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> fail "bad \\u escape"
                  in
                  (* ASCII only — enough for the paths and rule ids we
                     write; anything else round-trips as '?'. *)
                  Buffer.add_char buf
                    (if code < 0x80 then Char.chr code else '?')
              | _ -> fail "unknown escape");
              go ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some v -> Num v
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_fail (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Num v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None
