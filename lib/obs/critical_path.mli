(** Longest child-chain decomposition of a span tree.

    For each root span, walk downward always into the child with the
    largest duration: the resulting chain is where an optimisation
    would shorten the root's wall time, and each step's {e self} time
    says how much of the chain the step itself burns (as opposed to
    delegating further down). Spans are synchronous and nested, so the
    heaviest child is the dominant contributor at every level. *)

type step = {
  span : Trace_read.span;
  step_self : float;
      (** The step's own time: duration minus all children (not just
          the one the chain descends into), clamped at zero. *)
  fraction : float;
      (** Step duration / root duration; [1.0] at the root, [0.0] on
          a zero-length root. *)
}

val of_root : Trace_read.span -> step list
(** Root-to-leaf chain, root first. Singleton for a childless root. *)

val compute : Trace_read.t -> step list list
(** One chain per root, in root id order. *)

val pp : Format.formatter -> step list list -> unit
