(** Minimal JSON support shared by the observability layer (trace
    JSONL, metric snapshots, bench artefacts) and the stochlint
    reports/baselines that originally hosted it.

    Deliberately dependency-free: the container only guarantees the
    OCaml toolchain, so the repo carries its own emitter and a small
    recursive-descent parser covering the subset it writes (objects,
    arrays, strings with backslash escapes, integers/floats, booleans,
    null). [to_string ~indent:false] emits no newlines, which is what
    makes the trace writer's one-object-per-line JSONL format safe. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Serialise; [indent] (default true) pretty-prints with 2-space
    indentation so baselines diff cleanly under version control. *)

val of_string : string -> (t, string) result
(** Parse, or [Error message] naming the byte offset of the failure. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else. *)

val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
