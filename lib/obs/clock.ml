type t = unit -> float

let cpu : t = Sys.time

let fake ?(start = 0.0) ?(step = 0.001) () : t =
  if not (Float.is_finite start) || not (Float.is_finite step) || step < 0.0
  then invalid_arg "Clock.fake: start/step must be finite, step nonnegative";
  let ticks = ref 0 in
  fun () ->
    let t = start +. (float_of_int !ticks *. step) in
    incr ticks;
    t
