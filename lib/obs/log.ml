type level = Debug | Info | Warn | Error

let level_label = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type state = { min_level : level; write : Writer.t }
type t = state option

let null : t = None
let make ?(min_level = Info) write : t = Some { min_level; write }
let enabled = Option.is_some

let would_log t level =
  match t with
  | None -> false
  | Some st -> level_rank level >= level_rank st.min_level

let msg t level text =
  match t with
  | None -> ()
  | Some st ->
      if level_rank level >= level_rank st.min_level then
        st.write (Printf.sprintf "[%s] %s" (level_label level) text)

let logf t level fmt = Printf.ksprintf (fun s -> msg t level s) fmt
let debugf t fmt = logf t Debug fmt
let infof t fmt = logf t Info fmt
let warnf t fmt = logf t Warn fmt
let errorf t fmt = logf t Error fmt
