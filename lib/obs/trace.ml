type value = Str of string | Num of float | Int of int | Bool of bool

type attr = string * value

type open_span = {
  id : int;
  parent : int;
  name : string;
  start : float;
  mutable extra : attr list; (* newest first *)
}

type state = {
  clock : Clock.t;
  write : Writer.t;
  mutable next_id : int;
  mutable stack : open_span list; (* innermost first *)
  mutable spans : int;
  mutable events : int;
}

(* [None] is the no-op sink: every operation reduces to one match on
   the option, so instrumented hot paths cost a branch when tracing is
   off. *)
type sink = state option

let null : sink = None

let make ?(clock = Clock.cpu) write : sink =
  Some { clock; write; next_id = 1; stack = []; spans = 0; events = 0 }

let enabled = Option.is_some

let spans_written = function None -> 0 | Some st -> st.spans
let events_written = function None -> 0 | Some st -> st.events

let json_of_value = function
  | Str s -> Json.Str s
  | Num v -> Json.Num v
  | Int i -> Json.Num (float_of_int i)
  | Bool b -> Json.Bool b

let json_of_attrs attrs =
  Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) attrs)

let emit st json = st.write (Json.to_string ~indent:false json)

let span_json sp ~stop ~error =
  Json.Obj
    ([ ("type", Json.Str "span"); ("name", Json.Str sp.name);
       ("id", Json.Num (float_of_int sp.id)) ]
    @ (if sp.parent = 0 then []
       else [ ("parent", Json.Num (float_of_int sp.parent)) ])
    @ [ ("start", Json.Num sp.start); ("end", Json.Num stop) ]
    @ (match error with
      | None -> []
      | Some msg -> [ ("error", Json.Str msg) ])
    @
    match sp.extra with
    | [] -> []
    | attrs -> [ ("attrs", json_of_attrs (List.rev attrs)) ])

let annotate sink attrs =
  match sink with
  | None -> ()
  | Some st -> (
      match st.stack with
      | [] -> ()
      | sp :: _ -> sp.extra <- List.rev_append attrs sp.extra)

let with_span sink ?(attrs = []) name f =
  match sink with
  | None -> f ()
  | Some st ->
      let id = st.next_id in
      st.next_id <- id + 1;
      let parent = match st.stack with [] -> 0 | p :: _ -> p.id in
      let sp =
        { id; parent; name; start = st.clock (); extra = List.rev attrs }
      in
      st.stack <- sp :: st.stack;
      let close error =
        let stop = st.clock () in
        (* [f] is synchronous and nested spans pop themselves even on
           exceptions, so [sp] is necessarily the innermost open span
           here. *)
        st.stack <- (match st.stack with _ :: rest -> rest | [] -> []);
        st.spans <- st.spans + 1;
        emit st (span_json sp ~stop ~error)
      in
      (match f () with
      | v ->
          close None;
          v
      | exception exn ->
          close (Some (Printexc.to_string exn));
          raise exn)

let instant sink ?(attrs = []) name =
  match sink with
  | None -> ()
  | Some st ->
      let parent = match st.stack with [] -> 0 | p :: _ -> p.id in
      st.events <- st.events + 1;
      emit st
        (Json.Obj
           ([ ("type", Json.Str "event"); ("name", Json.Str name) ]
           @ (if parent = 0 then []
              else [ ("parent", Json.Num (float_of_int parent)) ])
           @ [ ("at", Json.Num (st.clock ())) ]
           @
           match attrs with
           | [] -> []
           | l -> [ ("attrs", json_of_attrs l) ]))
