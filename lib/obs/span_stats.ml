module J = Stochobs.Json

type row = {
  name : string;
  count : int;
  errors : int;
  total : float;
  self : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

type acc = {
  mutable a_count : int;
  mutable a_errors : int;
  mutable a_total : float;
  mutable a_self : float;
  mutable a_durations : float list;
}

let compute t =
  let tbl : (string, acc) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (sp : Trace_read.span) ->
      let a =
        match Hashtbl.find_opt tbl sp.Trace_read.name with
        | Some a -> a
        | None ->
            let a =
              {
                a_count = 0;
                a_errors = 0;
                a_total = 0.0;
                a_self = 0.0;
                a_durations = [];
              }
            in
            Hashtbl.add tbl sp.Trace_read.name a;
            a
      in
      let d = Trace_read.duration sp in
      a.a_count <- a.a_count + 1;
      if Option.is_some sp.Trace_read.error then a.a_errors <- a.a_errors + 1;
      a.a_total <- a.a_total +. d;
      a.a_self <- a.a_self +. Trace_read.self_time sp;
      a.a_durations <- d :: a.a_durations)
    (Trace_read.spans t);
  let q = Numerics.Stats.quantile_nearest_rank_sorted in
  let rows =
    Hashtbl.fold
      (fun name a rows ->
        let ds = Array.of_list a.a_durations in
        Array.sort compare ds;
        {
          name;
          count = a.a_count;
          errors = a.a_errors;
          total = a.a_total;
          self = a.a_self;
          p50 = q ds 0.5;
          p95 = q ds 0.95;
          p99 = q ds 0.99;
          max = ds.(Array.length ds - 1);
        }
        :: rows)
      tbl []
  in
  List.sort
    (fun a b ->
      match compare b.total a.total with
      | 0 -> String.compare a.name b.name
      | c -> c)
    rows

let find rows name = List.find_opt (fun r -> String.compare r.name name = 0) rows

(* Exact comparison is deliberate: identical runs produce identical
   float sums, and "almost equal" totals are precisely what a diff
   must surface. Expressed as |delta| > 0 to keep the float-equality
   lint honest about intent. *)
let row_changed a b =
  a.count <> b.count || Float.abs (a.total -. b.total) > 0.0

let diff_changes ~old_rows ~new_rows =
  let names =
    List.sort_uniq String.compare
      (List.map (fun r -> r.name) old_rows @ List.map (fun r -> r.name) new_rows)
  in
  List.filter_map
    (fun name ->
      match (find old_rows name, find new_rows name) with
      | None, None -> None
      | (Some a, Some b) when not (row_changed a b) -> None
      | o, n -> Some (name, o, n))
    names

type change = {
  c_name : string;
  c_old : row option;
  c_new : row option;
  rel : float;
  regression : bool;
}

let diff ~threshold ~old_rows ~new_rows =
  if not (Float.is_finite threshold && threshold >= 0.0) then
    invalid_arg
      (Printf.sprintf
         "Span_stats.diff: threshold must be finite and >= 0, got %g" threshold);
  List.map
    (fun (name, o, n) ->
      let rel, regression =
        match (o, n) with
        | Some a, Some b when a.total > 0.0 ->
            let rel = (b.total -. a.total) /. a.total in
            (rel, rel > threshold)
        | Some _, Some b -> ((if b.total > 0.0 then infinity else 0.0), false)
        | None, Some _ -> (infinity, false)
        | _, None -> (-1.0, false)
      in
      { c_name = name; c_old = o; c_new = n; rel; regression })
    (diff_changes ~old_rows ~new_rows)

let row_to_json r =
  J.Obj
    [
      ("name", J.Str r.name);
      ("count", J.Num (float_of_int r.count));
      ("errors", J.Num (float_of_int r.errors));
      ("total_seconds", J.Num r.total);
      ("self_seconds", J.Num r.self);
      ("p50_seconds", J.Num r.p50);
      ("p95_seconds", J.Num r.p95);
      ("p99_seconds", J.Num r.p99);
      ("max_seconds", J.Num r.max);
    ]

let to_json rows = J.Arr (List.map row_to_json rows)

let pp fmt rows =
  Format.fprintf fmt "%-36s %7s %6s %12s %12s %10s %10s %10s@." "span" "count"
    "errors" "total(s)" "self(s)" "p50(s)" "p95(s)" "p99(s)";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-36s %7d %6d %12.6f %12.6f %10.6f %10.6f %10.6f@."
        r.name r.count r.errors r.total r.self r.p50 r.p95 r.p99)
    rows

let pp_changes fmt changes =
  List.iter
    (fun c ->
      let count = function None -> 0 | Some r -> r.count in
      let total = function None -> 0.0 | Some r -> r.total in
      Format.fprintf fmt "%s %-36s count %d -> %d, total %.6fs -> %.6fs (%+.1f%%)@."
        (if c.regression then "REGRESSION" else "change    ")
        c.c_name (count c.c_old) (count c.c_new) (total c.c_old)
        (total c.c_new)
        (100.0 *. c.rel))
    changes
