module Brute_force = Stochastic_core.Brute_force
module Cost_model = Stochastic_core.Cost_model
module Expected_cost = Stochastic_core.Expected_cost
module Dist = Distributions.Dist

type entry = { t1 : float; cost : float option }
type row = { dist_name : string; best : entry; quantiles : entry array }
type t = row list

let quantile_probes = [| 0.25; 0.5; 0.75; 0.99 |]

let run ?(cfg = Config.paper) () =
  let cost = Cost_model.reservation_only in
  List.map
    (fun (dist_name, d) ->
      let rng = Config.rng_for cfg (Printf.sprintf "table3/%s" dist_name) in
      let evaluator = Brute_force.Monte_carlo { rng; n = cfg.Config.n_mc } in
      let r = Brute_force.search ~m:cfg.Config.m ~evaluator cost d in
      let best =
        { t1 = r.Brute_force.t1; cost = Some r.Brute_force.normalized }
      in
      let quantiles =
        Array.map
          (fun q ->
            let t1 = d.Dist.quantile q in
            let c =
              Brute_force.cost_of_t1 ~evaluator cost d t1
              |> Option.map (fun c -> Expected_cost.normalized cost d ~cost:c)
            in
            { t1; cost = c })
          quantile_probes
      in
      { dist_name; best; quantiles })
    Distributions.Table1.all

let entry_str e =
  match e.cost with
  | Some c -> Printf.sprintf "%.2f (%.2f)" e.t1 c
  | None -> Printf.sprintf "%.2f (-)" e.t1

let to_string t =
  let header =
    "Distribution" :: "t1_bf (cost)"
    :: (Array.to_list quantile_probes
       |> List.map (fun q -> Printf.sprintf "Q(%.2g) (cost)" q))
  in
  let rows =
    List.map
      (fun r ->
        (r.dist_name :: entry_str r.best :: [])
        @ (Array.to_list r.quantiles |> List.map entry_str))
      t
  in
  Text_table.render ~header rows

let sanity t =
  let checks = ref [] in
  let add label ok = checks := (label, ok) :: !checks in
  List.iter
    (fun r ->
      (* A brute-force row without a cost is itself a sanity failure —
         record it as one instead of raising out of the audit. *)
      let beats_valid_quantiles =
        match r.best.cost with
        | None -> false
        | Some bf_cost ->
            Array.for_all
              (fun e ->
                match e.cost with None -> true | Some c -> bf_cost <= c *. 1.10)
              r.quantiles
      in
      add
        (Printf.sprintf "%s: t1_bf at least matches every valid quantile guess"
           r.dist_name)
        beats_valid_quantiles)
    t;
  let some_invalid =
    List.exists
      (fun r -> Array.exists (fun e -> e.cost = None) r.quantiles)
      t
  in
  add "some quantile candidates produce invalid sequences" some_invalid;
  List.rev !checks
