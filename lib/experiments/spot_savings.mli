(** Spot-savings sweep: MTBF x price-ratio grid comparing checkpointed
    spot, pure on-demand, and naive (checkpoint-free) spot.

    The base reservation sequence is solved once with the robust
    cascade; each grid cell then prices three arms under the
    revocation-aware evaluator:
    - {b on-demand} — the best plan using no spot reservations (the
      cell's degradation floor: the tier-assignment search contains
      every such plan, so the checkpointed arm can never exceed it);
    - {b naive spot} — every head reservation on the spot tier with
      restart-from-scratch recovery (what a discount chaser without
      checkpoints gets);
    - {b checkpointed spot} — the plan chosen by
      {!Stochastic_core.Spot_plan.assign} under periodic-snapshot
      recovery.

    A subset of cells is re-validated by the seeded trace-driven
    simulator ({!Scheduler.Spot_sim}); the analytic cost must agree
    within 2%. The plain Eq. (1) all-on-demand cost (no checkpoints,
    the base solver's exact cost) is reported alongside as
    [od_plain]. *)

type cell = {
  mtbf : float;  (** Mean time between revocations (hours). *)
  price_ratio : float;  (** Spot price as a fraction of on-demand. *)
  on_demand : float;  (** All-on-demand arm (checkpoint discipline). *)
  naive_spot : float;  (** All-spot, restart recovery. *)
  checkpointed : float;  (** Tier-assigned, snapshot recovery. *)
  spot_slots : int;  (** Spot reservations in the chosen plan. *)
  slots : int;  (** Total reservations in the chosen plan. *)
  savings : float;  (** [1 - checkpointed / on_demand]. *)
}

type mc_check = {
  check_mtbf : float;
  check_ratio : float;
  analytic : float;
  simulated : float;
  sim_stderr : float;
  rel_err : float;  (** [|analytic - simulated| / analytic]. *)
}

type t = {
  dist_name : string;
  model : Stochastic_core.Cost_model.t;
  od_plain : float;  (** Base Eq. (1) cost: all-on-demand, no checkpoints. *)
  checkpoint_period : float;
  checkpoint_cost : float;
  restore_cost : float;
  head : float array;  (** The solved base head the plans annotate. *)
  cells : cell list;
  mc_checks : mc_check list;
}

val run :
  ?cfg:Config.t ->
  ?log:Stochobs.Log.t ->
  ?mtbfs:float list ->
  ?ratios:float list ->
  ?mc_reps:int ->
  ?assign_disc_n:int ->
  unit ->
  t
(** Defaults: [mtbfs = [5; 20; 100]] hours, [ratios = [0.2; 0.3; 0.5;
    0.8]], [mc_reps = 20_000] trace replications per validated cell,
    [assign_disc_n = 400] discretization points for the assignment
    evaluator. The LogNormal(3, 0.5) law (mean about 22.8 h) under the
    neuro-HPC cost model; checkpoints every hour costing 0.05 h with a
    0.05 h restore. Three cells (cheapest ratio at every MTBF) are
    Monte-Carlo validated. [log] receives one line per cell. *)

val to_string : t -> string

val find_cell : t -> mtbf:float -> ratio:float -> cell option
(** The grid cell at [(mtbf, ratio)], if the sweep covered it. *)

val sanity : t -> (string * bool) list
(** Headline checks: the checkpointed arm never exceeds the on-demand
    arm in any cell (by construction of the assignment search); at
    price ratio 0.3 / MTBF 20 h it also beats the plain Eq. (1)
    baseline strictly; hostile cells assign no more spot than generous
    ones; every Monte-Carlo validation is within 2%. *)
