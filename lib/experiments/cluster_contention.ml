module Cost_model = Stochastic_core.Cost_model
module Strategy = Stochastic_core.Strategy
module Dist = Distributions.Dist

type row = {
  strategy : string;
  policy : string;
  utilization : float;
  makespan : float;
  mean_wait : float;
  mean_stretch : float;
  mean_attempts : float;
  fit : Numerics.Regression.fit;
}

type t = {
  nodes : int;
  jobs : int;
  load : float;
  assumed : Cost_model.t;
  dist_name : string;
  rows : row list;
  measured : Cost_model.t option;
      (* From the EASY x first-strategy run, when the fit is usable. *)
  self_consistent : (string * float) list;
      (* Normalized expected cost of each strategy under [measured]. *)
}

let strategies cfg =
  [
    ( "brute-force",
      Strategy.brute_force ~m:cfg.Config.m ~n:cfg.Config.n_mc
        ~seed:cfg.Config.seed () );
    ("mean-by-mean", Strategy.mean_by_mean);
    ( "equal-time",
      Strategy.dp_discretized ~scheme:Stochastic_core.Discretize.Equal_time
        ~n:cfg.Config.disc_n () );
  ]

let run ?(cfg = Config.paper) ?(jobs = 1500) ?(nodes = 32) ?(load = 1.15) () =
  let assumed = Cost_model.neuro_hpc in
  let d = Distributions.Lognormal.default in
  let base_rng = Config.rng_for cfg "cluster-contention" in
  let named = strategies cfg in
  let sequences =
    List.map (fun (name, s) -> (name, s.Strategy.build assumed d)) named
  in
  (* One arrival rate for every combination (common random numbers),
     calibrated on the first strategy's expected consumed node-hours. *)
  let lead_sequence =
    match sequences with
    | [] -> failwith "Cluster_contention.run: no strategies configured"
    | (_, sequence) :: _ -> sequence
  in
  (* Wide size-class spectrum (0.1x-10x): the requested-walltime spread
     is what lets the wait-vs-requested fit see the backfilling
     discrimination; at this load the queue never drains, so packing
     quality (EASY vs FCFS) shows up directly in utilization. *)
  let scale_min = 0.1 and scale_max = 10.0 in
  let arrival_rate =
    Scheduler.Workload.rate_for_load ~scale_min ~scale_max
      ~sequence:lead_sequence
      ~load ~cluster_nodes:nodes d
  in
  let spec =
    Scheduler.Workload.make_spec ~scale_min ~scale_max ~jobs ~arrival_rate ()
  in
  let simulate policy (name, sequence) =
    (* Common random numbers: every (policy, strategy) combination
       replays the same arrivals, durations and node counts. *)
    let rng = Randomness.Rng.copy base_rng in
    let workload = Scheduler.Workload.generate spec d ~sequence rng in
    let result =
      Scheduler.Engine.run
        (Scheduler.Engine.make_config ~nodes ~policy ())
        workload
    in
    let summary = Scheduler.Metrics.summarize ~model:assumed result in
    let fit = Scheduler.Metrics.measured_fit (Scheduler.Metrics.wait_records result) in
    ( {
        strategy = name;
        policy = Scheduler.Policy.name policy;
        utilization = summary.Scheduler.Metrics.utilization;
        makespan = summary.Scheduler.Metrics.makespan;
        mean_wait = summary.Scheduler.Metrics.mean_wait;
        mean_stretch = summary.Scheduler.Metrics.mean_stretch;
        mean_attempts = summary.Scheduler.Metrics.mean_attempts;
        fit;
      },
      result )
  in
  let rows_and_results =
    List.concat_map
      (fun policy -> List.map (simulate policy) sequences)
      Scheduler.Policy.all
  in
  let rows = List.map fst rows_and_results in
  (* Close the loop on the EASY run of the first (reference) strategy:
     measure (alpha, gamma) from its simulated contention and re-score
     every strategy under the measured cost model. *)
  let measured =
    List.find_map
      (fun ((row : row), result) ->
        if row.policy = "easy" then
          match Scheduler.Metrics.measured_cost_model result with
          | _, m -> Some m
          | exception Invalid_argument _ -> None
        else None)
      rows_and_results
  in
  let self_consistent =
    match measured with
    | None -> []
    | Some m ->
        let rng = Config.rng_for cfg "cluster-self-consistent" in
        let samples = Dist.samples d rng cfg.Config.n_mc in
        Array.sort compare samples;
        List.map
          (fun (name, s) ->
            (name, Strategy.evaluate_on m d ~sorted_samples:samples s))
          named
  in
  {
    nodes;
    jobs;
    load;
    assumed;
    dist_name = d.Dist.name;
    rows;
    measured;
    self_consistent;
  }

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "cluster: %d nodes, %d jobs, offered load %.2f, %s, assumed (alpha, \
        gamma) = (%.2f, %.2f)\n"
       t.nodes t.jobs t.load t.dist_name t.assumed.Cost_model.alpha
       t.assumed.Cost_model.gamma);
  Buffer.add_string buf
    "policy  strategy        util%%  makespan    wait  stretch  subs  \
     meas.alpha  meas.gamma\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf
           "%-6s  %-13s  %5.1f  %8.1f  %6.2f  %7.2f  %4.2f  %10.3f  %10.3f\n"
           r.policy r.strategy
           (100.0 *. r.utilization)
           r.makespan r.mean_wait r.mean_stretch r.mean_attempts
           r.fit.Numerics.Regression.slope r.fit.Numerics.Regression.intercept))
    t.rows;
  (match t.measured with
  | None ->
      Buffer.add_string buf
        "measured cost model: unusable fit (no affine contention signal)\n"
  | Some m ->
      Buffer.add_string buf
        (Printf.sprintf
           "measured cost model (EASY contention): alpha=%.3f beta=%.2f \
            gamma=%.3f\n"
           m.Cost_model.alpha m.Cost_model.beta m.Cost_model.gamma);
      List.iter
        (fun (name, cost) ->
          Buffer.add_string buf
            (Printf.sprintf
               "  %-13s normalized E(cost) under measured model: %.4f\n" name
               cost))
        t.self_consistent);
  Buffer.contents buf

let find_rows t ~policy = List.filter (fun r -> r.policy = policy) t.rows

let sanity t =
  let easy = find_rows t ~policy:"easy" in
  let fcfs = find_rows t ~policy:"fcfs" in
  let util_ok r = r.utilization > 0.0 && r.utilization <= 1.0 in
  let paired =
    List.map
      (fun e ->
        let f = List.find (fun r -> r.strategy = e.strategy) fcfs in
        (e, f))
      easy
  in
  [
    ("all utilizations in (0, 1]", List.for_all util_ok t.rows);
    ("all mean stretches >= 1", List.for_all (fun r -> r.mean_stretch >= 1.0) t.rows);
    ( "EASY backfilling beats FCFS utilization for every strategy",
      List.for_all (fun (e, f) -> e.utilization > f.utilization +. 0.01) paired
    );
    ( "EASY wait-time fits have positive slope",
      List.for_all (fun r -> r.fit.Numerics.Regression.slope > 0.0) easy );
    ( "EASY wait-time fits have positive intercept",
      List.for_all (fun r -> r.fit.Numerics.Regression.intercept > 0.0) easy );
    ("measured cost model recovered", t.measured <> None);
    ( "self-consistent scores computed for every strategy",
      List.length t.self_consistent = List.length easy );
  ]
