(** Ablation: robustness to model misspecification.

    The paper assumes the execution-time distribution is {e known};
    in practice it is fitted from a finite trace (Fig. 1 uses 5000
    runs). This experiment quantifies the cost of estimation error:
    fit a LogNormal to [k] samples of the true law, compute the
    BRUTE-FORCE sequence against the {e fitted} law, and evaluate it
    exactly against the {e true} law. The regret relative to the
    sequence computed with the true law measures how many trace
    samples are enough — the practical question for anyone deploying
    these strategies. *)

type point = {
  samples : int;  (** Trace size the model was fitted from. *)
  mean_normalized : float;
      (** Mean (over kept replicas) true normalized cost of the
          fitted-model sequence. *)
  worst_normalized : float;  (** Worst kept replica. *)
  regret : float;
      (** [mean_normalized - oracle_normalized], where the oracle
          knows the true distribution. *)
  skipped : int;
      (** Replicas whose fitted law the robust solver rejected with a
          typed error (skip-and-report, never a crash). *)
}

type t = {
  dist_name : string;
  oracle_normalized : float;  (** BRUTE-FORCE with the true law. *)
  points : point list;
  skip_reasons : string list;
      (** One line per skipped replica: which fit failed and the typed
          {!Robust.Solver.error} it produced. *)
}

val default_sample_sizes : int array
(** [|10; 30; 100; 1000; 5000|]. *)

val run :
  ?cfg:Config.t ->
  ?sample_sizes:int array ->
  ?replicas:int ->
  unit ->
  t
(** [run ()] uses the NEUROHPC LogNormal as the true law with
    [replicas] (default [20]) independent fits per sample size. Each
    fitted law is solved through {!Robust.Solver.solve} with
    [~exact:true]: replicas whose fit the solver rejects are skipped
    and reported in {!t.skip_reasons} instead of crashing the sweep. *)

val to_string : t -> string

val sanity : t -> (string * bool) list
(** Checks that regret decreases with trace size and is negligible at
    the paper's 5000 runs. *)
