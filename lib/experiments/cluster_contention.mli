(** Beyond-the-paper experiment: reservation strategies under cluster
    contention, with the wait-time loop closed.

    The NEUROHPC scenario assumes [wait ~ alpha * requested + gamma]
    fitted offline. Here the affine model is {e measured}: a
    node-constrained cluster (FCFS or EASY backfilling) runs many
    concurrent stochastic jobs whose requests follow the paper's
    reservation sequences, the per-attempt [(requested, wait)] records
    are pushed through the {!Platform.Hpc_queue} binning/OLS pipeline,
    and every strategy is re-scored under the resulting self-consistent
    cost model. *)

type row = {
  strategy : string;
  policy : string;
  utilization : float;
  makespan : float;
  mean_wait : float;
  mean_stretch : float;
  mean_attempts : float;
  fit : Numerics.Regression.fit;  (** Measured wait-vs-requested fit. *)
}

type t = {
  nodes : int;
  jobs : int;
  load : float;  (** Offered load (work rate over capacity). *)
  assumed : Stochastic_core.Cost_model.t;  (** Model used to build sequences. *)
  dist_name : string;
  rows : row list;  (** One per (policy, strategy) combination. *)
  measured : Stochastic_core.Cost_model.t option;
      (** Cost model measured from EASY contention, when usable. *)
  self_consistent : (string * float) list;
      (** Strategy name, normalized expected cost under [measured]. *)
}

val run : ?cfg:Config.t -> ?jobs:int -> ?nodes:int -> ?load:float -> unit -> t
(** Defaults: 1500 jobs on 32 nodes at offered load 1.15 (sustained
    contention) with the LogNormal default distribution and size
    classes spanning 0.1x-10x; [cfg] governs the brute-force and DP
    strategy resolutions and the seed. *)

val to_string : t -> string

val sanity : t -> (string * bool) list
(** Qualitative checks: utilizations in (0, 1], stretches >= 1, EASY
    measurably above FCFS utilization, positive measured (alpha,
    gamma) under EASY, and a recovered self-consistent model. *)
