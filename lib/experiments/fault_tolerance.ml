module Cost_model = Stochastic_core.Cost_model
module Strategy = Stochastic_core.Strategy
module Checkpoint = Stochastic_core.Checkpoint
module Dist = Distributions.Dist

type cell = {
  rate : float;
  checkpointed : bool;
  strategy : string;
  summary : Scheduler.Metrics.summary;
}

type t = {
  nodes : int;
  jobs : int;
  rates : float list;
  assumed : Cost_model.t;
  dist_name : string;
  cells : cell list;
  deterministic : bool;
}

(* Failures per node-hour. The harshest rate (MTBF 20 h) is of the
   order of the largest job lengths, so restart-from-scratch execution
   bleeds badly but still terminates under unlimited retries. *)
let rates = [ 0.0; 0.02; 0.05 ]

let strategies cfg =
  [
    ("mean-by-mean", Strategy.mean_by_mean);
    ( "equal-time",
      Strategy.dp_discretized ~scheme:Stochastic_core.Discretize.Equal_time
        ~n:cfg.Config.disc_n () );
  ]

(* Snapshot every hour of work at a 3-minute overhead (scaled by each
   job's size class in {!Scheduler.Workload.generate}). *)
let checkpoint_spec =
  Scheduler.Job.make_checkpoint
    ~params:(Checkpoint.make_params ~checkpoint_cost:0.05 ~restart_cost:0.05)
    ~period:1.0

let run ?(cfg = Config.paper) ?(log = Stochobs.Log.null) ?(jobs = 240)
    ?(nodes = 16) () =
  let assumed = Cost_model.neuro_hpc in
  let d = Distributions.Lognormal.default in
  let base_rng = Config.rng_for cfg "fault-tolerance" in
  let named = strategies cfg in
  let sequences =
    List.map (fun (name, s) -> (name, s.Strategy.build assumed d)) named
  in
  (* The workload calibration and the determinism re-run both key off
     the first strategy; destructure it once instead of three partial
     [List.hd]s. *)
  let lead =
    match sequences with
    | [] -> failwith "Fault_tolerance.run: no strategies configured"
    | s :: _ -> s
  in
  (* Small size classes (0.1x-0.5x): every job is completable in one
     reservation with reasonable probability even at the highest
     failure rate, so the uncheckpointed arm terminates. *)
  let scale_min = 0.1 and scale_max = 0.5 in
  let nodes_min = 1 and nodes_max = 4 in
  let arrival_rate =
    Scheduler.Workload.rate_for_load ~nodes_min ~nodes_max ~scale_min
      ~scale_max
      ~sequence:(snd lead)
      ~load:1.1 ~cluster_nodes:nodes d
  in
  let spec =
    Scheduler.Workload.make_spec ~nodes_min ~nodes_max ~scale_min ~scale_max
      ~jobs ~arrival_rate ()
  in
  let simulate ~rate ~checkpointed (name, sequence) =
    (* Common random numbers: every cell replays the same arrivals,
       durations and node counts; only the failure process and the
       checkpoint discipline vary. *)
    let rng = Randomness.Rng.copy base_rng in
    let checkpoint = if checkpointed then Some checkpoint_spec else None in
    let workload = Scheduler.Workload.generate ?checkpoint spec d ~sequence rng in
    let faults =
      if rate <= 0.0 then None
      else
        Some
          (Scheduler.Faults.make ~seed:(cfg.Config.seed + 101)
             ~mean_repair:0.25
             (Scheduler.Faults.exponential ~mtbf:(1.0 /. rate)))
    in
    let result =
      Scheduler.Engine.run
        (Scheduler.Engine.make_config ?faults ~nodes
           ~policy:Scheduler.Policy.Easy_backfill ())
        workload
    in
    let summary = Scheduler.Metrics.summarize ~model:assumed result in
    Stochobs.Log.infof log
      "fault-tolerance: rate %.2f/h, %s, %s: %d/%d done, goodput %.1f%%" rate
      (if checkpointed then "ckpt" else "restart")
      name summary.Scheduler.Metrics.completed jobs
      (100.0 *. Scheduler.Metrics.goodput_fraction summary);
    { rate; checkpointed; strategy = name; summary }
  in
  let cells =
    List.concat_map
      (fun rate ->
        List.concat_map
          (fun checkpointed ->
            List.map (simulate ~rate ~checkpointed) sequences)
          [ false; true ])
      rates
  in
  (* Re-run the harshest cell: seeded faults must reproduce the full
     summary (per-job metrics included) bit-for-bit. *)
  let deterministic =
    let harshest = List.fold_left max 0.0 rates in
    let again = simulate ~rate:harshest ~checkpointed:true lead in
    let first =
      List.find
        (fun c ->
          c.rate = harshest && c.checkpointed
          && c.strategy = fst lead)
        cells
    in
    compare first.summary again.summary = 0
  in
  { nodes; jobs; rates; assumed; dist_name = d.Dist.name; cells; deterministic }

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "fault sweep: %d nodes, %d jobs, %s, exponential failures, repair 0.25 \
        h, checkpoint period 1.0 h\n"
       t.nodes t.jobs t.dist_name);
  Buffer.add_string buf
    "rate/h   MTBF   arm      strategy       done  aband  fails  kills  \
     subs   cost  goodput%\n";
  List.iter
    (fun c ->
      let s = c.summary in
      Buffer.add_string buf
        (Printf.sprintf
           "%5.2f  %5s  %-7s  %-13s  %4d  %5d  %5d  %5d  %4.2f  %5.2f  %7.1f\n"
           c.rate
           (* stochlint: allow FLOAT_EQ — rate 0.0 comes literally from the rate grid (MTBF display) *)
           (if c.rate = 0.0 then "inf"
            else Printf.sprintf "%.0fh" (1.0 /. c.rate))
           (if c.checkpointed then "ckpt" else "restart")
           c.strategy s.Scheduler.Metrics.completed
           s.Scheduler.Metrics.abandoned s.Scheduler.Metrics.node_failures
           s.Scheduler.Metrics.failure_kills s.Scheduler.Metrics.mean_attempts
           s.Scheduler.Metrics.mean_cost
           (100.0 *. Scheduler.Metrics.goodput_fraction s)))
    t.cells;
  Buffer.add_string buf
    (Printf.sprintf "deterministic replay of the harshest cell: %b\n"
       t.deterministic);
  Buffer.contents buf

let find t ~rate ~checkpointed ~strategy =
  List.find
    (fun c ->
      c.rate = rate && c.checkpointed = checkpointed && c.strategy = strategy)
    t.cells

let sanity t =
  let high = List.fold_left max 0.0 t.rates in
  let strategy_names = List.map (fun c -> c.strategy) t.cells |> List.sort_uniq compare in
  let all_done =
    List.for_all
      (fun c ->
        c.summary.Scheduler.Metrics.completed = t.jobs
        && c.summary.Scheduler.Metrics.abandoned = 0)
      t.cells
  in
  let reliable_clean =
    List.for_all
      (fun c ->
        c.rate > 0.0
        || c.summary.Scheduler.Metrics.node_failures = 0
           && c.summary.Scheduler.Metrics.failure_kills = 0)
      t.cells
  in
  let failures_seen =
    List.for_all
      (* stochlint: allow FLOAT_EQ — rate 0.0 comes literally from the rate grid (zero-failure arm) *)
      (fun c -> c.rate = 0.0 || c.summary.Scheduler.Metrics.node_failures > 0)
      t.cells
  in
  let dominance =
    (* The headline claim: once failures are frequent, checkpointing
       strictly dominates restart-from-scratch in expected cost. *)
    List.for_all
      (fun s ->
        let ckpt = find t ~rate:high ~checkpointed:true ~strategy:s in
        let restart = find t ~rate:high ~checkpointed:false ~strategy:s in
        ckpt.summary.Scheduler.Metrics.mean_cost
        < restart.summary.Scheduler.Metrics.mean_cost)
      strategy_names
  in
  let goodput_ordered =
    (* Checkpoints salvage work: at the harsh rate the checkpointed arm
       wastes less node-time per unit of goodput. *)
    List.for_all
      (fun s ->
        let ckpt = find t ~rate:high ~checkpointed:true ~strategy:s in
        let restart = find t ~rate:high ~checkpointed:false ~strategy:s in
        Scheduler.Metrics.goodput_fraction ckpt.summary
        > Scheduler.Metrics.goodput_fraction restart.summary)
      strategy_names
  in
  [
    ("every cell completes all jobs (no abandonment)", all_done);
    ("zero-rate cells see no failures", reliable_clean);
    ("every faulty cell records node failures", failures_seen);
    ( "checkpointing strictly cheaper than restart at the highest rate",
      dominance );
    ("checkpointing improves goodput at the highest rate", goodput_ordered);
    ("harshest cell replays bit-for-bit", t.deterministic);
  ]
