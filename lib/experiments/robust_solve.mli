(** Benchmark artefact for the robust solver cascade.

    Runs {!Robust.Solver.solve} over every Table 1 distribution and
    records, per row: which cascade tier answered, how many tiers were
    rejected first, the normalized cost, and the wall-clock split
    between input validation ({!Robust.Dist_check.run}) and the solve
    itself. The paper's distributions are all well-behaved, so the
    cascade must answer every row from the primary brute-force tier —
    any degradation here is a regression — and the validation pass is
    budgeted at under 5% of the solve time. *)

type row = {
  dist_name : string;
  tier : string;  (** {!Robust.Solver.tier_name} of the chosen tier. *)
  rejections : int;  (** Tiers rejected before the answer. *)
  normalized : float;  (** Normalized expected cost of the answer. *)
  check_seconds : float;  (** {!Robust.Dist_check.run} alone. *)
  solve_seconds : float;  (** Full validated solve. *)
  baseline_seconds : float;  (** Same solve with [~validate:false]. *)
}

type t = {
  rows : row list;
  tier_counts : (string * int) list;
      (** Chosen-tier histogram over all rows. *)
  overhead : float;
      (** [sum check_seconds / sum baseline_seconds] — the relative
          cost of validating every input before solving. *)
}

val run : ?cfg:Config.t -> ?log:Stochobs.Log.t -> unit -> t
(** [run ()] solves all nine Table 1 rows under RESERVATIONONLY with
    the configured grids (paper parameters by default). [log] (default
    {!Stochobs.Log.null}) receives one progress line per distribution
    as it completes — the CLI's [--verbose] wires it to stderr. *)

val to_string : t -> string

val sanity : t -> (string * bool) list
(** Labelled checks: every row solved, every row answered by the
    primary tier, validation overhead within bound. (The bound is
    lenient in CI — 50% — because quick-config solves are so fast that
    the fixed validation cost dominates; the <5% target applies at
    paper-scale grids, which the bench harness measures.) *)
