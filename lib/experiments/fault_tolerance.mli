(** Fault-tolerance sweep: failure rate x {no-checkpoint, checkpoint}
    x reservation strategy on the cluster simulator.

    Every cell replays the same workload (common random numbers) under
    seeded per-node Exponential failures; the checkpointed arm resumes
    failure-killed attempts from the last completed snapshot, the
    uncheckpointed arm restarts from scratch. The sweep quantifies the
    goodput collapse of restart-from-scratch execution and checks that
    checkpointing strictly dominates it in expected cost once failures
    are frequent relative to job lengths. *)

type cell = {
  rate : float;  (** Failures per node-hour ([0.] = reliable nodes). *)
  checkpointed : bool;
  strategy : string;
  summary : Scheduler.Metrics.summary;
}

type t = {
  nodes : int;
  jobs : int;
  rates : float list;
  assumed : Stochastic_core.Cost_model.t;
  dist_name : string;
  cells : cell list;
  deterministic : bool;
      (** Re-running the harshest cell reproduced its summary
          bit-for-bit. *)
}

val run :
  ?cfg:Config.t -> ?log:Stochobs.Log.t -> ?jobs:int -> ?nodes:int -> unit -> t
(** Defaults: [jobs] 240 (paper) / 120 (quick mode heuristic left to
    callers), [nodes = 16]. Jobs use size classes 0.1x-0.5x so even
    uncheckpointed attempts stay completable at the highest failure
    rate (the sweep must terminate under unlimited retries). [log]
    (default {!Stochobs.Log.null}) receives one progress line per
    sweep cell as it completes. *)

val to_string : t -> string

val sanity : t -> (string * bool) list
(** Includes the headline check: at the highest failure rate the
    checkpointed arm has strictly lower mean cost than the
    uncheckpointed arm for every strategy. *)
