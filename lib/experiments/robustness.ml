module B = Stochastic_core.Brute_force
module C = Stochastic_core.Cost_model
module E = Stochastic_core.Expected_cost
module Dist = Distributions.Dist

type point = {
  samples : int;
  mean_normalized : float;
  worst_normalized : float;
  regret : float;
  skipped : int;
}

type t = {
  dist_name : string;
  oracle_normalized : float;
  points : point list;
  skip_reasons : string list;
}

let default_sample_sizes = [| 10; 30; 100; 1000; 5000 |]

let run ?(cfg = Config.paper) ?(sample_sizes = default_sample_sizes)
    ?(replicas = 20) () =
  let truth = Distributions.Lognormal.neuro in
  let cost = C.reservation_only in
  (* Use a moderate grid: each replica runs its own search. *)
  let m = min cfg.Config.m 1000 in
  let oracle = B.search ~m ~evaluator:B.Exact cost truth in
  let oracle_normalized = oracle.B.normalized in
  let budget =
    {
      Robust.Solver.default_budget with
      Robust.Solver.bf_candidates = m;
      mc_samples = cfg.Config.n_mc;
      dp_points = cfg.Config.disc_n;
    }
  in
  let skip_reasons = ref [] in
  let points =
    Array.to_list sample_sizes
    |> List.map (fun k ->
           let values =
             List.init replicas (fun r ->
                 let rng =
                   Config.rng_for cfg (Printf.sprintf "robustness/%d/%d" k r)
                 in
                 let trace = Dist.samples truth rng k in
                 match Distributions.Fitting.lognormal_mle trace with
                 | exception Invalid_argument _ ->
                     (* Degenerate tiny trace: fall back to the naive
                        single-reservation-at-max strategy. *)
                     let mx = Array.fold_left Float.max 0.0 trace in
                     let seq =
                       Stochastic_core.Sequence.sanitize
                         ~support:truth.Dist.support
                         (List.to_seq [ 2.0 *. mx ])
                     in
                     Some
                       (E.normalized cost truth
                          ~cost:(E.exact cost truth seq))
                 | fit -> (
                     let fitted = Distributions.Fitting.to_dist fit in
                     (* The fitted law goes through the validated,
                        budgeted cascade: a pathological fit becomes a
                        typed skip, not a crash or a poisoned mean. *)
                     match Robust.Solver.solve ~budget ~exact:true cost fitted with
                     | Ok sol ->
                         (* Replay the fitted-model sequence against
                            the true distribution. *)
                         Some
                           (E.normalized cost truth
                              ~cost:
                                (E.exact cost truth
                                   sol.Robust.Solver.sequence))
                     | Error e ->
                         skip_reasons :=
                           Printf.sprintf "k=%d replica %d (%s): %s" k r
                             fitted.Dist.name
                             (Robust.Solver.error_to_string e)
                           :: !skip_reasons;
                         None))
           in
           let kept = List.filter_map Fun.id values in
           let skipped = replicas - List.length kept in
           let mean_normalized =
             if kept = [] then nan else Numerics.Stats.mean (Array.of_list kept)
           in
           let worst_normalized = List.fold_left Float.max neg_infinity kept in
           {
             samples = k;
             mean_normalized;
             worst_normalized;
             regret = mean_normalized -. oracle_normalized;
             skipped;
           })
  in
  {
    dist_name = truth.Dist.name;
    oracle_normalized;
    points;
    skip_reasons = List.rev !skip_reasons;
  }

let to_string t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "true law: %s; oracle normalized cost %.4f\n" t.dist_name
       t.oracle_normalized);
  Buffer.add_string buf
    "trace size   mean normalized   worst replica   regret vs oracle   skipped\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%10d %17.4f %15.4f %18.4f %9d\n" p.samples
           p.mean_normalized p.worst_normalized p.regret p.skipped))
    t.points;
  if t.skip_reasons <> [] then begin
    Buffer.add_string buf "skipped replicas (typed solver errors):\n";
    List.iter
      (fun r -> Buffer.add_string buf (Printf.sprintf "  %s\n" r))
      t.skip_reasons
  end;
  Buffer.contents buf

let sanity t =
  match (t.points, List.rev t.points) with
  | first :: _, last :: _ ->
      [
        ( "regret shrinks from the smallest to the largest trace",
          last.regret <= first.regret +. 1e-9 );
        ( "5000-run traces (the paper's size) give near-oracle strategies",
          last.regret < 0.02 );
        ("oracle is never beaten on average", first.regret > -0.02);
        ( "well-sized traces never need a skip",
          last.skipped = 0 );
      ]
  | _ -> []
