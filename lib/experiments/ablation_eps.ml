module C = Stochastic_core.Cost_model
module D = Stochastic_core.Discretize
module Dp = Stochastic_core.Dp
module E = Stochastic_core.Expected_cost

type t = { epss : float array; rows : (string * float array * float array) list }

let default_epss = [| 1e-2; 1e-3; 1e-5; 1e-7; 1e-9 |]

let run ?(cfg = Config.paper) ?(epss = default_epss) ?n () =
  let n = match n with Some n -> n | None -> cfg.Config.disc_n in
  let cost = C.reservation_only in
  let eval scheme eps d =
    let disc = D.run ~eps scheme ~n d in
    let seq = Dp.sequence_for cost d disc in
    E.normalized cost d ~cost:(E.exact cost d seq)
  in
  let rows =
    List.map
      (fun (name, d) ->
        ( name,
          Array.map (fun eps -> eval D.Equal_time eps d) epss,
          Array.map (fun eps -> eval D.Equal_probability eps d) epss ))
      Distributions.Table1.infinite_support
  in
  { epss; rows }

let to_string t =
  let header =
    "Distribution"
    :: (Array.to_list t.epss |> List.map (fun e -> Printf.sprintf "eps=%g" e))
  in
  let block title get =
    let rows =
      List.map
        (fun ((name, _, _) as row) ->
          name :: (Array.to_list (get row) |> List.map Text_table.fmt_ratio))
        t.rows
    in
    Printf.sprintf "%s\n%s" title (Text_table.render ~header rows)
  in
  block "Equal-time" (fun (_, et, _) -> et)
  ^ "\n"
  ^ block "Equal-probability" (fun (_, _, ep) -> ep)

let sanity t =
  (* Find the index of the paper's eps in the sweep, if present. *)
  let idx = ref (-1) in
  (* stochlint: allow FLOAT_EQ — locating the paper's literal eps = 1e-7 in the sweep grid *)
  Array.iteri (fun i e -> if e = 1e-7 then idx := i) t.epss;
  if !idx < 0 then []
  else
    List.concat_map
      (fun (name, et, ep) ->
        (* On the heavy-tailed laws an aggressive eps stretches the
           lattice over the far tail and visibly costs resolution at
           moderate n — that is the ablation's finding, so the check
           is correspondingly looser there. *)
        let heavy = name = "Weibull" || name = "Pareto" in
        let slack = if heavy then 1.35 else 1.10 in
        let best arr = Array.fold_left Float.min infinity arr in
        [
          ( Printf.sprintf "%s: eps=1e-7 acceptable for Equal-time" name,
            et.(!idx) <= best et *. slack );
          ( Printf.sprintf "%s: eps=1e-7 acceptable for Equal-probability"
              name,
            ep.(!idx) <= best ep *. slack );
        ])
      t.rows
