module Spot_cost = Stochastic_core.Spot_cost

type cell = {
  mtbf : float;
  price_ratio : float;
  on_demand : float;
  naive_spot : float;
  checkpointed : float;
  spot_slots : int;
  slots : int;
  savings : float;
}

type mc_check = {
  check_mtbf : float;
  check_ratio : float;
  analytic : float;
  simulated : float;
  sim_stderr : float;
  rel_err : float;
}

type t = {
  dist_name : string;
  model : Stochastic_core.Cost_model.t;
  od_plain : float;
  checkpoint_period : float;
  checkpoint_cost : float;
  restore_cost : float;
  head : float array;
  cells : cell list;
  mc_checks : mc_check list;
}

let checkpoint_period = 1.0
let checkpoint_cost = 0.05
let restore_cost = 0.05

let snapshot =
  Spot_cost.Snapshot
    { period = checkpoint_period; snapshot_cost = checkpoint_cost; restore_cost }

let run ?(cfg = Config.paper) ?(log = Stochobs.Log.null)
    ?(mtbfs = [ 5.0; 20.0; 100.0 ]) ?(ratios = [ 0.2; 0.3; 0.5; 0.8 ])
    ?(mc_reps = 20_000) ?(assign_disc_n = 400) () =
  let d = Distributions.Lognormal.default in
  let model = Stochastic_core.Cost_model.neuro_hpc in
  let budget =
    {
      Robust.Solver.default_budget with
      Robust.Solver.bf_candidates = cfg.Config.m;
      mc_samples = cfg.Config.n_mc;
      dp_points = cfg.Config.disc_n;
    }
  in
  let base =
    match Robust.Solver.solve ~budget ~seed:cfg.Config.seed model d with
    | Ok sol -> sol
    | Error e ->
        (* The default LogNormal always solves; a failure here is a
           build break, not a data point. *)
        invalid_arg
          (Printf.sprintf "Spot_savings.run: base solve failed: %s"
             (Robust.Solver.error_to_string e))
  in
  let head = base.Robust.Solver.head in
  let slots = Array.length head in
  Stochobs.Log.infof log "spot_savings: base head %d slots, Eq.(1) cost %.3f"
    slots base.Robust.Solver.cost;
  (* The cheapest ratio at every MTBF gets a trace-driven validation:
     three regimes spanning the revocation spectrum. *)
  let min_ratio = List.fold_left Float.min infinity ratios in
  let cells, checks =
    List.fold_left
      (fun (cells, checks) mtbf ->
        let rate = 1.0 /. mtbf in
        List.fold_left
          (fun (cells, checks) price_ratio ->
            let regime =
              Spot_cost.make_regime ~recovery:snapshot ~price_ratio
                ~revocation_rate:rate ()
            in
            let a =
              Stochastic_core.Spot_plan.assign ~disc_n:assign_disc_n regime
                model d head
            in
            let module SP = Stochastic_core.Spot_plan in
            let naive_regime =
              Spot_cost.make_regime ~price_ratio ~revocation_rate:rate ()
            in
            let naive_spot =
              Spot_cost.expected_cost ~disc_n:assign_disc_n naive_regime model d
                (Spot_cost.uniform_plan Spot_cost.Spot head)
            in
            let plan_slots = Array.length a.SP.plan.Spot_cost.lengths in
            let cell =
              {
                mtbf;
                price_ratio;
                on_demand = a.SP.on_demand_cost;
                naive_spot;
                checkpointed = a.SP.cost;
                spot_slots = Spot_cost.spot_slots a.SP.plan;
                slots = plan_slots;
                savings =
                  (if a.SP.on_demand_cost > 0.0 then
                     1.0 -. (a.SP.cost /. a.SP.on_demand_cost)
                   else 0.0);
              }
            in
            Stochobs.Log.infof log
              "spot_savings: mtbf %.0fh ratio %.2f: ckpt-spot %.3f od %.3f \
               naive %.3f (%d/%d spot)"
              mtbf price_ratio cell.checkpointed cell.on_demand cell.naive_spot
              cell.spot_slots plan_slots;
            let checks =
              (* stochlint: allow FLOAT_EQ — min_ratio is a list element,
                 compared against itself, not a computed float *)
              if price_ratio = min_ratio then begin
                let sim =
                  Scheduler.Spot_sim.run ~reps:mc_reps ~seed:cfg.Config.seed
                    regime model d a.SP.plan
                in
                let simulated = sim.Scheduler.Spot_sim.mean_cost in
                let rel_err =
                  abs_float (a.SP.cost -. simulated)
                  /. Float.max 1e-9 a.SP.cost
                in
                Stochobs.Log.infof log
                  "spot_savings: mc check mtbf %.0fh ratio %.2f: analytic \
                   %.3f vs simulated %.3f (rel %.4f)"
                  mtbf price_ratio a.SP.cost simulated rel_err;
                {
                  check_mtbf = mtbf;
                  check_ratio = price_ratio;
                  analytic = a.SP.cost;
                  simulated;
                  sim_stderr = sim.Scheduler.Spot_sim.stderr;
                  rel_err;
                }
                :: checks
              end
              else checks
            in
            (cell :: cells, checks))
          (cells, checks) ratios)
      ([], []) mtbfs
  in
  {
    dist_name = "LogNormal(3, 0.5)";
    model;
    od_plain = base.Robust.Solver.cost;
    checkpoint_period;
    checkpoint_cost;
    restore_cost;
    head;
    cells = List.rev cells;
    mc_checks = List.rev checks;
  }

let to_string t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "Spot savings sweep (checkpointed spot vs on-demand)\n";
  Buffer.add_string b
    (Printf.sprintf
       "distribution %s, plain Eq.(1) on-demand cost %.3f, checkpoints every \
        %.2fh (write %.2fh, restore %.2fh), head %d slots\n"
       t.dist_name t.od_plain t.checkpoint_period t.checkpoint_cost
       t.restore_cost (Array.length t.head));
  Buffer.add_string b
    "  mtbf     ratio   on-demand   naive-spot   ckpt-spot   spot-slots  \
     savings\n";
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf
           "  %6.1fh  %5.2f  %10.3f  %11.3f  %10.3f  %6d/%-3d  %6.1f%%\n"
           c.mtbf c.price_ratio c.on_demand c.naive_spot c.checkpointed
           c.spot_slots c.slots (100.0 *. c.savings)))
    t.cells;
  Buffer.add_string b "Monte-Carlo validation (seeded revocation traces):\n";
  List.iter
    (fun k ->
      Buffer.add_string b
        (Printf.sprintf
           "  mtbf %6.1fh ratio %.2f: analytic %.3f vs simulated %.3f +/- \
            %.3f (rel err %.4f)\n"
           k.check_mtbf k.check_ratio k.analytic k.simulated k.sim_stderr
           k.rel_err))
    t.mc_checks;
  Buffer.contents b

let find_cell t ~mtbf ~ratio =
  List.find_opt
    (fun c ->
      abs_float (c.mtbf -. mtbf) < 1e-9 && abs_float (c.price_ratio -. ratio) < 1e-9)
    t.cells

let sanity t =
  let never_worse =
    List.for_all (fun c -> c.checkpointed <= c.on_demand +. 1e-9) t.cells
  in
  let gate =
    match find_cell t ~mtbf:20.0 ~ratio:0.3 with
    | Some c -> c.checkpointed < c.on_demand && c.checkpointed < t.od_plain
    | None -> true (* cell not in this sweep's grid *)
  in
  let checkpoint_beats_naive =
    (* At MTBFs at or below the mean job size, restart-from-scratch
       spot must lose to the checkpointed assignment. *)
    List.for_all
      (fun c -> c.mtbf > 20.0 || c.checkpointed <= c.naive_spot +. 1e-9)
      t.cells
  in
  let monotone_hostility =
    (* At a fixed MTBF, a deeper discount never buys fewer spot slots'
       worth of savings: savings are nonincreasing in the price ratio. *)
    List.for_all
      (fun m ->
        let row =
          List.filter (fun c -> abs_float (c.mtbf -. m) < 1e-9) t.cells
          |> List.map (fun c -> (c.price_ratio, c.savings))
          |> List.sort compare
        in
        let rec ok = function
          | (_, s1) :: ((_, s2) :: _ as rest) -> s1 +. 1e-9 >= s2 && ok rest
          | _ -> true
        in
        ok row)
      (List.sort_uniq compare (List.map (fun c -> c.mtbf) t.cells))
  in
  let mc_ok =
    t.mc_checks <> [] && List.for_all (fun k -> k.rel_err <= 0.02) t.mc_checks
  in
  [
    ("checkpointed-spot never exceeds the on-demand arm", never_worse);
    ("gate cell (ratio 0.3, MTBF 20h) beats both baselines", gate);
    ("checkpointing beats naive spot at harsh MTBFs", checkpoint_beats_naive);
    ("savings nonincreasing in price ratio at fixed MTBF", monotone_hostility);
    ("analytic within 2% of seeded simulation", mc_ok);
  ]
