module C = Stochastic_core.Cost_model

type row = {
  dist_name : string;
  tier : string;
  rejections : int;
  normalized : float;
  check_seconds : float;
  solve_seconds : float;
  baseline_seconds : float;
}

type t = {
  rows : row list;
  tier_counts : (string * int) list;
  overhead : float;
}

let time f =
  let t0 = Sys.time () in
  let v = f () in
  (v, Sys.time () -. t0)

let run ?(cfg = Config.paper) ?(log = Stochobs.Log.null) () =
  let cost = C.reservation_only in
  let budget =
    {
      Robust.Solver.default_budget with
      Robust.Solver.bf_candidates = cfg.Config.m;
      mc_samples = cfg.Config.n_mc;
      dp_points = cfg.Config.disc_n;
    }
  in
  let total = List.length Distributions.Table1.all in
  let rows =
    Distributions.Table1.all
    |> List.mapi (fun i (name, d) ->
           Stochobs.Log.debugf log "robust-solve: [%d/%d] solving %s" (i + 1)
             total name;
           let _, check_seconds = time (fun () -> Robust.Dist_check.run d) in
           let solved, solve_seconds =
             time (fun () ->
                 Robust.Solver.solve ~budget ~seed:cfg.Config.seed cost d)
           in
           let _, baseline_seconds =
             time (fun () ->
                 Robust.Solver.solve ~budget ~validate:false
                   ~seed:cfg.Config.seed cost d)
           in
           let row =
             match solved with
             | Ok sol ->
                 {
                   dist_name = name;
                   tier =
                     Robust.Solver.tier_name
                       sol.Robust.Solver.diagnostics.Robust.Solver.chosen;
                   rejections =
                     List.length
                       sol.Robust.Solver.diagnostics.Robust.Solver.rejected;
                   normalized = sol.Robust.Solver.normalized;
                   check_seconds;
                   solve_seconds;
                   baseline_seconds;
                 }
             | Error e ->
                 {
                   dist_name = name;
                   tier =
                     Printf.sprintf "FAILED (%s)"
                       (Robust.Solver.error_to_string e);
                   rejections = List.length Robust.Solver.all_tiers;
                   normalized = nan;
                   check_seconds;
                   solve_seconds;
                   baseline_seconds;
                 }
           in
           Stochobs.Log.infof log
             "robust-solve: [%d/%d] %s -> %s (%.3f s solve)" (i + 1) total name
             row.tier row.solve_seconds;
           row)
  in
  let tier_counts =
    List.fold_left
      (fun acc r ->
        match List.assoc_opt r.tier acc with
        | Some n -> (r.tier, n + 1) :: List.remove_assoc r.tier acc
        | None -> (r.tier, 1) :: acc)
      [] rows
    |> List.rev
  in
  let total f = List.fold_left (fun s r -> s +. f r) 0.0 rows in
  let overhead =
    let base = total (fun r -> r.baseline_seconds) in
    if base > 0.0 then total (fun r -> r.check_seconds) /. base else 0.0
  in
  { rows; tier_counts; overhead }

let to_string t =
  let header =
    [ "distribution"; "tier"; "rejections"; "normalized"; "check s";
      "solve s"; "baseline s" ]
  in
  let rows =
    List.map
      (fun r ->
        [
          r.dist_name;
          r.tier;
          string_of_int r.rejections;
          Text_table.fmt_ratio r.normalized;
          Printf.sprintf "%.4f" r.check_seconds;
          Printf.sprintf "%.4f" r.solve_seconds;
          Printf.sprintf "%.4f" r.baseline_seconds;
        ])
      t.rows
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Text_table.render ~header rows);
  Buffer.add_string buf "tier counts: ";
  Buffer.add_string buf
    (t.tier_counts
    |> List.map (fun (tier, n) -> Printf.sprintf "%s=%d" tier n)
    |> String.concat ", ");
  Buffer.add_string buf
    (Printf.sprintf "\nvalidation overhead: %.2f%% of solve time (target < 5%% \
                     at paper scale)\n"
       (100.0 *. t.overhead));
  Buffer.contents buf

let sanity t =
  [
    ( "every Table 1 row solved",
      List.for_all (fun r -> Float.is_finite r.normalized) t.rows );
    ( "every Table 1 row answered by the primary brute-force tier",
      List.for_all
        (fun r ->
          r.tier = Robust.Solver.tier_name Robust.Solver.Brute_force
          && r.rejections = 0)
        t.rows );
    ( "normalized costs stay below the AWS price factor 4",
      List.for_all (fun r -> r.normalized < 4.0) t.rows );
    ("validation overhead bounded", t.overhead < 0.5);
  ]
