(* Integration tests for the ablation experiments (beyond the paper's
   own artefacts): BRUTE-FORCE resolution, truncation eps, and
   model-misspecification robustness. *)

let cfg = Experiments.Config.quick

let assert_sanity checks =
  List.iter
    (fun (label, ok) -> if not ok then Alcotest.failf "sanity failed: %s" label)
    checks

let test_ablation_bf () =
  let t =
    Experiments.Ablation_bf.run ~cfg ~ms:[| 10; 100; 500 |] ~ns:[| 100; 500 |]
      ~dists:[ ("Exponential", Distributions.Exponential.default) ]
      ()
  in
  Alcotest.(check int) "one distribution" 1 (List.length t);
  assert_sanity (Experiments.Ablation_bf.sanity t);
  let r = List.hd t in
  Alcotest.(check int) "m sweep points" 3
    (Array.length r.Experiments.Ablation_bf.m_sweep);
  (* Exact normalized cost is a true expected-cost ratio: >= 1. *)
  Array.iter
    (fun p ->
      if p.Experiments.Ablation_bf.exact_normalized < 1.0 then
        Alcotest.failf "normalized %f below 1"
          p.Experiments.Ablation_bf.exact_normalized)
    r.Experiments.Ablation_bf.m_sweep

let test_ablation_bf_optimism_positive_at_tiny_n () =
  (* With very few MC samples the winner's estimate is clearly
     optimistic (selection bias) — the effect EXPERIMENTS.md uses to
     explain the Table 2 brute-force deviation. *)
  let t =
    Experiments.Ablation_bf.run ~cfg ~ms:[| 200 |] ~ns:[| 20 |]
      ~dists:[ ("Lognormal", Distributions.Lognormal.default) ]
      ()
  in
  let r = List.hd t in
  let p = r.Experiments.Ablation_bf.n_sweep.(0) in
  Alcotest.(check bool) "optimism is positive at N=20" true
    (p.Experiments.Ablation_bf.optimism > 0.0)

let test_ablation_eps () =
  let t =
    Experiments.Ablation_eps.run ~cfg ~epss:[| 1e-2; 1e-7 |] ~n:200 ()
  in
  Alcotest.(check int) "six unbounded distributions" 6
    (List.length t.Experiments.Ablation_eps.rows);
  (* Costs are finite normalized ratios. *)
  List.iter
    (fun (_, et, ep) ->
      Array.iter
        (fun v -> if not (Float.is_finite v && v >= 1.0) then
            Alcotest.failf "bad eps-sweep value %f" v)
        (Array.append et ep))
    t.Experiments.Ablation_eps.rows

let test_ablation_eps_sanity_at_paper_setting () =
  let t = Experiments.Ablation_eps.run ~cfg ~n:300 () in
  assert_sanity (Experiments.Ablation_eps.sanity t)

let test_table2x () =
  let t = Experiments.Table2x.run ~cfg () in
  Alcotest.(check int) "six extended distributions" 6
    (List.length t.Experiments.Table2x.rows);
  Alcotest.(check int) "nine strategies" 9
    (Array.length t.Experiments.Table2x.strategy_names);
  assert_sanity (Experiments.Table2x.sanity t)

let test_robustness () =
  let t =
    Experiments.Robustness.run ~cfg ~sample_sizes:[| 10; 200; 2000 |]
      ~replicas:6 ()
  in
  Alcotest.(check int) "three sweep points" 3
    (List.length t.Experiments.Robustness.points);
  assert_sanity (Experiments.Robustness.sanity t);
  (* Printing works and mentions the oracle. *)
  let s = Experiments.Robustness.to_string t in
  Alcotest.(check bool) "rendering nonempty" true (String.length s > 50)

let test_trace_vs_fit () =
  let t =
    Experiments.Trace_vs_fit.run ~cfg ~sample_sizes:[| 100; 1500 |]
      ~replicas:4 ()
  in
  Alcotest.(check int) "two sweep points" 2
    (List.length t.Experiments.Trace_vs_fit.points);
  assert_sanity (Experiments.Trace_vs_fit.sanity t);
  (* The worst replica is never better than the median. *)
  List.iter
    (fun p ->
      let open Experiments.Trace_vs_fit in
      if p.worst_interpolated < p.interpolated -. 1e-9 then
        Alcotest.fail "worst below median (interpolated)";
      if p.worst_fitted < p.fitted -. 1e-9 then
        Alcotest.fail "worst below median (fitted)")
    t.Experiments.Trace_vs_fit.points

let () =
  Alcotest.run "ablations"
    [
      ( "integration",
        [
          Alcotest.test_case "brute-force resolution" `Slow test_ablation_bf;
          Alcotest.test_case "selection optimism" `Slow
            test_ablation_bf_optimism_positive_at_tiny_n;
          Alcotest.test_case "eps sweep" `Slow test_ablation_eps;
          Alcotest.test_case "eps paper setting" `Slow
            test_ablation_eps_sanity_at_paper_setting;
          Alcotest.test_case "extended table2" `Slow test_table2x;
          Alcotest.test_case "robustness" `Slow test_robustness;
          Alcotest.test_case "trace vs fit" `Slow test_trace_vs_fit;
        ] );
    ]
