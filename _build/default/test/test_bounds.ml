(* Tests for the Theorem 2 bounds. *)

module B = Stochastic_core.Bounds
module C = Stochastic_core.Cost_model
module E = Stochastic_core.Expected_cost
module Dist = Distributions.Dist

let rel_close ?(tol = 1e-9) name expected got =
  let scale = Float.max 1.0 (Float.abs expected) in
  if Float.abs (got -. expected) /. scale > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" name expected got

let test_a1_reservation_only_exponential () =
  (* Exp(1), alpha = 1, beta = gamma = 0, a = 0: Eq. (6) gives
     A1 = E[X] + 1 + E[X^2]/2 + E[X] = 1 + 1 + 1 + 1 = 4. *)
  let d = Distributions.Exponential.default in
  rel_close "A1 for Exp(1)" 4.0 (B.a1 C.reservation_only d);
  rel_close "A2 = alpha A1" 4.0 (B.a2 C.reservation_only d)

let test_a1_general_model () =
  (* Hand-evaluated Eq. (6) with alpha=2, beta=1, gamma=0.5 on Exp(1):
     A1 = 1 + 1 + (3/4) * 2 + (3.5/2) * 1 = 5.25. *)
  let d = Distributions.Exponential.default in
  let m = C.make ~alpha:2.0 ~beta:1.0 ~gamma:0.5 () in
  rel_close "A1 general" 5.25 (B.a1 m d);
  (* A2 = beta E[X] + alpha A1 + gamma = 1 + 10.5 + 0.5. *)
  rel_close "A2 general" 12.0 (B.a2 m d)

let test_a1_nonzero_lower_bound () =
  (* Pareto(1.5, 3): a = 1.5, E[X] = 2.25, E[X^2] = var + mean^2 =
     27/16 + 81/16 = 6.75. Under RESERVATIONONLY:
     A1 = 2.25 + 1 + (6.75 - 2.25)/2 + (2.25 - 1.5) = 6.25. *)
  let d = Distributions.Pareto.default in
  rel_close "A1 for Pareto" 6.25 (B.a1 C.reservation_only d)

let test_search_interval () =
  let u = Distributions.Uniform_dist.default in
  let a, b = B.search_interval C.reservation_only u in
  rel_close "bounded lower" 10.0 a;
  rel_close "bounded upper" 20.0 b;
  let e = Distributions.Exponential.default in
  let a, b = B.search_interval C.reservation_only e in
  rel_close "unbounded lower" 0.0 a;
  rel_close "unbounded upper is A1" 4.0 b

let test_a2_bounds_unit_step_sequence () =
  (* Theorem 2's proof exhibits the sequence t_i = a + i whose cost is
     at most A2; verify the claim numerically for several laws. *)
  List.iter
    (fun (name, d) ->
      if not (Dist.is_bounded d) then begin
        let m = C.make ~alpha:1.0 ~beta:0.5 ~gamma:0.25 () in
        let a = Dist.lower d in
        let s = Seq.ints 1 |> Seq.map (fun i -> a +. float_of_int i) in
        let cost = E.exact m d s in
        let a2 = B.a2 m d in
        if cost > a2 +. 1e-6 then
          Alcotest.failf "%s: unit-step cost %.6f exceeds A2 = %.6f" name cost
            a2
      end)
    Distributions.Table1.all

let test_a2_bounds_optimum () =
  (* The optimal Exp(1) cost must respect A2 as well. *)
  let sol = Stochastic_core.Exponential_opt.solve () in
  let d = Distributions.Exponential.default in
  Alcotest.(check bool) "E1 <= A2" true
    (sol.Stochastic_core.Exponential_opt.e1 <= B.a2 C.reservation_only d)

let prop_a1_grows_with_beta =
  QCheck.Test.make ~count:200 ~name:"A1 is nondecreasing in beta"
    QCheck.(pair (float_range 0.0 3.0) (float_range 0.0 3.0))
    (fun (b1, b2) ->
      let d = Distributions.Lognormal.default in
      let lo = Float.min b1 b2 and hi = Float.max b1 b2 in
      B.a1 (C.make ~beta:lo ()) d <= B.a1 (C.make ~beta:hi ()) d +. 1e-9)

let () =
  Alcotest.run "bounds"
    [
      ( "unit",
        [
          Alcotest.test_case "A1 Exp reservation-only" `Quick
            test_a1_reservation_only_exponential;
          Alcotest.test_case "A1 general model" `Quick test_a1_general_model;
          Alcotest.test_case "A1 with a > 0" `Quick test_a1_nonzero_lower_bound;
          Alcotest.test_case "search interval" `Quick test_search_interval;
          Alcotest.test_case "A2 bounds the unit-step sequence" `Quick
            test_a2_bounds_unit_step_sequence;
          Alcotest.test_case "A2 bounds the optimum" `Quick test_a2_bounds_optimum;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_a1_grows_with_beta ]);
    ]
