test/test_rootfind.mli:
