test/test_experiments.ml: Alcotest Array Distributions Experiments List Platform Randomness String
