test/test_exponential_opt.ml: Alcotest Distributions Float List QCheck QCheck_alcotest Stochastic_core
