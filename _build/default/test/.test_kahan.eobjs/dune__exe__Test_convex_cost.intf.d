test/test_convex_cost.mli:
