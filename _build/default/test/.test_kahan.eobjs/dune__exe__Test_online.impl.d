test/test_online.ml: Alcotest Array Distributions Platform Printf Randomness Stochastic_core
