test/test_optimize.ml: Alcotest Float Numerics QCheck QCheck_alcotest
