test/test_empirical.ml: Alcotest Array Distributions Float Gen List Numerics QCheck QCheck_alcotest Randomness Stochastic_core
