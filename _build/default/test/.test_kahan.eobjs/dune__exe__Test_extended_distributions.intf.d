test/test_extended_distributions.mli:
