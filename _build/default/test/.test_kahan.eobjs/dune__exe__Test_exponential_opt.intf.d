test/test_exponential_opt.mli:
