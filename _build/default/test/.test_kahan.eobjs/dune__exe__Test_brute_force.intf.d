test/test_brute_force.mli:
