test/test_fitting.mli:
