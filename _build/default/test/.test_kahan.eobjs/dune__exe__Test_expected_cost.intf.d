test/test_expected_cost.mli:
