test/test_integrate.ml: Alcotest Float Numerics QCheck QCheck_alcotest
