test/test_rootfind.ml: Alcotest Float Numerics QCheck QCheck_alcotest
