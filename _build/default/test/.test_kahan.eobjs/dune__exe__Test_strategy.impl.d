test/test_strategy.ml: Alcotest Array Distributions Float List Randomness Stochastic_core
