test/test_moldable.ml: Alcotest Array Distributions Float Numerics Printf QCheck QCheck_alcotest Stochastic_core
