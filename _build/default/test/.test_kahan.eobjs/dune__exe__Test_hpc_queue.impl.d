test/test_hpc_queue.ml: Alcotest Array Numerics Platform QCheck QCheck_alcotest Randomness Stochastic_core
