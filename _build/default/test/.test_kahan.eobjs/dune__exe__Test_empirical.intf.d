test/test_empirical.mli:
