test/test_specfun.ml: Alcotest Float Numerics QCheck QCheck_alcotest
