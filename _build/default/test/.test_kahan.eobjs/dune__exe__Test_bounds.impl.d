test/test_bounds.ml: Alcotest Distributions Float List QCheck QCheck_alcotest Seq Stochastic_core
