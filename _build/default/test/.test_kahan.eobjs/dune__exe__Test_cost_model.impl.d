test/test_cost_model.ml: Alcotest Float QCheck QCheck_alcotest Stochastic_core
