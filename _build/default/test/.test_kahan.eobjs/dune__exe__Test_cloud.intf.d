test/test_cloud.mli:
