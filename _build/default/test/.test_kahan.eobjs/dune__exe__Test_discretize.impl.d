test/test_discretize.ml: Alcotest Array Distributions Float List Printf QCheck QCheck_alcotest Stochastic_core
