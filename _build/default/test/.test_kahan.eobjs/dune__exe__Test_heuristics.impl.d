test/test_heuristics.ml: Alcotest Array Distributions Float List Printf Randomness Stochastic_core
