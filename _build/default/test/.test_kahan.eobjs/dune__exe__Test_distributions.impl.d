test/test_distributions.ml: Alcotest Distributions Float List Numerics Printf QCheck QCheck_alcotest Randomness
