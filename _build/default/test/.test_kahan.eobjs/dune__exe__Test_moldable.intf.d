test/test_moldable.mli:
