test/test_hpc_queue.mli:
