test/test_discretize.mli:
