test/test_convex_cost.ml: Alcotest Distributions Float List Printf QCheck QCheck_alcotest Stochastic_core
