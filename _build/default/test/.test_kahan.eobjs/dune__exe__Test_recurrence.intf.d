test/test_recurrence.mli:
