test/test_regression.ml: Alcotest Array Float Gen List Numerics QCheck QCheck_alcotest
