test/test_expected_cost.ml: Alcotest Array Distributions Float Gen List Numerics QCheck QCheck_alcotest Randomness Seq Stochastic_core
