test/test_sampler.ml: Alcotest Numerics Randomness
