test/test_brute_force.ml: Alcotest Array Distributions Float List QCheck QCheck_alcotest Randomness Stochastic_core
