test/test_extended_distributions.ml: Alcotest Distributions Float List Numerics Printf QCheck QCheck_alcotest Randomness Stochastic_core
