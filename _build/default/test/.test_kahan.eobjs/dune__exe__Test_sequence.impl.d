test/test_sequence.ml: Alcotest Array Distributions Float Gen List QCheck QCheck_alcotest Seq Stochastic_core
