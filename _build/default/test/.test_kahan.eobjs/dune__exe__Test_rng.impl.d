test/test_rng.ml: Alcotest Array Printf QCheck QCheck_alcotest Randomness
