test/test_discrete.ml: Alcotest Array Distributions Gen Hashtbl List QCheck QCheck_alcotest Randomness
