test/test_stats.ml: Alcotest Array Float Gen List Numerics QCheck QCheck_alcotest
