test/test_fitting.ml: Alcotest Distributions Float QCheck QCheck_alcotest Randomness
