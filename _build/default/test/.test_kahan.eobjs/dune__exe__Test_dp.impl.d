test/test_dp.ml: Alcotest Array Distributions Float List QCheck QCheck_alcotest Randomness Stochastic_core
