test/test_traces.ml: Alcotest Array Distributions Filename Float Fun Numerics Platform Randomness Sys
