test/test_discrete.mli:
