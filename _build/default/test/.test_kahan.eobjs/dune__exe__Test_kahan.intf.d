test/test_kahan.mli:
