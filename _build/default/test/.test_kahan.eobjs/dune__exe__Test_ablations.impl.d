test/test_ablations.ml: Alcotest Array Distributions Experiments Float List String
