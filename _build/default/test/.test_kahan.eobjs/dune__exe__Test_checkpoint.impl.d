test/test_checkpoint.ml: Alcotest Distributions Float Numerics Printf Randomness Seq Stochastic_core
