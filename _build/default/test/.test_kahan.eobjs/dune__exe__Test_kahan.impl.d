test/test_kahan.ml: Alcotest Array Float Gen List Numerics QCheck QCheck_alcotest
