test/test_specfun.mli:
