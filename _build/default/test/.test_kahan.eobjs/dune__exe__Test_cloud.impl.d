test/test_cloud.ml: Alcotest Distributions Platform QCheck QCheck_alcotest
