test/test_simulator.ml: Alcotest Array Distributions Float Platform Randomness Stochastic_core
