(* Tests for the root-finding routines. *)

module R = Numerics.Rootfind

let pi = 4.0 *. atan 1.0

let close ?(tol = 1e-9) name expected got =
  Alcotest.(check (float tol)) name expected got

let test_bisection () =
  close "root of x^2 - 2 on [0, 2]" (sqrt 2.0)
    (R.bisection (fun x -> (x *. x) -. 2.0) 0.0 2.0);
  close "root of cos on [1, 2]" (pi /. 2.0) (R.bisection cos 1.0 2.0);
  close "endpoint root a" 1.0 (R.bisection (fun x -> x -. 1.0) 1.0 2.0);
  close "endpoint root b" 2.0 (R.bisection (fun x -> x -. 2.0) 1.0 2.0)

let test_bisection_no_bracket () =
  Alcotest.(check bool) "raises No_bracket" true
    (try
       ignore (R.bisection (fun x -> (x *. x) +. 1.0) 0.0 1.0);
       false
     with R.No_bracket _ -> true)

let test_brent () =
  close "root of x^3 - x - 2" 1.5213797068045676
    (R.brent (fun x -> (x ** 3.0) -. x -. 2.0) 1.0 2.0)
    ~tol:1e-12;
  close "root of cos" (pi /. 2.0) (R.brent cos 1.0 2.0) ~tol:1e-12;
  close "root of exp(x) - 2" (log 2.0)
    (R.brent (fun x -> exp x -. 2.0) 0.0 1.0)
    ~tol:1e-12;
  (* A nasty flat function near the root. *)
  close "root of (x - 1)^3" 1.0
    (R.brent (fun x -> (x -. 1.0) ** 3.0) 0.0 3.0)
    ~tol:1e-4

let test_newton_safe () =
  let f x = (x *. x) -. 2.0 and df x = 2.0 *. x in
  close "newton sqrt2" (sqrt 2.0) (R.newton_safe ~f ~df ~lo:0.0 ~hi:2.0 1.9)
    ~tol:1e-10;
  (* Bad starting point: must fall back to bisection, not diverge. *)
  close "newton from bad x0" (sqrt 2.0)
    (R.newton_safe ~f ~df ~lo:0.0 ~hi:2.0 0.0001)
    ~tol:1e-10

let test_expand_bracket () =
  let f x = x -. 10.0 in
  let a, b = R.expand_bracket f 0.0 1.0 in
  Alcotest.(check bool) "bracket straddles the root" true
    ((f a < 0.0 && f b > 0.0) || (f a > 0.0 && f b < 0.0));
  Alcotest.(check bool) "fails when no root exists" true
    (try
       ignore (R.expand_bracket ~max_iter:10 (fun _ -> 1.0) 0.0 1.0);
       false
     with R.No_bracket _ -> true)

let prop_brent_polynomial =
  QCheck.Test.make ~count:300 ~name:"brent finds the planted root"
    QCheck.(pair (float_range (-10.0) 10.0) (float_range 0.1 5.0))
    (fun (root, spread) ->
      (* f(x) = (x - root) * (1 + (x - root)^2) has a single real
         root. *)
      let f x =
        let d = x -. root in
        d *. (1.0 +. (d *. d))
      in
      let found = R.brent f (root -. spread) (root +. spread) in
      Float.abs (found -. root) <= 1e-8 *. (1.0 +. Float.abs root))

let prop_bisection_matches_brent =
  QCheck.Test.make ~count:200 ~name:"bisection and brent agree"
    QCheck.(float_range 0.1 20.0)
    (fun c ->
      let f x = exp x -. c -. 1.0 in
      let hi = log (c +. 1.0) +. 1.0 in
      let r1 = R.bisection f (-1.0) hi in
      let r2 = R.brent f (-1.0) hi in
      Float.abs (r1 -. r2) <= 1e-8 *. (1.0 +. Float.abs r1))

let () =
  Alcotest.run "rootfind"
    [
      ( "unit",
        [
          Alcotest.test_case "bisection" `Quick test_bisection;
          Alcotest.test_case "no bracket" `Quick test_bisection_no_bracket;
          Alcotest.test_case "brent" `Quick test_brent;
          Alcotest.test_case "newton_safe" `Quick test_newton_safe;
          Alcotest.test_case "expand_bracket" `Quick test_expand_bracket;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_brent_polynomial;
          QCheck_alcotest.to_alcotest prop_bisection_matches_brent;
        ] );
    ]
