(* Tests for finite discrete distributions. *)

module D = Distributions.Discrete

let close ?(tol = 1e-12) name expected got =
  Alcotest.(check (float tol)) name expected got

let simple = D.make [| (1.0, 0.2); (2.0, 0.3); (3.0, 0.5) |]

let test_make_sorts_and_merges () =
  let d = D.make [| (3.0, 0.1); (1.0, 0.2); (3.0, 0.3); (2.0, 0.4) |] in
  Alcotest.(check int) "merged size" 3 (D.size d);
  Alcotest.(check (array (float 1e-12))) "sorted values" [| 1.0; 2.0; 3.0 |]
    d.D.values;
  Alcotest.(check (array (float 1e-12))) "merged probs" [| 0.2; 0.4; 0.4 |]
    d.D.probs

let test_make_drops_zero () =
  let d = D.make [| (1.0, 0.5); (2.0, 0.0); (3.0, 0.5) |] in
  Alcotest.(check int) "zero-prob point dropped" 2 (D.size d)

let test_make_errors () =
  Alcotest.(check bool) "negative prob rejected" true
    (try ignore (D.make [| (1.0, -0.1) |]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty rejected" true
    (try ignore (D.make [| (1.0, 0.0) |]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "mass > 1 rejected" true
    (try ignore (D.make [| (1.0, 0.6); (2.0, 0.6) |]); false
     with Invalid_argument _ -> true)

let test_total_mass_and_normalize () =
  let d = D.make [| (1.0, 0.3); (2.0, 0.3) |] in
  close "partial mass" 0.6 (D.total_mass d);
  let n = D.normalize d in
  close "normalized mass" 1.0 (D.total_mass n);
  close "proportions preserved" 0.5 n.D.probs.(0)

let test_moments () =
  close "mean" 2.3 (D.mean simple);
  (* E[X^2] = 0.2 + 1.2 + 4.5 = 5.9; var = 5.9 - 5.29 = 0.61. *)
  close "variance" 0.61 (D.variance simple);
  (* Moments are normalization-invariant. *)
  let partial = D.make [| (1.0, 0.1); (2.0, 0.15); (3.0, 0.25) |] in
  close "mean under partial mass" 2.3 (D.mean partial)

let test_cdf_quantile () =
  close "cdf below" 0.0 (D.cdf simple 0.5);
  close "cdf at 1" 0.2 (D.cdf simple 1.0);
  close "cdf between" 0.5 (D.cdf simple 2.5);
  close "cdf at top" 1.0 (D.cdf simple 3.0);
  close "quantile 0" 1.0 (D.quantile simple 0.0);
  close "quantile 0.2" 1.0 (D.quantile simple 0.2);
  close "quantile 0.21" 2.0 (D.quantile simple 0.21);
  close "quantile 1" 3.0 (D.quantile simple 1.0)

let test_sample_distribution () =
  let rng = Randomness.Rng.create ~seed:17 () in
  let counts = Hashtbl.create 3 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = D.sample simple rng in
    Hashtbl.replace counts v (1 + try Hashtbl.find counts v with Not_found -> 0)
  done;
  let freq v = float_of_int (Hashtbl.find counts v) /. float_of_int n in
  Alcotest.(check (float 0.01)) "P(1)" 0.2 (freq 1.0);
  Alcotest.(check (float 0.01)) "P(2)" 0.3 (freq 2.0);
  Alcotest.(check (float 0.01)) "P(3)" 0.5 (freq 3.0)

let test_of_samples () =
  let d = D.of_samples [| 1.0; 1.0; 2.0; 3.0; 3.0; 3.0 |] in
  Alcotest.(check int) "distinct values" 3 (D.size d);
  close "frequency of 3" 0.5 d.D.probs.(2)

let test_to_dist () =
  let dd = D.to_dist simple in
  close "to_dist mean" 2.3 dd.Distributions.Dist.mean;
  close "to_dist cdf" 0.5 (dd.Distributions.Dist.cdf 2.0);
  close "to_dist cond mean above 1" (((2.0 *. 0.3) +. (3.0 *. 0.5)) /. 0.8)
    (dd.Distributions.Dist.conditional_mean 1.0);
  close "to_dist cond mean above all" 3.0
    (dd.Distributions.Dist.conditional_mean 3.0)

let prop_quantile_cdf_consistent =
  QCheck.Test.make ~count:300 ~name:"quantile (cdf v) recovers v on support"
    QCheck.(list_of_size Gen.(int_range 1 20)
              (pair (float_range 0.0 100.0) (float_range 0.01 1.0)))
    (fun pairs ->
      let total = List.fold_left (fun a (_, p) -> a +. p) 0.0 pairs in
      let pairs = List.map (fun (v, p) -> (v, p /. total)) pairs in
      let d = D.make (Array.of_list pairs) in
      Array.for_all
        (fun v -> D.quantile d (D.cdf d v) = v)
        d.D.values)

let prop_mean_within_range =
  QCheck.Test.make ~count:300 ~name:"mean lies within [min, max] of support"
    QCheck.(list_of_size Gen.(int_range 1 30)
              (pair (float_range 0.0 50.0) (float_range 0.01 1.0)))
    (fun pairs ->
      let total = 2.0 *. List.fold_left (fun a (_, p) -> a +. p) 0.0 pairs in
      let pairs = List.map (fun (v, p) -> (v, p /. total)) pairs in
      let d = D.make (Array.of_list pairs) in
      let n = D.size d in
      let m = D.mean d in
      m >= d.D.values.(0) -. 1e-9 && m <= d.D.values.(n - 1) +. 1e-9)

let () =
  Alcotest.run "discrete"
    [
      ( "unit",
        [
          Alcotest.test_case "make sorts/merges" `Quick test_make_sorts_and_merges;
          Alcotest.test_case "make drops zero" `Quick test_make_drops_zero;
          Alcotest.test_case "make errors" `Quick test_make_errors;
          Alcotest.test_case "mass/normalize" `Quick test_total_mass_and_normalize;
          Alcotest.test_case "moments" `Quick test_moments;
          Alcotest.test_case "cdf/quantile" `Quick test_cdf_quantile;
          Alcotest.test_case "sampling" `Quick test_sample_distribution;
          Alcotest.test_case "of_samples" `Quick test_of_samples;
          Alcotest.test_case "to_dist" `Quick test_to_dist;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_quantile_cdf_consistent;
          QCheck_alcotest.to_alcotest prop_mean_within_range;
        ] );
    ]
