(* Tests for trace-interpolated empirical distributions. *)

module E = Distributions.Empirical
module Dist = Distributions.Dist

let close ?(tol = 1e-9) name expected got =
  Alcotest.(check (float tol)) name expected got

let test_ecdf () =
  let f = E.ecdf [| 1.0; 2.0; 3.0; 4.0 |] in
  close "below all" 0.0 (f 0.5);
  close "at first" 0.25 (f 1.0);
  close "between" 0.5 (f 2.5);
  close "at last" 1.0 (f 4.0);
  close "above all" 1.0 (f 9.0)

let test_make_validation () =
  Alcotest.(check bool) "negative sample rejected" true
    (try ignore (E.make [| 1.0; -2.0 |]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "constant sample rejected" true
    (try ignore (E.make [| 2.0; 2.0 |]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "nan rejected" true
    (try ignore (E.make [| 1.0; nan |]); false
     with Invalid_argument _ -> true)

let test_interpolated_cdf_quantile () =
  let d = E.make [| 0.0; 1.0; 2.0; 3.0 |] in
  close "cdf midpoint of first segment" (1.0 /. 6.0) (d.Dist.cdf 0.5);
  close "quantile 0.5" 1.5 (d.Dist.quantile 0.5);
  close "cdf(quantile 0.3)" 0.3 (d.Dist.cdf (d.Dist.quantile 0.3));
  close "cdf at min" 0.0 (d.Dist.cdf 0.0);
  close "cdf at max" 1.0 (d.Dist.cdf 3.0)

let test_moments_piecewise () =
  (* Equally spaced points: the interpolated law is Uniform(0, 3). *)
  let d = E.make [| 0.0; 1.0; 2.0; 3.0 |] in
  close "mean of uniformized trace" 1.5 d.Dist.mean;
  close "variance of uniformized trace" 0.75 d.Dist.variance;
  close "conditional mean matches uniform" 2.25 (d.Dist.conditional_mean 1.5)

let test_pdf_density () =
  let d = E.make [| 0.0; 1.0; 3.0 |] in
  (* Segment [0,1] has mass 1/2 over width 1; segment [1,3] mass 1/2
     over width 2. *)
  close "pdf on narrow segment" 0.5 (d.Dist.pdf 0.5);
  close "pdf on wide segment" 0.25 (d.Dist.pdf 2.0);
  close "pdf outside" 0.0 (d.Dist.pdf 5.0)

let test_sampling () =
  let d = E.make [| 0.0; 1.0; 2.0; 3.0 |] in
  let rng = Randomness.Rng.create ~seed:5 () in
  let samples = Dist.samples d rng 50_000 in
  Alcotest.(check (float 0.02)) "bootstrap mean" 1.5
    (Numerics.Stats.mean samples)

let test_ks_statistic () =
  (* KS of a sample against its own generating distribution is small;
     against a shifted distribution it is large. *)
  let rng = Randomness.Rng.create ~seed:21 () in
  let ln = Distributions.Lognormal.default in
  let samples = Dist.samples ln rng 5000 in
  let ks_good = E.ks_statistic ln samples in
  Alcotest.(check bool) "ks small for true law" true (ks_good < 0.03);
  let shifted = Distributions.Lognormal.make ~mu:3.5 ~sigma:0.5 in
  let ks_bad = E.ks_statistic shifted samples in
  Alcotest.(check bool) "ks large for wrong law" true (ks_bad > 0.2)

let test_recurrence_compatible () =
  (* The interpolated distribution exposes a usable pdf, so the
     optimal recurrence runs directly on trace data. *)
  let rng = Randomness.Rng.create ~seed:33 () in
  let trace =
    Dist.samples Distributions.Lognormal.default rng 2000
  in
  let d = E.make trace in
  let cost = Stochastic_core.Cost_model.reservation_only in
  let r =
    Stochastic_core.Brute_force.search ~m:200
      ~evaluator:Stochastic_core.Brute_force.Exact cost d
  in
  Alcotest.(check bool) "brute force on empirical distribution" true
    (r.Stochastic_core.Brute_force.normalized > 1.0
    && r.Stochastic_core.Brute_force.normalized < 4.0)

let prop_quantile_cdf_roundtrip =
  QCheck.Test.make ~count:200 ~name:"empirical cdf/quantile roundtrip"
    QCheck.(pair
              (list_of_size Gen.(int_range 5 100) (float_range 0.0 100.0))
              (float_range 0.01 0.99))
    (fun (xs, p) ->
      let xs = List.sort_uniq compare xs in
      if List.length xs < 2 then true
      else begin
        let d = E.make (Array.of_list xs) in
        let t = d.Dist.quantile p in
        Float.abs (d.Dist.cdf t -. p) <= 1e-9
      end)

let prop_mean_between_extremes =
  QCheck.Test.make ~count:200 ~name:"empirical mean within data range"
    QCheck.(list_of_size Gen.(int_range 2 100) (float_range 0.0 1000.0))
    (fun xs ->
      let xs = List.sort_uniq compare xs in
      if List.length xs < 2 then true
      else begin
        let a = Array.of_list xs in
        let d = E.make a in
        let mn, mx = Numerics.Stats.min_max a in
        d.Dist.mean >= mn -. 1e-9 && d.Dist.mean <= mx +. 1e-9
      end)

let () =
  Alcotest.run "empirical"
    [
      ( "unit",
        [
          Alcotest.test_case "ecdf" `Quick test_ecdf;
          Alcotest.test_case "validation" `Quick test_make_validation;
          Alcotest.test_case "cdf/quantile" `Quick test_interpolated_cdf_quantile;
          Alcotest.test_case "moments" `Quick test_moments_piecewise;
          Alcotest.test_case "pdf" `Quick test_pdf_density;
          Alcotest.test_case "sampling" `Quick test_sampling;
          Alcotest.test_case "ks statistic" `Quick test_ks_statistic;
          Alcotest.test_case "recurrence compatible" `Quick
            test_recurrence_compatible;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_quantile_cdf_roundtrip;
          QCheck_alcotest.to_alcotest prop_mean_between_extremes;
        ] );
    ]
