(* Tests for the Sect. 4.3 heuristics, checked against the Appendix B
   closed-form recursions. *)

module H = Stochastic_core.Heuristics
module S = Stochastic_core.Sequence
module Dist = Distributions.Dist

let rel_close ?(tol = 1e-9) name expected got =
  let scale = Float.max 1.0 (Float.abs expected) in
  if Float.abs (got -. expected) /. scale > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" name expected got

let take_floats n s = Array.of_list (S.take n s)

(* --------------------------- mean-stdev --------------------------- *)

let test_mean_stdev_arithmetic () =
  let d = Distributions.Exponential.default in
  (* mu = sigma = 1: t_i = i. *)
  let ts = take_floats 5 (H.mean_stdev d) in
  Alcotest.(check (array (float 1e-9))) "t_i = mu + (i-1) sigma"
    [| 1.0; 2.0; 3.0; 4.0; 5.0 |] ts

let test_mean_stdev_bounded_caps_at_b () =
  let d = Distributions.Uniform_dist.default in
  let ts = S.take 10 (H.mean_stdev d) in
  let last = List.nth ts (List.length ts - 1) in
  rel_close "ends exactly at b" 20.0 last;
  Alcotest.(check bool) "short sequence" true (List.length ts <= 3)

(* -------------------------- mean-doubling ------------------------- *)

let test_mean_doubling () =
  let d = Distributions.Lognormal.default in
  let mu = d.Dist.mean in
  let ts = take_floats 4 (H.mean_doubling d) in
  Alcotest.(check (array (float 1e-6))) "t_i = 2^(i-1) mu"
    [| mu; 2.0 *. mu; 4.0 *. mu; 8.0 *. mu |] ts

(* ------------------------ median-by-median ------------------------ *)

let test_median_by_median () =
  let d = Distributions.Exponential.default in
  (* Q(1 - 2^-i) = i ln 2 for Exp(1). *)
  let ts = take_floats 4 (H.median_by_median d) in
  let ln2 = log 2.0 in
  Alcotest.(check (array (float 1e-9))) "t_i = i ln 2"
    [| ln2; 2.0 *. ln2; 3.0 *. ln2; 4.0 *. ln2 |] ts

let test_median_by_median_survives_quantile_saturation () =
  (* Beyond i ~ 53, 1 - 2^-i rounds to 1; the sequence must continue
     (doubling fallback) rather than emit inf. *)
  let d = Distributions.Exponential.default in
  let ts = S.take 80 (H.median_by_median d) in
  Alcotest.(check int) "80 finite elements" 80 (List.length ts);
  List.iter
    (fun t -> if not (Float.is_finite t) then Alcotest.fail "non-finite element")
    ts

(* -------------------------- mean-by-mean -------------------------- *)

let test_mean_by_mean_exponential () =
  (* Memorylessness: t_i = i * mu (Appendix B table, first row). *)
  let d = Distributions.Exponential.make ~rate:2.0 in
  let ts = take_floats 5 (H.mean_by_mean d) in
  Alcotest.(check (array (float 1e-9))) "t_i = i / lambda"
    [| 0.5; 1.0; 1.5; 2.0; 2.5 |] ts

let test_mean_by_mean_uniform () =
  (* Appendix B.6: t_1 = (a+b)/2, t_i = (b + t_(i-1))/2. *)
  let d = Distributions.Uniform_dist.default in
  let ts = S.take 4 (H.mean_by_mean d) in
  (match ts with
  | t1 :: t2 :: t3 :: _ ->
      rel_close "t1 = mean" 15.0 t1;
      rel_close "t2 = (b + t1)/2" 17.5 t2;
      rel_close "t3" 18.75 t3
  | _ -> Alcotest.fail "sequence too short");
  (* Must terminate with exactly b despite the asymptotic approach. *)
  let all = S.take 200 (H.mean_by_mean d) in
  rel_close "ends at b" 20.0 (List.nth all (List.length all - 1));
  Alcotest.(check bool) "terminates" true (List.length all < 200)

let test_mean_by_mean_pareto () =
  (* Appendix B.5: geometric with ratio alpha/(alpha - 1). *)
  let d = Distributions.Pareto.default in
  let ts = take_floats 4 (H.mean_by_mean d) in
  let r = 1.5 in
  rel_close "t1" 2.25 ts.(0);
  rel_close "t2" (2.25 *. r) ts.(1);
  rel_close "t3" (2.25 *. r *. r) ts.(2);
  rel_close "t4" (2.25 *. r ** 3.0) ts.(3)

let test_mean_by_mean_matches_conditional_expectation () =
  (* Generic consistency on every distribution: t_(i+1) =
     E[X | X > t_i] with E computed independently by quadrature. *)
  List.iter
    (fun (name, d) ->
      let ts = S.take 4 (H.mean_by_mean d) in
      let rec check = function
        | a :: (b :: _ as rest) ->
            let expected = Dist.numeric_conditional_mean d a in
            (* Skip the final b-capped element of bounded supports. *)
            if b < Dist.upper d *. (1.0 -. 1e-9) || not (Dist.is_bounded d)
            then
              rel_close
                (Printf.sprintf "%s: conditional-mean step at %g" name a)
                expected b ~tol:1e-4;
            check rest
        | _ -> ()
      in
      rel_close (name ^ ": starts at the mean") d.Dist.mean (List.hd ts)
        ~tol:1e-9;
      check ts)
    Distributions.Table1.all

(* --------------------------- generic ------------------------------ *)

let all_heuristics =
  [
    ("mean_by_mean", H.mean_by_mean);
    ("mean_stdev", H.mean_stdev);
    ("mean_doubling", H.mean_doubling);
    ("median_by_median", H.median_by_median);
  ]

let test_all_heuristics_all_distributions_increasing () =
  List.iter
    (fun (hname, h) ->
      List.iter
        (fun (dname, d) ->
          let ts = S.take 200 (h d) in
          let rec increasing = function
            | a :: (b :: _ as rest) -> a < b && increasing rest
            | _ -> true
          in
          if not (increasing ts) then
            Alcotest.failf "%s on %s: not strictly increasing" hname dname;
          if Dist.is_bounded d then begin
            if List.length ts >= 200 then
              Alcotest.failf "%s on %s: bounded sequence must terminate" hname
                dname;
            let last = List.nth ts (List.length ts - 1) in
            if last <> Dist.upper d then
              Alcotest.failf "%s on %s: bounded sequence must end at b" hname
                dname
          end)
        Distributions.Table1.all)
    all_heuristics

let test_all_heuristics_cover_every_sample () =
  (* Every heuristic sequence must cover any sampled execution time
     (no Not_covered). *)
  let m = Stochastic_core.Cost_model.reservation_only in
  List.iter
    (fun (hname, h) ->
      List.iter
        (fun (dname, d) ->
          let rng = Randomness.Rng.create ~seed:71 () in
          let seq = h d in
          for _ = 1 to 500 do
            let t = d.Dist.sample rng in
            try ignore (S.cost_of_run m seq t)
            with S.Not_covered t ->
              Alcotest.failf "%s on %s: sample %g not covered" hname dname t
          done)
        Distributions.Table1.all)
    all_heuristics

let () =
  Alcotest.run "heuristics"
    [
      ( "closed forms",
        [
          Alcotest.test_case "mean-stdev arithmetic" `Quick
            test_mean_stdev_arithmetic;
          Alcotest.test_case "mean-stdev bounded" `Quick
            test_mean_stdev_bounded_caps_at_b;
          Alcotest.test_case "mean-doubling" `Quick test_mean_doubling;
          Alcotest.test_case "median-by-median" `Quick test_median_by_median;
          Alcotest.test_case "median quantile saturation" `Quick
            test_median_by_median_survives_quantile_saturation;
          Alcotest.test_case "mean-by-mean exponential" `Quick
            test_mean_by_mean_exponential;
          Alcotest.test_case "mean-by-mean uniform" `Quick
            test_mean_by_mean_uniform;
          Alcotest.test_case "mean-by-mean pareto" `Quick
            test_mean_by_mean_pareto;
          Alcotest.test_case "mean-by-mean vs quadrature (all)" `Quick
            test_mean_by_mean_matches_conditional_expectation;
        ] );
      ( "generic",
        [
          Alcotest.test_case "all increasing / b-terminated" `Quick
            test_all_heuristics_all_distributions_increasing;
          Alcotest.test_case "all cover samples" `Quick
            test_all_heuristics_cover_every_sample;
        ] );
    ]
