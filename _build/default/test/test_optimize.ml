(* Tests for the one-dimensional minimisers. *)

module O = Numerics.Optimize

let close ?(tol = 1e-6) name expected got =
  Alcotest.(check (float tol)) name expected got

let test_golden_section () =
  let r = O.golden_section (fun x -> (x -. 1.5) ** 2.0) 0.0 4.0 in
  close "quadratic argmin" 1.5 r.O.xmin;
  close "quadratic min" 0.0 r.O.fmin ~tol:1e-10;
  let r = O.golden_section cos 0.0 (2.0 *. (4.0 *. atan 1.0)) in
  close "cos argmin = pi" (4.0 *. atan 1.0) r.O.xmin ~tol:1e-6

let test_brent_min () =
  let r = O.brent_min (fun x -> (x -. 2.0) ** 2.0 +. 3.0) (-1.0) 5.0 in
  close "brent quadratic argmin" 2.0 r.O.xmin;
  close "brent quadratic min" 3.0 r.O.fmin ~tol:1e-10;
  (* Non-symmetric, non-polynomial objective. *)
  let r = O.brent_min (fun x -> (x *. log x) -. x) 0.1 5.0 in
  close "x ln x - x argmin = 1" 1.0 r.O.xmin ~tol:1e-6;
  Alcotest.(check bool) "brent uses fewer evals than golden" true
    (r.O.evaluations < 100)

let test_grid () =
  let r = O.grid ~n:100 (fun x -> (x -. 0.613) ** 2.0) 0.0 1.0 in
  close "grid+refine argmin" 0.613 r.O.xmin ~tol:1e-4;
  (* Without refinement the answer snaps to the lattice. *)
  let r = O.grid ~refine:false ~n:10 (fun x -> (x -. 0.613) ** 2.0) 0.0 1.0 in
  close "grid argmin on lattice" 0.6 r.O.xmin ~tol:1e-12

let test_grid_invalid_points () =
  (* Objective undefined (nan) on half the domain — those points must
     be skipped, mirroring BRUTE-FORCE discarding invalid t1. *)
  let f x = if x < 0.5 then nan else (x -. 0.7) ** 2.0 in
  let r = O.grid ~n:50 f 0.0 1.0 in
  close "nan region skipped" 0.7 r.O.xmin ~tol:1e-3;
  Alcotest.check_raises "all invalid rejected"
    (Invalid_argument "Optimize.grid: objective invalid at every grid point")
    (fun () -> ignore (O.grid ~n:10 (fun _ -> nan) 0.0 1.0));
  Alcotest.check_raises "n = 0 rejected"
    (Invalid_argument "Optimize.grid: n must be positive") (fun () ->
      ignore (O.grid ~n:0 (fun x -> x) 0.0 1.0))

let prop_minimisers_agree =
  QCheck.Test.make ~count:200 ~name:"golden and brent agree on quadratics"
    QCheck.(pair (float_range (-5.0) 5.0) (float_range 0.1 10.0))
    (fun (c, w) ->
      let f x = ((x -. c) /. w) ** 2.0 in
      let g = O.golden_section f (c -. (3.0 *. w)) (c +. (2.0 *. w)) in
      let b = O.brent_min f (c -. (3.0 *. w)) (c +. (2.0 *. w)) in
      Float.abs (g.O.xmin -. b.O.xmin) <= 1e-4 *. (1.0 +. Float.abs c))

let prop_grid_never_worse_than_lattice =
  QCheck.Test.make ~count:200 ~name:"refined grid is at least as good"
    QCheck.(float_range 0.05 0.95)
    (fun c ->
      let f x = Float.abs (x -. c) in
      let coarse = O.grid ~refine:false ~n:20 f 0.0 1.0 in
      let fine = O.grid ~refine:true ~n:20 f 0.0 1.0 in
      fine.O.fmin <= coarse.O.fmin +. 1e-12)

let () =
  Alcotest.run "optimize"
    [
      ( "unit",
        [
          Alcotest.test_case "golden section" `Quick test_golden_section;
          Alcotest.test_case "brent min" `Quick test_brent_min;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "grid invalid points" `Quick test_grid_invalid_points;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_minimisers_agree;
          QCheck_alcotest.to_alcotest prop_grid_never_worse_than_lattice;
        ] );
    ]
