(* Tests for expected-cost evaluation: Eq. (4) against hand-derived
   closed forms (the Sect. 2.3 examples) and against direct Eq. (3)
   integration and Monte-Carlo. *)

module C = Stochastic_core.Cost_model
module S = Stochastic_core.Sequence
module E = Stochastic_core.Expected_cost
module Dist = Distributions.Dist

let rel_close ?(tol = 1e-9) name expected got =
  let scale = Float.max 1.0 (Float.abs expected) in
  if Float.abs (got -. expected) /. scale > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" name expected got

let test_omniscient () =
  let d = Distributions.Uniform_dist.default in
  rel_close "reservation only" 15.0 (E.omniscient C.reservation_only d);
  let m = C.make ~alpha:0.95 ~beta:1.0 ~gamma:1.05 () in
  rel_close "neuro model" ((1.95 *. 15.0) +. 1.05) (E.omniscient m d)

let test_uniform_example_section23 () =
  (* The paper's first worked example: Uniform(a, b) with the two-step
     sequence S = ((a+b)/2, b). Closed form derived by direct
     integration of Eq. (3). *)
  let a = 10.0 and b = 20.0 in
  let d = Distributions.Uniform_dist.make ~a ~b in
  let alpha = 1.0 and beta = 0.5 and gamma = 0.25 in
  let m = C.make ~alpha ~beta ~gamma () in
  let mid = 0.5 *. (a +. b) in
  let s = S.of_list [ mid; b ] in
  (* First half of the mass succeeds at t1 = mid; second half pays the
     full failed first slot plus the second reservation. *)
  let expected =
    (0.5 *. ((alpha *. mid) +. (beta *. ((a +. mid) /. 2.0)) +. gamma))
    +. 0.5
       *. ((alpha *. mid) +. (beta *. mid) +. gamma
          +. (alpha *. b)
          +. (beta *. ((mid +. b) /. 2.0))
          +. gamma)
  in
  rel_close "Sect. 2.3 uniform example" expected (E.exact m d s);
  (* Cross-check by direct Eq. (3) integration. *)
  let direct =
    Numerics.Integrate.gauss_kronrod ~initial:8
      (fun t -> snd (S.cost_of_run m s t) *. d.Dist.pdf t)
      a b
  in
  rel_close "Eq. (3) direct integration" direct (E.exact m d s)

let test_exponential_unit_steps () =
  (* For Exp(lambda) and the arithmetic sequence t_i = i/lambda under
     RESERVATIONONLY, Eq. (4) gives
     E = sum_(i>=0) (i+1)/lambda e^-i = (1/lambda) (1/(1-e^-1)
         + e^-1/(1-e^-1)^2)... easier: E = 1/lambda sum (i+1) x^i with
     x = e^-1, = 1/lambda * 1/(1-x)^2. *)
  let lambda = 2.0 in
  let d = Distributions.Exponential.make ~rate:lambda in
  let s =
    Seq.ints 1 |> Seq.map (fun i -> float_of_int i /. lambda)
  in
  let x = exp (-1.0) in
  let expected = 1.0 /. lambda /. ((1.0 -. x) ** 2.0) in
  rel_close "geometric series closed form" expected
    (E.exact C.reservation_only d s)

let test_exact_vs_direct_integration () =
  (* Arbitrary model and sequence on LogNormal: Eq. (4) must equal the
     direct expectation of C(k, t). *)
  let d = Distributions.Lognormal.default in
  let m = C.make ~alpha:1.1 ~beta:0.4 ~gamma:0.3 () in
  let s =
    S.sanitize ~support:d.Dist.support
      (List.to_seq [ 10.0; 25.0; 60.0; 150.0 ])
  in
  let eq4 = E.exact m d s in
  let direct =
    Numerics.Integrate.to_infinity
      (fun t -> snd (S.cost_of_run m s t) *. d.Dist.pdf t)
      0.0
  in
  rel_close "Eq. (4) = Eq. (3)" direct eq4 ~tol:1e-6

let test_monte_carlo_converges_to_exact () =
  let d = Distributions.Gamma_dist.default in
  let m = C.make ~alpha:1.0 ~beta:0.5 ~gamma:0.2 () in
  let s = Stochastic_core.Heuristics.mean_by_mean d in
  let exact = E.exact m d s in
  let rng = Randomness.Rng.create ~seed:404 () in
  let mc = E.monte_carlo m d rng ~n:200_000 s in
  rel_close "MC -> exact" exact mc ~tol:0.01

let test_presampled_reuse () =
  let d = Distributions.Exponential.default in
  let m = C.reservation_only in
  let rng = Randomness.Rng.create ~seed:9 () in
  let samples = Dist.samples d rng 1000 in
  Array.sort compare samples;
  let s1 = S.sanitize ~support:d.Dist.support (List.to_seq [ 1.0 ]) in
  let c1 = E.mean_cost_presampled m ~sorted_samples:samples s1 in
  let c1' = E.mean_cost_presampled m ~sorted_samples:samples s1 in
  rel_close "deterministic on shared samples" c1 c1'

let test_normalized () =
  let d = Distributions.Uniform_dist.default in
  let m = C.reservation_only in
  rel_close "normalized by omniscient" 2.0 (E.normalized m d ~cost:30.0)

let test_normalized_at_least_one () =
  (* Any valid sequence costs at least the omniscient schedule. *)
  List.iter
    (fun (name, d) ->
      let m = C.make ~alpha:1.0 ~beta:0.7 ~gamma:0.1 () in
      let s = Stochastic_core.Heuristics.mean_stdev d in
      let r = E.normalized m d ~cost:(E.exact m d s) in
      if r < 1.0 -. 1e-9 then
        Alcotest.failf "%s: normalized cost %.6f below 1" name r)
    Distributions.Table1.all

let prop_exact_monotone_in_gamma =
  QCheck.Test.make ~count:100 ~name:"expected cost increases with gamma"
    QCheck.(pair (float_range 0.0 2.0) (float_range 0.0 2.0))
    (fun (g1, g2) ->
      let d = Distributions.Exponential.default in
      let s () = Stochastic_core.Heuristics.mean_doubling d in
      let lo = Float.min g1 g2 and hi = Float.max g1 g2 in
      let c g = E.exact (C.make ~gamma:g ()) d (s ()) in
      c lo <= c hi +. 1e-9)

let prop_any_sequence_beats_omniscient =
  QCheck.Test.make ~count:200
    ~name:"every valid sequence costs at least the omniscient schedule"
    QCheck.(
      pair
        (oneofl (List.map snd Distributions.Table1.all))
        (list_of_size Gen.(int_range 0 10) (float_range 0.01 30.0)))
    (fun (d, raw) ->
      (* C(k, t) >= alpha t + beta t + gamma pointwise because the
         successful reservation satisfies t_k >= t, so the expectation
         dominates E^o. *)
      let m = C.make ~alpha:1.0 ~beta:0.6 ~gamma:0.2 () in
      let s =
        Stochastic_core.Sequence.sanitize ~support:d.Dist.support
          (List.to_seq (List.sort_uniq compare raw))
      in
      E.exact m d s >= E.omniscient m d -. 1e-6)

let () =
  Alcotest.run "expected_cost"
    [
      ( "unit",
        [
          Alcotest.test_case "omniscient" `Quick test_omniscient;
          Alcotest.test_case "Sect. 2.3 uniform example" `Quick
            test_uniform_example_section23;
          Alcotest.test_case "exponential unit steps" `Quick
            test_exponential_unit_steps;
          Alcotest.test_case "Eq. (4) vs Eq. (3)" `Quick
            test_exact_vs_direct_integration;
          Alcotest.test_case "MC converges" `Slow test_monte_carlo_converges_to_exact;
          Alcotest.test_case "presampled reuse" `Quick test_presampled_reuse;
          Alcotest.test_case "normalized" `Quick test_normalized;
          Alcotest.test_case "normalized >= 1" `Quick test_normalized_at_least_one;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_exact_monotone_in_gamma;
          QCheck_alcotest.to_alcotest prop_any_sequence_beats_omniscient;
        ] );
    ]
