(* Tests for the job-flow simulator. *)

module Sim = Platform.Simulator
module C = Stochastic_core.Cost_model
module S = Stochastic_core.Sequence

let close ?(tol = 1e-9) name expected got =
  Alcotest.(check (float tol)) name expected got

let test_run_job_hand_example () =
  (* Sequence (2, 5), job of 3: two reservations, reserved 7 in
     total, wasted 7 - 3 = 4. *)
  let m = C.make ~alpha:1.0 ~beta:0.5 ~gamma:0.1 () in
  let s = S.of_list [ 2.0; 5.0 ] in
  let o = Sim.run_job m s ~duration:3.0 in
  Alcotest.(check int) "reservations" 2 o.Sim.reservations_used;
  close "total reserved" 7.0 o.Sim.total_reserved;
  close "wasted" 4.0 o.Sim.wasted;
  close "cost matches Eq. (2)"
    ((2.0 +. 1.0 +. 0.1) +. (5.0 +. 1.5 +. 0.1))
    o.Sim.total_cost

let test_run_job_first_shot () =
  let m = C.reservation_only in
  let s = S.of_list [ 4.0 ] in
  let o = Sim.run_job m s ~duration:4.0 in
  Alcotest.(check int) "one reservation" 1 o.Sim.reservations_used;
  close "no wasted time" 0.0 o.Sim.wasted

let test_report_consistency () =
  let m = C.neuro_hpc in
  let d = Distributions.Lognormal.of_moments ~mean:0.348 ~std:0.072 in
  let seq = Stochastic_core.Heuristics.mean_stdev d in
  let rng = Randomness.Rng.create ~seed:10 () in
  let r = Sim.run ~jobs:500 m d seq rng in
  Alcotest.(check int) "job count" 500 r.Sim.jobs;
  Alcotest.(check int) "outcome count" 500 (Array.length r.Sim.outcomes);
  Alcotest.(check bool) "utilization in (0, 1]" true
    (r.Sim.utilization > 0.0 && r.Sim.utilization <= 1.0 +. 1e-9);
  Alcotest.(check bool) "p95 above mean floor" true
    (r.Sim.p95_cost >= r.Sim.mean_cost *. 0.5);
  Alcotest.(check bool) "max reservations sane" true
    (r.Sim.max_reservations >= 1 && r.Sim.max_reservations < 100);
  (* mean_cost equals the mean over outcomes. *)
  let manual =
    Array.fold_left (fun acc o -> acc +. o.Sim.total_cost) 0.0 r.Sim.outcomes
    /. 500.0
  in
  close "mean cost consistent" manual r.Sim.mean_cost ~tol:1e-9

let test_report_matches_expected_cost () =
  (* Large-sample simulated mean approaches the exact expectation. *)
  let m = C.reservation_only in
  let d = Distributions.Exponential.default in
  let seq () = Stochastic_core.Heuristics.mean_doubling d in
  let exact = Stochastic_core.Expected_cost.exact m d (seq ()) in
  let rng = Randomness.Rng.create ~seed:11 () in
  let r = Sim.run ~jobs:100_000 m d (seq ()) rng in
  Alcotest.(check bool) "simulated mean near exact" true
    (Float.abs (r.Sim.mean_cost -. exact) < 0.05 *. exact)

let test_wasted_nonnegative () =
  let m = C.reservation_only in
  let d = Distributions.Gamma_dist.default in
  let seq = Stochastic_core.Heuristics.mean_by_mean d in
  let rng = Randomness.Rng.create ~seed:12 () in
  let r = Sim.run ~jobs:1000 m d seq rng in
  Array.iter
    (fun o ->
      if o.Sim.wasted < -1e-9 then
        Alcotest.failf "negative waste %g" o.Sim.wasted)
    r.Sim.outcomes

let test_jobs_validation () =
  let m = C.reservation_only in
  let d = Distributions.Exponential.default in
  let seq = Stochastic_core.Heuristics.mean_doubling d in
  let rng = Randomness.Rng.create () in
  Alcotest.(check bool) "jobs = 0 rejected" true
    (try ignore (Sim.run ~jobs:0 m d seq rng); false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "simulator"
    [
      ( "unit",
        [
          Alcotest.test_case "hand example" `Quick test_run_job_hand_example;
          Alcotest.test_case "first shot" `Quick test_run_job_first_shot;
          Alcotest.test_case "report consistency" `Quick test_report_consistency;
          Alcotest.test_case "matches expectation" `Slow
            test_report_matches_expected_cost;
          Alcotest.test_case "waste nonnegative" `Quick test_wasted_nonnegative;
          Alcotest.test_case "jobs validation" `Quick test_jobs_validation;
        ] );
    ]
