(* Tests for the moldable-job (time x processors) extension, plus the
   Dist.scale helper it relies on. *)

module M = Stochastic_core.Moldable
module C = Stochastic_core.Cost_model
module Dist = Distributions.Dist

let rel_close ?(tol = 1e-9) name expected got =
  let scale = Float.max 1.0 (Float.abs expected) in
  if Float.abs (got -. expected) /. scale > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" name expected got

(* --------------------------- Dist.scale --------------------------- *)

let test_scale_fields () =
  let d = Distributions.Exponential.make ~rate:2.0 in
  let s = Dist.scale 3.0 d in
  rel_close "scaled mean" 1.5 s.Dist.mean;
  rel_close "scaled variance" (9.0 *. 0.25) s.Dist.variance;
  rel_close "scaled quantile" (3.0 *. d.Dist.quantile 0.4) (s.Dist.quantile 0.4);
  rel_close "scaled cdf" (d.Dist.cdf 1.0) (s.Dist.cdf 3.0);
  rel_close "scaled pdf" (d.Dist.pdf 1.0 /. 3.0) (s.Dist.pdf 3.0);
  rel_close "scaled conditional mean" (3.0 *. d.Dist.conditional_mean 1.0)
    (s.Dist.conditional_mean 3.0);
  (* pdf still integrates to 1. *)
  rel_close "scaled pdf mass" 1.0 (Numerics.Integrate.to_infinity s.Dist.pdf 0.0)
    ~tol:1e-7

let test_scale_bounded_support () =
  let u = Distributions.Uniform_dist.default in
  let s = Dist.scale 0.5 u in
  rel_close "lower" 5.0 (Dist.lower s);
  rel_close "upper" 10.0 (Dist.upper s);
  Dist.check s

let test_scale_validation () =
  Alcotest.(check bool) "c = 0 rejected" true
    (try ignore (Dist.scale 0.0 Distributions.Exponential.default); false
     with Invalid_argument _ -> true)

(* --------------------------- speedups ----------------------------- *)

let test_speedup_factors () =
  rel_close "linear" 8.0 (M.speedup_factor M.Linear 8);
  rel_close "amdahl serial" 1.0 (M.speedup_factor (M.Amdahl 0.0) 64);
  rel_close "amdahl perfect" 16.0 (M.speedup_factor (M.Amdahl 1.0) 16);
  (* f = 0.9, p = 9: 1 / (0.1 + 0.1) = 5. *)
  rel_close "amdahl interior" 5.0 (M.speedup_factor (M.Amdahl 0.9) 9);
  rel_close "power" (sqrt 16.0) (M.speedup_factor (M.Power 0.5) 16);
  Alcotest.(check bool) "p = 0 rejected" true
    (try ignore (M.speedup_factor M.Linear 0); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad fraction rejected" true
    (try ignore (M.speedup_factor (M.Amdahl 1.5) 2); false
     with Invalid_argument _ -> true)

let test_cost_model_scaling () =
  let m = C.make ~alpha:0.5 ~beta:1.0 ~gamma:0.2 () in
  let m4 = M.cost_model_for m ~procs:4 in
  rel_close "alpha scaled" 2.0 m4.C.alpha;
  rel_close "beta unscaled" 1.0 m4.C.beta;
  rel_close "gamma unscaled" 0.2 m4.C.gamma

(* ----------------------- structural facts ------------------------- *)

let test_linear_area_only_is_p_invariant () =
  (* With linear speedup, the reserved area needed to cover the work
     is independent of p, so for beta = 0 every processor count costs
     the same (and, in fact, for any beta the scaled problem maps
     exactly onto the p = 1 problem when beta = 0). *)
  let d = Distributions.Exponential.default in
  let cost = C.reservation_only in
  let r = M.optimize ~max_procs:6 ~m:400 M.Linear cost d in
  let _, c1 = r.M.per_procs.(0) in
  (* The continuum optima coincide exactly; the brute-force grids do
     not scale with p (the Theorem 2 bound A1 is affine, not linear,
     in the distribution scale), so allow grid-resolution slack. *)
  Array.iter
    (fun (p, c) ->
      if Float.abs (c -. c1) > 2e-3 *. c1 then
        Alcotest.failf "p = %d: cost %.6f differs from p = 1 cost %.6f" p c c1)
    r.M.per_procs

let test_linear_with_wallclock_prefers_more_procs () =
  (* beta > 0 charges wall-clock time: with perfect scaling, more
     processors strictly reduce the wall-clock term at no area
     penalty. *)
  let d = Distributions.Exponential.default in
  let cost = C.make ~alpha:1.0 ~beta:2.0 ~gamma:0.0 () in
  let r = M.optimize ~max_procs:8 ~m:400 M.Linear cost d in
  Alcotest.(check int) "max procs optimal" 8 r.M.procs;
  (* And the profile is nonincreasing in p. *)
  let prev = ref infinity in
  Array.iter
    (fun (_, c) ->
      if c > !prev +. 1e-9 then Alcotest.fail "profile not nonincreasing";
      prev := c)
    r.M.per_procs

let test_serial_job_prefers_one_proc () =
  (* Amdahl f = 0: no speedup at all; extra processors only multiply
     the area bill. *)
  let d = Distributions.Lognormal.default in
  let cost = C.make ~alpha:1.0 ~beta:1.0 ~gamma:0.1 () in
  let r = M.optimize ~max_procs:6 ~m:300 (M.Amdahl 0.0) cost d in
  Alcotest.(check int) "p = 1 optimal" 1 r.M.procs

let test_amdahl_interior_optimum () =
  (* f = 0.95 with expensive wall-clock time: parallelism pays up to
     the point where the serial fraction dominates the area bill. *)
  let d = Distributions.Lognormal.default in
  let cost = C.make ~alpha:0.05 ~beta:1.0 ~gamma:0.0 () in
  let r = M.optimize ~max_procs:64 ~m:300 (M.Amdahl 0.95) cost d in
  Alcotest.(check bool)
    (Printf.sprintf "interior optimum (got p = %d)" r.M.procs)
    true
    (r.M.procs > 1 && r.M.procs < 64)

let test_result_consistency () =
  let d = Distributions.Gamma_dist.default in
  let cost = C.make ~alpha:0.2 ~beta:1.0 ~gamma:0.05 () in
  let r = M.optimize ~max_procs:8 ~m:300 (M.Power 0.7) cost d in
  (* The reported cost equals the profile's entry at the chosen p. *)
  let _, c = r.M.per_procs.(r.M.procs - 1) in
  rel_close "cost matches profile" c r.M.expected_cost;
  Alcotest.(check bool) "t1 positive" true (r.M.t1 > 0.0);
  (* The chosen p is the argmin of the profile. *)
  Array.iter
    (fun (_, c') ->
      if c' < r.M.expected_cost -. 1e-12 then
        Alcotest.fail "profile has a cheaper entry than the reported optimum")
    r.M.per_procs

let prop_runtime_distribution_mean =
  QCheck.Test.make ~count:100 ~name:"runtime mean = work mean / speedup"
    QCheck.(pair (int_range 1 64) (float_range 0.1 1.0))
    (fun (p, f) ->
      let d = Distributions.Weibull.default in
      let s = M.Amdahl f in
      let r = M.runtime_distribution s ~procs:p d in
      Float.abs
        (r.Dist.mean -. (d.Dist.mean /. M.speedup_factor s p))
      <= 1e-9)

let () =
  Alcotest.run "moldable"
    [
      ( "scale",
        [
          Alcotest.test_case "fields" `Quick test_scale_fields;
          Alcotest.test_case "bounded support" `Quick test_scale_bounded_support;
          Alcotest.test_case "validation" `Quick test_scale_validation;
        ] );
      ( "unit",
        [
          Alcotest.test_case "speedup factors" `Quick test_speedup_factors;
          Alcotest.test_case "cost model scaling" `Quick test_cost_model_scaling;
          Alcotest.test_case "linear area-only invariance" `Quick
            test_linear_area_only_is_p_invariant;
          Alcotest.test_case "linear + wall-clock" `Quick
            test_linear_with_wallclock_prefers_more_procs;
          Alcotest.test_case "serial job" `Quick test_serial_job_prefers_one_proc;
          Alcotest.test_case "Amdahl interior optimum" `Slow
            test_amdahl_interior_optimum;
          Alcotest.test_case "result consistency" `Quick test_result_consistency;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_runtime_distribution_mean ] );
    ]
