(* Tests for the uniform strategy interface. *)

module St = Stochastic_core.Strategy
module C = Stochastic_core.Cost_model
module Dist = Distributions.Dist

let test_table2_roster () =
  let roster = St.table2 () in
  Alcotest.(check int) "seven strategies" 7 (List.length roster);
  Alcotest.(check string) "brute force first" "Brute-Force"
    (List.hd roster).St.name;
  let names = List.map (fun s -> s.St.name) roster in
  Alcotest.(check bool) "contains equal-time" true
    (List.mem "Equal-time" names);
  Alcotest.(check bool) "contains equal-probability" true
    (List.mem "Equal-probability" names)

let test_evaluate_on_deterministic () =
  let d = Distributions.Gamma_dist.default in
  let rng = Randomness.Rng.create ~seed:8 () in
  let samples = Dist.samples d rng 500 in
  Array.sort compare samples;
  let v1 = St.evaluate_on C.reservation_only d ~sorted_samples:samples St.mean_stdev in
  let v2 = St.evaluate_on C.reservation_only d ~sorted_samples:samples St.mean_stdev in
  Alcotest.(check (float 0.0)) "same samples, same value" v1 v2;
  Alcotest.(check bool) "normalized >= 1 - noise" true (v1 > 0.9)

let test_evaluate_uses_fresh_samples () =
  let d = Distributions.Gamma_dist.default in
  let rng = Randomness.Rng.create ~seed:8 () in
  let a = St.evaluate ~n:300 ~rng C.reservation_only d St.mean_stdev in
  let b = St.evaluate ~n:300 ~rng C.reservation_only d St.mean_stdev in
  (* The stream advances, so two calls use different draws. *)
  Alcotest.(check bool) "different draws differ" true (a <> b)

let test_all_strategies_run_on_all_distributions () =
  let roster =
    (* Cheap brute force + small discretizations keep this fast. *)
    [
      St.brute_force ~m:150 ~n:200 ();
      St.mean_by_mean;
      St.mean_stdev;
      St.mean_doubling;
      St.median_by_median;
      St.dp_discretized ~scheme:Stochastic_core.Discretize.Equal_time ~n:100 ();
      St.dp_discretized ~scheme:Stochastic_core.Discretize.Equal_probability
        ~n:100 ();
    ]
  in
  List.iter
    (fun (dname, d) ->
      List.iter
        (fun s ->
          let rng = Randomness.Rng.create ~seed:4 () in
          let v = St.evaluate ~n:400 ~rng C.reservation_only d s in
          if not (Float.is_finite v) || v <= 0.0 then
            Alcotest.failf "%s on %s: bad value %g" s.St.name dname v;
          if v > 25.0 then
            Alcotest.failf "%s on %s: absurd normalized cost %g" s.St.name
              dname v)
        roster)
    Distributions.Table1.all

let test_neuro_model_runs () =
  (* The strategies must also work under the NeuroHPC cost model. *)
  let d = Distributions.Lognormal.of_moments ~mean:0.348 ~std:0.072 in
  let rng = Randomness.Rng.create ~seed:14 () in
  let v = St.evaluate ~n:500 ~rng C.neuro_hpc d St.mean_by_mean in
  Alcotest.(check bool) "finite and >= 1 - noise" true
    (Float.is_finite v && v > 0.9 && v < 10.0)

let () =
  Alcotest.run "strategy"
    [
      ( "unit",
        [
          Alcotest.test_case "table2 roster" `Quick test_table2_roster;
          Alcotest.test_case "evaluate_on deterministic" `Quick
            test_evaluate_on_deterministic;
          Alcotest.test_case "evaluate fresh samples" `Quick
            test_evaluate_uses_fresh_samples;
          Alcotest.test_case "all strategies x all distributions" `Slow
            test_all_strategies_run_on_all_distributions;
          Alcotest.test_case "neuro model" `Quick test_neuro_model_runs;
        ] );
    ]
