(* Tests for the online-learning scheduling loop. *)

module O = Platform.Online
module C = Stochastic_core.Cost_model

let cfg_small =
  {
    O.warmup = 5;
    refit_every = 10;
    strategy = Stochastic_core.Strategy.brute_force ~m:200 ~n:300 ~seed:5 ();
  }

let test_shapes () =
  let truth = Distributions.Lognormal.of_moments ~mean:5.0 ~std:1.5 in
  let rng = Randomness.Rng.create ~seed:3 () in
  let t = O.run ~config:cfg_small ~jobs:100 C.reservation_only truth rng in
  Alcotest.(check int) "one cost per job" 100 (Array.length t.O.costs);
  Alcotest.(check int) "prefix means aligned" 100
    (Array.length t.O.normalized_prefix_mean);
  Alcotest.(check bool) "at least one refit" true (t.O.refits >= 1);
  Array.iter
    (fun c -> if c <= 0.0 then Alcotest.failf "non-positive cost %g" c)
    t.O.costs

let test_learning_improves () =
  (* After learning, the steady-state normalized cost should be close
     to the known-distribution optimum and clearly better than the
     early phase. *)
  let truth = Distributions.Lognormal.of_moments ~mean:5.0 ~std:1.5 in
  let rng = Randomness.Rng.create ~seed:7 () in
  let t = O.run ~config:cfg_small ~jobs:800 C.reservation_only truth rng in
  let steady = O.final_normalized t in
  Alcotest.(check bool)
    (Printf.sprintf "steady-state %.3f within range" steady)
    true
    (steady > 0.8 && steady < 2.5);
  (* The running mean should not be increasing at the end (learning
     converged). *)
  let n = Array.length t.O.normalized_prefix_mean in
  let early = t.O.normalized_prefix_mean.(min 20 (n - 1)) in
  let late = t.O.normalized_prefix_mean.(n - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "late mean %.3f <= early mean %.3f + slack" late early)
    true
    (late <= early +. 0.35)

let test_validation () =
  let truth = Distributions.Exponential.default in
  let rng = Randomness.Rng.create () in
  Alcotest.(check bool) "jobs = 0 rejected" true
    (try ignore (O.run ~jobs:0 C.reservation_only truth rng); false
     with Invalid_argument _ -> true)

let test_deterministic () =
  let truth = Distributions.Gamma_dist.default in
  let run () =
    let rng = Randomness.Rng.create ~seed:11 () in
    (O.run ~config:cfg_small ~jobs:60 C.reservation_only truth rng).O.costs
  in
  Alcotest.(check (array (float 0.0))) "same seed, same trajectory" (run ())
    (run ())

let () =
  Alcotest.run "online"
    [
      ( "unit",
        [
          Alcotest.test_case "shapes" `Quick test_shapes;
          Alcotest.test_case "learning improves" `Slow test_learning_improves;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
    ]
