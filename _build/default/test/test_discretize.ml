(* Tests for the Sect. 4.2.1 truncation/discretization schemes. *)

module D = Stochastic_core.Discretize
module Disc = Distributions.Discrete
module Dist = Distributions.Dist

let rel_close ?(tol = 1e-9) name expected got =
  let scale = Float.max 1.0 (Float.abs expected) in
  if Float.abs (got -. expected) /. scale > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" name expected got

let test_truncation_point () =
  let u = Distributions.Uniform_dist.default in
  rel_close "bounded: upper bound" 20.0 (D.truncation_point u);
  let e = Distributions.Exponential.default in
  rel_close "unbounded: Q(1 - eps)" (-.log 1e-7) (D.truncation_point e);
  rel_close "custom eps" (-.log 1e-3) (D.truncation_point ~eps:1e-3 e)

let test_equal_probability_uniform () =
  (* Equal-probability on Uniform(10, 20) with n = 5 gives the
     quantiles 12, 14, 16, 18, 20, each with probability 0.2. *)
  let d = D.run D.Equal_probability ~n:5 Distributions.Uniform_dist.default in
  Alcotest.(check (array (float 1e-9))) "values"
    [| 12.0; 14.0; 16.0; 18.0; 20.0 |] d.Disc.values;
  Array.iter (fun p -> rel_close "each prob = 0.2" 0.2 p) d.Disc.probs

let test_equal_time_uniform () =
  (* Equal-time on Uniform gives the same lattice (uniform density). *)
  let d = D.run D.Equal_time ~n:5 Distributions.Uniform_dist.default in
  Alcotest.(check (array (float 1e-9))) "values"
    [| 12.0; 14.0; 16.0; 18.0; 20.0 |] d.Disc.values;
  Array.iter (fun p -> rel_close "each prob = 0.2" 0.2 p) d.Disc.probs

let test_equal_time_spacing () =
  let e = Distributions.Exponential.default in
  let d = D.run D.Equal_time ~n:100 e in
  let b = D.truncation_point e in
  let step = b /. 100.0 in
  Array.iteri
    (fun i v -> rel_close (Printf.sprintf "lattice %d" i)
        (float_of_int (i + 1) *. step) v)
    d.Disc.values

let test_mass_is_one_minus_eps () =
  (* Sect. 4.2.1's observation: probabilities sum to F(b) = 1 - eps for
     unbounded support. *)
  let e = Distributions.Exponential.default in
  let dp = D.run D.Equal_probability ~n:50 e in
  rel_close "equal-prob mass" (1.0 -. 1e-7) (Disc.total_mass dp) ~tol:1e-9;
  let dt = D.run D.Equal_time ~n:50 e in
  rel_close "equal-time mass" (1.0 -. 1e-7) (Disc.total_mass dt) ~tol:1e-6;
  (* Bounded support: full mass. *)
  let u = D.run D.Equal_time ~n:50 Distributions.Uniform_dist.default in
  rel_close "bounded mass" 1.0 (Disc.total_mass u)

let test_equal_probability_mass_per_point () =
  let e = Distributions.Exponential.default in
  let d = D.run D.Equal_probability ~n:40 e in
  Array.iter
    (fun p -> rel_close "f_i = F(b)/n" ((1.0 -. 1e-7) /. 40.0) p)
    d.Disc.probs

let test_last_point_is_truncation () =
  (* Equal-time places v_n = b by construction; Equal-probability
     places v_n = Q(F(b)), which matches b only up to the quantile
     solver's tail conditioning — so compare in probability space
     instead of value space. *)
  List.iter
    (fun (name, dist) ->
      List.iter
        (fun scheme ->
          let d = D.run scheme ~n:64 dist in
          let n = Disc.size d in
          let v_n = d.Disc.values.(n - 1) in
          let tail = Dist.sf dist v_n in
          if tail > 2.0 *. 1e-7 then
            Alcotest.failf "%s/%s: v_n leaves tail mass %.3g" name
              (D.scheme_name scheme) tail)
        [ D.Equal_probability; D.Equal_time ])
    Distributions.Table1.all

let test_validation () =
  Alcotest.(check bool) "n = 0 rejected" true
    (try ignore (D.run D.Equal_time ~n:0 Distributions.Exponential.default); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad eps rejected" true
    (try ignore (D.truncation_point ~eps:2.0 Distributions.Exponential.default); false
     with Invalid_argument _ -> true)

let test_moments_approach_continuous () =
  (* The discretized law's mean converges to the continuous mean.
     Equal-time is tight; Equal-probability systematically overweights
     the far tail (its last point carries Q(1 - eps)/n), so it only
     gets a loose bound on heavy-tailed laws — the same bias visible
     in the paper's Table 4 at small n. *)
  List.iter
    (fun (name, dist) ->
      let dt = D.run D.Equal_time ~n:2000 dist in
      let m = Disc.mean dt in
      (* Equal-time assigns each lattice cell's mass to its right
         endpoint, so its mean carries an inherent upward bias of
         about half a lattice step. *)
      let step =
        (D.truncation_point dist -. Dist.lower dist) /. 2000.0
      in
      let tol = (0.02 *. Float.max 1.0 dist.Dist.mean) +. (0.6 *. step) in
      if Float.abs (m -. dist.Dist.mean) > tol then
        Alcotest.failf "%s: equal-time mean %.6g vs continuous %.6g" name m
          dist.Dist.mean;
      let dp = D.run D.Equal_probability ~n:2000 dist in
      let mp = Disc.mean dp in
      let tolp = 0.12 *. Float.max 1.0 dist.Dist.mean in
      if Float.abs (mp -. dist.Dist.mean) > tolp then
        Alcotest.failf "%s: equal-prob mean %.6g vs continuous %.6g" name mp
          dist.Dist.mean)
    Distributions.Table1.all

let prop_values_strictly_increasing =
  QCheck.Test.make ~count:100 ~name:"discretization values increase"
    QCheck.(pair (oneofl (List.map snd Distributions.Table1.all))
              (pair (oneofl [ D.Equal_probability; D.Equal_time ])
                 (int_range 2 200)))
    (fun (dist, (scheme, n)) ->
      let d = D.run scheme ~n dist in
      let ok = ref true in
      Array.iteri
        (fun i v -> if i > 0 && v <= d.Disc.values.(i - 1) then ok := false)
        d.Disc.values;
      !ok)

let () =
  Alcotest.run "discretize"
    [
      ( "unit",
        [
          Alcotest.test_case "truncation point" `Quick test_truncation_point;
          Alcotest.test_case "equal-prob uniform" `Quick
            test_equal_probability_uniform;
          Alcotest.test_case "equal-time uniform" `Quick test_equal_time_uniform;
          Alcotest.test_case "equal-time lattice" `Quick test_equal_time_spacing;
          Alcotest.test_case "mass = 1 - eps" `Quick test_mass_is_one_minus_eps;
          Alcotest.test_case "equal-prob masses" `Quick
            test_equal_probability_mass_per_point;
          Alcotest.test_case "last point = b" `Quick test_last_point_is_truncation;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "moments converge" `Quick
            test_moments_approach_continuous;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_values_strictly_increasing ] );
    ]
