(* Tests for the xoshiro256++ generator. *)

module Rng = Randomness.Rng

let test_determinism () =
  let a = Rng.create ~seed:123 () in
  let b = Rng.create ~seed:123 () in
  for i = 1 to 100 do
    Alcotest.(check int64)
      (Printf.sprintf "draw %d matches" i)
      (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 () in
  let b = Rng.create ~seed:2 () in
  Alcotest.(check bool) "different seeds diverge" true
    (Rng.bits64 a <> Rng.bits64 b)

let test_copy () =
  let a = Rng.create ~seed:9 () in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a)
    (Rng.bits64 b)

let test_split_independence () =
  let a = Rng.create ~seed:9 () in
  let b = Rng.split a in
  (* The split stream must differ from the parent's continuation. *)
  let xa = Rng.bits64 a and xb = Rng.bits64 b in
  Alcotest.(check bool) "split diverges from parent" true (xa <> xb)

let test_float_range () =
  let rng = Rng.create () in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of [0,1): %g" x
  done

let test_float_open_positive () =
  let rng = Rng.create () in
  for _ = 1 to 10_000 do
    if Rng.float_open rng <= 0.0 then Alcotest.fail "float_open returned <= 0"
  done

let test_uniform () =
  let rng = Rng.create () in
  for _ = 1 to 1000 do
    let x = Rng.uniform rng 3.0 7.0 in
    if x < 3.0 || x >= 7.0 then Alcotest.failf "uniform out of range: %g" x
  done;
  Alcotest.check_raises "a > b rejected" (Invalid_argument "Rng.uniform: a > b")
    (fun () -> ignore (Rng.uniform rng 7.0 3.0))

let test_int_range_and_coverage () =
  let rng = Rng.create () in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let k = Rng.int rng 10 in
    if k < 0 || k >= 10 then Alcotest.failf "int out of range: %d" k;
    counts.(k) <- counts.(k) + 1
  done;
  (* Rough uniformity: every bucket within 40% of the expectation. *)
  Array.iteri
    (fun i c ->
      if c < 600 || c > 1400 then
        Alcotest.failf "bucket %d has suspicious count %d" i c)
    counts;
  Alcotest.check_raises "n = 0 rejected"
    (Invalid_argument "Rng.int: n must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_mean_of_uniform () =
  let rng = Rng.create ~seed:5 () in
  let n = 100_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.float rng
  done;
  Alcotest.(check (float 0.005)) "mean ~ 0.5" 0.5 (!acc /. float_of_int n)

let test_shuffle_is_permutation () =
  let rng = Rng.create ~seed:3 () in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 (fun i -> i)) sorted

let prop_int_bounds =
  QCheck.Test.make ~count:500 ~name:"int n stays in [0, n)"
    QCheck.(pair (int_range 1 1_000_000) small_int)
    (fun (n, seed) ->
      let rng = Rng.create ~seed () in
      let k = Rng.int rng n in
      k >= 0 && k < n)

let () =
  Alcotest.run "rng"
    [
      ( "unit",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy;
          Alcotest.test_case "split" `Quick test_split_independence;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "float_open positive" `Quick test_float_open_positive;
          Alcotest.test_case "uniform" `Quick test_uniform;
          Alcotest.test_case "int coverage" `Quick test_int_range_and_coverage;
          Alcotest.test_case "uniform mean" `Quick test_mean_of_uniform;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_is_permutation;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_int_bounds ]);
    ]
