(* Tests for the BRUTE-FORCE heuristic (Sect. 4.1). *)

module B = Stochastic_core.Brute_force
module C = Stochastic_core.Cost_model
module E = Stochastic_core.Expected_cost
module Dist = Distributions.Dist

let rel_close ?(tol = 1e-6) name expected got =
  let scale = Float.max 1.0 (Float.abs expected) in
  if Float.abs (got -. expected) /. scale > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" name expected got

let test_uniform_finds_theorem4_optimum () =
  (* Theorem 4: optimal sequence for Uniform(a, b) is the single
     reservation (b), for any cost parameters. *)
  List.iter
    (fun m ->
      let d = Distributions.Uniform_dist.default in
      let r = B.search ~m:1000 ~evaluator:B.Exact m d in
      rel_close "t1 = b" 20.0 r.B.t1 ~tol:1e-9;
      match Stochastic_core.Sequence.take 2 r.B.sequence with
      | [ only ] -> rel_close "single reservation" 20.0 only ~tol:1e-9
      | other ->
          Alcotest.failf "expected singleton sequence, got %d elements"
            (List.length other))
    [
      C.reservation_only;
      C.make ~alpha:2.0 ~beta:1.5 ~gamma:0.7 ();
      C.neuro_hpc;
    ]

let test_uniform_normalized_cost () =
  (* For Uniform(10, 20) under RESERVATIONONLY, the optimum costs
     b / E[X] = 20/15 = 4/3. *)
  let d = Distributions.Uniform_dist.default in
  let r = B.search ~m:500 ~evaluator:B.Exact C.reservation_only d in
  rel_close "normalized 4/3" (4.0 /. 3.0) r.B.normalized ~tol:1e-9

let test_exponential_matches_dedicated_solver () =
  let d = Distributions.Exponential.default in
  let r = B.search ~m:5000 ~evaluator:B.Exact C.reservation_only d in
  let sol = Stochastic_core.Exponential_opt.solve () in
  rel_close "cost matches Prop. 2 solver" sol.Stochastic_core.Exponential_opt.e1
    r.B.cost ~tol:5e-3

let test_profile_has_gaps () =
  (* Fig. 3: parts of the Exp search interval yield invalid sequences
     (e.g. around the median), visible as None in the profile. *)
  let d = Distributions.Exponential.default in
  let profile = B.profile ~m:200 ~evaluator:B.Exact C.reservation_only d in
  let invalid = Array.exists (fun (_, c) -> c = None) profile in
  let valid = Array.exists (fun (_, c) -> c <> None) profile in
  Alcotest.(check bool) "profile has invalid candidates" true invalid;
  Alcotest.(check bool) "profile has valid candidates" true valid;
  Alcotest.(check int) "profile covers the grid" 200 (Array.length profile)

let test_cost_of_t1 () =
  let d = Distributions.Exponential.default in
  let m = C.reservation_only in
  (* The Exp median collapses (Table 3 prints "-"). *)
  Alcotest.(check bool) "median invalid" true
    (B.cost_of_t1 ~evaluator:B.Exact m d (d.Dist.quantile 0.5) = None);
  (* A t1 near the optimum is valid and close to E1. *)
  (match B.cost_of_t1 ~evaluator:B.Exact m d 0.75 with
  | None -> Alcotest.fail "t1 = 0.75 should be valid"
  | Some c -> rel_close "near-optimal cost" 2.3645 c ~tol:1e-3)

let test_monte_carlo_evaluator_reproducible () =
  let d = Distributions.Lognormal.default in
  let m = C.reservation_only in
  let run () =
    let rng = Randomness.Rng.create ~seed:15 () in
    B.search ~m:300 ~evaluator:(B.Monte_carlo { rng; n = 500 }) m d
  in
  let r1 = run () and r2 = run () in
  rel_close "same seed, same t1" r1.B.t1 r2.B.t1 ~tol:0.0;
  rel_close "same seed, same cost" r1.B.cost r2.B.cost ~tol:0.0

let test_counts () =
  let d = Distributions.Exponential.default in
  let r = B.search ~m:100 ~evaluator:B.Exact C.reservation_only d in
  Alcotest.(check int) "candidates = m" 100 r.B.candidates;
  Alcotest.(check bool) "some valid, not all" true
    (r.B.valid > 0 && r.B.valid < 100)

let test_all_distributions_beat_naive () =
  (* Brute force must never lose (exact evaluation) to the plain
     MEAN-DOUBLING heuristic by more than numerical slack. *)
  List.iter
    (fun (name, d) ->
      let m = C.reservation_only in
      let bf = B.search ~m:800 ~evaluator:B.Exact m d in
      let doubling =
        E.exact m d (Stochastic_core.Heuristics.mean_doubling d)
      in
      if bf.B.cost > doubling +. 1e-6 then
        Alcotest.failf "%s: brute force %.4f worse than doubling %.4f" name
          bf.B.cost doubling)
    Distributions.Table1.all

let prop_search_respects_interval =
  QCheck.Test.make ~count:20 ~name:"t1 lies in the Theorem 2 interval"
    QCheck.(oneofl (List.map snd Distributions.Table1.all))
    (fun d ->
      let m = C.reservation_only in
      let lo, hi = Stochastic_core.Bounds.search_interval m d in
      let r = B.search ~m:200 ~evaluator:B.Exact m d in
      r.B.t1 > lo && r.B.t1 <= hi +. 1e-9)

let () =
  Alcotest.run "brute_force"
    [
      ( "unit",
        [
          Alcotest.test_case "uniform Theorem 4" `Quick
            test_uniform_finds_theorem4_optimum;
          Alcotest.test_case "uniform normalized" `Quick test_uniform_normalized_cost;
          Alcotest.test_case "exp matches solver" `Quick
            test_exponential_matches_dedicated_solver;
          Alcotest.test_case "profile gaps" `Quick test_profile_has_gaps;
          Alcotest.test_case "cost_of_t1" `Quick test_cost_of_t1;
          Alcotest.test_case "MC reproducible" `Quick
            test_monte_carlo_evaluator_reproducible;
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "beats naive everywhere" `Slow
            test_all_distributions_beat_naive;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_search_respects_interval ] );
    ]
