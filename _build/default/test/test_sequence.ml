(* Tests for reservation sequences: validation, Eq. (2) costs and the
   sanitize combinator. *)

module S = Stochastic_core.Sequence
module C = Stochastic_core.Cost_model
module Dist = Distributions.Dist

let close ?(tol = 1e-10) name expected got =
  Alcotest.(check (float tol)) name expected got

let test_of_list_validation () =
  ignore (S.of_list [ 1.0; 2.0; 3.0 ] : S.t);
  Alcotest.(check bool) "non increasing rejected" true
    (try ignore (S.of_list [ 1.0; 1.0 ] : S.t); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "non positive rejected" true
    (try ignore (S.of_list [ 0.0; 1.0 ] : S.t); false
     with Invalid_argument _ -> true)

let test_cost_of_run_eq2 () =
  (* Worked example of Eq. (2): S = (2, 5, 9), alpha=1, beta=0.5,
     gamma=0.1, job t = 6 -> succeeds at k = 3.
     C = (2 + 1 + 0.1) + (5 + 2.5 + 0.1) + (9 + 3 + 0.1). *)
  let m = C.make ~alpha:1.0 ~beta:0.5 ~gamma:0.1 () in
  let s = S.of_list [ 2.0; 5.0; 9.0 ] in
  let k, cost = S.cost_of_run m s 6.0 in
  Alcotest.(check int) "k = 3" 3 k;
  close "Eq. (2) cost" (3.1 +. 7.6 +. 12.1) cost;
  (* First reservation succeeds. *)
  let k, cost = S.cost_of_run m s 1.5 in
  Alcotest.(check int) "k = 1" 1 k;
  close "single reservation" (2.0 +. 0.75 +. 0.1) cost;
  (* Job exactly at a boundary belongs to that reservation. *)
  let k, _ = S.cost_of_run m s 5.0 in
  Alcotest.(check int) "boundary inclusive" 2 k

let test_cost_not_covered () =
  let m = C.reservation_only in
  let s = S.of_list [ 1.0; 2.0 ] in
  Alcotest.(check bool) "raises Not_covered" true
    (try ignore (S.cost_of_run m s 5.0); false with S.Not_covered _ -> true)

let test_mean_cost_matches_individual_runs () =
  let m = C.make ~alpha:0.95 ~beta:1.0 ~gamma:1.05 () in
  let s = S.of_list [ 1.0; 3.0; 8.0; 20.0 ] in
  let samples = [| 0.2; 0.9; 1.0; 2.5; 3.0; 7.9; 15.0; 20.0 |] in
  let expected =
    Array.fold_left (fun acc t -> acc +. snd (S.cost_of_run m s t)) 0.0 samples
    /. float_of_int (Array.length samples)
  in
  close "batch = mean of individual" expected (S.mean_cost_sorted m s samples)

let test_mean_cost_requires_samples () =
  Alcotest.(check bool) "empty rejected" true
    (try ignore (S.mean_cost_sorted C.reservation_only (S.of_list [ 1.0 ]) [||]); false
     with Invalid_argument _ -> true)

let test_take_and_prefix () =
  let s = S.of_list [ 1.0; 2.0; 3.0 ] in
  Alcotest.(check (list (float 0.0))) "take" [ 1.0; 2.0 ] (S.take 2 s);
  let p = S.prefix_until (fun x -> x >= 2.0) s in
  Alcotest.(check (array (float 0.0))) "prefix_until includes stop" [| 1.0; 2.0 |] p;
  Alcotest.(check bool) "is_strictly_increasing" true
    (S.is_strictly_increasing 3 s)

let test_sanitize_unbounded () =
  (* A raw sequence that stalls: sanitize must switch to doubling. *)
  let raw = List.to_seq [ 1.0; 2.0; 1.5; 100.0 ] in
  let clean = S.sanitize ~support:(Dist.Unbounded 0.0) raw in
  let prefix = S.take 5 clean in
  Alcotest.(check (list (float 1e-9))) "doubling after stall"
    [ 1.0; 2.0; 4.0; 8.0; 16.0 ] prefix

let test_sanitize_unbounded_nan () =
  let raw = List.to_seq [ 3.0; nan ] in
  let clean = S.sanitize ~support:(Dist.Unbounded 0.0) raw in
  Alcotest.(check (list (float 1e-9))) "nan triggers doubling" [ 3.0; 6.0; 12.0 ]
    (S.take 3 clean)

let test_sanitize_bounded () =
  let support = Dist.Bounded (0.0, 10.0) in
  (* Finite raw sequence that never reaches b: completed with b. *)
  let clean = S.sanitize ~support (List.to_seq [ 2.0; 5.0 ]) in
  Alcotest.(check (list (float 1e-9))) "completed with b" [ 2.0; 5.0; 10.0 ]
    (List.of_seq clean);
  (* Values beyond b are snapped to b and terminate the sequence. *)
  let clean = S.sanitize ~support (List.to_seq [ 4.0; 11.0; 12.0 ]) in
  Alcotest.(check (list (float 1e-9))) "clamped at b" [ 4.0; 10.0 ]
    (List.of_seq clean);
  (* Values numerically at b are emitted as exactly b. *)
  let clean = S.sanitize ~support (List.to_seq [ 9.9999999999 ]) in
  Alcotest.(check (list (float 0.0))) "near-b becomes b" [ 10.0 ]
    (List.of_seq clean)

let test_sanitize_infinite_lazy () =
  (* Sanitizing an infinite sequence must not loop: only the consumed
     prefix is forced. *)
  let naturals = Seq.ints 1 |> Seq.map float_of_int in
  let clean = S.sanitize ~support:(Dist.Unbounded 0.0) naturals in
  Alcotest.(check (list (float 0.0))) "lazy prefix" [ 1.0; 2.0; 3.0 ]
    (S.take 3 clean)

(* Property: sanitize output is always strictly increasing, regardless
   of the garbage fed in. *)
let raw_seq_gen =
  QCheck.Gen.(list_size (int_range 0 30) (float_range (-5.0) 50.0))

let prop_sanitize_increasing_unbounded =
  QCheck.Test.make ~count:500 ~name:"sanitize (unbounded) strictly increases"
    (QCheck.make raw_seq_gen) (fun raw ->
      let clean =
        S.sanitize ~support:(Dist.Unbounded 0.0) (List.to_seq raw)
      in
      let prefix = S.take 40 clean in
      let rec increasing = function
        | a :: (b :: _ as rest) -> a < b && increasing rest
        | _ -> true
      in
      List.length prefix = 40 && increasing prefix
      && List.for_all (fun x -> x > 0.0 && Float.is_finite x) prefix)

let prop_sanitize_bounded_ends_with_b =
  QCheck.Test.make ~count:500 ~name:"sanitize (bounded) terminates with b"
    (QCheck.make raw_seq_gen) (fun raw ->
      let b = 25.0 in
      let clean =
        S.sanitize ~support:(Dist.Bounded (0.0, b)) (List.to_seq raw)
      in
      let all = S.take 100 clean in
      let rec increasing = function
        | a :: (y :: _ as rest) -> a < y && increasing rest
        | _ -> true
      in
      all <> []
      && List.length all < 100 (* terminates *)
      && increasing all
      && Float.equal (List.nth all (List.length all - 1)) b)

let prop_batch_eval_matches_pointwise =
  QCheck.Test.make ~count:200 ~name:"mean_cost_sorted = mean of cost_of_run"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 15) (float_range 0.1 30.0))
        (list_of_size Gen.(int_range 1 50) (float_range 0.0 20.0)))
    (fun (raw, samples) ->
      let seq =
        S.sanitize ~support:(Dist.Unbounded 0.0) (List.to_seq raw)
      in
      let samples = Array.of_list samples in
      Array.sort compare samples;
      let m = C.make ~alpha:1.3 ~beta:0.7 ~gamma:0.2 () in
      let batch = S.mean_cost_sorted m seq samples in
      let pointwise =
        Array.fold_left
          (fun acc t -> acc +. snd (S.cost_of_run m seq t))
          0.0 samples
        /. float_of_int (Array.length samples)
      in
      Float.abs (batch -. pointwise) <= 1e-9 *. (1.0 +. Float.abs batch))

let () =
  Alcotest.run "sequence"
    [
      ( "unit",
        [
          Alcotest.test_case "of_list validation" `Quick test_of_list_validation;
          Alcotest.test_case "Eq. (2) cost" `Quick test_cost_of_run_eq2;
          Alcotest.test_case "not covered" `Quick test_cost_not_covered;
          Alcotest.test_case "batch vs individual" `Quick
            test_mean_cost_matches_individual_runs;
          Alcotest.test_case "empty samples" `Quick test_mean_cost_requires_samples;
          Alcotest.test_case "take/prefix" `Quick test_take_and_prefix;
          Alcotest.test_case "sanitize unbounded" `Quick test_sanitize_unbounded;
          Alcotest.test_case "sanitize nan" `Quick test_sanitize_unbounded_nan;
          Alcotest.test_case "sanitize bounded" `Quick test_sanitize_bounded;
          Alcotest.test_case "sanitize lazy" `Quick test_sanitize_infinite_lazy;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_sanitize_increasing_unbounded;
          QCheck_alcotest.to_alcotest prop_sanitize_bounded_ends_with_b;
          QCheck_alcotest.to_alcotest prop_batch_eval_matches_pointwise;
        ] );
    ]
