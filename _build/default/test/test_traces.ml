(* Tests for the synthetic neuroscience trace generator and CSV IO. *)

module T = Platform.Traces

let test_known_applications () =
  Alcotest.(check string) "vbmqa name" "VBMQA" T.vbmqa.T.app_name;
  Alcotest.(check (float 1e-9)) "vbmqa mu" 7.1128 T.vbmqa.T.mu;
  Alcotest.(check (float 1e-9)) "vbmqa sigma" 0.2039 T.vbmqa.T.sigma;
  Alcotest.(check string) "fmriqa name" "fMRIQA" T.fmriqa.T.app_name

let test_distribution_scale () =
  (* The paper: VBMQA mean ~ 1253.37 s ~ 0.348 h. *)
  let d = T.distribution T.vbmqa in
  Alcotest.(check (float 1.0)) "mean in seconds" 1253.37
    d.Distributions.Dist.mean;
  let dh = T.distribution_hours T.vbmqa in
  Alcotest.(check (float 0.001)) "mean in hours" 0.3482
    dh.Distributions.Dist.mean

let test_generate () =
  let rng = Randomness.Rng.create ~seed:7 () in
  let trace = T.generate ~runs:5000 T.vbmqa rng in
  Alcotest.(check int) "runs" 5000 (Array.length trace);
  Array.iter
    (fun t -> if t <= 0.0 then Alcotest.failf "non-positive runtime %g" t)
    trace;
  let m = Numerics.Stats.mean trace in
  Alcotest.(check bool) "sample mean near 1253s" true
    (Float.abs (m -. 1253.37) < 30.0)

let test_csv_roundtrip () =
  let rng = Randomness.Rng.create ~seed:8 () in
  let trace = T.generate ~runs:200 T.fmriqa rng in
  let path = Filename.temp_file "trace" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      T.save_csv path trace;
      let back = T.load_csv path in
      Alcotest.(check int) "length preserved" 200 (Array.length back);
      Array.iteri
        (fun i t ->
          if Float.abs (t -. trace.(i)) > 1e-5 then
            Alcotest.failf "element %d drifted: %g vs %g" i t trace.(i))
        back)

let test_load_csv_malformed () =
  let path = Filename.temp_file "bad" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "runtime_seconds\n12.5\nnot-a-number\n";
      close_out oc;
      Alcotest.(check bool) "malformed rejected" true
        (try ignore (T.load_csv path); false with Failure _ -> true))

let test_pipeline () =
  let rng = Randomness.Rng.create ~seed:9 () in
  let fit, d = T.pipeline ~runs:5000 T.vbmqa rng in
  Alcotest.(check (float 0.02)) "pipeline recovers mu" 7.1128
    fit.Distributions.Fitting.mu;
  Alcotest.(check (float 0.01)) "pipeline recovers sigma" 0.2039
    fit.Distributions.Fitting.sigma;
  Alcotest.(check bool) "fitted distribution usable" true
    (d.Distributions.Dist.mean > 1000.0 && d.Distributions.Dist.mean < 1500.0)

let () =
  Alcotest.run "traces"
    [
      ( "unit",
        [
          Alcotest.test_case "known applications" `Quick test_known_applications;
          Alcotest.test_case "distribution scale" `Quick test_distribution_scale;
          Alcotest.test_case "generate" `Quick test_generate;
          Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "malformed csv" `Quick test_load_csv_malformed;
          Alcotest.test_case "pipeline" `Quick test_pipeline;
        ] );
    ]
