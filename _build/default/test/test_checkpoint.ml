(* Tests for the checkpointed-reservation extension. *)

module Ck = Stochastic_core.Checkpoint
module C = Stochastic_core.Cost_model
module S = Stochastic_core.Sequence
module E = Stochastic_core.Expected_cost

let close ?(tol = 1e-9) name expected got =
  Alcotest.(check (float tol)) name expected got

let test_params_validation () =
  Alcotest.(check bool) "negative overhead rejected" true
    (try ignore (Ck.make_params ~checkpoint_cost:(-1.0) ~restart_cost:0.0); false
     with Invalid_argument _ -> true)

let test_free_checkpoints_accumulate_progress () =
  (* With zero overheads, sequence (2, 3) completes any job up to
     2 + 3 = 5, unlike the no-checkpoint semantics where only t <= 3
     would be covered. *)
  let m = C.reservation_only in
  let s = S.of_list [ 2.0; 3.0 ] in
  let k, cost = Ck.cost_of_run Ck.no_overhead m s 4.5 in
  Alcotest.(check int) "two reservations" 2 k;
  close "pays both slots" 5.0 cost;
  (* The same job is NOT covered without checkpoints. *)
  Alcotest.(check bool) "plain semantics cannot cover 4.5" true
    (try ignore (S.cost_of_run m s 4.5); false with S.Not_covered _ -> true)

let test_hand_example_with_overheads () =
  (* C = 0.5, R = 0.25, alpha = 1, beta = 1, gamma = 0; sequence
     (3, 3.5, 4); job t = 6.
     Slot 1 (no restart): 3 < 6: fail. Progress = 3 - 0.5 = 2.5.
     Pay 3 + 3 = 6.
     Slot 2: usable = 3.5 - 0.25 = 3.25; 2.5 + 3.25 = 5.75 < 6: fail.
     Progress += 3.5 - 0.25 - 0.5 = 2.75 -> 5.25. Pay 3.5 + 3.5 = 7.
     Slot 3: usable = 4 - 0.25 = 3.75; 5.25 + 3.75 >= 6: success.
     Used = 0.25 + (6 - 5.25) = 1.0. Pay alpha*4 + beta*1.0 = 5.
     Total = 18. *)
  let p = Ck.make_params ~checkpoint_cost:0.5 ~restart_cost:0.25 in
  let m = C.make ~alpha:1.0 ~beta:1.0 ~gamma:0.0 () in
  let s = S.of_list [ 3.0; 3.5; 4.0 ] in
  let k, cost = Ck.cost_of_run p m s 6.0 in
  Alcotest.(check int) "three reservations" 3 k;
  close "hand-computed cost" 18.0 cost

let test_first_slot_success_matches_plain () =
  (* If the job fits in the first reservation, checkpointing changes
     nothing. *)
  let p = Ck.make_params ~checkpoint_cost:0.7 ~restart_cost:0.3 in
  let m = C.make ~alpha:1.2 ~beta:0.8 ~gamma:0.1 () in
  let s = S.of_list [ 5.0; 9.0 ] in
  let _, plain = S.cost_of_run m s 4.0 in
  let _, ck = Ck.cost_of_run p m s 4.0 in
  close "identical when first slot succeeds" plain ck

let test_useless_slots_raise () =
  (* Slots shorter than the overheads make no progress: must raise
     rather than loop. *)
  let p = Ck.make_params ~checkpoint_cost:1.0 ~restart_cost:1.0 in
  let m = C.reservation_only in
  let s = Seq.unfold (fun i -> Some (1.5 +. (0.1 *. float_of_int i), i + 1)) 0 in
  Alcotest.(check bool) "raises Not_covered" true
    (try ignore (Ck.cost_of_run ~max_steps:100 p m s 50.0); false
     with S.Not_covered _ -> true)

let test_periodic_shape () =
  let p = Ck.make_params ~checkpoint_cost:0.5 ~restart_cost:0.25 in
  let s = S.take 3 (Ck.periodic ~chunk:2.0 p) in
  Alcotest.(check (list (float 1e-12))) "periodic slots" [ 2.5; 2.75; 2.75 ] s;
  Alcotest.(check bool) "chunk <= 0 rejected" true
    (try ignore (Ck.periodic ~chunk:0.0 p : float Seq.t); false
     with Invalid_argument _ -> true)

let test_expected_cost_against_monte_carlo () =
  let p = Ck.make_params ~checkpoint_cost:0.2 ~restart_cost:0.1 in
  let m = C.make ~alpha:1.0 ~beta:0.5 ~gamma:0.1 () in
  let d = Distributions.Gamma_dist.default in
  let s = Ck.periodic ~chunk:1.0 p in
  let exact = Ck.expected_cost p m d s in
  let rng = Randomness.Rng.create ~seed:123 () in
  let acc = Numerics.Stats.Online.create () in
  for _ = 1 to 50_000 do
    let t = d.Distributions.Dist.sample rng in
    Numerics.Stats.Online.push acc (snd (Ck.cost_of_run p m s t))
  done;
  let mc = Numerics.Stats.Online.mean acc in
  Alcotest.(check bool)
    (Printf.sprintf "quadrature %.4f ~ MC %.4f" exact mc)
    true
    (Float.abs (exact -. mc) < 0.02 *. exact)

let test_free_checkpointing_beats_plain_on_heavy_tail () =
  (* With zero overheads, checkpointing can only help: compare the
     optimal periodic checkpointed strategy against the plain
     brute-force optimum on the heavy-tailed Weibull. *)
  let m = C.reservation_only in
  let d = Distributions.Weibull.default in
  let plain =
    (Stochastic_core.Brute_force.search ~m:800
       ~evaluator:Stochastic_core.Brute_force.Exact m d)
      .Stochastic_core.Brute_force.cost
  in
  let better, c =
    Ck.better_than_plain Ck.no_overhead m d ~plain_cost:plain ~chunk_upper:4.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "free checkpoints (%.4f) beat plain (%.4f)" c plain)
    true better

let test_expensive_checkpoints_can_lose () =
  (* Crushing overheads make checkpointing worse than the plain
     optimum — the other side of the paper's trade-off. *)
  let m = C.reservation_only in
  let d = Distributions.Uniform_dist.default in
  let p = Ck.make_params ~checkpoint_cost:25.0 ~restart_cost:10.0 in
  let plain = 20.0 (* Theorem 4 optimum: single reservation of b. *) in
  let better, _ =
    Ck.better_than_plain p m d ~plain_cost:plain ~chunk_upper:25.0
  in
  Alcotest.(check bool) "expensive checkpoints lose" false better

let test_optimize_chunk_sane () =
  let p = Ck.make_params ~checkpoint_cost:0.1 ~restart_cost:0.05 in
  let m = C.reservation_only in
  let d = Distributions.Exponential.default in
  let chunk, cost = Ck.optimize_chunk ~m:100 p m d ~chunk_upper:4.0 in
  Alcotest.(check bool) "chunk in range" true (chunk > 0.0 && chunk <= 4.0);
  Alcotest.(check bool) "cost above omniscient" true
    (cost >= E.omniscient m d)

let () =
  Alcotest.run "checkpoint"
    [
      ( "unit",
        [
          Alcotest.test_case "params validation" `Quick test_params_validation;
          Alcotest.test_case "free checkpoints accumulate" `Quick
            test_free_checkpoints_accumulate_progress;
          Alcotest.test_case "hand example" `Quick test_hand_example_with_overheads;
          Alcotest.test_case "first-slot parity" `Quick
            test_first_slot_success_matches_plain;
          Alcotest.test_case "useless slots raise" `Quick test_useless_slots_raise;
          Alcotest.test_case "periodic shape" `Quick test_periodic_shape;
          Alcotest.test_case "quadrature vs MC" `Slow
            test_expected_cost_against_monte_carlo;
          Alcotest.test_case "free checkpoints win (heavy tail)" `Slow
            test_free_checkpointing_beats_plain_on_heavy_tail;
          Alcotest.test_case "expensive checkpoints lose" `Quick
            test_expensive_checkpoints_can_lose;
          Alcotest.test_case "optimize chunk" `Quick test_optimize_chunk_sane;
        ] );
    ]
