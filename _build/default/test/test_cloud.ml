(* Tests for the cloud pricing model. *)

module Cl = Platform.Cloud

let close ?(tol = 1e-12) name expected got =
  Alcotest.(check (float tol)) name expected got

let test_pricing () =
  close "aws ratio" 4.0 (Cl.price_ratio Cl.aws_like);
  Alcotest.(check bool) "bad pricing rejected" true
    (try ignore (Cl.make_pricing ~reserved_hourly:0.0 ~on_demand_hourly:1.0); false
     with Invalid_argument _ -> true)

let test_costs () =
  close "reserved cost" 2.5
    (Cl.reserved_cost Cl.aws_like ~expected_reservation_hours:10.0);
  let d = Distributions.Uniform_dist.default in
  close "on-demand cost" 15.0 (Cl.on_demand_cost Cl.aws_like d)

let test_verdict_reserved_wins () =
  (* Normalized cost 2 with price ratio 4: reservations win 2x. *)
  let d = Distributions.Uniform_dist.default in
  let v = Cl.compare_strategies Cl.aws_like d ~normalized_cost:2.0 in
  close "advantage" 2.0 v.Cl.advantage;
  Alcotest.(check bool) "use reserved" true v.Cl.use_reserved

let test_verdict_on_demand_wins () =
  (* Normalized cost above the price ratio: stay on demand. *)
  let d = Distributions.Uniform_dist.default in
  let v = Cl.compare_strategies Cl.aws_like d ~normalized_cost:5.0 in
  Alcotest.(check bool) "on demand wins" false v.Cl.use_reserved;
  Alcotest.(check bool) "advantage below 1" true (v.Cl.advantage < 1.0)

let test_break_even () =
  (* At normalized cost exactly equal to the ratio, the two options
     tie. *)
  let d = Distributions.Exponential.default in
  let v = Cl.compare_strategies Cl.aws_like d ~normalized_cost:4.0 in
  close "tie" 1.0 v.Cl.advantage ~tol:1e-9

let prop_paper_criterion =
  QCheck.Test.make ~count:300
    ~name:"use_reserved iff normalized cost below the price ratio"
    QCheck.(pair (float_range 1.0 10.0) (float_range 1.1 8.0))
    (fun (normalized_cost, ratio) ->
      let p = Cl.make_pricing ~reserved_hourly:1.0 ~on_demand_hourly:ratio in
      let d = Distributions.Exponential.default in
      let v = Cl.compare_strategies p d ~normalized_cost in
      v.Cl.use_reserved = (normalized_cost <= ratio +. 1e-9))

let () =
  Alcotest.run "cloud"
    [
      ( "unit",
        [
          Alcotest.test_case "pricing" `Quick test_pricing;
          Alcotest.test_case "costs" `Quick test_costs;
          Alcotest.test_case "reserved wins" `Quick test_verdict_reserved_wins;
          Alcotest.test_case "on-demand wins" `Quick test_verdict_on_demand_wins;
          Alcotest.test_case "break even" `Quick test_break_even;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_paper_criterion ]);
    ]
