(* Tests for distribution fitting. *)

module F = Distributions.Fitting

let test_mle_recovery () =
  let rng = Randomness.Rng.create ~seed:101 () in
  let truth = Distributions.Lognormal.make ~mu:7.1128 ~sigma:0.2039 in
  let samples = Distributions.Dist.samples truth rng 20_000 in
  let fit = F.lognormal_mle samples in
  Alcotest.(check (float 0.01)) "mu recovered" 7.1128 fit.F.mu;
  Alcotest.(check (float 0.01)) "sigma recovered" 0.2039 fit.F.sigma;
  Alcotest.(check bool) "ks small" true (fit.F.ks < 0.02);
  Alcotest.(check int) "n recorded" 20_000 fit.F.n

let test_mle_validation () =
  Alcotest.(check bool) "nonpositive sample rejected" true
    (try ignore (F.lognormal_mle [| 1.0; 0.0 |]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "too small rejected" true
    (try ignore (F.lognormal_mle [| 1.0 |]); false
     with Invalid_argument _ -> true)

let test_of_moments_roundtrip () =
  let mu, sigma = F.lognormal_of_moments ~mean:12.0 ~std:4.0 in
  let d = Distributions.Lognormal.make ~mu ~sigma in
  Alcotest.(check (float 1e-9)) "mean roundtrip" 12.0 d.Distributions.Dist.mean;
  Alcotest.(check (float 1e-9)) "std roundtrip" 4.0 (Distributions.Dist.std d)

let test_footnote4_values () =
  (* Footnote 4 with the paper's VBMQA numbers: mean = 1253.37 s,
     std = 258.261 s should give approximately (mu = 7.1128,
     sigma = 0.2039). *)
  let mu, sigma = F.lognormal_of_moments ~mean:1253.37 ~std:258.261 in
  Alcotest.(check (float 0.01)) "mu ~ 7.1128" 7.1128 mu;
  Alcotest.(check (float 0.005)) "sigma ~ 0.2039" 0.2039 sigma

let test_to_dist () =
  let rng = Randomness.Rng.create ~seed:55 () in
  let truth = Distributions.Lognormal.make ~mu:2.0 ~sigma:0.4 in
  let fit = F.lognormal_mle (Distributions.Dist.samples truth rng 10_000) in
  let d = F.to_dist fit in
  Alcotest.(check (float 0.2)) "fitted distribution mean"
    truth.Distributions.Dist.mean d.Distributions.Dist.mean

let prop_moments_inverse =
  QCheck.Test.make ~count:300 ~name:"of_moments inverts the moment map"
    QCheck.(pair (float_range 0.1 1000.0) (float_range 0.01 100.0))
    (fun (mean, std) ->
      let mu, sigma = F.lognormal_of_moments ~mean ~std in
      let d = Distributions.Lognormal.make ~mu ~sigma in
      Float.abs (d.Distributions.Dist.mean -. mean) <= 1e-6 *. mean
      && Float.abs (Distributions.Dist.std d -. std) <= 1e-6 *. std)

let () =
  Alcotest.run "fitting"
    [
      ( "unit",
        [
          Alcotest.test_case "mle recovery" `Quick test_mle_recovery;
          Alcotest.test_case "mle validation" `Quick test_mle_validation;
          Alcotest.test_case "of_moments roundtrip" `Quick test_of_moments_roundtrip;
          Alcotest.test_case "footnote 4 values" `Quick test_footnote4_values;
          Alcotest.test_case "to_dist" `Quick test_to_dist;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_moments_inverse ]);
    ]
