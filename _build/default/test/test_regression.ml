(* Tests for the OLS affine fit. *)

module R = Numerics.Regression

let close ?(tol = 1e-10) name expected got =
  Alcotest.(check (float tol)) name expected got

let test_exact_line () =
  let x = [| 1.0; 2.0; 3.0; 4.0 |] in
  let y = Array.map (fun v -> (2.5 *. v) +. 1.0) x in
  let f = R.ols ~x ~y in
  close "slope" 2.5 f.R.slope;
  close "intercept" 1.0 f.R.intercept;
  close "r^2 = 1" 1.0 f.R.r_squared;
  close "residual std = 0" 0.0 f.R.residual_std;
  Alcotest.(check int) "n" 4 f.R.n

let test_predict () =
  let f = R.ols ~x:[| 0.0; 1.0 |] ~y:[| 1.0; 3.0 |] in
  close "predict(2)" 5.0 (R.predict f 2.0)

let test_known_noisy_fit () =
  (* Hand-computable 3-point example: x = 0,1,2; y = 0,1,3.
     slope = 1.5, intercept = -1/6. *)
  let f = R.ols ~x:[| 0.0; 1.0; 2.0 |] ~y:[| 0.0; 1.0; 3.0 |] in
  close "slope" 1.5 f.R.slope;
  close "intercept" (-1.0 /. 6.0) f.R.intercept;
  Alcotest.(check bool) "r^2 below 1" true (f.R.r_squared < 1.0);
  Alcotest.(check bool) "r^2 high" true (f.R.r_squared > 0.95)

let test_errors () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Regression.ols: length mismatch") (fun () ->
      ignore (R.ols ~x:[| 1.0 |] ~y:[| 1.0; 2.0 |]));
  Alcotest.check_raises "too few points"
    (Invalid_argument "Regression.ols: need at least two points") (fun () ->
      ignore (R.ols ~x:[| 1.0 |] ~y:[| 1.0 |]));
  Alcotest.check_raises "constant x"
    (Invalid_argument "Regression.ols: x values are constant") (fun () ->
      ignore (R.ols ~x:[| 2.0; 2.0 |] ~y:[| 1.0; 3.0 |]))

let prop_recovers_exact_lines =
  QCheck.Test.make ~count:300 ~name:"ols recovers noiseless affine data"
    QCheck.(
      triple (float_range (-50.0) 50.0) (float_range (-50.0) 50.0)
        (list_of_size Gen.(int_range 3 50) (float_range (-100.0) 100.0)))
    (fun (a, b, xs) ->
      let xs = List.sort_uniq compare xs in
      if List.length xs < 2 then true
      else begin
        let x = Array.of_list xs in
        let y = Array.map (fun v -> (a *. v) +. b) x in
        let f = R.ols ~x ~y in
        Float.abs (f.R.slope -. a) <= 1e-6 *. (1.0 +. Float.abs a)
        && Float.abs (f.R.intercept -. b) <= 1e-5 *. (1.0 +. Float.abs b)
      end)

let prop_residuals_orthogonal =
  QCheck.Test.make ~count:200 ~name:"ols residuals sum to ~0"
    QCheck.(list_of_size Gen.(int_range 3 40)
              (pair (float_range (-10.0) 10.0) (float_range (-10.0) 10.0)))
    (fun pts ->
      let pts =
        List.sort_uniq (fun (x1, _) (x2, _) -> compare x1 x2) pts
      in
      if List.length pts < 3 then true
      else begin
        let x = Array.of_list (List.map fst pts) in
        let y = Array.of_list (List.map snd pts) in
        let f = R.ols ~x ~y in
        let sum =
          Array.to_list x
          |> List.mapi (fun i xi -> y.(i) -. R.predict f xi)
          |> List.fold_left ( +. ) 0.0
        in
        Float.abs sum <= 1e-6 *. float_of_int (Array.length x)
      end)

let () =
  Alcotest.run "regression"
    [
      ( "unit",
        [
          Alcotest.test_case "exact line" `Quick test_exact_line;
          Alcotest.test_case "predict" `Quick test_predict;
          Alcotest.test_case "known noisy fit" `Quick test_known_noisy_fit;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_recovers_exact_lines;
          QCheck_alcotest.to_alcotest prop_residuals_orthogonal;
        ] );
    ]
