(* Tests for the affine cost model (Eq. (1)). *)

module C = Stochastic_core.Cost_model

let close = Alcotest.(check (float 1e-12))

let test_defaults () =
  let m = C.reservation_only in
  close "alpha" 1.0 m.C.alpha;
  close "beta" 0.0 m.C.beta;
  close "gamma" 0.0 m.C.gamma

let test_neuro_hpc () =
  let m = C.neuro_hpc in
  close "alpha" 0.95 m.C.alpha;
  close "beta" 1.0 m.C.beta;
  close "gamma" 1.05 m.C.gamma

let test_reservation_cost () =
  let m = C.make ~alpha:2.0 ~beta:0.5 ~gamma:1.0 () in
  (* Successful reservation: job shorter than the slot. *)
  close "success" ((2.0 *. 4.0) +. (0.5 *. 3.0) +. 1.0)
    (C.reservation_cost m ~reserved:4.0 ~actual:3.0);
  (* Failed reservation: full slot is consumed. *)
  close "failure" ((2.0 *. 4.0) +. (0.5 *. 4.0) +. 1.0)
    (C.reservation_cost m ~reserved:4.0 ~actual:9.0)

let test_validation () =
  Alcotest.check_raises "alpha = 0"
    (Invalid_argument "Cost_model.make: alpha must be > 0") (fun () ->
      ignore (C.make ~alpha:0.0 ()));
  Alcotest.check_raises "beta < 0"
    (Invalid_argument "Cost_model.make: beta must be >= 0") (fun () ->
      ignore (C.make ~beta:(-1.0) ()));
  Alcotest.check_raises "gamma < 0"
    (Invalid_argument "Cost_model.make: gamma must be >= 0") (fun () ->
      ignore (C.make ~gamma:(-0.1) ()))

let prop_cost_monotone_in_reservation =
  QCheck.Test.make ~count:300 ~name:"cost grows with reservation length"
    QCheck.(
      quad (float_range 0.1 10.0) (float_range 0.0 5.0) (float_range 0.0 5.0)
        (pair (float_range 0.1 50.0) (float_range 0.1 50.0)))
    (fun (alpha, beta, gamma, (r1, r2)) ->
      let m = C.make ~alpha ~beta ~gamma () in
      let lo = Float.min r1 r2 and hi = Float.max r1 r2 in
      C.reservation_cost m ~reserved:lo ~actual:25.0
      <= C.reservation_cost m ~reserved:hi ~actual:25.0 +. 1e-9)

let () =
  Alcotest.run "cost_model"
    [
      ( "unit",
        [
          Alcotest.test_case "defaults" `Quick test_defaults;
          Alcotest.test_case "neuro_hpc" `Quick test_neuro_hpc;
          Alcotest.test_case "reservation cost" `Quick test_reservation_cost;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_cost_monotone_in_reservation ] );
    ]
