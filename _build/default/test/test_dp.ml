(* Tests for the Theorem 5 dynamic program, including optimality
   verification against exhaustive search on small instances. *)

module Dp = Stochastic_core.Dp
module C = Stochastic_core.Cost_model
module D = Distributions.Discrete

let rel_close ?(tol = 1e-9) name expected got =
  let scale = Float.max 1.0 (Float.abs expected) in
  if Float.abs (got -. expected) /. scale > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" name expected got

(* Exhaustive optimum: enumerate every increasing subsequence of the
   support that ends at v_n (any valid reservation sequence for a
   discrete law is one of these) and take the cheapest. *)
let exhaustive_optimum m d =
  let d = D.normalize d in
  let v = d.D.values in
  let n = Array.length v in
  let best = ref infinity in
  (* Subsets of indices {0..n-2}; index n-1 always included last. *)
  let rec go idx acc =
    if idx = n - 1 then begin
      let seq = Array.of_list (List.rev (v.(n - 1) :: acc)) in
      let c = Dp.expected_cost_brute m d seq in
      if c < !best then best := c
    end
    else begin
      go (idx + 1) acc;
      go (idx + 1) (v.(idx) :: acc)
    end
  in
  go 0 [];
  !best

let random_discrete rng n =
  let values =
    Array.init n (fun _ -> Randomness.Rng.uniform rng 0.1 50.0)
  in
  let probs = Array.init n (fun _ -> Randomness.Rng.uniform rng 0.05 1.0) in
  let total = Array.fold_left ( +. ) 0.0 probs in
  D.make (Array.init n (fun i -> (values.(i), probs.(i) /. total)))

let test_single_point () =
  let d = D.make [| (5.0, 1.0) |] in
  let m = C.make ~alpha:1.0 ~beta:0.5 ~gamma:0.2 () in
  let sol = Dp.solve m d in
  Alcotest.(check (array (float 1e-12))) "sequence = (v)" [| 5.0 |]
    sol.Dp.reservations;
  (* E = alpha v + beta v + gamma. *)
  rel_close "cost" (5.0 +. 2.5 +. 0.2) sol.Dp.expected_cost

let test_two_point_tradeoff () =
  (* Two values 1 and 10 with p = 0.9 / 0.1 under RESERVATIONONLY:
     reserving (1, 10) costs 1 + 0.1 * 10 = 2; reserving (10) costs
     10. DP must pick the former. With p = 0.05 / 0.95 the single big
     reservation wins (10 vs 1 + 9.5). *)
  let m = C.reservation_only in
  let d1 = D.make [| (1.0, 0.9); (10.0, 0.1) |] in
  let sol1 = Dp.solve m d1 in
  Alcotest.(check (array (float 1e-12))) "two-step" [| 1.0; 10.0 |]
    sol1.Dp.reservations;
  rel_close "two-step cost" 2.0 sol1.Dp.expected_cost;
  let d2 = D.make [| (1.0, 0.05); (10.0, 0.95) |] in
  let sol2 = Dp.solve m d2 in
  Alcotest.(check (array (float 1e-12))) "one-step" [| 10.0 |]
    sol2.Dp.reservations;
  rel_close "one-step cost" 10.0 sol2.Dp.expected_cost

let test_hand_computed_three_points () =
  (* v = (2, 4, 8), f = (0.5, 0.25, 0.25), RESERVATIONONLY. Candidate
     policies (must end at 8):
       (8):        8
       (2, 8):     2 + 0.5 * 8            = 6
       (4, 8):     4 + 0.25 * 8           = 6
       (2, 4, 8):  2 + 0.5*4 + 0.25*8     = 6
     Optimum = 6. *)
  let d = D.make [| (2.0, 0.5); (4.0, 0.25); (8.0, 0.25) |] in
  let sol = Dp.solve C.reservation_only d in
  rel_close "three-point optimum" 6.0 sol.Dp.expected_cost

let test_matches_exhaustive_small () =
  let rng = Randomness.Rng.create ~seed:2718 () in
  for trial = 1 to 25 do
    let n = 2 + Randomness.Rng.int rng 9 in
    let d = random_discrete rng n in
    let m =
      C.make
        ~alpha:(Randomness.Rng.uniform rng 0.5 2.0)
        ~beta:(Randomness.Rng.uniform rng 0.0 1.5)
        ~gamma:(Randomness.Rng.uniform rng 0.0 1.0)
        ()
    in
    let dp = (Dp.solve m d).Dp.expected_cost in
    let ex = exhaustive_optimum m d in
    if Float.abs (dp -. ex) > 1e-9 *. (1.0 +. ex) then
      Alcotest.failf "trial %d: DP %.12g vs exhaustive %.12g" trial dp ex
  done

let test_dp_cost_equals_sequence_cost () =
  (* The DP's reported expected cost must equal the direct evaluation
     of its own output sequence. *)
  let rng = Randomness.Rng.create ~seed:31415 () in
  for _ = 1 to 20 do
    let d = random_discrete rng (3 + Randomness.Rng.int rng 20) in
    let m = C.make ~alpha:1.0 ~beta:0.8 ~gamma:0.3 () in
    let sol = Dp.solve m d in
    let direct = Dp.expected_cost_brute m d sol.Dp.reservations in
    rel_close "reported = replayed" direct sol.Dp.expected_cost
  done

let test_normalization_invariance () =
  (* Scaling all probabilities by a constant (truncated distributions)
     must not change the solution. *)
  let pairs = [| (1.0, 0.4); (3.0, 0.4); (9.0, 0.2) |] in
  let scaled = Array.map (fun (v, p) -> (v, p *. 0.5)) pairs in
  let m = C.make ~alpha:1.0 ~beta:0.3 ~gamma:0.1 () in
  let s1 = Dp.solve m (D.make pairs) in
  let s2 = Dp.solve m (D.make scaled) in
  Alcotest.(check (array (float 1e-12))) "same sequence" s1.Dp.reservations
    s2.Dp.reservations;
  rel_close "same cost" s1.Dp.expected_cost s2.Dp.expected_cost

let test_sequence_ends_at_vn () =
  let rng = Randomness.Rng.create ~seed:99 () in
  for _ = 1 to 20 do
    let d = random_discrete rng 12 in
    let sol = Dp.solve C.reservation_only d in
    let k = Array.length sol.Dp.reservations in
    let n = D.size d in
    rel_close "last reservation = v_n" d.D.values.(n - 1)
      sol.Dp.reservations.(k - 1)
  done

let test_uniform_discretized_matches_theorem4 () =
  (* Discretizing Uniform(10, 20) and solving optimally must recover
     the single reservation (b = 20) for RESERVATIONONLY. *)
  let d = Distributions.Uniform_dist.default in
  let disc =
    Stochastic_core.Discretize.run Stochastic_core.Discretize.Equal_time
      ~n:100 d
  in
  let sol = Dp.solve C.reservation_only disc in
  Alcotest.(check (array (float 1e-9))) "single (20)" [| 20.0 |]
    sol.Dp.reservations

let test_sequence_for_extends_unbounded () =
  let d = Distributions.Exponential.default in
  let disc =
    Stochastic_core.Discretize.run Stochastic_core.Discretize.Equal_time
      ~n:100 d
  in
  let seq = Dp.sequence_for C.reservation_only d disc in
  (* Must cover samples beyond the truncation point by doubling. *)
  let _, cost =
    Stochastic_core.Sequence.cost_of_run C.reservation_only seq 40.0
  in
  Alcotest.(check bool) "covers beyond truncation" true (cost > 40.0)

let test_expected_cost_brute_validation () =
  let d = D.make [| (1.0, 0.5); (2.0, 0.5) |] in
  let m = C.reservation_only in
  Alcotest.(check bool) "non-increasing rejected" true
    (try ignore (Dp.expected_cost_brute m d [| 2.0; 1.5 |]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "uncovering sequence rejected" true
    (try ignore (Dp.expected_cost_brute m d [| 1.5 |]); false
     with Invalid_argument _ -> true)

let prop_dp_never_worse_than_single_shot =
  QCheck.Test.make ~count:100 ~name:"DP <= reserve v_n directly"
    QCheck.(pair small_int (int_range 2 15))
    (fun (seed, n) ->
      let rng = Randomness.Rng.create ~seed () in
      let d = random_discrete rng n in
      let m = C.make ~alpha:1.0 ~beta:0.5 ~gamma:0.1 () in
      let dp = (Dp.solve m d).Dp.expected_cost in
      let single =
        Dp.expected_cost_brute m d [| d.D.values.(D.size d - 1) |]
      in
      dp <= single +. 1e-9)

let () =
  Alcotest.run "dp"
    [
      ( "unit",
        [
          Alcotest.test_case "single point" `Quick test_single_point;
          Alcotest.test_case "two-point tradeoff" `Quick test_two_point_tradeoff;
          Alcotest.test_case "hand-computed" `Quick test_hand_computed_three_points;
          Alcotest.test_case "matches exhaustive" `Quick test_matches_exhaustive_small;
          Alcotest.test_case "reported = replayed" `Quick
            test_dp_cost_equals_sequence_cost;
          Alcotest.test_case "normalization invariance" `Quick
            test_normalization_invariance;
          Alcotest.test_case "ends at v_n" `Quick test_sequence_ends_at_vn;
          Alcotest.test_case "uniform Theorem 4" `Quick
            test_uniform_discretized_matches_theorem4;
          Alcotest.test_case "extends beyond truncation" `Quick
            test_sequence_for_extends_unbounded;
          Alcotest.test_case "brute validation" `Quick
            test_expected_cost_brute_validation;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_dp_never_worse_than_single_shot ] );
    ]
