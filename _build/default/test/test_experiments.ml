(* Integration tests: each paper artefact runs end to end at the quick
   configuration and satisfies its qualitative sanity checks. *)

let cfg = Experiments.Config.quick

let assert_sanity checks =
  List.iter
    (fun (label, ok) -> if not ok then Alcotest.failf "sanity failed: %s" label)
    checks

let test_config () =
  Alcotest.(check int) "paper m" 5000 Experiments.Config.paper.Experiments.Config.m;
  Alcotest.(check int) "paper n" 1000
    Experiments.Config.paper.Experiments.Config.n_mc;
  let c = Experiments.Config.with_seed 7 cfg in
  Alcotest.(check int) "with_seed" 7 c.Experiments.Config.seed;
  (* Label-derived streams are deterministic and label-sensitive. *)
  let a = Experiments.Config.rng_for cfg "x" in
  let b = Experiments.Config.rng_for cfg "x" in
  let c2 = Experiments.Config.rng_for cfg "y" in
  Alcotest.(check bool) "same label, same stream" true
    (Randomness.Rng.bits64 a = Randomness.Rng.bits64 b);
  Alcotest.(check bool) "different label, different stream" true
    (Randomness.Rng.bits64 (Experiments.Config.rng_for cfg "x")
    <> Randomness.Rng.bits64 c2)

let contains_substring haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let test_table2 () =
  let t = Experiments.Table2.run ~cfg () in
  Alcotest.(check int) "nine rows" 9 (List.length t.Experiments.Table2.rows);
  Alcotest.(check int) "seven strategies" 7
    (Array.length t.Experiments.Table2.strategy_names);
  assert_sanity (Experiments.Table2.sanity t);
  (* The rendering mentions every distribution. *)
  let s = Experiments.Table2.to_string t in
  List.iter
    (fun (name, _) ->
      if not (contains_substring s name) then
        Alcotest.failf "rendering misses %s" name)
    Distributions.Table1.all

let test_table3 () =
  let t = Experiments.Table3.run ~cfg () in
  Alcotest.(check int) "nine rows" 9 (List.length t);
  assert_sanity (Experiments.Table3.sanity t);
  (* Uniform's best must be b = 20 with cost 4/3. *)
  let u = List.find (fun r -> r.Experiments.Table3.dist_name = "Uniform") t in
  Alcotest.(check (float 0.05)) "uniform t1 = 20" 20.0
    u.Experiments.Table3.best.Experiments.Table3.t1

let test_table4 () =
  let t = Experiments.Table4.run ~cfg ~ns:[| 10; 50; 200 |] () in
  Alcotest.(check int) "nine rows" 9 (List.length t.Experiments.Table4.rows);
  (* Weibull at n = 10 must be much worse than at n = 200 (the paper's
     convergence story). *)
  let _, et, _ =
    List.find (fun (n, _, _) -> n = "Weibull") t.Experiments.Table4.rows
  in
  Alcotest.(check bool) "weibull improves with n" true (et.(0) > et.(2))

let test_fig1 () =
  let t = Experiments.Fig1.run ~cfg ~runs:3000 () in
  Alcotest.(check int) "two applications" 2 (List.length t);
  assert_sanity (Experiments.Fig1.sanity t)

let test_fig2 () =
  let t = Experiments.Fig2.run ~cfg () in
  assert_sanity (Experiments.Fig2.sanity t);
  Alcotest.(check int) "twenty groups" 20
    (Array.length t.Experiments.Fig2.binned.Platform.Hpc_queue.centers)

let test_fig3 () =
  let t = Experiments.Fig3.run ~cfg ~points:80 () in
  Alcotest.(check int) "nine panels" 9 (List.length t);
  assert_sanity (Experiments.Fig3.sanity t);
  (* The exponential panel shows the Table 3 gaps. *)
  let e = List.find (fun p -> p.Experiments.Fig3.dist_name = "Exponential") t in
  Alcotest.(check bool) "exponential panel has gaps" true
    (Array.exists (fun (_, c) -> c = None) e.Experiments.Fig3.points)

let test_fig4 () =
  let t = Experiments.Fig4.run ~cfg ~factors:[| 1.0; 4.0; 10.0 |] () in
  Alcotest.(check int) "three sweep points" 3
    (List.length t.Experiments.Fig4.points);
  assert_sanity (Experiments.Fig4.sanity t)

let test_s1 () =
  let t = Experiments.Exp_s1.run ~cfg () in
  assert_sanity (Experiments.Exp_s1.sanity t)

let () =
  Alcotest.run "experiments"
    [
      ( "integration",
        [
          Alcotest.test_case "config" `Quick test_config;
          Alcotest.test_case "table2" `Slow test_table2;
          Alcotest.test_case "table3" `Slow test_table3;
          Alcotest.test_case "table4" `Slow test_table4;
          Alcotest.test_case "fig1" `Quick test_fig1;
          Alcotest.test_case "fig2" `Quick test_fig2;
          Alcotest.test_case "fig3" `Slow test_fig3;
          Alcotest.test_case "fig4" `Slow test_fig4;
          Alcotest.test_case "s1" `Quick test_s1;
        ] );
    ]
