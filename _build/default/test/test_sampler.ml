(* Moment-matching tests for the variate samplers: for each sampler,
   draw a large sample and compare empirical mean/variance with the
   analytic values. Tolerances are several standard errors wide so the
   tests are deterministic for the fixed seeds used. *)

module Rng = Randomness.Rng
module Sampler = Randomness.Sampler

let n = 200_000

let moments f =
  let rng = Rng.create ~seed:2024 () in
  let o = Numerics.Stats.Online.create () in
  for _ = 1 to n do
    Numerics.Stats.Online.push o (f rng)
  done;
  (Numerics.Stats.Online.mean o, Numerics.Stats.Online.variance o)

let check_moments name f ~mean ~variance ~tol_mean ~tol_var =
  let m, v = moments f in
  Alcotest.(check (float tol_mean)) (name ^ " mean") mean m;
  Alcotest.(check (float tol_var)) (name ^ " variance") variance v

let test_standard_normal () =
  check_moments "N(0,1)" Sampler.standard_normal ~mean:0.0 ~variance:1.0
    ~tol_mean:0.01 ~tol_var:0.02

let test_normal () =
  check_moments "N(3, 4)" (fun rng -> Sampler.normal rng ~mu:3.0 ~sigma:2.0)
    ~mean:3.0 ~variance:4.0 ~tol_mean:0.02 ~tol_var:0.08

let test_exponential () =
  check_moments "Exp(2)" (fun rng -> Sampler.exponential rng ~rate:2.0)
    ~mean:0.5 ~variance:0.25 ~tol_mean:0.005 ~tol_var:0.01

let test_gamma_big_shape () =
  check_moments "Gamma(4, 0.5)" (fun rng -> Sampler.gamma rng ~shape:4.0 ~scale:0.5)
    ~mean:2.0 ~variance:1.0 ~tol_mean:0.01 ~tol_var:0.05

let test_gamma_small_shape () =
  (* Exercises the shape < 1 boost path. *)
  check_moments "Gamma(0.5, 2)" (fun rng -> Sampler.gamma rng ~shape:0.5 ~scale:2.0)
    ~mean:1.0 ~variance:2.0 ~tol_mean:0.02 ~tol_var:0.15

let test_beta () =
  check_moments "Beta(2, 3)" (fun rng -> Sampler.beta rng ~a:2.0 ~b:3.0)
    ~mean:0.4 ~variance:0.04 ~tol_mean:0.005 ~tol_var:0.005

let test_lognormal () =
  let mu = 0.5 and sigma = 0.75 in
  let mean = exp (mu +. (sigma *. sigma /. 2.0)) in
  let variance =
    (exp (sigma *. sigma) -. 1.0) *. exp ((2.0 *. mu) +. (sigma *. sigma))
  in
  check_moments "LogNormal(0.5, 0.75)"
    (fun rng -> Sampler.lognormal rng ~mu ~sigma)
    ~mean ~variance ~tol_mean:0.05 ~tol_var:(0.08 *. variance)

let test_weibull () =
  let lambda = 2.0 and k = 1.5 in
  let g = Numerics.Specfun.gamma in
  let mean = lambda *. g (1.0 +. (1.0 /. k)) in
  let variance =
    lambda *. lambda *. (g (1.0 +. (2.0 /. k)) -. (g (1.0 +. (1.0 /. k)) ** 2.0))
  in
  check_moments "Weibull(2, 1.5)"
    (fun rng -> Sampler.weibull rng ~lambda ~k)
    ~mean ~variance ~tol_mean:0.02 ~tol_var:(0.1 *. variance)

let test_pareto () =
  let nu = 1.5 and alpha = 3.0 in
  let mean = alpha *. nu /. (alpha -. 1.0) in
  let variance =
    alpha *. nu *. nu /. (((alpha -. 1.0) ** 2.0) *. (alpha -. 2.0))
  in
  check_moments "Pareto(1.5, 3)"
    (fun rng -> Sampler.pareto rng ~nu ~alpha)
    ~mean ~variance ~tol_mean:0.03 ~tol_var:(0.4 *. variance)

let test_truncated_normal_shallow () =
  (* mu = 8, sigma = sqrt 2, lower = 0: truncation negligible, moments
     essentially the parent's. *)
  check_moments "TN(8, 2, 0)"
    (fun rng ->
      Sampler.truncated_normal rng ~mu:8.0 ~sigma:(sqrt 2.0) ~lower:0.0)
    ~mean:8.0 ~variance:2.0 ~tol_mean:0.02 ~tol_var:0.05

let test_truncated_normal_deep_tail () =
  (* lower = mu + 4 sigma: exercises the exponential-tilting branch and
     must stay above the truncation point. *)
  let rng = Rng.create ~seed:11 () in
  for _ = 1 to 20_000 do
    let x = Sampler.truncated_normal rng ~mu:0.0 ~sigma:1.0 ~lower:4.0 in
    if x < 4.0 then Alcotest.failf "deep-tail sample below truncation: %g" x
  done;
  (* Analytic conditional mean: lambda(4) ~ 4.2224. *)
  let m, _ =
    ( (let o = Numerics.Stats.Online.create () in
       let rng = Rng.create ~seed:12 () in
       for _ = 1 to 50_000 do
         Numerics.Stats.Online.push o
           (Sampler.truncated_normal rng ~mu:0.0 ~sigma:1.0 ~lower:4.0)
       done;
       Numerics.Stats.Online.mean o),
      () )
  in
  Alcotest.(check (float 0.01)) "deep-tail mean ~ inverse Mills at 4" 4.2224 m

let test_invalid_args () =
  let rng = Rng.create () in
  Alcotest.check_raises "gamma shape <= 0"
    (Invalid_argument "Sampler.gamma: shape and scale must be positive")
    (fun () -> ignore (Sampler.gamma rng ~shape:0.0 ~scale:1.0));
  Alcotest.check_raises "normal sigma <= 0"
    (Invalid_argument "Sampler.normal: sigma must be positive") (fun () ->
      ignore (Sampler.normal rng ~mu:0.0 ~sigma:0.0));
  Alcotest.check_raises "exponential rate <= 0"
    (Invalid_argument "Sampler.exponential: rate must be positive") (fun () ->
      ignore (Sampler.exponential rng ~rate:(-1.0)))

let () =
  Alcotest.run "sampler"
    [
      ( "moments",
        [
          Alcotest.test_case "standard normal" `Quick test_standard_normal;
          Alcotest.test_case "normal" `Quick test_normal;
          Alcotest.test_case "exponential" `Quick test_exponential;
          Alcotest.test_case "gamma (shape >= 1)" `Quick test_gamma_big_shape;
          Alcotest.test_case "gamma (shape < 1)" `Quick test_gamma_small_shape;
          Alcotest.test_case "beta" `Quick test_beta;
          Alcotest.test_case "lognormal" `Quick test_lognormal;
          Alcotest.test_case "weibull" `Quick test_weibull;
          Alcotest.test_case "pareto" `Quick test_pareto;
          Alcotest.test_case "truncated normal (shallow)" `Quick
            test_truncated_normal_shallow;
          Alcotest.test_case "truncated normal (deep tail)" `Quick
            test_truncated_normal_deep_tail;
        ] );
      ("errors", [ Alcotest.test_case "invalid args" `Quick test_invalid_args ]);
    ]
