(* Tests for the Appendix C convex-cost extension. *)

module G = Stochastic_core.Convex_cost
module C = Stochastic_core.Cost_model
module R = Stochastic_core.Recurrence
module E = Stochastic_core.Expected_cost
module S = Stochastic_core.Sequence

let rel_close ?(tol = 1e-9) name expected got =
  let scale = Float.max 1.0 (Float.abs expected) in
  if Float.abs (got -. expected) /. scale > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" name expected got

let affine_model = C.make ~alpha:1.5 ~beta:0.5 ~gamma:0.3 ()

let test_of_affine_embeds () =
  let g = G.of_affine affine_model in
  rel_close "G(2)" ((1.5 *. 2.0) +. 0.3) (g.G.g 2.0);
  rel_close "G'(7)" 1.5 (g.G.g' 7.0);
  rel_close "G_inv(G(4)) = 4" 4.0 (g.G.g_inv (g.G.g 4.0));
  rel_close "beta copied" 0.5 g.G.beta

let test_affine_recurrence_agrees () =
  (* Eq. (37) with an affine G must reduce to Eq. (11). *)
  let d = Distributions.Exponential.default in
  let g = G.of_affine affine_model in
  List.iter
    (fun (p2, p1) ->
      rel_close
        (Printf.sprintf "next at (%g, %g)" p2 p1)
        (R.next affine_model d ~t_prev2:p2 ~t_prev1:p1)
        (G.next g d ~t_prev2:p2 ~t_prev1:p1))
    [ (0.0, 0.5); (0.5, 1.2); (1.2, 2.5) ]

let test_affine_expected_cost_agrees () =
  let d = Distributions.Lognormal.default in
  let g = G.of_affine affine_model in
  let seq =
    S.sanitize ~support:d.Distributions.Dist.support
      (List.to_seq [ 15.0; 40.0; 100.0 ])
  in
  rel_close "Eq. (4) agreement"
    (E.exact affine_model d seq)
    (G.expected_cost g d seq)
    ~tol:1e-9

let test_quadratic_validation () =
  Alcotest.(check bool) "a <= 0 rejected" true
    (try ignore (G.quadratic ~a:0.0 ~b:1.0 ~c:0.0 ~beta:0.0); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative beta rejected" true
    (try ignore (G.quadratic ~a:1.0 ~b:0.0 ~c:0.0 ~beta:(-1.0)); false
     with Invalid_argument _ -> true)

let test_quadratic_inverse () =
  let g = G.quadratic ~a:2.0 ~b:3.0 ~c:1.0 ~beta:0.2 in
  List.iter
    (fun x -> rel_close (Printf.sprintf "g_inv(g(%g))" x) x (g.G.g_inv (g.G.g x)))
    [ 0.0; 0.5; 1.0; 4.0; 10.0 ]

let test_quadratic_search_on_exponential () =
  (* A quadratic reservation cost on Exp(1): search must return a
     valid first reservation with finite cost, and the cost must beat
     a deliberately bad start. *)
  let d = Distributions.Exponential.default in
  let g = G.quadratic ~a:0.5 ~b:1.0 ~c:0.0 ~beta:0.0 in
  let t1, cost = G.search ~m:400 g d ~upper:3.0 in
  Alcotest.(check bool) "t1 in range" true (t1 > 0.0 && t1 <= 3.0);
  Alcotest.(check bool) "finite cost" true (Float.is_finite cost);
  let bad = G.expected_cost g d (G.sequence g d ~t1:2.9) in
  Alcotest.(check bool) "search at least matches a bad start" true
    (cost <= bad +. 1e-9)

let test_quadratic_sequence_increasing () =
  let d = Distributions.Exponential.default in
  let g = G.quadratic ~a:0.5 ~b:1.0 ~c:0.0 ~beta:0.3 in
  let s = S.take 20 (G.sequence g d ~t1:0.8) in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "sanitized increasing" true (increasing s)

let prop_affine_equivalence =
  QCheck.Test.make ~count:100 ~name:"affine embedding matches Eq. (11) everywhere"
    QCheck.(
      triple (float_range 0.5 3.0) (float_range 0.0 2.0) (float_range 0.1 2.0))
    (fun (alpha, beta, t1) ->
      let m = C.make ~alpha ~beta ~gamma:0.1 () in
      let g = G.of_affine m in
      let d = Distributions.Exponential.default in
      let a = R.next m d ~t_prev2:0.0 ~t_prev1:t1 in
      let b = G.next g d ~t_prev2:0.0 ~t_prev1:t1 in
      Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a))

let () =
  Alcotest.run "convex_cost"
    [
      ( "unit",
        [
          Alcotest.test_case "of_affine embeds" `Quick test_of_affine_embeds;
          Alcotest.test_case "recurrence agreement" `Quick
            test_affine_recurrence_agrees;
          Alcotest.test_case "expected cost agreement" `Quick
            test_affine_expected_cost_agrees;
          Alcotest.test_case "quadratic validation" `Quick test_quadratic_validation;
          Alcotest.test_case "quadratic inverse" `Quick test_quadratic_inverse;
          Alcotest.test_case "quadratic search" `Quick
            test_quadratic_search_on_exponential;
          Alcotest.test_case "quadratic sequence" `Quick
            test_quadratic_sequence_increasing;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_affine_equivalence ]);
    ]
