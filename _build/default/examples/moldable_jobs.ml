(* Moldable jobs: choosing a (processors, time) reservation shape —
   the paper's first future-work item.

   A neuroscience-style job has random sequential work; on p
   processors it runs Amdahl-fast but bills for p times the reserved
   area. This example sweeps the parallel fraction and shows how the
   optimal processor count and the optimal first reservation move, on
   top of the unchanged STOCHASTIC machinery.

   Run with: dune exec examples/moldable_jobs.exe *)

module M = Stochastic_core.Moldable
module C = Stochastic_core.Cost_model

let () =
  (* Work in hours; wall-clock waiting is expensive (beta) relative to
     the area rate (alpha): a turnaround-focused user on a cheap
     machine. *)
  let work = Distributions.Lognormal.of_moments ~mean:2.0 ~std:0.8 in
  let cost = C.make ~alpha:0.05 ~beta:1.0 ~gamma:0.1 () in
  Format.printf "Sequential work: %a@." Distributions.Dist.pp work;
  Format.printf "Cost: area rate %.2f, wall-clock rate %.2f, %.2f/submission@.@."
    0.05 1.0 0.1;
  Format.printf "%-22s %8s %10s %12s %14s@." "speedup model" "best p" "t1 (h)"
    "E[cost]" "vs serial";
  Format.printf "%s@." (String.make 70 '-');
  let serial_cost = ref nan in
  List.iter
    (fun (label, s) ->
      let r = M.optimize ~max_procs:64 ~m:500 s cost work in
      if Float.is_nan !serial_cost then begin
        let _, c1 = r.M.per_procs.(0) in
        serial_cost := c1
      end;
      Format.printf "%-22s %8d %10.3f %12.4f %13.1f%%@." label r.M.procs
        r.M.t1 r.M.expected_cost
        (100.0 *. (1.0 -. (r.M.expected_cost /. !serial_cost))))
    [
      ("serial (f=0)", M.Amdahl 0.0);
      ("Amdahl f=0.50", M.Amdahl 0.5);
      ("Amdahl f=0.90", M.Amdahl 0.9);
      ("Amdahl f=0.99", M.Amdahl 0.99);
      ("power p^0.7", M.Power 0.7);
      ("linear", M.Linear);
    ];
  Format.printf
    "@.More parallel fraction -> more processors pay off, until the serial \
     remainder and the area bill cap the gain;@.a perfectly parallel job \
     takes everything it can get.@."
