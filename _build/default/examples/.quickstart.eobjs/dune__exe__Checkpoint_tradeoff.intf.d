examples/checkpoint_tradeoff.mli:
