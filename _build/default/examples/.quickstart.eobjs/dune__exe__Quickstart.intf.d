examples/quickstart.mli:
