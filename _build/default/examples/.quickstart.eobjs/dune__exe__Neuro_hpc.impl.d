examples/neuro_hpc.ml: Array Distributions Filename Format List Numerics Platform Randomness Stochastic_core Sys
