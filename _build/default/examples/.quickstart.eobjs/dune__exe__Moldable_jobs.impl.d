examples/moldable_jobs.ml: Array Distributions Float Format List Stochastic_core String
