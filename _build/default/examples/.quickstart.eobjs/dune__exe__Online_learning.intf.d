examples/online_learning.mli:
