examples/convex_pricing.mli:
