examples/online_learning.ml: Array Distributions Format List Platform Randomness Stochastic_core String
