examples/moldable_jobs.mli:
