examples/convex_pricing.ml: Distributions Format List Stochastic_core
