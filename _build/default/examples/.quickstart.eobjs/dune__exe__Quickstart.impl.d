examples/quickstart.ml: Array Distributions Format Randomness Stochastic_core
