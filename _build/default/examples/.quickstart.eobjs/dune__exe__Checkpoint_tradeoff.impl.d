examples/checkpoint_tradeoff.ml: Distributions Format List Stochastic_core String
