examples/cloud_reservation.mli:
