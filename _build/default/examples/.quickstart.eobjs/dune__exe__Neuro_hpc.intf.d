examples/neuro_hpc.mli:
