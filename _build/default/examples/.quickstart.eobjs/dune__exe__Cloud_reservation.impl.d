examples/cloud_reservation.ml: Distributions Format List Platform Randomness Stochastic_core String
