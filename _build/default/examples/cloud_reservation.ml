(* Cloud scenario: should a team running stochastic batch jobs buy
   AWS-style Reserved Instances or stay On-Demand?

   The paper's Sect. 5.2 criterion: reservations win when the best
   strategy's normalized cost E(S)/E^o stays below the OD/RI price
   ratio (about 4 on AWS). This example sweeps several workload
   distributions and price ratios and prints the verdict for each.

   Run with: dune exec examples/cloud_reservation.exe *)

module Strategy = Stochastic_core.Strategy
module Cost_model = Stochastic_core.Cost_model

let () =
  let model = Cost_model.reservation_only in
  let ratios = [ 1.5; 2.0; 3.0; 4.0 ] in
  Format.printf
    "Reserved-Instance vs On-Demand break-even analysis (Sect. 5.2)@.@.";
  Format.printf "%-16s %10s" "workload" "E(S)/E^o";
  List.iter (fun r -> Format.printf "  ratio %.1f" r) ratios;
  Format.printf "@.%s@." (String.make 62 '-');
  List.iter
    (fun (name, d) ->
      (* Compute the best reservation strategy for this workload. *)
      let strategy = Strategy.brute_force ~m:2000 ~n:1000 ~seed:3 () in
      let rng = Randomness.Rng.create ~seed:11 () in
      let normalized = Strategy.evaluate ~n:2000 ~rng model d strategy in
      Format.printf "%-16s %10.2f" name normalized;
      List.iter
        (fun ratio ->
          let pricing =
            Platform.Cloud.make_pricing ~reserved_hourly:1.0
              ~on_demand_hourly:ratio
          in
          let v =
            Platform.Cloud.compare_strategies pricing d
              ~normalized_cost:normalized
          in
          Format.printf "  %9s"
            (if v.Platform.Cloud.use_reserved then
               Format.sprintf "RI %.1fx" v.Platform.Cloud.advantage
             else "OD"))
        ratios;
      Format.printf "@.")
    Distributions.Table1.all;
  Format.printf
    "@.Reading: 'RI 2.1x' = reserved instances are 2.1x cheaper at that \
     price ratio; 'OD' = stay on demand.@.";
  Format.printf
    "The paper's observation: all normalized costs are below 4, so at AWS's \
     ratio reservations always win.@."
