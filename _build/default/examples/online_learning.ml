(* Online operation: scheduling while learning the distribution.

   A deployed cost tool does not know the execution-time law on day
   one. This example streams jobs from a hidden LogNormal, schedules
   the first ones with a model-free doubling rule, refits a LogNormal
   every 25 completions, and plots (in text) the running normalized
   cost converging towards the known-distribution optimum.

   Run with: dune exec examples/online_learning.exe *)

module O = Platform.Online
module C = Stochastic_core.Cost_model
module B = Stochastic_core.Brute_force

let () =
  let truth = Distributions.Lognormal.of_moments ~mean:5.0 ~std:1.5 in
  let model = C.reservation_only in
  Format.printf "Hidden law: %a@." Distributions.Dist.pp truth;

  (* The known-distribution reference. *)
  let oracle = B.search ~m:2000 ~evaluator:B.Exact model truth in
  Format.printf "Oracle (law known up front): normalized cost %.3f@.@."
    oracle.B.normalized;

  let rng = Randomness.Rng.create ~seed:2027 () in
  let t = O.run ~jobs:1000 model truth rng in
  Format.printf
    "1000 jobs scheduled online (%d refits). Running mean of normalized \
     cost:@." t.O.refits;
  List.iter
    (fun i ->
      let v = t.O.normalized_prefix_mean.(i - 1) in
      let bar =
        String.make (max 0 (min 60 (int_of_float ((v -. 1.0) *. 25.0)))) '#'
      in
      Format.printf "  after %4d jobs: %.3f %s@." i v bar)
    [ 10; 25; 50; 100; 200; 400; 700; 1000 ];
  Format.printf "@.Steady state (last quarter): %.3f vs oracle %.3f@."
    (O.final_normalized t) oracle.B.normalized;
  Format.printf
    "A few dozen completed jobs already buy most of the oracle's advantage; \
     the bootstrap phase is what costs.@."
