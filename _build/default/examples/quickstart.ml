(* Quickstart: a complete tour of the public API in ~40 lines.

   Run with: dune exec examples/quickstart.exe *)

module Dist = Distributions.Dist
module Cost_model = Stochastic_core.Cost_model
module Strategy = Stochastic_core.Strategy
module Sequence = Stochastic_core.Sequence
module Expected_cost = Stochastic_core.Expected_cost

let () =
  (* 1. Pick a job distribution: jobs whose runtimes are LogNormal
     with log-mean 3 and log-std 0.5 (mean ~ 22.8 time units). *)
  let jobs = Distributions.Lognormal.make ~mu:3.0 ~sigma:0.5 in
  Format.printf "Jobs: %a@." Dist.pp jobs;

  (* 2. Pick a cost model. ReservationOnly = pay exactly what you
     reserve (AWS Reserved Instances). *)
  let model = Cost_model.reservation_only in

  (* 3. Ask for a reservation strategy. BRUTE-FORCE scans candidate
     first reservations and applies the paper's optimal recurrence. *)
  let strategy = Strategy.brute_force ~m:2000 ~n:1000 ~seed:1 () in
  let sequence = strategy.Strategy.build model jobs in
  Format.printf "Reservation sequence: %a@." (Sequence.pp_prefix 6) sequence;

  (* 4. What will it cost in expectation? Normalized cost 1.0 would be
     a clairvoyant scheduler; the paper's Table 2 reports ~1.85 for
     this distribution. *)
  let cost = Expected_cost.exact model jobs sequence in
  Format.printf "Expected cost: %.3f (normalized %.3f)@." cost
    (Expected_cost.normalized model jobs ~cost);

  (* 5. Run one concrete job through the sequence. *)
  let rng = Randomness.Rng.create ~seed:7 () in
  let duration = jobs.Dist.sample rng in
  let k, paid = Sequence.cost_of_run model sequence duration in
  Format.printf "A job of length %.2f needed %d reservation(s), paying %.2f@."
    duration k paid;

  (* 6. Compare against a simple heuristic on the same sample set. *)
  let samples = Dist.samples jobs rng 1000 in
  Array.sort compare samples;
  let eval s = Strategy.evaluate_on model jobs ~sorted_samples:samples s in
  Format.printf "Brute-Force %.3f vs Mean-Doubling %.3f vs Median %.3f@."
    (eval strategy)
    (eval Strategy.mean_doubling)
    (eval Strategy.median_by_median)
