(* Convex (tiered) reservation pricing — the Appendix C extension.

   Some platforms price long reservations superlinearly (congestion
   pricing): G(l) = a l^2 + b l. This example compares the optimal
   first reservation and expected cost under affine vs quadratic
   pricing for exponential jobs, showing how convexity pushes the
   strategy towards more, shorter reservations.

   Run with: dune exec examples/convex_pricing.exe *)

module G = Stochastic_core.Convex_cost
module C = Stochastic_core.Cost_model
module S = Stochastic_core.Sequence

let () =
  let d = Distributions.Exponential.make ~rate:1.0 in

  (* Baseline: affine pricing through the Appendix C machinery (it
     must agree with the core solver, which the test suite checks). *)
  let affine = G.of_affine C.reservation_only in
  let t1_affine, cost_affine = G.search ~m:2000 affine d ~upper:4.0 in
  Format.printf "Affine pricing   G(l) = l:            t1 = %.3f, E = %.4f@."
    t1_affine cost_affine;

  (* Quadratic pricing with growing curvature. *)
  List.iter
    (fun a ->
      let g = G.quadratic ~a ~b:1.0 ~c:0.0 ~beta:0.0 in
      let t1, cost = G.search ~m:2000 g d ~upper:4.0 in
      let seq = G.sequence g d ~t1 in
      Format.printf
        "Quadratic a=%.2f G(l) = %.2f l^2 + l:   t1 = %.3f, E = %.4f, \
         sequence %a@."
        a a t1 cost (S.pp_prefix 4) seq)
    [ 0.1; 0.5; 1.0; 2.0 ];

  Format.printf
    "@.As curvature grows, the optimal first reservation shrinks: long \
     slots become disproportionately expensive,@.so the strategy hedges \
     with shorter, more numerous requests.@."
