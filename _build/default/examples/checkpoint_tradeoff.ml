(* Checkpointing trade-off — the future-work extension from the
   paper's conclusion.

   When reservations can end with a checkpoint, a failed slot is not
   wasted: its work carries over. This example maps the trade-off the
   paper anticipates, sweeping the checkpoint overhead on a
   heavy-tailed workload (Weibull, Table 1 instantiation) and printing
   where checkpointed periodic reservations stop beating the plain
   optimal sequence.

   Run with: dune exec examples/checkpoint_tradeoff.exe *)

module Ck = Stochastic_core.Checkpoint
module C = Stochastic_core.Cost_model
module B = Stochastic_core.Brute_force

let () =
  let model = C.reservation_only in
  let d = Distributions.Weibull.default in
  Format.printf "Workload: %a@." Distributions.Dist.pp d;

  (* Plain (no-checkpoint) optimum via brute force with exact
     evaluation. *)
  let plain = B.search ~m:2000 ~evaluator:B.Exact model d in
  Format.printf
    "Plain optimal sequence: E = %.4f (normalized %.3f, t1 = %.3f)@.@."
    plain.B.cost plain.B.normalized plain.B.t1;

  Format.printf "%-24s %12s %12s %10s@." "checkpoint overhead" "best chunk"
    "E(checkpt)" "verdict";
  Format.printf "%s@." (String.make 62 '-');
  List.iter
    (fun overhead ->
      let p =
        Ck.make_params ~checkpoint_cost:overhead
          ~restart_cost:(overhead /. 2.0)
      in
      let chunk, cost = Ck.optimize_chunk ~m:150 p model d ~chunk_upper:6.0 in
      Format.printf "C=%.2f R=%.2f %17.3f %12.4f %10s@." overhead
        (overhead /. 2.0) chunk cost
        (if cost < plain.B.cost then "CHECKPOINT" else "plain");
      ())
    [ 0.0; 0.05; 0.1; 0.25; 0.5; 1.0; 2.0 ];

  Format.printf
    "@.Small overheads: checkpointing dominates on heavy tails (failed \
     slots keep their work).@.Large overheads: the overhead tax exceeds \
     the restart savings and the plain strategy wins@.— exactly the \
     'complicated trade-off' the paper's conclusion predicts.@."
