module Dist = Distributions.Dist

let mean_by_mean d =
  let raw =
    let rec step prev () = Seq.Cons (prev, step (d.Dist.conditional_mean prev)) in
    step d.Dist.mean
  in
  Sequence.sanitize ~support:d.Dist.support raw

let mean_stdev d =
  let mu = d.Dist.mean and sigma = Dist.std d in
  let raw i = mu +. (float_of_int i *. sigma) in
  Sequence.sanitize ~support:d.Dist.support (Seq.ints 0 |> Seq.map raw)

let mean_doubling d =
  let mu = d.Dist.mean in
  let raw =
    let rec step v () = Seq.Cons (v, step (2.0 *. v)) in
    step mu
  in
  Sequence.sanitize ~support:d.Dist.support raw

let quantile_ladder ~q d =
  if not (q > 0.0 && q < 1.0) then
    invalid_arg "Heuristics.quantile_ladder: q must be in (0, 1)";
  (* t_i = Q(1 - q^i); once q^i underflows below the quantile
     function's resolution, sanitize falls back to doubling. *)
  let raw =
    Seq.ints 1
    |> Seq.map (fun i ->
           let tail = q ** float_of_int i in
           if tail <= 0.0 then nan else d.Dist.quantile (1.0 -. tail))
  in
  Sequence.sanitize ~support:d.Dist.support raw

let median_by_median d = quantile_ladder ~q:0.5 d
