type t = float Seq.t

exception Not_covered of float

let validate_increasing ts =
  let prev = ref 0.0 in
  List.iter
    (fun x ->
      if not (Float.is_finite x && x > !prev) then
        invalid_arg
          "Sequence.of_list: reservations must be positive, finite and \
           strictly increasing";
      prev := x)
    ts

let of_list ts =
  validate_increasing ts;
  List.to_seq ts

let of_array ts =
  let ts = Array.copy ts in
  validate_increasing (Array.to_list ts);
  Array.to_seq ts

let take n s = List.of_seq (Seq.take n s)

let prefix_until ?(limit = 100_000) stop s =
  let out = ref [] in
  let count = ref 0 in
  let rec go s =
    if !count >= limit then ()
    else
      match Seq.uncons s with
      | None -> ()
      | Some (x, rest) ->
          incr count;
          out := x :: !out;
          if not (stop x) then go rest
  in
  go s;
  Array.of_list (List.rev !out)

let is_strictly_increasing n s =
  let prev = ref 0.0 in
  let ok = ref true in
  Seq.iter
    (fun x ->
      if x <= !prev then ok := false;
      prev := x)
    (Seq.take n s);
  !ok

let sanitize ~support s =
  let double prev = if prev > 0.0 then 2.0 *. prev else 1.0 in
  match support with
  | Distributions.Dist.Unbounded _ ->
      (* State: (last emitted value, remaining raw sequence or None once
         we have switched to pure doubling). *)
      let rec step (prev, raw) () =
        match raw with
        | None ->
            let v = double prev in
            Seq.Cons (v, step (v, None))
        | Some raw -> (
            match Seq.uncons raw with
            | None ->
                let v = double prev in
                Seq.Cons (v, step (v, None))
            | Some (x, rest) ->
                if Float.is_finite x && x > prev && x > 0.0 then
                  Seq.Cons (x, step (x, Some rest))
                else begin
                  (* Raw value unusable: abandon the raw sequence. *)
                  let v = double prev in
                  Seq.Cons (v, step (v, None))
                end)
      in
      step (0.0, Some s)
  | Distributions.Dist.Bounded (a, b) ->
      let near_b = b -. (1e-9 *. (b -. a)) in
      let rec step (prev, raw) () =
        if prev >= b then Seq.Nil
        else
          match raw with
          | None -> Seq.Cons (b, step (b, None))
          | Some raw -> (
              match Seq.uncons raw with
              | None -> Seq.Cons (b, step (b, None))
              | Some (x, rest) ->
                  if not (Float.is_finite x && x > prev && x > 0.0) then
                    (* Unusable value: finish with the upper bound. *)
                    Seq.Cons (b, step (b, None))
                  else if x >= near_b then Seq.Cons (b, step (b, None))
                  else Seq.Cons (x, step (x, Some rest)))
      in
      step (0.0, Some s)

let cost_of_run ?(max_steps = 100_000) m s t =
  let prefix = Numerics.Kahan.create () in
  let rec go k s =
    if k > max_steps then raise (Not_covered t);
    match Seq.uncons s with
    | None -> raise (Not_covered t)
    | Some (tk, rest) ->
        if t <= tk then begin
          let open Cost_model in
          ( k,
            Numerics.Kahan.sum prefix
            +. (m.alpha *. tk)
            +. (m.beta *. t)
            +. m.gamma )
        end
        else begin
          let open Cost_model in
          Numerics.Kahan.add prefix
            ((m.alpha *. tk) +. (m.beta *. tk) +. m.gamma);
          go (k + 1) rest
        end
  in
  go 1 s

let mean_cost_sorted ?(max_steps = 100_000) m s samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Sequence.mean_cost_sorted: empty sample";
  let open Cost_model in
  let acc = Numerics.Kahan.create () in
  (* comp tracks the prefix sum of failed-reservation costs exactly. *)
  let comp = Numerics.Kahan.create () in
  let idx = ref 0 in
  let steps = ref 0 in
  let rec go s =
    if !idx >= n then ()
    else begin
      incr steps;
      if !steps > max_steps then raise (Not_covered samples.(!idx));
      match Seq.uncons s with
      | None -> raise (Not_covered samples.(!idx))
      | Some (tk, rest) ->
          let p = Numerics.Kahan.sum comp in
          while !idx < n && samples.(!idx) <= tk do
            Numerics.Kahan.add acc
              (p +. (m.alpha *. tk) +. (m.beta *. samples.(!idx)) +. m.gamma);
            incr idx
          done;
          if !idx < n then begin
            Numerics.Kahan.add comp
              ((m.alpha *. tk) +. (m.beta *. tk) +. m.gamma);
            go rest
          end
    end
  in
  go s;
  Numerics.Kahan.sum acc /. float_of_int n

let pp_prefix n fmt s =
  let items = take (n + 1) s in
  let shown = if List.length items > n then List.filteri (fun i _ -> i < n) items else items in
  Format.fprintf fmt "(%s%s)"
    (String.concat ", " (List.map (Printf.sprintf "%g") shown))
    (if List.length items > n then ", ..." else "")
