module Dist = Distributions.Dist

let next m d ~t_prev2 ~t_prev1 =
  let open Cost_model in
  let f1 = d.Dist.pdf t_prev1 in
  let sf2 = Dist.sf d t_prev2 in
  let sf1 = Dist.sf d t_prev1 in
  (sf2 /. f1)
  +. (m.beta /. m.alpha *. ((sf1 /. f1) -. t_prev1))
  -. (m.gamma /. m.alpha)

let generate ?(coverage = 1.0 -. 1e-9) ?(max_len = 1000) m d ~t1 =
  let a = Dist.lower d and b = Dist.upper d in
  if not (Float.is_finite t1) || t1 <= a || t1 > b then
    Error "t1 outside the distribution support"
  else begin
    let out = ref [ t1 ] in
    let len = ref 1 in
    let t_prev2 = ref 0.0 and t_prev1 = ref t1 in
    let status = ref `Running in
    if d.Dist.cdf t1 >= coverage then status := `Done;
    if t1 >= b then status := `Done;
    while !status = `Running do
      if !len >= max_len then status := `Too_long
      else begin
        let t = next m d ~t_prev2:!t_prev2 ~t_prev1:!t_prev1 in
        if not (Float.is_finite t) then status := `Not_finite
        else if t <= !t_prev1 then status := `Not_increasing
        else begin
          let t = if t >= b then b else t in
          out := t :: !out;
          incr len;
          t_prev2 := !t_prev1;
          t_prev1 := t;
          if t >= b || d.Dist.cdf t >= coverage then status := `Done
        end
      end
    done;
    match !status with
    | `Done -> Ok (Array.of_list (List.rev !out))
    | `Too_long -> Error "sequence did not reach coverage within max_len"
    | `Not_finite -> Error "recurrence produced a non-finite value"
    | `Not_increasing -> Error "recurrence is not strictly increasing"
    | `Running -> assert false
  end

let sequence m d ~t1 =
  let raw =
    let rec step (t_prev2, t_prev1) () =
      let t = next m d ~t_prev2 ~t_prev1 in
      (* sanitize takes over when t is unusable. *)
      Seq.Cons (t, step (t_prev1, t))
    in
    fun () -> Seq.Cons (t1, step (0.0, t1))
  in
  Sequence.sanitize ~support:d.Dist.support raw
