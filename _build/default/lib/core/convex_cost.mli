(** Extension to convex reservation-cost functions (Appendix C).

    The affine cost [alpha t1 + beta min(t1, t) + gamma] generalises to
    [G(t1) + beta min(t1, t)] for any smooth convex increasing [G].
    Theorem 14 gives the optimality condition and Proposition 3 the
    recurrence

    {[ t_i = G^-1 ( G'(t_(i-1)) (1 - F t_(i-2)) / f t_(i-1)
                    + beta ((1 - F t_(i-1)) / f t_(i-1) - t_(i-1)) ) ]}

    so the brute-force machinery carries over unchanged. This module
    mirrors {!Recurrence}, {!Expected_cost} and {!Brute_force} for such
    costs. *)

type g = {
  g : float -> float;  (** The convex reservation cost [G]. *)
  g' : float -> float;  (** Its derivative. *)
  g_inv : float -> float;  (** Its inverse on the range of [G]. *)
  beta : float;  (** Usage-time coefficient [beta >= 0]. *)
}

val of_affine : Cost_model.t -> g
(** [of_affine m] embeds the affine model
    [G(x) = alpha x + gamma]; with it every function of this module
    agrees with its affine counterpart (tested). *)

val quadratic : a:float -> b:float -> c:float -> beta:float -> g
(** [quadratic ~a ~b ~c ~beta] is [G(x) = a x^2 + b x + c] restricted
    to [x >= 0] — e.g. congestion-priced reservations.
    @raise Invalid_argument unless [a > 0.], [b >= 0.] and
    [beta >= 0.]. *)

val next :
  g -> Distributions.Dist.t -> t_prev2:float -> t_prev1:float -> float
(** Proposition 3's recurrence step (Eq. (37)). *)

val sequence : g -> Distributions.Dist.t -> t1:float -> Sequence.t
(** [sequence g d ~t1] is the sanitized recurrence sequence from
    [t1]. *)

val expected_cost :
  ?tail_eps:float -> ?max_terms:int -> g -> Distributions.Dist.t -> Sequence.t -> float
(** [expected_cost g d s] evaluates
    [beta E(X) + sum_(i>=0) (G(t_(i+1)) + beta t_i) P(X >= t_i)]. *)

val search :
  ?m:int -> g -> Distributions.Dist.t -> upper:float -> float * float
(** [search g d ~upper] grid-scans [t1] over [(lower d, upper]] with
    [m] (default [1000]) candidates and returns [(t1, expected_cost)]
    of the best valid candidate.
    @raise Invalid_argument if no candidate is valid. *)
