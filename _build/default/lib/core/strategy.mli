(** A uniform interface over all reservation strategies.

    The evaluation harness (Table 2/4, Fig. 4) treats every heuristic
    as a named function from a cost model and a distribution to a
    reservation sequence. This module packages the seven strategies
    compared in the paper plus the exact exponential solver. *)

type t = {
  name : string;  (** Display name, matching the paper's tables. *)
  build : Cost_model.t -> Distributions.Dist.t -> Sequence.t;
      (** Produce the reservation sequence for a problem instance. *)
}

val mean_by_mean : t
val mean_stdev : t
val mean_doubling : t
val median_by_median : t

val quantile_ladder : q:float -> t
(** The generalised tail-halving heuristic
    ({!Heuristics.quantile_ladder}); [q = 0.5] is MEDIAN-BY-MEDIAN. *)

val brute_force : ?m:int -> ?n:int -> ?seed:int -> unit -> t
(** [brute_force ()] is BRUTE-FORCE with [m] grid points (default
    [5000]) evaluated over [n] Monte-Carlo samples (default [1000])
    from a private stream seeded with [seed] — deterministic across
    runs. *)

val brute_force_exact : ?m:int -> unit -> t
(** BRUTE-FORCE with the deterministic Eq. (4) evaluator. *)

val dp_discretized : ?eps:float -> scheme:Discretize.scheme -> n:int -> unit -> t
(** [dp_discretized ~scheme ~n] discretizes with [scheme] and [n]
    samples ([eps] defaults to the paper's [1e-7]) and solves the
    discrete instance optimally by dynamic programming. *)

val equal_time : t
(** [dp_discretized ~scheme:Equal_time ~n:1000] — Table 2's
    "Equal-time" column. *)

val equal_probability : t
(** [dp_discretized ~scheme:Equal_probability ~n:1000] — Table 2's
    "Equal-prob." column. *)

val table2 : ?seed:int -> unit -> t list
(** The seven strategies of Table 2 in column order: BRUTE-FORCE,
    MEAN-BY-MEAN, MEAN-STDEV, MEAN-DOUBLING, MEDIAN-BY-MEDIAN,
    EQUAL-TIME, EQUAL-PROBABILITY — instantiated with the paper's
    parameters. *)

val evaluate :
  ?n:int ->
  rng:Randomness.Rng.t ->
  Cost_model.t ->
  Distributions.Dist.t ->
  t ->
  float
(** [evaluate ~rng cost d s] builds the strategy's sequence and
    returns its normalized Monte-Carlo expected cost over [n] (default
    [1000]) fresh samples — the quantity tabulated throughout
    Sect. 5. *)

val evaluate_on :
  Cost_model.t ->
  Distributions.Dist.t ->
  sorted_samples:float array ->
  t ->
  float
(** [evaluate_on cost d ~sorted_samples s] is {!evaluate} over a
    caller-supplied sorted sample set — use one shared set per
    distribution (common random numbers) when comparing strategies, so
    that ranking differences reflect the sequences rather than the
    draws. *)
