module Dist = Distributions.Dist

let omniscient m d =
  let open Cost_model in
  ((m.alpha +. m.beta) *. d.Dist.mean) +. m.gamma

let exact ?(tail_eps = 1e-16) ?(max_terms = 100_000) m d s =
  let open Cost_model in
  let acc = Numerics.Kahan.create () in
  Numerics.Kahan.add acc (m.beta *. d.Dist.mean);
  (* i = 0 term uses t_0 = 0, P(X >= 0) = 1 and needs t_1. *)
  let rec go i t_prev sf_prev s =
    if i > max_terms then ()
    else
      match Seq.uncons s with
      | None -> ()
      | Some (t_next, rest) ->
          Numerics.Kahan.add acc
            (((m.alpha *. t_next) +. (m.beta *. t_prev) +. m.gamma) *. sf_prev);
          let sf_next = Dist.sf d t_next in
          if sf_next < tail_eps then ()
          else go (i + 1) t_next sf_next rest
  in
  go 0 0.0 1.0 s;
  Numerics.Kahan.sum acc

let monte_carlo m d rng ~n s =
  let samples = Dist.samples d rng n in
  Array.sort compare samples;
  Sequence.mean_cost_sorted m s samples

let mean_cost_presampled m ~sorted_samples s =
  Sequence.mean_cost_sorted m s sorted_samples

let normalized m d ~cost = cost /. omniscient m d
