(** Checkpointed reservation sequences — the extension sketched in the
    paper's conclusion ("include checkpoint snapshots at the end of
    some, if not all, reservations").

    With checkpointing, a failed reservation is not wasted: the work it
    completed (minus the checkpoint overhead) is preserved, and the
    next reservation resumes from the snapshot after paying a restart
    overhead. A reservation of length [l] therefore contributes
    [l - restart - checkpoint] units of progress when it fails
    ([restart] is only paid from the second reservation on), and the
    job of total work [t] completes in the first reservation [k] whose
    cumulative progress plus remaining length covers [t] (no trailing
    checkpoint is taken on success).

    The trade-off the paper anticipates is explicit here: overheads
    consume reservation time, but long jobs no longer restart from
    scratch, which shrinks the expensive tail of the cost
    distribution. *)

type params = {
  checkpoint_cost : float;  (** Time to write a snapshot, [>= 0]. *)
  restart_cost : float;  (** Time to restore one, [>= 0]. *)
}

val make_params : checkpoint_cost:float -> restart_cost:float -> params
(** @raise Invalid_argument on negative overheads. *)

val no_overhead : params
(** Free checkpoints — useful for tests: with it every job finishes in
    at most the reservations a cumulative-length argument predicts. *)

val cost_of_run :
  ?max_steps:int ->
  params ->
  Cost_model.t ->
  Sequence.t ->
  float ->
  int * float
(** [cost_of_run p m s t] replays a job of duration [t] against the
    checkpointed sequence [s] and returns [(k, total cost)]. Failed
    reservations are paid in full ([alpha l + beta l + gamma]); the
    successful one pays its reserved length at [alpha] and only the
    time actually used at [beta].
    @raise Sequence.Not_covered if the sequence stops making progress
    before covering [t] (reservations shorter than the overheads
    contribute nothing), or after [max_steps] reservations. *)

val expected_cost :
  ?tail_eps:float ->
  ?max_steps:int ->
  params ->
  Cost_model.t ->
  Distributions.Dist.t ->
  Sequence.t ->
  float
(** [expected_cost p m d s] evaluates the expectation of
    {!cost_of_run} over [d] exactly: the cost is affine in the job
    duration on each coverage slab [(c_(k-1), c_k]], so the expectation
    is a sum of slab masses and partial expectations (computed from the
    distribution's conditional mean) — [O(slots)], no quadrature. The
    series is truncated once the remaining tail mass drops below
    [tail_eps] (default [1e-12]). Returns [infinity] for sequences
    that stop making progress (slots shorter than the overheads) or
    exceed [max_steps] (default [500_000]) slots. *)

val periodic : chunk:float -> params -> float Seq.t
(** [periodic ~chunk p] is the infinite sequence whose every
    reservation completes exactly [chunk] units of new work:
    [t_1 = chunk + C], [t_i = R + chunk + C] for [i >= 2].
    @raise Invalid_argument if [chunk <= 0.]. *)

val optimize_chunk :
  ?m:int ->
  params ->
  Cost_model.t ->
  Distributions.Dist.t ->
  chunk_upper:float ->
  float * float
(** [optimize_chunk p cost d ~chunk_upper] grid-searches the periodic
    chunk size over [(0, chunk_upper]] with [m] (default [400]) points
    and returns [(best_chunk, expected_cost)]. *)

val better_than_plain :
  params ->
  Cost_model.t ->
  Distributions.Dist.t ->
  plain_cost:float ->
  chunk_upper:float ->
  bool * float
(** [better_than_plain p cost d ~plain_cost ~chunk_upper] optimises
    the checkpointed periodic strategy and reports whether it beats
    the given no-checkpoint expected cost, together with its value —
    the quantitative form of the paper's "complicated trade-off". *)
