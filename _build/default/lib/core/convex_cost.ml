module Dist = Distributions.Dist

type g = {
  g : float -> float;
  g' : float -> float;
  g_inv : float -> float;
  beta : float;
}

let of_affine m =
  let open Cost_model in
  {
    g = (fun x -> (m.alpha *. x) +. m.gamma);
    g' = (fun _ -> m.alpha);
    g_inv = (fun y -> (y -. m.gamma) /. m.alpha);
    beta = m.beta;
  }

let quadratic ~a ~b ~c ~beta =
  if a <= 0.0 then invalid_arg "Convex_cost.quadratic: a must be > 0";
  if b < 0.0 then invalid_arg "Convex_cost.quadratic: b must be >= 0";
  if beta < 0.0 then invalid_arg "Convex_cost.quadratic: beta must be >= 0";
  {
    g = (fun x -> (a *. x *. x) +. (b *. x) +. c);
    g' = (fun x -> (2.0 *. a *. x) +. b);
    g_inv =
      (fun y ->
        (* Positive root of a x^2 + b x + (c - y) = 0. *)
        let disc = (b *. b) -. (4.0 *. a *. (c -. y)) in
        if disc < 0.0 then nan
        else (-.b +. sqrt disc) /. (2.0 *. a));
    beta;
  }

let next gc d ~t_prev2 ~t_prev1 =
  let f1 = d.Dist.pdf t_prev1 in
  let sf2 = Dist.sf d t_prev2 in
  let sf1 = Dist.sf d t_prev1 in
  gc.g_inv
    ((gc.g' t_prev1 *. (sf2 /. f1))
    +. (gc.beta *. ((sf1 /. f1) -. t_prev1)))

let sequence gc d ~t1 =
  let raw =
    let rec step (prev2, prev1) () =
      let t = next gc d ~t_prev2:prev2 ~t_prev1:prev1 in
      Seq.Cons (t, step (prev1, t))
    in
    fun () -> Seq.Cons (t1, step (0.0, t1))
  in
  Sequence.sanitize ~support:d.Dist.support raw

let expected_cost ?(tail_eps = 1e-16) ?(max_terms = 100_000) gc d s =
  let acc = Numerics.Kahan.create () in
  Numerics.Kahan.add acc (gc.beta *. d.Dist.mean);
  let rec go i t_prev sf_prev s =
    if i > max_terms then ()
    else
      match Seq.uncons s with
      | None -> ()
      | Some (t_next, rest) ->
          Numerics.Kahan.add acc
            ((gc.g t_next +. (gc.beta *. t_prev)) *. sf_prev);
          let sf_next = Dist.sf d t_next in
          if sf_next < tail_eps then () else go (i + 1) t_next sf_next rest
  in
  go 0 0.0 1.0 s;
  Numerics.Kahan.sum acc

let search ?(m = 1000) gc d ~upper =
  let a = Dist.lower d in
  let step = (upper -. a) /. float_of_int m in
  let best_t1 = ref nan and best = ref infinity in
  for i = 1 to m do
    let t1 = a +. (float_of_int i *. step) in
    (* Validate monotonicity over the bulk of the mass, as in the
       affine brute force. *)
    let seq = sequence gc d ~t1 in
    let prefix =
      Sequence.prefix_until ~limit:1000
        (fun t -> Dist.sf d t < 1e-9)
        seq
    in
    let valid = ref (Array.length prefix > 0) in
    for j = 1 to Array.length prefix - 1 do
      if prefix.(j) <= prefix.(j - 1) then valid := false
    done;
    (* Reject candidates whose raw recurrence broke (sanitize fell
       back to doubling inside the mass region would still be
       increasing, so additionally check the raw next value). *)
    if !valid then begin
      let c = expected_cost gc d seq in
      if Float.is_finite c && c < !best then begin
        best := c;
        best_t1 := t1
      end
    end
  done;
  if Float.is_nan !best_t1 then
    invalid_arg "Convex_cost.search: no valid candidate";
  (!best_t1, !best)
