module Dist = Distributions.Dist

type evaluator =
  | Monte_carlo of { rng : Randomness.Rng.t; n : int }
  | Exact

type result = {
  t1 : float;
  cost : float;
  normalized : float;
  sequence : Sequence.t;
  candidates : int;
  valid : int;
}

let default_m = 5000
let default_n = 1000

let make_eval evaluator cost d =
  match evaluator with
  | Exact -> fun seq -> Expected_cost.exact cost d seq
  | Monte_carlo { rng; n } ->
      let samples = Dist.samples d rng n in
      Array.sort compare samples;
      fun seq -> Expected_cost.mean_cost_presampled cost ~sorted_samples:samples seq

let default_evaluator () = Monte_carlo { rng = Randomness.Rng.create (); n = default_n }

let candidate_cost eval cost d t1 =
  match Recurrence.generate cost d ~t1 with
  | Error _ -> None
  | Ok _prefix ->
      (* The validated prefix guarantees the sanitized infinite
         sequence coincides with the raw recurrence over all but a
         1e-9 tail of the mass. *)
      Some (eval (Recurrence.sequence cost d ~t1))

let scan ?(m = default_m) ?evaluator cost d =
  let evaluator =
    match evaluator with Some e -> e | None -> default_evaluator ()
  in
  let eval = make_eval evaluator cost d in
  let a, b = Bounds.search_interval cost d in
  let step = (b -. a) /. float_of_int m in
  Array.init m (fun i ->
      let t1 = a +. (float_of_int (i + 1) *. step) in
      (t1, candidate_cost eval cost d t1))

let search ?m ?evaluator cost d =
  let results = scan ?m ?evaluator cost d in
  let candidates = Array.length results in
  let valid = ref 0 in
  let best_t1 = ref nan and best_cost = ref infinity in
  Array.iter
    (fun (t1, c) ->
      match c with
      | None -> ()
      | Some c ->
          incr valid;
          if c < !best_cost then begin
            best_cost := c;
            best_t1 := t1
          end)
    results;
  if !valid = 0 then
    invalid_arg "Brute_force.search: no valid candidate sequence found";
  {
    t1 = !best_t1;
    cost = !best_cost;
    normalized = Expected_cost.normalized cost d ~cost:!best_cost;
    sequence = Recurrence.sequence cost d ~t1:!best_t1;
    candidates;
    valid = !valid;
  }

let profile ?m ?evaluator cost d =
  let results = scan ?m ?evaluator cost d in
  Array.map
    (fun (t1, c) ->
      (t1, Option.map (fun c -> Expected_cost.normalized cost d ~cost:c) c))
    results

let cost_of_t1 ?evaluator cost d t1 =
  let evaluator =
    match evaluator with Some e -> e | None -> default_evaluator ()
  in
  let eval = make_eval evaluator cost d in
  candidate_cost eval cost d t1
