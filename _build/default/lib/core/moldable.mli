(** Moldable-job reservations — the paper's first future-work item:
    "allowing requests with variable amount of resources, hence
    offering a combination of a reservation time and a number of
    processors".

    Model: a job has a random sequential work [W ~ D]; on [p]
    processors it runs for [W / speedup p]. A reservation is a pair
    [(p, t)]; the platform charges the reserved {e area} at rate
    [alpha] ([alpha * p * t]), the job's own wall-clock usage at rate
    [beta] (waiting is not parallelised), and a fixed [gamma] per
    submission:

    {[ alpha * p * t + beta * min(t, runtime) + gamma ]}

    For a {e fixed} processor count the problem reduces exactly to
    STOCHASTIC: the runtime law is [D] scaled by [1/speedup p] and the
    cost model has [alpha' = alpha * p] — so the whole solver stack is
    reused unchanged, and optimising over [p] is a one-dimensional
    outer search. Structural facts covered by the test suite: with
    linear speedup and [beta = 0] the cost is independent of [p]; with
    linear speedup and [beta > 0] more processors always help; under
    Amdahl's law the area term makes very large [p] wasteful, giving a
    finite optimum. *)

type speedup =
  | Linear  (** [speedup p = p] (embarrassingly parallel). *)
  | Amdahl of float
      (** [Amdahl f]: parallel fraction [f] in [[0, 1]];
          [speedup p = 1 / ((1 - f) + f/p)]. *)
  | Power of float
      (** [Power e]: [speedup p = p^e] with [e] in [[0, 1]] — an
          empirical sublinear-scaling model. *)

val speedup_factor : speedup -> int -> float
(** [speedup_factor s p] for [p >= 1].
    @raise Invalid_argument on [p < 1] or malformed parameters. *)

val runtime_distribution :
  speedup -> procs:int -> Distributions.Dist.t -> Distributions.Dist.t
(** [runtime_distribution s ~procs d] is the law of
    [W / speedup_factor s procs] for [W ~ d]. *)

val cost_model_for : Cost_model.t -> procs:int -> Cost_model.t
(** [cost_model_for m ~procs] scales the area rate:
    [alpha' = alpha * procs]; [beta] and [gamma] are wall-clock/
    per-submission and do not scale. *)

type result = {
  procs : int;  (** Optimal processor count found. *)
  t1 : float;  (** First reservation length at that count. *)
  expected_cost : float;
  per_procs : (int * float) array;
      (** Expected cost of the best sequence for every candidate
          count (the outer search's profile). *)
}

val optimize :
  ?max_procs:int ->
  ?m:int ->
  speedup ->
  Cost_model.t ->
  Distributions.Dist.t ->
  result
(** [optimize s cost d] runs BRUTE-FORCE (exact evaluator, [m] grid
    points, default [800]) for every processor count up to
    [max_procs] (default [64]) and returns the best combination.
    @raise Invalid_argument if [max_procs < 1]. *)
