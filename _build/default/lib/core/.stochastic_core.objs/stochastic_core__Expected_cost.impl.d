lib/core/expected_cost.ml: Array Cost_model Distributions Numerics Seq Sequence
