lib/core/discretize.mli: Distributions
