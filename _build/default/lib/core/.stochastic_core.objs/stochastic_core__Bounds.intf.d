lib/core/bounds.mli: Cost_model Distributions
