lib/core/convex_cost.ml: Array Cost_model Distributions Float Numerics Seq Sequence
