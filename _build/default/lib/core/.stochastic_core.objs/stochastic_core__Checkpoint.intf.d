lib/core/checkpoint.mli: Cost_model Distributions Seq Sequence
