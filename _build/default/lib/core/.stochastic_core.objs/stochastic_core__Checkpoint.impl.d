lib/core/checkpoint.ml: Cost_model Distributions Float Numerics Seq Sequence
