lib/core/convex_cost.mli: Cost_model Distributions Sequence
