lib/core/brute_force.mli: Cost_model Distributions Randomness Sequence
