lib/core/expected_cost.mli: Cost_model Distributions Randomness Sequence
