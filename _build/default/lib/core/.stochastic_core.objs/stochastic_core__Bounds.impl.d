lib/core/bounds.ml: Cost_model Distributions Float
