lib/core/recurrence.ml: Array Cost_model Distributions Float List Seq Sequence
