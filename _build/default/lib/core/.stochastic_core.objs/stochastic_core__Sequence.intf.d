lib/core/sequence.mli: Cost_model Distributions Format Seq
