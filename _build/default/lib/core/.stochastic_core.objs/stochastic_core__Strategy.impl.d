lib/core/strategy.ml: Brute_force Cost_model Discretize Distributions Dp Expected_cost Heuristics Printf Randomness Sequence
