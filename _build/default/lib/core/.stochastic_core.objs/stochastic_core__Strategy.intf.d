lib/core/strategy.mli: Cost_model Discretize Distributions Randomness Sequence
