lib/core/brute_force.ml: Array Bounds Distributions Expected_cost Option Randomness Recurrence Sequence
