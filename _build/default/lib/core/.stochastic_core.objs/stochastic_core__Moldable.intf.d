lib/core/moldable.mli: Cost_model Distributions
