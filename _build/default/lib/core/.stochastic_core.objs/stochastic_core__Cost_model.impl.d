lib/core/cost_model.ml: Float Format
