lib/core/recurrence.mli: Cost_model Distributions Sequence
