lib/core/heuristics.ml: Distributions Seq Sequence
