lib/core/dp.mli: Cost_model Distributions Sequence
