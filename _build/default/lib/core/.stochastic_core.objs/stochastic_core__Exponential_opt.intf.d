lib/core/exponential_opt.mli: Sequence
