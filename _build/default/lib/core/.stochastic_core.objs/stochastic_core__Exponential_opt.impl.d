lib/core/exponential_opt.ml: Cost_model Distributions Expected_cost Float Numerics Recurrence Seq Sequence
