lib/core/discretize.ml: Array Distributions Float
