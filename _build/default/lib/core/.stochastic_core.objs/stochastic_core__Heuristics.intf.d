lib/core/heuristics.mli: Distributions Sequence
