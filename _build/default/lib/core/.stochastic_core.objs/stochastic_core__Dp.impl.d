lib/core/dp.ml: Array Cost_model Distributions List Numerics Sequence
