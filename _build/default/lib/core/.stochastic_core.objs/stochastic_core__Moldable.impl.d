lib/core/moldable.ml: Array Brute_force Cost_model Distributions
