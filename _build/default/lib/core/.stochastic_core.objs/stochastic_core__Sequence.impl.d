lib/core/sequence.ml: Array Cost_model Distributions Float Format List Numerics Printf Seq String
