(** The exact RESERVATIONONLY characterisation for exponential
    distributions (Sect. 3.5, Proposition 2).

    For [X ~ Exp(1)] and cost [alpha = 1, beta = gamma = 0], the
    optimal sequence [(s_i)] satisfies [s_2 = e^(s_1)] and
    [s_i = e^(s_(i-1) - s_(i-2))] for [i >= 3], with expected cost

    {[ E_1 = s_1 + 1 + sum_(i>=1) e^(-s_i). ]}

    The optimal [s_1] (~ 0.74219 — about three quarters of the mean)
    is found numerically; by scale invariance the optimal sequence for
    [Exp(lambda)] is [t_i = s_i / lambda] with cost [E_1 / lambda]. *)

val expected_cost_exp1 : s1:float -> float
(** [expected_cost_exp1 ~s1] evaluates [E_1] for a given first
    reservation: generates the recurrence until the tail term
    [e^(-s_i)] is negligible and sums the series. Returns [infinity]
    when the recurrence from [s1] is not strictly increasing. *)

type solution = {
  s1 : float;  (** Optimal first reservation for [Exp(1)]. *)
  e1 : float;  (** Optimal expected cost [E_1] for [Exp(1)]. *)
}

val solve : ?tol:float -> unit -> solution
(** [solve ()] computes [(s1, E1)] by Brent minimisation of
    {!expected_cost_exp1} over [(0, 2]], to tolerance [tol] (default
    [1e-10]). The result is cached after the first call. *)

val sequence : rate:float -> Sequence.t
(** [sequence ~rate] is the optimal RESERVATIONONLY sequence for
    [Exp(rate)]: the [Exp(1)] solution scaled by [1/rate]. *)

val expected_cost : rate:float -> float
(** [expected_cost ~rate] is the optimal expected cost [E_1 / rate]. *)
