(** Optimal reservation sequences for discrete distributions
    (Theorem 5).

    For [X ~ (v_i, f_i), i = 1..n] the problem is solved exactly in
    [O(n^2)] time by dynamic programming over suffixes: [E*_i], the
    optimal expected cost given [X >= v_i], satisfies

    {[ E*_i = min_(i <= j <= n)
         ( alpha v_j + gamma + sum_(k=i..j) f'_k beta v_k
           + (sum_(k=j+1..n) f'_k) (beta v_j + E*_(j+1)) ) ]}

    with the conditional probabilities [f'_k = f_k / sum_(l>=i) f_l].
    The implementation works with the unconditional weights
    [W_i = S_i E*_i] and suffix prefix-sums so that each state is
    evaluated in [O(n - i)] arithmetic operations without
    renormalisation, and recovers the arg-min chain by backtracking. *)

type solution = {
  reservations : float array;
      (** The optimal reservation values, a subsequence of the support
          ending with [v_n]. *)
  expected_cost : float;
      (** [E*_1] under the normalized discrete law. *)
}

val solve : Cost_model.t -> Distributions.Discrete.t -> solution
(** [solve m d] computes the optimal sequence and its expected cost.
    The input's probabilities are normalised internally (the
    discretization of a truncated distribution sums to [1 - eps]). *)

val sequence_for :
  Cost_model.t ->
  Distributions.Dist.t ->
  Distributions.Discrete.t ->
  Sequence.t
(** [sequence_for m d discrete] solves the discrete instance and wraps
    the result as a reservation sequence for the {e continuous}
    distribution [d]: for unbounded support, the finite DP sequence is
    extended beyond the truncation point by doubling
    ({!Sequence.sanitize}), as prescribed at the end of Sect. 4.2.2. *)

val expected_cost_brute : Cost_model.t -> Distributions.Discrete.t -> float array -> float
(** [expected_cost_brute m d reservations] evaluates the exact expected
    cost of an arbitrary reservation sequence on the normalized
    discrete law by direct summation — an [O(n k)] reference used by
    the tests to verify DP optimality against exhaustive search. The
    last reservation must cover [v_n].
    @raise Invalid_argument otherwise. *)
