(** Truncation and discretization of continuous distributions
    (Sect. 4.2.1).

    A continuous distribution is reduced to [n] discrete support points so
    that the dynamic program of Theorem 5 can compute an optimal
    sequence for the discrete approximation. Unbounded distributions
    are first truncated at the quantile [b = Q(1 - eps)]; the
    probabilities of the resulting discrete law then sum to [1 - eps]
    (they are renormalised inside the DP). *)

type scheme =
  | Equal_probability
      (** [v_i = Q(i F(b) / n)], [f_i = F(b) / n]: every discrete
          execution time is equally likely. *)
  | Equal_time
      (** [v_i = a + i (b - a)/n], [f_i = F(v_i) - F(v_(i-1))]: the
          discrete execution times are equally spaced on [[a, b]]. *)

val scheme_name : scheme -> string
(** ["Equal-probability"] or ["Equal-time"]. *)

val truncation_point : ?eps:float -> Distributions.Dist.t -> float
(** [truncation_point d] is the upper bound used for discretization:
    the support's upper bound if finite, else [Q(1 - eps)] (default
    [eps = 1e-7], the paper's setting). *)

val run :
  ?eps:float -> scheme -> n:int -> Distributions.Dist.t -> Distributions.Discrete.t
(** [run scheme ~n d] discretizes [d] into at most [n] support points
    (coincident quantiles are merged).
    @raise Invalid_argument if [n <= 0] or [eps] outside [(0, 1)]. *)
