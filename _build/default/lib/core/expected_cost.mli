(** Expected cost of a reservation sequence.

    Two evaluators are provided: the {e exact} series of Theorem 1
    (Eq. (4)) and the {e Monte-Carlo} estimator of Eq. (13) used by the
    paper's experiments, plus the omniscient baseline used for
    normalisation throughout Sect. 5. *)

val omniscient : Cost_model.t -> Distributions.Dist.t -> float
(** [omniscient m d] is [E^o = (alpha + beta) E(X) + gamma]: the
    expected cost of a scheduler that knows each job's duration and
    reserves exactly that. *)

val exact :
  ?tail_eps:float ->
  ?max_terms:int ->
  Cost_model.t ->
  Distributions.Dist.t ->
  Sequence.t ->
  float
(** [exact m d s] evaluates Eq. (4):
    [beta E(X) + sum_(i>=0) (alpha t_(i+1) + beta t_i + gamma)
    P(X >= t_i)]. The series is truncated once the survival
    probability drops below [tail_eps] (default [1e-16]) — the
    neglected remainder is provably below [tail_eps * A2] for the
    sanitized sequences produced by this library — or after
    [max_terms] (default [100_000]) terms. *)

val monte_carlo :
  Cost_model.t ->
  Distributions.Dist.t ->
  Randomness.Rng.t ->
  n:int ->
  Sequence.t ->
  float
(** [monte_carlo m d rng ~n s] draws [n] job durations from [d] and
    averages [C(k, t)] over them (Eq. (13); the paper uses
    [n = 1000]). *)

val mean_cost_presampled : Cost_model.t -> sorted_samples:float array -> Sequence.t -> float
(** [mean_cost_presampled m ~sorted_samples s] is the Monte-Carlo
    average over a caller-supplied sorted sample array — used to
    compare many candidate sequences under common random numbers, as
    the BRUTE-FORCE grid search does. *)

val normalized :
  Cost_model.t -> Distributions.Dist.t -> cost:float -> float
(** [normalized m d ~cost] is [cost / omniscient m d]: always [>= 1],
    smaller is better (Sect. 5.1). *)
