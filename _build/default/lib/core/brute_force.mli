(** The BRUTE-FORCE heuristic (Sect. 4.1).

    Scans [m] candidate values of the first reservation [t1] on the
    search interval of {!Bounds.search_interval} — [(a, b]] for
    bounded support, [(a, A1]] otherwise — generates each candidate's
    full sequence with the optimal recurrence (Eq. (11)), discards
    candidates whose recurrence is not strictly increasing, evaluates
    the survivors, and returns the best. Following the paper, the
    default evaluator is the Monte-Carlo estimator over [n] common
    random samples ([m = 5000], [n = 1000] in the experiments); the
    exact Eq. (4) series is available as a deterministic alternative. *)

type evaluator =
  | Monte_carlo of { rng : Randomness.Rng.t; n : int }
      (** Average cost over [n] samples drawn once and shared by all
          candidates (common random numbers). *)
  | Exact
      (** The Eq. (4) series — deterministic, slightly slower. *)

type result = {
  t1 : float;  (** Best first-reservation length found. *)
  cost : float;  (** Its (estimated) expected cost. *)
  normalized : float;  (** [cost / E^o]. *)
  sequence : Sequence.t;  (** The full sequence generated from [t1]. *)
  candidates : int;  (** Number of grid points scanned. *)
  valid : int;  (** How many produced a valid increasing sequence. *)
}

val search :
  ?m:int ->
  ?evaluator:evaluator ->
  Cost_model.t ->
  Distributions.Dist.t ->
  result
(** [search cost d] runs the grid scan with [m] (default [5000])
    candidates.
    @raise Invalid_argument if no candidate yields a valid sequence. *)

val profile :
  ?m:int ->
  ?evaluator:evaluator ->
  Cost_model.t ->
  Distributions.Dist.t ->
  (float * float option) array
(** [profile cost d] returns, for each scanned [t1], [Some
    normalized_cost] or [None] when the candidate was discarded — the
    data behind Fig. 3's per-distribution cost curves (with visible
    gaps at invalid candidates). *)

val cost_of_t1 :
  ?evaluator:evaluator ->
  Cost_model.t ->
  Distributions.Dist.t ->
  float ->
  float option
(** [cost_of_t1 cost d t1] evaluates a single candidate: [None] if the
    recurrence from [t1] is invalid (Table 3 prints these as "-"). *)
