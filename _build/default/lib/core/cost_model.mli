(** The affine reservation cost model of Eq. (1).

    A single reservation of length [t1] for a job whose actual
    execution time is [t] costs

    {[ alpha * t1 + beta * min t1 t + gamma ]}

    where [alpha > 0] prices the {e requested} time (cloud reservation
    price, or the slope of the HPC wait-time function), [beta >= 0]
    prices the time {e actually used}, and [gamma >= 0] is a fixed
    per-reservation overhead (start-up cost, or the intercept of the
    wait-time function). *)

type t = private { alpha : float; beta : float; gamma : float }

val make : ?alpha:float -> ?beta:float -> ?gamma:float -> unit -> t
(** [make ()] is the RESERVATIONONLY model; keyword arguments override
    individual coefficients (defaults [alpha = 1.], [beta = 0.],
    [gamma = 0.]).
    @raise Invalid_argument unless [alpha > 0.], [beta >= 0.] and
    [gamma >= 0.]. *)

val reservation_only : t
(** [alpha = 1, beta = gamma = 0]: the AWS Reserved-Instance pricing of
    Sect. 5.2, where the user pays exactly what is requested. *)

val neuro_hpc : t
(** [alpha = 0.95, beta = 1.0, gamma = 1.05] (hours): the Sect. 5.3
    model — affine queue wait time fitted on Intrepid logs plus the
    actual execution time. *)

val reservation_cost : t -> reserved:float -> actual:float -> float
(** [reservation_cost m ~reserved ~actual] is Eq. (1) for one
    (possibly failed) reservation. *)

val pp : Format.formatter -> t -> unit
(** Prints [alpha], [beta], [gamma] on one line. *)
