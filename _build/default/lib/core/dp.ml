module Discrete = Distributions.Discrete
module Dist = Distributions.Dist

type solution = { reservations : float array; expected_cost : float }

let solve m d =
  let d = Discrete.normalize d in
  let v = d.Discrete.values and f = d.Discrete.probs in
  let n = Array.length v in
  let open Cost_model in
  (* Suffix sums: s.(i) = sum_(k>=i) f_k, mv.(i) = sum_(k>=i) f_k v_k,
     with index n meaning the empty suffix. *)
  let s = Array.make (n + 1) 0.0 in
  let mv = Array.make (n + 1) 0.0 in
  for i = n - 1 downto 0 do
    s.(i) <- s.(i + 1) +. f.(i);
    mv.(i) <- mv.(i + 1) +. (f.(i) *. v.(i))
  done;
  (* w.(i) = S_i * E*_i (unconditional weight of the optimal suffix
     policy), w.(n) = 0. choice.(i) = arg-min j. *)
  let w = Array.make (n + 1) 0.0 in
  let choice = Array.make n 0 in
  for i = n - 1 downto 0 do
    let best = ref infinity and best_j = ref i in
    for j = i to n - 1 do
      let cand =
        (((m.alpha *. v.(j)) +. m.gamma) *. s.(i))
        +. (m.beta *. (mv.(i) -. mv.(j + 1)))
        +. (m.beta *. v.(j) *. s.(j + 1))
        +. w.(j + 1)
      in
      if cand < !best then begin
        best := cand;
        best_j := j
      end
    done;
    w.(i) <- !best;
    choice.(i) <- !best_j
  done;
  (* Backtrack: from state 0, reserve v_(choice.(0)), then continue
     from the next uncovered support point. *)
  let rec collect i acc =
    if i >= n then List.rev acc
    else begin
      let j = choice.(i) in
      collect (j + 1) (v.(j) :: acc)
    end
  in
  { reservations = Array.of_list (collect 0 []); expected_cost = w.(0) }

let sequence_for m d discrete =
  let sol = solve m discrete in
  Sequence.sanitize ~support:d.Dist.support (Array.to_seq sol.reservations)

let expected_cost_brute m d reservations =
  let d = Discrete.normalize d in
  let v = d.Discrete.values and f = d.Discrete.probs in
  let n = Array.length v in
  let k = Array.length reservations in
  if k = 0 then invalid_arg "Dp.expected_cost_brute: empty sequence";
  for i = 1 to k - 1 do
    if reservations.(i) <= reservations.(i - 1) then
      invalid_arg "Dp.expected_cost_brute: sequence must be increasing"
  done;
  if reservations.(k - 1) < v.(n - 1) then
    invalid_arg "Dp.expected_cost_brute: last reservation must cover v_n";
  let open Cost_model in
  let acc = Numerics.Kahan.create () in
  for i = 0 to n - 1 do
    (* Cost of running a job of duration v_i through the sequence. *)
    let cost = ref 0.0 in
    let j = ref 0 in
    while reservations.(!j) < v.(i) do
      cost :=
        !cost
        +. (m.alpha *. reservations.(!j))
        +. (m.beta *. reservations.(!j))
        +. m.gamma;
      incr j
    done;
    cost :=
      !cost
      +. (m.alpha *. reservations.(!j))
      +. (m.beta *. v.(i))
      +. m.gamma;
    Numerics.Kahan.add acc (f.(i) *. !cost)
  done;
  Numerics.Kahan.sum acc
