module Dist = Distributions.Dist

type speedup = Linear | Amdahl of float | Power of float

let speedup_factor s p =
  if p < 1 then invalid_arg "Moldable.speedup_factor: p must be >= 1";
  let pf = float_of_int p in
  match s with
  | Linear -> pf
  | Amdahl f ->
      if f < 0.0 || f > 1.0 then
        invalid_arg "Moldable.speedup_factor: Amdahl fraction in [0, 1]";
      1.0 /. (1.0 -. f +. (f /. pf))
  | Power e ->
      if e < 0.0 || e > 1.0 then
        invalid_arg "Moldable.speedup_factor: Power exponent in [0, 1]";
      pf ** e

let runtime_distribution s ~procs d =
  Dist.scale (1.0 /. speedup_factor s procs) d

let cost_model_for m ~procs =
  let open Cost_model in
  make
    ~alpha:(m.alpha *. float_of_int procs)
    ~beta:m.beta ~gamma:m.gamma ()

type result = {
  procs : int;
  t1 : float;
  expected_cost : float;
  per_procs : (int * float) array;
}

let optimize ?(max_procs = 64) ?(m = 800) s cost d =
  if max_procs < 1 then invalid_arg "Moldable.optimize: max_procs must be >= 1";
  let evaluate p =
    let d_p = runtime_distribution s ~procs:p d in
    let cost_p = cost_model_for cost ~procs:p in
    let r = Brute_force.search ~m ~evaluator:Brute_force.Exact cost_p d_p in
    (r.Brute_force.t1, r.Brute_force.cost)
  in
  let per_procs =
    Array.init max_procs (fun i ->
        let p = i + 1 in
        let _, c = evaluate p in
        (p, c))
  in
  let best_p, best_cost =
    Array.fold_left
      (fun (bp, bc) (p, c) -> if c < bc then (p, c) else (bp, bc))
      (0, infinity) per_procs
  in
  let t1, _ = evaluate best_p in
  { procs = best_p; t1; expected_cost = best_cost; per_procs }
