(** The simple reservation heuristics of Sect. 4.3.

    These do not explore the structure of the optimal solution; they
    generate sequences from standard summary measures of the
    distribution (mean, standard deviation, quantiles). Each returns a
    sanitized {!Sequence.t} (strictly increasing, divergent for
    unbounded support, ending with the support's upper bound
    otherwise). *)

val mean_by_mean : Distributions.Dist.t -> Sequence.t
(** MEAN-BY-MEAN: [t1 = E(X)], then
    [t_i = E(X | X > t_(i-1))] — the conditional expectation of the
    remaining distribution, via the Appendix B closed forms. *)

val mean_stdev : Distributions.Dist.t -> Sequence.t
(** MEAN-STDEV: [t_i = mu + (i-1) sigma]. *)

val mean_doubling : Distributions.Dist.t -> Sequence.t
(** MEAN-DOUBLING: [t_i = 2^(i-1) mu]. *)

val median_by_median : Distributions.Dist.t -> Sequence.t
(** MEDIAN-BY-MEDIAN: [t_i = Q(1 - 1/2^i)] — the median, then the
    median of the remaining upper tail, and so on. *)

val quantile_ladder : q:float -> Distributions.Dist.t -> Sequence.t
(** [quantile_ladder ~q d] generalises MEDIAN-BY-MEDIAN to an
    arbitrary tail-halving ratio: [t_i = Q(1 - q^i)] for [q] in
    [(0, 1)] — each reservation leaves a fraction [q] of the current
    tail uncovered. [q = 0.5] recovers {!median_by_median}; smaller
    [q] is more aggressive (longer first reservations).
    @raise Invalid_argument if [q] outside [(0, 1)]. *)
