type t = { alpha : float; beta : float; gamma : float }

let make ?(alpha = 1.0) ?(beta = 0.0) ?(gamma = 0.0) () =
  if not (alpha > 0.0) then invalid_arg "Cost_model.make: alpha must be > 0";
  if beta < 0.0 then invalid_arg "Cost_model.make: beta must be >= 0";
  if gamma < 0.0 then invalid_arg "Cost_model.make: gamma must be >= 0";
  { alpha; beta; gamma }

let reservation_only = make ()
let neuro_hpc = make ~alpha:0.95 ~beta:1.0 ~gamma:1.05 ()

let reservation_cost m ~reserved ~actual =
  (m.alpha *. reserved) +. (m.beta *. Float.min reserved actual) +. m.gamma

let pp fmt m =
  Format.fprintf fmt "alpha=%g beta=%g gamma=%g" m.alpha m.beta m.gamma
