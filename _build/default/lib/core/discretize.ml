module Dist = Distributions.Dist
module Discrete = Distributions.Discrete

type scheme = Equal_probability | Equal_time

let scheme_name = function
  | Equal_probability -> "Equal-probability"
  | Equal_time -> "Equal-time"

let truncation_point ?(eps = 1e-7) d =
  if eps <= 0.0 || eps >= 1.0 then
    invalid_arg "Discretize.truncation_point: eps must be in (0, 1)";
  match d.Dist.support with
  | Dist.Bounded (_, b) -> b
  | Dist.Unbounded _ -> d.Dist.quantile (1.0 -. eps)

let run ?(eps = 1e-7) scheme ~n d =
  if n <= 0 then invalid_arg "Discretize.run: n must be positive";
  let b = truncation_point ~eps d in
  let a = Dist.lower d in
  let fb = d.Dist.cdf b in
  let pairs =
    match scheme with
    | Equal_probability ->
        let fi = fb /. float_of_int n in
        Array.init n (fun i ->
            let v = d.Dist.quantile (float_of_int (i + 1) *. fi) in
            (v, fi))
    | Equal_time ->
        let step = (b -. a) /. float_of_int n in
        let prev_cdf = ref (d.Dist.cdf a) in
        Array.init n (fun i ->
            let v = a +. (float_of_int (i + 1) *. step) in
            let c = d.Dist.cdf v in
            let p = c -. !prev_cdf in
            prev_cdf := c;
            (v, Float.max p 0.0))
  in
  Discrete.make pairs
