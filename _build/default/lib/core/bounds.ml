module Dist = Distributions.Dist

let second_moment d =
  let v = d.Dist.variance and m = d.Dist.mean in
  v +. (m *. m)

let a1 m d =
  let ex2 = second_moment d in
  if not (Float.is_finite ex2) then
    invalid_arg "Bounds.a1: requires a finite second moment";
  let a = Dist.lower d in
  let mean = d.Dist.mean in
  let open Cost_model in
  mean +. 1.0
  +. ((m.alpha +. m.beta) /. (2.0 *. m.alpha) *. (ex2 -. (a *. a)))
  +. ((m.alpha +. m.beta +. m.gamma) /. m.alpha *. (mean -. a))

let a2 m d =
  let open Cost_model in
  (m.beta *. d.Dist.mean) +. (m.alpha *. a1 m d) +. m.gamma

let search_interval m d =
  match d.Dist.support with
  | Dist.Bounded (a, b) -> (a, b)
  | Dist.Unbounded a -> (a, a1 m d)
