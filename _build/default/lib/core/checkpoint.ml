module Dist = Distributions.Dist

type params = { checkpoint_cost : float; restart_cost : float }

let make_params ~checkpoint_cost ~restart_cost =
  if checkpoint_cost < 0.0 || restart_cost < 0.0 then
    invalid_arg "Checkpoint.make_params: overheads must be nonnegative";
  { checkpoint_cost; restart_cost }

let no_overhead = { checkpoint_cost = 0.0; restart_cost = 0.0 }

let cost_of_run ?(max_steps = 100_000) p m s t =
  let open Cost_model in
  let cost = Numerics.Kahan.create () in
  let rec go k progress s =
    if k > max_steps then raise (Sequence.Not_covered t);
    match Seq.uncons s with
    | None -> raise (Sequence.Not_covered t)
    | Some (l, rest) ->
        let restart = if k = 1 then 0.0 else p.restart_cost in
        (* Time available for real work if we do NOT checkpoint (the
           success case): the slot minus the restore. *)
        let usable_no_ckpt = l -. restart in
        if progress +. usable_no_ckpt >= t then begin
          (* Success: pay the reserved length at alpha, and only the
             time actually consumed (restore + remaining work) at
             beta. *)
          let used = restart +. (t -. progress) in
          Numerics.Kahan.add cost
            ((m.alpha *. l) +. (m.beta *. used) +. m.gamma);
          (k, Numerics.Kahan.sum cost)
        end
        else begin
          (* Failure: the whole slot is consumed; work completed after
             restore and checkpoint overheads is preserved. *)
          Numerics.Kahan.add cost ((m.alpha *. l) +. (m.beta *. l) +. m.gamma);
          let gained = Float.max 0.0 (l -. restart -. p.checkpoint_cost) in
          if gained <= 0.0 && k > 1 then
            (* No progress is possible with slots this short relative
               to the overheads: the run can never finish. *)
            raise (Sequence.Not_covered t);
          go (k + 1) (progress +. gained) rest
        end
  in
  go 1 0.0 s

let expected_cost ?(tail_eps = 1e-12) ?(max_steps = 500_000) p m d s =
  (* Exact closed-form expectation: a job of duration t succeeds at the
     first reservation k with t <= c_k, where c_k = progress_(k-1) +
     (l_k - restart_k) is the coverage reached by slot k. On the slab
     (c_(k-1), c_k] the cost is affine in t, so each slab contributes

       mass_k * (prefix_k + alpha l_k + gamma + beta (restart_k -
                 progress_(k-1)))
       + beta * (partial expectation of X over the slab)

     with the partial expectation computed from the conditional mean:
     int_a^b t f(t) dt = cm(a) sf(a) - cm(b) sf(b). This makes the
     evaluation O(number of slots) with no quadrature, which matters
     for the chunk optimizer (tiny chunks mean tens of thousands of
     slots). Strategies that stop making progress evaluate to
     [infinity]. *)
  let open Cost_model in
  let upper = Dist.upper d in
  let partial_expect a b =
    let pa = if a <= 0.0 then d.Dist.mean else d.Dist.conditional_mean a *. Dist.sf d a in
    let pb =
      let sfb = Dist.sf d b in
      if sfb <= 0.0 then 0.0 else d.Dist.conditional_mean b *. sfb
    in
    Float.max 0.0 (pa -. pb)
  in
  let acc = Numerics.Kahan.create () in
  let rec go k prefix progress c_prev s =
    if k > max_steps then infinity
    else
      match Seq.uncons s with
      | None -> if Dist.sf d c_prev > tail_eps then infinity else Numerics.Kahan.sum acc
      | Some (l, rest) ->
          let restart = if k = 1 then 0.0 else p.restart_cost in
          let c_k = progress +. (l -. restart) in
          if c_k <= c_prev then begin
            (* This slot covers nothing new; if it also gains no
               progress the strategy can never finish. *)
            let gained = Float.max 0.0 (l -. restart -. p.checkpoint_cost) in
            if gained <= 0.0 then infinity
            else begin
              let prefix' =
                prefix +. (m.alpha *. l) +. (m.beta *. l) +. m.gamma
              in
              go (k + 1) prefix' (progress +. gained) c_prev rest
            end
          end
          else begin
            let mass = Float.max 0.0 (d.Dist.cdf c_k -. d.Dist.cdf c_prev) in
            if mass > 0.0 then begin
              let const_part =
                prefix +. (m.alpha *. l) +. m.gamma
                +. (m.beta *. (restart -. progress))
              in
              Numerics.Kahan.add acc (mass *. const_part);
              if m.beta > 0.0 then
                Numerics.Kahan.add acc
                  (m.beta *. partial_expect (Float.max c_prev 0.0) c_k)
            end;
            if Dist.sf d c_k <= tail_eps || c_k >= upper then
              Numerics.Kahan.sum acc
            else begin
              let gained = Float.max 0.0 (l -. restart -. p.checkpoint_cost) in
              let prefix' =
                prefix +. (m.alpha *. l) +. (m.beta *. l) +. m.gamma
              in
              if gained <= 0.0 then infinity
              else go (k + 1) prefix' (progress +. gained) c_k rest
            end
          end
  in
  go 1 0.0 0.0 0.0 s

let periodic ~chunk p =
  if chunk <= 0.0 then invalid_arg "Checkpoint.periodic: chunk must be > 0";
  let first = chunk +. p.checkpoint_cost in
  let later = p.restart_cost +. chunk +. p.checkpoint_cost in
  Seq.unfold
    (fun i -> Some ((if i = 0 then first else later), i + 1))
    0

let optimize_chunk ?(m = 400) p cost d ~chunk_upper =
  if chunk_upper <= 0.0 then
    invalid_arg "Checkpoint.optimize_chunk: chunk_upper must be > 0";
  let step = chunk_upper /. float_of_int m in
  let best_chunk = ref nan and best_cost = ref infinity in
  for i = 1 to m do
    let chunk = float_of_int i *. step in
    let c = expected_cost p cost d (periodic ~chunk p) in
    if Float.is_finite c && c < !best_cost then begin
      best_cost := c;
      best_chunk := chunk
    end
  done;
  if Float.is_nan !best_chunk then
    invalid_arg "Checkpoint.optimize_chunk: no feasible chunk";
  (!best_chunk, !best_cost)

let better_than_plain p cost d ~plain_cost ~chunk_upper =
  let _, c = optimize_chunk p cost d ~chunk_upper in
  (c < plain_cost, c)
