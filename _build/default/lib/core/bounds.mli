(** Theorem 2 bounds.

    For a distribution with infinite support [[a, inf)] and finite
    second moment, Theorem 2 shows the first reservation [t1] of an
    optimal sequence satisfies [t1 <= A1], and the optimal expected
    cost is at most [A2 = beta E(X) + alpha A1 + gamma] — obtained by
    exhibiting the unit-step sequence [t_i = a + i]. These bounds
    delimit the BRUTE-FORCE search interval. *)

val a1 : Cost_model.t -> Distributions.Dist.t -> float
(** [a1 m d] is Eq. (6):
    [E(X) + 1 + (alpha+beta)/(2 alpha) (E(X^2) - a^2)
     + (alpha+beta+gamma)/alpha (E(X) - a)].
    @raise Invalid_argument if the distribution's variance (hence
    second moment) is not finite. *)

val a2 : Cost_model.t -> Distributions.Dist.t -> float
(** [a2 m d] is Eq. (7), the upper bound on the optimal expected
    cost. *)

val search_interval : Cost_model.t -> Distributions.Dist.t -> float * float
(** [search_interval m d] is the interval scanned for the first
    reservation: [(a, b)] for a bounded distribution and [(a, A1)]
    otherwise (Sect. 4.1). *)
