type t = {
  name : string;
  build : Cost_model.t -> Distributions.Dist.t -> Sequence.t;
}

let mean_by_mean =
  { name = "Mean-by-Mean"; build = (fun _ d -> Heuristics.mean_by_mean d) }

let mean_stdev =
  { name = "Mean-Stdev"; build = (fun _ d -> Heuristics.mean_stdev d) }

let mean_doubling =
  { name = "Mean-Doubling"; build = (fun _ d -> Heuristics.mean_doubling d) }

let median_by_median =
  { name = "Med-by-Med"; build = (fun _ d -> Heuristics.median_by_median d) }

let quantile_ladder ~q =
  {
    name = Printf.sprintf "Ladder(q=%g)" q;
    build = (fun _ d -> Heuristics.quantile_ladder ~q d);
  }

let brute_force ?(m = 5000) ?(n = 1000) ?(seed = 42) () =
  {
    name = "Brute-Force";
    build =
      (fun cost d ->
        let rng = Randomness.Rng.create ~seed () in
        let r =
          Brute_force.search ~m ~evaluator:(Brute_force.Monte_carlo { rng; n })
            cost d
        in
        r.Brute_force.sequence);
  }

let brute_force_exact ?(m = 5000) () =
  {
    name = "Brute-Force(exact)";
    build =
      (fun cost d ->
        let r = Brute_force.search ~m ~evaluator:Brute_force.Exact cost d in
        r.Brute_force.sequence);
  }

let dp_discretized ?(eps = 1e-7) ~scheme ~n () =
  {
    name = Discretize.scheme_name scheme;
    build =
      (fun cost d ->
        let discrete = Discretize.run ~eps scheme ~n d in
        Dp.sequence_for cost d discrete);
  }

let equal_time = dp_discretized ~scheme:Discretize.Equal_time ~n:1000 ()

let equal_probability =
  dp_discretized ~scheme:Discretize.Equal_probability ~n:1000 ()

let table2 ?(seed = 42) () =
  [
    brute_force ~seed ();
    mean_by_mean;
    mean_stdev;
    mean_doubling;
    median_by_median;
    equal_time;
    equal_probability;
  ]

let evaluate ?(n = 1000) ~rng cost d s =
  let seq = s.build cost d in
  let c = Expected_cost.monte_carlo cost d rng ~n seq in
  Expected_cost.normalized cost d ~cost:c

let evaluate_on cost d ~sorted_samples s =
  let seq = s.build cost d in
  let c = Expected_cost.mean_cost_presampled cost ~sorted_samples seq in
  Expected_cost.normalized cost d ~cost:c
