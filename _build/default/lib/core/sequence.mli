(** Reservation sequences and their cost on concrete job durations.

    A reservation sequence [S = (t1, t2, ...)] is represented as a lazy
    [float Seq.t] of strictly increasing positive reservation lengths.
    For a distribution with unbounded support the sequence must be
    infinite and tend to infinity; for bounded support [[a, b]] it must
    be finite and end with exactly [b] (Sect. 2.2 of the paper). The
    {!sanitize} combinator enforces both conventions on the output of
    any heuristic. *)

type t = float Seq.t

exception Not_covered of float
(** Raised by cost evaluation when a job duration exceeds every
    reservation in a (finite or stalled) sequence; carries the
    duration. *)

val of_list : float list -> t
(** [of_list ts] is the finite sequence [ts].
    @raise Invalid_argument if [ts] is not strictly increasing or
    contains a non-positive value. *)

val of_array : float array -> t
(** [of_array ts] — same as {!of_list} for arrays. The array is copied. *)

val take : int -> t -> float list
(** [take n s] is the list of the first (at most) [n] elements. *)

val prefix_until : ?limit:int -> (float -> bool) -> t -> float array
(** [prefix_until stop s] materialises elements of [s] up to and
    including the first one satisfying [stop] (or the whole sequence if
    it is finite), but at most [limit] (default [100_000]) elements. *)

val is_strictly_increasing : int -> t -> bool
(** [is_strictly_increasing n s] checks the first [n] elements. *)

val sanitize : support:Distributions.Dist.support -> t -> t
(** [sanitize ~support s] post-processes a heuristic's raw output into
    a well-formed reservation sequence:
    {ul
    {- values must be finite, positive and strictly increasing; when a
       raw value violates this, the sequence switches to doubling the
       last good value (guaranteeing divergence), mirroring the paper's
       remark that discretization-based sequences are extended "using
       other heuristics";}
    {- for [Bounded (_, b)] support, values are capped at [b]: the
       first value reaching (numerically) [b] is emitted as exactly [b]
       and terminates the sequence, and a finite raw sequence that
       never reaches [b] is completed with a final [b].}} *)

val cost_of_run : ?max_steps:int -> Cost_model.t -> t -> float -> int * float
(** [cost_of_run m s t] walks the sequence until the first [t_k >= t]
    and returns [(k, C(k, t))] per Eq. (2): the [k-1] failed
    reservations are paid in full ([alpha t_i + beta t_i + gamma]) and
    the successful one costs [alpha t_k + beta t + gamma].
    @raise Not_covered if the sequence ends (or [max_steps], default
    [100_000], is hit) before covering [t]. *)

val mean_cost_sorted : ?max_steps:int -> Cost_model.t -> t -> float array -> float
(** [mean_cost_sorted m s samples] is the Monte-Carlo average cost
    (Eq. (13)) of the sequence over [samples], which must be sorted in
    nondecreasing order; computed in a single [O(|samples| + k)]
    two-pointer pass with compensated summation.
    @raise Not_covered as {!cost_of_run}.
    @raise Invalid_argument if [samples] is empty. *)

val pp_prefix : int -> Format.formatter -> t -> unit
(** [pp_prefix n fmt s] prints up to [n] leading elements, followed by
    ["..."] if the sequence continues. *)
