module E = Stochastic_core.Exponential_opt
module Brute_force = Stochastic_core.Brute_force
module Cost_model = Stochastic_core.Cost_model

type t = {
  s1 : float;
  e1 : float;
  bf_t1 : float;
  bf_cost : float;
  scale_check : float;
}

let run ?(cfg = Config.paper) () =
  let sol = E.solve () in
  let cost = Cost_model.reservation_only in
  let d = Distributions.Exponential.make ~rate:1.0 in
  let bf =
    Brute_force.search ~m:cfg.Config.m ~evaluator:Brute_force.Exact cost d
  in
  {
    s1 = sol.E.s1;
    e1 = sol.E.e1;
    bf_t1 = bf.Brute_force.t1;
    bf_cost = bf.Brute_force.cost;
    scale_check = E.expected_cost ~rate:2.0;
  }

let to_string t =
  Printf.sprintf
    "Exp(1) ReservationOnly: s1 = %.5f (paper: ~0.74219), E1 = %.5f\n\
     generic brute force:    t1 = %.5f, cost = %.5f\n\
     Exp(2) scaled optimum:  %.5f (expected E1/2 = %.5f)\n"
    t.s1 t.e1 t.bf_t1 t.bf_cost t.scale_check (t.e1 /. 2.0)

let sanity t =
  [
    ("s1 in the paper's flat basin [0.70, 0.80]", t.s1 >= 0.70 && t.s1 <= 0.80);
    ("E1 close to 2.3645", Float.abs (t.e1 -. 2.3645) < 2e-3);
    ( "generic brute force agrees with the dedicated solver",
      Float.abs (t.bf_cost -. t.e1) < 5e-3 );
    ( "Exp(lambda) optimum scales as E1 / lambda",
      Float.abs (t.scale_check -. (t.e1 /. 2.0)) < 1e-9 );
  ]
