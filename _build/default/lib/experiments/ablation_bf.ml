module B = Stochastic_core.Brute_force
module C = Stochastic_core.Cost_model
module E = Stochastic_core.Expected_cost

type point = {
  m : int;
  n : int;
  exact_normalized : float;
  optimism : float;
}

type t = { dist_name : string; m_sweep : point array; n_sweep : point array }

let default_ms = [| 10; 50; 200; 1000; 5000 |]
let default_ns = [| 50; 200; 1000; 5000 |]

let default_dists () =
  [
    ("Exponential", Distributions.Exponential.default);
    ("Weibull", Distributions.Weibull.default);
    ("Lognormal", Distributions.Lognormal.default);
  ]

let eval_point cfg dist_name d ~m ~n =
  let cost = C.reservation_only in
  let rng =
    Config.rng_for cfg (Printf.sprintf "ablation_bf/%s/%d/%d" dist_name m n)
  in
  let r = B.search ~m ~evaluator:(B.Monte_carlo { rng; n }) cost d in
  let exact = E.exact cost d r.B.sequence in
  {
    m;
    n;
    exact_normalized = E.normalized cost d ~cost:exact;
    (* Report the bias in omniscient-normalized units so it is
       comparable across distributions of very different scales. *)
    optimism = (exact -. r.B.cost) /. E.omniscient cost d;
  }

let run ?(cfg = Config.paper) ?(ms = default_ms) ?(ns = default_ns) ?dists () =
  let dists = match dists with Some d -> d | None -> default_dists () in
  List.map
    (fun (dist_name, d) ->
      {
        dist_name;
        m_sweep =
          Array.map (fun m -> eval_point cfg dist_name d ~m ~n:cfg.Config.n_mc) ms;
        n_sweep =
          Array.map (fun n -> eval_point cfg dist_name d ~m:cfg.Config.m ~n) ns;
      })
    dists

let to_string results =
  let buf = Buffer.create 2048 in
  List.iter
    (fun r ->
      Buffer.add_string buf (Printf.sprintf "%s\n" r.dist_name);
      Buffer.add_string buf "  M sweep (N fixed):\n";
      Array.iter
        (fun p ->
          Buffer.add_string buf
            (Printf.sprintf
               "    M=%-5d  exact normalized %.4f   MC optimism %+.4f\n" p.m
               p.exact_normalized p.optimism))
        r.m_sweep;
      Buffer.add_string buf "  N sweep (M fixed):\n";
      Array.iter
        (fun p ->
          Buffer.add_string buf
            (Printf.sprintf
               "    N=%-5d  exact normalized %.4f   MC optimism %+.4f\n" p.n
               p.exact_normalized p.optimism))
        r.n_sweep)
    results;
  Buffer.contents buf

let sanity results =
  List.concat_map
    (fun r ->
      let best =
        Array.fold_left
          (fun acc p -> Float.min acc p.exact_normalized)
          infinity r.m_sweep
      in
      let last = r.m_sweep.(Array.length r.m_sweep - 1) in
      let optimism_ok =
        (* Optimism is positive in expectation; single runs carry MC
           noise of a few percent of E^o at N = 1000. *)
        Array.for_all (fun p -> p.optimism > -0.12) r.n_sweep
      in
      [
        ( Printf.sprintf "%s: largest M within 2%% of the best sweep point"
            r.dist_name,
          last.exact_normalized <= best *. 1.02 );
        ( Printf.sprintf "%s: MC winner estimates are optimistic" r.dist_name,
          optimism_ok );
      ])
    results
