module Strategy = Stochastic_core.Strategy
module Cost_model = Stochastic_core.Cost_model

type point = { mean_hours : float; std_hours : float; values : float array }
type t = { strategy_names : string array; points : point list }

let default_factors = [| 1.0; 2.0; 4.0; 6.0; 8.0; 10.0 |]

(* VBMQA base moments in hours (Sect. 5.3). *)
let base_mean = 1253.37 /. 3600.0
let base_std = 258.261 /. 3600.0

let run ?(cfg = Config.paper) ?(factors = default_factors) () =
  let cost = Cost_model.neuro_hpc in
  let strategies = Table2.strategies cfg in
  let points =
    Array.to_list factors
    |> List.map (fun f ->
           let mean_hours = base_mean *. f and std_hours = base_std *. f in
           let d =
             Distributions.Lognormal.of_moments ~mean:mean_hours
               ~std:std_hours
           in
           let rng = Config.rng_for cfg (Printf.sprintf "fig4/%g" f) in
           let samples =
             Distributions.Dist.samples d rng cfg.Config.n_mc
           in
           Array.sort compare samples;
           let values =
             strategies
             |> List.map (fun s ->
                    Strategy.evaluate_on cost d ~sorted_samples:samples s)
             |> Array.of_list
           in
           { mean_hours; std_hours; values })
  in
  {
    strategy_names =
      Array.of_list (List.map (fun s -> s.Strategy.name) strategies);
    points;
  }

let to_string t =
  let header = "mean h (std h)" :: Array.to_list t.strategy_names in
  let rows =
    List.map
      (fun p ->
        Printf.sprintf "%.3f (%.3f)" p.mean_hours p.std_hours
        :: (Array.to_list p.values |> List.map Text_table.fmt_ratio))
      t.points
  in
  Text_table.render ~header rows

let sanity t =
  (* Strategy order fixed by Table2.strategies: 0 = Brute-Force,
     1..4 = mean/median family, 5 = Equal-time, 6 = Equal-prob. *)
  List.concat_map
    (fun p ->
      let bf = p.values.(0) and et = p.values.(5) and ep = p.values.(6) in
      let family_best =
        Float.min
          (Float.min p.values.(1) p.values.(2))
          (Float.min p.values.(3) p.values.(4))
      in
      let label fmt = Printf.sprintf fmt p.mean_hours in
      [
        ( label "mean %.3fh: optimal-structure heuristics agree",
          Float.max (Float.max bf et) ep
          <= Float.min (Float.min bf et) ep *. 1.10 );
        ( label "mean %.3fh: they beat the mean/median family",
          Float.min (Float.min bf et) ep <= family_best );
      ])
    t.points
