(** Interpolating traces vs fitting a parametric law.

    The paper's NEUROHPC evaluation is "based on interpolating traces
    from a real neuroscience application", which it operationalises by
    fitting a LogNormal. This library supports both routes: the
    trace-interpolated empirical distribution ([Empirical]) feeds the
    solvers directly, with no parametric assumption. This experiment
    compares them — strategy computed on (a) the interpolated trace
    and (b) the LogNormal fit — both evaluated against the true
    generating law, across trace sizes, under the NEUROHPC cost model.

    The interesting regime is small traces: interpolation cannot see
    past the largest observed runtime, while the parametric fit
    extrapolates the tail (correctly here, since the generator is
    LogNormal — the fit's home advantage is the paper's own modelling
    assumption). *)

type point = {
  samples : int;
  interpolated : float;  (** Median true normalized cost, trace route. *)
  fitted : float;  (** Median true normalized cost, fit route. *)
  worst_interpolated : float;  (** Worst replica, trace route. *)
  worst_fitted : float;
      (** Worst replica, fit route — small traces occasionally fit a
          much-too-narrow law whose optimal sequence resubmits in tiny
          increments, each paying the gamma overhead: a failure mode
          the median hides and a deployment must guard against. *)
}

type t = {
  oracle : float;  (** Strategy computed on the true law itself. *)
  points : point list;
}

val run : ?cfg:Config.t -> ?sample_sizes:int array -> ?replicas:int -> unit -> t
(** Defaults: sizes [|50; 200; 1000; 5000|], 10 replicas, VBMQA truth
    (hours) under the NEUROHPC model. *)

val to_string : t -> string

val sanity : t -> (string * bool) list
(** Both routes converge to the oracle at 5000 samples; the
    interpolated route is competitive (within a few percent) from
    1000 samples on. *)
