(** Shared experiment parameters.

    The defaults are the paper's settings (Sect. 5.1–5.2):
    [m = 5000] brute-force candidates, [n_mc = 1000] Monte-Carlo
    samples, [disc_n = 1000] discretization points, truncation
    [eps = 1e-7]. The [quick] preset shrinks everything for unit tests
    and CI smoke runs. *)

type t = {
  m : int;  (** BRUTE-FORCE grid size. *)
  n_mc : int;  (** Monte-Carlo sample count per evaluation. *)
  disc_n : int;  (** Discretization sample count. *)
  eps : float;  (** Truncation quantile parameter. *)
  seed : int;  (** Root seed for all random streams. *)
}

val paper : t
(** The paper's parameters. *)

val quick : t
(** Reduced parameters ([m = 300], [n_mc = 400], [disc_n = 200]) for
    fast runs. *)

val with_seed : int -> t -> t
(** [with_seed s cfg] overrides the root seed. *)

val rng_for : t -> string -> Randomness.Rng.t
(** [rng_for cfg label] derives a deterministic, label-specific random
    stream from the root seed, so experiments do not perturb each
    other's randomness when reordered. *)
