(** Fig. 1: neuroscience application traces and their LogNormal fits.

    The paper plots 5000+ runs of fMRIQA and VBMQA against fitted
    LogNormal curves. With the Vanderbilt database unavailable, this
    experiment generates synthetic traces from the published fits (see
    [Platform.Traces]) and runs the identical downstream pipeline:
    fit by log-moment MLE, report the recovered parameters and the
    Kolmogorov–Smirnov distance, and emit a text histogram of trace
    vs fitted density. *)

type app_result = {
  app_name : string;
  truth_mu : float;  (** Parameter used to generate the trace. *)
  truth_sigma : float;
  fit : Distributions.Fitting.lognormal_fit;  (** Recovered by MLE. *)
  histogram : (float * int) array;  (** (bin center, count) pairs. *)
}

type t = app_result list

val run : ?cfg:Config.t -> ?runs:int -> unit -> t
(** [run ()] processes both applications with [runs] (default [5000])
    synthetic runs each. *)

val to_string : t -> string

val sanity : t -> (string * bool) list
(** Checks that MLE recovers the generating parameters within a few
    percent and the KS distance is small. *)
