(** Fig. 3: normalized cost of the recurrence sequence as a function
    of the first reservation [t1], for all nine distributions.

    For each distribution, the BRUTE-FORCE grid is scanned and the
    normalized cost recorded at every candidate [t1]; candidates whose
    recurrence is not strictly increasing appear as gaps ([None]),
    reproducing the holes visible in the paper's figure (e.g. the
    Exponential panel between quantiles 0.25 and 0.75). *)

type panel = {
  dist_name : string;
  points : (float * float option) array;  (** (t1, normalized cost). *)
  best_t1 : float;
  best_cost : float;
}

type t = panel list

val run : ?cfg:Config.t -> ?points:int -> unit -> t
(** [run ()] scans [points] (default [200]) candidates per
    distribution — enough to draw the curve; the full-resolution scan
    is Table 3's job. *)

val to_string : t -> string
(** ASCII rendering: one sparkline-style block per distribution plus
    gap statistics. *)

val sanity : t -> (string * bool) list
(** Checks every panel has a valid minimum and that costs are worse
    away from it (the curve is not flat). *)
