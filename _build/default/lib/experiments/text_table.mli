(** Minimal aligned text-table rendering for experiment output. *)

val render : header:string list -> string list list -> string
(** [render ~header rows] lays the table out with left-aligned first
    column, right-aligned remaining columns, and a separator line
    under the header.
    @raise Invalid_argument if any row's width differs from the
    header's. *)

val fmt_ratio : float -> string
(** Formats a normalized cost with two decimals (the paper's table
    precision); non-finite values render as ["-"]. *)

val fmt_g : float -> string
(** Shortest-ish general float formatting ([%.4g]). *)
