(** Table 4: convergence of the discretization-based heuristics with
    the number of discrete samples.

    Runs EQUAL-TIME and EQUAL-PROBABILITY for
    [n = 10, 25, 50, 100, 250, 500, 1000] over the nine distributions
    and reports normalized Monte-Carlo costs; the paper's observation
    is that both schemes converge towards BRUTE-FORCE as [n] grows. *)

type t = {
  ns : int array;
  rows : (string * float array * float array) list;
      (** distribution, equal-time costs per n, equal-probability
          costs per n. *)
}

val default_ns : int array
(** [|10; 25; 50; 100; 250; 500; 1000|]. *)

val run : ?cfg:Config.t -> ?ns:int array -> unit -> t
val to_string : t -> string

val sanity : t -> brute_force:(string -> float) -> (string * bool) list
(** [sanity t ~brute_force] checks that at the largest [n] each scheme
    is within a modest factor of the given BRUTE-FORCE reference cost
    for each distribution. *)
