(** Table 3: the best first reservation [t1^bf] found by BRUTE-FORCE
    versus naive quantile guesses.

    For each distribution, reports [t1^bf] with its normalized cost,
    and the normalized cost of starting the optimal recurrence at
    [t1 = Q(0.25), Q(0.5), Q(0.75), Q(0.99)] instead — many of which
    yield invalid (non-increasing) sequences, printed as ["-"] like
    the paper. *)

type entry = { t1 : float; cost : float option }

type row = {
  dist_name : string;
  best : entry;  (** [t1^bf] and its (always present) cost. *)
  quantiles : entry array;  (** The four quantile candidates. *)
}

type t = row list

val quantile_probes : float array
(** [| 0.25; 0.5; 0.75; 0.99 |]. *)

val run : ?cfg:Config.t -> unit -> t
val to_string : t -> string

val sanity : t -> (string * bool) list
(** Qualitative checks: [t1^bf]'s cost is at least as good as every
    valid quantile guess (within Monte-Carlo noise), and at least one
    distribution has invalid quantile candidates. *)
