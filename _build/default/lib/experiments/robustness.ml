module B = Stochastic_core.Brute_force
module C = Stochastic_core.Cost_model
module E = Stochastic_core.Expected_cost
module Dist = Distributions.Dist

type point = {
  samples : int;
  mean_normalized : float;
  worst_normalized : float;
  regret : float;
}

type t = {
  dist_name : string;
  oracle_normalized : float;
  points : point list;
}

let default_sample_sizes = [| 10; 30; 100; 1000; 5000 |]

let run ?(cfg = Config.paper) ?(sample_sizes = default_sample_sizes)
    ?(replicas = 20) () =
  let truth = Distributions.Lognormal.neuro in
  let cost = C.reservation_only in
  (* Use a moderate grid: each replica runs its own search. *)
  let m = min cfg.Config.m 1000 in
  let oracle = B.search ~m ~evaluator:B.Exact cost truth in
  let oracle_normalized = oracle.B.normalized in
  let points =
    Array.to_list sample_sizes
    |> List.map (fun k ->
           let values =
             List.init replicas (fun r ->
                 let rng =
                   Config.rng_for cfg (Printf.sprintf "robustness/%d/%d" k r)
                 in
                 let trace = Dist.samples truth rng k in
                 match Distributions.Fitting.lognormal_mle trace with
                 | exception Invalid_argument _ ->
                     (* Degenerate tiny trace: fall back to the naive
                        single-reservation-at-max strategy. *)
                     let mx = Array.fold_left Float.max 0.0 trace in
                     let seq =
                       Stochastic_core.Sequence.sanitize
                         ~support:truth.Dist.support
                         (List.to_seq [ 2.0 *. mx ])
                     in
                     E.normalized cost truth ~cost:(E.exact cost truth seq)
                 | fit ->
                     let fitted = Distributions.Fitting.to_dist fit in
                     let r = B.search ~m ~evaluator:B.Exact cost fitted in
                     (* Replay the fitted-model sequence against the
                        true distribution. *)
                     E.normalized cost truth
                       ~cost:(E.exact cost truth r.B.sequence))
           in
           let mean_normalized =
             Numerics.Stats.mean (Array.of_list values)
           in
           let worst_normalized = List.fold_left Float.max neg_infinity values in
           {
             samples = k;
             mean_normalized;
             worst_normalized;
             regret = mean_normalized -. oracle_normalized;
           })
  in
  { dist_name = truth.Dist.name; oracle_normalized; points }

let to_string t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "true law: %s; oracle normalized cost %.4f\n" t.dist_name
       t.oracle_normalized);
  Buffer.add_string buf
    "trace size   mean normalized   worst replica   regret vs oracle\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%10d %17.4f %15.4f %18.4f\n" p.samples
           p.mean_normalized p.worst_normalized p.regret))
    t.points;
  Buffer.contents buf

let sanity t =
  match (t.points, List.rev t.points) with
  | first :: _, last :: _ ->
      [
        ( "regret shrinks from the smallest to the largest trace",
          last.regret <= first.regret +. 1e-9 );
        ( "5000-run traces (the paper's size) give near-oracle strategies",
          last.regret < 0.02 );
        ("oracle is never beaten on average", first.regret > -0.02);
      ]
  | _ -> []
