module B = Stochastic_core.Brute_force
module C = Stochastic_core.Cost_model
module E = Stochastic_core.Expected_cost
module Dist = Distributions.Dist

type point = {
  samples : int;
  interpolated : float;
  fitted : float;
  worst_interpolated : float;
  worst_fitted : float;
}
type t = { oracle : float; points : point list }

let run ?(cfg = Config.paper) ?(sample_sizes = [| 50; 200; 1000; 5000 |])
    ?(replicas = 10) () =
  let truth =
    (* VBMQA in hours, as in Fig. 4's base point. *)
    Dist.scale (1.0 /. 3600.0) Distributions.Lognormal.neuro
  in
  let cost = C.neuro_hpc in
  let m = min cfg.Config.m 1000 in
  let solve d = (B.search ~m ~evaluator:B.Exact cost d).B.sequence in
  let true_cost seq = E.normalized cost truth ~cost:(E.exact cost truth seq) in
  let oracle = true_cost (solve truth) in
  let points =
    Array.to_list sample_sizes
    |> List.map (fun k ->
           let vi = Array.make replicas 0.0 and vf = Array.make replicas 0.0 in
           for r = 0 to replicas - 1 do
             let rng =
               Config.rng_for cfg (Printf.sprintf "trace_vs_fit/%d/%d" k r)
             in
             let trace = Dist.samples truth rng k in
             let interpolated = Distributions.Empirical.make trace in
             vi.(r) <- true_cost (solve interpolated);
             let fit = Distributions.Fitting.lognormal_mle trace in
             let fitted = Distributions.Fitting.to_dist fit in
             vf.(r) <- true_cost (solve fitted)
           done;
           {
             samples = k;
             interpolated = Numerics.Stats.median vi;
             fitted = Numerics.Stats.median vf;
             worst_interpolated = Array.fold_left Float.max neg_infinity vi;
             worst_fitted = Array.fold_left Float.max neg_infinity vf;
           })
  in
  { oracle; points }

let to_string t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "oracle (true law known): normalized %.4f\n\
        trace size   interp (median/worst)   fit (median/worst)\n"
       t.oracle);
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%10d %12.4f / %-9.4f %9.4f / %-9.4f\n" p.samples
           p.interpolated p.worst_interpolated p.fitted p.worst_fitted))
    t.points;
  Buffer.contents buf

let sanity t =
  match List.rev t.points with
  | [] -> []
  | last :: _ ->
      let thousand =
        List.find_opt (fun p -> p.samples >= 1000) t.points
      in
      [
        ( "both routes near-oracle at the largest trace",
          last.interpolated <= t.oracle *. 1.03
          && last.fitted <= t.oracle *. 1.03 );
        ( "interpolation competitive from ~1000 samples",
          match thousand with
          | None -> true
          | Some p -> p.interpolated <= t.oracle *. 1.05 );
      ]
