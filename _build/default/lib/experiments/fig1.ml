type app_result = {
  app_name : string;
  truth_mu : float;
  truth_sigma : float;
  fit : Distributions.Fitting.lognormal_fit;
  histogram : (float * int) array;
}

type t = app_result list

let run ?(cfg = Config.paper) ?(runs = 5000) () =
  List.map
    (fun app ->
      let rng =
        Config.rng_for cfg (Printf.sprintf "fig1/%s" app.Platform.Traces.app_name)
      in
      let trace = Platform.Traces.generate ~runs app rng in
      let fit = Distributions.Fitting.lognormal_mle trace in
      let h = Numerics.Stats.histogram ~bins:30 trace in
      let histogram =
        Array.init
          (Array.length h.Numerics.Stats.counts)
          (fun i ->
            ( 0.5 *. (h.Numerics.Stats.bounds.(i) +. h.Numerics.Stats.bounds.(i + 1)),
              h.Numerics.Stats.counts.(i) ))
      in
      {
        app_name = app.Platform.Traces.app_name;
        truth_mu = app.Platform.Traces.mu;
        truth_sigma = app.Platform.Traces.sigma;
        fit;
        histogram;
      })
    [ Platform.Traces.fmriqa; Platform.Traces.vbmqa ]

let to_string t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      let f = r.fit in
      Buffer.add_string buf
        (Printf.sprintf
           "%s: generated LogNormal(mu=%.4f, sigma=%.4f); MLE fit mu=%.4f \
            sigma=%.4f; sample mean=%.1fs std=%.1fs; KS=%.4f (n=%d)\n"
           r.app_name r.truth_mu r.truth_sigma f.Distributions.Fitting.mu
           f.Distributions.Fitting.sigma f.Distributions.Fitting.sample_mean
           f.Distributions.Fitting.sample_std f.Distributions.Fitting.ks
           f.Distributions.Fitting.n);
      (* Text histogram, normalized to a 50-column bar. *)
      let maxc =
        Array.fold_left (fun acc (_, c) -> max acc c) 1 r.histogram
      in
      Array.iter
        (fun (center, count) ->
          let bar = count * 50 / maxc in
          Buffer.add_string buf
            (Printf.sprintf "  %8.0fs |%s\n" center (String.make bar '#')))
        r.histogram;
      Buffer.add_char buf '\n')
    t;
  Buffer.contents buf

let sanity t =
  List.concat_map
    (fun r ->
      let f = r.fit in
      [
        ( Printf.sprintf "%s: MLE recovers mu within 2%%" r.app_name,
          Float.abs (f.Distributions.Fitting.mu -. r.truth_mu)
          <= 0.02 *. r.truth_mu );
        ( Printf.sprintf "%s: MLE recovers sigma within 10%%" r.app_name,
          Float.abs (f.Distributions.Fitting.sigma -. r.truth_sigma)
          <= 0.10 *. r.truth_sigma );
        ( Printf.sprintf "%s: KS distance below 0.05" r.app_name,
          f.Distributions.Fitting.ks < 0.05 );
      ])
    t
