module Strategy = Stochastic_core.Strategy
module Cost_model = Stochastic_core.Cost_model
module Discretize = Stochastic_core.Discretize

type row = { dist_name : string; values : float array }
type t = { strategy_names : string array; rows : row list }

let strategies (cfg : Config.t) =
  [
    Strategy.brute_force ~m:cfg.Config.m ~n:cfg.Config.n_mc ~seed:cfg.Config.seed ();
    Strategy.mean_by_mean;
    Strategy.mean_stdev;
    Strategy.mean_doubling;
    Strategy.median_by_median;
    Strategy.dp_discretized ~eps:cfg.Config.eps ~scheme:Discretize.Equal_time
      ~n:cfg.Config.disc_n ();
    Strategy.dp_discretized ~eps:cfg.Config.eps
      ~scheme:Discretize.Equal_probability ~n:cfg.Config.disc_n ();
  ]

let run ?(cfg = Config.paper) () =
  let strategies = strategies cfg in
  let cost = Cost_model.reservation_only in
  let rows =
    List.map
      (fun (dist_name, d) ->
        (* Common random numbers: one evaluation sample set per
           distribution, shared by all strategies, so that ranking
           differences reflect the sequences rather than the draws. *)
        let rng = Config.rng_for cfg (Printf.sprintf "table2/%s" dist_name) in
        let samples = Distributions.Dist.samples d rng cfg.Config.n_mc in
        Array.sort compare samples;
        let values =
          strategies
          |> List.map (fun s ->
                 Strategy.evaluate_on cost d ~sorted_samples:samples s)
          |> Array.of_list
        in
        { dist_name; values })
      Distributions.Table1.all
  in
  {
    strategy_names =
      Array.of_list (List.map (fun s -> s.Strategy.name) strategies);
    rows;
  }

let to_string t =
  let header = "Distribution" :: Array.to_list t.strategy_names in
  let rows =
    List.map
      (fun r ->
        let bf = r.values.(0) in
        r.dist_name
        :: (Array.to_list r.values
           |> List.mapi (fun i v ->
                  if i = 0 then Text_table.fmt_ratio v
                  else
                    Printf.sprintf "%s (%.2f)" (Text_table.fmt_ratio v)
                      (v /. bf))))
      t.rows
  in
  Text_table.render ~header rows

let sanity t =
  let checks = ref [] in
  let add label ok = checks := (label, ok) :: !checks in
  List.iter
    (fun r ->
      let bf = r.values.(0) in
      let below4 = Array.for_all (fun v -> v < 4.5) r.values in
      add (Printf.sprintf "%s: all ratios below the RI/OD factor" r.dist_name)
        below4;
      (* Brute force is within Monte-Carlo noise (12%) of the best
         strategy of the row. *)
      let best = Array.fold_left Float.min infinity r.values in
      add
        (Printf.sprintf "%s: Brute-Force competitive with the best"
           r.dist_name)
        (bf <= best *. 1.12))
    t.rows;
  List.rev !checks
