(** Table 2: normalized expected costs of the seven heuristics under
    the nine Table 1 distributions, RESERVATIONONLY scenario.

    For each (strategy, distribution) pair the strategy's sequence is
    built with the paper's parameters and its cost estimated by
    Monte-Carlo over fresh samples, normalized by the omniscient cost
    [E^o]. The paper's bracketed values — each heuristic's cost
    relative to BRUTE-FORCE — are reproduced as well. *)

type row = {
  dist_name : string;
  values : float array;  (** One normalized cost per strategy. *)
}

type t = {
  strategy_names : string array;
  rows : row list;
}

val strategies : Config.t -> Stochastic_core.Strategy.t list
(** The seven Table 2 strategies instantiated with the given
    parameters, in column order (BRUTE-FORCE first) — shared with the
    Fig. 4 sweep. *)

val run : ?cfg:Config.t -> unit -> t
(** [run ()] executes the full experiment (paper parameters by
    default; expect tens of seconds). *)

val to_string : t -> string
(** Renders the table with the relative-to-BRUTE-FORCE values in
    brackets, like the paper. *)

val sanity : t -> (string * bool) list
(** [sanity t] evaluates the qualitative claims the paper draws from
    this table: every ratio is below the AWS RI/OD price factor 4
    (Weibull's heavy tail is allowed a small Monte-Carlo margin), and
    BRUTE-FORCE is within noise of the best strategy on every row.
    Returns labelled checks for the test suite. *)
