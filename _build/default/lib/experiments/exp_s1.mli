(** The Sect. 3.5 constant: optimal first reservation for Exp(1) under
    RESERVATIONONLY.

    Computes [(s1, E1)] with the dedicated Proposition 2 solver and
    cross-checks it against the generic BRUTE-FORCE machinery with the
    exact Eq. (4) evaluator. The paper reports [s1 ~ 0.74219] ("about
    three quarters of the mean"); the objective is extremely flat
    around the optimum and the recurrence trajectory is numerically
    unstable there, so implementations may legitimately settle a few
    thousandths away — the invariant checked is that both solvers land
    in the same flat basin with matching costs. *)

type t = {
  s1 : float;
  e1 : float;
  bf_t1 : float;  (** Generic brute-force cross-check. *)
  bf_cost : float;
  scale_check : float;
      (** Optimal cost for Exp(2), expected to equal [e1 / 2]. *)
}

val run : ?cfg:Config.t -> unit -> t
val to_string : t -> string
val sanity : t -> (string * bool) list
