lib/experiments/table2x.mli: Config
