lib/experiments/robustness.ml: Array Buffer Config Distributions Float List Numerics Printf Stochastic_core
