lib/experiments/ablation_bf.mli: Config Distributions
