lib/experiments/exp_s1.ml: Config Distributions Float Printf Stochastic_core
