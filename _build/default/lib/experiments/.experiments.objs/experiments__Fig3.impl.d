lib/experiments/fig3.ml: Array Buffer Config Distributions Float List Printf Stochastic_core String
