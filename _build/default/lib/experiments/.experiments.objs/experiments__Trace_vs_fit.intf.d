lib/experiments/trace_vs_fit.mli: Config
