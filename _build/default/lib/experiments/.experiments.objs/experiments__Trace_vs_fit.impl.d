lib/experiments/trace_vs_fit.ml: Array Buffer Config Distributions Float List Numerics Printf Stochastic_core
