lib/experiments/fig2.mli: Config Numerics Platform Stochastic_core
