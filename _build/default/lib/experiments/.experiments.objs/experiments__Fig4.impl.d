lib/experiments/fig4.ml: Array Config Distributions Float List Printf Stochastic_core Table2 Text_table
