lib/experiments/config.ml: Hashtbl Randomness
