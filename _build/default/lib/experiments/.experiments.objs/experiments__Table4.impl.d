lib/experiments/table4.ml: Array Config Distributions List Printf Stochastic_core Text_table
