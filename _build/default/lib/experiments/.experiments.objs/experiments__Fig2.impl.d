lib/experiments/fig2.ml: Array Buffer Config Float Numerics Platform Printf Stochastic_core
