lib/experiments/config.mli: Randomness
