lib/experiments/fig4.mli: Config
