lib/experiments/ablation_eps.mli: Config
