lib/experiments/exp_s1.mli: Config
