lib/experiments/robustness.mli: Config
