lib/experiments/ablation_eps.ml: Array Config Distributions Float List Printf Stochastic_core Text_table
