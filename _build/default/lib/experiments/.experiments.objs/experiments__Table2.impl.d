lib/experiments/table2.ml: Array Config Distributions Float List Printf Stochastic_core Text_table
