lib/experiments/fig1.ml: Array Buffer Config Distributions Float List Numerics Platform Printf String
