lib/experiments/text_table.mli:
