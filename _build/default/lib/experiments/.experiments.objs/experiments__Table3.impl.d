lib/experiments/table3.ml: Array Config Distributions List Option Printf Stochastic_core Text_table
