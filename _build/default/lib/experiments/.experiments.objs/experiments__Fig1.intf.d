lib/experiments/fig1.mli: Config Distributions
