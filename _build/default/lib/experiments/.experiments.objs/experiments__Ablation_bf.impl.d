lib/experiments/ablation_bf.ml: Array Buffer Config Distributions Float List Printf Stochastic_core
