lib/experiments/table2.mli: Config Stochastic_core
