module Strategy = Stochastic_core.Strategy
module Cost_model = Stochastic_core.Cost_model
module Discretize = Stochastic_core.Discretize

type t = { ns : int array; rows : (string * float array * float array) list }

let default_ns = [| 10; 25; 50; 100; 250; 500; 1000 |]

let run ?(cfg = Config.paper) ?(ns = default_ns) () =
  let cost = Cost_model.reservation_only in
  let eval scheme n dist_name d =
    let s =
      Strategy.dp_discretized ~eps:cfg.Config.eps ~scheme ~n ()
    in
    let rng =
      Config.rng_for cfg
        (Printf.sprintf "table4/%s/%s/%d" dist_name s.Strategy.name n)
    in
    Strategy.evaluate ~n:cfg.Config.n_mc ~rng cost d s
  in
  let rows =
    List.map
      (fun (dist_name, d) ->
        let et =
          Array.map (fun n -> eval Discretize.Equal_time n dist_name d) ns
        in
        let ep =
          Array.map
            (fun n -> eval Discretize.Equal_probability n dist_name d)
            ns
        in
        (dist_name, et, ep))
      Distributions.Table1.all
  in
  { ns; rows }

let to_string t =
  let scheme_block name get =
    let header =
      "Distribution"
      :: (Array.to_list t.ns |> List.map (fun n -> Printf.sprintf "n=%d" n))
    in
    let rows =
      List.map
        (fun ((dist_name, _, _) as row) ->
          dist_name
          :: (Array.to_list (get row) |> List.map Text_table.fmt_ratio))
        t.rows
    in
    Printf.sprintf "%s\n%s" name (Text_table.render ~header rows)
  in
  scheme_block "Equal-time" (fun (_, et, _) -> et)
  ^ "\n"
  ^ scheme_block "Equal-probability" (fun (_, _, ep) -> ep)

let sanity t ~brute_force =
  let last = Array.length t.ns - 1 in
  List.concat_map
    (fun (dist_name, et, ep) ->
      let bf = brute_force dist_name in
      [
        ( Printf.sprintf "%s: Equal-time at n=%d close to Brute-Force"
            dist_name t.ns.(last),
          et.(last) <= bf *. 1.25 );
        ( Printf.sprintf "%s: Equal-probability at n=%d close to Brute-Force"
            dist_name t.ns.(last),
          ep.(last) <= bf *. 1.25 );
      ])
    t.rows
