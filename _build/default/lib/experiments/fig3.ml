module Brute_force = Stochastic_core.Brute_force
module Cost_model = Stochastic_core.Cost_model

type panel = {
  dist_name : string;
  points : (float * float option) array;
  best_t1 : float;
  best_cost : float;
}

type t = panel list

let run ?(cfg = Config.paper) ?(points = 200) () =
  let cost = Cost_model.reservation_only in
  List.map
    (fun (dist_name, d) ->
      let rng = Config.rng_for cfg (Printf.sprintf "fig3/%s" dist_name) in
      let evaluator = Brute_force.Monte_carlo { rng; n = cfg.Config.n_mc } in
      let pts = Brute_force.profile ~m:points ~evaluator cost d in
      let best_t1 = ref nan and best_cost = ref infinity in
      Array.iter
        (fun (t1, c) ->
          match c with
          | Some c when c < !best_cost ->
              best_cost := c;
              best_t1 := t1
          | _ -> ())
        pts;
      { dist_name; points = pts; best_t1 = !best_t1; best_cost = !best_cost })
    Distributions.Table1.all

let to_string t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun p ->
      let valid =
        Array.to_list p.points |> List.filter_map (fun (_, c) -> c)
      in
      let invalid =
        Array.length p.points - List.length valid
      in
      Buffer.add_string buf
        (Printf.sprintf "%s: best t1=%.4f cost=%.3f; %d/%d candidates invalid\n"
           p.dist_name p.best_t1 p.best_cost invalid (Array.length p.points));
      (* Sparkline: map cost range onto 8 levels, '.' for gaps. *)
      if valid <> [] then begin
        let lo = List.fold_left Float.min infinity valid in
        let hi = List.fold_left Float.max neg_infinity valid in
        let levels = "12345678" in
        let line =
          Array.to_list p.points
          |> List.map (fun (_, c) ->
                 match c with
                 | None -> '.'
                 | Some c ->
                     let idx =
                       if hi > lo then
                         int_of_float ((c -. lo) /. (hi -. lo) *. 7.0)
                       else 0
                     in
                     levels.[max 0 (min 7 idx)])
          |> List.to_seq |> String.of_seq
        in
        Buffer.add_string buf ("  " ^ line ^ "\n")
      end)
    t;
  Buffer.contents buf

let sanity t =
  List.concat_map
    (fun p ->
      let valid =
        Array.to_list p.points |> List.filter_map (fun (_, c) -> c)
      in
      let worst = List.fold_left Float.max neg_infinity valid in
      [
        (Printf.sprintf "%s: a valid minimum exists" p.dist_name,
         Float.is_finite p.best_cost);
        ( Printf.sprintf "%s: the curve is not flat" p.dist_name,
          (* A bounded distribution can have a single valid candidate
             (Uniform: only t1 = b survives, Theorem 4); the shape
             check is vacuous there. *)
          List.length valid < 2 || worst > p.best_cost *. 1.02 );
      ])
    t
