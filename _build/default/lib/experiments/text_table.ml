let render ~header rows =
  let ncols = List.length header in
  List.iter
    (fun r ->
      if List.length r <> ncols then
        invalid_arg "Text_table.render: ragged row")
    rows;
  let all = header :: rows in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let buf = Buffer.create 1024 in
  let emit_row r =
    List.iteri
      (fun i cell ->
        let w = widths.(i) in
        let pad = w - String.length cell in
        if i = 0 then begin
          Buffer.add_string buf cell;
          Buffer.add_string buf (String.make pad ' ')
        end
        else begin
          Buffer.add_string buf "  ";
          Buffer.add_string buf (String.make pad ' ');
          Buffer.add_string buf cell
        end)
      r;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  let total =
    Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))
  in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let fmt_ratio v =
  if Float.is_finite v then Printf.sprintf "%.2f" v else "-"

let fmt_g v = Printf.sprintf "%.4g" v
