module Strategy = Stochastic_core.Strategy
module Cost_model = Stochastic_core.Cost_model

type row = { dist_name : string; values : float array }
type t = { strategy_names : string array; rows : row list }

let strategies cfg =
  Table2.strategies cfg
  @ [ Strategy.quantile_ladder ~q:0.25; Strategy.quantile_ladder ~q:0.75 ]

let run ?(cfg = Config.paper) () =
  let strategies = strategies cfg in
  let cost = Cost_model.reservation_only in
  let rows =
    List.map
      (fun (dist_name, d) ->
        let rng = Config.rng_for cfg (Printf.sprintf "table2x/%s" dist_name) in
        let samples = Distributions.Dist.samples d rng cfg.Config.n_mc in
        Array.sort compare samples;
        let values =
          strategies
          |> List.map (fun s ->
                 Strategy.evaluate_on cost d ~sorted_samples:samples s)
          |> Array.of_list
        in
        { dist_name; values })
      Distributions.Registry.extras
  in
  {
    strategy_names =
      Array.of_list (List.map (fun s -> s.Strategy.name) strategies);
    rows;
  }

let to_string t =
  let header = "Distribution" :: Array.to_list t.strategy_names in
  let rows =
    List.map
      (fun r ->
        r.dist_name
        :: (Array.to_list r.values |> List.map Text_table.fmt_ratio))
      t.rows
  in
  Text_table.render ~header rows

let sanity t =
  List.concat_map
    (fun r ->
      let bf = r.values.(0) and et = r.values.(5) and ep = r.values.(6) in
      let best = Array.fold_left Float.min infinity r.values in
      (* The RI/OD bound is a claim about the paper's seven strategies
         (the first seven columns); the extra ladder variants include
         a deliberately weak q = 0.75 one. *)
      let paper7 = Array.sub r.values 0 7 in
      [
        ( Printf.sprintf
            "%s: an optimal-structure heuristic is within noise of the best"
            r.dist_name,
          Float.min (Float.min bf et) ep <= best *. 1.08 );
        ( Printf.sprintf "%s: the paper strategies stay below the RI/OD factor"
            r.dist_name,
          Array.for_all (fun v -> v < 4.5) paper7 );
      ])
    t.rows
