type t = {
  truth_alpha : float;
  truth_gamma : float;
  binned : Platform.Hpc_queue.binned;
  fit : Numerics.Regression.fit;
  cost_model : Stochastic_core.Cost_model.t;
}

let run ?(cfg = Config.paper) ?(jobs = 5000) () =
  let truth_alpha = 0.95 and truth_gamma = 1.05 in
  let rng = Config.rng_for cfg "fig2" in
  let log =
    Platform.Hpc_queue.synthetic_log ~jobs ~alpha:truth_alpha
      ~gamma:truth_gamma rng
  in
  let binned = Platform.Hpc_queue.bin_log ~groups:20 log in
  let fit = Platform.Hpc_queue.fit binned in
  {
    truth_alpha;
    truth_gamma;
    binned;
    fit;
    cost_model = Platform.Hpc_queue.cost_model_of_fit fit;
  }

let to_string t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "ground truth: wait = %.2f * requested + %.2f h\nfitted:       wait = \
        %.4f * requested + %.4f h   (R^2 = %.4f over %d group means)\n"
       t.truth_alpha t.truth_gamma t.fit.Numerics.Regression.slope
       t.fit.Numerics.Regression.intercept t.fit.Numerics.Regression.r_squared
       t.fit.Numerics.Regression.n);
  Buffer.add_string buf "group means (requested h -> mean wait h):\n";
  Array.iteri
    (fun i c ->
      Buffer.add_string buf
        (Printf.sprintf "  %6.2f -> %6.2f\n" c
           t.binned.Platform.Hpc_queue.mean_waits.(i)))
    t.binned.Platform.Hpc_queue.centers;
  Buffer.contents buf

let sanity t =
  [
    ( "fitted alpha within 10% of ground truth",
      Float.abs (t.fit.Numerics.Regression.slope -. t.truth_alpha)
      <= 0.10 *. t.truth_alpha );
    ( "fitted gamma within 25% of ground truth",
      Float.abs (t.fit.Numerics.Regression.intercept -. t.truth_gamma)
      <= 0.25 *. t.truth_gamma );
    ("R^2 above 0.95 over group means", t.fit.Numerics.Regression.r_squared > 0.95);
  ]
