(** Fig. 2: average queue wait versus requested runtime, with affine
    fit.

    A synthetic scheduler log (substituting the unavailable Intrepid
    logs) is binned into 20 groups of similar requested runtime; each
    group's mean wait is plotted and an affine function fitted through
    them, recovering the NEUROHPC cost-model coefficients
    [(alpha ~ 0.95, gamma ~ 1.05 h)]. *)

type t = {
  truth_alpha : float;
  truth_gamma : float;
  binned : Platform.Hpc_queue.binned;  (** The 20 blue points. *)
  fit : Numerics.Regression.fit;  (** The green line. *)
  cost_model : Stochastic_core.Cost_model.t;  (** Derived model. *)
}

val run : ?cfg:Config.t -> ?jobs:int -> unit -> t
val to_string : t -> string

val sanity : t -> (string * bool) list
(** Checks the fit recovers the generating coefficients within 10%
    and explains most of the binned variance. *)
