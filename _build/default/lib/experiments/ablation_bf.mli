(** Ablation: BRUTE-FORCE sensitivity to its two resolution parameters
    (grid size [M], Monte-Carlo samples [N]) — the design choices of
    Sect. 4.1 — plus a direct measurement of the {e selection
    optimism} of the MC evaluator.

    For each configuration, the winning sequence is re-evaluated with
    the deterministic Eq. (4) series, so the reported quality is
    unbiased; [optimism] is the amount by which the noisy MC estimate
    that won the grid search undershoots the true expected cost of the
    winner (min-of-noisy-estimates bias). This quantifies the
    deviation between this repository's Table 2 BRUTE-FORCE column and
    the paper's (see EXPERIMENTS.md). *)

type point = {
  m : int;  (** Grid size used. *)
  n : int;  (** MC samples used. *)
  exact_normalized : float;  (** True cost of the winner, / E^o. *)
  optimism : float;
      (** [(exact_cost(winner) - mc_estimate(winner)) / E^o] — the
          selection bias of minimising noisy estimates, >= 0 in
          expectation, in omniscient-normalized units. *)
}

type t = {
  dist_name : string;
  m_sweep : point array;  (** Varying M at the paper's N = 1000. *)
  n_sweep : point array;  (** Varying N at the paper's M = 5000. *)
}

val default_ms : int array
val default_ns : int array

val run :
  ?cfg:Config.t ->
  ?ms:int array ->
  ?ns:int array ->
  ?dists:(string * Distributions.Dist.t) list ->
  unit ->
  t list
(** [run ()] sweeps the default grids over Exponential, Weibull and
    LogNormal (the light-, heavy- and the paper's headline tail). *)

val to_string : t list -> string

val sanity : t list -> (string * bool) list
(** Checks that quality is monotone-ish in M (the largest M is within
    2 % of the best observed) and that the measured optimism is
    nonnegative up to MC noise. *)
