(** Ablation: sensitivity of the discretization heuristics to the
    truncation quantile [eps] (Sect. 4.2.1 fixes [eps = 1e-7] without
    discussion).

    Too large an [eps] cuts off real tail mass — jobs beyond the
    truncation point pay the doubling-extension penalty; too small an
    [eps] stretches the lattice over an enormous range, starving the
    bulk of the distribution of resolution under EQUAL-TIME. The sweep
    measures both effects with the exact evaluator. *)

type t = {
  epss : float array;
  rows : (string * float array * float array) list;
      (** distribution, equal-time / equal-probability exact
          normalized costs per eps. *)
}

val default_epss : float array
(** [|1e-2; 1e-3; 1e-5; 1e-7; 1e-9|]. *)

val run : ?cfg:Config.t -> ?epss:float array -> ?n:int -> unit -> t
(** Sweeps the unbounded-support Table 1 distributions (truncation is
    a no-op on bounded supports) at discretization size [n] (default
    the paper's 1000). *)

val to_string : t -> string

val sanity : t -> (string * bool) list
(** Checks the paper's setting is adequate: for every distribution,
    [eps = 1e-7] is within 10 % of the best sweep point. *)
