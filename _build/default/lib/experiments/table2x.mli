(** Extended Table 2: the seven paper strategies plus two quantile-
    ladder variants, evaluated on the beyond-the-paper distributions
    (log-logistic, Frechet, triangular, shifted exponential, Rayleigh,
    bimodal LogNormal mixture) under RESERVATIONONLY.

    This is the generality check a library user cares about: the
    qualitative story of Table 2 — the optimal-structure heuristics
    (BRUTE-FORCE and the discretization DPs) dominate the summary-
    statistic family — should survive on laws the paper never
    evaluated, including a multi-modal one where single-mode
    intuitions (start at the mean) are at their weakest. *)

type row = { dist_name : string; values : float array }

type t = {
  strategy_names : string array;
  rows : row list;
}

val run : ?cfg:Config.t -> unit -> t
val to_string : t -> string

val sanity : t -> (string * bool) list
(** BRUTE-FORCE / EQUAL-TIME / EQUAL-PROBABILITY within noise of the
    row optimum on every extended distribution. *)
