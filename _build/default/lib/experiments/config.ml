type t = { m : int; n_mc : int; disc_n : int; eps : float; seed : int }

let paper = { m = 5000; n_mc = 1000; disc_n = 1000; eps = 1e-7; seed = 42 }
let quick = { m = 300; n_mc = 400; disc_n = 200; eps = 1e-7; seed = 42 }
let with_seed seed cfg = { cfg with seed }

let rng_for cfg label =
  (* Mix the label into the seed with a simple string hash so that
     each experiment gets an independent, reproducible stream. *)
  let h = Hashtbl.hash label in
  Randomness.Rng.create ~seed:(cfg.seed lxor (h * 0x9E3779B9)) ()
