(** Fig. 4: the NEUROHPC scenario — normalized expected costs of all
    heuristics on the VBMQA LogNormal under the HPC wait-time cost
    model, with the distribution's mean and standard deviation scaled
    by factors up to 10.

    The cost model is [(alpha = 0.95, beta = 1, gamma = 1.05)] (hours)
    and the base distribution has mean ~ 0.348 h and std ~ 0.072 h
    (Sect. 5.3); each sweep point re-instantiates the LogNormal from
    the scaled moments via footnote 4's inversion. *)

type point = {
  mean_hours : float;
  std_hours : float;
  values : float array;  (** Normalized cost per strategy. *)
}

type t = {
  strategy_names : string array;
  points : point list;
}

val default_factors : float array
(** [|1.; 2.; 4.; 6.; 8.; 10.|] — scaling factors applied to both
    moments. *)

val run : ?cfg:Config.t -> ?factors:float array -> unit -> t
val to_string : t -> string

val sanity : t -> (string * bool) list
(** The paper's headline claim: at every sweep point, BRUTE-FORCE,
    EQUAL-TIME and EQUAL-PROBABILITY are close to each other and
    clearly better than the mean/median family. *)
