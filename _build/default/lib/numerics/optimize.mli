(** One-dimensional minimisation.

    Used by the BRUTE-FORCE heuristic (grid search over the first
    reservation length, Sect. 4.1 of the paper) and by the Exp(1)
    characterisation of Proposition 2 (golden-section refinement of
    [s1]). *)

type result = {
  xmin : float;  (** Arg-min found. *)
  fmin : float;  (** Objective value at [xmin]. *)
  evaluations : int;  (** Number of objective evaluations performed. *)
}

val golden_section :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> result
(** [golden_section f a b] minimises a unimodal [f] on [[a, b]] by
    golden-section search. [tol] (default [1e-10]) bounds the final
    bracket width relative to the scale of [x]. *)

val brent_min :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> result
(** [brent_min f a b] minimises [f] on [[a, b]] with Brent's parabolic
    interpolation method, falling back to golden-section steps. Faster
    than {!golden_section} on smooth objectives. *)

val grid :
  ?refine:bool -> n:int -> (float -> float) -> float -> float -> result
(** [grid ~n f a b] evaluates [f] at the [n] points
    [a + m*(b-a)/n], [m = 1..n] — exactly the BRUTE-FORCE sampling of
    the paper — and returns the best. Points where [f] returns [nan] or
    [infinity] are skipped (the paper discards first-reservation
    candidates whose recurrence is not strictly increasing). If
    [refine] is [true] (default), a golden-section pass over the two
    grid cells surrounding the best point polishes the result.
    @raise Invalid_argument if [n <= 0] or every point was invalid. *)
