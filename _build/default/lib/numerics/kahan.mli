(** Compensated floating-point summation.

    Plain left-to-right summation of [n] floats accumulates an error that
    grows like [n * eps]. The Kahan–Neumaier algorithm implemented here
    keeps a running compensation term so that the error stays at a small
    multiple of [eps], independent of [n]. All Monte-Carlo estimators and
    expected-cost series in this project accumulate through this module. *)

type t
(** A mutable compensated accumulator. *)

val create : unit -> t
(** [create ()] is a fresh accumulator holding [0.0]. *)

val add : t -> float -> unit
(** [add acc x] adds [x] to the accumulator using Neumaier's variant of
    Kahan summation (robust even when [x] is larger than the running
    sum). *)

val sum : t -> float
(** [sum acc] is the current compensated value of the accumulator. *)

val reset : t -> unit
(** [reset acc] sets the accumulator back to [0.0]. *)

val sum_array : float array -> float
(** [sum_array a] is the compensated sum of all elements of [a]. *)

val sum_seq : float Seq.t -> float
(** [sum_seq s] is the compensated sum of the (finite) sequence [s]. *)

val mean_array : float array -> float
(** [mean_array a] is the compensated arithmetic mean of [a].
    @raise Invalid_argument if [a] is empty. *)

val dot : float array -> float array -> float
(** [dot a b] is the compensated dot product of [a] and [b].
    @raise Invalid_argument if lengths differ. *)
