(** Ordinary least squares for affine models.

    The NEUROHPC scenario (Sect. 5.3 of the paper) needs the affine
    wait-time function of Fig. 2 — average queue wait as a function of
    the requested runtime — recovered from scheduler logs by curve
    fitting. This module implements the one-dimensional OLS fit
    [y ~= slope * x + intercept] with goodness-of-fit diagnostics. *)

type fit = {
  slope : float;  (** Fitted slope ([alpha] in the wait-time model). *)
  intercept : float;  (** Fitted intercept ([gamma] in the model). *)
  r_squared : float;  (** Coefficient of determination in [[0, 1]]. *)
  residual_std : float;  (** Standard deviation of the residuals. *)
  n : int;  (** Number of points used. *)
}

val ols : x:float array -> y:float array -> fit
(** [ols ~x ~y] fits [y ~= slope * x + intercept] by least squares.
    @raise Invalid_argument if the arrays differ in length, have fewer
    than two points, or [x] is constant. *)

val predict : fit -> float -> float
(** [predict fit x] evaluates the fitted affine function at [x]. *)
