(** Numerical quadrature.

    Adaptive Simpson and adaptive Gauss–Kronrod (G7/K15) rules over
    finite intervals, plus semi-infinite integrals via the rational
    substitution [x = a + u/(1-u)]. Used to evaluate expected costs
    (Eq. (3) of the paper), conditional expectations of arbitrary
    distributions, and to cross-check the closed-form moments of
    [lib/distributions]. *)

val simpson : ?tol:float -> ?max_depth:int -> (float -> float) -> float -> float -> float
(** [simpson ?tol ?max_depth f a b] integrates [f] over [[a, b]] with
    adaptive Simpson quadrature and Richardson correction. [tol]
    defaults to [1e-10] (absolute), [max_depth] to [48]. [a > b] yields
    the negated integral. *)

val qk15 : (float -> float) -> float -> float -> float * float
(** [qk15 f a b] applies a single 15-point Kronrod rule (embedding the
    7-point Gauss rule) on [[a, b]] and returns
    [(integral, error_estimate)]. All nodes are interior, so [f] is
    never evaluated at the endpoints. *)

val gauss_kronrod :
  ?tol:float ->
  ?max_depth:int ->
  ?initial:int ->
  (float -> float) ->
  float ->
  float ->
  float
(** [gauss_kronrod ?tol ?max_depth ?initial f a b] integrates [f] over
    [[a, b]] by adaptive bisection driven by the K15 error estimate,
    starting from [initial] (default [1]) equal subintervals — raise
    it for sharply peaked integrands that could slip between the nodes
    of a single panel. Endpoints are never evaluated, which makes it
    safe for integrable endpoint singularities such as the Beta(2,2)
    density derivative.
    @raise Invalid_argument if [initial <= 0]. *)

val to_infinity : ?tol:float -> (float -> float) -> float -> float
(** [to_infinity ?tol f a] computes [integral_a^inf f(x) dx] by mapping
    to [u] in [(0, 1)] with [x = a + u/(1-u)] and applying
    {!gauss_kronrod} (whose nodes avoid [u = 1]). Requires [f] to decay
    at infinity fast enough to be integrable. *)

val trapezoid : (float -> float) -> float -> float -> int -> float
(** [trapezoid f a b n] is the plain composite trapezoid rule with [n]
    panels; exposed for tests and for integrating tabulated data.
    @raise Invalid_argument if [n <= 0]. *)
