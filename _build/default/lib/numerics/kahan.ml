type t = { mutable sum : float; mutable comp : float }

let create () = { sum = 0.0; comp = 0.0 }

let add acc x =
  let t = acc.sum +. x in
  (* Neumaier's branch: compensate with whichever operand lost digits. *)
  if Float.abs acc.sum >= Float.abs x then
    acc.comp <- acc.comp +. ((acc.sum -. t) +. x)
  else acc.comp <- acc.comp +. ((x -. t) +. acc.sum);
  acc.sum <- t

let sum acc = acc.sum +. acc.comp

let reset acc =
  acc.sum <- 0.0;
  acc.comp <- 0.0

let sum_array a =
  let acc = create () in
  Array.iter (add acc) a;
  sum acc

let sum_seq s =
  let acc = create () in
  Seq.iter (add acc) s;
  sum acc

let mean_array a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Kahan.mean_array: empty array";
  sum_array a /. float_of_int n

let dot a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Kahan.dot: length mismatch";
  let acc = create () in
  for i = 0 to n - 1 do
    add acc (a.(i) *. b.(i))
  done;
  sum acc
