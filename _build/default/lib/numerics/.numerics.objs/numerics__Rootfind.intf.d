lib/numerics/rootfind.mli:
