lib/numerics/specfun.ml: Array Float
