lib/numerics/optimize.mli:
