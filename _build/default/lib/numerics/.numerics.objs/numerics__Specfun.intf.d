lib/numerics/specfun.mli:
