lib/numerics/regression.ml: Array Kahan
