lib/numerics/integrate.mli:
