lib/numerics/regression.mli:
