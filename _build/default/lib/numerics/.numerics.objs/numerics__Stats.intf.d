lib/numerics/stats.mli:
