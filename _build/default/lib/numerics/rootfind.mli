(** Scalar root finding.

    Bracketing solvers used to invert CDFs numerically (empirical and
    truncated distributions) and as a safeguarded fallback for the
    special-function inverses. *)

exception No_bracket of string
(** Raised when the supplied interval does not bracket a sign change. *)

val bisection :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** [bisection ?tol ?max_iter f a b] finds a root of [f] on [[a, b]] by
    bisection. [tol] (default [1e-12]) bounds the final interval width.
    @raise No_bracket if [f a] and [f b] have the same strict sign. *)

val brent :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** [brent ?tol ?max_iter f a b] finds a root with Brent's method
    (inverse quadratic interpolation + secant + bisection safeguards).
    Converges superlinearly on smooth functions while retaining the
    bisection guarantee.
    @raise No_bracket if [f a] and [f b] have the same strict sign. *)

val newton_safe :
  ?tol:float ->
  ?max_iter:int ->
  f:(float -> float) ->
  df:(float -> float) ->
  lo:float ->
  hi:float ->
  float ->
  float
(** [newton_safe ~f ~df ~lo ~hi x0] runs Newton iterations from [x0],
    falling back to bisection of [[lo, hi]] whenever a Newton step
    leaves the bracket or makes insufficient progress.
    @raise No_bracket if [f lo] and [f hi] have the same strict sign. *)

val expand_bracket :
  ?factor:float -> ?max_iter:int -> (float -> float) -> float -> float ->
  float * float
(** [expand_bracket f a b] geometrically expands the interval [[a, b]]
    until it brackets a sign change of [f], and returns the bracketing
    pair.
    @raise No_bracket if no sign change is found after [max_iter]
    (default [60]) expansions. *)
