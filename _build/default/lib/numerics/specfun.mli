(** Special mathematical functions.

    This module hand-rolls every special function required by the paper's
    distribution formulas (Table 5 and Appendix A/B): the error function
    and its inverse, the (log-)gamma function, regularized incomplete
    gamma functions and their inverse, and the (incomplete) beta function
    with its inverse. OCaml's ecosystem does not ship these, so they are
    implemented from scratch using the classical series / continued
    fraction / Newton-refinement constructions. Accuracy is close to
    machine precision (relative error around [1e-14]) on the domains used
    by this project; every function is oracle-tested in
    [test/test_specfun.ml]. *)

val log_gamma : float -> float
(** [log_gamma x] is [ln (Gamma x)] for [x > 0], computed with a Lanczos
    approximation (g = 7, 9 coefficients). For [x < 0.5] the reflection
    formula is applied (valid as long as [Gamma x > 0]).
    @raise Invalid_argument if [x] is a non-positive integer or [nan]. *)

val gamma : float -> float
(** [gamma x] is the gamma function [Gamma x] for [x > 0]. Overflows to
    [infinity] for [x] larger than about [171.6]. *)

val gamma_p : float -> float -> float
(** [gamma_p a x] is the lower regularized incomplete gamma function
    [P(a, x) = gamma(a, x) / Gamma(a)] for [a > 0], [x >= 0]. Uses the
    power series for [x < a + 1] and the Lentz continued fraction
    otherwise. *)

val gamma_q : float -> float -> float
(** [gamma_q a x] is the upper regularized incomplete gamma function
    [Q(a, x) = 1 - P(a, x)]. Computed directly from the continued
    fraction when [x >= a + 1], so it stays accurate in the far tail
    where [1 - P] would cancel. *)

val upper_incomplete_gamma : float -> float -> float
(** [upper_incomplete_gamma a x] is the non-regularized upper incomplete
    gamma function [Gamma(a, x) = integral_x^inf t^(a-1) e^(-t) dt]
    (used by the Weibull and Gamma MEAN-BY-MEAN recursions of Appendix
    B). *)

val inverse_gamma_p : float -> float -> float
(** [inverse_gamma_p a p] is the value [x] such that [gamma_p a x = p],
    for [p] in [[0, 1]]. Initial guess by Wilson–Hilferty (for [a > 1])
    or a small-[a] split, refined by safeguarded Newton iterations.
    Returns [0.] at [p = 0] and [infinity] at [p = 1]. *)

val erf : float -> float
(** [erf x] is the error function, computed through
    [sign(x) * P(1/2, x^2)] so that it shares the incomplete-gamma
    machinery. *)

val erfc : float -> float
(** [erfc x] is the complementary error function [1 - erf x], accurate
    in the tail (computed as [Q(1/2, x^2)] for [x > 0]). *)

val erf_inv : float -> float
(** [erf_inv z] is the inverse error function on [(-1, 1)]. Returns
    [neg_infinity] / [infinity] at the closed endpoints. *)

val erfc_inv : float -> float
(** [erfc_inv q] is the inverse complementary error function on
    [(0, 2)]. *)

val normal_cdf : float -> float
(** [normal_cdf x] is the standard normal cumulative distribution
    function [Phi(x)]. *)

val normal_quantile : float -> float
(** [normal_quantile p] is [Phi^(-1)(p)] for [p] in [(0, 1)]: Acklam's
    rational approximation refined with one Halley step against
    [erfc]. Accurate to full double precision. *)

val log_beta : float -> float -> float
(** [log_beta a b] is [ln (B(a, b))] for [a, b > 0]. *)

val beta_fun : float -> float -> float
(** [beta_fun a b] is the (complete) beta function [B(a, b)]. *)

val betai : float -> float -> float -> float
(** [betai a b x] is the regularized incomplete beta function
    [I_x(a, b)] for [x] in [[0, 1]], via the Lentz continued fraction
    with the symmetry split at [x = (a+1)/(a+b+2)]. *)

val incomplete_beta : float -> float -> float -> float
(** [incomplete_beta a b x] is the non-regularized incomplete beta
    function [B(x; a, b) = I_x(a, b) * B(a, b)] (used by the Beta
    MEAN-BY-MEAN recursion of Appendix B.7). *)

val inverse_betai : float -> float -> float -> float
(** [inverse_betai a b p] is the value [x] with [betai a b x = p].
    Abramowitz–Stegun 26.5.22 initial guess refined by safeguarded
    Newton iterations; exact at the endpoints. *)
