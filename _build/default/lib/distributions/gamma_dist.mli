(** Gamma distribution [Gamma(alpha, beta)] (shape [alpha], rate
    [beta]) on [[0, inf)].

    Density [f(t) = beta^alpha / Gamma(alpha) * t^(alpha-1) e^(-beta t)].
    The conditional expectation follows Appendix B.2:
    [E(X | X > tau) = alpha/beta + (beta tau)^alpha e^(-beta tau) /
    (Gamma(alpha, beta tau) * beta)]. *)

val make : shape:float -> rate:float -> Dist.t
(** [make ~shape ~rate] is Gamma with the paper's (shape, rate)
    parameterisation.
    @raise Invalid_argument if [shape <= 0.] or [rate <= 0.]. *)

val default : Dist.t
(** Table 1 instantiation: [Gamma(2.0, 2.0)]. *)
