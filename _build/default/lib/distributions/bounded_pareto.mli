(** Bounded Pareto distribution [BoundedPareto(L, H, alpha)] on
    [[L, H]].

    Density [f(t) = alpha L^alpha t^(-alpha-1) / (1 - (L/H)^alpha)]. A
    heavy-tail law with a hard upper bound — the classical model for
    job sizes in systems workloads. Conditional expectation (Appendix
    B.8): [E(X | X > tau) = alpha/(alpha-1) * (H^(1-alpha) -
    tau^(1-alpha)) / (H^-alpha - tau^-alpha)]. *)

val make : l:float -> h:float -> alpha:float -> Dist.t
(** [make ~l ~h ~alpha] is BoundedPareto(L = [l], H = [h], [alpha]).
    @raise Invalid_argument unless [0 < l < h] and [alpha > 0] and
    [alpha <> 1] (the paper's mean formula requires [alpha <> 1]). *)

val default : Dist.t
(** Table 1 instantiation: [BoundedPareto(1.0, 20.0, 2.1)]. *)
