(** Name-indexed registry of every distribution this library ships:
    the paper's Table 1 evaluation set plus the extended set (mixture,
    log-logistic, Frechet, triangular, shifted exponential,
    Rayleigh). *)

val extras : (string * Dist.t) list
(** The beyond-the-paper distributions with their default
    instantiations. *)

val all : (string * Dist.t) list
(** {!Table1.all} followed by {!extras}. *)

val find : string -> Dist.t option
(** Case-insensitive lookup over {!all}. *)

val names : unit -> string list
(** Registered names, in registry order. *)
