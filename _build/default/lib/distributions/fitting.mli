(** Parameter estimation from trace data.

    The paper fits LogNormal laws to neuroscience application traces
    (Fig. 1) and re-instantiates them from target moments for the
    robustness sweep of Fig. 4 (footnote 4). This module provides both
    estimators plus simple diagnostics. *)

type lognormal_fit = {
  mu : float;  (** Fitted log-mean. *)
  sigma : float;  (** Fitted log-std. *)
  sample_mean : float;  (** Linear-scale sample mean. *)
  sample_std : float;  (** Linear-scale sample standard deviation. *)
  ks : float;  (** Kolmogorov–Smirnov distance of the fit to the data. *)
  n : int;  (** Number of samples used. *)
}

val lognormal_mle : float array -> lognormal_fit
(** [lognormal_mle xs] fits LogNormal(mu, sigma^2) by maximum
    likelihood — [mu] and [sigma] are the mean and standard deviation
    of [ln x_i]. This is the estimator behind Fig. 1.
    @raise Invalid_argument if fewer than 2 samples or any sample is
    non-positive. *)

val lognormal_of_moments : mean:float -> std:float -> float * float
(** [lognormal_of_moments ~mean ~std] is footnote 4's inversion: the
    [(mu, sigma)] of the LogNormal whose linear mean and standard
    deviation equal the arguments.
    @raise Invalid_argument if [mean <= 0.] or [std <= 0.]. *)

val to_dist : lognormal_fit -> Dist.t
(** [to_dist fit] instantiates the fitted LogNormal as a {!Dist.t}. *)
