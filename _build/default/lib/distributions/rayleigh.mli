(** Rayleigh distribution [Rayleigh(sigma)] on [[0, inf)] — the
    [Weibull(sigma sqrt 2, 2)] special case, provided under its usual
    name and parameterisation. *)

val make : sigma:float -> Dist.t
(** [make ~sigma] has mode [sigma] and mean [sigma sqrt(pi/2)].
    @raise Invalid_argument if [sigma <= 0.]. *)

val default : Dist.t
(** [Rayleigh(2.0)]. *)
