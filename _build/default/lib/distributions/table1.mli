(** The nine evaluation distributions of the paper's Table 1, with the
    exact parameter instantiations used throughout Sect. 5. *)

val infinite_support : (string * Dist.t) list
(** Exponential(1), Weibull(1, 0.5), Gamma(2, 2), LogNormal(3, 0.5),
    TruncatedNormal(8, 2, 0), Pareto(1.5, 3) — in the paper's order. *)

val finite_support : (string * Dist.t) list
(** Uniform(10, 20), Beta(2, 2), BoundedPareto(1, 20, 2.1). *)

val all : (string * Dist.t) list
(** All nine, infinite-support family first (Table 1 / Table 2 row
    order). *)

val find : string -> Dist.t option
(** [find name] looks a distribution up by its Table 1 row name
    (case-insensitive), e.g. ["lognormal"]. *)
