type lognormal_fit = {
  mu : float;
  sigma : float;
  sample_mean : float;
  sample_std : float;
  ks : float;
  n : int;
}

let lognormal_mle xs =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Fitting.lognormal_mle: need at least 2 samples";
  Array.iter
    (fun x ->
      if x <= 0.0 then
        invalid_arg "Fitting.lognormal_mle: samples must be positive")
    xs;
  let logs = Array.map log xs in
  let mu = Numerics.Stats.mean logs in
  let sigma = Numerics.Stats.std logs in
  if sigma <= 0.0 then
    invalid_arg "Fitting.lognormal_mle: degenerate sample (zero variance)";
  let d = Lognormal.make ~mu ~sigma in
  {
    mu;
    sigma;
    sample_mean = Numerics.Stats.mean xs;
    sample_std = Numerics.Stats.std xs;
    ks = Empirical.ks_statistic d xs;
    n;
  }

let lognormal_of_moments ~mean ~std =
  if mean <= 0.0 || std <= 0.0 then
    invalid_arg "Fitting.lognormal_of_moments: mean and std must be positive";
  let ratio = std /. mean in
  let sigma2 = log (1.0 +. (ratio *. ratio)) in
  (log mean -. (sigma2 /. 2.0), sqrt sigma2)

let to_dist fit = Lognormal.make ~mu:fit.mu ~sigma:fit.sigma
