let make ~a ~b =
  if a < 0.0 || a >= b then
    invalid_arg "Uniform_dist.make: need 0 <= a < b";
  let width = b -. a in
  let pdf t = if t < a || t > b then 0.0 else 1.0 /. width in
  let cdf t =
    if t <= a then 0.0 else if t >= b then 1.0 else (t -. a) /. width
  in
  let quantile x =
    if x < 0.0 || x > 1.0 then
      invalid_arg "Uniform_dist.quantile: x must be in [0, 1]";
    ((1.0 -. x) *. a) +. (x *. b)
  in
  let conditional_mean tau =
    let tau = Float.max tau a in
    if tau >= b then b else 0.5 *. (b +. tau)
  in
  {
    Dist.name = Printf.sprintf "Uniform(%g, %g)" a b;
    support = Dist.Bounded (a, b);
    pdf;
    cdf;
    quantile;
    mean = 0.5 *. (a +. b);
    variance = width *. width /. 12.0;
    sample = (fun rng -> Randomness.Rng.uniform rng a b);
    conditional_mean;
  }

let default = make ~a:10.0 ~b:20.0
