let extras =
  [
    ("LogLogistic", Log_logistic.default);
    ("Frechet", Frechet.default);
    ("Triangular", Triangular.default);
    ("ShiftedExp", Shifted_exponential.default);
    ("Rayleigh", Rayleigh.default);
    ("BimodalLogNormal", Mixture.default);
  ]

let all = Table1.all @ extras

let find name =
  let target = String.lowercase_ascii name in
  List.find_opt (fun (n, _) -> String.lowercase_ascii n = target) all
  |> Option.map snd

let names () = List.map fst all
