type support = Bounded of float * float | Unbounded of float

type t = {
  name : string;
  support : support;
  pdf : float -> float;
  cdf : float -> float;
  quantile : float -> float;
  mean : float;
  variance : float;
  sample : Randomness.Rng.t -> float;
  conditional_mean : float -> float;
}

let lower d = match d.support with Bounded (a, _) -> a | Unbounded a -> a
let upper d = match d.support with Bounded (_, b) -> b | Unbounded _ -> infinity
let is_bounded d = match d.support with Bounded _ -> true | Unbounded _ -> false

let sf d t =
  let s = 1.0 -. d.cdf t in
  if s < 0.0 then 0.0 else if s > 1.0 then 1.0 else s

let std d = sqrt d.variance
let median d = d.quantile 0.5
let samples d rng n = Array.init n (fun _ -> d.sample rng)

let in_support d t =
  match d.support with
  | Bounded (a, b) -> t >= a && t <= b
  | Unbounded a -> t >= a

let scale c d =
  if (not (Float.is_finite c)) || c <= 0.0 then
    invalid_arg "Dist.scale: factor must be positive and finite";
  let support =
    match d.support with
    | Bounded (a, b) -> Bounded (c *. a, c *. b)
    | Unbounded a -> Unbounded (c *. a)
  in
  {
    name = Printf.sprintf "%g*%s" c d.name;
    support;
    pdf = (fun t -> d.pdf (t /. c) /. c);
    cdf = (fun t -> d.cdf (t /. c));
    quantile = (fun p -> c *. d.quantile p);
    mean = c *. d.mean;
    variance = c *. c *. d.variance;
    sample = (fun rng -> c *. d.sample rng);
    conditional_mean = (fun tau -> c *. d.conditional_mean (tau /. c));
  }

let numeric_conditional_mean d tau =
  let a = lower d in
  let tau = Float.max tau a in
  let tail = sf d tau in
  if tail <= 0.0 then tau
  else begin
    let integrand t = t *. d.pdf t in
    let num =
      match d.support with
      | Bounded (_, b) ->
          if tau >= b then b
          else Numerics.Integrate.gauss_kronrod integrand tau b
      | Unbounded _ -> Numerics.Integrate.to_infinity integrand tau
    in
    num /. tail
  end

let numeric_mean d =
  let integrand t = t *. d.pdf t in
  match d.support with
  | Bounded (a, b) -> Numerics.Integrate.gauss_kronrod integrand a b
  | Unbounded a -> Numerics.Integrate.to_infinity integrand a

let check d =
  let fail msg = invalid_arg (Printf.sprintf "Dist.check(%s): %s" d.name msg) in
  let a = lower d and b = upper d in
  if a < 0.0 then fail "support must be nonnegative";
  if not (b > a) then fail "support upper bound must exceed lower bound";
  if Float.abs (d.cdf a) > 1e-6 then fail "F(lower) should be ~ 0";
  (match d.support with
  | Bounded (_, b) ->
      if Float.abs (d.cdf b -. 1.0) > 1e-6 then fail "F(upper) should be ~ 1"
  | Unbounded _ -> ());
  (* Monotonicity of F on a coarse probe grid. *)
  let probe_hi = if is_bounded d then b else d.quantile 0.999 in
  let prev = ref (d.cdf a) in
  for i = 1 to 32 do
    let t = a +. (float_of_int i /. 32.0 *. (probe_hi -. a)) in
    let ft = d.cdf t in
    if ft < !prev -. 1e-9 then fail "F must be nondecreasing";
    prev := ft
  done;
  if Float.is_nan d.mean || d.mean < a then fail "mean must lie in the support";
  if d.variance < 0.0 then fail "variance must be nonnegative"

let pp fmt d =
  let support_str =
    match d.support with
    | Bounded (a, b) -> Printf.sprintf "[%g, %g]" a b
    | Unbounded a -> Printf.sprintf "[%g, inf)" a
  in
  Format.fprintf fmt "%s on %s (mean=%g, std=%g)" d.name support_str d.mean
    (std d)
