(** Finite discrete distributions [(v_i, f_i), i = 1..n].

    The output of the truncation/discretization schemes of Sect. 4.2.1
    and the input of the dynamic program of Theorem 5. Values are kept
    sorted strictly increasing; probabilities are positive but are
    {e not} required to sum to 1 — after truncating an unbounded
    distribution at quantile [1 - eps], the total mass is [1 - eps]
    (the paper makes the same observation). The DP renormalises
    internally. *)

type t = private {
  values : float array;  (** Strictly increasing support points. *)
  probs : float array;  (** Matching positive probabilities. *)
}

val make : (float * float) array -> t
(** [make pairs] builds a discrete distribution from (value,
    probability) pairs: sorts by value, merges duplicate values by
    adding their probabilities, and drops pairs with zero probability.
    @raise Invalid_argument if no pair remains, if any probability is
    negative, or if the total mass exceeds [1 + 1e-9]. *)

val size : t -> int
(** [size d] is the number of support points. *)

val total_mass : t -> float
(** [total_mass d] is [sum f_i] (at most 1). *)

val normalize : t -> t
(** [normalize d] rescales the probabilities to sum to exactly 1. *)

val mean : t -> float
(** [mean d] is [sum v_i f_i / total_mass]. *)

val variance : t -> float
(** [variance d] is the variance under the normalized law. *)

val cdf : t -> float -> float
(** [cdf d t] is [P(X <= t)] under the normalized law. *)

val quantile : t -> float -> float
(** [quantile d x] is the smallest [v_i] with [cdf d v_i >= x].
    @raise Invalid_argument if [x] outside [[0, 1]]. *)

val sample : t -> Randomness.Rng.t -> float
(** [sample d rng] draws from the normalized law by inversion. *)

val of_samples : float array -> t
(** [of_samples xs] is the empirical frequency distribution of [xs]
    (each distinct value weighted by its frequency). *)

val to_dist : t -> Dist.t
(** [to_dist d] wraps the (normalized) discrete law in the {!Dist.t}
    interface; the pdf field returns probability mass at exact support
    points and [0.] elsewhere, so it is only meaningful for plotting
    and Monte-Carlo — not for the continuous recurrence. *)
