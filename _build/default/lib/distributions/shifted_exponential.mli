(** Shifted exponential distribution on [[location, inf)]:
    [X = location + Exp(rate)].

    Models jobs with an incompressible minimum running time plus a
    memoryless random tail — the simplest nonzero-lower-bound law with
    every quantity in closed form, useful both as an execution-time
    model and as a test fixture for the [a > 0] code paths. *)

val make : location:float -> rate:float -> Dist.t
(** [make ~location ~rate] requires [location >= 0] and [rate > 0].
    @raise Invalid_argument otherwise. *)

val default : Dist.t
(** [ShiftedExp(2.0, 1.0)]. *)
