(** Pareto distribution [Pareto(nu, alpha)] on [[nu, inf)].

    Density [f(t) = alpha nu^alpha / t^(alpha+1)]. A canonical
    heavy-tail execution-time model. The conditional expectation is
    Appendix B.5's strikingly simple [E(X | X > tau) = alpha tau /
    (alpha - 1)] (for [alpha > 1]). *)

val make : nu:float -> alpha:float -> Dist.t
(** [make ~nu ~alpha] is Pareto with scale [nu] and shape [alpha].
    The mean requires [alpha > 1] and the variance [alpha > 2]; outside
    those ranges the respective field is [infinity].
    @raise Invalid_argument if [nu <= 0.] or [alpha <= 0.]. *)

val default : Dist.t
(** Table 1 instantiation: [Pareto(1.5, 3.0)]. *)
