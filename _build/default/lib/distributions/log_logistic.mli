(** Log-Logistic distribution [LogLogistic(scale, shape)] on
    [[0, inf)].

    CDF [F(t) = 1 / (1 + (t/scale)^-shape)] — a heavy-tailed law with
    closed-form quantiles, widely used for service and repair times;
    a natural execution-time model beyond the paper's Table 1. The
    conditional expectation has a closed form through the incomplete
    beta function:
    [E(X | X > tau) = scale (B(a, b) - B(F tau; a, b)) / (1 - F tau)]
    with [a = 1 + 1/shape], [b = 1 - 1/shape]. *)

val make : scale:float -> shape:float -> Dist.t
(** [make ~scale ~shape] requires [shape > 2] so that both the mean
    and the variance are finite (as the solvers assume).
    @raise Invalid_argument otherwise. *)

val default : Dist.t
(** [LogLogistic(2.0, 3.0)] — comparable scale to Table 1's heavy
    tails. *)
