(** Triangular distribution [Triangular(a, c, b)] on [[a, b]] with
    mode [c].

    The classic "three-point estimate" execution-time model (minimum /
    most-likely / maximum), fully closed-form — a useful bounded
    companion to Uniform and Beta for the bounded-support solvers. *)

val make : a:float -> c:float -> b:float -> Dist.t
(** [make ~a ~c ~b] requires [0 <= a <= c <= b] with [a < b].
    @raise Invalid_argument otherwise. *)

val default : Dist.t
(** [Triangular(5.0, 8.0, 20.0)] — a right-skewed bounded law of
    Table 1-like scale. *)
