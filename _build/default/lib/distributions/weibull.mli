(** Weibull distribution [Weibull(lambda, kappa)] on [[0, inf)].

    Density [f(t) = (kappa/lambda) (t/lambda)^(kappa-1)
    exp (-(t/lambda)^kappa)]. The MEAN-BY-MEAN conditional expectation
    follows Appendix B.1:
    [E(X | X > tau) = lambda e^z Gamma(1 + 1/kappa, z)] with
    [z = (tau/lambda)^kappa], evaluated in log space with an asymptotic
    fallback deep in the tail. *)

val make : lambda:float -> kappa:float -> Dist.t
(** [make ~lambda ~kappa] is Weibull with scale [lambda] and shape
    [kappa].
    @raise Invalid_argument if [lambda <= 0.] or [kappa <= 0.]. *)

val default : Dist.t
(** Table 1 instantiation: [Weibull(1.0, 0.5)]. *)
