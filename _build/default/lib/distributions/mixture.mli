(** Finite mixtures of execution-time distributions.

    Real application traces are often multi-modal — a fast path and a
    slow path, short inputs and long inputs (the follow-up literature
    on this paper fits neuroscience applications with mixture laws).
    A mixture [sum_i w_i D_i] composes any distributions from this
    library: density, CDF, moments and the conditional expectation all
    reduce to weighted combinations of the components' closed forms
    (the conditional mean uses the components' partial expectations
    [cm_i(tau) * sf_i(tau)]), and the quantile function is obtained by
    bracketed root finding on the mixture CDF. *)

val make : (float * Dist.t) list -> Dist.t
(** [make components] builds the mixture of [(weight, distribution)]
    pairs. Weights must be positive; they are normalised to sum to 1.
    @raise Invalid_argument if the list is empty or any weight is not
    positive and finite. *)

val bimodal_lognormal :
  w1:float -> mu1:float -> sigma1:float -> mu2:float -> sigma2:float -> Dist.t
(** [bimodal_lognormal ~w1 ~mu1 ~sigma1 ~mu2 ~sigma2] is the two-mode
    LogNormal mixture [w1 LN(mu1, sigma1) + (1-w1) LN(mu2, sigma2)] —
    the shape observed in bimodal application traces.
    @raise Invalid_argument unless [0 < w1 < 1]. *)

val default : Dist.t
(** A bimodal LogNormal with a fast mode around 10 and a slow mode
    around 60 (weights 0.7 / 0.3). *)
