(** LogNormal distribution [LogNormal(mu, sigma^2)] on [(0, inf)].

    Density [f(t) = 1/(t sigma sqrt(2 pi)) exp (-(ln t - mu)^2 /
    (2 sigma^2))]. This is the paper's headline distribution: both
    neuroscience applications of Fig. 1 are fitted to LogNormal laws,
    and the NEUROHPC scenario of Sect. 5.3 uses
    [LogNormal(7.1128, 0.2039^2)] seconds. The conditional expectation
    follows Appendix B.3, rewritten in terms of [erfc] so that it stays
    finite deep in the tail. *)

val make : mu:float -> sigma:float -> Dist.t
(** [make ~mu ~sigma] is LogNormal with log-mean [mu] and log-std
    [sigma].
    @raise Invalid_argument if [sigma <= 0.]. *)

val of_moments : mean:float -> std:float -> Dist.t
(** [of_moments ~mean ~std] instantiates the LogNormal whose (linear)
    mean and standard deviation are the given values — the inversion of
    footnote 4 used by the Fig. 4 robustness sweep:
    [sigma^2 = ln (1 + (std/mean)^2)], [mu = ln mean - sigma^2 / 2].
    @raise Invalid_argument if [mean <= 0.] or [std <= 0.]. *)

val default : Dist.t
(** Table 1 instantiation: [LogNormal(3.0, 0.5)]. *)

val neuro : Dist.t
(** Sect. 5.3 instantiation fitted on the VBMQA traces:
    [LogNormal(7.1128, 0.2039)] (seconds). *)
