(** Empirical distributions interpolated from trace data.

    The NEUROHPC scenario of the paper is "based on interpolating
    traces from a real neuroscience application executed on an HPC
    platform". This module turns a raw array of observed execution
    times into a continuous {!Dist.t}: the quantile function is the
    linear interpolation of the order statistics (Hyndman–Fan type 7),
    the CDF is its piecewise-linear inverse, and the density is the
    resulting piecewise-constant derivative. Conditional expectations
    are computed exactly over the piecewise-linear CDF, so all
    heuristics — including the recurrence-based BRUTE-FORCE — run
    unchanged on trace data. *)

val make : ?name:string -> float array -> Dist.t
(** [make samples] builds the interpolated empirical distribution of
    the (not necessarily sorted) nonnegative [samples].
    @raise Invalid_argument if fewer than 2 distinct values, or any
    value is negative or not finite. *)

val ecdf : float array -> float -> float
(** [ecdf samples t] is the classical step empirical CDF
    [#(x_i <= t) / n] (exposed for goodness-of-fit tests).
    @raise Invalid_argument on an empty array. *)

val ks_statistic : Dist.t -> float array -> float
(** [ks_statistic d samples] is the Kolmogorov–Smirnov statistic
    [sup_t |F_n(t) - F(t)|] between the sample and the model [d] —
    used to validate fitted distributions against traces (Fig. 1). *)
