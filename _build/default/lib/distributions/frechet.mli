(** Frechet (inverse Weibull) distribution [Frechet(shape, scale)] on
    [(0, inf)].

    CDF [F(t) = exp (-(t/scale)^-shape)] — the max-stable heavy-tail
    law; models worst-case-dominated execution times. Conditional
    expectation via the lower incomplete gamma function:
    [E(X | X > tau) = scale * gamma_lower(1 - 1/shape, u) /
    (1 - exp (-u))] with [u = (tau/scale)^-shape]. *)

val make : shape:float -> scale:float -> Dist.t
(** [make ~shape ~scale] requires [shape > 2] so mean and variance are
    finite.
    @raise Invalid_argument otherwise. *)

val default : Dist.t
(** [Frechet(3.0, 1.5)]. *)
