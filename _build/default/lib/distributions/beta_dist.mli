(** Beta distribution [Beta(alpha, beta)] on [[0, 1]].

    Density [f(t) = t^(alpha-1) (1-t)^(beta-1) / B(alpha, beta)]. A
    bounded-support law modelling normalized execution times. The
    conditional expectation follows Appendix B.7:
    [E(X | X > tau) = (B(alpha+1, beta) - B(tau; alpha+1, beta)) /
    (B(alpha, beta) - B(tau; alpha, beta))]. *)

val make : alpha:float -> beta:float -> Dist.t
(** [make ~alpha ~beta] is Beta(alpha, beta).
    @raise Invalid_argument if [alpha <= 0.] or [beta <= 0.]. *)

val default : Dist.t
(** Table 1 instantiation: [Beta(2.0, 2.0)]. *)
