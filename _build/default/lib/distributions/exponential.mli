(** Exponential distribution [Exp(lambda)] on [[0, inf)].

    Density [f(t) = lambda * exp (-lambda * t)]. The paper's running
    example: memorylessness makes every formula closed-form, and
    Proposition 2 shows the optimal RESERVATIONONLY sequence for
    [Exp(lambda)] is the [Exp(1)] sequence scaled by [1/lambda]. *)

val make : rate:float -> Dist.t
(** [make ~rate] is [Exp(rate)].
    @raise Invalid_argument if [rate <= 0.]. *)

val default : Dist.t
(** Table 1 instantiation: [Exp(1.0)]. *)
