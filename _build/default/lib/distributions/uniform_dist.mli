(** Uniform distribution [Uniform(a, b)] on [[a, b]], [0 < a < b].

    The paper's fully solved case: Theorem 4 proves the optimal
    STOCHASTIC sequence is the single reservation [(b)] for every
    [(alpha, beta, gamma)], which the test suite checks against all
    heuristics. Conditional expectation (Appendix B.6):
    [E(X | X > tau) = (b + tau) / 2]. *)

val make : a:float -> b:float -> Dist.t
(** [make ~a ~b] is Uniform on [[a, b]].
    @raise Invalid_argument unless [0 <= a < b]. *)

val default : Dist.t
(** Table 1 instantiation: [Uniform(10.0, 20.0)]. *)
