let make ~sigma =
  if sigma <= 0.0 then invalid_arg "Rayleigh.make: sigma must be positive";
  let d = Weibull.make ~lambda:(sigma *. sqrt 2.0) ~kappa:2.0 in
  { d with Dist.name = Printf.sprintf "Rayleigh(%g)" sigma }

let default = make ~sigma:2.0
