lib/distributions/log_logistic.mli: Dist
