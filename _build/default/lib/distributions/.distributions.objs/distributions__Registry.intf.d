lib/distributions/registry.mli: Dist
