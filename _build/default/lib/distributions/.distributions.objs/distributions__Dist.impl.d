lib/distributions/dist.ml: Array Float Format Numerics Printf Randomness
