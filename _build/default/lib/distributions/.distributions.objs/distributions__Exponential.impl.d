lib/distributions/exponential.ml: Dist Float Printf Randomness
