lib/distributions/mixture.mli: Dist
