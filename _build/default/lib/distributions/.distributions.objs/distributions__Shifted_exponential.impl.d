lib/distributions/shifted_exponential.ml: Dist Float Printf Randomness
