lib/distributions/fitting.ml: Array Empirical Lognormal Numerics
