lib/distributions/fitting.mli: Dist
