lib/distributions/discrete.mli: Dist Randomness
