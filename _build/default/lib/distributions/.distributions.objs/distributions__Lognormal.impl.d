lib/distributions/lognormal.ml: Dist Numerics Printf Randomness
