lib/distributions/truncated_normal.mli: Dist
