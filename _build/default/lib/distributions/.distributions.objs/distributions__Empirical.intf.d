lib/distributions/empirical.mli: Dist
