lib/distributions/log_logistic.ml: Dist Numerics Printf Randomness
