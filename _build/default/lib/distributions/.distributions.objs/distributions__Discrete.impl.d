lib/distributions/discrete.ml: Array Dist Hashtbl List Numerics Printf Randomness
