lib/distributions/frechet.ml: Dist Float Numerics Printf Randomness
