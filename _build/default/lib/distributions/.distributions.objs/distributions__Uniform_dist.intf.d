lib/distributions/uniform_dist.mli: Dist
