lib/distributions/rayleigh.mli: Dist
