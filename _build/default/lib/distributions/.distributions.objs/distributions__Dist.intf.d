lib/distributions/dist.mli: Format Randomness
