lib/distributions/beta_dist.ml: Dist Numerics Printf Randomness
