lib/distributions/exponential.mli: Dist
