lib/distributions/uniform_dist.ml: Dist Float Printf Randomness
