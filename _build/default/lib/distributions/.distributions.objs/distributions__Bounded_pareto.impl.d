lib/distributions/bounded_pareto.ml: Dist Float Printf Randomness
