lib/distributions/pareto.ml: Dist Float Printf Randomness
