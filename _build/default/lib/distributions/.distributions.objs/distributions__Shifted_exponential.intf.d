lib/distributions/shifted_exponential.mli: Dist
