lib/distributions/beta_dist.mli: Dist
