lib/distributions/table1.mli: Dist
