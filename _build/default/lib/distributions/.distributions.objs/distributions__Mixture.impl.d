lib/distributions/mixture.ml: Dist Float List Lognormal Numerics Printf Randomness String
