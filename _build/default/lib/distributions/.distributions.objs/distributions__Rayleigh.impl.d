lib/distributions/rayleigh.ml: Dist Printf Weibull
