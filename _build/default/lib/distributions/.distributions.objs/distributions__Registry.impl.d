lib/distributions/registry.ml: Frechet List Log_logistic Mixture Option Rayleigh Shifted_exponential String Table1 Triangular
