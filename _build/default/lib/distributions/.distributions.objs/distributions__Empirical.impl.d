lib/distributions/empirical.ml: Array Dist Float Numerics Printf Randomness
