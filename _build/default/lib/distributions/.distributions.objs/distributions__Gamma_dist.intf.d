lib/distributions/gamma_dist.mli: Dist
