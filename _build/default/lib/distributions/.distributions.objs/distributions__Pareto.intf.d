lib/distributions/pareto.mli: Dist
