lib/distributions/frechet.mli: Dist
