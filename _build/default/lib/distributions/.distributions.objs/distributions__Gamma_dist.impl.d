lib/distributions/gamma_dist.ml: Dist Numerics Printf Randomness
