lib/distributions/bounded_pareto.mli: Dist
