lib/distributions/truncated_normal.ml: Dist Float Numerics Printf Randomness
