lib/distributions/weibull.mli: Dist
