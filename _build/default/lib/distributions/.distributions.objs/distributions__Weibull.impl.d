lib/distributions/weibull.ml: Dist Numerics Printf Randomness
