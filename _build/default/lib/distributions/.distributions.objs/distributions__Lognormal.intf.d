lib/distributions/lognormal.mli: Dist
