lib/distributions/triangular.ml: Dist Float Printf Randomness
