lib/distributions/table1.ml: Beta_dist Bounded_pareto Exponential Gamma_dist List Lognormal Option Pareto String Truncated_normal Uniform_dist Weibull
