lib/distributions/triangular.mli: Dist
