let infinite_support =
  [
    ("Exponential", Exponential.default);
    ("Weibull", Weibull.default);
    ("Gamma", Gamma_dist.default);
    ("Lognormal", Lognormal.default);
    ("TruncatedNormal", Truncated_normal.default);
    ("Pareto", Pareto.default);
  ]

let finite_support =
  [
    ("Uniform", Uniform_dist.default);
    ("Beta", Beta_dist.default);
    ("BoundedPareto", Bounded_pareto.default);
  ]

let all = infinite_support @ finite_support

let find name =
  let target = String.lowercase_ascii name in
  List.find_opt (fun (n, _) -> String.lowercase_ascii n = target) all
  |> Option.map snd
