let make ~a ~c ~b =
  if not (0.0 <= a && a <= c && c <= b && a < b) then
    invalid_arg "Triangular.make: need 0 <= a <= c <= b with a < b";
  let width = b -. a in
  let up = c -. a and down = b -. c in
  let pdf t =
    if t < a || t > b then 0.0
    else if t < c then 2.0 *. (t -. a) /. (width *. up)
    else if t > c then 2.0 *. (b -. t) /. (width *. down)
    else 2.0 /. width
  in
  let cdf t =
    if t <= a then 0.0
    else if t >= b then 1.0
    else if t <= c then (t -. a) ** 2.0 /. (width *. up)
    else 1.0 -. ((b -. t) ** 2.0 /. (width *. down))
  in
  let fc = if up > 0.0 then up /. width else 0.0 in
  let quantile p =
    if p < 0.0 || p > 1.0 then
      invalid_arg "Triangular.quantile: p must be in [0, 1]";
    if p <= fc then a +. sqrt (p *. width *. up)
    else b -. sqrt ((1.0 -. p) *. width *. down)
  in
  let mean = (a +. b +. c) /. 3.0 in
  let variance =
    ((a *. a) +. (b *. b) +. (c *. c) -. (a *. b) -. (a *. c) -. (b *. c))
    /. 18.0
  in
  (* Partial expectation of the piecewise-linear density in closed
     form: on the rising branch int t pdf = 2/(w u) int t (t - a) dt,
     on the falling branch 2/(w d) int t (b - t) dt. *)
  let partial_up lo hi =
    (* int_lo^hi t * 2 (t - a) / (w u) dt *)
    let prim t = ((t ** 3.0) /. 3.0) -. (a *. t *. t /. 2.0) in
    2.0 /. (width *. up) *. (prim hi -. prim lo)
  in
  let partial_down lo hi =
    let prim t = (b *. t *. t /. 2.0) -. ((t ** 3.0) /. 3.0) in
    2.0 /. (width *. down) *. (prim hi -. prim lo)
  in
  let conditional_mean tau =
    let tau = Float.max tau a in
    if tau >= b then b
    else begin
      let sf = 1.0 -. cdf tau in
      if sf <= 0.0 then b
      else begin
        let num =
          if tau < c then
            (if up > 0.0 then partial_up tau c else 0.0)
            +. (if down > 0.0 then partial_down c b else 0.0)
          else if down > 0.0 then partial_down tau b
          else 0.0
        in
        num /. sf
      end
    end
  in
  let sample rng = quantile (Randomness.Rng.float rng) in
  {
    Dist.name = Printf.sprintf "Triangular(%g, %g, %g)" a c b;
    support = Dist.Bounded (a, b);
    pdf;
    cdf;
    quantile;
    mean;
    variance;
    sample;
    conditional_mean;
  }

let default = make ~a:5.0 ~c:8.0 ~b:20.0
