(** Common interface for execution-time distributions.

    The paper models a stochastic job as a nonnegative random variable
    [X ~ D] with density [f], CDF [F] and quantile function [Q], whose
    support is either a finite interval [[a, b]] or a half line
    [[a, inf)]. Every concrete distribution module in this library
    ([Exponential], [Weibull], ..., [Empirical]) produces a value of
    {!type:t}; all scheduling code is written against this interface
    only, so new distributions can be added without touching the
    solvers. *)

type support =
  | Bounded of float * float  (** Finite support [[a, b]], [0 <= a < b]. *)
  | Unbounded of float  (** Half-line support [[a, inf)], [0 <= a]. *)

type t = {
  name : string;  (** Human-readable name, e.g. ["LogNormal(3, 0.5)"]. *)
  support : support;
  pdf : float -> float;  (** Density [f(t)]; [0.] outside the support. *)
  cdf : float -> float;  (** CDF [F(t) = P(X <= t)]. *)
  quantile : float -> float;
      (** Quantile [Q(x) = inf (t | F t >= x)] for [x] in [[0, 1]]. *)
  mean : float;  (** [E(X)]. *)
  variance : float;  (** [Var(X)]. *)
  sample : Randomness.Rng.t -> float;  (** Draw one variate. *)
  conditional_mean : float -> float;
      (** [conditional_mean tau = E(X | X > tau)] — the Appendix B
          closed forms, used by the MEAN-BY-MEAN heuristic. For
          [tau <= lower t] this equals [mean]. *)
}

val lower : t -> float
(** [lower d] is the infimum of the support. *)

val upper : t -> float
(** [upper d] is the supremum of the support ([infinity] when
    unbounded). *)

val is_bounded : t -> bool
(** [is_bounded d] is [true] iff the support is a finite interval. *)

val sf : t -> float -> float
(** [sf d t] is the survival function [P(X >= t) = 1 - F(t)] (the two
    coincide for the continuous distributions used here). Clamped to
    [[0, 1]]. *)

val std : t -> float
(** [std d] is [sqrt (variance d)]. *)

val median : t -> float
(** [median d] is [quantile d 0.5]. *)

val samples : t -> Randomness.Rng.t -> int -> float array
(** [samples d rng n] draws [n] independent variates. *)

val in_support : t -> float -> bool
(** [in_support d t] tests membership of [t] in the support interval. *)

val scale : float -> t -> t
(** [scale c d] is the distribution of [c * X] for [c > 0] — all
    fields transform in closed form ([pdf t = f(t/c)/c],
    [quantile p = c Q(p)], ...). Used for unit conversions and for
    runtime laws of moldable jobs ([work / speedup]).
    @raise Invalid_argument if [c <= 0.] or not finite. *)

val numeric_conditional_mean : t -> float -> float
(** [numeric_conditional_mean d tau] evaluates [E(X | X > tau)] by
    quadrature over the density — a slow reference implementation used
    to validate each distribution's closed form and as the default for
    distributions with no closed form. *)

val numeric_mean : t -> float
(** [numeric_mean d] integrates [t * f(t)] over the support; reference
    implementation for tests. *)

val check : t -> unit
(** [check d] validates basic invariants cheaply (support ordering,
    [F(lower) ~ 0], [F] nondecreasing on a coarse grid, mean within
    support bounds) and raises [Invalid_argument] on violation. Called
    by constructors in debug paths and by tests. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt d] prints a one-line summary (name, support, mean, std). *)
