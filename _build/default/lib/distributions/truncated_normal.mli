(** Truncated Normal distribution [TruncatedNormal(mu, sigma^2, a)] —
    a Normal law conditioned on [X >= a] (one-sided lower truncation,
    support [[a, inf)]).

    The paper uses this (Table 1: [mu = 8, sigma^2 = 2, a = 0]) as a
    representative "bell-shaped but nonnegative" execution-time law,
    since a plain Normal would assign mass to negative times. The
    conditional expectation is the standard hazard-rate formula of
    Appendix B.4: [E(X | X > tau) = mu + sigma * lambda((tau - mu) /
    sigma)] with [lambda(z) = phi(z) / (1 - Phi(z))] the inverse Mills
    ratio (asymptotically [z + 1/z] deep in the tail). *)

val make : mu:float -> sigma:float -> lower:float -> Dist.t
(** [make ~mu ~sigma ~lower] is the Normal(mu, sigma^2) law conditioned
    on [X >= lower].
    @raise Invalid_argument if [sigma <= 0.] or [lower < 0.]. *)

val default : Dist.t
(** Table 1 instantiation: [TruncatedNormal(8.0, 2.0, 0.0)]
    (note [sigma^2 = 2]). *)

val inverse_mills : float -> float
(** [inverse_mills z] is [phi(z) / (1 - Phi(z))], exposed for tests;
    switches to the asymptotic expansion for [z > 25]. *)
