lib/randomness/sampler.ml: Rng
