lib/randomness/rng.ml: Array Int64
