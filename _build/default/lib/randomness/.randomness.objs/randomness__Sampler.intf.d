lib/randomness/sampler.mli: Rng
