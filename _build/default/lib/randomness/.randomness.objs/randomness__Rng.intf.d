lib/randomness/rng.mli:
