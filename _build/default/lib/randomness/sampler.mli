(** Random variate generation for the standard distributions.

    Exact (rejection-free or standard-rejection) samplers layered over
    {!Rng}. The distribution modules in [lib/distributions] call these
    rather than inverting their CDFs where a direct method is faster or
    more accurate. *)

val standard_normal : Rng.t -> float
(** [standard_normal rng] draws N(0, 1) by the Marsaglia polar method. *)

val normal : Rng.t -> mu:float -> sigma:float -> float
(** [normal rng ~mu ~sigma] draws N(mu, sigma^2).
    @raise Invalid_argument if [sigma <= 0.]. *)

val exponential : Rng.t -> rate:float -> float
(** [exponential rng ~rate] draws Exp(rate) by inversion.
    @raise Invalid_argument if [rate <= 0.]. *)

val gamma : Rng.t -> shape:float -> scale:float -> float
(** [gamma rng ~shape ~scale] draws Gamma(shape, scale) — scale, not
    rate — with the Marsaglia–Tsang squeeze method, boosted to
    [shape < 1] via the power transformation.
    @raise Invalid_argument if [shape <= 0.] or [scale <= 0.]. *)

val beta : Rng.t -> a:float -> b:float -> float
(** [beta rng ~a ~b] draws Beta(a, b) as [X/(X+Y)] with independent
    gammas.
    @raise Invalid_argument if [a <= 0.] or [b <= 0.]. *)

val lognormal : Rng.t -> mu:float -> sigma:float -> float
(** [lognormal rng ~mu ~sigma] draws LogNormal(mu, sigma^2) as
    [exp (normal)].
    @raise Invalid_argument if [sigma <= 0.]. *)

val weibull : Rng.t -> lambda:float -> k:float -> float
(** [weibull rng ~lambda ~k] draws Weibull(scale lambda, shape k) by
    inversion.
    @raise Invalid_argument if [lambda <= 0.] or [k <= 0.]. *)

val pareto : Rng.t -> nu:float -> alpha:float -> float
(** [pareto rng ~nu ~alpha] draws Pareto(scale nu, shape alpha) by
    inversion.
    @raise Invalid_argument if [nu <= 0.] or [alpha <= 0.]. *)

val truncated_normal : Rng.t -> mu:float -> sigma:float -> lower:float -> float
(** [truncated_normal rng ~mu ~sigma ~lower] draws N(mu, sigma^2)
    conditioned on being at least [lower], by rejection from the parent
    normal (efficient whenever the truncation point is not deep in the
    upper tail, which holds for the paper's instantiation) with an
    exponential-tilting fallback for deep tails.
    @raise Invalid_argument if [sigma <= 0.]. *)
