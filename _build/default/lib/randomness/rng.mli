(** Deterministic pseudo-random number generation.

    A self-contained xoshiro256++ generator seeded through splitmix64,
    so that every experiment in this repository is exactly reproducible
    from a single integer seed and independent streams can be split off
    for parallel or per-experiment use. The OCaml [Random] module is
    deliberately not used: its algorithm changed between compiler
    releases, which would silently change published numbers. *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ?seed ()] builds a generator. The default seed is a fixed
    constant so that all tools are reproducible out of the box. *)

val copy : t -> t
(** [copy t] is an independent generator with identical current state:
    both will produce the same future stream. Used for common-random-
    number variance reduction when comparing strategies. *)

val split : t -> t
(** [split t] derives a new generator from [t] whose stream is
    (statistically) independent of the remainder of [t]'s stream; [t]
    advances. Used to give each sub-experiment its own stream. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform on [[0, 1)), with 53 random mantissa bits. *)

val float_open : t -> float
(** [float_open t] is uniform on the open interval [(0, 1)); never
    returns [0.], making it safe for [log] and quantile transforms. *)

val uniform : t -> float -> float -> float
(** [uniform t a b] is uniform on [[a, b)).
    @raise Invalid_argument if [a > b]. *)

val int : t -> int -> int
(** [int t n] is uniform on [[0, n-1]] (unbiased, via rejection).
    @raise Invalid_argument if [n <= 0]. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)
