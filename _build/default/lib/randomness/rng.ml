type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let default_seed = 0x5DEECE66D

(* splitmix64: turns an arbitrary integer seed into well-mixed state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ?(seed = default_seed) () =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tshift = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tshift;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* Reseed a fresh generator from the parent's stream via splitmix64,
     mirroring how xoshiro generators are forked in practice. *)
  let state = ref (bits64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let float t =
  (* Take the top 53 bits for a uniform double in [0, 1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float_open t =
  let x = float t in
  if x > 0.0 then x else 0x1.0p-53

let uniform t a b =
  if a > b then invalid_arg "Rng.uniform: a > b";
  a +. ((b -. a) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: n must be positive";
  (* Rejection sampling over the smallest power-of-two envelope keeps
     the draw exactly uniform. *)
  let nl = Int64.of_int n in
  let mask =
    let rec go m = if Int64.unsigned_compare m nl >= 0 then m else go (Int64.add (Int64.mul m 2L) 1L) in
    go 1L
  in
  let rec draw () =
    let v = Int64.logand (bits64 t) mask in
    if Int64.unsigned_compare v nl < 0 then Int64.to_int v else draw ()
  in
  draw ()

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
