(** Synthetic neuroscience application traces (Fig. 1 substitution).

    The paper extracts execution-time distributions from over 5000
    runs of two neuroscience applications (fMRIQA and VBMQA) stored in
    Vanderbilt's medical-imaging database, then fits LogNormal laws to
    them. That database is not public, so this module generates
    synthetic traces from the published fits — the downstream pipeline
    (trace file -> empirical distribution -> LogNormal fit -> strategy
    computation) is exactly the one the paper runs, only the raw bytes
    differ. CSV round-tripping is provided so the pipeline can also
    ingest real traces when available. *)

type application = {
  app_name : string;  (** e.g. ["VBMQA"]. *)
  mu : float;  (** Published LogNormal log-mean (seconds). *)
  sigma : float;  (** Published LogNormal log-std. *)
}

val vbmqa : application
(** Voxel-based morphometry QA [16]: LogNormal(7.1128, 0.2039) — the
    NEUROHPC distribution (mean ~ 1253 s). *)

val fmriqa : application
(** Functional MRI QA [10]: Fig. 1(a)'s application. The paper prints
    the fitted mean and standard deviation only in the figure art,
    so we instantiate a LogNormal with a comparable scale
    (mean ~ 2100 s, cv ~ 0.6) via moment inversion. *)

val distribution : application -> Distributions.Dist.t
(** [distribution app] is the application's LogNormal law (seconds). *)

val distribution_hours : application -> Distributions.Dist.t
(** [distribution_hours app] is the same law rescaled to hours (the
    unit of the NEUROHPC cost model). *)

val generate : ?runs:int -> application -> Randomness.Rng.t -> float array
(** [generate app rng] draws [runs] (default [5000], as in Fig. 1)
    execution times in seconds. *)

val save_csv : string -> float array -> unit
(** [save_csv path trace] writes one execution time per line
    (["runtime_seconds"] header). *)

val load_csv : string -> float array
(** [load_csv path] reads a trace written by {!save_csv} (header
    optional; blank lines ignored).
    @raise Failure on malformed numeric data. *)

val pipeline :
  ?runs:int ->
  application ->
  Randomness.Rng.t ->
  Distributions.Fitting.lognormal_fit * Distributions.Dist.t
(** [pipeline app rng] runs the paper's Fig. 1 pipeline end to end:
    generate (or substitute) a trace, fit a LogNormal by MLE, and
    return both the fit diagnostics and the fitted distribution. *)
