type pricing = { reserved_hourly : float; on_demand_hourly : float }

let make_pricing ~reserved_hourly ~on_demand_hourly =
  if reserved_hourly <= 0.0 || on_demand_hourly <= 0.0 then
    invalid_arg "Cloud.make_pricing: prices must be positive";
  { reserved_hourly; on_demand_hourly }

let aws_like = make_pricing ~reserved_hourly:0.25 ~on_demand_hourly:1.0
let price_ratio p = p.on_demand_hourly /. p.reserved_hourly

let reserved_cost p ~expected_reservation_hours =
  p.reserved_hourly *. expected_reservation_hours

let on_demand_cost p d = p.on_demand_hourly *. d.Distributions.Dist.mean

type verdict = {
  reserved_total : float;
  on_demand_total : float;
  advantage : float;
  use_reserved : bool;
}

let compare_strategies p d ~normalized_cost =
  (* Under RESERVATIONONLY, E^o = E(X), so the strategy's expected
     reserved hours are normalized_cost * E(X). *)
  let reserved_total =
    reserved_cost p
      ~expected_reservation_hours:(normalized_cost *. d.Distributions.Dist.mean)
  in
  let on_demand_total = on_demand_cost p d in
  let advantage = on_demand_total /. reserved_total in
  { reserved_total; on_demand_total; advantage; use_reserved = advantage >= 1.0 }
