(** End-to-end job-flow simulator.

    Replays a reservation strategy against a stream of stochastic
    jobs, reproducing the paper's execution model operationally: each
    job is submitted with reservation [t1]; if it does not finish, it
    is resubmitted with [t2], and so on. Beyond the expected cost
    (which {!Stochastic_core.Expected_cost} already evaluates), the
    simulator reports the operational quantities a platform operator
    cares about — number of submissions per job, reserved-but-unused
    time, utilisation and cost quantiles. *)

type job_outcome = {
  duration : float;  (** The job's actual execution time. *)
  reservations_used : int;  (** [k]: how many submissions were paid. *)
  total_reserved : float;  (** [sum_(i<=k) t_i]. *)
  total_cost : float;  (** [C(k, t)] under the cost model. *)
  wasted : float;
      (** Reserved-but-unused time:
          [sum_(i<k) t_i + (t_k - duration)] — capacity paid for and
          not computing. *)
}

type report = {
  jobs : int;
  mean_cost : float;  (** Monte-Carlo mean of [total_cost]. *)
  normalized_cost : float;  (** [mean_cost / E^o]. *)
  mean_reservations : float;  (** Mean number of submissions. *)
  max_reservations : int;
  p95_cost : float;  (** 95th percentile of per-job cost. *)
  cvar95_cost : float;
      (** Conditional value-at-risk: mean cost of the worst 5% of
          jobs — the tail-risk metric a capacity planner budgets
          for. *)
  utilization : float;
      (** [sum duration / sum total_reserved] in [[0, 1]]. *)
  outcomes : job_outcome array;
}

val run_job :
  Stochastic_core.Cost_model.t ->
  Stochastic_core.Sequence.t ->
  duration:float ->
  job_outcome
(** [run_job m s ~duration] replays one job through the sequence.
    @raise Stochastic_core.Sequence.Not_covered if the sequence cannot
    cover the duration. *)

val run :
  ?jobs:int ->
  Stochastic_core.Cost_model.t ->
  Distributions.Dist.t ->
  Stochastic_core.Sequence.t ->
  Randomness.Rng.t ->
  report
(** [run m d s rng] simulates [jobs] (default [1000]) independent jobs
    drawn from [d]. *)

val pp_report : Format.formatter -> report -> unit
(** One-paragraph human-readable summary (omits [outcomes]). *)
