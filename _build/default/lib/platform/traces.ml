type application = { app_name : string; mu : float; sigma : float }

let vbmqa = { app_name = "VBMQA"; mu = 7.1128; sigma = 0.2039 }

let fmriqa =
  (* The published figure reports the fit only graphically; a LogNormal
     with mean ~ 2100 s and coefficient of variation ~ 0.6 matches the
     plotted scale. *)
  let mu, sigma =
    Distributions.Fitting.lognormal_of_moments ~mean:2100.0 ~std:1260.0
  in
  { app_name = "fMRIQA"; mu; sigma }

let distribution app = Distributions.Lognormal.make ~mu:app.mu ~sigma:app.sigma

let distribution_hours app =
  (* If ln X ~ N(mu, sigma^2) in seconds then ln (X/3600) ~
     N(mu - ln 3600, sigma^2). *)
  Distributions.Lognormal.make ~mu:(app.mu -. log 3600.0) ~sigma:app.sigma

let generate ?(runs = 5000) app rng =
  if runs <= 0 then invalid_arg "Traces.generate: runs must be positive";
  let d = distribution app in
  Distributions.Dist.samples d rng runs

let save_csv path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "runtime_seconds\n";
      Array.iter (fun t -> Printf.fprintf oc "%.6f\n" t) trace)

let load_csv path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let out = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" && line <> "runtime_seconds" then
             match float_of_string_opt line with
             | Some v -> out := v :: !out
             | None ->
                 failwith
                   (Printf.sprintf "Traces.load_csv: malformed line %S in %s"
                      line path)
         done
       with End_of_file -> ());
      Array.of_list (List.rev !out))

let pipeline ?runs app rng =
  let trace = generate ?runs app rng in
  let fit = Distributions.Fitting.lognormal_mle trace in
  (fit, Distributions.Fitting.to_dist fit)
