(** Online operation: learning the distribution while scheduling.

    The paper assumes the execution-time law is known up front; a
    deployed cost tool starts with no model, schedules the first jobs
    with a crude rule, and refines its distribution estimate as
    completed jobs reveal their durations (every completed job's exact
    duration becomes known, since the final successful reservation
    observes it). This module simulates that loop:

    - with fewer than [warmup] observations, jobs are scheduled by
      doubling from the running mean (a model-free rule);
    - from [warmup] on, a LogNormal is refitted every [refit_every]
      completions and the configured strategy is recomputed against
      the current fit.

    The trajectory of per-job normalized costs quantifies how quickly
    online operation approaches the known-distribution optimum —
    complementing the static misspecification ablation
    ([Experiments.Robustness]). *)

type config = {
  warmup : int;  (** Jobs scheduled by the model-free rule. *)
  refit_every : int;  (** Completions between refits. *)
  strategy : Stochastic_core.Strategy.t;  (** Strategy used once fitted. *)
}

val default_config : config
(** [warmup = 10], [refit_every = 25], BRUTE-FORCE (m = 500, exact
    enough for repeated refits). *)

type trajectory = {
  costs : float array;  (** Per-job cost, in arrival order. *)
  normalized_prefix_mean : float array;
      (** Running mean cost over the first [i+1] jobs, normalized by
          the true omniscient cost. *)
  refits : int;  (** How many times the model was refitted. *)
}

val run :
  ?config:config ->
  jobs:int ->
  Stochastic_core.Cost_model.t ->
  Distributions.Dist.t ->
  Randomness.Rng.t ->
  trajectory
(** [run ~jobs m truth rng] simulates [jobs] arrivals from the (hidden)
    [truth] distribution.
    @raise Invalid_argument if [jobs <= 0]. *)

val final_normalized : trajectory -> float
(** Mean normalized cost over the last quarter of the trajectory —
    the steady-state performance after learning. *)
