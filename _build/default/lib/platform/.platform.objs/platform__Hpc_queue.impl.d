lib/platform/hpc_queue.ml: Array Float Numerics Randomness Stochastic_core
