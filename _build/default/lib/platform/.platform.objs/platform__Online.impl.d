lib/platform/online.ml: Array Distributions Numerics Seq Stochastic_core
