lib/platform/traces.ml: Array Distributions Fun List Printf String
