lib/platform/simulator.ml: Array Distributions Format Numerics Seq Stochastic_core
