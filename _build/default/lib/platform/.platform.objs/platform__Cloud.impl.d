lib/platform/cloud.ml: Distributions
