lib/platform/online.mli: Distributions Randomness Stochastic_core
