lib/platform/cloud.mli: Distributions
