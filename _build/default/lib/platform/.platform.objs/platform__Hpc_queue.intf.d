lib/platform/hpc_queue.mli: Numerics Randomness Stochastic_core
