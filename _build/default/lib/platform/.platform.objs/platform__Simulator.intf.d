lib/platform/simulator.mli: Distributions Format Randomness Stochastic_core
