lib/platform/traces.mli: Distributions Randomness
